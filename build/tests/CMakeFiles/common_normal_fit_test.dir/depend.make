# Empty dependencies file for common_normal_fit_test.
# This may be replaced when dependencies are built.
