#include "dp/accountant.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace upa::dp {
namespace {

TEST(AccountantTest, ChargesWithinBudget) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.4).ok());
  EXPECT_TRUE(acc.Charge("ds", 0.4).ok());
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.8);
  EXPECT_NEAR(acc.Remaining("ds"), 0.2, 1e-12);
}

TEST(AccountantTest, RejectsOverBudget) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.9).ok());
  Status s = acc.Charge("ds", 0.2);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  // Failed charge must not consume budget.
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.9);
}

TEST(AccountantTest, ExactBudgetBoundaryAllowed) {
  PrivacyAccountant acc(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(acc.Charge("ds", 0.1).ok()) << "charge " << i;
  }
  EXPECT_FALSE(acc.Charge("ds", 0.01).ok());
}

TEST(AccountantTest, DatasetsHaveIndependentBudgets) {
  PrivacyAccountant acc(0.5);
  EXPECT_TRUE(acc.Charge("a", 0.5).ok());
  EXPECT_TRUE(acc.Charge("b", 0.5).ok());
  EXPECT_FALSE(acc.Charge("a", 0.1).ok());
}

TEST(AccountantTest, RejectsNonPositiveEpsilon) {
  PrivacyAccountant acc(1.0);
  EXPECT_EQ(acc.Charge("ds", 0.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(acc.Charge("ds", -0.1).code(), StatusCode::kInvalidArgument);
}

TEST(AccountantTest, UnknownDatasetHasZeroSpent) {
  PrivacyAccountant acc(2.0);
  EXPECT_DOUBLE_EQ(acc.Spent("never-seen"), 0.0);
  EXPECT_DOUBLE_EQ(acc.Remaining("never-seen"), 2.0);
}

TEST(AccountantTest, RemainingNeverGoesNegative) {
  // The 1e-12 acceptance slack in Charge lets Spent exceed the budget by a
  // hair; Remaining must clamp the tiny negative difference to 0.
  PrivacyAccountant acc(0.3);
  EXPECT_TRUE(acc.Charge("ds", 0.1).ok());
  EXPECT_TRUE(acc.Charge("ds", 0.1).ok());
  EXPECT_TRUE(acc.Charge("ds", 0.1).ok());  // float sum 0.30000000000000004
  EXPECT_GE(acc.Remaining("ds"), 0.0);
}

TEST(AccountantTest, RefundRestoresBudget) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.6).ok());
  EXPECT_TRUE(acc.Refund("ds", 0.6).ok());
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.0);
  // The refunded budget is spendable again.
  EXPECT_TRUE(acc.Charge("ds", 1.0).ok());
}

TEST(AccountantTest, RefundIsBoundedBySpent) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.2).ok());
  EXPECT_TRUE(acc.Refund("ds", 5.0).ok());  // clamped, can't mint budget
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.0);
  EXPECT_DOUBLE_EQ(acc.Remaining("ds"), 1.0);
}

TEST(AccountantTest, RefundRejectsUnknownDatasetAndBadEpsilon) {
  PrivacyAccountant acc(1.0);
  EXPECT_EQ(acc.Refund("never-charged", 0.1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(acc.Charge("ds", 0.5).ok());
  EXPECT_EQ(acc.Refund("ds", 0.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(acc.Refund("ds", -0.1).code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.5);  // failed refunds change nothing
}

TEST(AccountantTest, ChargeRefundTwoPhaseUnderConcurrency) {
  // Failed work refunds its charge; the net spend must equal only the
  // successful (non-refunded) charges regardless of interleaving.
  PrivacyAccountant acc(8.0);
  std::vector<std::thread> threads;
  std::atomic<int> kept{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        if (!acc.Charge("ds", 0.01).ok()) continue;
        if ((t + i) % 2 == 0) {
          ASSERT_TRUE(acc.Refund("ds", 0.01).ok());
        } else {
          kept.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_NEAR(acc.Spent("ds"), kept.load() * 0.01, 1e-9);
}

TEST(AccountantTest, ConcurrentChargesNeverOverspend) {
  PrivacyAccountant acc(1.0);
  std::vector<std::thread> threads;
  std::atomic<int> granted{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (acc.Charge("ds", 0.01).ok()) granted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(acc.Spent("ds"), 1.0 + 1e-9);
  EXPECT_EQ(granted.load(), 100);  // exactly 100 x 0.01 fit in 1.0
}

}  // namespace
}  // namespace upa::dp
