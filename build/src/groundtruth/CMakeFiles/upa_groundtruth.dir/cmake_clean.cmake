file(REMOVE_RECURSE
  "CMakeFiles/upa_groundtruth.dir/ground_truth.cpp.o"
  "CMakeFiles/upa_groundtruth.dir/ground_truth.cpp.o.d"
  "libupa_groundtruth.a"
  "libupa_groundtruth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_groundtruth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
