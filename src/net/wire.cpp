#include "net/wire.h"

#include <cstring>

namespace upa::net {
namespace {

/// Highest valid StatusCode value on the wire (codes are appended to the
/// enum, so this is the trailing member).
constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(StatusCode::kUnavailable);

Status DecodeStatusCode(uint8_t raw, StatusCode* out) {
  if (raw > kMaxStatusCode) {
    return Status::InvalidArgument("unknown status code on wire: " +
                                   std::to_string(raw));
  }
  *out = static_cast<StatusCode>(raw);
  return Status::Ok();
}

bool KnownFrameType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(FrameType::kQueryRequest) &&
         raw <= static_cast<uint8_t>(FrameType::kError);
}

uint32_t LoadU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

void StoreU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void StoreU64(char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

}  // namespace

uint64_t WireChecksum(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Status PayloadReader::GetU8(uint8_t* out) {
  if (remaining() < 1) {
    return Status::InvalidArgument("payload truncated reading u8");
  }
  *out = static_cast<unsigned char>(bytes_[pos_++]);
  return Status::Ok();
}

Status PayloadReader::GetU32(uint32_t* out) {
  if (remaining() < 4) {
    return Status::InvalidArgument("payload truncated reading u32");
  }
  *out = LoadU32(bytes_.data() + pos_);
  pos_ += 4;
  return Status::Ok();
}

Status PayloadReader::GetU64(uint64_t* out) {
  if (remaining() < 8) {
    return Status::InvalidArgument("payload truncated reading u64");
  }
  *out = LoadU64(bytes_.data() + pos_);
  pos_ += 8;
  return Status::Ok();
}

Status PayloadReader::GetI64(int64_t* out) {
  uint64_t bits = 0;
  UPA_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::Ok();
}

Status PayloadReader::GetDouble(double* out) {
  uint64_t bits = 0;
  UPA_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::Ok();
}

Status PayloadReader::GetString(std::string* out) {
  uint32_t len = 0;
  UPA_RETURN_IF_ERROR(GetU32(&len));
  // The length came off the wire; it must fit in what is actually here.
  if (remaining() < len) {
    return Status::InvalidArgument(
        "payload truncated reading string of claimed length " +
        std::to_string(len));
  }
  out->assign(bytes_.data() + pos_, len);
  pos_ += len;
  return Status::Ok();
}

Status PayloadReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::InvalidArgument(std::to_string(remaining()) +
                                   " trailing bytes after payload");
  }
  return Status::Ok();
}

void PayloadWriter::PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

void PayloadWriter::PutU32(uint32_t v) {
  char buf[4];
  StoreU32(buf, v);
  out_.append(buf, sizeof(buf));
}

void PayloadWriter::PutU64(uint64_t v) {
  char buf[8];
  StoreU64(buf, v);
  out_.append(buf, sizeof(buf));
}

void PayloadWriter::PutI64(int64_t v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void PayloadWriter::PutDouble(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void PayloadWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string frame(kFrameHeaderBytes, '\0');
  StoreU32(frame.data(), kWireMagic);
  frame[4] = static_cast<char>(kWireVersion);
  frame[5] = static_cast<char>(type);
  frame[6] = 0;
  frame[7] = 0;
  StoreU32(frame.data() + 8, static_cast<uint32_t>(payload.size()));
  // Checksum the header prefix first, then the payload, so corruption of
  // ANY frame byte (checksum field aside, which then mismatches) trips it.
  uint64_t sum = WireChecksum(std::string_view(frame.data(), 12));
  sum = WireChecksum(payload, sum);
  StoreU64(frame.data() + 12, sum);
  frame.append(payload.data(), payload.size());
  return frame;
}

std::string EncodeQueryFrame(const WireQuery& query) {
  PayloadWriter w;
  w.PutU64(query.client_tag);
  w.PutString(query.tenant);
  w.PutString(query.dataset_id);
  w.PutDouble(query.epsilon);
  w.PutU64(query.seed);
  w.PutU64(query.fingerprint);
  w.PutI64(query.deadline_ms);
  w.PutString(query.sql);
  w.PutU64(query.client_nonce);
  w.PutU64(query.client_seq);
  return EncodeFrame(FrameType::kQueryRequest, w.bytes());
}

std::string EncodeResultFrame(const WireResult& result) {
  PayloadWriter w;
  w.PutU64(result.client_tag);
  w.PutU8(static_cast<uint8_t>(result.code));
  w.PutString(result.message);
  const service::QueryResponse& r = result.response;
  w.PutDouble(r.released);
  w.PutDouble(r.epsilon);
  w.PutDouble(r.local_sensitivity);
  w.PutDouble(r.out_range.lo);
  w.PutDouble(r.out_range.hi);
  w.PutU8(r.attack_suspected ? 1 : 0);
  w.PutU64(static_cast<uint64_t>(r.records_removed));
  w.PutU8(r.degenerate_sensitivity ? 1 : 0);
  w.PutU8(r.sensitivity_cache_hit ? 1 : 0);
  w.PutU64(r.dataset_epoch);
  w.PutDouble(r.queue_seconds);
  w.PutDouble(r.seconds.sample);
  w.PutDouble(r.seconds.map);
  w.PutDouble(r.seconds.reduce);
  w.PutDouble(r.seconds.enforce);
  w.PutDouble(r.seconds.total);
  w.PutI64(result.retry_after_ms);
  return EncodeFrame(FrameType::kQueryResponse, w.bytes());
}

std::string EncodeStatsRequestFrame() {
  return EncodeFrame(FrameType::kStatsRequest, {});
}

std::string EncodeStatsResponseFrame(std::string_view text) {
  PayloadWriter w;
  w.PutString(text);
  return EncodeFrame(FrameType::kStatsResponse, w.bytes());
}

std::string EncodeErrorFrame(const Status& status) {
  PayloadWriter w;
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  w.PutI64(status.retry_after_ms());
  return EncodeFrame(FrameType::kError, w.bytes());
}

Status DecodeQueryPayload(std::string_view payload, WireQuery* out) {
  PayloadReader r(payload);
  UPA_RETURN_IF_ERROR(r.GetU64(&out->client_tag));
  UPA_RETURN_IF_ERROR(r.GetString(&out->tenant));
  UPA_RETURN_IF_ERROR(r.GetString(&out->dataset_id));
  UPA_RETURN_IF_ERROR(r.GetDouble(&out->epsilon));
  UPA_RETURN_IF_ERROR(r.GetU64(&out->seed));
  UPA_RETURN_IF_ERROR(r.GetU64(&out->fingerprint));
  UPA_RETURN_IF_ERROR(r.GetI64(&out->deadline_ms));
  UPA_RETURN_IF_ERROR(r.GetString(&out->sql));
  UPA_RETURN_IF_ERROR(r.GetU64(&out->client_nonce));
  UPA_RETURN_IF_ERROR(r.GetU64(&out->client_seq));
  return r.ExpectEnd();
}

Status DecodeResultPayload(std::string_view payload, WireResult* out) {
  PayloadReader r(payload);
  UPA_RETURN_IF_ERROR(r.GetU64(&out->client_tag));
  uint8_t code = 0;
  UPA_RETURN_IF_ERROR(r.GetU8(&code));
  UPA_RETURN_IF_ERROR(DecodeStatusCode(code, &out->code));
  UPA_RETURN_IF_ERROR(r.GetString(&out->message));
  service::QueryResponse& resp = out->response;
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.released));
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.epsilon));
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.local_sensitivity));
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.out_range.lo));
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.out_range.hi));
  uint8_t flag = 0;
  UPA_RETURN_IF_ERROR(r.GetU8(&flag));
  resp.attack_suspected = flag != 0;
  uint64_t removed = 0;
  UPA_RETURN_IF_ERROR(r.GetU64(&removed));
  resp.records_removed = static_cast<size_t>(removed);
  UPA_RETURN_IF_ERROR(r.GetU8(&flag));
  resp.degenerate_sensitivity = flag != 0;
  UPA_RETURN_IF_ERROR(r.GetU8(&flag));
  resp.sensitivity_cache_hit = flag != 0;
  UPA_RETURN_IF_ERROR(r.GetU64(&resp.dataset_epoch));
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.queue_seconds));
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.seconds.sample));
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.seconds.map));
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.seconds.reduce));
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.seconds.enforce));
  UPA_RETURN_IF_ERROR(r.GetDouble(&resp.seconds.total));
  UPA_RETURN_IF_ERROR(r.GetI64(&out->retry_after_ms));
  return r.ExpectEnd();
}

Status DecodeStatsResponsePayload(std::string_view payload, std::string* out) {
  PayloadReader r(payload);
  UPA_RETURN_IF_ERROR(r.GetString(out));
  return r.ExpectEnd();
}

Status DecodeErrorPayload(std::string_view payload, Status* out) {
  PayloadReader r(payload);
  uint8_t code = 0;
  UPA_RETURN_IF_ERROR(r.GetU8(&code));
  StatusCode parsed = StatusCode::kInternal;
  UPA_RETURN_IF_ERROR(DecodeStatusCode(code, &parsed));
  std::string message;
  UPA_RETURN_IF_ERROR(r.GetString(&message));
  int64_t retry_after_ms = 0;
  UPA_RETURN_IF_ERROR(r.GetI64(&retry_after_ms));
  UPA_RETURN_IF_ERROR(r.ExpectEnd());
  *out = Status(parsed, std::move(message));
  out->set_retry_after_ms(retry_after_ms);
  return Status::Ok();
}

void FrameAssembler::Feed(std::string_view bytes) {
  if (poisoned_) return;  // stream already condemned; drop everything
  // Compact consumed prefix before growing (keeps the buffer bounded by
  // one partial frame plus whatever a single Feed delivered).
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameAssembler::Outcome FrameAssembler::Next(Frame* frame, Status* error) {
  if (poisoned_) {
    *error = latched_error_;
    return Outcome::kError;
  }
  std::string_view view(buffer_.data() + consumed_,
                        buffer_.size() - consumed_);
  if (view.size() < kFrameHeaderBytes) return Outcome::kNeedMore;

  auto poison = [&](Status status) {
    poisoned_ = true;
    latched_error_ = std::move(status);
    *error = latched_error_;
    return Outcome::kError;
  };

  uint32_t magic = LoadU32(view.data());
  if (magic != kWireMagic) {
    return poison(Status::InvalidArgument("bad frame magic"));
  }
  uint8_t version = static_cast<unsigned char>(view[4]);
  if (version != kWireVersion) {
    return poison(Status::InvalidArgument("unsupported wire version " +
                                          std::to_string(version)));
  }
  uint8_t raw_type = static_cast<unsigned char>(view[5]);
  if (!KnownFrameType(raw_type)) {
    return poison(Status::InvalidArgument("unknown frame type " +
                                          std::to_string(raw_type)));
  }
  if (view[6] != 0 || view[7] != 0) {
    return poison(Status::InvalidArgument("nonzero reserved frame bytes"));
  }
  uint32_t payload_len = LoadU32(view.data() + 8);
  if (payload_len > max_frame_bytes_) {
    return poison(Status::ResourceExhausted(
        "frame payload of " + std::to_string(payload_len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes_) +
        "-byte limit"));
  }
  if (view.size() < kFrameHeaderBytes + payload_len) return Outcome::kNeedMore;

  uint64_t expected = LoadU64(view.data() + 12);
  uint64_t sum = WireChecksum(view.substr(0, 12));
  sum = WireChecksum(view.substr(kFrameHeaderBytes, payload_len), sum);
  if (sum != expected) {
    return poison(Status::InvalidArgument("frame checksum mismatch"));
  }

  frame->type = static_cast<FrameType>(raw_type);
  frame->payload.assign(view.data() + kFrameHeaderBytes, payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return Outcome::kFrame;
}

}  // namespace upa::net
