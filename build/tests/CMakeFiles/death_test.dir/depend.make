# Empty dependencies file for death_test.
# This may be replaced when dependencies are built.
