file(REMOVE_RECURSE
  "libupa_engine.a"
)
