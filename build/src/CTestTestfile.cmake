# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("engine")
subdirs("dp")
subdirs("relational")
subdirs("upa")
subdirs("tpch")
subdirs("mlkit")
subdirs("flex")
subdirs("groundtruth")
subdirs("queries")
subdirs("bench_util")
