// Private machine learning: trains a linear model with differentially
// private gradient steps and refines KMeans centroids privately — the two
// user-defined Spark queries of the paper's evaluation — comparing model
// quality against non-private training under the same step schedule.
#include <cmath>
#include <cstdio>
#include <vector>

#include "mlkit/kmeans.h"
#include "mlkit/linreg.h"
#include "upa/dp_api.h"

using namespace upa;

namespace {

double MeanSquaredError(const ml::MlDataset& data,
                        const std::vector<double>& wb) {
  double ss = 0.0;
  size_t d = data.config().dims;
  for (const ml::MlPoint& p : *data.points()) {
    double pred = wb[d];
    for (size_t j = 0; j < d; ++j) pred += wb[j] * p.x[j];
    ss += (pred - p.y) * (pred - p.y);
  }
  return ss / static_cast<double>(data.points()->size());
}

}  // namespace

int main() {
  ml::MlDataConfig data_cfg;
  data_cfg.num_points = 20000;
  data_cfg.dims = 4;
  ml::MlDataset data(data_cfg);

  engine::ExecContext ctx;
  core::UpaConfig upa_cfg;
  upa_cfg.sample_n = 1000;
  api::UpaSystem upa(&ctx, upa_cfg, /*total_budget=*/5.0);
  auto points = upa.dpread<ml::MlPoint>(
      *data.points(), [&data](Rng& rng) { return data.SamplePoint(rng); },
      "life-science");

  // ---- Private linear regression: 5 DP gradient steps, eps=0.5 each ----
  const double lr = 0.05;
  const size_t d = data_cfg.dims;
  std::vector<double> private_wb(d + 1, 0.0);
  std::vector<double> public_wb(d + 1, 0.0);

  std::printf("Private SGD (5 steps, eps=0.5/step, sensitivity auto-inferred):\n");
  for (int step = 0; step < 5; ++step) {
    ml::LinRegSpec spec;
    spec.w0.assign(private_wb.begin(), private_wb.begin() + d);
    spec.b0 = private_wb[d];
    spec.learning_rate = lr;

    core::Vec noisy_update;
    auto release = points.reduceVecDP(
        [spec](const ml::MlPoint& p) { return ml::LinRegMap(spec, p); },
        [spec](const core::Vec& r) { return ml::LinRegPost(spec, r); },
        [](const core::Vec& v) { return core::L2Norm(v); },
        /*epsilon=*/0.5, &noisy_update);
    if (!release.ok()) {
      std::fprintf(stderr, "step %d failed: %s\n", step,
                   release.status().ToString().c_str());
      return 1;
    }
    private_wb = noisy_update;

    // The non-private reference takes the same step without noise.
    ml::LinRegSpec pub_spec;
    pub_spec.w0.assign(public_wb.begin(), public_wb.begin() + d);
    pub_spec.b0 = public_wb[d];
    pub_spec.learning_rate = lr;
    public_wb = ml::LinRegStep(pub_spec, *data.points());

    std::printf("  step %d: private MSE %.4f | non-private MSE %.4f "
                "(sens %.2e)\n",
                step + 1, MeanSquaredError(data, private_wb),
                MeanSquaredError(data, public_wb),
                release.value().local_sensitivity);
  }
  std::printf("  budget spent: %.2f of %.2f\n\n",
              upa.accountant().Spent("life-science"),
              upa.accountant().total_budget());

  // ---- Private KMeans refinement: one Lloyd step under eps=0.5 ----------
  ml::Centroids seed = ml::LloydIterations(
      *data.points(), ml::InitCentroids(*data.points(), 3), 2);
  ml::KMeansSpec km{seed};
  core::Vec noisy_centroids;
  auto release = points.reduceVecDP(
      [km](const ml::MlPoint& p) { return ml::KMeansMap(km, p); },
      [km](const core::Vec& r) { return ml::KMeansPost(km, r); },
      [](const core::Vec& v) { return core::L2Norm(v); }, 0.5,
      &noisy_centroids);
  if (!release.ok()) {
    std::fprintf(stderr, "kmeans failed: %s\n",
                 release.status().ToString().c_str());
    return 1;
  }
  std::printf("Private KMeans refinement (k=3, eps=0.5, sens %.2e):\n",
              release.value().local_sensitivity);
  for (size_t c = 0; c < 3; ++c) {
    std::printf("  centroid %zu: private (", c);
    for (size_t j = 0; j < data_cfg.dims; ++j) {
      std::printf("%s%.2f", j ? ", " : "", noisy_centroids[c * data_cfg.dims + j]);
    }
    std::printf(")  seed (");
    for (size_t j = 0; j < data_cfg.dims; ++j) {
      std::printf("%s%.2f", j ? ", " : "", seed[c][j]);
    }
    std::printf(")\n");
  }
  return 0;
}
