file(REMOVE_RECURSE
  "CMakeFiles/death_test.dir/death_test.cpp.o"
  "CMakeFiles/death_test.dir/death_test.cpp.o.d"
  "death_test"
  "death_test.pdb"
  "death_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/death_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
