// Command-line client for a running upa_server.
//
// Usage:
//   upa_client <port> "SELECT COUNT(*) FROM lineitem" [private_table]
//   upa_client <port> --nonce N --seq M "count:2000" [dataset]
//   upa_client <port> --stats
//
// The private table defaults to "lineitem"; it is the privacy unit the
// server charges budget against, so the query must scan it.
//
// --nonce/--seq pin the idempotency key instead of letting the connection
// stamp a fresh one: re-running the same command after a crash or timeout
// replays the server's journaled response for that key (byte-identical,
// no second budget charge). This is how the cluster drill re-sends a
// query whose shard died after releasing but before acknowledging.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/client.h"

using namespace upa;

int main(int argc, char** argv) {
  uint64_t nonce = 0;
  uint64_t seq = 0;
  int arg = 1;
  auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s <port> [--nonce N --seq M] <sql|--stats> "
                 "[private_table]\n",
                 argv[0]);
    return 2;
  };
  if (arg >= argc) return usage();
  uint16_t port = static_cast<uint16_t>(std::atoi(argv[arg++]));
  while (arg + 1 < argc && argv[arg][0] == '-' &&
         std::strcmp(argv[arg], "--stats") != 0) {
    if (std::strcmp(argv[arg], "--nonce") == 0) {
      nonce = std::strtoull(argv[arg + 1], nullptr, 0);
    } else if (std::strcmp(argv[arg], "--seq") == 0) {
      seq = std::strtoull(argv[arg + 1], nullptr, 0);
    } else {
      return usage();
    }
    arg += 2;
  }
  if (arg >= argc) return usage();

  auto connected = net::Client::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::Client> client = std::move(connected).value();

  if (std::string(argv[arg]) == "--stats") {
    auto stats = client->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", stats.value().c_str());
    return 0;
  }

  net::WireQuery query;
  query.tenant = "cli";
  query.dataset_id = arg + 1 < argc ? argv[arg + 1] : "lineitem";
  query.epsilon = 0.5;
  query.seed = 2026;
  query.sql = argv[arg];
  query.client_nonce = nonce;
  query.client_seq = seq;
  auto result = client->Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const net::WireResult& wire = result.value();
  if (!wire.ok()) {
    std::fprintf(stderr, "server error: %s\n",
                 wire.status().ToString().c_str());
    if (wire.retry_after_ms > 0) {
      std::fprintf(stderr, "retry after %lld ms\n",
                   static_cast<long long>(wire.retry_after_ms));
    }
    return 1;
  }
  std::printf("released = %.4f\n", wire.response.released);
  std::printf("epsilon  = %.2f  (dataset '%s', epoch %llu)\n",
              wire.response.epsilon, query.dataset_id.c_str(),
              static_cast<unsigned long long>(wire.response.dataset_epoch));
  std::printf("inferred sensitivity %.4g%s%s\n",
              wire.response.local_sensitivity,
              wire.response.sensitivity_cache_hit ? ", cached" : "",
              wire.response.attack_suspected
                  ? ", repeat-query defense engaged"
                  : "");
  return 0;
}
