#include "engine/ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace upa::engine {
namespace {

ExecContext& Ctx() {
  static ExecContext ctx(ExecConfig{.threads = 4, .default_partitions = 3});
  return ctx;
}

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(UnionTest, ConcatenatesAllElements) {
  auto a = Dataset<int>::FromVector(&Ctx(), Iota(10), 2);
  auto b = Dataset<int>::FromVector(&Ctx(), Iota(5), 3);
  auto u = Union(a, b);
  EXPECT_EQ(u.Count(), 15u);
  EXPECT_EQ(u.NumPartitions(), 5u);
}

TEST(UnionTest, EmptySides) {
  auto a = Dataset<int>::FromVector(&Ctx(), {}, 2);
  auto b = Dataset<int>::FromVector(&Ctx(), Iota(4), 2);
  EXPECT_EQ(Union(a, b).Count(), 4u);
  EXPECT_EQ(Union(b, a).Count(), 4u);
}

TEST(ZipWithIndexTest, IndicesAreSequential) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(20), 4);
  auto zipped = ZipWithIndex(ds);
  auto all = zipped.Collect();
  ASSERT_EQ(all.size(), 20u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].first, i);
  }
}

TEST(ZipWithIndexTest, PreservesValuesInPartitionOrder) {
  auto ds = Dataset<int>::FromVector(&Ctx(), {7, 8, 9}, 1);
  auto zipped = ZipWithIndex(ds).Collect();
  EXPECT_EQ(zipped[0], (std::pair<size_t, int>{0, 7}));
  EXPECT_EQ(zipped[2], (std::pair<size_t, int>{2, 9}));
}

TEST(DistinctTest, RemovesDuplicates) {
  std::vector<int> data{1, 2, 2, 3, 3, 3, 4};
  auto ds = Dataset<int>::FromVector(&Ctx(), data, 3);
  auto distinct = Distinct(ds);
  auto out = distinct.Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
}

TEST(DistinctTest, AlreadyDistinctUnchangedInSize) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(50), 4);
  EXPECT_EQ(Distinct(ds).Count(), 50u);
}

TEST(TakeTest, TakesFirstN) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(100), 4);
  auto taken = Take(ds, 7);
  EXPECT_EQ(taken.size(), 7u);
  // Partition-major order: first partition's records come first.
  EXPECT_EQ(taken[0], ds.partition(0)[0]);
}

TEST(TakeTest, TakeMoreThanAvailable) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(3), 2);
  EXPECT_EQ(Take(ds, 10).size(), 3u);
}

TEST(CountByKeyTest, CountsPerKey) {
  std::vector<std::pair<std::string, int>> data{
      {"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"a", 5}};
  auto ds =
      Dataset<std::pair<std::string, int>>::FromVector(&Ctx(), data, 3);
  auto counts = CountByKey(ds);
  EXPECT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts["a"], 3u);
  EXPECT_EQ(counts["b"], 1u);
  EXPECT_EQ(counts["c"], 1u);
}

TEST(CoGroupTest, GroupsBothSidesByKey) {
  std::vector<std::pair<int, int>> left{{1, 10}, {1, 11}, {2, 20}};
  std::vector<std::pair<int, std::string>> right{{1, "x"}, {3, "z"}};
  auto l = Dataset<std::pair<int, int>>::FromVector(&Ctx(), left, 2);
  auto r =
      Dataset<std::pair<int, std::string>>::FromVector(&Ctx(), right, 2);
  auto grouped = CoGroup(l, r, 2);
  std::map<int, std::pair<std::vector<int>, std::vector<std::string>>> by_key;
  for (auto& [k, vw] : grouped.Collect()) {
    std::sort(vw.first.begin(), vw.first.end());
    by_key[k] = vw;
  }
  ASSERT_EQ(by_key.size(), 3u);
  EXPECT_EQ(by_key[1].first, (std::vector<int>{10, 11}));
  EXPECT_EQ(by_key[1].second, (std::vector<std::string>{"x"}));
  EXPECT_EQ(by_key[2].first, (std::vector<int>{20}));
  EXPECT_TRUE(by_key[2].second.empty());
  EXPECT_TRUE(by_key[3].first.empty());
  EXPECT_EQ(by_key[3].second, (std::vector<std::string>{"z"}));
}

TEST(CoGroupTest, CountsOneShufflePerSide) {
  ExecContext local(ExecConfig{.threads = 2, .default_partitions = 2});
  std::vector<std::pair<int, int>> data{{1, 1}};
  auto l = Dataset<std::pair<int, int>>::FromVector(&local, data, 1);
  auto r = Dataset<std::pair<int, int>>::FromVector(&local, data, 1);
  auto before = local.metrics().Snapshot();
  CoGroup(l, r, 2);
  EXPECT_EQ((local.metrics().Snapshot() - before).shuffle_rounds, 2u);
}

// Property: Union then Distinct == set union, across partition layouts.
class SetAlgebraSweep : public ::testing::TestWithParam<int> {};

TEST_P(SetAlgebraSweep, UnionDistinctIsSetUnion) {
  Rng rng(40 + GetParam());
  std::vector<int> a(60), b(60);
  for (auto& v : a) v = static_cast<int>(rng.UniformU64(40));
  for (auto& v : b) v = static_cast<int>(rng.UniformU64(40));
  std::set<int> expected(a.begin(), a.end());
  expected.insert(b.begin(), b.end());

  auto da = Dataset<int>::FromVector(&Ctx(), a, GetParam());
  auto db = Dataset<int>::FromVector(&Ctx(), b, 3);
  auto out = Distinct(Union(da, db)).Collect();
  std::set<int> got(out.begin(), out.end());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(out.size(), got.size());  // no duplicates survived
}

INSTANTIATE_TEST_SUITE_P(Partitions, SetAlgebraSweep,
                         ::testing::Values(1, 2, 5, 8));

}  // namespace
}  // namespace upa::engine
