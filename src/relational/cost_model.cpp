#include "relational/cost_model.h"

#include <algorithm>

namespace upa::rel {
namespace {

size_t CountConjuncts(const ExprPtr& expr) {
  if (expr == nullptr) return 0;
  if (expr->kind() == Expr::Kind::kBinary && expr->op() == BinOp::kAnd) {
    return CountConjuncts(expr->lhs()) + CountConjuncts(expr->rhs());
  }
  return 1;
}

}  // namespace

double CostModel::JoinCost(double left_rows, double right_rows,
                           double output_rows) const {
  const double build = std::min(left_rows, right_rows);
  const double probe = std::max(left_rows, right_rows);
  return build * build_row + probe * probe_row +
         output_rows * join_output_row;
}

double CostModel::PlanCost(const PlanPtr& plan,
                           const CardinalityEstimator& est) const {
  if (plan == nullptr) return 0.0;
  switch (plan->kind) {
    case PlanKind::kScan:
      return est.EstimateRows(plan) * scan_row;
    case PlanKind::kFilter:
      return PlanCost(plan->left, est) +
             est.EstimateRows(plan->left) * filter_conjunct_row *
                 static_cast<double>(CountConjuncts(plan->predicate));
    case PlanKind::kJoin:
      return PlanCost(plan->left, est) + PlanCost(plan->right, est) +
             JoinCost(est.EstimateRows(plan->left),
                      est.EstimateRows(plan->right), est.EstimateRows(plan));
    case PlanKind::kAggregate:
      return PlanCost(plan->left, est) + est.EstimateRows(plan->left);
  }
  return 0.0;
}

}  // namespace upa::rel
