file(REMOVE_RECURSE
  "CMakeFiles/engine_cache_metrics_test.dir/engine_cache_metrics_test.cpp.o"
  "CMakeFiles/engine_cache_metrics_test.dir/engine_cache_metrics_test.cpp.o.d"
  "engine_cache_metrics_test"
  "engine_cache_metrics_test.pdb"
  "engine_cache_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_cache_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
