# Empty compiler generated dependencies file for flex_test.
# This may be replaced when dependencies are built.
