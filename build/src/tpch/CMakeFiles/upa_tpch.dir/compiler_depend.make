# Empty compiler generated dependencies file for upa_tpch.
# This may be replaced when dependencies are built.
