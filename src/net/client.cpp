#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <utility>

#include "common/rng.h"
#include "net/dial.h"

namespace upa::net {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process-unique, nonzero idempotency nonce for a new connection: pid ×
/// wall-clock × a process-wide counter, finalized through SplitMix64 so
/// two clients dialed in the same nanosecond (or across a fork) still get
/// distinct keyspaces.
uint64_t GenerateClientNonce() {
  static std::atomic<uint64_t> counter{0};
  uint64_t seed = static_cast<uint64_t>(::getpid());
  seed = seed * 0x9e3779b97f4a7c15ULL ^
         static_cast<uint64_t>(
             std::chrono::system_clock::now().time_since_epoch().count());
  seed ^= counter.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t nonce = SplitMix64(seed).Next();
  return nonce != 0 ? nonce : 1;
}

/// Wait for fd readiness within the absolute deadline. events is POLLIN or
/// POLLOUT. OK when ready; kDeadlineExceeded when time ran out.
Status WaitReady(int fd, short events, int64_t deadline_ns) {
  for (;;) {
    int64_t left_ns = deadline_ns - NowNanos();
    if (left_ns <= 0) return Status::DeadlineExceeded("socket wait timed out");
    int timeout_ms = static_cast<int>((left_ns + 999999) / 1000000);
    pollfd p{};
    p.fd = fd;
    p.events = events;
    int n = ::poll(&p, 1, timeout_ms);
    if (n > 0) return Status::Ok();
    if (n == 0) return Status::DeadlineExceeded("socket wait timed out");
    if (errno == EINTR) continue;
    return Status::Internal(std::string("poll: ") + ::strerror(errno));
  }
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                int64_t timeout_ms) {
  Result<int> fd_or = StartConnect(host, port);
  UPA_RETURN_IF_ERROR(fd_or.status());
  int fd = fd_or.value();
  int64_t deadline_ns = NowNanos() + timeout_ms * 1000000;
  Status ready = WaitReady(fd, POLLOUT, deadline_ns);
  Status finished = ready.ok() ? FinishConnect(fd) : ready;
  if (!finished.ok()) {
    ::close(fd);
    return finished;
  }
  return std::unique_ptr<Client>(new Client(fd));
}

std::unique_ptr<Client> Client::FromConnectedFd(int fd) {
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendBytes(std::string_view bytes) {
  UPA_RETURN_IF_ERROR(broken_);
  int64_t deadline_ns = NowNanos() + int64_t{30000} * 1000000;
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status ready = WaitReady(fd_, POLLOUT, deadline_ns);
      if (!ready.ok()) {
        broken_ = ready;
        return broken_;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    broken_ = Status::Internal(std::string("send: ") + ::strerror(errno));
    return broken_;
  }
  return Status::Ok();
}

Result<Frame> Client::NextFrame(int64_t deadline_ns) {
  if (!broken_.ok()) return broken_;
  for (;;) {
    Frame frame;
    Status error = Status::Ok();
    FrameAssembler::Outcome outcome = assembler_.Next(&frame, &error);
    if (outcome == FrameAssembler::Outcome::kFrame) return frame;
    if (outcome == FrameAssembler::Outcome::kError) {
      broken_ = error;
      return broken_;
    }
    Status ready = WaitReady(fd_, POLLIN, deadline_ns);
    if (!ready.ok()) {
      broken_ = ready;
      return broken_;
    }
    char buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      assembler_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      broken_ = Status::Internal("connection closed by server");
      return broken_;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
    broken_ = Status::Internal(std::string("recv: ") + ::strerror(errno));
    return broken_;
  }
}

Result<Frame> Client::ReadFrame(int64_t timeout_ms) {
  return NextFrame(NowNanos() + timeout_ms * 1000000);
}

Status Client::AdmitResponseTag(uint64_t tag) {
  if (inflight_.count(tag) != 0) return Status::Ok();
  // A response nothing is waiting for means the stream is desynchronized
  // from the request sequence — e.g. a late reply to a request whose
  // waiter already timed out on a previous connection incarnation, or a
  // server echoing a bad tag. Poison rather than deliver: the same
  // terminal latch as a transport failure.
  broken_ = Status::Internal("response for unknown client_tag " +
                             std::to_string(tag) +
                             " (stale reply?); connection poisoned");
  return broken_;
}

Result<uint64_t> Client::Send(WireQuery query) {
  UPA_RETURN_IF_ERROR(broken_);
  if (query.client_tag == 0) query.client_tag = next_tag_++;
  // Stamp an idempotency key unless the caller brought one (a manual
  // retry of an earlier request, possibly from a previous connection).
  if (query.client_nonce == 0) {
    if (client_nonce_ == 0) client_nonce_ = GenerateClientNonce();
    query.client_nonce = client_nonce_;
    query.client_seq = next_seq_++;
  }
  uint64_t tag = query.client_tag;
  if (inflight_.count(tag) != 0 || parked_.count(tag) != 0) {
    return Status::InvalidArgument("client_tag " + std::to_string(tag) +
                                   " is already in flight");
  }
  UPA_RETURN_IF_ERROR(SendBytes(EncodeQueryFrame(query)));
  inflight_.insert(tag);
  return tag;
}

Result<WireResult> Client::Await(uint64_t tag, int64_t timeout_ms) {
  if (auto it = parked_.find(tag); it != parked_.end()) {
    WireResult result = std::move(it->second);
    parked_.erase(it);
    return result;
  }
  if (inflight_.count(tag) == 0) {
    UPA_RETURN_IF_ERROR(broken_);
    return Status::InvalidArgument("client_tag " + std::to_string(tag) +
                                   " was never sent (or already delivered)");
  }
  int64_t deadline_ns = NowNanos() + timeout_ms * 1000000;
  for (;;) {
    Result<Frame> frame = NextFrame(deadline_ns);
    if (!frame.ok()) return frame.status();
    switch (frame.value().type) {
      case FrameType::kQueryResponse: {
        WireResult result;
        UPA_RETURN_IF_ERROR(
            DecodeResultPayload(frame.value().payload, &result));
        UPA_RETURN_IF_ERROR(AdmitResponseTag(result.client_tag));
        inflight_.erase(result.client_tag);
        if (result.client_tag == tag) return result;
        // Out-of-order completion for another in-flight tag: park it.
        parked_[result.client_tag] = std::move(result);
        break;
      }
      case FrameType::kError: {
        Status server_error = Status::Ok();
        UPA_RETURN_IF_ERROR(
            DecodeErrorPayload(frame.value().payload, &server_error));
        // The server closes after an error frame; the connection is done.
        broken_ = server_error;
        return server_error;
      }
      default:
        broken_ = Status::Internal("unexpected frame type from server");
        return broken_;
    }
  }
}

Result<WireResult> Client::Query(WireQuery query, int64_t timeout_ms) {
  Result<uint64_t> tag = Send(std::move(query));
  if (!tag.ok()) return tag.status();
  return Await(tag.value(), timeout_ms);
}

Result<std::string> Client::Stats(int64_t timeout_ms) {
  UPA_RETURN_IF_ERROR(broken_);
  UPA_RETURN_IF_ERROR(SendBytes(EncodeStatsRequestFrame()));
  int64_t deadline_ns = NowNanos() + timeout_ms * 1000000;
  for (;;) {
    Result<Frame> frame = NextFrame(deadline_ns);
    if (!frame.ok()) return frame.status();
    switch (frame.value().type) {
      case FrameType::kStatsResponse: {
        std::string text;
        UPA_RETURN_IF_ERROR(
            DecodeStatsResponsePayload(frame.value().payload, &text));
        return text;
      }
      case FrameType::kQueryResponse: {
        // A pipelined query raced the stats request; park it.
        WireResult result;
        UPA_RETURN_IF_ERROR(
            DecodeResultPayload(frame.value().payload, &result));
        UPA_RETURN_IF_ERROR(AdmitResponseTag(result.client_tag));
        inflight_.erase(result.client_tag);
        parked_[result.client_tag] = std::move(result);
        break;
      }
      case FrameType::kError: {
        Status server_error = Status::Ok();
        UPA_RETURN_IF_ERROR(
            DecodeErrorPayload(frame.value().payload, &server_error));
        broken_ = server_error;
        return server_error;
      }
      default:
        broken_ = Status::Internal("unexpected frame type from server");
        return broken_;
    }
  }
}

Result<ClientPool> ClientPool::Dial(const std::string& host, uint16_t port,
                                    size_t size, int64_t timeout_ms) {
  // Phase 1: launch every handshake before waiting on any of them.
  std::vector<int> fds;
  fds.reserve(size);
  auto close_all = [&fds] {
    for (int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  };
  for (size_t i = 0; i < size; ++i) {
    Result<int> fd_or = StartConnect(host, port);
    if (!fd_or.ok()) {
      close_all();
      return fd_or.status();
    }
    fds.push_back(fd_or.value());
  }
  // Phase 2: confirm each under one shared deadline.
  int64_t deadline_ns = NowNanos() + timeout_ms * 1000000;
  ClientPool pool;
  pool.clients_.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    Status ready = WaitReady(fds[i], POLLOUT, deadline_ns);
    Status finished = ready.ok() ? FinishConnect(fds[i]) : ready;
    if (!finished.ok()) {
      close_all();
      return finished;
    }
    pool.clients_.push_back(Client::FromConnectedFd(fds[i]));
    fds[i] = -1;  // ownership transferred
  }
  return pool;
}

}  // namespace upa::net
