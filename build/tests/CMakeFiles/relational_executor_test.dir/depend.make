# Empty dependencies file for relational_executor_test.
# This may be replaced when dependencies are built.
