// Tests for status/result, hashing, env knobs, logging and table printing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "common/env.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace upa {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad n");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kUnsupported, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeName(c).empty());
    EXPECT_NE(StatusCodeName(c), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(HashTest, Mix64ChangesNearbyKeys) {
  std::set<uint64_t> outputs;
  for (uint64_t k = 0; k < 1000; ++k) outputs.insert(Mix64(k));
  EXPECT_EQ(outputs.size(), 1000u);  // no collisions on sequential keys
}

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(HashTest, HashCombineOrderMatters) {
  size_t ab = HashCombine(HashCombine(0, 1), 2);
  size_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, Fnv1aKnownBehaviour) {
  EXPECT_EQ(Fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a("a"), Fnv1a("b"));
  EXPECT_EQ(Fnv1a("upa"), Fnv1a("upa"));
}

TEST(EnvTest, IntFallbackAndParse) {
  ::unsetenv("UPA_TEST_INT");
  EXPECT_EQ(EnvInt("UPA_TEST_INT", 7), 7);
  ::setenv("UPA_TEST_INT", "123", 1);
  EXPECT_EQ(EnvInt("UPA_TEST_INT", 7), 123);
  ::setenv("UPA_TEST_INT", "junk", 1);
  EXPECT_EQ(EnvInt("UPA_TEST_INT", 7), 7);
  ::unsetenv("UPA_TEST_INT");
}

TEST(EnvTest, DoubleFallbackAndParse) {
  ::unsetenv("UPA_TEST_DBL");
  EXPECT_DOUBLE_EQ(EnvDouble("UPA_TEST_DBL", 0.5), 0.5);
  ::setenv("UPA_TEST_DBL", "2.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("UPA_TEST_DBL", 0.5), 2.25);
  ::unsetenv("UPA_TEST_DBL");
}

TEST(EnvTest, StringFallback) {
  ::unsetenv("UPA_TEST_STR");
  EXPECT_EQ(EnvString("UPA_TEST_STR", "dflt"), "dflt");
  ::setenv("UPA_TEST_STR", "abc", 1);
  EXPECT_EQ(EnvString("UPA_TEST_STR", "dflt"), "abc");
  ::unsetenv("UPA_TEST_STR");
}

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = CurrentLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(CurrentLogLevel(), LogLevel::kError);
  UPA_LOG_DEBUG("should be suppressed %d", 1);
  SetLogLevel(before);
}

TEST(TablePrinterTest, AlignedOutputContainsCells) {
  TablePrinter t({"query", "rmse"});
  t.AddRow({"TPCH1", "0.0001"});
  t.AddRow({"KMeans", "3.81"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("TPCH1"), std::string::npos);
  EXPECT_NE(s.find("KMeans"), std::string::npos);
  EXPECT_NE(s.find("query"), std::string::npos);
}

TEST(TablePrinterTest, CsvQuotesSpecialCharacters) {
  TablePrinter t({"a", "b"});
  t.AddRow({"x,y", "say \"hi\""});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatPercent(0.5, 0), "50%");
  std::string sci = TablePrinter::FormatScientific(12345.0, 2);
  EXPECT_NE(sci.find("e+04"), std::string::npos);
}

}  // namespace
}  // namespace upa
