# Empty compiler generated dependencies file for relational_value_expr_test.
# This may be replaced when dependencies are built.
