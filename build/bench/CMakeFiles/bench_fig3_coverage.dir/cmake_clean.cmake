file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_coverage.dir/bench_fig3_coverage.cpp.o"
  "CMakeFiles/bench_fig3_coverage.dir/bench_fig3_coverage.cpp.o.d"
  "bench_fig3_coverage"
  "bench_fig3_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
