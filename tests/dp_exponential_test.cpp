#include "dp/exponential.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/stats.h"

namespace upa::dp {
namespace {

TEST(ExponentialMechanismTest, PrefersHighScores) {
  Rng rng(1);
  std::vector<double> scores{0.0, 0.0, 10.0};
  std::map<size_t, int> picks;
  for (int t = 0; t < 2000; ++t) {
    picks[ExponentialMechanism(scores, 1.0, 2.0, rng)]++;
  }
  EXPECT_GT(picks[2], 1900);  // exp(10) >> exp(0)
}

TEST(ExponentialMechanismTest, UniformScoresAreUniformPicks) {
  Rng rng(2);
  std::vector<double> scores(4, 1.0);
  std::map<size_t, int> picks;
  const int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    picks[ExponentialMechanism(scores, 1.0, 1.0, rng)]++;
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(picks[i] / static_cast<double>(kTrials), 0.25, 0.02);
  }
}

TEST(ExponentialMechanismTest, DistributionMatchesTheory) {
  // P(i) ∝ exp(ε·s_i / 2Δ); with ε=2, Δ=1, scores {0, ln(4)} → odds 1:4.
  Rng rng(3);
  std::vector<double> scores{0.0, std::log(4.0)};
  int second = 0;
  const int kTrials = 60000;
  for (int t = 0; t < kTrials; ++t) {
    second += ExponentialMechanism(scores, 1.0, 2.0, rng) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(second / static_cast<double>(kTrials), 0.8, 0.01);
}

TEST(ExponentialMechanismTest, LowEpsilonFlattensChoice) {
  Rng rng(4);
  std::vector<double> scores{0.0, 5.0};
  int second = 0;
  const int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    second += ExponentialMechanism(scores, 1.0, 0.01, rng) == 1 ? 1 : 0;
  }
  // ε→0: nearly uniform.
  EXPECT_NEAR(second / static_cast<double>(kTrials), 0.5, 0.03);
}

TEST(ExponentialMechanismTest, SingleCandidateAlwaysPicked) {
  Rng rng(5);
  std::vector<double> scores{3.0};
  EXPECT_EQ(ExponentialMechanism(scores, 1.0, 1.0, rng), 0u);
}

TEST(NoisyHistogramTest, UnbiasedPerBin) {
  Rng rng(6);
  std::vector<double> counts{100.0, 50.0, 0.0};
  std::vector<double> sums(3, 0.0);
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    auto noisy = NoisyHistogram(counts, 1.0, rng);
    for (size_t i = 0; i < 3; ++i) sums[i] += noisy[i];
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(sums[i] / kTrials, counts[i], 0.15) << "bin " << i;
  }
}

TEST(NoisyHistogramTest, NoiseScaleIsOneOverEpsilon) {
  Rng rng(7);
  std::vector<double> counts{0.0};
  std::vector<double> draws(30000);
  for (auto& d : draws) d = NoisyHistogram(counts, 0.5, rng)[0];
  // Laplace(2) → sd = 2·sqrt(2).
  EXPECT_NEAR(StdDevSample(draws), 2.0 * std::sqrt(2.0), 0.1);
}

TEST(PrivateMedianTest, HighEpsilonFindsMedian) {
  Rng rng(8);
  std::vector<double> data(1001);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i);
  std::vector<double> candidates;
  for (double c = 0; c <= 1000; c += 50) candidates.push_back(c);
  double released = PrivateMedian(data, candidates, /*epsilon=*/50.0, rng);
  EXPECT_NEAR(released, 500.0, 50.0);
}

TEST(PrivateMedianTest, ReleaseIsAlwaysFromCandidateDomain) {
  Rng rng(9);
  std::vector<double> data{1.0, 2.0, 3.0};
  std::vector<double> candidates{0.0, 2.0, 9.0};
  for (int t = 0; t < 200; ++t) {
    double r = PrivateMedian(data, candidates, 0.5, rng);
    EXPECT_TRUE(r == 0.0 || r == 2.0 || r == 9.0);
  }
}

TEST(PrivateMedianTest, SkewedDataStillCentres) {
  Rng rng(10);
  std::vector<double> data;
  for (int i = 0; i < 900; ++i) data.push_back(1.0);
  for (int i = 0; i < 100; ++i) data.push_back(100.0);
  std::sort(data.begin(), data.end());
  std::vector<double> candidates{1.0, 50.0, 100.0};
  int at_one = 0;
  for (int t = 0; t < 200; ++t) {
    at_one += PrivateMedian(data, candidates, 5.0, rng) == 1.0 ? 1 : 0;
  }
  EXPECT_GT(at_one, 150);  // true median is 1
}

}  // namespace
}  // namespace upa::dp
