// Descriptive statistics used throughout the evaluation harness:
// means, variance, percentiles, RMSE (the paper's accuracy metric, §VI-B),
// and compact summaries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace upa {

double Mean(std::span<const double> xs);

/// Population variance (divides by N). Returns 0 for N <= 1.
double VariancePopulation(std::span<const double> xs);

/// Sample variance (divides by N-1). Returns 0 for N <= 1.
double VarianceSample(std::span<const double> xs);

double StdDevPopulation(std::span<const double> xs);
double StdDevSample(std::span<const double> xs);

double Min(std::span<const double> xs);
double Max(std::span<const double> xs);

/// Empirical percentile with linear interpolation, p in [0, 100].
/// Sorts a copy; O(n log n).
double Percentile(std::span<const double> xs, double p);

/// Root mean square error between two equal-length series.
double Rmse(std::span<const double> a, std::span<const double> b);

/// RMSE of (a_i - b_i) / b_i, i.e. the relative error the paper reports
/// ("UPA incurred on average 3.81% RMSE"). Entries where |b_i| < eps are
/// skipped; returns 0 if nothing remains.
double RelativeRmse(std::span<const double> estimates,
                    std::span<const double> truths, double eps = 1e-12);

/// Fraction of xs lying inside [lo, hi] (inclusive). The paper's Figure 3
/// coverage metric.
double CoverageFraction(std::span<const double> xs, double lo, double hi);

/// Five-number-style summary used by the bench harness.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string ToString() const;
};

Summary Summarize(std::span<const double> xs);

}  // namespace upa
