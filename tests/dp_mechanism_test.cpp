#include "dp/mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/stats.h"

namespace upa::dp {
namespace {

TEST(LaplaceMechanismTest, UnbiasedWithCorrectScale) {
  Rng rng(1);
  std::vector<double> noisy(60000);
  for (auto& x : noisy) x = LaplaceMechanism(10.0, 2.0, 0.5, rng);
  // scale b = 2.0 / 0.5 = 4 → sd = sqrt(2)·4.
  EXPECT_NEAR(Mean(noisy), 10.0, 0.15);
  EXPECT_NEAR(StdDevSample(noisy), std::sqrt(2.0) * 4.0, 0.2);
}

TEST(LaplaceMechanismTest, ZeroSensitivityIsNoiseless) {
  Rng rng(2);
  EXPECT_DOUBLE_EQ(LaplaceMechanism(3.5, 0.0, 1.0, rng), 3.5);
}

TEST(LaplaceMechanismTest, VectorPerturbsEachCoordinate) {
  Rng rng(3);
  std::vector<double> v{1.0, 2.0, 3.0};
  auto noisy = LaplaceMechanism(v, 1.0, 10.0, rng);
  ASSERT_EQ(noisy.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NE(noisy[i], v[i]);           // noise applied
    EXPECT_NEAR(noisy[i], v[i], 5.0);    // sane magnitude at eps=10
  }
}

TEST(ClampedReleaseTest, ClampsBeforeNoising) {
  Rng rng(4);
  Interval range{0.0, 1.0};
  // A value far outside the range must be clamped to the boundary; at huge
  // epsilon the noise is negligible.
  double released = ClampedLaplaceRelease(100.0, range, 1e9, rng);
  EXPECT_NEAR(released, 1.0, 1e-3);
  released = ClampedLaplaceRelease(-100.0, range, 1e9, rng);
  EXPECT_NEAR(released, 0.0, 1e-3);
}

TEST(ClampedReleaseTest, InsideValueUnchangedAtHugeEpsilon) {
  Rng rng(5);
  Interval range{0.0, 10.0};
  double released = ClampedLaplaceRelease(4.2, range, 1e9, rng);
  EXPECT_NEAR(released, 4.2, 1e-3);
}

TEST(ClampedReleaseTest, DegenerateRangeStillNoises) {
  // Regression: a zero-width range (degenerate fit) used to release the
  // clamped value exactly — noiselessly. The min-width floor keeps a
  // Laplace scale of at least kMinReleaseWidth / epsilon.
  Interval degenerate{5.0, 5.0};
  Rng rng(7);
  bool any_noise = false;
  for (int i = 0; i < 16; ++i) {
    double released = ClampedLaplaceRelease(5.0, degenerate, 0.1, rng);
    if (released != 5.0) any_noise = true;
  }
  EXPECT_TRUE(any_noise);
}

TEST(ClampedReleaseTest, DegenerateRangeNoiseScaleMatchesFloor) {
  Interval degenerate{5.0, 5.0};
  const double eps = 0.5, floor = 1e-3;
  Rng rng(8);
  std::vector<double> noisy(50000);
  for (auto& x : noisy) {
    x = ClampedLaplaceRelease(5.0, degenerate, eps, rng, floor);
  }
  double expect_sd = std::sqrt(2.0) * floor / eps;
  EXPECT_NEAR(Mean(noisy), 5.0, 5.0 * expect_sd);
  EXPECT_NEAR(StdDevSample(noisy), expect_sd, expect_sd * 0.05);
}

TEST(ClampedReleaseTest, FloorDoesNotInflateWideRanges) {
  // A range wider than the floor is unaffected: identical RNG stream must
  // give an identical release with and without the default floor.
  Interval range{0.0, 10.0};
  Rng rng_a(9), rng_b(9);
  double with_default = ClampedLaplaceRelease(4.0, range, 1.0, rng_a);
  double with_zero_floor =
      ClampedLaplaceRelease(4.0, range, 1.0, rng_b, /*min_width=*/0.0);
  EXPECT_DOUBLE_EQ(with_default, with_zero_floor);
}

// Empirical ε check: the defining iDP inequality
// P(K(x)=o) ≤ e^ε · P(K(x')=o) for the clamp-then-Laplace release, with
// |f(x)-f(x')| equal to the full range width (the worst neighbouring pair).
TEST(ClampedReleaseTest, EmpiricalPrivacyRatioIsBounded) {
  const double eps = 0.5;
  Interval range{0.0, 1.0};
  Rng rng(6);
  const int kTrials = 400000;
  const int kBins = 20;
  std::vector<double> hist_x(kBins, 0.0), hist_xp(kBins, 0.0);
  // Worst case pair after clamping: f(x)=0, f(x')=1.
  auto bin_of = [&](double v) {
    int b = static_cast<int>((v + 3.0) / 7.0 * kBins);  // releases in (-3, 4)
    return std::clamp(b, 0, kBins - 1);
  };
  for (int t = 0; t < kTrials; ++t) {
    hist_x[bin_of(ClampedLaplaceRelease(0.0, range, eps, rng))] += 1.0;
    hist_xp[bin_of(ClampedLaplaceRelease(1.0, range, eps, rng))] += 1.0;
  }
  for (int b = 0; b < kBins; ++b) {
    if (hist_x[b] < 500 || hist_xp[b] < 500) continue;  // noisy tail bins
    double ratio = hist_x[b] / hist_xp[b];
    EXPECT_LT(ratio, std::exp(eps) * 1.15) << "bin " << b;
    EXPECT_GT(ratio, std::exp(-eps) / 1.15) << "bin " << b;
  }
}

// Sweep: noise magnitude scales as sensitivity / epsilon.
struct ScaleCase {
  double sensitivity;
  double epsilon;
};

class LaplaceScaleSweep : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(LaplaceScaleSweep, StdDevMatchesTheory) {
  auto [sens, eps] = GetParam();
  Rng rng(static_cast<uint64_t>(sens * 1000 + eps * 100));
  std::vector<double> noisy(50000);
  for (auto& x : noisy) x = LaplaceMechanism(0.0, sens, eps, rng);
  double expect_sd = std::sqrt(2.0) * sens / eps;
  EXPECT_NEAR(StdDevSample(noisy), expect_sd, expect_sd * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceScaleSweep,
                         ::testing::Values(ScaleCase{1.0, 0.1},
                                           ScaleCase{1.0, 1.0},
                                           ScaleCase{5.0, 0.5},
                                           ScaleCase{0.1, 2.0}));

}  // namespace
}  // namespace upa::dp
