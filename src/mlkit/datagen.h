// Synthetic "life science" dataset (substitute for the paper's ds1.10):
// dense numeric feature vectors drawn from a Gaussian mixture, plus a
// linear response with noise for regression tasks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace upa::ml {

/// One record: a feature vector and (for regression) a response value.
struct MlPoint {
  std::vector<double> x;
  double y = 0.0;
};

struct MlDataConfig {
  size_t num_points = 20000;
  size_t dims = 4;
  size_t mixture_components = 3;
  /// Cluster spread and separation.
  double cluster_stddev = 1.0;
  double cluster_spacing = 6.0;
  /// Response model: y = w·x + b + N(0, noise).
  double response_noise = 0.5;
  uint64_t seed = 7;
};

/// A generated dataset plus its distribution, so fresh domain records
/// (the D \ x side of UPA's neighbour sampling) come from the same mixture.
class MlDataset {
 public:
  explicit MlDataset(MlDataConfig config);

  const MlDataConfig& config() const { return config_; }
  const std::shared_ptr<const std::vector<MlPoint>>& points() const {
    return points_;
  }
  /// The ground-truth regression weights used to synthesize y.
  const std::vector<double>& true_weights() const { return true_weights_; }
  double true_bias() const { return true_bias_; }
  /// Mixture component means (useful as KMeans references).
  const std::vector<std::vector<double>>& component_means() const {
    return means_;
  }

  /// Draws a fresh point from the same mixture (not from the dataset).
  MlPoint SamplePoint(Rng& rng) const;

 private:
  MlPoint DrawPoint(Rng& rng) const;

  MlDataConfig config_;
  std::vector<std::vector<double>> means_;
  std::vector<double> true_weights_;
  double true_bias_ = 0.0;
  std::shared_ptr<const std::vector<MlPoint>> points_;
};

}  // namespace upa::ml
