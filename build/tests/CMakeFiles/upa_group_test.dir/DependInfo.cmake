
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/upa_group_test.cpp" "tests/CMakeFiles/upa_group_test.dir/upa_group_test.cpp.o" "gcc" "tests/CMakeFiles/upa_group_test.dir/upa_group_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/upa/CMakeFiles/upa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/upa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/upa_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/upa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
