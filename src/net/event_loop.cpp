#include "net/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#if defined(__linux__)
#include <sys/epoll.h>
#define UPA_NET_HAVE_EPOLL 1
#else
#define UPA_NET_HAVE_EPOLL 0
#endif

namespace upa::net {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + ::strerror(errno));
}

#if UPA_NET_HAVE_EPOLL
class EpollPoller : public Poller {
 public:
  EpollPoller() : epfd_(epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  Status Add(int fd, bool want_read, bool want_write) override {
    return Control(EPOLL_CTL_ADD, fd, want_read, want_write);
  }
  Status Modify(int fd, bool want_read, bool want_write) override {
    return Control(EPOLL_CTL_MOD, fd, want_read, want_write);
  }
  Status Remove(int fd) override {
    if (epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
      return ErrnoStatus("epoll_ctl(DEL)");
    }
    return Status::Ok();
  }

  Status Wait(int timeout_ms, std::vector<Event>* out) override {
    epoll_event events[64];
    int n = epoll_wait(epfd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::Ok();
      return ErrnoStatus("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(e);
    }
    return Status::Ok();
  }

 private:
  Status Control(int op, int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.data.fd = fd;
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    if (epoll_ctl(epfd_, op, fd, &ev) != 0) return ErrnoStatus("epoll_ctl");
    return Status::Ok();
  }

  int epfd_;
};
#endif  // UPA_NET_HAVE_EPOLL

/// Portable fallback: poll(2) over a registration map, pollfd array
/// rebuilt per Wait. O(fds) per wakeup — fine at front-door connection
/// counts; the epoll backend carries the scale story.
class PollPoller : public Poller {
 public:
  Status Add(int fd, bool want_read, bool want_write) override {
    interest_[fd] = {want_read, want_write};
    return Status::Ok();
  }
  Status Modify(int fd, bool want_read, bool want_write) override {
    auto it = interest_.find(fd);
    if (it == interest_.end()) {
      return Status::NotFound("poll: fd not registered");
    }
    it->second = {want_read, want_write};
    return Status::Ok();
  }
  Status Remove(int fd) override {
    interest_.erase(fd);
    return Status::Ok();
  }

  Status Wait(int timeout_ms, std::vector<Event>* out) override {
    pollfds_.clear();
    for (const auto& [fd, want] : interest_) {
      pollfd p{};
      p.fd = fd;
      if (want.first) p.events |= POLLIN;
      if (want.second) p.events |= POLLOUT;
      pollfds_.push_back(p);
    }
    int n = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::Ok();
      return ErrnoStatus("poll");
    }
    for (const pollfd& p : pollfds_) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out->push_back(e);
    }
    return Status::Ok();
  }

 private:
  std::map<int, std::pair<bool, bool>> interest_;
  std::vector<pollfd> pollfds_;
};

}  // namespace

std::unique_ptr<Poller> Poller::Create(PollerKind kind) {
#if UPA_NET_HAVE_EPOLL
  if (kind == PollerKind::kEpoll) return std::make_unique<EpollPoller>();
#else
  (void)kind;
#endif
  return std::make_unique<PollPoller>();
}

EventLoop::EventLoop(PollerKind kind) : poller_(Poller::Create(kind)) {
  int fds[2];
  UPA_CHECK_MSG(::pipe(fds) == 0, "event loop wake pipe");
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  ::fcntl(wake_read_fd_, F_SETFL, O_NONBLOCK);
  ::fcntl(wake_write_fd_, F_SETFL, O_NONBLOCK);
  UPA_CHECK(poller_->Add(wake_read_fd_, /*want_read=*/true,
                         /*want_write=*/false)
                .ok());
}

EventLoop::~EventLoop() {
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
}

Status EventLoop::RegisterFd(int fd, bool want_read, bool want_write,
                             FdCallback cb) {
  UPA_RETURN_IF_ERROR(poller_->Add(fd, want_read, want_write));
  callbacks_[fd] = std::move(cb);
  return Status::Ok();
}

Status EventLoop::UpdateFd(int fd, bool want_read, bool want_write) {
  return poller_->Modify(fd, want_read, want_write);
}

void EventLoop::UnregisterFd(int fd) {
  (void)poller_->Remove(fd);
  callbacks_.erase(fd);
  // Poison any readiness events for this fd still queued in the current
  // dispatch round: a callback that follows may accept a new connection
  // whose socket reuses this fd number, and the stale events (notably a
  // stale `error` flag) must not reach the fresh registration.
  dead_this_round_.push_back(fd);
}

void EventLoop::RunInLoop(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (stopped_) return;  // loop gone; drop the closure
    pending_.push_back(std::move(fn));
  }
  // Wake the loop; a full pipe already guarantees a pending wakeup.
  char byte = 1;
  ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
  (void)ignored;
}

void EventLoop::SetTickHandler(double interval_ms,
                               std::function<void()> on_tick) {
  tick_interval_ms_ = interval_ms;
  on_tick_ = std::move(on_tick);
  next_tick_ns_ =
      NowNanos() + static_cast<int64_t>(tick_interval_ms_ * 1e6);
}

void EventLoop::DrainWakeups() {
  char buf[256];
  while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

int EventLoop::NextTimeoutMs() const {
  if (tick_interval_ms_ <= 0.0 || !on_tick_) return -1;
  int64_t delta_ns = next_tick_ns_ - NowNanos();
  if (delta_ns <= 0) return 0;
  // Round up so a near-due tick doesn't spin at timeout 0.
  return static_cast<int>((delta_ns + 999999) / 1000000);
}

void EventLoop::Run() {
  loop_thread_ = std::this_thread::get_id();
  std::vector<Poller::Event> events;
  std::vector<std::function<void()>> to_run;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      if (stopped_) break;
    }

    events.clear();
    Status waited = poller_->Wait(NextTimeoutMs(), &events);
    UPA_CHECK_MSG(waited.ok(), waited.ToString());

    // Posted closures first: they may register/close fds the readiness
    // list below refers to (the callback lookup tolerates removals).
    dead_this_round_.clear();
    to_run.clear();
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      to_run.swap(pending_);
    }
    for (auto& fn : to_run) fn();

    for (const Poller::Event& event : events) {
      if (event.fd == wake_read_fd_) {
        DrainWakeups();
        continue;
      }
      // Skip fds unregistered earlier in this round even if the number was
      // re-registered since: the event belongs to the OLD socket, and a
      // fresh connection reusing the fd must not inherit it (the new fd's
      // own readiness arrives level-triggered on the next Wait).
      if (std::find(dead_this_round_.begin(), dead_this_round_.end(),
                    event.fd) != dead_this_round_.end()) {
        continue;
      }
      // Re-look-up per event: an earlier callback may have closed this fd.
      auto it = callbacks_.find(event.fd);
      if (it == callbacks_.end()) continue;
      // Copy: the callback may unregister itself, invalidating `it`.
      FdCallback cb = it->second;
      cb(event.readable, event.writable, event.error);
    }

    if (tick_interval_ms_ > 0.0 && on_tick_ && NowNanos() >= next_tick_ns_) {
      next_tick_ns_ =
          NowNanos() + static_cast<int64_t>(tick_interval_ms_ * 1e6);
      on_tick_();
    }
  }
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    stopped_ = true;
    pending_.clear();
  }
  char byte = 1;
  ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
  (void)ignored;
}

}  // namespace upa::net
