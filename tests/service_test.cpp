// Functional tests of the multi-tenant UpaService: admission control,
// per-dataset sensitivity caching and epochs, two-phase budget
// charge/refund, and the stats report.
#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "upa/simple_query.h"

namespace upa::service {
namespace {

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 4});
  return ctx;
}

/// A counting query over `n` records: M(r) = [1], f(x) = |x|.
core::QueryInstance CountQuery(size_t n, const std::string& name = "count") {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  auto records = std::make_shared<std::vector<int>>(n, 0);
  std::iota(records->begin(), records->end(), 0);
  spec.records = records;
  spec.map_record = [](const int&) { return core::Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

/// A count query whose map phase blocks until `gate` opens — used to pin a
/// request in-flight while the test probes queueing behaviour.
core::QueryInstance GatedQuery(size_t n, std::shared_ptr<std::atomic<bool>> gate,
                               const std::string& name = "gated") {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  auto records = std::make_shared<std::vector<int>>(n, 0);
  spec.records = records;
  spec.map_record = [gate](const int&) {
    while (!gate->load(std::memory_order_acquire)) std::this_thread::yield();
    return core::Vec{1.0};
  };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

ServiceConfig FastConfig() {
  ServiceConfig config;
  config.upa.sample_n = 100;
  config.upa.add_noise = false;
  return config;
}

QueryRequest MakeRequest(const std::string& tenant, const std::string& dataset,
                         core::QueryInstance query, uint64_t seed = 1) {
  QueryRequest request;
  request.tenant = tenant;
  request.dataset_id = dataset;
  request.query = std::move(query);
  request.epsilon = 0.1;
  request.seed = seed;
  return request;
}

TEST(ServiceTest, ExecutesCountQueryEndToEnd) {
  UpaService service(&Ctx(), FastConfig());
  auto result = service.Execute(MakeRequest("alice", "ds", CountQuery(5000)));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryResponse& response = result.value();
  // No noise: the release is the clamped exact count, and the count query's
  // output range is centred on 5000 with sensitivity ~1.
  EXPECT_NEAR(response.released, 5000.0, 2.0);
  EXPECT_NEAR(response.local_sensitivity, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(response.epsilon, 0.1);
  EXPECT_FALSE(response.sensitivity_cache_hit);
  EXPECT_EQ(response.dataset_epoch, 0u);
  EXPECT_NEAR(service.accountant().Spent("ds"), 0.1, 1e-12);
}

TEST(ServiceTest, RepeatedFingerprintHitsSensitivityCache) {
  UpaService service(&Ctx(), FastConfig());
  auto first = service.Execute(MakeRequest("a", "ds", CountQuery(5000), 1));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().sensitivity_cache_hit);
  EXPECT_EQ(service.CachedSensitivities("ds"), 1u);

  // Same query name → same derived fingerprint → cached sensitivity reused.
  auto second = service.Execute(MakeRequest("a", "ds", CountQuery(5000), 2));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().sensitivity_cache_hit);
  EXPECT_DOUBLE_EQ(second.value().local_sensitivity,
                   first.value().local_sensitivity);
  EXPECT_EQ(service.CachedSensitivities("ds"), 1u);
}

TEST(ServiceTest, ExplicitFingerprintsAreDistinctCacheKeys) {
  UpaService service(&Ctx(), FastConfig());
  QueryRequest request = MakeRequest("a", "ds", CountQuery(5000), 1);
  request.fingerprint = 7;
  ASSERT_TRUE(service.Execute(request).ok());
  QueryRequest other = MakeRequest("a", "ds", CountQuery(5000), 2);
  other.fingerprint = 8;
  auto result = service.Execute(other);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().sensitivity_cache_hit);
  EXPECT_EQ(service.CachedSensitivities("ds"), 2u);
}

TEST(ServiceTest, BumpEpochInvalidatesCachedSensitivities) {
  UpaService service(&Ctx(), FastConfig());
  ASSERT_TRUE(service.Execute(MakeRequest("a", "ds", CountQuery(5000), 1)).ok());
  EXPECT_EQ(service.CachedSensitivities("ds"), 1u);

  service.BumpEpoch("ds");
  EXPECT_EQ(service.Epoch("ds"), 1u);
  EXPECT_EQ(service.CachedSensitivities("ds"), 0u);

  auto after = service.Execute(MakeRequest("a", "ds", CountQuery(5000), 2));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().sensitivity_cache_hit);
  EXPECT_EQ(after.value().dataset_epoch, 1u);
}

TEST(ServiceTest, LruEvictsOldestFingerprint) {
  ServiceConfig config = FastConfig();
  config.sensitivity_cache_capacity = 2;
  UpaService service(&Ctx(), config);
  for (uint64_t fp = 1; fp <= 3; ++fp) {
    QueryRequest request = MakeRequest("a", "ds", CountQuery(2000), fp);
    request.fingerprint = fp;
    ASSERT_TRUE(service.Execute(request).ok());
  }
  EXPECT_EQ(service.CachedSensitivities("ds"), 2u);
  // fp=1 was evicted: querying it again misses.
  QueryRequest request = MakeRequest("a", "ds", CountQuery(2000), 9);
  request.fingerprint = 1;
  auto result = service.Execute(request);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().sensitivity_cache_hit);
}

TEST(ServiceTest, FailedRunRefundsItsCharge) {
  // lo_percentile = 0 makes every run fail inside the runner (recoverable
  // INVALID_ARGUMENT) — after the failure the budget must be untouched.
  ServiceConfig config = FastConfig();
  config.upa.sensitivity_rule = core::SensitivityRule::kOutputRange;
  config.upa.lo_percentile = 0.0;
  UpaService service(&Ctx(), config);
  auto result = service.Execute(MakeRequest("a", "ds", CountQuery(1000)));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(service.accountant().Spent("ds"), 0.0);
  EXPECT_DOUBLE_EQ(service.accountant().Remaining("ds"),
                   service.config().budget_per_dataset);
}

TEST(ServiceTest, ExhaustedBudgetDeniesQueries) {
  ServiceConfig config = FastConfig();
  config.budget_per_dataset = 0.15;  // room for one 0.1 query, not two
  UpaService service(&Ctx(), config);
  ASSERT_TRUE(service.Execute(MakeRequest("a", "ds", CountQuery(1000), 1)).ok());
  auto denied = service.Execute(MakeRequest("a", "ds", CountQuery(1000), 2));
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kOutOfRange);
  // The denied query spent nothing; other datasets are unaffected.
  EXPECT_NEAR(service.accountant().Spent("ds"), 0.1, 1e-12);
  ASSERT_TRUE(service.Execute(MakeRequest("a", "other", CountQuery(1000), 3)).ok());
}

TEST(ServiceTest, FullTenantBacklogRejectsWithResourceExhausted) {
  ServiceConfig config = FastConfig();
  config.max_queue_per_tenant = 1;
  auto gate = std::make_shared<std::atomic<bool>>(false);
  {
    UpaService service(&Ctx(), config);
    // First request dispatches and blocks on the gate; the tenant is then
    // `running`, so the second sits in its backlog (size 1 = the cap).
    auto running = service.Submit(
        MakeRequest("alice", "ds", GatedQuery(500, gate), 1));
    auto queued = service.Submit(
        MakeRequest("alice", "ds", GatedQuery(500, gate), 2));
    auto rejected = service.Submit(
        MakeRequest("alice", "ds", GatedQuery(500, gate), 3));
    auto status = rejected.get().status();
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    // Another tenant is unaffected by alice's full backlog.
    auto other = service.Submit(MakeRequest("bob", "ds2", CountQuery(500), 4));
    gate->store(true, std::memory_order_release);
    EXPECT_TRUE(running.get().ok());
    EXPECT_TRUE(queued.get().ok());
    EXPECT_TRUE(other.get().ok());
  }  // destructor drains cleanly
}

TEST(ServiceTest, SingleSlotAdmissionStillCompletesAllTenants) {
  ServiceConfig config = FastConfig();
  config.max_in_flight = 1;
  UpaService service(&Ctx(), config);
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit(MakeRequest(
        "t" + std::to_string(i % 3), "d" + std::to_string(i % 3),
        CountQuery(1000), static_cast<uint64_t>(i + 1))));
  }
  for (auto& future : futures) {
    auto result = future.get();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
}

TEST(ServiceTest, StatsReportCoversTenantsDatasetsAndLatency) {
  engine::ExecContext ctx(engine::ExecConfig{.threads = 2});
  ServiceConfig config = FastConfig();
  UpaService service(&ctx, config);
  ASSERT_TRUE(service.Execute(MakeRequest("alice", "ds", CountQuery(2000))).ok());
  std::string report = service.StatsReport();
  EXPECT_NE(report.find("in_flight:"), std::string::npos) << report;
  EXPECT_NE(report.find("alice: submitted=1 completed=1"), std::string::npos)
      << report;
  EXPECT_NE(report.find("ds: epoch=0 queries=1"), std::string::npos) << report;
  EXPECT_NE(report.find("service/queries: 1"), std::string::npos) << report;
  EXPECT_NE(report.find("service/sens_cache_miss: 1"), std::string::npos)
      << report;
  EXPECT_NE(report.find("service/total"), std::string::npos) << report;
}

// Regression: a zero queue or in-flight limit used to be accepted at
// construction and then wedge every submission; now it is rejected up
// front and every query answers with the construction-time verdict.
TEST(ServiceTest, InvalidLimitsAreRejectedAtConstruction) {
  {
    ServiceConfig config = FastConfig();
    config.max_in_flight = 0;
    EXPECT_EQ(ValidateServiceConfig(config).code(),
              StatusCode::kInvalidArgument);
    UpaService service(&Ctx(), config);
    EXPECT_EQ(service.config_status().code(), StatusCode::kInvalidArgument);
    auto result = service.Execute(MakeRequest("t", "ds", CountQuery(100)));
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_DOUBLE_EQ(service.accountant().Spent("ds"), 0.0);
  }
  {
    ServiceConfig config = FastConfig();
    config.max_queue_per_tenant = 0;
    EXPECT_EQ(ValidateServiceConfig(config).code(),
              StatusCode::kInvalidArgument);
    UpaService service(&Ctx(), config);
    auto result = service.Execute(MakeRequest("t", "ds", CountQuery(100)));
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(ValidateServiceConfig(FastConfig()).ok());
}

TEST(ServiceTest, DestructorDrainsPendingWork) {
  std::vector<std::future<Result<QueryResponse>>> futures;
  {
    UpaService service(&Ctx(), FastConfig());
    for (int i = 0; i < 4; ++i) {
      futures.push_back(service.Submit(MakeRequest(
          "t", "ds", CountQuery(1000), static_cast<uint64_t>(i + 1))));
    }
  }
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
}

}  // namespace
}  // namespace upa::service
