#include "relational/buffer_manager.h"

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <random>
#include <vector>

#include "common/env.h"
#include "relational/columnar.h"
#include "relational/table.h"

namespace upa::rel {
namespace {

constexpr char kSpillPrefix[] = "upa-spill-";
constexpr char kSpillSuffix[] = ".colspill";

/// Parses the owner pid out of "upa-spill-<pid>-<nonce>-<uid>.colspill".
/// Returns false for legacy names without an embedded pid (pre-namespace
/// "upa-spill-<uid>.colspill", which has no '-' after the uid).
bool ParseSpillOwnerPid(const std::string& filename, long* pid) {
  std::string_view name = filename;
  if (name.size() <= sizeof(kSpillPrefix) - 1 + sizeof(kSpillSuffix) - 1) {
    return false;
  }
  if (name.substr(0, sizeof(kSpillPrefix) - 1) != kSpillPrefix) return false;
  name.remove_prefix(sizeof(kSpillPrefix) - 1);
  size_t dash = name.find('-');
  if (dash == 0 || dash == std::string_view::npos) return false;
  long value = 0;
  for (char c : name.substr(0, dash)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *pid = value;
  return true;
}

bool PidAlive(long pid) {
  if (pid <= 0) return false;
  // Signal 0 probes existence: EPERM means alive but foreign, which still
  // counts as alive for sweeping purposes.
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

}  // namespace

BufferManager& BufferManager::Instance() {
  static BufferManager* mgr = new BufferManager();  // leaked: outlives Tables
  return *mgr;
}

BufferManager::BufferManager() {
  config_.budget_bytes = static_cast<size_t>(
      std::max<int64_t>(0, EnvInt("UPA_MEM_BUDGET_BYTES", 0)));
  config_.spill_dir = EnvString("UPA_SPILL_DIR", "");
  spill_pid_ = static_cast<uint64_t>(::getpid());
  std::random_device rd;
  spill_nonce_ = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  if (!config_.spill_dir.empty()) SweepStaleSpills(config_.spill_dir);
}

void BufferManager::Configure(const Config& config) {
  std::string sweep_dir;
  {
    std::lock_guard lock(mu_);
    if (!config.spill_dir.empty() && config.spill_dir != config_.spill_dir) {
      sweep_dir = config.spill_dir;
    }
    config_ = config;
    peak_ = resident_;
    admissions_ = evictions_ = spills_written_ = spill_loads_ = over_budget_ =
        0;
  }
  if (!sweep_dir.empty()) SweepStaleSpills(sweep_dir);
}

std::string BufferManager::SpillFileName(uint64_t uid) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s%llu-%016llx-%llu%s", kSpillPrefix,
                static_cast<unsigned long long>(spill_pid_),
                static_cast<unsigned long long>(spill_nonce_),
                static_cast<unsigned long long>(uid), kSpillSuffix);
  return buf;
}

void BufferManager::SetSpillNamespaceForTest(uint64_t pid, uint64_t nonce) {
  std::lock_guard lock(mu_);
  spill_pid_ = pid;
  spill_nonce_ = nonce;
}

size_t BufferManager::SweepStaleSpills(const std::string& dir) {
  namespace fs = std::filesystem;
  size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSpillPrefix, 0) != 0) continue;
    if (name.size() < sizeof(kSpillSuffix) ||
        name.compare(name.size() - (sizeof(kSpillSuffix) - 1),
                     sizeof(kSpillSuffix) - 1, kSpillSuffix) != 0) {
      continue;
    }
    long pid = 0;
    // A parseable owner pid that is still alive keeps the file (it may be
    // another shard's live spill). A dead owner — or a legacy filename
    // with no owner at all — is debris from a previous run: spills are
    // pure cache (the row store is the durable copy), so deletion is safe.
    if (ParseSpillOwnerPid(name, &pid) && PidAlive(pid)) continue;
    if (fs::remove(entry.path(), ec)) ++removed;
  }
  return removed;
}

BufferManager::Config BufferManager::config() const {
  std::lock_guard lock(mu_);
  return config_;
}

BufferManager::Stats BufferManager::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.budget_bytes = config_.budget_bytes;
  s.resident_bytes = resident_;
  s.peak_resident_bytes = peak_;
  s.admissions = admissions_;
  s.evictions = evictions_;
  s.spills_written = spills_written_;
  s.spill_loads = spill_loads_;
  s.over_budget_admissions = over_budget_;
  return s;
}

void BufferManager::ResetStats() {
  std::lock_guard lock(mu_);
  peak_ = resident_;
  admissions_ = evictions_ = spills_written_ = spill_loads_ = over_budget_ = 0;
}

bool BufferManager::EnforceBudgetLocked(size_t incoming_bytes,
                                        const Table* incoming_table) {
  // Try victims oldest-first; a pinned victim is skipped for this pass (its
  // pin can only be released by a query finishing, not by waiting here).
  while (resident_ + incoming_bytes > config_.budget_bytes) {
    const Table* victim = nullptr;
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (const auto& [table, entry] : entries_) {
      if (table == incoming_table) continue;
      if (entry.lru < oldest) {
        oldest = entry.lru;
        victim = table;
      }
    }
    bool progressed = false;
    while (victim != nullptr) {
      const uint64_t uid = victim->uid();
      std::string path;
      if (!config_.spill_dir.empty()) {
        path = config_.spill_dir + "/" + SpillFileName(uid);
      }
      bool spilled = false;
      const size_t freed = victim->EvictColumnar(path, &spilled);
      if (freed > 0) {
        auto it = entries_.find(victim);
        resident_ -= std::min(resident_, it->second.bytes);
        entries_.erase(it);
        ++evictions_;
        if (spilled) {
          spills_[uid] = path;
          ++spills_written_;
        } else {
          spills_.erase(uid);  // any older spill is still valid data, but a
                               // failed rewrite may have truncated it
        }
        progressed = true;
        break;
      }
      // Pinned (or already empty): advance to the next-oldest candidate.
      const Table* next_victim = nullptr;
      uint64_t next_oldest = std::numeric_limits<uint64_t>::max();
      for (const auto& [table, entry] : entries_) {
        if (table == incoming_table) continue;
        if (entry.lru > oldest && entry.lru < next_oldest) {
          next_oldest = entry.lru;
          next_victim = table;
        }
      }
      oldest = next_oldest;
      victim = next_victim;
    }
    if (!progressed) return false;  // every candidate pinned
  }
  return true;
}

void BufferManager::Admit(const Table* table, size_t bytes) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(table);
  if (it != entries_.end()) {
    resident_ -= std::min(resident_, it->second.bytes);
    entries_.erase(it);
  }
  if (config_.budget_bytes > 0) {
    if (!EnforceBudgetLocked(bytes, table)) ++over_budget_;
  }
  entries_[table] = {bytes, ++next_lru_};
  resident_ += bytes;
  peak_ = std::max(peak_, resident_);
  ++admissions_;
}

void BufferManager::Forget(const Table* table, uint64_t uid, bool drop_spill) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(table);
  if (it != entries_.end()) {
    resident_ -= std::min(resident_, it->second.bytes);
    entries_.erase(it);
  }
  if (drop_spill) {
    auto sp = spills_.find(uid);
    if (sp != spills_.end()) {
      std::remove(sp->second.c_str());
      spills_.erase(sp);
    }
  }
}

std::string BufferManager::SpillPathFor(uint64_t uid) const {
  std::lock_guard lock(mu_);
  auto it = spills_.find(uid);
  return it == spills_.end() ? std::string() : it->second;
}

void BufferManager::NoteSpillLoad() {
  std::lock_guard lock(mu_);
  ++spill_loads_;
}

}  // namespace upa::rel
