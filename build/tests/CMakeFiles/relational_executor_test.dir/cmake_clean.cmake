file(REMOVE_RECURSE
  "CMakeFiles/relational_executor_test.dir/relational_executor_test.cpp.o"
  "CMakeFiles/relational_executor_test.dir/relational_executor_test.cpp.o.d"
  "relational_executor_test"
  "relational_executor_test.pdb"
  "relational_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
