// Consistent-hash ring over dataset ids.
//
// The cluster's placement rule: dataset → shard is a pure function of the
// dataset id and the shard count, computed identically by every router
// instance (no coordination, no metadata service). Each shard contributes
// `vnodes_per_shard` points on a 64-bit hash circle; a dataset lands on
// the first point clockwise of its own hash. Virtual nodes smooth the
// load split, and growing the cluster by one shard moves only the
// datasets that fall into the new shard's arcs (~1/(n+1) of them) —
// everything else keeps its journal and budget where it is.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace upa::cluster {

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(size_t num_shards, size_t vnodes_per_shard = 64);

  /// Shard index in [0, num_shards) owning `dataset_id`. Deterministic
  /// across processes and runs.
  size_t ShardFor(std::string_view dataset_id) const;

  size_t num_shards() const { return num_shards_; }

 private:
  struct Point {
    uint64_t hash;
    uint32_t shard;
  };

  size_t num_shards_;
  std::vector<Point> points_;  // sorted by (hash, shard)
};

}  // namespace upa::cluster
