#include "engine/accumulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "engine/dataset.h"

namespace upa::engine {
namespace {

ExecContext& Ctx() {
  static ExecContext ctx(ExecConfig{.threads = 4, .default_partitions = 4});
  return ctx;
}

TEST(CounterAccumulatorTest, CountsAndResets) {
  CounterAccumulator acc;
  acc.Add();
  acc.Add(5);
  EXPECT_EQ(acc.value(), 6u);
  acc.Reset();
  EXPECT_EQ(acc.value(), 0u);
}

TEST(CounterAccumulatorTest, CountsFromParallelTasks) {
  CounterAccumulator filtered;
  std::vector<int> values(10000);
  std::iota(values.begin(), values.end(), 0);
  auto ds = Dataset<int>::FromVector(&Ctx(), values, 8);
  ds.Filter([&filtered](const int& v) {
      bool keep = v % 3 == 0;
      if (!keep) filtered.Add();
      return keep;
    }).Count();
  EXPECT_EQ(filtered.value(), 10000u - (10000u + 2) / 3);
}

TEST(GenericAccumulatorTest, MaxMonoid) {
  Accumulator acc(0.0, [](double a, double b) { return std::max(a, b); });
  acc.Add(3.5);
  acc.Add(1.0);
  acc.Add(9.25);
  EXPECT_DOUBLE_EQ(acc.value(), 9.25);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
}

TEST(GenericAccumulatorTest, ParallelSumMatchesSerial) {
  Accumulator acc(0L, [](long a, long b) { return a + b; });
  std::vector<int> values(5000);
  std::iota(values.begin(), values.end(), 1);
  auto ds = Dataset<int>::FromVector(&Ctx(), values, 8);
  ds.Map([&acc](const int& v) {
      acc.Add(v);
      return v;
    }).Count();
  EXPECT_EQ(acc.value(), 5000L * 5001 / 2);
}

}  // namespace
}  // namespace upa::engine
