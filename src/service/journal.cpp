#include "service/journal.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/failpoint.h"
#include "common/hash.h"

namespace upa::service {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MiB sanity bound
// Snapshot format v2 appends the dedup-window section; v1 snapshots (from
// before idempotency keys existed) are still readable with an empty window.
constexpr char kSnapshotMagicV1[8] = {'U', 'P', 'A', 'S', 'N', 'A', 'P', '1'};
constexpr char kSnapshotMagicV2[8] = {'U', 'P', 'A', 'S', 'N', 'A', 'P', '2'};

uint64_t BitsFromDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void AppendU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Bounds-checked little-endian cursor over a byte buffer.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }
  bool ReadBytes(size_t n, std::string* out) {
    if (pos_ + n > size_) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }
  size_t pos() const { return pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

std::string EncodePayload(const JournalRecord& record) {
  std::string payload;
  AppendU8(payload, static_cast<uint8_t>(record.type));
  AppendU64(payload, record.qid);
  AppendU64(payload, BitsFromDouble(record.epsilon));
  AppendU64(payload, record.epoch);
  AppendU32(payload, static_cast<uint32_t>(record.partition_outputs.size()));
  for (double v : record.partition_outputs) {
    AppendU64(payload, BitsFromDouble(v));
  }
  AppendU32(payload, static_cast<uint32_t>(record.dataset_id.size()));
  payload.append(record.dataset_id);
  AppendU64(payload, record.nonce);
  AppendU64(payload, record.key_seq);
  AppendU64(payload, record.request_hash);
  AppendU32(payload, static_cast<uint32_t>(record.response_blob.size()));
  payload.append(record.response_blob);
  return payload;
}

bool DecodePayload(const std::string& payload, JournalRecord* record) {
  Reader r(payload.data(), payload.size());
  uint8_t type = 0;
  uint64_t eps_bits = 0;
  uint32_t vec_len = 0;
  uint32_t id_len = 0;
  if (!r.ReadU8(&type) || !r.ReadU64(&record->qid) || !r.ReadU64(&eps_bits) ||
      !r.ReadU64(&record->epoch) || !r.ReadU32(&vec_len)) {
    return false;
  }
  if (type < static_cast<uint8_t>(JournalRecord::Type::kOpen) ||
      type > static_cast<uint8_t>(JournalRecord::Type::kExpire)) {
    return false;
  }
  record->type = static_cast<JournalRecord::Type>(type);
  record->epsilon = DoubleFromBits(eps_bits);
  record->partition_outputs.clear();
  record->partition_outputs.reserve(vec_len);
  for (uint32_t i = 0; i < vec_len; ++i) {
    uint64_t bits = 0;
    if (!r.ReadU64(&bits)) return false;
    record->partition_outputs.push_back(DoubleFromBits(bits));
  }
  if (!r.ReadU32(&id_len)) return false;
  if (!r.ReadBytes(id_len, &record->dataset_id)) return false;
  // Records written before idempotency keys end here; treat them as
  // unkeyed. (Offset arithmetic in recovery uses on-disk sizes, never a
  // re-encode, so the shorter legacy form replays correctly.)
  record->nonce = 0;
  record->key_seq = 0;
  record->request_hash = 0;
  record->response_blob.clear();
  if (r.AtEnd()) return true;
  uint32_t blob_len = 0;
  if (!r.ReadU64(&record->nonce) || !r.ReadU64(&record->key_seq) ||
      !r.ReadU64(&record->request_hash) || !r.ReadU32(&blob_len) ||
      !r.ReadBytes(blob_len, &record->response_blob)) {
    return false;
  }
  return r.AtEnd();
}

std::string FrameRecord(const JournalRecord& record) {
  std::string payload = EncodePayload(record);
  std::string frame;
  frame.reserve(payload.size() + 12);
  AppendU32(frame, static_cast<uint32_t>(payload.size()));
  AppendU64(frame, Fnv1a(payload));
  frame.append(payload);
  return frame;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("read error on '" + path + "'");
  }
  return data;
}

/// Syncs a directory's entry table so renames/creations inside it survive
/// power loss (fsync of a file does not cover its directory entry).
Status SyncDir(const std::string& dir) {
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::Internal("open dir '" + dir + "': " + ::strerror(errno));
  }
  int rc = ::fsync(dfd);
  int saved = errno;
  ::close(dfd);
  if (rc != 0) {
    return Status::Internal("fsync dir '" + dir + "': " + ::strerror(saved));
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, const std::string& data,
                       bool fsync) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot create '" + tmp + "'");
  }
  bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = (std::fflush(f) == 0) && ok;
  // The tmp payload must be on disk BEFORE the rename publishes it: a
  // crash between rename and writeback could otherwise leave the final
  // name pointing at garbage — strictly worse than keeping the old file.
  if (fsync && ok) ok = ::fsync(::fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to '" + tmp + "'");
  }
  UPA_FAILPOINT("journal/snapshot_sync");
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::Internal("rename '" + tmp + "' -> '" + path +
                            "': " + ec.message());
  }
  if (fsync) {
    UPA_RETURN_IF_ERROR(SyncDir(fs::path(path).parent_path().string()));
  }
  return Status::Ok();
}

std::string JournalPath(const std::string& dir, const std::string& dataset_id) {
  return (fs::path(dir) / (Journal::FileStem(dataset_id) + ".journal"))
      .string();
}

std::string SnapshotPath(const std::string& dir,
                         const std::string& dataset_id) {
  return (fs::path(dir) / (Journal::FileStem(dataset_id) + ".snapshot"))
      .string();
}

/// Applies one replayed record to the accumulating state. kOpen is a file
/// header, not a mutation; an unknown dataset_id mismatch is a corruption
/// signal handled by the caller.
void ApplyRecord(const JournalRecord& rec, DatasetDurableState* state,
                 std::map<uint64_t, double>* pending) {
  switch (rec.type) {
    case JournalRecord::Type::kOpen:
      break;
    case JournalRecord::Type::kCharge:
      state->charged_total += rec.epsilon;
      (*pending)[rec.qid] = rec.epsilon;
      break;
    case JournalRecord::Type::kRelease:
      state->registry.push_back(rec.partition_outputs);
      pending->erase(rec.qid);
      if (rec.nonce != 0) {
        DedupDurableEntry entry;
        entry.nonce = rec.nonce;
        entry.seq = rec.key_seq;
        entry.request_hash = rec.request_hash;
        entry.response_blob = rec.response_blob;
        state->dedup.push_back(std::move(entry));
      }
      break;
    case JournalRecord::Type::kRefund:
      state->refunded_total += rec.epsilon;
      pending->erase(rec.qid);
      break;
    case JournalRecord::Type::kEpochBump:
      state->epoch = rec.epoch;
      break;
    case JournalRecord::Type::kExpire:
      // Crash-consistent dedup-window eviction: the key leaves the window
      // only once the expiry itself is journaled, so a crash between the
      // in-memory evict and the append can never resurrect a replay the
      // service already stopped promising.
      for (auto it = state->dedup.begin(); it != state->dedup.end(); ++it) {
        if (it->nonce == rec.nonce && it->seq == rec.key_seq) {
          state->dedup.erase(it);
          break;
        }
      }
      break;
  }
}

}  // namespace

std::string Journal::FileStem(const std::string& dataset_id) {
  std::string sanitized;
  for (char c : dataset_id) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '-' || c == '_';
    sanitized.push_back(safe ? c : '_');
    if (sanitized.size() >= 48) break;
  }
  if (sanitized.empty()) sanitized = "dataset";
  char suffix[24];
  std::snprintf(suffix, sizeof(suffix), "-%016llx",
                static_cast<unsigned long long>(Fnv1a(dataset_id)));
  return sanitized + suffix;
}

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& dir,
                                               const std::string& dataset_id,
                                               bool fsync) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create journal dir '" + dir +
                            "': " + ec.message());
  }
  std::string path = JournalPath(dir, dataset_id);
  bool fresh = !fs::exists(path);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal("cannot open journal '" + path + "'");
  }
  std::unique_ptr<Journal> journal(new Journal(std::move(path), f, fsync));
  if (fresh) {
    JournalRecord open;
    open.type = JournalRecord::Type::kOpen;
    open.dataset_id = dataset_id;
    UPA_RETURN_IF_ERROR(journal->Append(open));
    // fdatasync makes the kOpen frame durable, but a brand-new file also
    // needs its directory entry on disk, or the whole journal vanishes
    // with a power cut.
    if (fsync) UPA_RETURN_IF_ERROR(SyncDir(dir));
  }
  return journal;
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status Journal::Append(const JournalRecord& record) {
  std::string frame = FrameRecord(record);
  std::lock_guard lock(mu_);
  // Crash sites for the recovery tests: aborting at before_append leaves
  // the record absent; at after_append, durable. Both must recover to a
  // conserving state.
  UPA_FAILPOINT("journal/before_append");
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal '" + path_ + "' is closed");
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    // A short write may have left a torn frame; anything appended after
    // it would be unreachable (readers stop at the first bad frame), so
    // the journal is poisoned: every later Append fails fast and the
    // service stops mutating this dataset until restart/recovery.
    std::fclose(file_);
    file_ = nullptr;
    return Status::Internal("journal append failed on '" + path_ +
                            "' (journal closed; restart to recover)");
  }
  if (fsync_) {
    // Between the flush and the sync the frame exists only in the page
    // cache: a crash here may or may not keep it — both are intact-or-torn
    // states recovery already conserves. After the sync, the frame is
    // durable against power loss, which is what lets the service
    // acknowledge releases.
    UPA_FAILPOINT("journal/before_sync");
    if (::fdatasync(::fileno(file_)) != 0) {
      std::fclose(file_);
      file_ = nullptr;
      return Status::Internal("journal fdatasync failed on '" + path_ +
                              "' (journal closed; restart to recover)");
    }
  }
  UPA_FAILPOINT("journal/after_append");
  return Status::Ok();
}

Result<std::vector<JournalRecord>> Journal::ReadAll(
    const std::string& path, bool* torn_tail, uint64_t* intact_bytes,
    std::vector<uint64_t>* frame_ends) {
  if (torn_tail != nullptr) *torn_tail = false;
  if (intact_bytes != nullptr) *intact_bytes = 0;
  if (frame_ends != nullptr) frame_ends->clear();
  auto data_or = ReadWholeFile(path);
  UPA_RETURN_IF_ERROR(data_or.status());
  const std::string& data = data_or.value();

  std::vector<JournalRecord> records;
  Reader r(data.data(), data.size());
  while (!r.AtEnd()) {
    uint32_t len = 0;
    uint64_t checksum = 0;
    std::string payload;
    JournalRecord rec;
    if (!r.ReadU32(&len) || !r.ReadU64(&checksum) || len > kMaxPayloadBytes ||
        !r.ReadBytes(len, &payload) || Fnv1a(payload) != checksum ||
        !DecodePayload(payload, &rec)) {
      // Torn tail: the process died mid-append. Everything before the
      // last intact record is trusted; the fragment is discarded.
      if (torn_tail != nullptr) *torn_tail = true;
      break;
    }
    if (intact_bytes != nullptr) *intact_bytes = r.pos();
    if (frame_ends != nullptr) frame_ends->push_back(r.pos());
    records.push_back(std::move(rec));
  }
  return records;
}

Status WriteSnapshot(const std::string& dir, const DatasetDurableState& state,
                     uint64_t covered_bytes, bool fsync) {
  UPA_FAILPOINT("journal/snapshot");
  std::string body;
  AppendU32(body, static_cast<uint32_t>(state.dataset_id.size()));
  body.append(state.dataset_id);
  AppendU64(body, state.epoch);
  AppendU64(body, BitsFromDouble(state.charged_total));
  AppendU64(body, BitsFromDouble(state.refunded_total));
  AppendU64(body, covered_bytes);
  AppendU32(body, static_cast<uint32_t>(state.registry.size()));
  for (const auto& prior : state.registry) {
    AppendU32(body, static_cast<uint32_t>(prior.size()));
    for (double v : prior) AppendU64(body, BitsFromDouble(v));
  }
  AppendU32(body, static_cast<uint32_t>(state.dedup.size()));
  for (const auto& entry : state.dedup) {
    AppendU64(body, entry.nonce);
    AppendU64(body, entry.seq);
    AppendU64(body, entry.request_hash);
    AppendU32(body, static_cast<uint32_t>(entry.response_blob.size()));
    body.append(entry.response_blob);
  }

  std::string file;
  file.append(kSnapshotMagicV2, sizeof(kSnapshotMagicV2));
  AppendU64(file, Fnv1a(body));
  file.append(body);
  return WriteFileAtomic(SnapshotPath(dir, state.dataset_id), file, fsync);
}

Result<DatasetDurableState> ReadSnapshot(const std::string& path,
                                         uint64_t* covered_bytes) {
  auto data_or = ReadWholeFile(path);
  UPA_RETURN_IF_ERROR(data_or.status());
  const std::string& data = data_or.value();
  if (data.size() < sizeof(kSnapshotMagicV2) + 8) {
    return Status::Internal("snapshot '" + path + "': bad magic");
  }
  bool v2 = std::memcmp(data.data(), kSnapshotMagicV2,
                        sizeof(kSnapshotMagicV2)) == 0;
  bool v1 = !v2 && std::memcmp(data.data(), kSnapshotMagicV1,
                               sizeof(kSnapshotMagicV1)) == 0;
  if (!v1 && !v2) {
    return Status::Internal("snapshot '" + path + "': bad magic");
  }
  Reader header(data.data() + sizeof(kSnapshotMagicV2), 8);
  uint64_t checksum = 0;
  header.ReadU64(&checksum);
  const char* body = data.data() + sizeof(kSnapshotMagicV2) + 8;
  size_t body_size = data.size() - sizeof(kSnapshotMagicV2) - 8;
  if (Fnv1a(std::string_view(body, body_size)) != checksum) {
    return Status::Internal("snapshot '" + path + "': checksum mismatch");
  }

  DatasetDurableState state;
  Reader r(body, body_size);
  uint32_t id_len = 0;
  uint64_t charged_bits = 0;
  uint64_t refunded_bits = 0;
  uint64_t covered = 0;
  uint32_t registry_len = 0;
  bool ok = r.ReadU32(&id_len) && r.ReadBytes(id_len, &state.dataset_id) &&
            r.ReadU64(&state.epoch) && r.ReadU64(&charged_bits) &&
            r.ReadU64(&refunded_bits) && r.ReadU64(&covered) &&
            r.ReadU32(&registry_len);
  if (ok) {
    state.charged_total = DoubleFromBits(charged_bits);
    state.refunded_total = DoubleFromBits(refunded_bits);
    state.registry.reserve(registry_len);
    for (uint32_t i = 0; ok && i < registry_len; ++i) {
      uint32_t n = 0;
      ok = r.ReadU32(&n);
      std::vector<double> prior;
      prior.reserve(ok ? n : 0);
      for (uint32_t j = 0; ok && j < n; ++j) {
        uint64_t bits = 0;
        ok = r.ReadU64(&bits);
        if (ok) prior.push_back(DoubleFromBits(bits));
      }
      if (ok) state.registry.push_back(std::move(prior));
    }
  }
  // v1 snapshots predate the dedup window; they end after the registry.
  if (ok && v2) {
    uint32_t dedup_len = 0;
    ok = r.ReadU32(&dedup_len);
    state.dedup.reserve(ok ? dedup_len : 0);
    for (uint32_t i = 0; ok && i < dedup_len; ++i) {
      DedupDurableEntry entry;
      uint32_t blob_len = 0;
      ok = r.ReadU64(&entry.nonce) && r.ReadU64(&entry.seq) &&
           r.ReadU64(&entry.request_hash) && r.ReadU32(&blob_len) &&
           r.ReadBytes(blob_len, &entry.response_blob);
      if (ok) state.dedup.push_back(std::move(entry));
    }
  }
  if (!ok || !r.AtEnd()) {
    return Status::Internal("snapshot '" + path + "': truncated body");
  }
  if (covered_bytes != nullptr) *covered_bytes = covered;
  return state;
}

Result<DatasetDurableState> RecoverDataset(const std::string& dir,
                                           const std::string& dataset_id,
                                           bool compact, bool fsync) {
  std::string journal_path = JournalPath(dir, dataset_id);
  std::error_code ec;
  bool journal_exists = fs::exists(journal_path, ec);

  DatasetDurableState state;
  state.dataset_id = dataset_id;
  uint64_t covered = 0;
  auto snap_or = ReadSnapshot(SnapshotPath(dir, dataset_id), &covered);
  if (snap_or.ok()) {
    if (snap_or.value().dataset_id != dataset_id) {
      return Status::Internal("snapshot for '" + dataset_id +
                              "' names dataset '" +
                              snap_or.value().dataset_id + "'");
    }
    state = std::move(snap_or).value();
  } else if (snap_or.status().code() != StatusCode::kNotFound) {
    return snap_or.status();
  }
  std::map<uint64_t, double> pending;
  uint64_t intact_bytes = 0;
  if (journal_exists) {
    bool torn = false;
    std::vector<uint64_t> frame_ends;
    auto records_or =
        Journal::ReadAll(journal_path, &torn, &intact_bytes, &frame_ends);
    UPA_RETURN_IF_ERROR(records_or.status());
    // Drop a torn tail fragment from disk: frames appended after it would
    // be unreachable (readers stop at the first bad frame).
    if (torn) {
      fs::resize_file(journal_path, intact_bytes, ec);
      if (ec) {
        return Status::Internal("cannot truncate torn journal '" +
                                journal_path + "': " + ec.message());
      }
    }
    if (covered > intact_bytes) covered = intact_bytes;
    // Replay only records past the snapshot's coverage, walking the
    // on-disk byte offsets ReadAll reported (a record written by an older
    // binary can be shorter than a re-encode of it would be today, so
    // re-framing is not a size authority).
    uint64_t offset = 0;
    const auto& records = records_or.value();
    for (size_t i = 0; i < records.size(); ++i) {
      const auto& rec = records[i];
      bool beyond_snapshot = offset >= covered;
      offset = frame_ends[i];
      if (!beyond_snapshot) continue;
      if (rec.type == JournalRecord::Type::kOpen &&
          rec.dataset_id != dataset_id) {
        return Status::Internal("journal '" + journal_path +
                                "' names dataset '" + rec.dataset_id + "'");
      }
      ApplyRecord(rec, &state, &pending);
    }
  }

  // Dangling charges: the query was charged but neither released nor
  // refunded before the crash. Nothing was acknowledged (release records
  // precede promise resolution), so the charge is returned — exactly once,
  // because recovery either compacts the resolution into a snapshot or
  // re-derives the same dangling set deterministically next time.
  for (const auto& [qid, eps] : pending) {
    state.refunded_total += eps;
    state.recovered_refunds[qid] = eps;
  }

  if (compact) {
    UPA_RETURN_IF_ERROR(WriteSnapshot(dir, state, intact_bytes, fsync));
  }
  return state;
}

Result<std::vector<DatasetDurableState>> RecoverAll(const std::string& dir,
                                                    bool compact,
                                                    bool fsync) {
  std::vector<DatasetDurableState> states;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return states;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".journal") continue;
    // The kOpen header names the dataset; the filename alone cannot be
    // reversed (sanitized + hashed).
    auto records_or = Journal::ReadAll(entry.path().string());
    if (!records_or.ok()) return records_or.status();
    const auto& records = records_or.value();
    if (records.empty() ||
        records.front().type != JournalRecord::Type::kOpen) {
      return Status::Internal("journal '" + entry.path().string() +
                              "' has no open header");
    }
    auto state_or =
        RecoverDataset(dir, records.front().dataset_id, compact, fsync);
    UPA_RETURN_IF_ERROR(state_or.status());
    states.push_back(std::move(state_or).value());
  }
  if (ec) {
    return Status::Internal("cannot scan journal dir '" + dir +
                            "': " + ec.message());
  }
  return states;
}

}  // namespace upa::service
