file(REMOVE_RECURSE
  "CMakeFiles/upa_rules_test.dir/upa_rules_test.cpp.o"
  "CMakeFiles/upa_rules_test.dir/upa_rules_test.cpp.o.d"
  "upa_rules_test"
  "upa_rules_test.pdb"
  "upa_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
