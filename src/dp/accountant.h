// Privacy-budget accounting.
//
// Sequential composition: a sequence of ε_i-iDP releases on the same dataset
// is (Σ ε_i)-iDP. The accountant tracks consumption per dataset and refuses
// queries that would exceed the configured budget — the operational side of
// "the analyst keeps conducting queries on one dataset" in UPA's threat
// model (§III).
//
// Two-phase semantics: the service charges a query before it runs and
// refunds it if the run fails (or is cancelled / hits its deadline) before
// anything was released. Besides the live `spent` balance, the accountant
// keeps the cumulative charge/refund ledger, so the conservation invariant
//
//   spent == charged_total − refunded_total   (and 0 ≤ spent ≤ budget)
//
// can be audited at any point (VerifyConservation) — the chaos suite calls
// it after every fault schedule and recovery cycle.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace upa::dp {

/// Point-in-time ledger for one dataset (all in ε units).
struct BudgetCheckpoint {
  double spent = 0.0;
  double charged_total = 0.0;
  double refunded_total = 0.0;
};

class PrivacyAccountant {
 public:
  explicit PrivacyAccountant(double total_budget)
      : total_budget_(total_budget) {}

  /// Try to consume `epsilon` from the budget of `dataset_id`.
  /// Fails with OUT_OF_RANGE when the budget would be exceeded.
  Status Charge(const std::string& dataset_id, double epsilon);

  /// Return `epsilon` to the budget of `dataset_id` — the second half of
  /// the charge/refund two-phase release: a query is charged before it
  /// runs and refunded if it fails before anything was released, so a
  /// failed query doesn't burn budget. The refund is bounded by what was
  /// actually spent (over-refunding can't mint budget).
  Status Refund(const std::string& dataset_id, double epsilon);

  double Spent(const std::string& dataset_id) const;
  /// total_budget − Spent, clamped at 0: the `1e-12` acceptance slack in
  /// Charge means Spent can exceed the budget by a hair, and a tiny
  /// negative remainder reads as corruption to callers.
  double Remaining(const std::string& dataset_id) const;
  double total_budget() const { return total_budget_; }

  /// Snapshot of one dataset's ledger (zeros when never charged).
  BudgetCheckpoint Checkpoint(const std::string& dataset_id) const;

  /// Debug audit used by the chaos suite: for every dataset, checks
  /// spent == charged − refunded (within float-accumulation tolerance),
  /// 0 ≤ spent ≤ budget + slack, and refunded ≤ charged. Returns the
  /// first violation as INTERNAL.
  Status VerifyConservation() const;

  /// Recovery: overwrite `dataset_id`'s ledger with journaled state. The
  /// live balance is charged − refunded by construction.
  void RestoreLedger(const std::string& dataset_id, double charged_total,
                     double refunded_total);

 private:
  struct Ledger {
    double spent = 0.0;
    double charged = 0.0;
    double refunded = 0.0;
  };

  double total_budget_;
  mutable std::mutex mu_;
  std::map<std::string, Ledger> ledgers_;
};

}  // namespace upa::dp
