file(REMOVE_RECURSE
  "CMakeFiles/upa_mlkit.dir/datagen.cpp.o"
  "CMakeFiles/upa_mlkit.dir/datagen.cpp.o.d"
  "CMakeFiles/upa_mlkit.dir/kmeans.cpp.o"
  "CMakeFiles/upa_mlkit.dir/kmeans.cpp.o.d"
  "CMakeFiles/upa_mlkit.dir/linreg.cpp.o"
  "CMakeFiles/upa_mlkit.dir/linreg.cpp.o.d"
  "libupa_mlkit.a"
  "libupa_mlkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_mlkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
