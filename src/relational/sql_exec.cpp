#include "relational/sql_exec.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "relational/optimizer.h"

namespace upa::rel {
namespace {

std::string AggRefName(size_t i) { return "$agg" + std::to_string(i); }

/// One scalar aggregate run: optimize, apply the fusion override, execute.
Result<double> RunPlan(const PlanExecutor& executor, const Catalog& catalog,
                       PlanPtr plan, const SqlExecOptions& options) {
  if (options.optimize) {
    OptimizerOptions opt;
    opt.private_table = options.exec.private_table;
    plan = Optimize(plan, catalog, opt);
  }
  if (options.fuse != FuseMode::kAuto) {
    plan = WithFuseMode(plan, options.fuse);
  }
  Result<ExecResult> run = executor.Execute(plan, options.exec);
  if (!run.ok()) return run.status();
  return run.value().output;
}

double NumericOf(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<double>(std::get<int64_t>(v));
  }
  return std::get<double>(v);
}

}  // namespace

int TotalOrderCompare(const Value& a, const Value& b) {
  const bool a_str = std::holds_alternative<std::string>(a);
  const bool b_str = std::holds_alternative<std::string>(b);
  if (a_str != b_str) return a_str ? 1 : -1;  // numerics before strings
  if (a_str) {
    const std::string& x = std::get<std::string>(a);
    const std::string& y = std::get<std::string>(b);
    return x < y ? -1 : (y < x ? 1 : 0);
  }
  if (std::holds_alternative<int64_t>(a) &&
      std::holds_alternative<int64_t>(b)) {
    int64_t x = std::get<int64_t>(a), y = std::get<int64_t>(b);
    return x < y ? -1 : (y < x ? 1 : 0);
  }
  double x = NumericOf(a), y = NumericOf(b);
  const bool x_nan = std::isnan(x), y_nan = std::isnan(y);
  if (x_nan || y_nan) return x_nan == y_nan ? 0 : (x_nan ? 1 : -1);
  return x < y ? -1 : (x > y ? 1 : 0);
}

Result<SqlResultSet> ExecuteSelect(engine::ExecContext* ctx,
                                   const Catalog& catalog,
                                   const SqlSelect& stmt,
                                   const SqlExecOptions& options) {
  const ExecOptions& eo = options.exec;
  if (!eo.private_table.empty() || eo.include_rows != nullptr ||
      eo.exclude_rows != nullptr || eo.replace_private_rows != nullptr ||
      eo.partitions > 0 || eo.track_contributions) {
    return Status::Unsupported(
        "ExecuteSelect runs public queries only; provenance and partition "
        "options belong to the scalar release path (ParseSql + "
        "PlanExecutor)");
  }
  if (stmt.relation == nullptr) {
    return Status::InvalidArgument("statement has no FROM relation");
  }

  PlanExecutor executor(ctx, &catalog);

  // -- Candidate groups: cross product of per-key distinct values ----------
  // (first-appearance order per key, so output order is deterministic and
  // data-driven). Scalar queries get the single keyless group.
  std::vector<ColumnDef> group_defs;
  std::vector<Row> groups(1);
  for (const std::string& key : stmt.group_by) {
    std::string owner = OwningTable(stmt.relation, key, catalog);
    if (owner.empty()) {
      return Status::InvalidArgument("GROUP BY column '" + key +
                                     "' is not provided (or is ambiguous) "
                                     "in the FROM relation");
    }
    const Table* table = catalog.at(owner);
    const size_t col = table->schema().IndexOf(key);
    group_defs.push_back(table->schema().column(col));

    std::vector<Value> distinct;
    std::unordered_set<Value, ValueHash, ValueEq> seen;
    for (const Row& row : table->rows()) {
      if (seen.insert(row[col]).second) distinct.push_back(row[col]);
    }
    if (groups.size() * std::max<size_t>(distinct.size(), 1) >
        options.max_groups) {
      return Status::ResourceExhausted(
          "candidate group count exceeds max_groups (" +
          std::to_string(options.max_groups) + "); add a WHERE clause or "
          "group by lower-cardinality columns");
    }
    std::vector<Row> expanded;
    expanded.reserve(groups.size() * distinct.size());
    for (const Row& g : groups) {
      for (const Value& v : distinct) {
        Row next = g;
        next.push_back(v);
        expanded.push_back(std::move(next));
      }
    }
    groups = std::move(expanded);
  }

  // -- Internal row schema: [group keys..., $agg0, $agg1, ...] -------------
  std::vector<ColumnDef> defs = group_defs;
  for (size_t i = 0; i < stmt.aggs.size(); ++i) {
    defs.push_back({AggRefName(i), ValueType::kDouble});
  }
  const Schema schema{defs};

  // -- Evaluate every aggregate slot per surviving group -------------------
  const bool grouped = !stmt.group_by.empty();
  std::vector<Row> group_rows;
  for (const Row& key_values : groups) {
    PlanPtr rel = stmt.relation;
    if (grouped) {
      ExprPtr pred;
      for (size_t k = 0; k < key_values.size(); ++k) {
        ExprPtr eq = Eq(Col(stmt.group_by[k]), Expr::Literal(key_values[k]));
        pred = pred ? And(std::move(pred), std::move(eq)) : std::move(eq);
      }
      rel = FilterPlan(rel, std::move(pred));
    }

    // Groups are formed from surviving rows: probe with COUNT(*) and drop
    // key combinations the relation never produces. The scalar (keyless)
    // "group" always emits its row — COUNT over an empty table is 0.
    double count = 0.0;
    bool have_count = false;
    if (grouped) {
      Result<double> probe =
          RunPlan(executor, catalog, CountPlan(rel), options);
      if (!probe.ok()) return probe.status();
      count = probe.value();
      have_count = true;
      if (count == 0.0) continue;
    }

    Row row = key_values;
    for (const AggSlot& slot : stmt.aggs) {
      if (slot.kind == AggKind::kCount && have_count) {
        row.push_back(Value{count});
        continue;
      }
      Result<double> out =
          RunPlan(executor, catalog, PlanForAgg(rel, slot), options);
      if (!out.ok()) return out.status();
      row.push_back(Value{out.value()});
    }
    group_rows.push_back(std::move(row));
  }

  // -- HAVING --------------------------------------------------------------
  if (stmt.having != nullptr) {
    auto keep = BindPredicate(stmt.having, schema);
    std::vector<Row> surviving;
    for (Row& row : group_rows) {
      if (keep(row)) surviving.push_back(std::move(row));
    }
    group_rows = std::move(surviving);
  }

  // -- ORDER BY (over the internal rows, before projection) ----------------
  std::vector<size_t> order(group_rows.size());
  std::iota(order.begin(), order.end(), 0);
  if (!stmt.order_by.empty()) {
    std::vector<std::vector<Value>> keys(group_rows.size());
    for (const OrderKey& key : stmt.order_by) {
      auto eval = Bind(key.expr, schema);
      for (size_t i = 0; i < group_rows.size(); ++i) {
        keys[i].push_back(eval(group_rows[i]));
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < stmt.order_by.size(); ++k) {
        int c = TotalOrderCompare(keys[a][k], keys[b][k]);
        if (stmt.order_by[k].desc) c = -c;
        if (c != 0) return c < 0;
      }
      return false;  // stable_sort keeps group-enumeration order for ties
    });
  }

  // -- Project the select items -------------------------------------------
  SqlResultSet result;
  std::vector<BoundExpr> projections;
  for (const SelectItem& item : stmt.items) {
    result.columns.push_back(item.name);
    projections.push_back(Bind(item.expr, schema));
  }
  size_t n = group_rows.size();
  if (stmt.limit >= 0) n = std::min(n, static_cast<size_t>(stmt.limit));
  result.rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Row& src = group_rows[order[i]];
    Row out;
    out.reserve(projections.size());
    for (const BoundExpr& project : projections) out.push_back(project(src));
    result.rows.push_back(std::move(out));
  }
  return result;
}

Result<SqlResultSet> ExecuteSql(engine::ExecContext* ctx,
                                const Catalog& catalog,
                                const std::string& sql,
                                const SqlExecOptions& options) {
  Result<SqlSelect> stmt = ParseSqlSelect(sql);
  if (!stmt.ok()) return stmt.status();
  return ExecuteSelect(ctx, catalog, stmt.value(), options);
}

}  // namespace upa::rel
