#include "tpch/queries.h"

#include "tpch/generator.h"

namespace upa::tpch {

using rel::And;
using rel::Col;
using rel::CountPlan;
using rel::FilterPlan;
using rel::Ge;
using rel::Gt;
using rel::In;
using rel::JoinPlan;
using rel::Le;
using rel::Lit;
using rel::Lt;
using rel::Mul;
using rel::Ne;
using rel::PlanPtr;
using rel::ScanPlan;
using rel::SumPlan;
using rel::Value;

// Q1: pricing summary collapsed to its row count. No filter, no join —
// the query FLEX gets exactly right (sensitivity 1).
TpchQuery MakeQ1() {
  PlanPtr plan = CountPlan(ScanPlan("lineitem"));
  return {"TPCH1", plan, "lineitem", "Count", /*flex_supported=*/true};
}

// Q4: order-priority checking. Orders in a quarter joined with lineitems
// whose commitdate < receiptdate; one join, two filters.
TpchQuery MakeQ4() {
  PlanPtr orders = FilterPlan(
      ScanPlan("orders"),
      And(Ge(Col("o_orderdate"), Lit(int64_t{400})),
          Lt(Col("o_orderdate"), Lit(int64_t{490}))));  // one quarter
  PlanPtr late_items = FilterPlan(
      ScanPlan("lineitem"),
      Lt(Col("l_commitdate"), Col("l_receiptdate")));
  PlanPtr plan =
      CountPlan(JoinPlan(orders, late_items, "o_orderkey", "l_orderkey"));
  return {"TPCH4", plan, "orders", "Count", /*flex_supported=*/true};
}

// Q6: forecasting revenue change — pure arithmetic over one table.
TpchQuery MakeQ6() {
  PlanPtr filtered = FilterPlan(
      ScanPlan("lineitem"),
      And(And(Ge(Col("l_shipdate"), Lit(int64_t{365})),
              Lt(Col("l_shipdate"), Lit(int64_t{730}))),
          And(And(Ge(Col("l_discount"), Lit(0.05)),
                  Le(Col("l_discount"), Lit(0.07))),
              Lt(Col("l_quantity"), Lit(24.0)))));
  PlanPtr plan =
      SumPlan(filtered, Mul(Col("l_extendedprice"), Col("l_discount")));
  return {"TPCH6", plan, "lineitem", "Arithmetic", /*flex_supported=*/false};
}

// Q11: important stock identification — value of stock supplied from one
// nation. Two joins, one filter, arithmetic aggregate.
TpchQuery MakeQ11() {
  PlanPtr germany =
      FilterPlan(ScanPlan("nation"), rel::Eq(Col("n_name"), Lit("GERMANY")));
  PlanPtr suppliers =
      JoinPlan(germany, ScanPlan("supplier"), "n_nationkey", "s_nationkey");
  PlanPtr stock =
      JoinPlan(suppliers, ScanPlan("partsupp"), "s_suppkey", "ps_suppkey");
  PlanPtr plan =
      SumPlan(stock, Mul(Col("ps_supplycost"), Col("ps_availqty")));
  return {"TPCH11", plan, "partsupp", "Arithmetic", /*flex_supported=*/false};
}

// Q13: customer distribution, collapsed to counting qualifying
// (customer, order) pairs; the comment-pattern exclusion becomes a
// priority exclusion over the generator's vocabulary.
TpchQuery MakeQ13() {
  PlanPtr orders = FilterPlan(
      ScanPlan("orders"), Ne(Col("o_orderpriority"), Lit("1-URGENT")));
  PlanPtr plan = CountPlan(
      JoinPlan(ScanPlan("customer"), orders, "c_custkey", "o_custkey"));
  return {"TPCH13", plan, "orders", "Count", /*flex_supported=*/true};
}

// Q16: parts/supplier relationship — heavily filtered part catalog joined
// through partsupp to non-complaint suppliers. Two joins, three filter
// predicates; most records are filtered before joining (the property the
// paper uses to explain Q16's low UPA overhead).
TpchQuery MakeQ16() {
  PlanPtr parts = FilterPlan(
      ScanPlan("part"),
      And(And(Ne(Col("p_brand"), Lit("Brand#45")),
              Ne(Col("p_type"), Lit("MEDIUM POLISHED"))),
          In(Col("p_size"),
             {Value{int64_t{1}}, Value{int64_t{4}}, Value{int64_t{7}},
              Value{int64_t{13}}, Value{int64_t{19}}, Value{int64_t{23}},
              Value{int64_t{36}}, Value{int64_t{49}}})));
  PlanPtr supplied =
      JoinPlan(parts, ScanPlan("partsupp"), "p_partkey", "ps_partkey");
  PlanPtr good_suppliers = FilterPlan(
      ScanPlan("supplier"), rel::Eq(Col("s_complaint"), Lit(int64_t{0})));
  PlanPtr plan = CountPlan(
      JoinPlan(supplied, good_suppliers, "ps_suppkey", "s_suppkey"));
  return {"TPCH16", plan, "partsupp", "Count", /*flex_supported=*/true};
}

// Q21: suppliers who kept orders waiting — the paper's hardest query:
// three joins and three filters chained over four tables (the original's
// exists/not-exists self-joins are collapsed into the late-line predicate;
// see queries.h faithfulness notes).
TpchQuery MakeQ21() {
  PlanPtr late_lines = FilterPlan(
      ScanPlan("lineitem"),
      Gt(Col("l_receiptdate"), Col("l_commitdate")));
  PlanPtr with_supplier =
      JoinPlan(ScanPlan("supplier"), late_lines, "s_suppkey", "l_suppkey");
  PlanPtr failed_orders = FilterPlan(
      ScanPlan("orders"), rel::Eq(Col("o_orderstatus"), Lit("F")));
  PlanPtr with_orders =
      JoinPlan(with_supplier, failed_orders, "l_orderkey", "o_orderkey");
  PlanPtr saudi =
      FilterPlan(ScanPlan("nation"),
                 rel::Eq(Col("n_name"), Lit("SAUDI ARABIA")));
  PlanPtr plan = CountPlan(
      JoinPlan(with_orders, saudi, "s_nationkey", "n_nationkey"));
  // Privacy unit: an order — removing one order removes all of its late
  // lineitems from the count, giving the heavy-tailed per-record influence
  // the paper attributes to Q21 (outliers that sampling tends to miss).
  return {"TPCH21", plan, "orders", "Count", /*flex_supported=*/true};
}

std::vector<TpchQuery> AllTpchQueries() {
  return {MakeQ1(), MakeQ4(), MakeQ13(), MakeQ16(), MakeQ21(),
          MakeQ6(), MakeQ11()};
}

}  // namespace upa::tpch
