#include "relational/plan.h"

#include "common/status.h"

namespace upa::rel {

PlanPtr ScanPlan(std::string table) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kScan;
  n->table = std::move(table);
  return n;
}

PlanPtr FilterPlan(PlanPtr child, ExprPtr predicate) {
  UPA_CHECK(child != nullptr && predicate != nullptr);
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kFilter;
  n->left = std::move(child);
  n->predicate = std::move(predicate);
  return n;
}

PlanPtr JoinPlan(PlanPtr left, PlanPtr right, std::string left_key,
                 std::string right_key) {
  UPA_CHECK(left != nullptr && right != nullptr);
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kJoin;
  n->left = std::move(left);
  n->right = std::move(right);
  n->left_key = std::move(left_key);
  n->right_key = std::move(right_key);
  return n;
}

PlanPtr CountPlan(PlanPtr child) {
  UPA_CHECK(child != nullptr);
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kAggregate;
  n->left = std::move(child);
  n->agg = AggKind::kCount;
  return n;
}

namespace {
PlanPtr ExprAggregate(PlanPtr child, ExprPtr expr, AggKind kind) {
  UPA_CHECK(child != nullptr && expr != nullptr);
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kAggregate;
  n->left = std::move(child);
  n->agg = kind;
  n->agg_expr = std::move(expr);
  return n;
}
}  // namespace

PlanPtr SumPlan(PlanPtr child, ExprPtr expr) {
  return ExprAggregate(std::move(child), std::move(expr), AggKind::kSum);
}

PlanPtr AvgPlan(PlanPtr child, ExprPtr expr) {
  return ExprAggregate(std::move(child), std::move(expr), AggKind::kAvg);
}

PlanPtr MinPlan(PlanPtr child, ExprPtr expr) {
  return ExprAggregate(std::move(child), std::move(expr), AggKind::kMin);
}

PlanPtr MaxPlan(PlanPtr child, ExprPtr expr) {
  return ExprAggregate(std::move(child), std::move(expr), AggKind::kMax);
}

PlanPtr WithFuseMode(const PlanPtr& plan, FuseMode mode) {
  UPA_CHECK(plan != nullptr && plan->kind == PlanKind::kAggregate);
  if (plan->fuse == mode) return plan;
  auto n = std::make_shared<PlanNode>(*plan);
  n->fuse = mode;
  return n;
}

namespace {

void AnalyzeInto(const PlanPtr& plan, PlanStats& stats) {
  UPA_CHECK(plan != nullptr);
  switch (plan->kind) {
    case PlanKind::kScan:
      ++stats.num_scans;
      stats.tables.push_back(plan->table);
      return;
    case PlanKind::kFilter:
      ++stats.num_filters;
      AnalyzeInto(plan->left, stats);
      return;
    case PlanKind::kJoin:
      ++stats.num_joins;
      stats.join_columns.push_back({"", plan->left_key});
      stats.join_columns.push_back({"", plan->right_key});
      AnalyzeInto(plan->left, stats);
      AnalyzeInto(plan->right, stats);
      return;
    case PlanKind::kAggregate:
      stats.has_aggregate = true;
      stats.agg = plan->agg;
      AnalyzeInto(plan->left, stats);
      return;
  }
}

/// Finds the scan table under `plan` whose schema has `column`.
void FindOwners(const PlanPtr& plan, const std::string& column,
                const Catalog& catalog, std::vector<std::string>& owners) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      auto it = catalog.find(plan->table);
      if (it != catalog.end() && it->second->schema().Has(column)) {
        owners.push_back(plan->table);
      }
      return;
    }
    case PlanKind::kFilter:
    case PlanKind::kAggregate:
      FindOwners(plan->left, column, catalog, owners);
      return;
    case PlanKind::kJoin:
      FindOwners(plan->left, column, catalog, owners);
      FindOwners(plan->right, column, catalog, owners);
      return;
  }
}

}  // namespace

PlanStats AnalyzePlan(const PlanPtr& plan) {
  PlanStats stats;
  AnalyzeInto(plan, stats);
  return stats;
}

size_t CountScansOf(const PlanPtr& plan, const std::string& table) {
  if (plan == nullptr) return 0;
  size_t n = plan->kind == PlanKind::kScan && plan->table == table ? 1 : 0;
  return n + CountScansOf(plan->left, table) + CountScansOf(plan->right, table);
}

std::string PlanToString(const PlanPtr& plan) {
  UPA_CHECK(plan != nullptr);
  switch (plan->kind) {
    case PlanKind::kScan:
      return "Scan(" + plan->table + ")";
    case PlanKind::kFilter:
      return "Filter(" + PlanToString(plan->left) + ", " +
             plan->predicate->ToString() + ")";
    case PlanKind::kJoin:
      return "Join(" + PlanToString(plan->left) + ", " +
             PlanToString(plan->right) + ", " + plan->left_key + "=" +
             plan->right_key + ")";
    case PlanKind::kAggregate: {
      if (plan->agg == AggKind::kCount) {
        return "Count(" + PlanToString(plan->left) + ")";
      }
      const char* name = plan->agg == AggKind::kSum   ? "Sum"
                         : plan->agg == AggKind::kAvg ? "Avg"
                         : plan->agg == AggKind::kMin ? "Min"
                                                      : "Max";
      return std::string(name) + "(" + PlanToString(plan->left) + ", " +
             plan->agg_expr->ToString() + ")";
    }
  }
  return "?";
}

uint64_t PlanFingerprint(const PlanPtr& plan, const Catalog& catalog) {
  if (plan == nullptr) return 0x9a71'9a71ULL;
  uint64_t h = Mix64(0x91a'0000ULL + static_cast<uint64_t>(plan->kind));
  switch (plan->kind) {
    case PlanKind::kScan: {
      h = HashCombine(h, Fnv1a(plan->table));
      auto it = catalog.find(plan->table);
      if (it != catalog.end() && it->second != nullptr) {
        h = HashCombine(h, Mix64(it->second->uid()));
      }
      return h;
    }
    case PlanKind::kFilter:
      h = HashCombine(h, ExprFingerprint(plan->predicate));
      return HashCombine(h, PlanFingerprint(plan->left, catalog));
    case PlanKind::kJoin:
      h = HashCombine(h, Fnv1a(plan->left_key));
      h = HashCombine(h, Fnv1a(plan->right_key));
      h = HashCombine(h, static_cast<uint64_t>(plan->build_side));
      h = HashCombine(h, PlanFingerprint(plan->left, catalog));
      return HashCombine(h, PlanFingerprint(plan->right, catalog));
    case PlanKind::kAggregate:
      h = HashCombine(h, static_cast<uint64_t>(plan->agg));
      h = HashCombine(h, static_cast<uint64_t>(plan->fuse));
      h = HashCombine(h, ExprFingerprint(plan->agg_expr));
      return HashCombine(h, PlanFingerprint(plan->left, catalog));
  }
  return h;
}

std::string OwningTable(const PlanPtr& plan, const std::string& column,
                        const Catalog& catalog) {
  std::vector<std::string> owners;
  FindOwners(plan, column, catalog, owners);
  if (owners.size() == 1) return owners[0];
  return "";
}

}  // namespace upa::rel
