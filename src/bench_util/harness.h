// Shared experiment harness for the bench/ binaries.
//
// Every experiment reads its scale knobs from the environment so the
// paper-scale versions are one shell variable away (defaults finish in
// seconds on a laptop):
//   UPA_ORDERS     TPC-H scale driver (default 5000 orders → ~13k lineitems)
//   UPA_ML_POINTS  ML dataset size (default 20000)
//   UPA_SAMPLE_N   UPA sample size n (default 1000)
//   UPA_TRIALS     trials per query for RMSE-style experiments (default 5)
//   UPA_RUNS       runs per query for timing experiments (default 10)
//   UPA_SEED       master seed (default 42)
//   UPA_THREADS    engine worker threads (default: hardware)
#pragma once

#include <cstdint>
#include <string>

#include "queries/suite.h"

namespace upa::bench {

struct BenchEnv {
  size_t orders = 5000;
  size_t ml_points = 20000;
  size_t sample_n = 1000;
  size_t trials = 5;
  size_t runs = 10;
  uint64_t seed = 42;
  size_t threads = 0;

  static BenchEnv FromEnv();

  /// Suite config at this scale (seed offsets allow independent datasets
  /// per trial).
  queries::SuiteConfig MakeSuiteConfig(uint64_t seed_offset = 0) const;

  /// UPA config matching the paper's evaluation setup (ε = 0.1, n).
  core::UpaConfig MakeUpaConfig() const;
};

/// Prints the standard experiment banner (experiment id, scales, seed).
void PrintBanner(const std::string& experiment, const BenchEnv& env);

}  // namespace upa::bench
