// Cost model over the physical shapes the engine actually runs: full
// columnar scans, batch-kernel filters, and build/probe hash joins.
//
// Costs are abstract row-touch units, tuned only to rank plans — the
// optimizer compares alternatives and keeps the cheaper, so only relative
// order matters. Cardinalities come from CardinalityEstimator.
#pragma once

#include "relational/card_est.h"
#include "relational/plan.h"

namespace upa::rel {

struct CostModel {
  /// Per-row weights. A hash-join build row costs more than a probe row
  /// (table insert + chain bookkeeping vs a lookup); a filter conjunct is
  /// one batch-kernel pass over its input.
  double scan_row = 1.0;
  double filter_conjunct_row = 0.5;
  double build_row = 2.0;
  double probe_row = 1.0;
  double join_output_row = 1.0;

  /// Total estimated cost of `plan` (recursing through Aggregate roots).
  double PlanCost(const PlanPtr& plan, const CardinalityEstimator& est) const;

  /// Cost of one hash join given input/output cardinalities; builds from
  /// the smaller side, as the engine does by default.
  double JoinCost(double left_rows, double right_rows,
                  double output_rows) const;
};

}  // namespace upa::rel
