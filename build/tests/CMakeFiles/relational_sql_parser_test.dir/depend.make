# Empty dependencies file for relational_sql_parser_test.
# This may be replaced when dependencies are built.
