// The Table I user-facing API: dpread / mapDP / filterDP / reduceDP /
// countDP / mapDPKV / reduceByKeyDP / joinPublicDP, with budget accounting
// and the persistent enforcer.
#include "upa/dp_api.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace upa::api {
namespace {

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 4});
  return ctx;
}

core::UpaConfig TestConfig() {
  core::UpaConfig cfg;
  cfg.sample_n = 200;
  return cfg;
}

std::vector<double> SomeValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.UniformDouble(0.0, 10.0);
  return v;
}

std::function<double(Rng&)> UniformDomain() {
  return [](Rng& rng) { return rng.UniformDouble(0.0, 10.0); };
}

TEST(DpApiTest, CountReleaseIsClose) {
  UpaSystem sys(&Ctx(), TestConfig(), /*total_budget=*/10.0);
  auto data = sys.dpread(SomeValues(5000, 1), UniformDomain(), "ds1");
  auto release = data.countDP(/*epsilon=*/1.0);
  ASSERT_TRUE(release.ok()) << release.status().ToString();
  // Sensitivity ~1, eps 1 → noise scale 1; within ±30 whp.
  EXPECT_NEAR(release.value().value, 5000.0, 30.0);
  EXPECT_NEAR(release.value().local_sensitivity, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(release.value().epsilon, 1.0);
}

TEST(DpApiTest, SumReleaseIsClose) {
  UpaSystem sys(&Ctx(), TestConfig(), 10.0);
  auto values = SomeValues(5000, 2);
  double truth = std::accumulate(values.begin(), values.end(), 0.0);
  auto data = sys.dpread(values, UniformDomain(), "ds2");
  auto release =
      data.reduceSumDP([](const double& v) { return v; }, 1.0);
  ASSERT_TRUE(release.ok());
  EXPECT_NEAR(release.value().value, truth, 300.0);
  EXPECT_LE(release.value().local_sensitivity, 12.0);
}

TEST(DpApiTest, MapComposesIntoRelease) {
  UpaSystem sys(&Ctx(), TestConfig(), 10.0);
  auto data = sys.dpread(SomeValues(4000, 3), UniformDomain(), "ds3");
  auto squared = data.mapDP([](const double& v) { return v * v; });
  auto release =
      squared.reduceSumDP([](const double& v) { return v; }, 2.0);
  ASSERT_TRUE(release.ok());
  EXPECT_GT(release.value().value, 0.0);
  // max per-record influence is ~100 (v up to 10, squared).
  EXPECT_LE(release.value().local_sensitivity, 130.0);
}

TEST(DpApiTest, FilterRestrictsRecordsAndDomain) {
  UpaSystem sys(&Ctx(), TestConfig(), 10.0);
  auto data = sys.dpread(SomeValues(6000, 4), UniformDomain(), "ds4");
  auto small = data.filterDP([](const double& v) { return v < 5.0; });
  EXPECT_LT(small.count_upper_bound(), 4000u);
  EXPECT_GT(small.count_upper_bound(), 2000u);
  auto release = small.countDP(1.0);
  ASSERT_TRUE(release.ok());
  EXPECT_NEAR(release.value().value,
              static_cast<double>(small.count_upper_bound()), 30.0);
}

TEST(DpApiTest, BudgetIsEnforcedAcrossReleases) {
  UpaSystem sys(&Ctx(), TestConfig(), /*total_budget=*/1.0);
  auto data = sys.dpread(SomeValues(3000, 5), UniformDomain(), "ds5");
  EXPECT_TRUE(data.countDP(0.6).ok());
  auto denied = data.countDP(0.6);
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kOutOfRange);
  // A smaller charge still fits.
  EXPECT_TRUE(data.countDP(0.4).ok());
}

TEST(DpApiTest, BudgetIsPerDataset) {
  UpaSystem sys(&Ctx(), TestConfig(), 1.0);
  auto a = sys.dpread(SomeValues(3000, 6), UniformDomain(), "dsA");
  auto b = sys.dpread(SomeValues(3000, 7), UniformDomain(), "dsB");
  EXPECT_TRUE(a.countDP(1.0).ok());
  EXPECT_TRUE(b.countDP(1.0).ok());
  EXPECT_FALSE(a.countDP(0.1).ok());
}

TEST(DpApiTest, RepeatedIdenticalQueryIsFlaggedByEnforcer) {
  UpaSystem sys(&Ctx(), TestConfig(), 100.0);
  auto data = sys.dpread(SomeValues(4000, 8), UniformDomain(), "ds8");
  auto first = data.countDP(1.0);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().attack_suspected);
  auto second = data.countDP(1.0);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().attack_suspected);
  EXPECT_GE(second.value().records_removed, 2u);
}

TEST(DpApiTest, EmptyDatasetIsRejectedWithoutCharging) {
  UpaSystem sys(&Ctx(), TestConfig(), 1.0);
  auto data = sys.dpread(std::vector<double>{}, UniformDomain(), "ds9");
  auto release = data.countDP(0.5);
  EXPECT_FALSE(release.ok());
  EXPECT_DOUBLE_EQ(sys.accountant().Spent("ds9"), 0.0);
}

TEST(DpApiTest, ReduceVecReturnsNoisyVector) {
  UpaSystem sys(&Ctx(), TestConfig(), 10.0);
  auto data = sys.dpread(SomeValues(4000, 10), UniformDomain(), "ds10");
  core::Vec noisy;
  auto release = data.reduceVecDP(
      [](const double& v) {
        return core::Vec{v, 1.0};
      },
      [](const core::Vec& r) {
        // mean = sum / count
        return core::Vec{r.empty() ? 0.0 : r[0] / r[1]};
      },
      [](const core::Vec& v) { return core::ScalarOf(v); }, 1.0, &noisy);
  ASSERT_TRUE(release.ok());
  ASSERT_EQ(noisy.size(), 1u);
  EXPECT_NEAR(noisy[0], 5.0, 1.0);  // mean of U[0,10]
}

TEST(DpApiKVTest, ReduceByKeyReleasesPerKey) {
  UpaSystem sys(&Ctx(), TestConfig(), 10.0);
  Rng rng(11);
  std::vector<int> records(6000);
  for (auto& r : records) r = static_cast<int>(rng.UniformU64(3));
  auto data = sys.dpread<int>(
      std::move(records),
      [](Rng& rg) { return static_cast<int>(rg.UniformU64(3)); }, "ds11");
  auto keyed =
      mapDPKV(data, [](const int& v) { return v; }, std::vector<int>{0, 1, 2});
  auto result = keyed.reduceByKeyDP([](const int&) { return 1.0; }, 1.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 3u);
  double total = 0;
  for (const auto& [k, v] : result.value()) {
    EXPECT_NEAR(v, 2000.0, 150.0) << "key " << k;
    total += v;
  }
  EXPECT_NEAR(total, 6000.0, 300.0);
}

TEST(DpApiKVTest, JoinPublicEnrichesRecords) {
  UpaSystem sys(&Ctx(), TestConfig(), 10.0);
  Rng rng(12);
  std::vector<int> records(5000);
  for (auto& r : records) r = static_cast<int>(rng.UniformU64(2));
  auto data = sys.dpread<int>(
      std::move(records),
      [](Rng& rg) { return static_cast<int>(rg.UniformU64(2)); }, "ds12");
  auto keyed =
      mapDPKV(data, [](const int& v) { return v; }, std::vector<int>{0, 1});
  std::vector<std::pair<int, double>> weights{{0, 1.5}, {1, 4.0}};
  auto joined = keyed.joinPublicDP(weights);
  auto release = joined.reduceSumDP(
      [](const std::pair<int, double>& vw) { return vw.second; }, 1.0);
  ASSERT_TRUE(release.ok());
  // ~2500 of each → 2500*1.5 + 2500*4.0 = 13750 ± noise.
  EXPECT_NEAR(release.value().value, 13750.0, 800.0);
}

}  // namespace
}  // namespace upa::api
