// Ground-truth local sensitivity — the paper's brute-force baseline.
//
// Two implementations (DESIGN.md §2):
//   * Naive: literally re-run the query once per neighbouring dataset
//     (|x| removals + sampled additions). The oracle the exact method is
//     validated against; only viable at small |x|.
//   * Exact-incremental: compute every record's additive influence in one
//     pass (monoid subtraction for map/reduce queries, join-index
//     provenance for plans) and derive all |x| removal outputs exactly.
//     Equal to the naive result for the additive query class this repo
//     evaluates — asserted by tests — but O(|x|) instead of O(|x|²).
//
// The "record added" side of the neighbourhood is a domain of unbounded
// size, so additions are sampled (n_additions synthetic records), exactly
// as UPA itself samples them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "relational/executor.h"
#include "upa/simple_query.h"

namespace upa::gt {

struct GroundTruth {
  /// f(x).
  double output = 0.0;
  /// f(y) for every removal neighbour (|x| values), then for each sampled
  /// addition neighbour (n_additions values).
  std::vector<double> neighbour_outputs;
  /// max |f(x) - f(y)| over all collected neighbours — the local
  /// sensitivity (Definition II.1, additions sampled).
  double local_sensitivity = 0.0;
  /// Extremes over neighbour outputs (the blue lines of Figure 3).
  double min_output = 0.0;
  double max_output = 0.0;

  void FinalizeFrom(double fx);
};

/// Exact-incremental ground truth for a plan query. `num_records` is the
/// size of the private table (or of `replace_private_rows` when given).
Result<GroundTruth> ExactPlanGroundTruth(
    const rel::PlanExecutor& executor, const rel::PlanPtr& plan,
    const std::string& private_table, size_t num_records,
    const std::function<rel::Row(Rng&)>& sample_domain_row,
    size_t n_additions, uint64_t seed,
    const std::vector<rel::Row>* replace_private_rows = nullptr);

/// Naive ground truth from a rerun closure: run(excluded) must return the
/// query output with record `excluded` removed (or the full output for
/// nullopt). Additions are handled by `run_with_addition` if provided.
GroundTruth NaiveGroundTruth(
    size_t num_records,
    const std::function<double(std::optional<size_t> excluded)>& run,
    size_t n_additions = 0,
    const std::function<double(Rng&)>& run_with_addition = {},
    uint64_t seed = 0);

/// Exact-incremental ground truth for a simple (map/reduce) query spec.
template <typename Record>
GroundTruth ExactSimpleGroundTruth(const core::SimpleQuerySpec<Record>& spec,
                                   size_t n_additions, uint64_t seed) {
  const std::vector<Record>& records = *spec.records;
  auto output_of = [&spec](const core::Vec& reduced) {
    core::Vec posted = spec.post ? spec.post(reduced) : reduced;
    return spec.scalarize ? spec.scalarize(posted) : core::ScalarOf(posted);
  };

  // One pass: total reduce + per-record mapped values.
  std::vector<core::Vec> mapped;
  mapped.reserve(records.size());
  core::Vec total = core::VecSum::Identity();
  for (const Record& r : records) {
    mapped.push_back(spec.map_record(r));
    total = core::VecSum::Combine(std::move(total), mapped.back());
  }

  GroundTruth gt;
  gt.output = output_of(total);
  gt.neighbour_outputs.reserve(records.size() + n_additions);
  for (const core::Vec& m : mapped) {
    gt.neighbour_outputs.push_back(output_of(core::VecSum::Subtract(total, m)));
  }
  Rng rng = Rng::ForStream(seed, "gt/additions/" + spec.name);
  for (size_t i = 0; i < n_additions; ++i) {
    core::Vec added = spec.map_record(spec.sample_domain(rng));
    gt.neighbour_outputs.push_back(output_of(core::VecSum::Combine(total, added)));
  }
  gt.FinalizeFrom(gt.output);
  return gt;
}

}  // namespace upa::gt
