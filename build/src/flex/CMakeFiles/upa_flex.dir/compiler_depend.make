# Empty compiler generated dependencies file for upa_flex.
# This may be replaced when dependencies are built.
