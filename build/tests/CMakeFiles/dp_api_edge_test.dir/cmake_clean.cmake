file(REMOVE_RECURSE
  "CMakeFiles/dp_api_edge_test.dir/dp_api_edge_test.cpp.o"
  "CMakeFiles/dp_api_edge_test.dir/dp_api_edge_test.cpp.o.d"
  "dp_api_edge_test"
  "dp_api_edge_test.pdb"
  "dp_api_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_api_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
