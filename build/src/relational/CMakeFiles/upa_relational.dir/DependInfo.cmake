
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/csv.cpp" "src/relational/CMakeFiles/upa_relational.dir/csv.cpp.o" "gcc" "src/relational/CMakeFiles/upa_relational.dir/csv.cpp.o.d"
  "/root/repo/src/relational/executor.cpp" "src/relational/CMakeFiles/upa_relational.dir/executor.cpp.o" "gcc" "src/relational/CMakeFiles/upa_relational.dir/executor.cpp.o.d"
  "/root/repo/src/relational/expr.cpp" "src/relational/CMakeFiles/upa_relational.dir/expr.cpp.o" "gcc" "src/relational/CMakeFiles/upa_relational.dir/expr.cpp.o.d"
  "/root/repo/src/relational/optimizer.cpp" "src/relational/CMakeFiles/upa_relational.dir/optimizer.cpp.o" "gcc" "src/relational/CMakeFiles/upa_relational.dir/optimizer.cpp.o.d"
  "/root/repo/src/relational/plan.cpp" "src/relational/CMakeFiles/upa_relational.dir/plan.cpp.o" "gcc" "src/relational/CMakeFiles/upa_relational.dir/plan.cpp.o.d"
  "/root/repo/src/relational/schema.cpp" "src/relational/CMakeFiles/upa_relational.dir/schema.cpp.o" "gcc" "src/relational/CMakeFiles/upa_relational.dir/schema.cpp.o.d"
  "/root/repo/src/relational/sql_parser.cpp" "src/relational/CMakeFiles/upa_relational.dir/sql_parser.cpp.o" "gcc" "src/relational/CMakeFiles/upa_relational.dir/sql_parser.cpp.o.d"
  "/root/repo/src/relational/table.cpp" "src/relational/CMakeFiles/upa_relational.dir/table.cpp.o" "gcc" "src/relational/CMakeFiles/upa_relational.dir/table.cpp.o.d"
  "/root/repo/src/relational/value.cpp" "src/relational/CMakeFiles/upa_relational.dir/value.cpp.o" "gcc" "src/relational/CMakeFiles/upa_relational.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/upa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/upa_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
