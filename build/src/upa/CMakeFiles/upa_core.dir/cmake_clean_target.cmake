file(REMOVE_RECURSE
  "libupa_core.a"
)
