// FLEX static analyzer: support matrix and sensitivity arithmetic, both on
// hand-built tables and the generated TPC-H data.
#include "flex/analyzer.h"

#include <gtest/gtest.h>

#include <memory>

#include "tpch/generator.h"
#include "tpch/queries.h"

namespace upa::flex {
namespace {

using rel::Col;
using rel::CountPlan;
using rel::Eq;
using rel::FilterPlan;
using rel::JoinPlan;
using rel::Lit;
using rel::Row;
using rel::ScanPlan;
using rel::Schema;
using rel::SumPlan;
using rel::Table;
using rel::Value;
using rel::ValueType;

class FlexTest : public ::testing::Test {
 protected:
  FlexTest() {
    left_ = std::make_unique<Table>(
        "left", Schema({{"lk", ValueType::kInt}}),
        std::vector<Row>{{Value{int64_t{1}}},
                         {Value{int64_t{1}}},
                         {Value{int64_t{1}}},
                         {Value{int64_t{2}}}});
    right_ = std::make_unique<Table>(
        "right", Schema({{"rk", ValueType::kInt}}),
        std::vector<Row>{{Value{int64_t{5}}},
                         {Value{int64_t{5}}},
                         {Value{int64_t{6}}}});
    catalog_ = {{"left", left_.get()}, {"right", right_.get()}};
  }

  std::unique_ptr<Table> left_, right_;
  rel::Catalog catalog_;
};

TEST_F(FlexTest, PlainCountIsExactlyOne) {
  auto r = AnalyzeFlex(CountPlan(ScanPlan("left")), catalog_);
  ASSERT_TRUE(r.supported);
  EXPECT_DOUBLE_EQ(r.local_sensitivity, 1.0);
  EXPECT_TRUE(r.joins.empty());
}

TEST_F(FlexTest, CountWithFilterStillOne) {
  // FLEX ignores filters entirely.
  auto plan = CountPlan(
      FilterPlan(ScanPlan("left"), Eq(Col("lk"), Lit(int64_t{1}))));
  auto r = AnalyzeFlex(plan, catalog_);
  ASSERT_TRUE(r.supported);
  EXPECT_DOUBLE_EQ(r.local_sensitivity, 1.0);
}

TEST_F(FlexTest, JoinMultipliesMaxFrequencies) {
  auto plan = CountPlan(
      JoinPlan(ScanPlan("left"), ScanPlan("right"), "lk", "rk"));
  auto r = AnalyzeFlex(plan, catalog_);
  ASSERT_TRUE(r.supported);
  // mf(lk)=3, mf(rk)=2 → 6.
  EXPECT_DOUBLE_EQ(r.local_sensitivity, 6.0);
  ASSERT_EQ(r.joins.size(), 1u);
  EXPECT_EQ(r.joins[0].left_max_frequency, 3u);
  EXPECT_EQ(r.joins[0].right_max_frequency, 2u);
  EXPECT_EQ(r.joins[0].left_table, "left");
  EXPECT_EQ(r.joins[0].right_table, "right");
}

TEST_F(FlexTest, SumIsUnsupported) {
  auto r = AnalyzeFlex(SumPlan(ScanPlan("left"), Col("lk")), catalog_);
  EXPECT_FALSE(r.supported);
  EXPECT_NE(r.unsupported_reason.find("count"), std::string::npos);
}

TEST_F(FlexTest, NonAggregateIsUnsupported) {
  auto r = AnalyzeFlex(ScanPlan("left"), catalog_);
  EXPECT_FALSE(r.supported);
}

class FlexTpchTest : public ::testing::Test {
 protected:
  FlexTpchTest() : data_([] {
    tpch::TpchConfig cfg;
    cfg.num_orders = 1000;
    return cfg;
  }()), catalog_(data_.catalog()) {}

  tpch::TpchDataset data_;
  rel::Catalog catalog_;
};

TEST_F(FlexTpchTest, SupportMatrixMatchesPaperTable2) {
  for (const auto& q : tpch::AllTpchQueries()) {
    auto r = AnalyzeFlex(q.plan, catalog_);
    EXPECT_EQ(r.supported, q.flex_supported) << q.name;
  }
}

TEST_F(FlexTpchTest, Q1IsExact) {
  auto r = AnalyzeFlex(tpch::MakeQ1().plan, catalog_);
  ASSERT_TRUE(r.supported);
  EXPECT_DOUBLE_EQ(r.local_sensitivity, 1.0);
}

TEST_F(FlexTpchTest, MultiJoinQueriesBlowUp) {
  // The paper's error-magnification story: Q21 (3 joins over skewed keys)
  // must dwarf Q4 (1 join), which must exceed Q1 (no join).
  auto q1 = AnalyzeFlex(tpch::MakeQ1().plan, catalog_);
  auto q4 = AnalyzeFlex(tpch::MakeQ4().plan, catalog_);
  auto q21 = AnalyzeFlex(tpch::MakeQ21().plan, catalog_);
  ASSERT_TRUE(q1.supported && q4.supported && q21.supported);
  EXPECT_GT(q4.local_sensitivity, q1.local_sensitivity);
  EXPECT_GT(q21.local_sensitivity, 100.0 * q4.local_sensitivity);
}

TEST_F(FlexTest, SmoothSensitivityAtLeastLocal) {
  auto plan = CountPlan(
      JoinPlan(ScanPlan("left"), ScanPlan("right"), "lk", "rk"));
  auto local = AnalyzeFlex(plan, catalog_);
  auto smooth = AnalyzeFlexSmooth(plan, catalog_, /*beta=*/0.05);
  ASSERT_TRUE(local.supported && smooth.supported);
  // Smooth sensitivity maximizes over distances including k=0, so it is
  // never below the static local sensitivity.
  EXPECT_GE(smooth.local_sensitivity, local.local_sensitivity);
}

TEST_F(FlexTest, SmoothSensitivityDecreasesWithBeta) {
  auto plan = CountPlan(
      JoinPlan(ScanPlan("left"), ScanPlan("right"), "lk", "rk"));
  auto loose = AnalyzeFlexSmooth(plan, catalog_, 0.01);
  auto tight = AnalyzeFlexSmooth(plan, catalog_, 1.0);
  ASSERT_TRUE(loose.supported && tight.supported);
  EXPECT_GE(loose.local_sensitivity, tight.local_sensitivity);
}

TEST_F(FlexTest, SmoothSensitivityNoJoinIsOne) {
  auto smooth = AnalyzeFlexSmooth(CountPlan(ScanPlan("left")), catalog_, 0.1);
  ASSERT_TRUE(smooth.supported);
  EXPECT_DOUBLE_EQ(smooth.local_sensitivity, 1.0);
}

TEST_F(FlexTest, SmoothSensitivityUnsupportedForSum) {
  auto smooth =
      AnalyzeFlexSmooth(SumPlan(ScanPlan("left"), Col("lk")), catalog_, 0.1);
  EXPECT_FALSE(smooth.supported);
}

TEST_F(FlexTpchTest, JoinFactorsAreResolvedToTables) {
  auto q21 = AnalyzeFlex(tpch::MakeQ21().plan, catalog_);
  ASSERT_TRUE(q21.supported);
  ASSERT_EQ(q21.joins.size(), 3u);
  for (const auto& j : q21.joins) {
    EXPECT_FALSE(j.left_table.empty());
    EXPECT_FALSE(j.right_table.empty());
    EXPECT_GE(j.left_max_frequency, 1u);
    EXPECT_GE(j.right_max_frequency, 1u);
  }
}

}  // namespace
}  // namespace upa::flex
