#!/usr/bin/env bash
# Cluster smoke: 2 upa_shard processes behind an upa_router, driven with
# upa_client. Mid-run, one shard is SIGKILLed: queries it owned must fail
# fast with UNAVAILABLE while the surviving shard keeps answering. The
# shard is then restarted over the SAME journal dir; once the router's
# health probe readmits it, the full pre-kill workload is replayed and the
# released values must match the pre-kill run bit-for-bit (the repeat-query
# defense serves the journaled release, so any lost registry state would
# change the output).
#
# Usage: scripts/run_cluster.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SHARD_BIN="$BUILD_DIR/examples/upa_shard"
ROUTER_BIN="$BUILD_DIR/examples/upa_router"
CLIENT_BIN="$BUILD_DIR/examples/upa_client"
for bin in "$SHARD_BIN" "$ROUTER_BIN" "$CLIENT_BIN"; do
  [ -x "$bin" ] || { echo "missing $bin (build first)"; exit 2; }
done

WORK="$(mktemp -d /tmp/upa-cluster-smoke-XXXXXX)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_for_file() { # path [timeout_s]
  local path="$1" deadline=$((SECONDS + ${2:-15}))
  until [ -s "$path" ]; do
    [ "$SECONDS" -lt "$deadline" ] || { echo "timeout waiting for $path"; exit 1; }
    sleep 0.05
  done
}

start_shard() { # index
  local i="$1"
  rm -f "$WORK/port$i"
  mkdir -p "$WORK/journal$i"
  "$SHARD_BIN" --port "${SHARD_PORT[$i]:-0}" --port-file "$WORK/port$i" \
    --journal-dir "$WORK/journal$i" --shard-name "shard$i" \
    --threads 2 --sample-n 64 >"$WORK/shard$i.log" 2>&1 &
  PIDS+=($!); disown $!
  SHARD_PID[$i]=$!
  wait_for_file "$WORK/port$i"
  SHARD_PORT[$i]=$(cat "$WORK/port$i")
}

declare -a SHARD_PID SHARD_PORT
start_shard 0
start_shard 1
echo "shards up: 127.0.0.1:${SHARD_PORT[0]} 127.0.0.1:${SHARD_PORT[1]}"

"$ROUTER_BIN" 0 "127.0.0.1:${SHARD_PORT[0]}" "127.0.0.1:${SHARD_PORT[1]}" \
  >"$WORK/router.log" 2>&1 &
PIDS+=($!); disown $!
ROUTER_PID=$!
wait_for_file "$WORK/router.log"
ROUTER_PORT=$(awk '/^READY/{print $2; exit}' "$WORK/router.log")
[ -n "$ROUTER_PORT" ] || { echo "router did not print READY"; cat "$WORK/router.log"; exit 1; }
echo "router up: 127.0.0.1:$ROUTER_PORT"

wait_healthy() { # expected-count [timeout_s]
  local want="$1" deadline=$((SECONDS + ${2:-20}))
  while :; do
    local got
    got=$("$CLIENT_BIN" "$ROUTER_PORT" --stats 2>/dev/null | grep -c 'healthy$' || true)
    [ "$got" -ge "$want" ] && return 0
    [ "$SECONDS" -lt "$deadline" ] || { echo "timeout: $got/$want shards healthy"; exit 1; }
    sleep 0.1
  done
}
wait_healthy 2

DATASETS=$(seq -f 'ds-%g' 1 12)
run_workload() { # outfile
  : >"$1"
  local ds
  for ds in $DATASETS; do
    echo "$ds $("$CLIENT_BIN" "$ROUTER_PORT" "count:2000" "$ds" | head -1)" >>"$1"
  done
}

echo "== phase 1: baseline workload over both shards =="
# First pass registers each query's partitions; the second is answered from
# the registry (repeat-query defense) and is the steady state every later
# replay must reproduce. A fresh execution and a registry-served repeat
# legitimately differ, so the baseline must itself be a repeat.
run_workload "$WORK/fresh.txt"
run_workload "$WORK/before.txt"

echo "== phase 2: SIGKILL shard1 mid-run =="
kill -9 "${SHARD_PID[1]}"
ok=0 unavailable=0
for ds in $DATASETS; do
  if out=$("$CLIENT_BIN" "$ROUTER_PORT" "count:2000" "$ds" 2>&1); then
    ok=$((ok + 1))
  elif echo "$out" | grep -q UNAVAILABLE; then
    unavailable=$((unavailable + 1))
  else
    echo "unexpected failure for $ds: $out"; exit 1
  fi
done
echo "during outage: $ok served, $unavailable rejected UNAVAILABLE"
[ "$ok" -ge 1 ] || { echo "surviving shard served nothing"; exit 1; }
[ "$unavailable" -ge 1 ] || { echo "no query hit the dead shard"; exit 1; }

echo "== phase 3: restart shard1 over its journal, wait for readmission =="
start_shard 1
wait_healthy 2

echo "== phase 4: replay workload; releases must match phase 1 exactly =="
# A shard that lost its registry in the SIGKILL would answer these as FRESH
# queries (different value) instead of registry-served repeats.
run_workload "$WORK/after.txt"
if ! diff -u "$WORK/before.txt" "$WORK/after.txt"; then
  echo "FAIL: released values changed across SIGKILL + journal recovery"
  exit 1
fi

"$CLIENT_BIN" "$ROUTER_PORT" --stats | sed -n '1,12p'
echo "PASS: failover + bit-identical journal recovery"
