// Figure 2(a) reproduction: RMSE between inferred local sensitivity and the
// brute-force ground truth (Definition II.1), per query, UPA vs FLEX.
//
// Paper result shape: UPA averages a few percent relative RMSE; FLEX is
// exact on TPCH1 (sensitivity 1, no joins) but overestimates by 1–5 orders
// of magnitude on join queries (worst on TPCH16/TPCH21, where max-frequency
// products multiply across joins and filters are ignored); FLEX cannot
// analyze TPCH6/TPCH11/KMeans/LinearRegression at all.
//
// Method: per trial the private dataset is churned by removing 0–2 random
// records, then each system infers the (query, dataset) sensitivity; RMSE
// is relative to the exact ground truth across trials.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util/harness.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "upa/runner.h"

int main() {
  using namespace upa;
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  bench::PrintBanner("Figure 2(a) — sensitivity RMSE, UPA vs FLEX", env);

  queries::QuerySuite suite(env.MakeSuiteConfig());
  core::UpaConfig upa_cfg = env.MakeUpaConfig();
  upa_cfg.add_noise = false;

  TablePrinter table({"Query", "GT sens (mean)", "UPA sens (mean)",
                      "FLEX sens", "UPA RMSE", "FLEX RMSE",
                      "FLEX/UPA (orders)"});
  std::vector<double> upa_rmses;
  std::vector<double> flex_rmses_supported;

  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    std::vector<double> gt_vals, upa_vals, flex_vals;
    auto flex = suite.RunFlex(name);

    for (size_t t = 0; t < env.trials; ++t) {
      size_t churn_records = t % 3;  // 0, 1 or 2 records removed per trial
      queries::ChurnedData churn;
      const queries::ChurnedData* churn_ptr = nullptr;
      if (churn_records > 0) {
        churn = suite.MakeChurn(name, churn_records, env.seed + t);
        churn_ptr = &churn;
      }

      auto gt = suite.ComputeGroundTruth(name, env.sample_n,
                                         env.seed + 100 * t, churn_ptr);
      if (!gt.ok()) {
        std::fprintf(stderr, "ground truth failed for %s: %s\n", name.c_str(),
                     gt.status().ToString().c_str());
        return 1;
      }
      core::UpaRunner runner(upa_cfg);
      auto result =
          runner.Run(suite.MakeInstance(name, churn_ptr), env.seed + t);
      if (!result.ok()) {
        std::fprintf(stderr, "UPA failed for %s: %s\n", name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      gt_vals.push_back(gt.value().local_sensitivity);
      upa_vals.push_back(result.value().local_sensitivity);
      if (flex.supported) flex_vals.push_back(flex.local_sensitivity);
    }

    double upa_rmse = RelativeRmse(upa_vals, gt_vals);
    upa_rmses.push_back(upa_rmse);
    double flex_rmse = flex.supported ? RelativeRmse(flex_vals, gt_vals) : 0.0;
    if (flex.supported) flex_rmses_supported.push_back(flex_rmse);

    std::string orders = "-";
    if (flex.supported && flex_rmse > 0.0) {
      orders = upa_rmse > 0.0
                   ? TablePrinter::FormatDouble(std::log10(flex_rmse / upa_rmse), 1)
                   : "inf";
    } else if (flex.supported) {
      orders = "0.0";  // both exact (TPCH1)
    }
    table.AddRow(
        {name, TablePrinter::FormatDouble(Mean(gt_vals), 4),
         TablePrinter::FormatDouble(Mean(upa_vals), 4),
         flex.supported ? TablePrinter::FormatDouble(flex.local_sensitivity, 1)
                        : "unsupported",
         TablePrinter::FormatScientific(upa_rmse, 2),
         flex.supported ? TablePrinter::FormatScientific(flex_rmse, 2) : "-",
         orders});
  }

  table.Print("Figure 2(a): local-sensitivity RMSE vs brute-force ground truth");
  std::printf("\nUPA mean relative RMSE over all nine queries: %.2f%% "
              "(paper: 3.81%%)\n",
              Mean(upa_rmses) * 100.0);
  if (!flex_rmses_supported.empty()) {
    std::printf("FLEX mean relative RMSE over its five queries: %.3g "
                "(orders of magnitude above UPA, as in the paper)\n",
                Mean(flex_rmses_supported));
  }
  return 0;
}
