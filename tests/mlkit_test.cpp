#include <gtest/gtest.h>

#include <cmath>

#include "mlkit/kmeans.h"
#include "mlkit/linreg.h"

namespace upa::ml {
namespace {

MlDataConfig SmallConfig(uint64_t seed = 7) {
  MlDataConfig cfg;
  cfg.num_points = 2000;
  cfg.dims = 3;
  cfg.mixture_components = 2;
  cfg.seed = seed;
  return cfg;
}

TEST(MlDatasetTest, GeneratesRequestedShape) {
  MlDataset data(SmallConfig());
  EXPECT_EQ(data.points()->size(), 2000u);
  for (const MlPoint& p : *data.points()) {
    EXPECT_EQ(p.x.size(), 3u);
    EXPECT_TRUE(std::isfinite(p.y));
  }
  EXPECT_EQ(data.component_means().size(), 2u);
  EXPECT_EQ(data.true_weights().size(), 3u);
}

TEST(MlDatasetTest, Deterministic) {
  MlDataset a(SmallConfig()), b(SmallConfig());
  EXPECT_EQ((*a.points())[0].x, (*b.points())[0].x);
  EXPECT_DOUBLE_EQ((*a.points())[0].y, (*b.points())[0].y);
  MlDataset c(SmallConfig(8));
  EXPECT_NE((*a.points())[0].x, (*c.points())[0].x);
}

TEST(MlDatasetTest, ResponseFollowsLinearModel) {
  MlDataset data(SmallConfig());
  // Residual of y against the true model should match the noise scale.
  double ss = 0.0;
  for (const MlPoint& p : *data.points()) {
    double pred = data.true_bias();
    for (size_t j = 0; j < p.x.size(); ++j) {
      pred += data.true_weights()[j] * p.x[j];
    }
    ss += (p.y - pred) * (p.y - pred);
  }
  double rmse = std::sqrt(ss / data.points()->size());
  EXPECT_NEAR(rmse, data.config().response_noise, 0.05);
}

TEST(MlDatasetTest, SamplePointHasSameShape) {
  MlDataset data(SmallConfig());
  Rng rng(3);
  MlPoint p = data.SamplePoint(rng);
  EXPECT_EQ(p.x.size(), 3u);
  EXPECT_TRUE(std::isfinite(p.y));
}

TEST(LinRegTest, MapLayoutAndCount) {
  LinRegSpec spec;
  spec.w0 = {0.0, 0.0};
  MlPoint p{{1.0, 2.0}, 3.0};
  core::Vec m = LinRegMap(spec, p);
  ASSERT_EQ(m.size(), 4u);  // d grads + bias grad + count
  // pred = 0, err = -3 → grads = [-3, -6], bias grad -3, count 1.
  EXPECT_DOUBLE_EQ(m[0], -3.0);
  EXPECT_DOUBLE_EQ(m[1], -6.0);
  EXPECT_DOUBLE_EQ(m[2], -3.0);
  EXPECT_DOUBLE_EQ(m[3], 1.0);
}

TEST(LinRegTest, PostAppliesUpdateRule) {
  LinRegSpec spec;
  spec.w0 = {1.0};
  spec.b0 = 0.5;
  spec.learning_rate = 0.1;
  // reduced: grad_w = 10 over 5 records, grad_b = 5.
  core::Vec updated = LinRegPost(spec, {10.0, 5.0, 5.0});
  ASSERT_EQ(updated.size(), 2u);
  EXPECT_DOUBLE_EQ(updated[0], 1.0 - 0.1 * 10.0 / 5.0);
  EXPECT_DOUBLE_EQ(updated[1], 0.5 - 0.1 * 5.0 / 5.0);
}

TEST(LinRegTest, PostOfIdentityKeepsWeights) {
  LinRegSpec spec;
  spec.w0 = {2.0, 3.0};
  spec.b0 = -1.0;
  core::Vec updated = LinRegPost(spec, core::VecSum::Identity());
  EXPECT_EQ(updated, (core::Vec{2.0, 3.0, -1.0}));
}

TEST(LinRegTest, GradientStepsReduceLoss) {
  MlDataset data(SmallConfig());
  LinRegSpec spec;
  spec.w0.assign(3, 0.0);
  spec.learning_rate = 0.02;

  auto loss_of = [&](const std::vector<double>& wb) {
    double ss = 0.0;
    for (const MlPoint& p : *data.points()) {
      double pred = wb[3];
      for (size_t j = 0; j < 3; ++j) pred += wb[j] * p.x[j];
      ss += (pred - p.y) * (pred - p.y);
    }
    return ss / data.points()->size();
  };

  std::vector<double> w0{0.0, 0.0, 0.0, 0.0};
  double loss_before = loss_of(w0);
  std::vector<double> w1 = LinRegStep(spec, *data.points());
  double loss_after = loss_of(w1);
  EXPECT_LT(loss_after, loss_before);
}

TEST(KMeansTest, NearestCentroidPicksClosest) {
  Centroids cs{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_EQ(NearestCentroid(cs, {1.0, 1.0}), 0u);
  EXPECT_EQ(NearestCentroid(cs, {9.0, 9.0}), 1u);
  EXPECT_EQ(NearestCentroid(cs, {5.0, 5.0}), 0u);  // tie → lowest index
}

TEST(KMeansTest, MapEmitsOneHotPartialSums) {
  KMeansSpec spec{{{0.0, 0.0}, {10.0, 10.0}}};
  MlPoint p{{9.0, 8.0}, 0.0};
  core::Vec m = KMeansMap(spec, p);
  ASSERT_EQ(m.size(), 6u);  // 2*2 sums + 2 counts
  EXPECT_DOUBLE_EQ(m[0], 0.0);
  EXPECT_DOUBLE_EQ(m[1], 0.0);
  EXPECT_DOUBLE_EQ(m[2], 9.0);
  EXPECT_DOUBLE_EQ(m[3], 8.0);
  EXPECT_DOUBLE_EQ(m[4], 0.0);
  EXPECT_DOUBLE_EQ(m[5], 1.0);
}

TEST(KMeansTest, PostComputesMeansAndKeepsEmptyClusters) {
  KMeansSpec spec{{{0.0, 0.0}, {10.0, 10.0}}};
  // Cluster 0: two points summing to (2, 4); cluster 1 empty.
  core::Vec reduced{2.0, 4.0, 0.0, 0.0, 2.0, 0.0};
  core::Vec updated = KMeansPost(spec, reduced);
  EXPECT_EQ(updated, (core::Vec{1.0, 2.0, 10.0, 10.0}));
}

TEST(KMeansTest, InitCentroidsDistinct) {
  std::vector<MlPoint> points{{{1.0}, 0}, {{1.0}, 0}, {{2.0}, 0}, {{3.0}, 0}};
  Centroids init = InitCentroids(points, 3);
  ASSERT_EQ(init.size(), 3u);
  EXPECT_EQ(init[0], (std::vector<double>{1.0}));
  EXPECT_EQ(init[1], (std::vector<double>{2.0}));
  EXPECT_EQ(init[2], (std::vector<double>{3.0}));
}

TEST(KMeansTest, LloydRecoversWellSeparatedClusters) {
  MlDataConfig cfg = SmallConfig();
  cfg.cluster_spacing = 20.0;
  cfg.cluster_stddev = 0.5;
  MlDataset data(cfg);
  Centroids final = LloydIterations(
      *data.points(), InitCentroids(*data.points(), 2), 10);
  // Each learned centroid should be close to some true component mean.
  for (const auto& mean : data.component_means()) {
    double best = 1e18;
    for (const auto& c : final) {
      double ss = 0;
      for (size_t j = 0; j < c.size(); ++j) {
        ss += (c[j] - mean[j]) * (c[j] - mean[j]);
      }
      best = std::min(best, std::sqrt(ss));
    }
    EXPECT_LT(best, 2.0);
  }
}

TEST(KMeansTest, LloydIsMonotoneInDistortion) {
  MlDataset data(SmallConfig());
  auto distortion = [&](const Centroids& cs) {
    double total = 0;
    for (const MlPoint& p : *data.points()) {
      size_t c = NearestCentroid(cs, p.x);
      for (size_t j = 0; j < p.x.size(); ++j) {
        total += (p.x[j] - cs[c][j]) * (p.x[j] - cs[c][j]);
      }
    }
    return total;
  };
  Centroids c0 = InitCentroids(*data.points(), 2);
  double prev = distortion(c0);
  Centroids c = c0;
  for (int it = 0; it < 5; ++it) {
    c = LloydIterations(*data.points(), c, 1);
    double cur = distortion(c);
    EXPECT_LE(cur, prev + 1e-9) << "iteration " << it;
    prev = cur;
  }
}

}  // namespace
}  // namespace upa::ml
