file(REMOVE_RECURSE
  "CMakeFiles/relational_value_expr_test.dir/relational_value_expr_test.cpp.o"
  "CMakeFiles/relational_value_expr_test.dir/relational_value_expr_test.cpp.o.d"
  "relational_value_expr_test"
  "relational_value_expr_test.pdb"
  "relational_value_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_value_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
