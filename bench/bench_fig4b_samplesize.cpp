// Figure 4(b) reproduction: UPA's execution time versus the sample size n,
// plus the engine cache hit rate in the sampled-neighbour phase.
//
// Paper result shape: runtime stays near-constant up to n = 10⁵ because the
// repeatedly-touched sample blocks hit Spark's memory cache (hit rate rises
// from 10.3% to 48.9% inside the sampled-neighbour computation). Here the
// analogous effect is the block cache on non-private scans: every extra
// phase run over the sample re-reads cached tables.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util/harness.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "upa/runner.h"

int main() {
  using namespace upa;
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  bench::PrintBanner("Figure 4(b) — UPA time vs sample size n", env);

  queries::QuerySuite suite(env.MakeSuiteConfig());
  const std::vector<size_t> sample_sizes = {100, 1000, 10000, 100000};

  TablePrinter table({"Query", "n", "UPA (ms)", "vs n=1000", "cache hit rate"});
  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    double baseline_ms = 0.0;
    for (size_t n : sample_sizes) {
      size_t effective = std::min(n, suite.NumPrivateRecords(name));
      core::UpaConfig cfg = env.MakeUpaConfig();
      cfg.sample_n = effective;
      core::UpaRunner runner(cfg);

      std::vector<double> upa_ms;
      double hit_rate = 0.0;
      size_t reps = std::max<size_t>(2, env.runs / 3);
      for (size_t r = 0; r < reps; ++r) {
        auto result = runner.Run(suite.MakeInstance(name), env.seed + r + n);
        if (!result.ok()) {
          std::fprintf(stderr, "UPA failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        upa_ms.push_back(result.value().seconds.total * 1e3);
        hit_rate = result.value().metrics.cache_hit_rate();
      }
      double mean_ms = Mean(upa_ms);
      if (n == 1000) baseline_ms = mean_ms;
      table.AddRow(
          {name,
           std::to_string(n) +
               (effective < n ? " (capped " + std::to_string(effective) + ")"
                              : ""),
           TablePrinter::FormatDouble(mean_ms, 2),
           baseline_ms > 0
               ? TablePrinter::FormatDouble(mean_ms / baseline_ms, 2)
               : "-",
           TablePrinter::FormatPercent(hit_rate, 1)});
    }
  }
  table.Print("Figure 4(b): UPA time across sample sizes "
              "(shape: near-constant; cache hits rise with reuse)");
  return 0;
}
