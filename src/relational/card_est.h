// Cardinality estimation for the cost-based optimizer (Selinger-style).
//
// Selectivities come from the per-column statistics Table memoizes
// (relational/table.h): equality predicates estimate 1/ndv, range
// predicates read the equi-width histogram, conjuncts multiply under an
// independence assumption. Join outputs use the classic |L|·|R| /
// max(ndv(lkey), ndv(rkey)) formula with ndv taken from the base tables.
//
// Estimates drive plan *choice* only — every emitted plan is semantically
// identical to its input, so a bad estimate costs performance, never
// correctness (asserted by the optimizer differential suite).
#pragma once

#include "relational/plan.h"

namespace upa::rel {

/// Fallback selectivities when statistics cannot resolve a predicate
/// (column-vs-column comparisons, arithmetic operands, unknown tables).
/// The classic System R defaults.
struct SelectivityDefaults {
  double equality = 0.1;
  double range = 1.0 / 3.0;
  double unknown = 0.25;
};

class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Catalog* catalog);

  /// Estimated number of rows produced by `plan` (an Aggregate estimates
  /// through its child; an unknown table estimates 0 — execution fails on
  /// it before any plan choice matters).
  double EstimateRows(const PlanPtr& plan) const;

  /// Estimated selectivity in [0, 1] of `predicate` applied to the
  /// relation produced by `input`. Columns are resolved against the scans
  /// under `input`; a column provided by zero or several scans falls back
  /// to the defaults.
  double EstimateSelectivity(const ExprPtr& predicate,
                             const PlanPtr& input) const;

  /// Distinct count of `column` resolved under `input`, or 0 if the column
  /// cannot be attributed to exactly one scanned table.
  double KeyDistinct(const PlanPtr& input, const std::string& column) const;

 private:
  const Table* ResolveColumn(const PlanPtr& input,
                             const std::string& column) const;

  const Catalog* catalog_;
  SelectivityDefaults defaults_;
};

}  // namespace upa::rel
