# Empty dependencies file for engine_shuffle_test.
# This may be replaced when dependencies are built.
