file(REMOVE_RECURSE
  "CMakeFiles/common_normal_fit_test.dir/common_normal_fit_test.cpp.o"
  "CMakeFiles/common_normal_fit_test.dir/common_normal_fit_test.cpp.o.d"
  "common_normal_fit_test"
  "common_normal_fit_test.pdb"
  "common_normal_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_normal_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
