// End-to-end exactly-once orchestrator: a 4-shard cluster of real
// fork/exec'd upa_shard processes, each planted with a SIGKILL failpoint at
// a DIFFERENT point of the release pipeline, under a mixed-tenant keyed
// workload driven through the router. Every query that reaches a shard is
// killed on every second pass (kill:every(2)); the supervisor respawns the
// corpse over its journal, the router's health probe gates traffic until
// replay finished, and the parked query is re-sent with its original
// idempotency key.
//
// The four failpoint sites cover every crash window of the two-phase
// charge/release protocol:
//
//   service/charge_pre_append       charged in memory, nothing durable
//   service/post_append_pre_run     kCharge durable, no release
//   service/post_run_pre_release_append   run done, release NOT journaled
//   service/post_release_pre_ack    release durable, ack never sent
//
// Invariants asserted per seed, across all shards and datasets:
//   1. Exactly one kRelease per idempotency key in the append-only
//      journals — the crash/retry machinery never double-releases.
//   2. Budget conservation: recovered charged - refunded == epsilon ×
//      releases for every dataset (no leaked or double charge).
//   3. Byte-identical replay: re-submitting every completed key returns
//      the journaled response bit-for-bit, and appends no new release.
#include <gtest/gtest.h>

#include <signal.h>
#include <stdlib.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/router.h"
#include "cluster/shard_process.h"
#include "net/client.h"
#include "service/journal.h"

#ifndef UPA_SHARD_BIN
#error "UPA_SHARD_BIN must point at the upa_shard binary"
#endif

namespace upa::cluster {
namespace {

namespace fs = std::filesystem;

constexpr double kEpsilon = 0.1;
constexpr size_t kShards = 4;

const char* kKillSites[kShards] = {
    "service/charge_pre_append",
    "service/post_append_pre_run",
    "service/post_run_pre_release_append",
    "service/post_release_pre_ack",
};

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 30000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// WireResult bytes with the connection-scoped fields zeroed: what "the
/// same response" means across two different client connections.
std::string CanonicalResultBytes(net::WireResult result) {
  result.client_tag = 0;
  return net::EncodeResultFrame(result);
}

class ClusterExactlyOnceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    char tmp[] = "/tmp/upa-exactly-once-XXXXXX";
    ASSERT_NE(::mkdtemp(tmp), nullptr);
    dir_ = tmp;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

TEST_P(ClusterExactlyOnceTest, ChaosRunConservesAndNeverDoubleReleases) {
  const uint64_t seed = GetParam();

  // --- Launch 4 shards, each killing itself at a different site. ---
  std::vector<uint16_t> ports;
  for (size_t i = 0; i < kShards; ++i) {
    auto port = PickFreePort();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    ports.push_back(port.value());
  }
  ShardSupervisor::Options sup_opts;
  sup_opts.backoff_initial_ms = 10.0;
  sup_opts.backoff_max_ms = 200.0;
  sup_opts.backoff_jitter_seed = seed;
  ShardSupervisor supervisor(sup_opts);  // auto_restart on
  for (size_t i = 0; i < kShards; ++i) {
    ShardProcessSpec spec;
    spec.binary = UPA_SHARD_BIN;
    spec.args = {"--port",        std::to_string(ports[i]),
                 "--journal-dir", dir_ + "/s" + std::to_string(i),
                 "--threads",     "1",
                 "--sample-n",    "16",
                 "--budget",      "10"};
    spec.env = {std::string("UPA_FAILPOINTS=") + kKillSites[i] +
                "=kill:every(2)"};
    auto slot = supervisor.Launch(std::move(spec));
    ASSERT_TRUE(slot.ok()) << slot.status().ToString();
    ASSERT_EQ(slot.value(), i);
  }

  RouterConfig router_cfg;
  router_cfg.backoff_initial_ms = 5.0;
  router_cfg.backoff_max_ms = 100.0;
  router_cfg.backoff_jitter_seed = seed;
  router_cfg.retry_timeout_ms = 20000.0;  // cover slow ASan respawns
  router_cfg.retry_limit = 4;
  std::vector<ShardAddress> addrs;
  for (uint16_t port : ports) addrs.push_back({"127.0.0.1", port});
  Router router(addrs, router_cfg);
  router.SetRespawnCounter(
      [&supervisor](size_t shard) { return supervisor.Restarts(shard); });
  ASSERT_TRUE(router.Start().ok());
  for (size_t i = 0; i < kShards; ++i) {
    ASSERT_TRUE(WaitFor([&] { return router.ShardHealthy(i); }))
        << "shard " << i << " never turned healthy";
  }

  // --- Pick two datasets per shard (ring-resolved), 2 queries each. ---
  std::vector<std::vector<std::string>> shard_datasets(kShards);
  for (int candidate = 0; true; ++candidate) {
    ASSERT_LT(candidate, 4096) << "ring never covered all shards";
    const std::string name = "ds-" + std::to_string(candidate);
    std::vector<std::string>& bucket =
        shard_datasets[router.ring().ShardFor(name)];
    if (bucket.size() < 2) bucket.push_back(name);
    bool done = true;
    for (const auto& b : shard_datasets) done = done && b.size() == 2;
    if (done) break;
  }
  struct Planned {
    net::WireQuery query;
    std::string first_response;  // canonical bytes of the first OK answer
  };
  std::vector<Planned> plan;
  const uint64_t nonce = 0x5eed0000u + seed;  // one keyspace for the run
  for (int round = 0; round < 2; ++round) {
    for (size_t shard = 0; shard < kShards; ++shard) {
      for (const std::string& dataset : shard_datasets[shard]) {
        Planned p;
        p.query.tenant = plan.size() % 2 == 0 ? "tenant-a" : "tenant-b";
        p.query.dataset_id = dataset;
        p.query.epsilon = kEpsilon;
        p.query.seed = seed * 1000 + plan.size();
        p.query.sql = "count:400";
        p.query.client_nonce = nonce;
        p.query.client_seq = plan.size() + 1;
        plan.push_back(std::move(p));
      }
    }
  }

  // --- Drive the workload; the client retry loop mirrors the documented
  // idempotent-retry pattern (same key, fresh connection on transport
  // failure, honour retry_after hints). ---
  auto connected = net::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(connected.ok());
  std::unique_ptr<net::Client> client = std::move(connected).value();
  for (Planned& p : plan) {
    net::WireResult result;
    bool answered = false;
    for (int attempt = 0; attempt < 50 && !answered; ++attempt) {
      if (client == nullptr) {
        auto redial = net::Client::Connect("127.0.0.1", router.port());
        if (!redial.ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          continue;
        }
        client = std::move(redial).value();
      }
      auto attempt_result = client->Query(p.query, /*timeout_ms=*/60000);
      if (!attempt_result.ok()) {
        client.reset();  // transport fault poisons the connection
        continue;
      }
      result = std::move(attempt_result).value();
      if (result.ok()) {
        answered = true;
      } else {
        ASSERT_TRUE(result.code == StatusCode::kUnavailable ||
                    result.code == StatusCode::kResourceExhausted)
            << "seq " << p.query.client_seq << ": " << result.message;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::max<int64_t>(result.retry_after_ms, 1)));
      }
    }
    ASSERT_TRUE(answered) << "seq " << p.query.client_seq
                          << " never completed";
    p.first_response = CanonicalResultBytes(std::move(result));
  }

  const Router::Stats mid_stats = router.stats();
  EXPECT_GE(mid_stats.retried, 1u)
      << "the kill sites should have forced at least one parked retry";

  // --- Replay every key on a fresh connection: byte-identical responses,
  // and (checked against the journals below) no new releases. ---
  auto replay_conn = net::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(replay_conn.ok());
  std::unique_ptr<net::Client> replayer = std::move(replay_conn).value();
  for (const Planned& p : plan) {
    net::WireResult replayed;
    bool answered = false;
    for (int attempt = 0; attempt < 50 && !answered; ++attempt) {
      if (replayer == nullptr) {
        auto redial = net::Client::Connect("127.0.0.1", router.port());
        if (!redial.ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          continue;
        }
        replayer = std::move(redial).value();
      }
      auto attempt_result = replayer->Query(p.query, /*timeout_ms=*/60000);
      if (!attempt_result.ok()) {
        replayer.reset();
        continue;
      }
      replayed = std::move(attempt_result).value();
      if (replayed.ok()) {
        answered = true;
      } else {
        ASSERT_TRUE(replayed.code == StatusCode::kUnavailable ||
                    replayed.code == StatusCode::kResourceExhausted)
            << "replay seq " << p.query.client_seq << ": "
            << replayed.message;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::max<int64_t>(replayed.retry_after_ms, 1)));
      }
    }
    ASSERT_TRUE(answered) << "replay of seq " << p.query.client_seq
                          << " never completed";
    EXPECT_EQ(CanonicalResultBytes(std::move(replayed)), p.first_response)
        << "replay of seq " << p.query.client_seq
        << " is not byte-identical to the first response";
  }

  router.Stop();
  supervisor.StopAll();

  // --- Journal forensics: the journals are append-only, so they hold the
  // complete release history across every crash and respawn. ---
  std::map<std::pair<uint64_t, uint64_t>, int> releases_per_key;
  for (size_t shard = 0; shard < kShards; ++shard) {
    const std::string shard_dir = dir_ + "/s" + std::to_string(shard);
    for (const auto& entry : fs::directory_iterator(shard_dir)) {
      if (entry.path().extension() != ".journal") continue;
      auto records = service::Journal::ReadAll(entry.path().string());
      ASSERT_TRUE(records.ok()) << records.status().ToString();
      std::string dataset;
      int dataset_releases = 0;
      for (const service::JournalRecord& rec : records.value()) {
        if (rec.type == service::JournalRecord::Type::kOpen) {
          dataset = rec.dataset_id;
        }
        if (rec.type != service::JournalRecord::Type::kRelease) continue;
        ++dataset_releases;
        if (rec.nonce != 0) {
          ++releases_per_key[{rec.nonce, rec.key_seq}];
        }
      }
      // Conservation: run the real recovery over the full journal and
      // check the ledger it would hand a restarted shard.
      auto recovered = service::RecoverAll(shard_dir, /*compact=*/false);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      for (const service::DatasetDurableState& state : recovered.value()) {
        if (state.dataset_id != dataset) continue;
        const double spent = state.charged_total - state.refunded_total;
        EXPECT_NEAR(spent, kEpsilon * dataset_releases, 1e-9)
            << "shard " << shard << " dataset " << dataset
            << ": budget does not match its releases (leaked or double "
               "charge)";
      }
    }
  }
  for (const auto& [key, count] : releases_per_key) {
    EXPECT_EQ(count, 1) << "key (0x" << std::hex << key.first << std::dec
                        << ", " << key.second << ") was released " << count
                        << " times";
  }
  // Every acknowledged query has its release journaled exactly once.
  for (const Planned& p : plan) {
    EXPECT_EQ(releases_per_key.count(
                  {p.query.client_nonce, p.query.client_seq}),
              1u)
        << "seq " << p.query.client_seq << " was acknowledged but has no "
        << "journaled release";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterExactlyOnceTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace upa::cluster
