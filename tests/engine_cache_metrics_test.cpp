#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/cache.h"
#include "engine/context.h"
#include "engine/metrics.h"

namespace upa::engine {
namespace {

TEST(BlockCacheTest, MissThenHit) {
  ExecMetrics metrics;
  BlockCache cache(&metrics);
  int computes = 0;
  auto v1 = cache.GetOrCompute<int>(7, [&] {
    ++computes;
    return 42;
  });
  auto v2 = cache.GetOrCompute<int>(7, [&] {
    ++computes;
    return 42;
  });
  EXPECT_EQ(*v1, 42);
  EXPECT_EQ(*v2, 42);
  EXPECT_EQ(computes, 1);
  auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_DOUBLE_EQ(snap.cache_hit_rate(), 0.5);
}

TEST(BlockCacheTest, DistinctKeysAreDistinctBlocks) {
  ExecMetrics metrics;
  BlockCache cache(&metrics);
  cache.Put<int>(1, 10);
  cache.Put<int>(2, 20);
  EXPECT_EQ(*cache.Get<int>(1), 10);
  EXPECT_EQ(*cache.Get<int>(2), 20);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(BlockCacheTest, GetOnMissingReturnsNull) {
  ExecMetrics metrics;
  BlockCache cache(&metrics);
  EXPECT_EQ(cache.Get<int>(99), nullptr);
  EXPECT_EQ(metrics.Snapshot().cache_misses, 1u);
}

TEST(BlockCacheTest, ClearEmptiesCache) {
  ExecMetrics metrics;
  BlockCache cache(&metrics);
  cache.Put<std::string>(1, "x");
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get<std::string>(1), nullptr);
}

TEST(BlockCacheTest, StoresComplexTypes) {
  ExecMetrics metrics;
  BlockCache cache(&metrics);
  std::vector<double> payload{1.0, 2.0, 3.0};
  cache.Put<std::vector<double>>(5, payload);
  auto got = cache.Get<std::vector<double>>(5);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, payload);
}

TEST(BlockCacheTest, WorksWithoutMetrics) {
  BlockCache cache(nullptr);
  auto v = cache.GetOrCompute<int>(1, [] { return 5; });
  EXPECT_EQ(*v, 5);
}

TEST(ExecMetricsTest, SnapshotDeltaArithmetic) {
  ExecMetrics m;
  m.AddTasks(3);
  m.AddRecords(100);
  auto before = m.Snapshot();
  m.AddTasks(2);
  m.AddRecords(50);
  m.AddShuffleRound();
  m.AddShuffleRecords(25);
  auto delta = m.Snapshot() - before;
  EXPECT_EQ(delta.tasks_launched, 2u);
  EXPECT_EQ(delta.records_processed, 50u);
  EXPECT_EQ(delta.shuffle_rounds, 1u);
  EXPECT_EQ(delta.shuffle_records, 25u);
}

TEST(ExecMetricsTest, PhaseSecondsAccumulate) {
  ExecMetrics m;
  m.AddPhaseSeconds("map", 0.5);
  m.AddPhaseSeconds("map", 0.25);
  m.AddPhaseSeconds("reduce", 1.0);
  auto snap = m.Snapshot();
  EXPECT_DOUBLE_EQ(snap.phase_seconds.at("map"), 0.75);
  EXPECT_DOUBLE_EQ(snap.phase_seconds.at("reduce"), 1.0);
}

TEST(ExecMetricsTest, PhaseDeltaSubtracts) {
  ExecMetrics m;
  m.AddPhaseSeconds("map", 1.0);
  auto before = m.Snapshot();
  m.AddPhaseSeconds("map", 0.5);
  auto delta = m.Snapshot() - before;
  EXPECT_DOUBLE_EQ(delta.phase_seconds.at("map"), 0.5);
}

TEST(ExecMetricsTest, ResetZeroesEverything) {
  ExecMetrics m;
  m.AddTasks(1);
  m.AddCacheHit();
  m.AddPhaseSeconds("x", 1.0);
  m.Reset();
  auto snap = m.Snapshot();
  EXPECT_EQ(snap.tasks_launched, 0u);
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_TRUE(snap.phase_seconds.empty());
}

TEST(ExecMetricsTest, HitRateEdgeCases) {
  MetricsSnapshot s;
  EXPECT_DOUBLE_EQ(s.cache_hit_rate(), 0.0);
  s.cache_hits = 3;
  s.cache_misses = 1;
  EXPECT_DOUBLE_EQ(s.cache_hit_rate(), 0.75);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(ExecMetricsTest, NamedCountersAccumulateAndSubtract) {
  ExecMetrics m;
  m.AddCounter("service/queries");
  m.AddCounter("service/queries", 4);
  m.AddCounter("service/rejected");
  auto before = m.Snapshot();
  m.AddCounter("service/queries", 2);
  auto delta = m.Snapshot() - before;
  EXPECT_EQ(before.counters.at("service/queries"), 5u);
  EXPECT_EQ(before.counters.at("service/rejected"), 1u);
  EXPECT_EQ(delta.counters.at("service/queries"), 2u);
  EXPECT_EQ(delta.counters.at("service/rejected"), 0u);
}

TEST(HistogramTest, BucketsCoverMicrosToMinutes) {
  EXPECT_EQ(HistogramSnapshot::BucketOf(0.0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketOf(5e-7), 0u);
  // Each bucket's upper bound lands in that bucket's range.
  for (size_t i = 1; i + 1 < HistogramSnapshot::kBuckets; ++i) {
    double upper = HistogramSnapshot::BucketUpperSeconds(i);
    EXPECT_EQ(HistogramSnapshot::BucketOf(upper * 0.99), i) << i;
    EXPECT_EQ(HistogramSnapshot::BucketOf(upper * 1.01), i + 1) << i;
  }
  // Far beyond the last bound: clamped into the open-ended top bucket.
  EXPECT_EQ(HistogramSnapshot::BucketOf(1e9),
            HistogramSnapshot::kBuckets - 1);
}

TEST(HistogramTest, QuantilesTrackObservations) {
  ExecMetrics m;
  // 90 fast observations (~2µs), 10 slow (~1ms).
  for (int i = 0; i < 90; ++i) m.RecordLatency("phase", 2e-6);
  for (int i = 0; i < 10; ++i) m.RecordLatency("phase", 1e-3);
  auto hist = m.Snapshot().latency.at("phase");
  EXPECT_EQ(hist.count, 100u);
  EXPECT_NEAR(hist.MeanSeconds(), (90 * 2e-6 + 10 * 1e-3) / 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(hist.max_seconds, 1e-3);
  // p50 is in the fast band, p99 in the slow band (bucket resolution 2x).
  EXPECT_LE(hist.QuantileSeconds(0.5), 8e-6);
  EXPECT_GE(hist.QuantileSeconds(0.99), 5e-4);
  // Quantiles never exceed the observed max.
  EXPECT_LE(hist.QuantileSeconds(1.0), hist.max_seconds);
  EXPECT_FALSE(hist.ToString().empty());
}

TEST(HistogramTest, SnapshotSubtractionIsolatesNewObservations) {
  ExecMetrics m;
  m.RecordLatency("phase", 1e-3);
  auto before = m.Snapshot();
  m.RecordLatency("phase", 4e-3);
  auto delta = m.Snapshot() - before;
  EXPECT_EQ(delta.latency.at("phase").count, 1u);
  EXPECT_NEAR(delta.latency.at("phase").sum_seconds, 4e-3, 1e-9);
}

TEST(HistogramTest, EmptyHistogramIsWellBehaved) {
  HistogramSnapshot hist;
  EXPECT_DOUBLE_EQ(hist.QuantileSeconds(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.MeanSeconds(), 0.0);
}

TEST(ExecContextTest, TimePhaseAttributesTime) {
  ExecContext ctx(ExecConfig{.threads = 1, .default_partitions = 2});
  int result = ctx.TimePhase("work", [] { return 7; });
  EXPECT_EQ(result, 7);
  auto snap = ctx.metrics().Snapshot();
  EXPECT_GE(snap.phase_seconds.at("work"), 0.0);
}

TEST(ExecContextTest, TimePhaseVoidVariant) {
  ExecContext ctx(ExecConfig{.threads = 1, .default_partitions = 2});
  bool ran = false;
  ctx.TimePhase("void_work", [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_TRUE(ctx.metrics().Snapshot().phase_seconds.contains("void_work"));
}

}  // namespace
}  // namespace upa::engine
