// Type-erased block cache modelling Spark's in-memory block store.
//
// UPA's sampled-neighbour phase repeatedly touches the same mapped sample
// blocks, which is why the paper observes the Spark cache hit rate rising
// from 10.3% to 48.9% in that phase (Fig 4b). The engine records hits and
// misses here so the reproduction can report the same effect.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/metrics.h"

namespace upa::engine {

class BlockCache {
 public:
  explicit BlockCache(ExecMetrics* metrics) : metrics_(metrics) {}

  /// Returns the cached value for `key` if present (cache hit), otherwise
  /// computes it with `compute`, stores and returns it (miss). The value
  /// type T must match across calls with the same key.
  template <typename T, typename Fn>
  std::shared_ptr<const T> GetOrCompute(uint64_t key, Fn&& compute) {
    {
      std::lock_guard lock(mu_);
      auto it = blocks_.find(key);
      if (it != blocks_.end()) {
        if (metrics_ != nullptr) metrics_->AddCacheHit();
        return std::static_pointer_cast<const T>(it->second);
      }
    }
    if (metrics_ != nullptr) metrics_->AddCacheMiss();
    auto value = std::make_shared<const T>(compute());
    std::lock_guard lock(mu_);
    blocks_.emplace(key, value);
    return value;
  }

  /// Looks up without computing. Counts hit/miss.
  template <typename T>
  std::shared_ptr<const T> Get(uint64_t key) {
    std::lock_guard lock(mu_);
    auto it = blocks_.find(key);
    if (it == blocks_.end()) {
      if (metrics_ != nullptr) metrics_->AddCacheMiss();
      return nullptr;
    }
    if (metrics_ != nullptr) metrics_->AddCacheHit();
    return std::static_pointer_cast<const T>(it->second);
  }

  template <typename T>
  void Put(uint64_t key, T value) {
    auto ptr = std::make_shared<const T>(std::move(value));
    std::lock_guard lock(mu_);
    blocks_[key] = std::move(ptr);
  }

  void Clear() {
    std::lock_guard lock(mu_);
    blocks_.clear();
  }

  size_t size() const {
    std::lock_guard lock(mu_);
    return blocks_.size();
  }

 private:
  ExecMetrics* metrics_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const void>> blocks_;
};

}  // namespace upa::engine
