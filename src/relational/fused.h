// Single-pass fused execution of Aggregate(Filter*(Scan)) chains.
//
// The interpreted columnar path (columnar.cpp) pays, per plan node, a full
// batch pass plus a Reindex gather that materializes the surviving row-index
// vectors between nodes. For the dominant filter→aggregate chains over one
// table — every UPA phase run of a single-table query runs three of them —
// this layer removes all of that: a kernel "compiler" walks the chain once,
// specializes the hot conjuncts (column type × comparison op, dense and
// indirected, via templates resolved through function pointers) and the
// aggregate accumulation (aggregate kind × weight form), and emits one loop
// that reads each fragment's columns exactly once, evaluates the conjunct
// chain with short-circuit selection, and accumulates survivors directly
// into ExactSum — no iota vectors, no per-node selection storage, no
// intermediate relation.
//
// This is the no-LLVM analogue of an expression JIT (hdk's CodeGenerator /
// TargetExprBuilder): specialization happens at template-instantiation
// time, dispatch once per query, and the inner loops are branch-free
// cursor-advance selections over contiguous arrays, so they autovectorize.
//
// Correctness contract — bit-identity with the interpreted path and the
// row oracle, including abort behaviour:
//   * conjuncts evaluate in filter order (innermost first), each on the
//     survivors of the previous one — exactly FilterKernel's AND
//     short-circuit, so guarded aborts (division by zero, mixed
//     string/numeric ordered compares) fire iff they fire interpreted;
//   * conjuncts that don't match a fast shape fall back to the *same*
//     FilterKernel / ProjectKernel the interpreted path runs;
//   * zone-map skipping consults FragmentCanMatch on the conjoined
//     predicate (abort-safe by construction), so a skipped fragment is
//     output-equivalent to scanning it;
//   * every accumulation goes through ExactSum with the interpreted
//     path's exact per-row expressions (min/max NaN handling included).
// The SQL fuzzer (tests/relational_sql_fuzz_test.cpp) and the fused
// differential suite assert all of this across thread counts and fragment
// sizes.
#pragma once

#include <optional>
#include <vector>

#include "common/status.h"
#include "engine/context.h"
#include "relational/columnar.h"
#include "relational/executor.h"
#include "relational/plan.h"

namespace upa::rel {

/// The plan shape the fused engine accepts: an Aggregate over a chain of
/// zero or more Filters over exactly one Scan.
struct FusedShape {
  /// One entry per Filter node, innermost (closest to the scan) first —
  /// the interpreted engine's evaluation order. Each entry may itself be
  /// an AND/OR tree; FilterKernel's short-circuit applies within it.
  std::vector<ExprPtr> conjuncts;
  /// The scanned table's name.
  std::string table;
};

/// Matches `plan` against the fusible shape. Returns nullopt for joins,
/// nested aggregates, or non-aggregate roots; the FuseMode on the root is
/// NOT consulted here (callers combine shape and mode).
std::optional<FusedShape> FusableShape(const PlanPtr& plan);

/// Executes a fusible plan in a single pass. Expects `shape` from
/// FusableShape(plan) and an Aggregate root; returns the same statuses and
/// bit-identical results (outputs, partition_outputs, contributions,
/// result_rows) as the interpreted columnar path.
Result<ExecResult> ExecuteFused(engine::ExecContext* ctx,
                                const Catalog* catalog, const PlanPtr& plan,
                                const FusedShape& shape,
                                const ExecOptions& options);

}  // namespace upa::rel
