#include "relational/sql_parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace upa::rel {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent,    // unquoted word (may be a keyword; matched case-insensitively)
  kInt,
  kDouble,
  kString,   // 'quoted'
  kSymbol,   // operators and punctuation, text holds the lexeme
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // identifier / symbol lexeme / string body
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t pos = 0;       // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = sql_.size();
    while (i < n) {
      char c = sql_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i < n && (std::isalnum(static_cast<unsigned char>(sql_[i])) ||
                         sql_[i] == '_')) {
          ++i;
        }
        out.push_back({TokKind::kIdent, sql_.substr(start, i - start), 0, 0.0,
                       start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(sql_[i + 1])))) {
        bool is_double = false;
        while (i < n && (std::isdigit(static_cast<unsigned char>(sql_[i])) ||
                         sql_[i] == '.')) {
          if (sql_[i] == '.') is_double = true;
          ++i;
        }
        std::string num = sql_.substr(start, i - start);
        Token t;
        t.pos = start;
        if (is_double) {
          t.kind = TokKind::kDouble;
          t.double_value = std::strtod(num.c_str(), nullptr);
        } else {
          t.kind = TokKind::kInt;
          t.int_value = std::strtoll(num.c_str(), nullptr, 10);
        }
        out.push_back(std::move(t));
        continue;
      }
      if (c == '\'') {
        ++i;
        std::string body;
        while (i < n && sql_[i] != '\'') body.push_back(sql_[i++]);
        if (i >= n) {
          return Status::InvalidArgument("unterminated string literal at " +
                                         std::to_string(start));
        }
        ++i;  // closing quote
        out.push_back({TokKind::kString, std::move(body), 0, 0.0, start});
        continue;
      }
      // Multi-char operators first.
      auto two = sql_.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        out.push_back({TokKind::kSymbol, two, 0, 0.0, start});
        i += 2;
        continue;
      }
      if (std::string("()=<>*+-/,").find(c) != std::string::npos) {
        out.push_back({TokKind::kSymbol, std::string(1, c), 0, 0.0, start});
        ++i;
        continue;
      }
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at position " +
                                     std::to_string(i));
    }
    out.push_back({TokKind::kEnd, "", 0, 0.0, n});
    return out;
  }

 private:
  const std::string& sql_;
};

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<PlanPtr> ParseQuery() {
    UPA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    AggKind agg;
    ExprPtr agg_expr;
    UPA_RETURN_IF_ERROR(ParseAggregate(agg, agg_expr));

    UPA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    std::string table;
    UPA_RETURN_IF_ERROR(ExpectIdent(table));
    PlanPtr rel = ScanPlan(table);

    while (AcceptKeyword("JOIN")) {
      std::string right;
      UPA_RETURN_IF_ERROR(ExpectIdent(right));
      UPA_RETURN_IF_ERROR(ExpectKeyword("ON"));
      std::string lk, rk;
      UPA_RETURN_IF_ERROR(ExpectIdent(lk));
      UPA_RETURN_IF_ERROR(ExpectSymbol("="));
      UPA_RETURN_IF_ERROR(ExpectIdent(rk));
      rel = JoinPlan(rel, ScanPlan(right), lk, rk);
    }

    if (AcceptKeyword("WHERE")) {
      Result<ExprPtr> pred = ParseExpr();
      if (!pred.ok()) return pred.status();
      rel = FilterPlan(rel, pred.value());
    }

    if (Peek().kind != TokKind::kEnd) {
      return Err("trailing input after query");
    }

    switch (agg) {
      case AggKind::kCount:
        return CountPlan(rel);
      case AggKind::kSum:
        return SumPlan(rel, agg_expr);
      case AggKind::kAvg:
        return AvgPlan(rel, agg_expr);
      case AggKind::kMin:
        return MinPlan(rel, agg_expr);
      case AggKind::kMax:
        return MaxPlan(rel, agg_expr);
    }
    return Status::Internal("unreachable aggregate kind");
  }

 private:
  // -- token helpers --------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokKind::kIdent && Upper(Peek().text) == kw) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const std::string& s) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == s) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Err("expected " + kw);
    return Status::Ok();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s)) return Err("expected '" + s + "'");
    return Status::Ok();
  }
  Status ExpectIdent(std::string& out) {
    if (Peek().kind != TokKind::kIdent) return Err("expected identifier");
    out = Advance().text;
    return Status::Ok();
  }
  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        what + " near position " + std::to_string(Peek().pos) +
        (Peek().text.empty() ? "" : " ('" + Peek().text + "')"));
  }

  static bool IsKeyword(const Token& t, const char* kw) {
    return t.kind == TokKind::kIdent && Upper(t.text) == kw;
  }

  // -- grammar --------------------------------------------------------------
  Status ParseAggregate(AggKind& agg, ExprPtr& expr) {
    if (AcceptKeyword("COUNT")) {
      UPA_RETURN_IF_ERROR(ExpectSymbol("("));
      UPA_RETURN_IF_ERROR(ExpectSymbol("*"));
      UPA_RETURN_IF_ERROR(ExpectSymbol(")"));
      agg = AggKind::kCount;
      return Status::Ok();
    }
    for (auto [kw, kind] :
         {std::pair{"SUM", AggKind::kSum}, std::pair{"AVG", AggKind::kAvg},
          std::pair{"MIN", AggKind::kMin}, std::pair{"MAX", AggKind::kMax}}) {
      if (AcceptKeyword(kw)) {
        UPA_RETURN_IF_ERROR(ExpectSymbol("("));
        Result<ExprPtr> inner = ParseExpr();
        if (!inner.ok()) return inner.status();
        UPA_RETURN_IF_ERROR(ExpectSymbol(")"));
        agg = kind;
        expr = inner.value();
        return Status::Ok();
      }
    }
    return Err("expected COUNT(*), SUM(...), AVG(...), MIN(...) or MAX(...)");
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    Result<ExprPtr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.value();
    while (AcceptKeyword("OR")) {
      Result<ExprPtr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      e = Or(e, rhs.value());
    }
    return e;
  }

  Result<ExprPtr> ParseAnd() {
    Result<ExprPtr> lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.value();
    while (AcceptKeyword("AND")) {
      Result<ExprPtr> rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      e = And(e, rhs.value());
    }
    return e;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      Result<ExprPtr> inner = ParseNot();
      if (!inner.ok()) return inner;
      return Not(inner.value());
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    Result<ExprPtr> lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.value();

    if (AcceptKeyword("IN")) {
      UPA_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> set;
      for (;;) {
        std::optional<Value> lit = AcceptLiteral();
        if (!lit.has_value()) return Err("expected literal in IN list");
        set.push_back(std::move(*lit));
        if (AcceptSymbol(",")) continue;
        break;
      }
      UPA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return In(e, std::move(set));
    }

    for (auto [sym, op] :
         {std::pair{"=", BinOp::kEq}, std::pair{"!=", BinOp::kNe},
          std::pair{"<>", BinOp::kNe}, std::pair{"<=", BinOp::kLe},
          std::pair{">=", BinOp::kGe}, std::pair{"<", BinOp::kLt},
          std::pair{">", BinOp::kGt}}) {
      if (AcceptSymbol(sym)) {
        Result<ExprPtr> rhs = ParseAdditive();
        if (!rhs.ok()) return rhs;
        return Expr::Binary(op, e, rhs.value());
      }
    }
    return e;
  }

  Result<ExprPtr> ParseAdditive() {
    Result<ExprPtr> lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.value();
    for (;;) {
      if (AcceptSymbol("+")) {
        Result<ExprPtr> rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        e = Add(e, rhs.value());
      } else if (AcceptSymbol("-")) {
        Result<ExprPtr> rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        e = Sub(e, rhs.value());
      } else {
        return e;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    Result<ExprPtr> lhs = ParsePrimary();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.value();
    for (;;) {
      if (AcceptSymbol("*")) {
        Result<ExprPtr> rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        e = Mul(e, rhs.value());
      } else if (AcceptSymbol("/")) {
        Result<ExprPtr> rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        e = Div(e, rhs.value());
      } else {
        return e;
      }
    }
  }

  std::optional<Value> AcceptLiteral() {
    const Token& t = Peek();
    if (t.kind == TokKind::kInt) {
      Advance();
      return Value{t.int_value};
    }
    if (t.kind == TokKind::kDouble) {
      Advance();
      return Value{t.double_value};
    }
    if (t.kind == TokKind::kString) {
      Advance();
      return Value{t.text};
    }
    return std::nullopt;
  }

  Result<ExprPtr> ParsePrimary() {
    if (AcceptSymbol("(")) {
      Result<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      UPA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (std::optional<Value> lit = AcceptLiteral()) {
      return Expr::Literal(std::move(*lit));
    }
    if (Peek().kind == TokKind::kIdent) {
      // Reject keywords in value position for clearer errors.
      std::string up = Upper(Peek().text);
      if (up == "AND" || up == "OR" || up == "NOT" || up == "WHERE" ||
          up == "JOIN" || up == "ON" || up == "FROM" || up == "IN") {
        return Err("expected a value or column");
      }
      return Col(Advance().text);
    }
    return Err("expected a value, column or parenthesized expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<PlanPtr> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseQuery();
}

}  // namespace upa::rel
