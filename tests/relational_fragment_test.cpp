// Fragmented columnar storage: fragment directory + zone maps, predicate
// skip analysis (FragmentCanMatch), spill/reload, and the BufferManager's
// budget/LRU/eviction behaviour.
//
// The core contract under test: fragment size, memory budget, eviction
// timing and spill round-trips must never change a single output bit. The
// Zipf-skew differential at the bottom runs real plans over a deliberately
// skewed dataset across fragment sizes {7, 64K} × thread counts {1, 4} and
// compares every output, partition output and contribution bit-for-bit
// against the row oracle (suite name matches the CI TSan filter).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "engine/context.h"
#include "relational/buffer_manager.h"
#include "relational/columnar.h"
#include "relational/executor.h"
#include "relational/expr.h"
#include "relational/kernels.h"
#include "relational/plan.h"
#include "relational/table.h"

namespace upa::rel {
namespace {

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

/// Restores the global fragment-size knob and BufferManager config on scope
/// exit so tests cannot leak configuration into each other.
struct GlobalConfigGuard {
  size_t fragment_rows = DefaultFragmentRows();
  BufferManager::Config buf = BufferManager::Instance().config();
  ~GlobalConfigGuard() {
    SetDefaultFragmentRows(fragment_rows);
    BufferManager::Instance().Configure(buf);
  }
};

Schema ThreeColSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"v", ValueType::kDouble},
                 {"s", ValueType::kString}});
}

/// 100 rows: id = 0..99, v = id * 0.5, s cycles a/b/c.
std::vector<Row> ThreeColRows() {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) {
    rows.push_back({Value{i}, Value{static_cast<double>(i) * 0.5},
                    Value{std::string(1, static_cast<char>('a' + i % 3))}});
  }
  return rows;
}

TEST(FragmentTest, DirectoryCoversRowsWithZoneMaps) {
  auto ct = ColumnarTable::Build(ThreeColSchema(), ThreeColRows(), 40);
  EXPECT_EQ(ct->fragment_rows(), 40u);
  ASSERT_EQ(ct->fragments().size(), 3u);  // 40 + 40 + 20

  uint32_t expect_begin = 0;
  size_t payload = 0;
  for (const FragmentInfo& f : ct->fragments()) {
    EXPECT_EQ(f.begin_row, expect_begin);
    EXPECT_GT(f.end_row, f.begin_row);
    EXPECT_GT(f.bytes, 0u);
    ASSERT_EQ(f.cols.size(), 3u);
    expect_begin = f.end_row;
    payload += f.bytes;
  }
  EXPECT_EQ(expect_begin, 100u);
  // Resident bytes = fragment payloads + dictionaries (so ≥ the payloads).
  EXPECT_GE(ct->resident_bytes(), payload);

  // Int zone maps are in the kernel's double domain.
  const FragmentInfo& f1 = ct->fragments()[1];
  ASSERT_TRUE(f1.cols[0].numeric_valid);
  EXPECT_EQ(f1.cols[0].min, 40.0);
  EXPECT_EQ(f1.cols[0].max, 79.0);
  ASSERT_TRUE(f1.cols[1].numeric_valid);
  EXPECT_EQ(f1.cols[1].min, 20.0);
  EXPECT_EQ(f1.cols[1].max, 39.5);
  // Every fragment sees all three letters, so code bounds span the dict.
  ASSERT_TRUE(f1.cols[2].codes_valid);
  EXPECT_EQ(f1.cols[2].min_code, 0u);
  EXPECT_EQ(f1.cols[2].max_code, 2u);
}

TEST(FragmentTest, NanPoisonsOnlyItsFragment) {
  Schema schema({{"v", ValueType::kDouble}});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 8; ++i) {
    rows.push_back({Value{i == 2 ? std::nan("") : static_cast<double>(i)}});
  }
  auto ct = ColumnarTable::Build(schema, rows, 4);
  ASSERT_EQ(ct->fragments().size(), 2u);
  EXPECT_FALSE(ct->fragments()[0].cols[0].numeric_valid);  // holds the NaN
  ASSERT_TRUE(ct->fragments()[1].cols[0].numeric_valid);
  EXPECT_EQ(ct->fragments()[1].cols[0].min, 4.0);
  EXPECT_EQ(ct->fragments()[1].cols[0].max, 7.0);
}

TEST(FragmentTest, DefaultFragmentRowsKnob) {
  GlobalConfigGuard guard;
  SetDefaultFragmentRows(5);
  auto ct = ColumnarTable::Build(ThreeColSchema(), ThreeColRows());
  EXPECT_EQ(ct->fragment_rows(), 5u);
  EXPECT_EQ(ct->fragments().size(), 20u);
}

// ---------------------------------------------------------------------------
// FragmentCanMatch: skip exactly when no row can satisfy the predicate.

class FragmentCanMatchTest : public ::testing::Test {
 protected:
  FragmentCanMatchTest()
      : schema_(ThreeColSchema()),
        ct_(ColumnarTable::Build(schema_, ThreeColRows(), 10)) {}

  /// Fragments whose FragmentCanMatch(pred) is true, as a bitset string
  /// ("1100000000" = only the first two of the ten 10-row fragments).
  std::string MatchMask(const ExprPtr& expr) {
    std::vector<const Column*> cols;
    for (size_t i = 0; i < schema_.NumColumns(); ++i) {
      cols.push_back(&ct_->column(i));
    }
    CompiledExpr pred = CompileExpr(expr, schema_, cols);
    std::string mask;
    for (size_t f = 0; f < ct_->fragments().size(); ++f) {
      mask += FragmentCanMatch(pred, *ct_, f) ? '1' : '0';
    }
    return mask;
  }

  Schema schema_;
  std::shared_ptr<const ColumnarTable> ct_;
};

TEST_F(FragmentCanMatchTest, NumericComparisons) {
  EXPECT_EQ(MatchMask(Lt(Col("id"), Lit(int64_t{25}))), "1110000000");
  EXPECT_EQ(MatchMask(Le(Col("id"), Lit(int64_t{30}))), "1111000000");
  EXPECT_EQ(MatchMask(Ge(Col("v"), Lit(40.0))), "0000000011");
  EXPECT_EQ(MatchMask(Eq(Col("id"), Lit(int64_t{55}))), "0000010000");
  EXPECT_EQ(MatchMask(Ne(Col("id"), Lit(int64_t{55}))), "1111111111");
  // Out-of-domain literals: nothing matches anywhere.
  EXPECT_EQ(MatchMask(Gt(Col("id"), Lit(int64_t{1000}))), "0000000000");
  // NaN defeats interval reasoning — never skip (col == NaN matches all
  // rows under the kernel's !(v<x)&&!(v>x) equality).
  EXPECT_EQ(MatchMask(Eq(Col("v"), Lit(std::nan("")))), "1111111111");
}

TEST_F(FragmentCanMatchTest, StringAndInSet) {
  // Every fragment holds codes {a,b,c}, so a present literal matches and an
  // absent one skips everywhere.
  EXPECT_EQ(MatchMask(Eq(Col("s"), Lit("b"))), "1111111111");
  EXPECT_EQ(MatchMask(Eq(Col("s"), Lit("zz"))), "0000000000");
  EXPECT_EQ(MatchMask(Lt(Col("s"), Lit("a"))), "0000000000");
  EXPECT_EQ(MatchMask(Ge(Col("s"), Lit("c"))), "1111111111");
  EXPECT_EQ(MatchMask(In(Col("s"), {Value{std::string("q")}})), "0000000000");
  EXPECT_EQ(MatchMask(In(Col("id"), {Value{int64_t{15}}, Value{int64_t{16}}})),
            "0100000000");
}

TEST_F(FragmentCanMatchTest, BooleanStructure) {
  // AND: lhs-first short circuit; an unsatisfiable side kills the fragment.
  EXPECT_EQ(MatchMask(And(Lt(Col("id"), Lit(int64_t{25})),
                          Ge(Col("v"), Lit(5.0)))),
            "0110000000");
  EXPECT_EQ(MatchMask(Or(Lt(Col("id"), Lit(int64_t{5})),
                         Gt(Col("id"), Lit(int64_t{95})))),
            "1000000001");
  EXPECT_EQ(MatchMask(Not(Lt(Col("id"), Lit(int64_t{1000})))), "0000000000");
  EXPECT_EQ(MatchMask(Not(Lt(Col("id"), Lit(int64_t{25})))), "0011111111");
}

TEST_F(FragmentCanMatchTest, NeverSkipsAwayAnAbort) {
  // A mixed string/numeric *ordered* comparison aborts when evaluated, so
  // an AND whose rhs is unsatisfiable must still scan (the kernel would
  // evaluate the aborting lhs on every row before touching the rhs)...
  EXPECT_EQ(MatchMask(And(Lt(Col("s"), Lit(int64_t{5})),
                          Gt(Col("id"), Lit(int64_t{1000})))),
            "1111111111");
  // ...while the mirrored AND may skip: its unsatisfiable lhs is evaluated
  // first and abort-free, leaving zero rows for the aborting rhs.
  EXPECT_EQ(MatchMask(And(Gt(Col("id"), Lit(int64_t{1000})),
                          Lt(Col("s"), Lit(int64_t{5})))),
            "0000000000");
  // Mixed ==/!= never abort and have constant value.
  EXPECT_EQ(MatchMask(Eq(Col("s"), Lit(int64_t{5}))), "0000000000");
  EXPECT_EQ(MatchMask(Ne(Col("s"), Lit(int64_t{5}))), "1111111111");
  // Arithmetic can abort (division) — never the basis of a skip.
  EXPECT_EQ(MatchMask(And(Gt(Div(Col("v"), Col("id")), Lit(int64_t{1000})),
                          Gt(Col("id"), Lit(int64_t{1000})))),
            "1111111111");
}

// ---------------------------------------------------------------------------
// Spill / reload.

Schema TrickySchema() {
  return Schema({{"i", ValueType::kInt},
                 {"d", ValueType::kDouble},
                 {"s", ValueType::kString}});
}

std::vector<Row> TrickyRows() {
  return {
      {Value{std::numeric_limits<int64_t>::min()}, Value{-0.0},
       Value{std::string()}},
      {Value{std::numeric_limits<int64_t>::max()},
       Value{std::numeric_limits<double>::quiet_NaN()}, Value{std::string("β")}},
      {Value{int64_t{0}}, Value{std::numeric_limits<double>::infinity()},
       Value{std::string("a")}},
      {Value{int64_t{7}}, Value{5e-324}, Value{std::string("a")}},
      {Value{int64_t{-7}}, Value{-std::numeric_limits<double>::infinity()},
       Value{std::string("zz")}},
  };
}

void ExpectBitIdenticalTables(const ColumnarTable& want,
                              const ColumnarTable& got) {
  ASSERT_EQ(want.num_rows(), got.num_rows());
  ASSERT_EQ(want.schema().NumColumns(), got.schema().NumColumns());
  for (size_t c = 0; c < want.schema().NumColumns(); ++c) {
    SCOPED_TRACE("column " + std::to_string(c));
    const Column& a = want.column(c);
    const Column& b = got.column(c);
    ASSERT_EQ(a.type, b.type);
    EXPECT_EQ(a.ints, b.ints);
    ASSERT_EQ(a.doubles.size(), b.doubles.size());
    for (size_t i = 0; i < a.doubles.size(); ++i) {
      EXPECT_EQ(Bits(a.doubles[i]), Bits(b.doubles[i])) << "row " << i;
    }
    EXPECT_EQ(a.codes, b.codes);
    ASSERT_EQ(a.dict == nullptr, b.dict == nullptr);
    if (a.dict != nullptr) {
      EXPECT_EQ(*a.dict, *b.dict);
    }
  }
}

TEST(FragmentSpillTest, RoundTripIsBitExact) {
  auto ct = ColumnarTable::Build(TrickySchema(), TrickyRows(), 2);
  const std::string path = ::testing::TempDir() + "upa_spill_roundtrip.bin";
  ASSERT_TRUE(ct->SpillTo(path).ok());

  // Reload under a different fragment size: payload identical, directory
  // recomputed for the new size.
  auto loaded = ColumnarTable::LoadSpill(path, TrickySchema(), 3);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitIdenticalTables(*ct, *loaded.value());
  EXPECT_EQ(loaded.value()->fragment_rows(), 3u);
  EXPECT_EQ(loaded.value()->fragments().size(), 2u);  // 3 + 2 rows
  EXPECT_EQ(loaded.value()->resident_bytes(), ct->resident_bytes());
  std::remove(path.c_str());
}

TEST(FragmentSpillTest, RejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(
      ColumnarTable::LoadSpill("/nonexistent/upa.spill", TrickySchema()).ok());

  const std::string path = ::testing::TempDir() + "upa_spill_corrupt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a spill file", f);
  std::fclose(f);
  EXPECT_FALSE(ColumnarTable::LoadSpill(path, TrickySchema()).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// BufferManager: budget, LRU eviction, spill-backed reload, failpoints.

Table MakeWideTable(const std::string& name, int64_t salt) {
  Schema schema({{"k", ValueType::kInt}, {"x", ValueType::kDouble}});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 4000; ++i) {
    rows.push_back(
        {Value{i * salt}, Value{static_cast<double>(i) * 0.125 + salt}});
  }
  return Table(name, schema, rows);
}

TEST(BufferManagerTest, BudgetEvictsLruAndPeakStaysBounded) {
  GlobalConfigGuard guard;
  BufferManager& mgr = BufferManager::Instance();

  Table t1 = MakeWideTable("t1", 3);
  Table t2 = MakeWideTable("t2", 5);
  const size_t bytes = t1.Columnar()->resident_bytes();
  t1.ReleaseCaches();

  // Budget fits one table (plus slack) but not two.
  mgr.Configure({.budget_bytes = bytes + bytes / 2, .spill_dir = ""});
  t1.Columnar();
  t2.Columnar();  // must evict t1 (LRU, unpinned)
  BufferManager::Stats st = mgr.stats();
  EXPECT_GE(st.evictions, 1u);
  EXPECT_EQ(st.over_budget_admissions, 0u);
  EXPECT_LE(st.resident_bytes, st.budget_bytes);
  EXPECT_LE(st.peak_resident_bytes, st.budget_bytes);
  EXPECT_EQ(st.spills_written, 0u);  // no spill dir: drop + rebuild

  // t1 transparently rebuilds — and evicts t2 in turn.
  EXPECT_EQ(t1.Columnar()->num_rows(), 4000u);
  st = mgr.stats();
  EXPECT_GE(st.evictions, 2u);
  EXPECT_LE(st.peak_resident_bytes, st.budget_bytes);
}

TEST(BufferManagerTest, PinnedTablesAreNeverEvicted) {
  GlobalConfigGuard guard;
  BufferManager& mgr = BufferManager::Instance();

  Table t1 = MakeWideTable("t1", 3);
  Table t2 = MakeWideTable("t2", 5);
  const size_t bytes = t1.Columnar()->resident_bytes();
  t1.ReleaseCaches();

  mgr.Configure({.budget_bytes = bytes + bytes / 2, .spill_dir = ""});
  std::shared_ptr<const ColumnarTable> pin = t1.Columnar();
  t2.Columnar();  // t1 is pinned → no victim → over budget
  BufferManager::Stats st = mgr.stats();
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_GE(st.over_budget_admissions, 1u);
  EXPECT_GT(st.resident_bytes, st.budget_bytes);
  // The pinned form is still the cached one.
  EXPECT_EQ(pin.get(), t1.Columnar().get());
}

TEST(BufferManagerTest, EvictionSpillsAndReloadsBitIdentically) {
  GlobalConfigGuard guard;
  BufferManager& mgr = BufferManager::Instance();

  Table t1("tricky", TrickySchema(), TrickyRows());
  Table t2 = MakeWideTable("big", 7);
  const size_t bytes2 = t2.Columnar()->resident_bytes();
  t2.ReleaseCaches();

  auto baseline = ColumnarTable::Build(TrickySchema(), TrickyRows());

  mgr.Configure({.budget_bytes = bytes2, .spill_dir = ::testing::TempDir()});
  t1.Columnar();
  t2.Columnar();  // evicts t1 → spill written
  BufferManager::Stats st = mgr.stats();
  EXPECT_GE(st.evictions, 1u);
  EXPECT_GE(st.spills_written, 1u);

  std::shared_ptr<const ColumnarTable> reloaded = t1.Columnar();
  EXPECT_GE(mgr.stats().spill_loads, 1u);
  ExpectBitIdenticalTables(*baseline, *reloaded);
}

TEST(BufferManagerTest, SpillWriteFailureFallsBackToRebuild) {
  GlobalConfigGuard guard;
  BufferManager& mgr = BufferManager::Instance();
  Failpoints::Instance().Activate("bufmgr/spill_write", "error(internal)");

  Table t1("tricky", TrickySchema(), TrickyRows());
  Table t2 = MakeWideTable("big", 7);
  const size_t bytes2 = t2.Columnar()->resident_bytes();
  t2.ReleaseCaches();

  auto baseline = ColumnarTable::Build(TrickySchema(), TrickyRows());

  mgr.Configure({.budget_bytes = bytes2, .spill_dir = ::testing::TempDir()});
  t1.Columnar();
  t2.Columnar();  // eviction's spill write fails → drop without a spill
  BufferManager::Stats st = mgr.stats();
  EXPECT_GE(st.evictions, 1u);
  EXPECT_EQ(st.spills_written, 0u);
  Failpoints::Instance().Deactivate("bufmgr/spill_write");

  // Rebuild path (no spill on disk) still reproduces the exact bytes.
  std::shared_ptr<const ColumnarTable> rebuilt = t1.Columnar();
  EXPECT_EQ(mgr.stats().spill_loads, 0u);
  ExpectBitIdenticalTables(*baseline, *rebuilt);
}

// ---------------------------------------------------------------------------
// Spill namespace: two shard processes sharing a spill dir. Table uids
// restart at 1 in every process, so without pid+nonce qualification shard
// B's spill for ITS table 1 would silently overwrite shard A's — and A
// would later reload B's bytes as its own table.

/// Restores the real pid/nonce on exit so later tests (and their sweeps)
/// see this process as the live owner of its own spill files.
struct SpillNamespaceGuard {
  ~SpillNamespaceGuard() {
    BufferManager::Instance().SetSpillNamespaceForTest(
        static_cast<uint64_t>(::getpid()), 0x5eed5eed5eed5eedULL);
  }
};

TEST(BufferManagerSpillNamespaceTest, SameUidInTwoProcessesMapsToTwoFiles) {
  SpillNamespaceGuard guard;
  BufferManager& mgr = BufferManager::Instance();

  mgr.SetSpillNamespaceForTest(/*pid=*/1111, /*nonce=*/0xaaaa);
  const std::string shard_a = mgr.SpillFileName(/*uid=*/1);
  mgr.SetSpillNamespaceForTest(/*pid=*/2222, /*nonce=*/0xbbbb);
  const std::string shard_b = mgr.SpillFileName(/*uid=*/1);

  EXPECT_NE(shard_a, shard_b);
  EXPECT_NE(shard_a.find("1111"), std::string::npos);
  EXPECT_NE(shard_b.find("2222"), std::string::npos);

  // Same pid recycled after a crash, fresh nonce: still distinct, so a
  // restarted shard cannot adopt its dead predecessor's half-written file.
  mgr.SetSpillNamespaceForTest(/*pid=*/1111, /*nonce=*/0xcccc);
  EXPECT_NE(mgr.SpillFileName(1), shard_a);
}

TEST(BufferManagerSpillNamespaceTest, SweepRemovesDeadOwnersKeepsLiveOnes) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "upa_sweep_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto touch = [&](const std::string& name) {
    std::FILE* f = std::fopen((dir + "/" + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  };

  // A genuinely dead pid: fork a child that exits immediately and reap it.
  pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) ::_exit(0);
  ASSERT_EQ(::waitpid(dead, nullptr, 0), dead);

  const std::string live =
      "upa-spill-" + std::to_string(::getpid()) + "-00ff-1.colspill";
  // pid 1 is alive but foreign (kill probe → EPERM): must be kept.
  const std::string foreign = "upa-spill-1-00ff-1.colspill";
  const std::string stale =
      "upa-spill-" + std::to_string(dead) + "-00ff-1.colspill";
  const std::string legacy = "upa-spill-1.colspill";  // pre-namespace format
  const std::string unrelated = "not-a-spill.txt";
  touch(live);
  touch(foreign);
  touch(stale);
  touch(legacy);
  touch(unrelated);

  EXPECT_EQ(BufferManager::SweepStaleSpills(dir), 2u);
  EXPECT_TRUE(fs::exists(dir + "/" + live));
  EXPECT_TRUE(fs::exists(dir + "/" + foreign));
  EXPECT_FALSE(fs::exists(dir + "/" + stale));
  EXPECT_FALSE(fs::exists(dir + "/" + legacy));
  EXPECT_TRUE(fs::exists(dir + "/" + unrelated));
  fs::remove_all(dir);
}

TEST(BufferManagerSpillNamespaceTest,
     TwoNamespacesSharingASpillDirNeverCollide) {
  GlobalConfigGuard config_guard;
  SpillNamespaceGuard ns_guard;
  BufferManager& mgr = BufferManager::Instance();
  const std::string dir = ::testing::TempDir() + "upa_shared_spill";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto baseline = ColumnarTable::Build(TrickySchema(), TrickyRows());

  // "Shard A": spill the tricky table by evicting it under a tight budget.
  mgr.SetSpillNamespaceForTest(static_cast<uint64_t>(::getpid()), 0xa);
  Table t1("tricky", TrickySchema(), TrickyRows());
  Table t2 = MakeWideTable("big", 7);
  const size_t bytes2 = t2.Columnar()->resident_bytes();
  t2.ReleaseCaches();
  mgr.Configure({.budget_bytes = bytes2, .spill_dir = dir});
  t1.Columnar();
  t2.Columnar();  // evicts t1 → spill under namespace A
  ASSERT_GE(mgr.stats().spills_written, 1u);

  // "Shard B" writes its own uid-colliding spill into the same dir; with
  // per-process namespacing the filenames differ, so A's file is intact.
  mgr.SetSpillNamespaceForTest(static_cast<uint64_t>(::getpid()), 0xb);
  std::FILE* f = std::fopen((dir + "/" + mgr.SpillFileName(1)).c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("shard B's unrelated payload", f);
  std::fclose(f);
  mgr.SetSpillNamespaceForTest(static_cast<uint64_t>(::getpid()), 0xa);

  // A's reload must see A's bytes, bit for bit.
  std::shared_ptr<const ColumnarTable> reloaded = t1.Columnar();
  EXPECT_GE(mgr.stats().spill_loads, 1u);
  ExpectBitIdenticalTables(*baseline, *reloaded);
  std::filesystem::remove_all(dir);
}

TEST(BufferManagerTest, ReleaseCachesDropsResidentBytes) {
  GlobalConfigGuard guard;
  BufferManager& mgr = BufferManager::Instance();
  mgr.Configure({.budget_bytes = 0, .spill_dir = ""});

  Table t = MakeWideTable("t", 2);
  EXPECT_EQ(t.CachedBytes(), 0u);
  const size_t before = mgr.stats().resident_bytes;
  const size_t bytes = t.Columnar()->resident_bytes();
  EXPECT_GE(t.CachedBytes(), bytes);
  EXPECT_EQ(mgr.stats().resident_bytes, before + bytes);
  t.ReleaseCaches();
  EXPECT_EQ(t.CachedBytes(), 0u);
  EXPECT_EQ(mgr.stats().resident_bytes, before);
}

// ---------------------------------------------------------------------------
// Zipf-skew differential: fragment sizes × thread counts, bit-identical.

struct ZipfData {
  Schema fact_schema{{{"f_key", ValueType::kInt},
                      {"f_val", ValueType::kDouble},
                      {"f_cat", ValueType::kString}}};
  Schema dim_schema{
      {{"d_key", ValueType::kInt}, {"d_weight", ValueType::kDouble}}};
  std::vector<Row> fact_rows;
  std::vector<Row> dim_rows;

  ZipfData() {
    // Key k appears ~2000/(k+1) times and rows are emitted in key order, so
    // early fragments carry enormous join fan-out and late ones almost
    // none — the skew morsel scheduling exists for, and wildly uneven
    // per-fragment selectivities for the zone maps.
    constexpr int64_t kKeys = 40;
    for (int64_t k = 0; k < kKeys; ++k) {
      const int64_t copies = std::max<int64_t>(1, 2000 / (k + 1));
      for (int64_t i = 0; i < copies; ++i) {
        fact_rows.push_back(
            {Value{k}, Value{0.25 * static_cast<double>((i * 7 + k) % 101)},
             Value{std::string(k % 5 == 0 ? "hot" : "cold")}});
      }
      dim_rows.push_back(
          {Value{k}, Value{1.0 / static_cast<double>(k + 1)}});
    }
  }
};

struct ZipfCase {
  std::string label;
  PlanPtr plan;
  bool private_shapes = false;
};

std::vector<ZipfCase> ZipfCases() {
  std::vector<ZipfCase> cases;
  cases.push_back(
      {"join-filter-sum",
       SumPlan(FilterPlan(JoinPlan(ScanPlan("fact"), ScanPlan("dim"), "f_key",
                                   "d_key"),
                          And(Lt(Col("f_val"), Lit(12.0)),
                              Gt(Col("d_weight"), Lit(0.05)))),
               Mul(Col("f_val"), Col("d_weight"))),
       true});
  cases.push_back({"string-filter-count",
                   CountPlan(FilterPlan(ScanPlan("fact"),
                                        Eq(Col("f_cat"), Lit("hot")))),
                   true});
  // Rows are key-ordered, so this prunes almost every fragment at size 7.
  cases.push_back({"skip-heavy-count",
                   CountPlan(FilterPlan(ScanPlan("fact"),
                                        Lt(Col("f_key"), Lit(int64_t{2})))),
                   false});
  cases.push_back(
      {"avg", AvgPlan(ScanPlan("fact"), Add(Col("f_val"), Col("f_key"))),
       false});
  return cases;
}

void ExpectSameResult(const ExecResult& want, const ExecResult& got) {
  EXPECT_EQ(Bits(want.output), Bits(got.output))
      << want.output << " vs " << got.output;
  EXPECT_EQ(want.result_rows, got.result_rows);
  ASSERT_EQ(want.partition_outputs.size(), got.partition_outputs.size());
  for (size_t p = 0; p < want.partition_outputs.size(); ++p) {
    EXPECT_EQ(Bits(want.partition_outputs[p]), Bits(got.partition_outputs[p]))
        << "partition " << p;
  }
  ASSERT_EQ(want.contributions.size(), got.contributions.size());
  for (const auto& [idx, value] : want.contributions) {
    auto it = got.contributions.find(idx);
    ASSERT_NE(it, got.contributions.end()) << "contribution " << idx;
    EXPECT_EQ(Bits(value), Bits(it->second)) << "contribution " << idx;
  }
}

TEST(ColumnarDifferentialFragmentTest, ZipfSkewBitIdenticalAcrossLayouts) {
  GlobalConfigGuard guard;
  ZipfData data;
  Rng rng = Rng::ForStream(13, "fragment/zipf");
  std::vector<size_t> excluded =
      rng.SampleWithoutReplacement(data.fact_rows.size(), 60);

  // Option shapes per case: plain, contributions+partitions, exclusions.
  auto shapes = [&](const ZipfCase& c) {
    std::vector<std::pair<std::string, ExecOptions>> out;
    out.push_back({"plain", ExecOptions{}});
    if (c.private_shapes) {
      ExecOptions contrib;
      contrib.private_table = "fact";
      contrib.track_contributions = true;
      contrib.partitions = 3;
      out.push_back({"contrib", contrib});
      ExecOptions sprime;
      sprime.private_table = "fact";
      sprime.exclude_rows = &excluded;
      sprime.partitions = 2;
      out.push_back({"sprime", sprime});
    }
    return out;
  };

  // Oracle: row engine, 1 thread, default fragmentation (irrelevant to it).
  std::vector<ZipfCase> cases = ZipfCases();
  std::map<std::string, ExecResult> oracle;
  {
    Table fact("fact", data.fact_schema, data.fact_rows);
    Table dim("dim", data.dim_schema, data.dim_rows);
    Catalog catalog{{"fact", &fact}, {"dim", &dim}};
    engine::ExecContext ctx(
        engine::ExecConfig{.threads = 1, .default_partitions = 1});
    PlanExecutor exec(&ctx, &catalog);
    for (const ZipfCase& c : cases) {
      for (auto& [shape, opts] : shapes(c)) {
        ExecOptions o = opts;
        o.engine = ExecEngine::kRowOracle;
        Result<ExecResult> r = exec.Execute(c.plan, o);
        ASSERT_TRUE(r.ok()) << c.label << ": " << r.status().ToString();
        oracle[c.label + "/" + shape] = std::move(r.value());
      }
    }
  }

  for (size_t frag : {size_t{7}, size_t{64} * 1024}) {
    SetDefaultFragmentRows(frag);
    // Fresh tables per fragment size: a Table memoizes its columnar form,
    // and the test's whole point is re-fragmenting the data.
    Table fact("fact", data.fact_schema, data.fact_rows);
    Table dim("dim", data.dim_schema, data.dim_rows);
    Catalog catalog{{"fact", &fact}, {"dim", &dim}};
    for (size_t threads : {size_t{1}, size_t{4}}) {
      engine::ExecContext ctx(engine::ExecConfig{
          .threads = threads, .default_partitions = threads});
      PlanExecutor exec(&ctx, &catalog);
      for (const ZipfCase& c : cases) {
        for (auto& [shape, opts] : shapes(c)) {
          SCOPED_TRACE(c.label + "/" + shape + " frag=" +
                       std::to_string(frag) +
                       " threads=" + std::to_string(threads));
          ExecOptions o = opts;
          o.engine = ExecEngine::kColumnar;
          Result<ExecResult> r = exec.Execute(c.plan, o);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          ExpectSameResult(oracle[c.label + "/" + shape], r.value());
        }
      }
    }
  }
}

TEST(ColumnarDifferentialFragmentTest, SkipCountersFire) {
  GlobalConfigGuard guard;
  SetDefaultFragmentRows(10);
  Table t("t", ThreeColSchema(), ThreeColRows());
  Catalog catalog{{"t", &t}};
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 2});
  PlanExecutor exec(&ctx, &catalog);

  ExecOptions opts;
  opts.engine = ExecEngine::kColumnar;
  PlanPtr plan =
      CountPlan(FilterPlan(ScanPlan("t"), Lt(Col("id"), Lit(int64_t{25}))));
  Result<ExecResult> r = exec.Execute(plan, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output, 25.0);

  engine::MetricsSnapshot snap = ctx.metrics().Snapshot();
  EXPECT_EQ(snap.counters["columnar/fragments_scanned"], 3u);
  EXPECT_EQ(snap.counters["columnar/fragments_skipped"], 7u);
  // This shape takes the fused single-pass kernel; its morsel phase
  // surfaces the duration spread + imbalance gauge under its own name.
  EXPECT_GE(snap.latency["morsel/columnar/fused"].count, 1u);
}

TEST(ColumnarDifferentialFragmentTest, SkipCountersFireInterpreted) {
  GlobalConfigGuard guard;
  SetDefaultFragmentRows(10);
  Table t("t", ThreeColSchema(), ThreeColRows());
  Catalog catalog{{"t", &t}};
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 2});
  PlanExecutor exec(&ctx, &catalog);

  ExecOptions opts;
  opts.engine = ExecEngine::kColumnar;
  // Forcing the interpreted path must preserve the zone-map skip counts
  // bit-for-bit (fused skips on the conjoined predicate, which for a
  // single conjunct is the same predicate the interpreted scan consults).
  PlanPtr plan = WithFuseMode(
      CountPlan(FilterPlan(ScanPlan("t"), Lt(Col("id"), Lit(int64_t{25})))),
      FuseMode::kInterpret);
  Result<ExecResult> r = exec.Execute(plan, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output, 25.0);

  engine::MetricsSnapshot snap = ctx.metrics().Snapshot();
  EXPECT_EQ(snap.counters["columnar/fragments_scanned"], 3u);
  EXPECT_EQ(snap.counters["columnar/fragments_skipped"], 7u);
  EXPECT_GE(snap.latency["morsel/columnar/filter"].count, 1u);
}

}  // namespace
}  // namespace upa::rel
