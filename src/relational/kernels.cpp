#include "relational/kernels.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/status.h"
#include "relational/value.h"

namespace upa::rel {

namespace {

// -- Sorted selection-vector algebra ---------------------------------------

/// Appends sel[0..n) ∖ sub to out (both strictly increasing).
void AppendDifference(const uint32_t* sel, size_t n, const SelVector& sub,
                      SelVector& out) {
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (j < sub.size() && sub[j] == sel[i]) {
      ++j;
    } else {
      out.push_back(sel[i]);
    }
  }
}

/// Appends merge(a, b) to out (disjoint, strictly increasing inputs).
void AppendMerge(const SelVector& a, const SelVector& b, SelVector& out) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    out.push_back(a[i] < b[j] ? a[i++] : b[j++]);
  }
  out.insert(out.end(), a.begin() + i, a.end());
  out.insert(out.end(), b.begin() + j, b.end());
}

// -- Compilation -----------------------------------------------------------

BinOp MirrorOp(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

/// Pre-resolves the string literal on e.rhs against the dictionary of the
/// column on e.lhs: [lit_lb, lit_ub) is the code range equal to the
/// literal (the dictionary is sorted and duplicate-free, so the range has
/// size 0 or 1 and code-vs-threshold comparisons implement every operator).
void ResolveStringLiteral(CompiledExpr& e,
                          const std::vector<const Column*>& columns) {
  const std::vector<std::string>& dict = *columns[e.lhs->col_pos]->dict;
  auto lb = std::lower_bound(dict.begin(), dict.end(), e.rhs->str_lit);
  auto ub = std::upper_bound(dict.begin(), dict.end(), e.rhs->str_lit);
  e.lit_lb = static_cast<uint32_t>(lb - dict.begin());
  e.lit_ub = static_cast<uint32_t>(ub - dict.begin());
}

int Sign(int v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }

}  // namespace

CompiledExpr CompileExpr(const ExprPtr& expr, const Schema& schema,
                         const std::vector<const Column*>& columns) {
  UPA_CHECK(expr != nullptr);
  CompiledExpr out;
  out.kind = expr->kind();
  switch (expr->kind()) {
    case Expr::Kind::kColumn: {
      out.col_pos = static_cast<uint32_t>(schema.IndexOf(expr->column_name()));
      out.col_type = columns[out.col_pos]->type;
      out.is_string = out.col_type == ValueType::kString;
      return out;
    }
    case Expr::Kind::kLiteral: {
      const Value& v = expr->literal();
      if (IsNumeric(v)) {
        out.num_lit = AsNumeric(v);
      } else {
        out.is_string = true;
        out.str_lit = std::get<std::string>(v);
      }
      return out;
    }
    case Expr::Kind::kBinary: {
      out.op = expr->op();
      out.lhs = std::make_unique<CompiledExpr>(
          CompileExpr(expr->lhs(), schema, columns));
      out.rhs = std::make_unique<CompiledExpr>(
          CompileExpr(expr->rhs(), schema, columns));
      if (IsComparison(out.op)) {
        bool ls = out.lhs->is_string, rs = out.rhs->is_string;
        if (ls && rs) {
          out.str_cmp = true;
          bool lc = out.lhs->kind == Expr::Kind::kColumn;
          bool rc = out.rhs->kind == Expr::Kind::kColumn;
          if (lc && rc) {
            out.str_form = CompiledExpr::StrForm::kColCol;
          } else if (lc) {
            out.str_form = CompiledExpr::StrForm::kColLit;
            ResolveStringLiteral(out, columns);
          } else if (rc) {
            // Normalize "lit op col" to "col MirrorOp(op) lit".
            std::swap(out.lhs, out.rhs);
            out.op = MirrorOp(out.op);
            out.str_form = CompiledExpr::StrForm::kColLit;
            ResolveStringLiteral(out, columns);
          } else {
            out.str_form = CompiledExpr::StrForm::kLitLit;
            out.lit_cmp = Sign(out.lhs->str_lit.compare(out.rhs->str_lit));
          }
        } else if (ls != rs) {
          // ValueEquals(string, numeric) is false (kEq/kNe), while ordered
          // comparison aborts — both decided per batch at eval time.
          out.mixed_cmp = true;
        }
      }
      return out;
    }
    case Expr::Kind::kNot: {
      out.lhs = std::make_unique<CompiledExpr>(
          CompileExpr(expr->lhs(), schema, columns));
      return out;
    }
    case Expr::Kind::kInSet: {
      out.lhs = std::make_unique<CompiledExpr>(
          CompileExpr(expr->lhs(), schema, columns));
      if (out.lhs->is_string && out.lhs->kind == Expr::Kind::kColumn) {
        const std::vector<std::string>& dict =
            *columns[out.lhs->col_pos]->dict;
        for (const Value& v : expr->set()) {
          if (IsNumeric(v)) continue;  // string != numeric, never matches
          const std::string& s = std::get<std::string>(v);
          auto it = std::lower_bound(dict.begin(), dict.end(), s);
          if (it != dict.end() && *it == s) {
            out.code_set.push_back(static_cast<uint32_t>(it - dict.begin()));
          }
        }
      } else if (out.lhs->is_string) {  // string literal lhs: constant
        for (const Value& v : expr->set()) {
          if (!IsNumeric(v) && std::get<std::string>(v) == out.lhs->str_lit) {
            out.lit_in_set = true;
            break;
          }
        }
      } else {
        for (const Value& v : expr->set()) {
          if (IsNumeric(v)) out.num_set.push_back(AsNumeric(v));
        }
      }
      return out;
    }
  }
  UPA_CHECK_MSG(false, "unknown expr kind");
  return out;
}

namespace {

// -- Evaluation ------------------------------------------------------------

// Comparison formulas are spelled exactly as Compare()'s three-way result
// implies (lt: x<y, le: !(x>y), ge: !(x<y), eq: !(x<y)&&!(x>y)), so NaN
// behaves identically to the row oracle: Compare(NaN, y) == 0, i.e. NaN
// compares "equal" to everything numeric.
#define UPA_NUM_CMP_LOOP(COND)                    \
  for (size_t i = 0; i < n; ++i) {                \
    double x = gx(i), y = gy(i);                  \
    (void)x;                                      \
    (void)y;                                      \
    if (COND) out.push_back(sel[i]);              \
  }

template <typename GetX, typename GetY>
void NumCmpFilter(BinOp op, const uint32_t* sel, size_t n, SelVector& out,
                  GetX gx, GetY gy) {
  switch (op) {
    case BinOp::kLt: UPA_NUM_CMP_LOOP(x < y) break;
    case BinOp::kLe: UPA_NUM_CMP_LOOP(!(x > y)) break;
    case BinOp::kGt: UPA_NUM_CMP_LOOP(x > y) break;
    case BinOp::kGe: UPA_NUM_CMP_LOOP(!(x < y)) break;
    case BinOp::kEq: UPA_NUM_CMP_LOOP(!(x < y) && !(x > y)) break;
    default: UPA_NUM_CMP_LOOP((x < y) || (x > y)) break;  // kNe
  }
}

#undef UPA_NUM_CMP_LOOP

/// Three-way result `c` (already computed) against zero, per operator —
/// the string comparison form.
bool CmpSignSatisfies(BinOp op, int c) {
  switch (op) {
    case BinOp::kLt: return c < 0;
    case BinOp::kLe: return c <= 0;
    case BinOp::kGt: return c > 0;
    case BinOp::kGe: return c >= 0;
    case BinOp::kEq: return c == 0;
    default: return c != 0;  // kNe
  }
}

void StringCmpFilter(const CompiledExpr& e, const BatchInput& in,
                     const uint32_t* sel, size_t n, SelVector& out) {
  switch (e.str_form) {
    case CompiledExpr::StrForm::kLitLit: {
      if (CmpSignSatisfies(e.op, e.lit_cmp)) out.insert(out.end(), sel, sel + n);
      return;
    }
    case CompiledExpr::StrForm::kColLit: {
      const BoundColumn& bc = in[e.lhs->col_pos];
      const uint32_t* codes = bc.column->codes.data();
      const uint32_t* ids = bc.row_ids;
      const uint32_t lb = e.lit_lb, ub = e.lit_ub;
      const bool found = lb < ub;
      switch (e.op) {
        case BinOp::kLt:
          for (size_t i = 0; i < n; ++i)
            if (codes[ids[sel[i]]] < lb) out.push_back(sel[i]);
          return;
        case BinOp::kLe:
          for (size_t i = 0; i < n; ++i)
            if (codes[ids[sel[i]]] < ub) out.push_back(sel[i]);
          return;
        case BinOp::kGt:
          for (size_t i = 0; i < n; ++i)
            if (codes[ids[sel[i]]] >= ub) out.push_back(sel[i]);
          return;
        case BinOp::kGe:
          for (size_t i = 0; i < n; ++i)
            if (codes[ids[sel[i]]] >= lb) out.push_back(sel[i]);
          return;
        case BinOp::kEq:
          if (!found) return;
          for (size_t i = 0; i < n; ++i)
            if (codes[ids[sel[i]]] == lb) out.push_back(sel[i]);
          return;
        default:  // kNe
          if (!found) {
            out.insert(out.end(), sel, sel + n);
            return;
          }
          for (size_t i = 0; i < n; ++i)
            if (codes[ids[sel[i]]] != lb) out.push_back(sel[i]);
          return;
      }
    }
    case CompiledExpr::StrForm::kColCol: {
      const BoundColumn& lc = in[e.lhs->col_pos];
      const BoundColumn& rc = in[e.rhs->col_pos];
      if (lc.column->dict == rc.column->dict) {
        // Shared dictionary: code order == string order.
        for (size_t i = 0; i < n; ++i) {
          uint32_t p = sel[i];
          uint32_t a = lc.column->codes[lc.row_ids[p]];
          uint32_t b = rc.column->codes[rc.row_ids[p]];
          int c = a < b ? -1 : (a > b ? 1 : 0);
          if (CmpSignSatisfies(e.op, c)) out.push_back(p);
        }
        return;
      }
      const std::vector<std::string>& ld = *lc.column->dict;
      const std::vector<std::string>& rd = *rc.column->dict;
      for (size_t i = 0; i < n; ++i) {
        uint32_t p = sel[i];
        int c = Sign(ld[lc.column->codes[lc.row_ids[p]]].compare(
            rd[rc.column->codes[rc.row_ids[p]]]));
        if (CmpSignSatisfies(e.op, c)) out.push_back(p);
      }
      return;
    }
  }
}

void CmpFilter(const CompiledExpr& e, const BatchInput& in,
               const uint32_t* sel, size_t n, SelVector& out) {
  if (e.mixed_cmp) {
    if (n == 0) return;
    if (e.op == BinOp::kEq) return;  // ValueEquals across types: false
    if (e.op == BinOp::kNe) {       // ... so != is uniformly true
      out.insert(out.end(), sel, sel + n);
      return;
    }
    UPA_CHECK_MSG(false, "cannot compare string with numeric");
  }
  if (e.str_cmp) {
    StringCmpFilter(e, in, sel, n, out);
    return;
  }

  const CompiledExpr& l = *e.lhs;
  const CompiledExpr& r = *e.rhs;
  // Fast paths for the dominant column-vs-literal shape (either side).
  auto col_lit = [&](const CompiledExpr& c, double lit, BinOp op) {
    const BoundColumn& bc = in[c.col_pos];
    const uint32_t* ids = bc.row_ids;
    if (c.col_type == ValueType::kInt) {
      const int64_t* vals = bc.column->ints.data();
      NumCmpFilter(
          op, sel, n, out,
          [&](size_t i) { return static_cast<double>(vals[ids[sel[i]]]); },
          [&](size_t) { return lit; });
    } else {
      const double* vals = bc.column->doubles.data();
      NumCmpFilter(
          op, sel, n, out, [&](size_t i) { return vals[ids[sel[i]]]; },
          [&](size_t) { return lit; });
    }
  };
  if (l.kind == Expr::Kind::kColumn && r.kind == Expr::Kind::kLiteral) {
    col_lit(l, r.num_lit, e.op);
    return;
  }
  if (l.kind == Expr::Kind::kLiteral && r.kind == Expr::Kind::kColumn) {
    col_lit(r, l.num_lit, MirrorOp(e.op));
    return;
  }
  // General case: materialize both sides, then compare.
  std::vector<double> lbuf(n), rbuf(n);
  ProjectKernel(l, in, sel, n, lbuf.data());
  ProjectKernel(r, in, sel, n, rbuf.data());
  NumCmpFilter(
      e.op, sel, n, out, [&](size_t i) { return lbuf[i]; },
      [&](size_t i) { return rbuf[i]; });
}

void InSetFilter(const CompiledExpr& e, const BatchInput& in,
                 const uint32_t* sel, size_t n, SelVector& out) {
  const CompiledExpr& l = *e.lhs;
  if (l.is_string && l.kind == Expr::Kind::kColumn) {
    if (e.code_set.empty()) return;
    const BoundColumn& bc = in[l.col_pos];
    const uint32_t* codes = bc.column->codes.data();
    for (size_t i = 0; i < n; ++i) {
      uint32_t code = codes[bc.row_ids[sel[i]]];
      for (uint32_t c : e.code_set) {
        if (c == code) {
          out.push_back(sel[i]);
          break;
        }
      }
    }
    return;
  }
  if (l.is_string) {  // string literal lhs: constant membership
    if (e.lit_in_set) out.insert(out.end(), sel, sel + n);
    return;
  }
  if (e.num_set.empty() || n == 0) {
    // The interpreter still evaluates lhs per row even when no set element
    // can match, so lhs-side aborts (division by zero, ...) must fire.
    if (n > 0) {
      std::vector<double> buf(n);
      ProjectKernel(l, in, sel, n, buf.data());
    }
    return;
  }
  std::vector<double> buf(n);
  ProjectKernel(l, in, sel, n, buf.data());
  for (size_t i = 0; i < n; ++i) {
    double v = buf[i];
    for (double s : e.num_set) {
      if (!(v < s) && !(v > s)) {  // Compare(v, s) == 0 (NaN matches all)
        out.push_back(sel[i]);
        break;
      }
    }
  }
}

}  // namespace

void FilterKernel(const CompiledExpr& e, const BatchInput& in,
                  const uint32_t* sel, size_t n, SelVector& out) {
  switch (e.kind) {
    case Expr::Kind::kLiteral: {
      if (n == 0) return;
      UPA_CHECK_MSG(!e.is_string, "predicate evaluated to a string");
      if (e.num_lit != 0.0) out.insert(out.end(), sel, sel + n);
      return;
    }
    case Expr::Kind::kColumn: {
      if (n == 0) return;
      UPA_CHECK_MSG(!e.is_string, "predicate evaluated to a string");
      const BoundColumn& bc = in[e.col_pos];
      const uint32_t* ids = bc.row_ids;
      if (e.col_type == ValueType::kInt) {
        const int64_t* vals = bc.column->ints.data();
        for (size_t i = 0; i < n; ++i)
          if (vals[ids[sel[i]]] != 0) out.push_back(sel[i]);
      } else {
        const double* vals = bc.column->doubles.data();
        for (size_t i = 0; i < n; ++i)
          if (vals[ids[sel[i]]] != 0.0) out.push_back(sel[i]);
      }
      return;
    }
    case Expr::Kind::kNot: {
      SelVector inner;
      FilterKernel(*e.lhs, in, sel, n, inner);
      AppendDifference(sel, n, inner, out);
      return;
    }
    case Expr::Kind::kInSet:
      InSetFilter(e, in, sel, n, out);
      return;
    case Expr::Kind::kBinary:
      break;
  }
  switch (e.op) {
    case BinOp::kAnd: {
      // Row-oracle short circuit: rhs only sees rows where lhs is true.
      SelVector tmp;
      FilterKernel(*e.lhs, in, sel, n, tmp);
      FilterKernel(*e.rhs, in, tmp.data(), tmp.size(), out);
      return;
    }
    case BinOp::kOr: {
      // rhs only sees rows where lhs is false.
      SelVector t1, rest, t2;
      FilterKernel(*e.lhs, in, sel, n, t1);
      AppendDifference(sel, n, t1, rest);
      FilterKernel(*e.rhs, in, rest.data(), rest.size(), t2);
      AppendMerge(t1, t2, out);
      return;
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      // Arithmetic result in a boolean context: truthy iff != 0.0 (NaN is
      // truthy, matching AsNumeric(v) != 0.0).
      std::vector<double> buf(n);
      ProjectKernel(e, in, sel, n, buf.data());
      for (size_t i = 0; i < n; ++i)
        if (buf[i] != 0.0) out.push_back(sel[i]);
      return;
    }
    default:
      CmpFilter(e, in, sel, n, out);
      return;
  }
}

void ProjectKernel(const CompiledExpr& e, const BatchInput& in,
                   const uint32_t* sel, size_t n, double* out) {
  switch (e.kind) {
    case Expr::Kind::kLiteral: {
      if (n == 0) return;
      UPA_CHECK_MSG(!e.is_string, "Value is not numeric");
      for (size_t i = 0; i < n; ++i) out[i] = e.num_lit;
      return;
    }
    case Expr::Kind::kColumn: {
      if (n == 0) return;
      UPA_CHECK_MSG(!e.is_string, "Value is not numeric");
      const BoundColumn& bc = in[e.col_pos];
      const uint32_t* ids = bc.row_ids;
      if (e.col_type == ValueType::kInt) {
        const int64_t* vals = bc.column->ints.data();
        for (size_t i = 0; i < n; ++i)
          out[i] = static_cast<double>(vals[ids[sel[i]]]);
      } else {
        const double* vals = bc.column->doubles.data();
        for (size_t i = 0; i < n; ++i) out[i] = vals[ids[sel[i]]];
      }
      return;
    }
    case Expr::Kind::kBinary: {
      switch (e.op) {
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv: {
          std::vector<double> rbuf(n);
          ProjectKernel(*e.lhs, in, sel, n, out);
          ProjectKernel(*e.rhs, in, sel, n, rbuf.data());
          switch (e.op) {
            case BinOp::kAdd:
              for (size_t i = 0; i < n; ++i) out[i] += rbuf[i];
              return;
            case BinOp::kSub:
              for (size_t i = 0; i < n; ++i) out[i] -= rbuf[i];
              return;
            case BinOp::kMul:
              for (size_t i = 0; i < n; ++i) out[i] *= rbuf[i];
              return;
            default:
              for (size_t i = 0; i < n; ++i) {
                UPA_CHECK_MSG(rbuf[i] != 0.0, "division by zero in expression");
                out[i] /= rbuf[i];
              }
              return;
          }
        }
        default:
          break;  // comparison / AND / OR: boolean, handled below
      }
      break;
    }
    case Expr::Kind::kNot:
    case Expr::Kind::kInSet:
      break;  // boolean, handled below
  }
  // Boolean expression in a numeric context: 1.0 where truthy, else 0.0
  // (the interpreter returns int64 0/1; AsNumeric makes that 0.0/1.0).
  SelVector hits;
  FilterKernel(e, in, sel, n, hits);
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (j < hits.size() && hits[j] == sel[i]) {
      out[i] = 1.0;
      ++j;
    } else {
      out[i] = 0.0;
    }
  }
}

}  // namespace upa::rel
