// SQL console over the private TPC-H dataset: type a SQL aggregate, get an
// iDP-protected answer. Glues the whole stack together — SQL parser →
// logical plan → the multi-tenant UpaService (admission, budget,
// sensitivity cache) → UPA's pipeline (sampling, union-preserving reduce,
// RANGE ENFORCER, Laplace noise).
//
// Usage:
//   sql_console                          # run the built-in demo queries
//   sql_console "SELECT COUNT(*) FROM lineitem" [private_table]
//
// The privacy unit defaults to the first table the query scans; each
// private table is its own dataset (own budget, enforcer registry and
// sensitivity cache). A `/stats` dump prints at the end.
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "queries/plan_query.h"
#include "relational/optimizer.h"
#include "relational/sql_exec.h"
#include "relational/sql_parser.h"
#include "service/service.h"

using namespace upa;

namespace {

std::string FormatCell(const rel::Value& v) {
  char buf[64];
  if (std::holds_alternative<int64_t>(v)) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::get<int64_t>(v)));
    return buf;
  }
  if (std::holds_alternative<double>(v)) {
    std::snprintf(buf, sizeof(buf), "%.4f", std::get<double>(v));
    return buf;
  }
  return std::get<std::string>(v);
}

/// Grouped / multi-item SELECTs run natively (fused kernels per group) and
/// print a result table. No DP release: per-group release needs DP
/// partition selection for the key sets (ROADMAP item 1b) — an honest
/// "native only" banner beats a bogus one-noise-fits-all release.
int RunWide(engine::ExecContext& ctx, const tpch::TpchDataset& data,
            const std::string& sql) {
  rel::Catalog catalog = data.catalog();
  rel::SqlExecOptions opts;
  Result<rel::SqlResultSet> result = rel::ExecuteSql(&ctx, catalog, sql, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const rel::SqlResultSet& rs = result.value();
  std::printf("sql>     %s\n", sql.c_str());
  std::printf("note:    grouped/multi-aggregate results are native-only; "
              "DP release of group keys needs partition selection "
              "(ROADMAP 1b)\n");
  std::string header;
  for (const std::string& col : rs.columns) {
    header += header.empty() ? col : " | " + col;
  }
  std::printf("         %s\n", header.c_str());
  for (const rel::Row& row : rs.rows) {
    std::string line;
    for (const rel::Value& v : row) {
      line += line.empty() ? FormatCell(v) : " | " + FormatCell(v);
    }
    std::printf("         %s\n", line.c_str());
  }
  std::printf("\n");
  return 0;
}

int RunOne(engine::ExecContext& ctx,
           std::shared_ptr<const rel::PlanExecutor> executor,
           const tpch::TpchDataset& data, service::UpaService& service,
           const std::string& sql, std::string private_table) {
  Result<rel::PlanPtr> parsed = rel::ParseSql(sql);
  if (!parsed.ok()) {
    // Not the scalar DP subset — but maybe the wider single-block
    // surface (GROUP BY / HAVING / ORDER BY / multiple items).
    if (rel::ParseSqlSelect(sql).ok()) {
      return RunWide(ctx, data, sql);
    }
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  rel::PlanStats stats = rel::AnalyzePlan(parsed.value());
  if (private_table.empty()) {
    // Default privacy unit: the last-joined scan (the fact-table position
    // in the left-deep trees the parser builds). Decided on the *parsed*
    // plan so the choice is independent of how the optimizer reshapes it.
    private_table = stats.tables.empty() ? "" : stats.tables.back();
  }

  // Cost-based optimization: predicate pushdown, join reorder, conjunct
  // ordering and build-side hints — bit-identical results, so the DP
  // release is unaffected.
  rel::OptimizerOptions opt;
  opt.private_table = private_table;
  rel::PlanPtr plan = rel::Optimize(parsed.value(), data.catalog(), opt);

  // Wrap the optimized plan as a UPA query over the chosen private table.
  tpch::TpchQuery query;
  query.name = "sql:" + sql.substr(0, 40);
  query.plan = plan;
  query.private_table = private_table;

  auto native = executor->Execute(query.plan);
  if (!native.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 native.status().ToString().c_str());
    return 1;
  }

  if (stats.agg != rel::AggKind::kCount && stats.agg != rel::AggKind::kSum) {
    std::printf("sql>     %s\n", sql.c_str());
    std::printf("plan:    %s\n", rel::PlanToString(query.plan).c_str());
    std::printf(
        "note:    AVG/MIN/MAX are not additive; UPA releases them via a "
        "COUNT+SUM rewrite (run those separately). Native-only result: "
        "%.4f\n\n",
        native.value().output);
    return 0;
  }

  service::QueryRequest request;
  request.tenant = "console";
  request.dataset_id = private_table;
  // The plan is already optimized above (we needed it for display and the
  // fingerprint), so MakePlanQuery must not optimize again.
  request.query = queries::MakePlanQuery(&ctx, std::move(executor), &data,
                                         query, nullptr, /*optimize=*/false);
  request.epsilon = service.config().upa.epsilon;
  request.seed = 2026;
  // Cache key: the optimized plan's shape, not the SQL text — two spellings
  // of one plan share their inferred sensitivity.
  request.fingerprint = Fnv1a(rel::PlanToString(query.plan));
  auto result = service.Execute(request);
  if (!result.ok()) {
    std::fprintf(stderr, "UPA error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const service::QueryResponse& response = result.value();

  std::printf("sql>     %s\n", sql.c_str());
  std::printf("plan:    %s\n", rel::PlanToString(query.plan).c_str());
  std::printf("private: one record of '%s' (budget left %.2f)\n",
              private_table.c_str(),
              service.accountant().Remaining(private_table));
  std::printf("true     = %.4f   (never leaves the system)\n",
              native.value().output);
  std::printf("released = %.4f   (eps=%.2f, inferred sensitivity %.4g%s%s)\n\n",
              response.released, response.epsilon,
              response.local_sensitivity,
              response.sensitivity_cache_hit ? ", cached sensitivity" : "",
              response.attack_suspected ? ", repeat-query defense engaged"
                                        : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 2000;
  tpch::TpchDataset data(cfg);
  engine::ExecContext ctx;
  rel::Catalog catalog = data.catalog();
  auto executor = std::make_shared<const rel::PlanExecutor>(&ctx, &catalog);

  service::ServiceConfig service_cfg;
  service_cfg.upa.epsilon = 0.5;
  service_cfg.budget_per_dataset = 4.0;
  service::UpaService service(&ctx, service_cfg);

  if (argc >= 2) {
    return RunOne(ctx, executor, data, service, argv[1],
                  argc >= 3 ? argv[2] : "");
  }

  const std::vector<std::string> demo = {
      "SELECT COUNT(*) FROM lineitem",
      "SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
      "WHERE l_shipdate >= 365 AND l_shipdate < 730",
      "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = o_custkey "
      "WHERE o_orderpriority <> '1-URGENT'",
      // A literal repeat: hits the sensitivity cache AND trips the
      // enforcer's repeat-query defense.
      "SELECT COUNT(*) FROM lineitem",
      // Grouped query: runs natively through the fused per-group kernels
      // and prints a table (no DP release yet — see the banner).
      "SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS qty "
      "FROM lineitem GROUP BY l_returnflag ORDER BY qty DESC",
  };
  for (const std::string& sql : demo) {
    int rc = RunOne(ctx, executor, data, service, sql, "");
    if (rc != 0) return rc;
  }
  std::printf("%s", service.StatsReport().c_str());
  return 0;
}
