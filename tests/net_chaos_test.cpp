// Chaos at the socket boundary: seeded fault schedules on the server's
// accept/read/write/decode failpoints while threaded wire clients hammer
// it, plus a crash-recovery death test that kills the whole server process
// mid-release and recovers from the journal.
//
// Invariants:
//   - budget conservation survives any schedule of transport faults: a
//     request that died before dispatch charges nothing; a request whose
//     RESPONSE was lost (write fault after release) keeps its charge —
//     spent must equal epsilon × registry entries, exactly;
//   - fault schedules are seeded and deterministic, so a failure replays;
//   - after a mid-release crash, the journal-recovered registry and ledger
//     are bit-identical to an in-process replay of the same query.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/hash.h"
#include "net/client.h"
#include "net/server.h"
#include "upa/simple_query.h"

namespace upa::net {
namespace {

namespace fs = std::filesystem;

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 4});
  return ctx;
}

core::QueryInstance CountQuery(size_t n, const std::string& name) {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  auto records = std::make_shared<std::vector<int>>(n, 0);
  std::iota(records->begin(), records->end(), 0);
  spec.records = records;
  spec.map_record = [](const int&) { return core::Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

QueryCompiler CountCompiler() {
  return [](const WireQuery& wire) -> Result<core::QueryInstance> {
    if (wire.sql.rfind("count:", 0) != 0) {
      return Status::InvalidArgument("unknown toy SQL: " + wire.sql);
    }
    return CountQuery(std::stoul(wire.sql.substr(6)), wire.sql);
  };
}

service::ServiceConfig FastConfig() {
  service::ServiceConfig config;
  config.upa.sample_n = 100;
  config.upa.add_noise = false;
  return config;
}

WireQuery MakeWireQuery(const std::string& tenant, const std::string& dataset,
                        const std::string& sql, uint64_t seed) {
  WireQuery query;
  query.tenant = tenant;
  query.dataset_id = dataset;
  query.epsilon = 0.05;
  query.seed = seed;
  query.fingerprint = Fnv1a(sql);
  query.sql = sql;
  return query;
}

void ExpectRegistryBitIdentical(
    const std::vector<std::vector<double>>& a,
    const std::vector<std::vector<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "prior " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(std::memcmp(&a[i][j], &b[i][j], sizeof(double)), 0)
          << "prior " << i << " partition " << j;
    }
  }
}

class NetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Instance().DeactivateAll();
    dir_ = (fs::path(::testing::TempDir()) /
            ("upa_net_chaos_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    Failpoints::Instance().DeactivateAll();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

// Seeded transport-fault schedule: read/write/accept/decode faults fire
// with seeded probabilities while clients (who reconnect on failure) push
// queries through. Whatever the sockets did, the ledger must balance.
TEST_F(NetChaosTest, SeededSocketFaultScheduleConservesBudget) {
  constexpr uint64_t kSeed = 20260807;
  constexpr size_t kClients = 3;
  constexpr size_t kQueries = 8;

  service::UpaService service(&Ctx(), FastConfig());
  Server server(&service, CountCompiler(), {});
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(Failpoints::Instance()
                  .Activate("net/read", "error(internal,chaos-read):prob(0.1," +
                                            std::to_string(kSeed) + ")")
                  .ok());
  ASSERT_TRUE(Failpoints::Instance()
                  .Activate("net/write",
                            "error(internal,chaos-write):prob(0.1," +
                                std::to_string(kSeed + 1) + ")")
                  .ok());
  ASSERT_TRUE(Failpoints::Instance()
                  .Activate("net/decode",
                            "error(invalid_argument,chaos-decode):prob(0.05," +
                                std::to_string(kSeed + 2) + ")")
                  .ok());
  ASSERT_TRUE(Failpoints::Instance()
                  .Activate("net/accept",
                            "error(internal,chaos-accept):prob(0.1," +
                                std::to_string(kSeed + 3) + ")")
                  .ok());

  std::vector<size_t> successes(kClients, 0);
  std::vector<std::thread> workers;
  for (size_t i = 0; i < kClients; ++i) {
    workers.emplace_back([&, i] {
      std::unique_ptr<Client> client;
      for (size_t q = 0; q < kQueries; ++q) {
        bool done = false;
        // Bounded retries: transport faults poison a connection, so a
        // failed attempt reconnects. The seeded schedule guarantees the
        // faults thin out per-hit, so progress is deterministic.
        for (int attempt = 0; attempt < 50 && !done; ++attempt) {
          if (client == nullptr) {
            auto connected = Client::Connect("127.0.0.1", server.port());
            if (!connected.ok()) continue;
            client = std::move(connected).value();
          }
          auto result = client->Query(MakeWireQuery(
              "tenant" + std::to_string(i), "ds" + std::to_string(i),
              "count:1500", 1000 * i + q));
          if (!result.ok()) {
            client.reset();  // transport fault: reconnect and retry
            continue;
          }
          // A server-side rejection (decode fault surfaced as an error
          // frame, queue pressure) also poisons nothing service-side.
          done = true;
          if (result.value().ok()) ++successes[i];
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  server.Stop();
  Failpoints::Instance().DeactivateAll();

  ASSERT_TRUE(service.accountant().VerifyConservation().ok());
  for (size_t i = 0; i < kClients; ++i) {
    std::string ds = "ds" + std::to_string(i);
    auto debug = service.DebugState(ds);
    // Budget == epsilon × what actually joined the registry. Responses
    // lost to write faults still charged (the release happened); requests
    // killed before dispatch refunded.
    EXPECT_NEAR(debug.budget.spent, 0.05 * debug.registry.size(), 1e-12)
        << ds;
    // Every response a client saw corresponds to a registry entry.
    EXPECT_GE(debug.registry.size(), successes[i]) << ds;
    EXPECT_GT(successes[i], 0u) << "client " << i << " never made progress";
  }
}

// A disconnect storm mid-request: clients vanish while their queries run.
// Every in-flight charge must come back (nothing was released), and the
// server must reap every connection.
TEST_F(NetChaosTest, DisconnectStormRefundsEverything) {
  service::UpaService service(&Ctx(), FastConfig());
  Server server(&service, CountCompiler(), {});
  ASSERT_TRUE(server.Start().ok());

  // Slow the pool a touch so disconnects land mid-run.
  ASSERT_TRUE(Failpoints::Instance()
                  .Activate("threadpool/task", "delay(1):prob(0.5,7)")
                  .ok());
  for (int round = 0; round < 6; ++round) {
    auto connected = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(connected.ok());
    auto client = std::move(connected).value();
    auto tag = client->Send(
        MakeWireQuery("storm", "ds", "count:2000", 100 + round));
    ASSERT_TRUE(tag.ok());
    // Drop the connection without reading the response.
    client.reset();
  }
  Failpoints::Instance().DeactivateAll();

  // Drain: wait until nothing is in flight, then audit.
  for (int i = 0; i < 5000; ++i) {
    if (server.stats().open_connections == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_TRUE(service.accountant().VerifyConservation().ok());
  auto debug = service.DebugState("ds");
  // Whatever released before its client vanished keeps its charge; every
  // cancelled-in-time run refunded. Either way the ledger matches the
  // registry exactly.
  EXPECT_NEAR(debug.budget.spent, 0.05 * debug.registry.size(), 1e-12);
  EXPECT_EQ(server.stats().open_connections, 0u);
}

// The crash test: the server process dies mid-release (abort after the
// release journal append, before the response frame is written). Recovery
// from the journal must reproduce the registry and ledger bit-identically
// to an in-process service that ran the same query undisturbed.
using NetCrashDeathTest = NetChaosTest;

TEST_F(NetCrashDeathTest, ServerKilledMidReleaseRecoversBitIdentically) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  std::string dir = dir_;
  EXPECT_DEATH(
      {
        service::ServiceConfig config = FastConfig();
        config.journal_dir = dir;
        service::UpaService service(&Ctx(), config);
        Server server(&service, CountCompiler(), {});
        Status started = server.Start();
        UPA_CHECK_MSG(started.ok(), started.ToString());
        // Journal appends: kOpen (1), kCharge (2), kRelease (3) — abort
        // the instant the release is durable, before the response frame
        // leaves the server.
        Failpoints::Instance().Activate(
            "journal/after_append",
            Failpoints::Spec{.action = Failpoints::Action::kAbort,
                             .trigger = Failpoints::Trigger::kEveryN,
                             .every_n = 3});
        auto connected = Client::Connect("127.0.0.1", server.port());
        UPA_CHECK(connected.ok());
        (void)connected.value()->Query(
            MakeWireQuery("a", "ds", "count:2000", 1));
      },
      "injected abort");

  // Recover the crashed server's state from its journal.
  service::ServiceConfig config = FastConfig();
  config.journal_dir = dir;
  service::UpaService recovered(&Ctx(), config);
  ASSERT_TRUE(recovered.recovery_status().ok())
      << recovered.recovery_status().ToString();
  ASSERT_TRUE(recovered.accountant().VerifyConservation().ok());

  // The same query, run undisturbed and fully in process.
  service::UpaService replay(&Ctx(), FastConfig());
  service::QueryRequest request;
  request.tenant = "a";
  request.dataset_id = "ds";
  request.query = CountQuery(2000, "count:2000");
  request.epsilon = 0.05;
  request.seed = 1;
  request.fingerprint = Fnv1a(std::string("count:2000"));
  ASSERT_TRUE(replay.Execute(request).ok());

  auto crashed = recovered.DebugState("ds");
  auto expected = replay.DebugState("ds");
  ASSERT_EQ(crashed.registry.size(), 1u);
  ExpectRegistryBitIdentical(crashed.registry, expected.registry);
  EXPECT_EQ(std::memcmp(&crashed.budget.spent, &expected.budget.spent,
                        sizeof(double)),
            0);
  EXPECT_DOUBLE_EQ(crashed.budget.charged_total, 0.05);
  EXPECT_DOUBLE_EQ(crashed.budget.refunded_total, 0.0);
}

// Regression: answering a framing error while the write path is ALSO
// failing used to free the Connection inside QueueWrite's inline flush and
// then set close_after_flush / re-flush through the dangling reference
// (use-after-free, caught under ASan). The error branches must tolerate
// the queued error frame's flush destroying the connection.
TEST_F(NetChaosTest, WriteFaultDuringErrorFrameDoesNotTouchFreedConnection) {
  service::UpaService service(&Ctx(), FastConfig());
  Server server(&service, CountCompiler(), {});
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(Failpoints::Instance()
                  .Activate("net/write", "error(internal,always-write)")
                  .ok());

  for (int i = 0; i < 8; ++i) {
    auto connected = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    auto client = std::move(connected).value();
    // Unsynchronisable garbage: the server queues a kError frame, and the
    // injected write fault closes the connection inside that very queue
    // call — the path that used to dangle.
    ASSERT_TRUE(client->SendBytes("these bytes are not a frame").ok());
    auto frame = client->ReadFrame(/*timeout_ms=*/2000);
    EXPECT_FALSE(frame.ok());  // closed without a frame ever making it out
  }

  Failpoints::Instance().DeactivateAll();
  EXPECT_GE(server.stats().protocol_errors, 8u);
  server.Stop();
}

}  // namespace
}  // namespace upa::net
