// Multi-tenant service quickstart: two analysts (tenants) query two
// hospitals' datasets through one UpaService. Shows the service-layer
// guarantees on top of the core pipeline:
//   - per-dataset privacy budget with charge/refund accounting,
//   - sensitivity caching across repeat query shapes (and its
//     invalidation when the data changes, via BumpEpoch),
//   - the shared RANGE ENFORCER registry flagging a repeat-query attack
//     no matter which tenant submits the repeat,
//   - deadlines and client cancellation (both refund the budget charge),
//   - durable journaling: a restarted service recovers registry + ledger,
//   - the /stats report.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "service/service.h"
#include "upa/simple_query.h"

using namespace upa;

namespace {

core::QueryInstance PatientCount(engine::ExecContext* ctx, size_t n,
                                 const std::string& name) {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = ctx;
  auto records = std::make_shared<std::vector<int>>(n, 0);
  std::iota(records->begin(), records->end(), 0);
  spec.records = records;
  spec.map_record = [](const int&) { return core::Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

/// Like PatientCount but sleeping per mapped record — slow enough for a
/// deadline or a client cancel to land mid-run.
core::QueryInstance SlowAudit(engine::ExecContext* ctx, size_t n,
                              const std::string& name) {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = ctx;
  spec.records = std::make_shared<std::vector<int>>(n, 0);
  spec.map_record = [](const int&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return core::Vec{1.0};
  };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

void Show(const char* who, const Result<service::QueryResponse>& result) {
  if (!result.ok()) {
    std::printf("%-8s -> DENIED: %s\n", who, result.status().ToString().c_str());
    return;
  }
  const service::QueryResponse& r = result.value();
  std::printf("%-8s -> released %.2f (eps=%.2f%s%s)\n", who, r.released,
              r.epsilon, r.sensitivity_cache_hit ? ", cached sensitivity" : "",
              r.attack_suspected ? ", repeat-query defense engaged" : "");
}

}  // namespace

int main() {
  engine::ExecContext ctx(engine::ExecConfig{.threads = 2});
  service::ServiceConfig config;
  config.upa.sample_n = 500;
  config.budget_per_dataset = 0.5;  // five 0.1 queries per hospital
  service::UpaService service(&ctx, config);

  auto ask = [&](const char* tenant, const char* dataset, uint64_t seed) {
    service::QueryRequest request;
    request.tenant = tenant;
    request.dataset_id = dataset;
    request.query = PatientCount(&ctx, 12000, "patient-count");
    request.epsilon = 0.1;
    request.seed = seed;
    return service.Execute(request);
  };

  std::printf("== two tenants, two datasets ==\n");
  Show("alice", ask("alice", "hospital-a", 1));
  Show("bob", ask("bob", "hospital-b", 2));

  std::printf("\n== repeat query shape: cached sensitivity, and the shared\n"
              "   registry flags the repeat even from the other tenant ==\n");
  Show("bob", ask("bob", "hospital-a", 3));

  std::printf("\n== the data changed: epoch bump invalidates the cache ==\n");
  service.BumpEpoch("hospital-a");
  Show("alice", ask("alice", "hospital-a", 4));

  std::printf("\n== budget runs out (0.5 per dataset) ==\n");
  Show("alice", ask("alice", "hospital-a", 5));
  Show("alice", ask("alice", "hospital-a", 6));  // fifth 0.1 query: last one
  Show("alice", ask("alice", "hospital-a", 7));  // sixth: denied
  std::printf("hospital-a spent=%.2f remaining=%.2f\n",
              service.accountant().Spent("hospital-a"),
              service.accountant().Remaining("hospital-a"));

  std::printf("\n== deadline: a slow audit gets 50ms, trips mid-run,\n"
              "   and its charge is refunded ==\n");
  {
    service::QueryRequest request;
    request.tenant = "carol";
    request.dataset_id = "hospital-b";
    request.query = SlowAudit(&ctx, 8000, "slow-audit");
    request.epsilon = 0.1;
    request.seed = 8;
    request.deadline_ms = 50;
    double before = service.accountant().Spent("hospital-b");
    Show("carol", service.Execute(request));
    std::printf("hospital-b spent before=%.2f after=%.2f (refunded)\n", before,
                service.accountant().Spent("hospital-b"));
  }

  std::printf("\n== cancellation: carol closes the tab mid-query ==\n");
  {
    service::QueryRequest request;
    request.tenant = "carol";
    request.dataset_id = "hospital-b";
    request.query = SlowAudit(&ctx, 8000, "slow-audit");
    request.epsilon = 0.1;
    request.seed = 9;
    request.cancel = std::make_shared<CancelToken>();
    auto pending = service.Submit(request);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    request.cancel->Cancel(StatusCode::kCancelled, "client went away");
    Show("carol", pending.get());
    std::printf("hospital-b spent=%.2f (still nothing charged)\n",
                service.accountant().Spent("hospital-b"));
  }

  std::printf("\n%s", service.StatsReport().c_str());

  std::printf("\n== durability: a journaled service survives a restart ==\n");
  namespace fs = std::filesystem;
  const std::string journal_dir =
      (fs::temp_directory_path() / "upa_service_demo_journal").string();
  fs::remove_all(journal_dir);
  service::ServiceConfig durable_config = config;
  durable_config.journal_dir = journal_dir;
  {
    service::UpaService first(&ctx, durable_config);
    service::QueryRequest request;
    request.tenant = "alice";
    request.dataset_id = "clinic-c";
    request.query = PatientCount(&ctx, 12000, "patient-count");
    request.epsilon = 0.1;
    request.seed = 10;
    Show("alice", first.Execute(request));
    auto durable = first.DebugState("clinic-c");
    std::printf("pre-crash:  epoch=%llu charged=%.2f refunded=%.2f "
                "registry=%zu priors\n",
                static_cast<unsigned long long>(durable.epoch),
                durable.budget.charged_total, durable.budget.refunded_total,
                durable.registry.size());
  }  // service destroyed — simulated crash/restart boundary
  {
    service::UpaService second(&ctx, durable_config);
    auto durable = second.DebugState("clinic-c");
    std::printf("recovered:  epoch=%llu charged=%.2f refunded=%.2f "
                "registry=%zu priors (recovery: %s)\n",
                static_cast<unsigned long long>(durable.epoch),
                durable.budget.charged_total, durable.budget.refunded_total,
                durable.registry.size(),
                second.recovery_status().ToString().c_str());
    // The recovered registry still powers the repeat-query defense.
    service::QueryRequest request;
    request.tenant = "bob";
    request.dataset_id = "clinic-c";
    request.query = PatientCount(&ctx, 12000, "patient-count");
    request.epsilon = 0.1;
    request.seed = 11;
    Show("bob", second.Execute(request));
    std::printf("\n%s", second.StatsReport().c_str());
  }
  fs::remove_all(journal_dir);
  return 0;
}
