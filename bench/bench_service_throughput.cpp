// Service-layer throughput: concurrent clients against one UpaService.
//
// Clients submit blocking Execute() calls from their own threads, each
// owning a private dataset (the bit-identity regime: one writer per
// dataset). Scaling is limited by the engine pool and by the per-dataset
// sensitivity cache — after each client's first query the exclusion scans
// are skipped, so steady-state throughput measures the cached release
// path (sample + map + enforce + noise) plus service overhead.
//
// Columns: wall-clock for all queries, queries/sec, mean and p99 of the
// service/total latency histogram, and the cache hit count (should be
// queries − clients).
//
// Knobs: UPA_SAMPLE_N, UPA_RUNS (queries per client), UPA_THREADS (engine
// pool size, default 4), UPA_SEED.
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "service/service.h"
#include "upa/simple_query.h"

using namespace upa;

namespace {

core::QueryInstance MakeSumQuery(engine::ExecContext* ctx,
                                 std::shared_ptr<std::vector<double>> values,
                                 const std::string& name) {
  core::SimpleQuerySpec<double> spec;
  spec.name = name;
  spec.ctx = ctx;
  spec.records = values;
  spec.map_record = [](const double& v) { return core::Vec{v}; };
  spec.sample_domain = [](Rng& rng) { return rng.UniformDouble(0.0, 1.0); };
  return core::MakeSimpleQuery(std::move(spec));
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  const size_t threads = env.threads == 0 ? 4 : env.threads;
  bench::PrintBanner("Service throughput — concurrent clients", env);
  std::printf("engine pool threads: %zu\n\n", threads);

  const size_t queries_per_client = env.runs;
  const size_t dataset_records = 10 * env.sample_n;

  TablePrinter table({"clients", "queries", "wall (ms)", "q/s", "mean (ms)",
                      "p99 (ms)", "cache hits"});
  for (size_t clients : {1u, 2u, 4u, 8u}) {
    engine::ExecContext ctx(
        engine::ExecConfig{.threads = threads, .default_partitions = 4});
    service::ServiceConfig config;
    config.upa = env.MakeUpaConfig();
    config.budget_per_dataset = 1e9;  // throughput, not budget, under test
    config.max_in_flight = threads;
    service::UpaService svc(&ctx, config);

    std::vector<std::shared_ptr<std::vector<double>>> datasets;
    for (size_t i = 0; i < clients; ++i) {
      auto values = std::make_shared<std::vector<double>>();
      Rng rng(env.seed + i);
      for (size_t r = 0; r < dataset_records; ++r) {
        values->push_back(rng.UniformDouble(0.0, 1.0));
      }
      datasets.push_back(std::move(values));
    }

    Stopwatch wall;
    std::vector<std::thread> workers;
    for (size_t i = 0; i < clients; ++i) {
      workers.emplace_back([&, i] {
        for (size_t q = 0; q < queries_per_client; ++q) {
          service::QueryRequest request;
          request.tenant = "t" + std::to_string(i % 3);
          request.dataset_id = "d" + std::to_string(i);
          request.query = MakeSumQuery(&ctx, datasets[i],
                                       "sum-" + std::to_string(i));
          request.epsilon = 0.1;
          request.seed = env.seed + i * 1000 + q;
          auto result = svc.Execute(request);
          UPA_CHECK_MSG(result.ok(), result.status().ToString());
        }
      });
    }
    for (auto& worker : workers) worker.join();
    double wall_seconds = wall.ElapsedSeconds();

    engine::MetricsSnapshot snapshot = ctx.metrics().Snapshot();
    const engine::HistogramSnapshot& total = snapshot.latency["service/total"];
    size_t queries = clients * queries_per_client;
    table.AddRow({std::to_string(clients), std::to_string(queries),
                  TablePrinter::FormatDouble(wall_seconds * 1e3, 2),
                  TablePrinter::FormatDouble(queries / wall_seconds, 1),
                  TablePrinter::FormatDouble(total.MeanSeconds() * 1e3, 3),
                  TablePrinter::FormatDouble(
                      total.QuantileSeconds(0.99) * 1e3, 3),
                  std::to_string(snapshot.counters["service/sens_cache_hit"])});
  }
  table.Print("service throughput vs concurrent clients");
  return 0;
}
