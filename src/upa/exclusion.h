// Exclusion aggregation: R(S \ s_i) for every i.
//
// Algorithm 1 (lines 10–11) computes, for each sampled record s_i, the
// reduction of the sample set with s_i excluded. The paper's loop does this
// naively — O(n²) combines. Because the reducer is associative and
// commutative, the same n values can be obtained from prefix and suffix
// scans in O(n) combines:
//
//   excl[i] = prefix[i-1] ⊕ suffix[i+1]
//
// kParallelScan is the chunked form of the same scan: each fixed-size block
// computes its local prefix/suffix arrays independently (parallel on the
// engine thread pool), a cheap sequential pass folds the block totals into
// per-block before/after values, and a second parallel pass emits
//
//   excl[i] = (before[c] ⊕ local_prefix) ⊕ (local_suffix ⊕ after[c]).
//
// Block boundaries depend only on n — never on the pool size — and every
// fold has a fixed association order, so the result is bit-identical
// whether it runs on 1 thread, N threads, or with no pool at all.
//
// All strategies are implemented; they must agree to float tolerance
// (tested), and bench_ablation / bench_phase_parallel measure the gap the
// scan and the parallelism buy.
#pragma once

#include <vector>

#include "upa/types.h"

namespace upa {
class ThreadPool;
}  // namespace upa

namespace upa::core {

enum class ExclusionStrategy {
  kNaive,         // the paper's loop: recombine n-1 values for each i
  kScan,          // prefix/suffix scans: O(n) combines total
  kParallelScan,  // chunked block-scan over the engine pool (deterministic)
};

/// excl[i] = R over {mapped[j] : j != i}. mapped must be non-empty.
/// `pool` is used by kParallelScan only; when null the same chunked
/// algorithm runs on the calling thread with an identical result. An
/// unknown strategy value aborts (UPA_CHECK) — a misconfigured enum must
/// never yield an empty exclusion set the runner would index out of range.
std::vector<Vec> ExclusionAggregate(const std::vector<Vec>& mapped,
                                    ExclusionStrategy strategy,
                                    ThreadPool* pool = nullptr);

/// Total reduction R(mapped) (shared by both strategies).
Vec TotalAggregate(const std::vector<Vec>& mapped);

}  // namespace upa::core
