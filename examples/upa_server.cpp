// Network front door over the private TPC-H dataset: a TCP server that
// accepts SQL aggregates on the UPA wire protocol and answers with
// iDP-protected releases. The full stack: epoll event loop → wire decode →
// SQL parser → logical plan → UpaService (admission, budget, sensitivity
// cache) → UPA pipeline → response frame.
//
// Usage:
//   upa_server              # demo: serve on an ephemeral port and run the
//                           # built-in queries against it over loopback
//   upa_server <port>       # serve until stdin closes (Ctrl-D) or EOF
//
// Query it with examples/upa_client:
//   upa_client <port> "SELECT COUNT(*) FROM lineitem" lineitem
//   upa_client <port> --stats
#include <cstdio>
#include <string>
#include <vector>

#include "common/hash.h"
#include "net/client.h"
#include "net/server.h"
#include "queries/plan_query.h"
#include "relational/optimizer.h"
#include "relational/sql_parser.h"
#include "service/service.h"

using namespace upa;

namespace {

/// WireQuery → QueryInstance: parse the SQL, push filters down, and wrap
/// the plan as a UPA query whose privacy unit is the request's dataset_id
/// (one record of that table).
net::QueryCompiler MakeSqlCompiler(
    engine::ExecContext* ctx,
    std::shared_ptr<const rel::PlanExecutor> executor,
    const tpch::TpchDataset* data) {
  return [ctx, executor, data](
             const net::WireQuery& wire) -> Result<core::QueryInstance> {
    if (wire.dataset_id.empty()) {
      return Status::InvalidArgument(
          "dataset_id must name the private table");
    }
    Result<rel::PlanPtr> parsed = rel::ParseSql(wire.sql);
    if (!parsed.ok()) {
      // Distinguish "malformed SQL" from "valid single-block SELECT that is
      // wider than the DP surface" (GROUP BY, HAVING, multiple items, ...).
      // The wire releases one noisy scalar per query; per-group release
      // needs DP partition selection for the key sets (ROADMAP 1b).
      if (rel::ParseSqlSelect(wire.sql).ok()) {
        return Status::Unsupported(
            "grouped/multi-item SELECT is not releasable over the wire; the "
            "DP surface takes a single bare COUNT or SUM aggregate (run "
            "grouped queries locally via sql_console)");
      }
      return parsed.status();
    }
    // Cost-based optimization (pushdown + reorder + hints): bit-identical
    // results, so sensitivities and the DP release are unaffected.
    rel::OptimizerOptions opt;
    opt.private_table = wire.dataset_id;
    rel::PlanPtr plan =
        rel::Optimize(parsed.value(), data->catalog(), opt);
    rel::PlanStats stats = rel::AnalyzePlan(plan);
    if (stats.agg != rel::AggKind::kCount &&
        stats.agg != rel::AggKind::kSum) {
      return Status::Unsupported(
          "only COUNT/SUM aggregates release over the wire (AVG/MIN/MAX "
          "need the COUNT+SUM rewrite)");
    }
    bool scans_private = false;
    for (const std::string& table : stats.tables) {
      if (table == wire.dataset_id) scans_private = true;
    }
    if (!scans_private) {
      return Status::InvalidArgument("query does not scan private table '" +
                                     wire.dataset_id + "'");
    }
    tpch::TpchQuery query;
    query.name = "sql:" + wire.sql.substr(0, 40);
    query.plan = plan;
    query.private_table = wire.dataset_id;
    // Already optimized above; don't optimize again inside MakePlanQuery.
    return queries::MakePlanQuery(ctx, executor, data, query, nullptr,
                                  /*optimize=*/false);
  };
}

int RunDemo(net::Server& server) {
  auto connected = net::Client::Connect("127.0.0.1", server.port());
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::Client> client = std::move(connected).value();

  struct Demo {
    const char* sql;
    const char* dataset;
  };
  const std::vector<Demo> demos = {
      {"SELECT COUNT(*) FROM lineitem", "lineitem"},
      {"SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
       "WHERE l_shipdate >= 365 AND l_shipdate < 730",
       "lineitem"},
      // A literal repeat: served from the sensitivity cache.
      {"SELECT COUNT(*) FROM lineitem", "lineitem"},
      // A grouped query: valid single-block SQL, but wider than the wire's
      // DP surface — the server answers with a clean Unsupported status.
      {"SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag",
       "lineitem"},
  };
  for (const Demo& demo : demos) {
    net::WireQuery query;
    query.tenant = "demo";
    query.dataset_id = demo.dataset;
    query.epsilon = 0.5;
    query.seed = 2026;
    query.sql = demo.sql;
    auto result = client->Query(query);
    if (!result.ok()) {
      std::fprintf(stderr, "transport error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const net::WireResult& wire = result.value();
    std::printf("sql>     %s\n", demo.sql);
    if (!wire.ok()) {
      std::printf("error:   %s\n\n", wire.status().ToString().c_str());
      continue;
    }
    std::printf("released = %.4f   (eps=%.2f, sensitivity %.4g%s)\n\n",
                wire.response.released, wire.response.epsilon,
                wire.response.local_sensitivity,
                wire.response.sensitivity_cache_hit
                    ? ", cached sensitivity"
                    : "");
  }
  auto stats = client->Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", stats.value().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 2000;
  tpch::TpchDataset data(cfg);
  engine::ExecContext ctx;
  rel::Catalog catalog = data.catalog();
  auto executor = std::make_shared<const rel::PlanExecutor>(&ctx, &catalog);

  service::ServiceConfig service_cfg;
  service_cfg.upa.epsilon = 0.5;
  service_cfg.budget_per_dataset = 16.0;
  service::UpaService service(&ctx, service_cfg);

  net::ServerConfig net_cfg;
  if (argc >= 2) net_cfg.port = static_cast<uint16_t>(std::atoi(argv[1]));
  net::Server server(&service, MakeSqlCompiler(&ctx, executor, &data),
                     net_cfg);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }

  if (argc < 2) {
    int rc = RunDemo(server);
    server.Stop();
    return rc;
  }

  std::printf("upa_server listening on 127.0.0.1:%u (Ctrl-D to stop)\n",
              server.port());
  std::fflush(stdout);
  // Serve until stdin closes — works interactively and under a harness.
  char buf[256];
  while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
  }
  server.Stop();
  std::printf("%s", service.StatsReport().c_str());
  return 0;
}
