// Sequential vs parallel phases 3b/4 (exclusion scan + neighbour-output
// evaluation + influence + partition partials) across Vec dimensionality
// and sample size.
//
// Phases 1/2 are identical in both modes (execute_phases always runs on
// the engine), so the table isolates exactly the work the parallel phase
// pipeline moves onto the pool: `seq` and `par` are the per-run minimum of
// seconds.reduce + seconds.enforce with UpaConfig::parallel_phases off/on.
// The `identical` column verifies the determinism contract — the two modes
// must produce bit-identical neighbour_outputs, local_sensitivity and
// raw_output (fixed chunk boundaries, fixed combine orders).
//
// Knobs: UPA_SAMPLE_N, UPA_RUNS, UPA_THREADS (pool size for the parallel
// mode; defaults to 4 so the table is comparable across machines),
// UPA_SEED.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "upa/runner.h"
#include "upa/simple_query.h"

using namespace upa;

namespace {

/// A d-dimensional vector query in the shape of the ML workloads: each
/// record spreads its value across d coordinates; the released scalar is
/// the L2 norm of the reduced vector.
core::QueryInstance MakeVecQuery(engine::ExecContext* ctx,
                                 std::shared_ptr<std::vector<double>> values,
                                 size_t dim, const std::string& name) {
  core::SimpleQuerySpec<double> spec;
  spec.name = name;
  spec.ctx = ctx;
  spec.records = values;
  spec.map_record = [dim](const double& v) {
    core::Vec m(dim);
    for (size_t j = 0; j < dim; ++j) m[j] = v * (1.0 + 0.01 * j);
    return m;
  };
  spec.sample_domain = [](Rng& rng) { return rng.UniformDouble(0.0, 1.0); };
  spec.scalarize = [](const core::Vec& v) { return core::L2Norm(v); };
  return core::MakeSimpleQuery(std::move(spec));
}

struct PhaseTiming {
  double seconds_3b4 = 0.0;
  core::UpaRunResult result;
};

PhaseTiming RunOnce(engine::ExecContext* ctx,
                    std::shared_ptr<std::vector<double>> values, size_t dim,
                    size_t sample_n, bool parallel, size_t runs,
                    uint64_t seed) {
  core::UpaConfig cfg;
  cfg.sample_n = sample_n;
  cfg.add_noise = false;
  cfg.enable_enforcer = false;  // isolate 3b/4 compute, not registry state
  cfg.parallel_phases = parallel;
  PhaseTiming best;
  best.seconds_3b4 = 1e100;
  for (size_t r = 0; r < runs; ++r) {
    core::UpaRunner runner(cfg);
    // NB: same query name in both modes — the sampler/domain RNG streams
    // are keyed by it, and the bit-identity check needs identical inputs.
    auto result = runner.Run(
        MakeVecQuery(ctx, values, dim, "vec_d" + std::to_string(dim)), seed);
    UPA_CHECK(result.ok());
    double t = result.value().seconds.reduce + result.value().seconds.enforce;
    if (t < best.seconds_3b4) best.seconds_3b4 = t;
    best.result = std::move(result).value();
  }
  return best;
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  const size_t threads = env.threads == 0 ? 4 : env.threads;
  bench::PrintBanner("Phase 3b/4 parallelism — sequential vs engine pool",
                     env);
  std::printf("pool threads (parallel mode): %zu, hardware threads: %u\n\n",
              threads, std::thread::hardware_concurrency());

  engine::ExecContext ctx(
      engine::ExecConfig{.threads = threads, .default_partitions = 4});

  TablePrinter table({"dim", "n", "seq 3b/4 (ms)", "par 3b/4 (ms)", "speedup",
                      "identical", "par tasks"});
  for (size_t dim : {1u, 8u, 64u}) {
    for (size_t n : {env.sample_n / 5, env.sample_n}) {
      if (n == 0) continue;
      auto values = std::make_shared<std::vector<double>>();
      Rng rng(env.seed + dim);
      for (size_t i = 0; i < 5 * n; ++i) {
        values->push_back(rng.UniformDouble(0.0, 1.0));
      }
      PhaseTiming seq = RunOnce(&ctx, values, dim, n, /*parallel=*/false,
                                env.runs, env.seed);
      PhaseTiming par = RunOnce(&ctx, values, dim, n, /*parallel=*/true,
                                env.runs, env.seed);

      bool identical =
          seq.result.raw_output == par.result.raw_output &&
          seq.result.local_sensitivity == par.result.local_sensitivity &&
          seq.result.neighbour_outputs == par.result.neighbour_outputs &&
          seq.result.partition_outputs == par.result.partition_outputs;
      uint64_t par_tasks = 0;
      for (const auto& [name, tasks] : par.result.metrics.phase_tasks) {
        par_tasks += tasks;
      }
      table.AddRow(
          {std::to_string(dim), std::to_string(n),
           TablePrinter::FormatDouble(seq.seconds_3b4 * 1e3, 3),
           TablePrinter::FormatDouble(par.seconds_3b4 * 1e3, 3),
           TablePrinter::FormatDouble(
               seq.seconds_3b4 / std::max(1e-9, par.seconds_3b4), 2),
           identical ? "yes" : "NO", std::to_string(par_tasks)});
      UPA_CHECK_MSG(identical,
                    "parallel phases diverged from the sequential path");
    }
  }
  table.Print("Phase 3b/4: sequential vs parallel (min over runs)");
  std::printf(
      "\nNote: speedup tracks physical cores; on a single-core container the\n"
      "parallel path measures scheduling overhead only (record the table\n"
      "from a multi-core box for the scaling claim).\n");
  return 0;
}
