#include "upa/group.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "upa/runner.h"
#include "upa/simple_query.h"

namespace upa::core {
namespace {

TEST(GroupSensitivityTest, K1EqualsMaxInfluence) {
  std::vector<double> neighbours{9.0, 10.5, 10.0, 7.0};  // f_x = 10
  auto est = EstimateGroupSensitivity(neighbours, 10.0, 1);
  EXPECT_DOUBLE_EQ(est.sensitivity, 3.0);  // |7 - 10|
  EXPECT_EQ(est.group_size, 1u);
  ASSERT_EQ(est.top_influences.size(), 1u);
  EXPECT_DOUBLE_EQ(est.top_influences[0], 3.0);
}

TEST(GroupSensitivityTest, KSumsTopInfluences) {
  std::vector<double> neighbours{9.0, 10.5, 10.0, 7.0};
  auto est = EstimateGroupSensitivity(neighbours, 10.0, 2);
  EXPECT_DOUBLE_EQ(est.sensitivity, 3.0 + 1.0);
  auto est3 = EstimateGroupSensitivity(neighbours, 10.0, 3);
  EXPECT_DOUBLE_EQ(est3.sensitivity, 3.0 + 1.0 + 0.5);
}

TEST(GroupSensitivityTest, KLargerThanSampleSaturates) {
  std::vector<double> neighbours{9.0, 11.0};
  auto est = EstimateGroupSensitivity(neighbours, 10.0, 10);
  EXPECT_DOUBLE_EQ(est.sensitivity, 2.0);
  EXPECT_EQ(est.top_influences.size(), 2u);
}

TEST(GroupSensitivityTest, RangeIsCenteredOnFx) {
  std::vector<double> neighbours{8.0, 12.0};
  auto est = EstimateGroupSensitivity(neighbours, 10.0, 1);
  EXPECT_DOUBLE_EQ(est.out_range.lo, 8.0);
  EXPECT_DOUBLE_EQ(est.out_range.hi, 12.0);
}

TEST(GroupSensitivityTest, SweepIsMonotoneNonDecreasing) {
  Rng rng(5);
  std::vector<double> neighbours(500);
  for (auto& o : neighbours) o = 100.0 + rng.Normal(0.0, 2.0);
  auto sweep = GroupSensitivitySweep(neighbours, 100.0, 20);
  ASSERT_EQ(sweep.size(), 20u);
  for (size_t k = 1; k < sweep.size(); ++k) {
    EXPECT_GE(sweep[k].sensitivity, sweep[k - 1].sensitivity) << "k=" << k;
    EXPECT_EQ(sweep[k].group_size, k + 1);
  }
}

TEST(GroupSensitivityTest, SweepConsistentWithPointQueries) {
  std::vector<double> neighbours{9.0, 10.5, 10.0, 7.0};
  auto sweep = GroupSensitivitySweep(neighbours, 10.0, 3);
  for (size_t k = 1; k <= 3; ++k) {
    auto point = EstimateGroupSensitivity(neighbours, 10.0, k);
    EXPECT_DOUBLE_EQ(sweep[k - 1].sensitivity, point.sensitivity);
  }
}

// Integration: for a counting query, group sensitivity of k records is
// exactly k (each record's influence is 1).
TEST(GroupSensitivityTest, CountQueryGroupSensitivityIsK) {
  engine::ExecContext ctx(engine::ExecConfig{.threads = 2});
  SimpleQuerySpec<int> spec;
  spec.name = "group-count";
  spec.ctx = &ctx;
  auto records = std::make_shared<std::vector<int>>(3000, 0);
  spec.records = records;
  spec.map_record = [](const int&) { return Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(100));
  };

  UpaConfig cfg;
  cfg.sample_n = 200;
  cfg.add_noise = false;
  cfg.enable_enforcer = false;
  UpaRunner runner(cfg);
  auto result = runner.Run(MakeSimpleQuery(std::move(spec)), 1);
  ASSERT_TRUE(result.ok());

  for (size_t k : {1u, 5u, 20u}) {
    auto est = EstimateGroupSensitivity(result.value().neighbour_outputs,
                                        result.value().raw_output, k);
    EXPECT_DOUBLE_EQ(est.sensitivity, static_cast<double>(k)) << "k=" << k;
  }
}

// Ground-truth bound property: for an additive sum query, removing the k
// largest records changes the output by exactly the estimate (when those
// records are in the sample).
TEST(GroupSensitivityTest, MatchesExactGroupRemovalOnSumQuery) {
  engine::ExecContext ctx(engine::ExecConfig{.threads = 2});
  auto records = std::make_shared<std::vector<double>>();
  Rng rng(9);
  for (int i = 0; i < 800; ++i) records->push_back(rng.UniformDouble(0, 5));

  SimpleQuerySpec<double> spec;
  spec.name = "group-sum";
  spec.ctx = &ctx;
  spec.records = records;
  spec.map_record = [](const double& v) { return Vec{v}; };
  spec.sample_domain = [](Rng& r) { return r.UniformDouble(0, 5); };

  UpaConfig cfg;
  cfg.sample_n = 800;  // sample everything → estimates become exact
  cfg.add_noise = false;
  cfg.enable_enforcer = false;
  UpaRunner runner(cfg);
  auto result = runner.Run(MakeSimpleQuery(std::move(spec)), 2);
  ASSERT_TRUE(result.ok());

  const size_t k = 3;
  auto est = EstimateGroupSensitivity(result.value().neighbour_outputs,
                                      result.value().raw_output, k);
  // Exact: sum of the k largest record values... except additions (fresh
  // domain records) can exceed the k-th largest record. The estimate must
  // be at least the removal-side exact value.
  std::vector<double> sorted = *records;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double exact_removal = sorted[0] + sorted[1] + sorted[2];
  EXPECT_GE(est.sensitivity, exact_removal - 1e-9);
  EXPECT_LE(est.sensitivity, exact_removal + 15.0);  // 3 additions ≤ 15
}

}  // namespace
}  // namespace upa::core
