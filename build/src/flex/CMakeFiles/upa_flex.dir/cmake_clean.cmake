file(REMOVE_RECURSE
  "CMakeFiles/upa_flex.dir/analyzer.cpp.o"
  "CMakeFiles/upa_flex.dir/analyzer.cpp.o.d"
  "libupa_flex.a"
  "libupa_flex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_flex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
