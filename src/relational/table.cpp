#include "relational/table.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <unordered_map>

#include "common/status.h"
#include "relational/buffer_manager.h"
#include "relational/columnar.h"

namespace upa::rel {

namespace {
std::atomic<uint64_t> g_next_table_uid{1};
}  // namespace

double ColumnStats::FractionBelow(double bound) const {
  UPA_CHECK_MSG(numeric && !histogram.empty(),
                "FractionBelow needs a numeric histogram");
  if (bound <= min) return 0.0;
  if (bound > max) return 1.0;
  size_t total = 0;
  for (size_t c : histogram) total += c;
  if (total == 0) return 0.0;
  if (max == min) return 0.0;  // bound in (min, max] with min==max → below none
  const double width = (max - min) / static_cast<double>(histogram.size());
  const double offset = (bound - min) / width;
  const size_t full = std::min(static_cast<size_t>(offset), histogram.size());
  size_t below = 0;
  for (size_t b = 0; b < full; ++b) below += histogram[b];
  double frac = static_cast<double>(below);
  if (full < histogram.size()) {
    // Linear interpolation inside the bucket `bound` falls in.
    frac += static_cast<double>(histogram[full]) *
            (offset - static_cast<double>(full));
  }
  return std::min(1.0, frac / static_cast<double>(total));
}

Table::Table(std::string name, Schema schema, std::vector<Row> rows)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      rows_(std::move(rows)),
      uid_(g_next_table_uid.fetch_add(1, std::memory_order_relaxed)) {
  for (const Row& row : rows_) {
    UPA_CHECK_MSG(row.size() == schema_.NumColumns(),
                  "row arity mismatch in table " + name_);
  }
}

Table::~Table() {
  // Copies share a uid, so this may delete a spill file a surviving copy
  // would have reloaded — that copy then falls back to rebuilding from its
  // rows (a lost optimization, never lost data).
  BufferManager::Instance().Forget(this, uid_, /*drop_spill=*/true);
}

Table::Table(const Table& other)
    : name_(other.name_),
      schema_(other.schema_),
      rows_(other.rows_),
      uid_(other.uid_) {
  std::lock_guard lock(other.cache_mu_);
  stats_cache_ = other.stats_cache_;
  columnar_ = other.columnar_;
}

Table::Table(Table&& other) noexcept
    : name_(std::move(other.name_)),
      schema_(std::move(other.schema_)),
      rows_(std::move(other.rows_)),
      uid_(other.uid_) {
  {
    // Hold the source's cache mutex while stealing its caches, mirroring
    // the copy constructor: a concurrent StatsFor/Columnar on `other` must
    // not race the steal (moving from a table another thread still uses is
    // dubious, but it must not be a data race).
    std::lock_guard lock(other.cache_mu_);
    stats_cache_ = std::move(other.stats_cache_);
    columnar_ = std::move(other.columnar_);
  }
  // The source no longer holds the bytes (lock released first: the manager
  // must never be entered while a cache_mu_ is held). This table's own
  // admission happens on its next Columnar() call.
  BufferManager::Instance().Forget(&other, other.uid_, /*drop_spill=*/false);
}

ColumnStats Table::StatsFor(const std::string& column) const {
  {
    std::lock_guard lock(cache_mu_);
    auto it = stats_cache_.find(column);
    if (it != stats_cache_.end()) return it->second;
  }

  // Compute outside the lock (two racing threads may both compute; the
  // result is deterministic so whichever insert wins stores the same
  // value). rows_ and schema_ are immutable after construction.
  size_t idx = schema_.IndexOf(column);
  std::unordered_map<Value, size_t, ValueHash, ValueEq> freq;
  freq.reserve(rows_.size());
  for (const Row& row : rows_) ++freq[row[idx]];

  ColumnStats stats;
  stats.distinct = freq.size();
  for (const auto& [value, count] : freq) {
    stats.max_frequency = std::max(stats.max_frequency, count);
  }

  // Min/max and an equi-width histogram for numeric columns (the cost-based
  // optimizer's selectivity inputs). A column mixing strings with numerics
  // stays non-numeric — range estimation falls back to defaults there.
  stats.numeric = !rows_.empty();
  for (const Row& row : rows_) {
    if (!IsNumeric(row[idx])) {
      stats.numeric = false;
      break;
    }
  }
  if (stats.numeric) {
    stats.min = AsNumeric(rows_.front()[idx]);
    stats.max = stats.min;
    for (const Row& row : rows_) {
      const double v = AsNumeric(row[idx]);
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
    const size_t nbuckets = ColumnStats::kHistogramBuckets;
    stats.histogram.assign(nbuckets, 0);
    const double span = stats.max - stats.min;
    for (const Row& row : rows_) {
      size_t b = 0;
      if (span > 0) {
        const double v = AsNumeric(row[idx]);
        b = std::min(nbuckets - 1,
                     static_cast<size_t>((v - stats.min) / span *
                                         static_cast<double>(nbuckets)));
      }
      ++stats.histogram[b];
    }
  }

  std::lock_guard lock(cache_mu_);
  return stats_cache_.emplace(column, stats).first->second;
}

size_t Table::MaxFrequency(const std::string& column) const {
  return StatsFor(column).max_frequency;
}

size_t Table::DistinctCount(const std::string& column) const {
  return StatsFor(column).distinct;
}

ColumnStats Table::Stats(const std::string& column) const {
  return StatsFor(column);
}

std::shared_ptr<const ColumnarTable> Table::Columnar() const {
  BufferManager& mgr = BufferManager::Instance();
  std::shared_ptr<const ColumnarTable> out;
  {
    std::lock_guard lock(cache_mu_);
    out = columnar_;
  }
  if (out == nullptr) {
    // Evicted (or first use): prefer reloading the spilled payload — it is
    // bit-identical to a rebuild and skips re-encoding the row store.
    const std::string spill = mgr.SpillPathFor(uid_);
    if (!spill.empty()) {
      Result<std::shared_ptr<const ColumnarTable>> loaded =
          ColumnarTable::LoadSpill(spill, schema_);
      if (loaded.ok()) {
        out = std::move(loaded.value());
        mgr.NoteSpillLoad();
      }
    }
    if (out == nullptr) out = ColumnarTable::Build(schema_, rows_);
    std::lock_guard lock(cache_mu_);
    if (columnar_ == nullptr) columnar_ = std::move(out);
    out = columnar_;
  }
  // Registered outside cache_mu_ (lock order: manager → cache). Admission
  // doubles as the LRU touch and may evict *other* tables to fit.
  mgr.Admit(this, out->resident_bytes());
  return out;
}

void Table::ReleaseCaches() const {
  {
    std::lock_guard lock(cache_mu_);
    stats_cache_.clear();
    columnar_.reset();
  }
  // Keep any spill file: the next Columnar() can still reload it.
  BufferManager::Instance().Forget(this, uid_, /*drop_spill=*/false);
}

size_t Table::CachedBytes() const {
  std::lock_guard lock(cache_mu_);
  size_t bytes = columnar_ != nullptr ? columnar_->resident_bytes() : 0;
  for (const auto& [name, stats] : stats_cache_) {
    bytes += sizeof(stats) + name.size() +
             stats.histogram.capacity() * sizeof(size_t);
  }
  return bytes;
}

size_t Table::EvictColumnar(const std::string& spill_path,
                            bool* spilled) const {
  *spilled = false;
  std::lock_guard lock(cache_mu_);
  if (columnar_ == nullptr) return 0;
  if (columnar_.use_count() > 1) return 0;  // pinned by an in-flight query
  const size_t bytes = columnar_->resident_bytes();
  if (!spill_path.empty()) {
    Status s = columnar_->SpillTo(spill_path);
    if (s.ok()) {
      *spilled = true;
    } else {
      std::remove(spill_path.c_str());  // never leave a truncated spill
    }
  }
  columnar_.reset();
  return bytes;
}

}  // namespace upa::rel
