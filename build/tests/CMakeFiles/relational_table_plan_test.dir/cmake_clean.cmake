file(REMOVE_RECURSE
  "CMakeFiles/relational_table_plan_test.dir/relational_table_plan_test.cpp.o"
  "CMakeFiles/relational_table_plan_test.dir/relational_table_plan_test.cpp.o.d"
  "relational_table_plan_test"
  "relational_table_plan_test.pdb"
  "relational_table_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_table_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
