// Minimal leveled logging to stderr. Level controlled by UPA_LOG_LEVEL
// (error|warn|info|debug); default info. printf-style formatting.
#pragma once

#include <cstdarg>

namespace upa {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current threshold (read once from the environment, then cached).
LogLevel CurrentLogLevel();
void SetLogLevel(LogLevel level);

void LogV(LogLevel level, const char* fmt, va_list args);
void Log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace upa

#define UPA_LOG_ERROR(...) ::upa::Log(::upa::LogLevel::kError, __VA_ARGS__)
#define UPA_LOG_WARN(...) ::upa::Log(::upa::LogLevel::kWarn, __VA_ARGS__)
#define UPA_LOG_INFO(...) ::upa::Log(::upa::LogLevel::kInfo, __VA_ARGS__)
#define UPA_LOG_DEBUG(...) ::upa::Log(::upa::LogLevel::kDebug, __VA_ARGS__)
