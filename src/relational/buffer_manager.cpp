#include "relational/buffer_manager.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/env.h"
#include "relational/columnar.h"
#include "relational/table.h"

namespace upa::rel {

BufferManager& BufferManager::Instance() {
  static BufferManager* mgr = new BufferManager();  // leaked: outlives Tables
  return *mgr;
}

BufferManager::BufferManager() {
  config_.budget_bytes = static_cast<size_t>(
      std::max<int64_t>(0, EnvInt("UPA_MEM_BUDGET_BYTES", 0)));
  config_.spill_dir = EnvString("UPA_SPILL_DIR", "");
}

void BufferManager::Configure(const Config& config) {
  std::lock_guard lock(mu_);
  config_ = config;
  peak_ = resident_;
  admissions_ = evictions_ = spills_written_ = spill_loads_ = over_budget_ = 0;
}

BufferManager::Config BufferManager::config() const {
  std::lock_guard lock(mu_);
  return config_;
}

BufferManager::Stats BufferManager::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.budget_bytes = config_.budget_bytes;
  s.resident_bytes = resident_;
  s.peak_resident_bytes = peak_;
  s.admissions = admissions_;
  s.evictions = evictions_;
  s.spills_written = spills_written_;
  s.spill_loads = spill_loads_;
  s.over_budget_admissions = over_budget_;
  return s;
}

void BufferManager::ResetStats() {
  std::lock_guard lock(mu_);
  peak_ = resident_;
  admissions_ = evictions_ = spills_written_ = spill_loads_ = over_budget_ = 0;
}

bool BufferManager::EnforceBudgetLocked(size_t incoming_bytes,
                                        const Table* incoming_table) {
  // Try victims oldest-first; a pinned victim is skipped for this pass (its
  // pin can only be released by a query finishing, not by waiting here).
  while (resident_ + incoming_bytes > config_.budget_bytes) {
    const Table* victim = nullptr;
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (const auto& [table, entry] : entries_) {
      if (table == incoming_table) continue;
      if (entry.lru < oldest) {
        oldest = entry.lru;
        victim = table;
      }
    }
    bool progressed = false;
    while (victim != nullptr) {
      const uint64_t uid = victim->uid();
      std::string path;
      if (!config_.spill_dir.empty()) {
        path = config_.spill_dir + "/upa-spill-" + std::to_string(uid) +
               ".colspill";
      }
      bool spilled = false;
      const size_t freed = victim->EvictColumnar(path, &spilled);
      if (freed > 0) {
        auto it = entries_.find(victim);
        resident_ -= std::min(resident_, it->second.bytes);
        entries_.erase(it);
        ++evictions_;
        if (spilled) {
          spills_[uid] = path;
          ++spills_written_;
        } else {
          spills_.erase(uid);  // any older spill is still valid data, but a
                               // failed rewrite may have truncated it
        }
        progressed = true;
        break;
      }
      // Pinned (or already empty): advance to the next-oldest candidate.
      const Table* next_victim = nullptr;
      uint64_t next_oldest = std::numeric_limits<uint64_t>::max();
      for (const auto& [table, entry] : entries_) {
        if (table == incoming_table) continue;
        if (entry.lru > oldest && entry.lru < next_oldest) {
          next_oldest = entry.lru;
          next_victim = table;
        }
      }
      oldest = next_oldest;
      victim = next_victim;
    }
    if (!progressed) return false;  // every candidate pinned
  }
  return true;
}

void BufferManager::Admit(const Table* table, size_t bytes) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(table);
  if (it != entries_.end()) {
    resident_ -= std::min(resident_, it->second.bytes);
    entries_.erase(it);
  }
  if (config_.budget_bytes > 0) {
    if (!EnforceBudgetLocked(bytes, table)) ++over_budget_;
  }
  entries_[table] = {bytes, ++next_lru_};
  resident_ += bytes;
  peak_ = std::max(peak_, resident_);
  ++admissions_;
}

void BufferManager::Forget(const Table* table, uint64_t uid, bool drop_spill) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(table);
  if (it != entries_.end()) {
    resident_ -= std::min(resident_, it->second.bytes);
    entries_.erase(it);
  }
  if (drop_spill) {
    auto sp = spills_.find(uid);
    if (sp != spills_.end()) {
      std::remove(sp->second.c_str());
      spills_.erase(sp);
    }
  }
}

std::string BufferManager::SpillPathFor(uint64_t uid) const {
  std::lock_guard lock(mu_);
  auto it = spills_.find(uid);
  return it == spills_.end() ? std::string() : it->second;
}

void BufferManager::NoteSpillLoad() {
  std::lock_guard lock(mu_);
  ++spill_loads_;
}

}  // namespace upa::rel
