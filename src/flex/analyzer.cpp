#include "flex/analyzer.h"

#include <cmath>

namespace upa::flex {
namespace {

/// Walks the plan collecting join key columns with their owning tables.
void CollectJoins(const rel::PlanPtr& plan, const rel::Catalog& catalog,
                  std::vector<JoinFactor>& joins, bool& ok,
                  std::string& reason) {
  if (plan == nullptr || !ok) return;
  switch (plan->kind) {
    case rel::PlanKind::kScan:
      return;
    case rel::PlanKind::kFilter:
      // FLEX's model has Select/Filter but assigns them no effect on the
      // inferred sensitivity — this is precisely its documented
      // inaccuracy.
      CollectJoins(plan->left, catalog, joins, ok, reason);
      return;
    case rel::PlanKind::kAggregate:
      CollectJoins(plan->left, catalog, joins, ok, reason);
      return;
    case rel::PlanKind::kJoin: {
      JoinFactor f;
      f.left_column = plan->left_key;
      f.right_column = plan->right_key;
      f.left_table = rel::OwningTable(plan->left, plan->left_key, catalog);
      f.right_table = rel::OwningTable(plan->right, plan->right_key, catalog);
      if (f.left_table.empty() || f.right_table.empty()) {
        ok = false;
        reason = "cannot resolve join column ownership: " + plan->left_key +
                 "=" + plan->right_key;
        return;
      }
      f.left_max_frequency =
          catalog.at(f.left_table)->MaxFrequency(f.left_column);
      f.right_max_frequency =
          catalog.at(f.right_table)->MaxFrequency(f.right_column);
      joins.push_back(std::move(f));
      CollectJoins(plan->left, catalog, joins, ok, reason);
      CollectJoins(plan->right, catalog, joins, ok, reason);
      return;
    }
  }
}

}  // namespace

FlexResult AnalyzeFlex(const rel::PlanPtr& plan, const rel::Catalog& catalog) {
  FlexResult result;
  if (plan == nullptr || plan->kind != rel::PlanKind::kAggregate) {
    result.unsupported_reason = "not an aggregate query";
    return result;
  }
  if (plan->agg != rel::AggKind::kCount) {
    // The published FLEX system handles count; SUM/AVG/MIN/MAX are only
    // sketched as possible extensions (paper §II-B).
    result.unsupported_reason =
        "FLEX supports only counting queries (arithmetic aggregate)";
    return result;
  }

  bool ok = true;
  std::string reason;
  CollectJoins(plan->left, catalog, result.joins, ok, reason);
  if (!ok) {
    result.unsupported_reason = reason;
    return result;
  }

  // Count with no joins: adding/removing one record changes the count by
  // exactly one — FLEX is exact here (the paper's TPCH1 case).
  double sensitivity = 1.0;
  for (const JoinFactor& join : result.joins) {
    sensitivity *= join.factor();
  }
  result.supported = true;
  result.local_sensitivity = sensitivity;
  return result;
}

FlexResult AnalyzeFlexSmooth(const rel::PlanPtr& plan,
                             const rel::Catalog& catalog, double beta,
                             size_t max_distance) {
  FlexResult base = AnalyzeFlex(plan, catalog);
  if (!base.supported) return base;

  // LS(k): every join factor's frequencies can grow by k records that all
  // pile onto the most frequent key.
  auto ls_at = [&base](size_t k) {
    double s = 1.0;
    for (const JoinFactor& j : base.joins) {
      s *= (static_cast<double>(j.left_max_frequency) + k) *
           (static_cast<double>(j.right_max_frequency) + k);
    }
    return s;
  };

  double smooth = 0.0;
  for (size_t k = 0; k <= max_distance; ++k) {
    double candidate = std::exp(-beta * static_cast<double>(k)) * ls_at(k);
    smooth = std::max(smooth, candidate);
    // The polynomial LS(k) is eventually dominated by e^{-βk}; once the
    // candidate has decayed to a negligible fraction of the max, stop.
    if (k > 8 && candidate < smooth * 1e-6) break;
  }
  base.local_sensitivity = smooth;
  return base;
}

}  // namespace upa::flex
