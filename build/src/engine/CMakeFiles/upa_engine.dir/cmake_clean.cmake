file(REMOVE_RECURSE
  "CMakeFiles/upa_engine.dir/metrics.cpp.o"
  "CMakeFiles/upa_engine.dir/metrics.cpp.o.d"
  "libupa_engine.a"
  "libupa_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
