# Empty compiler generated dependencies file for engine_lineage_test.
# This may be replaced when dependencies are built.
