// Figure 2(b) reproduction: UPA end-to-end execution time normalized to the
// vanilla engine ("native Spark"), per query.
//
// Paper result shape: overheads between ~19% and ~131% (avg 77.6%);
// join-bearing queries (TPCH4/TPCH13) >100% because UPA's joinDP triggers a
// second join/shuffle pass; TPCH16/TPCH21 are cheaper than their join count
// suggests because filters drop >99% of records before the joins;
// local-computation queries (LR/KMeans/TPCH1/TPCH6) pay mostly for the
// Range Enforcer's extra partition aggregation.
//
// Method (paper §VI-D): per run the input is churned by removing 1–2
// records so the enforcer's Case 1 / Case 2 occur with equal probability;
// each run executes natively and under UPA, with phase and shuffle
// attribution from the engine metrics.
#include <cstdio>
#include <vector>

#include "bench_util/harness.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "upa/runner.h"

int main() {
  using namespace upa;
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  bench::PrintBanner("Figure 2(b) — UPA time normalized to native engine",
                     env);

  queries::QuerySuite suite(env.MakeSuiteConfig());
  core::UpaConfig upa_cfg = env.MakeUpaConfig();

  TablePrinter table({"Query", "native (ms)", "UPA (ms)", "normalized",
                      "overhead", "map (ms)", "reduce (ms)", "enforce (ms)",
                      "UPA shuffles", "native shuffles", "attacks"});
  std::vector<double> overheads;

  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    core::UpaRunner runner(upa_cfg);  // persistent registry across runs

    // Warm-up pass (allocator, lazily computed table stats) so the timed
    // runs measure steady state on both sides.
    {
      queries::ChurnedData churn = suite.MakeChurn(name, 1, env.seed + 9999);
      suite.RunNative(name, &churn);
      (void)runner.Run(suite.MakeInstance(name, &churn), env.seed + 9999);
    }

    std::vector<double> native_ms, upa_ms, map_ms, reduce_ms, enforce_ms;
    uint64_t upa_shuffles = 0, native_shuffles = 0;
    size_t attacks = 0;

    for (size_t r = 0; r < env.runs; ++r) {
      size_t churn_records = 1 + (r % 2);  // equal-probability cases
      queries::ChurnedData churn =
          suite.MakeChurn(name, churn_records, env.seed + r);

      auto& metrics = suite.ctx().metrics();
      Stopwatch native_watch;
      auto native_before = metrics.Snapshot();
      suite.RunNative(name, &churn);
      native_ms.push_back(native_watch.ElapsedMillis());
      native_shuffles +=
          (metrics.Snapshot() - native_before).shuffle_rounds;

      auto result = runner.Run(suite.MakeInstance(name, &churn),
                               env.seed + 31 * r);
      if (!result.ok()) {
        std::fprintf(stderr, "UPA failed for %s: %s\n", name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      upa_ms.push_back(result.value().seconds.total * 1e3);
      map_ms.push_back(result.value().seconds.map * 1e3);
      reduce_ms.push_back(result.value().seconds.reduce * 1e3);
      enforce_ms.push_back(result.value().seconds.enforce * 1e3);
      upa_shuffles += result.value().metrics.shuffle_rounds;
      if (result.value().enforcer.attack_suspected) ++attacks;
    }

    double native_mean = Mean(native_ms);
    double upa_mean = Mean(upa_ms);
    double normalized = native_mean > 0 ? upa_mean / native_mean : 0.0;
    overheads.push_back(normalized - 1.0);
    table.AddRow({name, TablePrinter::FormatDouble(native_mean, 2),
                  TablePrinter::FormatDouble(upa_mean, 2),
                  TablePrinter::FormatDouble(normalized, 2),
                  TablePrinter::FormatPercent(normalized - 1.0, 1),
                  TablePrinter::FormatDouble(Mean(map_ms), 2),
                  TablePrinter::FormatDouble(Mean(reduce_ms), 2),
                  TablePrinter::FormatDouble(Mean(enforce_ms), 2),
                  std::to_string(upa_shuffles / env.runs),
                  std::to_string(native_shuffles / env.runs),
                  std::to_string(attacks)});
  }

  table.Print("Figure 2(b): execution time normalized to native engine");
  std::printf("\nAverage overhead across queries: %.1f%% (paper: 77.6%%, "
              "range 19.1%%-130.9%%)\n",
              Mean(overheads) * 100.0);
  return 0;
}
