# Empty dependencies file for upa_types_exclusion_test.
# This may be replaced when dependencies are built.
