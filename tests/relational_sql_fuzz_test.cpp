// Differential SQL fuzzer: ~220 seeded random single-block SELECTs over
// the TPC-H-style schema, each executed through the full stack (parser →
// optimizer → grouped lowering → engine) on the row oracle, the
// interpreted columnar engine and the fused kernels, across thread counts
// {1, 4} × fragment sizes {7, 64K}. Every cell of every result must agree
// bit-for-bit; error paths must agree on the status code.
//
// A second pass mutates the valid strings (truncation, token duplication,
// junk characters) and asserts the front-end always fails with a clean
// Status — never a crash — and that strings that survive mutation still
// execute cleanly.
//
// Suite name matches the CI sanitizer filters (SqlFuzz).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "engine/context.h"
#include "relational/columnar.h"
#include "relational/sql_exec.h"
#include "relational/table.h"
#include "tpch/generator.h"

namespace upa::rel {
namespace {

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

struct GlobalConfigGuard {
  size_t fragment_rows = DefaultFragmentRows();
  ~GlobalConfigGuard() { SetDefaultFragmentRows(fragment_rows); }
};

// -- Random query generation ------------------------------------------------

struct NumCol {
  const char* name;
  bool integral;
  double lo, hi;  // plausible literal range (predicates may still select
                  // everything or nothing — both sides must agree anyway)
};

struct StrCol {
  const char* name;
  const std::vector<std::string>* vocab;
};

struct FuzzTable {
  const char* sql;  // FROM / JOIN clause
  std::vector<NumCol> nums;
  std::vector<StrCol> strs;
  std::vector<const char*> group_cols;  // low-cardinality keys only
};

std::vector<FuzzTable> FuzzTables() {
  static const std::vector<std::string> kReturnFlags = {"N", "R", "A"};
  static const std::vector<std::string> kOrderStatus = {"F", "O", "P"};
  std::vector<NumCol> li_nums = {
      {"l_quantity", false, 1, 51},    {"l_extendedprice", false, 900, 56000},
      {"l_discount", false, 0, 0.11},  {"l_shipdate", true, 0, 2556},
      {"l_orderkey", true, 1, 80},     {"l_partkey", true, 1, 30},
  };
  std::vector<NumCol> ord_nums = {
      {"o_orderdate", true, 0, 2556},
      {"o_orderkey", true, 1, 80},
  };
  std::vector<FuzzTable> tables;
  tables.push_back({"lineitem",
                    li_nums,
                    {{"l_returnflag", &kReturnFlags}},
                    {"l_returnflag"}});
  tables.push_back({"orders",
                    ord_nums,
                    {{"o_orderpriority", &tpch::OrderPriorities()},
                     {"o_orderstatus", &kOrderStatus}},
                    {"o_orderpriority", "o_orderstatus"}});
  tables.push_back({"part",
                    {{"p_size", true, 1, 50}, {"p_partkey", true, 1, 30}},
                    {{"p_brand", &tpch::Brands()},
                     {"p_type", &tpch::PartTypes()}},
                    {"p_brand"}});
  // Joined scopes: union of both sides' columns, one low-card key side.
  FuzzTable oj;
  oj.sql = "orders JOIN lineitem ON o_orderkey = l_orderkey";
  oj.nums = li_nums;
  oj.nums.insert(oj.nums.end(), ord_nums.begin(), ord_nums.end());
  oj.strs = {{"l_returnflag", &kReturnFlags},
             {"o_orderpriority", &tpch::OrderPriorities()}};
  oj.group_cols = {"o_orderpriority", "l_returnflag"};
  tables.push_back(oj);
  FuzzTable pj;
  pj.sql = "lineitem JOIN part ON l_partkey = p_partkey";
  pj.nums = li_nums;
  pj.nums.push_back({"p_size", true, 1, 50});
  pj.strs = {{"p_brand", &tpch::Brands()}, {"l_returnflag", &kReturnFlags}};
  pj.group_cols = {"p_brand"};
  tables.push_back(pj);
  return tables;
}

std::string FmtNum(const NumCol& c, Rng& rng) {
  if (c.integral) {
    return std::to_string(rng.UniformInt(static_cast<int64_t>(c.lo),
                                         static_cast<int64_t>(c.hi)));
  }
  double v = rng.UniformDouble(c.lo, c.hi);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

/// A random numeric expression over the table's numeric columns (the
/// aggregate argument); depth ≤ 2 keeps fused fast-paths and generic
/// fallbacks both reachable.
std::string RandomNumExpr(const FuzzTable& t, Rng& rng, int depth = 0) {
  const NumCol& c = t.nums[rng.UniformU64(t.nums.size())];
  if (depth >= 1 || rng.Bernoulli(0.45)) return c.name;
  const char* ops[] = {" * ", " + ", " - "};
  const char* op = ops[rng.UniformU64(3)];
  std::string rhs = rng.Bernoulli(0.5) ? RandomNumExpr(t, rng, depth + 1)
                                       : FmtNum(c, rng);
  return std::string(c.name) + op + rhs;
}

std::string RandomConjunct(const FuzzTable& t, Rng& rng) {
  static const char* kCmps[] = {"<", "<=", ">", ">=", "=", "<>", "!="};
  double pick = rng.UniformDouble();
  if (pick < 0.55 || t.strs.empty()) {
    const NumCol& c = t.nums[rng.UniformU64(t.nums.size())];
    const char* cmp = kCmps[rng.UniformU64(7)];
    std::string lit = FmtNum(c, rng);
    // Both operand orders: the fused compiler mirrors literal-on-left.
    if (rng.Bernoulli(0.25)) {
      return lit + " " + cmp + " " + c.name;
    }
    if (rng.Bernoulli(0.15)) {  // IN list over integers
      std::string in = std::string(c.name) + " IN (";
      size_t n = 1 + rng.UniformU64(3);
      for (size_t i = 0; i < n; ++i) {
        if (i) in += ", ";
        in += FmtNum(c, rng);
      }
      return in + ")";
    }
    return std::string(c.name) + " " + cmp + " " + lit;
  }
  const StrCol& c = t.strs[rng.UniformU64(t.strs.size())];
  const std::string& lit = (*c.vocab)[rng.UniformU64(c.vocab->size())];
  if (rng.Bernoulli(0.2)) {  // absent literal: dict boundary miss
    return std::string(c.name) + " = 'ZZ-" + lit + "'";
  }
  const char* cmp = kCmps[rng.UniformU64(7)];
  return std::string(c.name) + " " + cmp + " '" + lit + "'";
}

std::string RandomAgg(const FuzzTable& t, Rng& rng) {
  double pick = rng.UniformDouble();
  if (pick < 0.25) return "COUNT(*)";
  const char* fn = pick < 0.65 ? "SUM" : (pick < 0.80 ? "AVG"
                                          : pick < 0.90 ? "MIN" : "MAX");
  return std::string(fn) + "(" + RandomNumExpr(t, rng) + ")";
}

std::string RandomQuery(const std::vector<FuzzTable>& tables, Rng& rng) {
  const FuzzTable& t = tables[rng.UniformU64(tables.size())];
  const bool grouped = rng.Bernoulli(0.45) && !t.group_cols.empty();
  std::vector<std::string> keys;
  if (grouped) {
    keys.push_back(t.group_cols[rng.UniformU64(t.group_cols.size())]);
    if (t.group_cols.size() > 1 && rng.Bernoulli(0.3)) {
      const char* extra = t.group_cols[rng.UniformU64(t.group_cols.size())];
      if (extra != keys[0]) keys.push_back(extra);
    }
  }

  std::string sql = "SELECT ";
  size_t num_aggs = 1 + rng.UniformU64(grouped ? 2 : 3);
  std::vector<std::string> selectable = keys;  // keys first, then aggs
  for (const std::string& k : keys) sql += k + ", ";
  for (size_t i = 0; i < num_aggs; ++i) {
    if (i) sql += ", ";
    sql += RandomAgg(t, rng);
    if (rng.Bernoulli(0.5)) {
      sql += " AS a" + std::to_string(i);
      selectable.push_back("a" + std::to_string(i));
    }
  }
  sql += " FROM " + std::string(t.sql);

  size_t num_conjuncts = rng.UniformU64(4);  // 0..3
  for (size_t i = 0; i < num_conjuncts; ++i) {
    sql += i == 0 ? " WHERE " : " AND ";
    if (rng.Bernoulli(0.12)) {  // OR / NOT exercise the generic kernels
      sql += "(" + RandomConjunct(t, rng) + " OR " + RandomConjunct(t, rng) +
             ")";
    } else if (rng.Bernoulli(0.08)) {
      sql += "NOT " + RandomConjunct(t, rng);
    } else {
      sql += RandomConjunct(t, rng);
    }
  }

  if (grouped) {
    sql += " GROUP BY " + keys[0];
    if (keys.size() > 1) sql += ", " + keys[1];
    if (rng.Bernoulli(0.3)) {
      sql += " HAVING COUNT(*) > " + std::to_string(rng.UniformU64(5));
    }
    if (rng.Bernoulli(0.5)) {
      const std::string& key = selectable[rng.UniformU64(selectable.size())];
      sql += " ORDER BY " + key + (rng.Bernoulli(0.5) ? " DESC" : "");
      if (rng.Bernoulli(0.3)) sql += ", " + keys[0] + " ASC";
    }
    if (rng.Bernoulli(0.3)) {
      sql += " LIMIT " + std::to_string(rng.UniformU64(8));
    }
  }
  return sql;
}

// -- Differential harness ---------------------------------------------------

void ExpectSameResult(const SqlResultSet& want, const Result<SqlResultSet>& got,
                      const std::string& what) {
  ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
  const SqlResultSet& have = got.value();
  ASSERT_EQ(want.columns, have.columns) << what;
  ASSERT_EQ(want.rows.size(), have.rows.size()) << what;
  for (size_t r = 0; r < want.rows.size(); ++r) {
    ASSERT_EQ(want.rows[r].size(), have.rows[r].size()) << what;
    for (size_t c = 0; c < want.rows[r].size(); ++c) {
      const Value& a = want.rows[r][c];
      const Value& b = have.rows[r][c];
      ASSERT_EQ(a.index(), b.index()) << what << " row " << r << " col " << c;
      if (std::holds_alternative<double>(a)) {
        EXPECT_EQ(Bits(std::get<double>(a)), Bits(std::get<double>(b)))
            << what << " row " << r << " col " << c;
      } else {
        EXPECT_TRUE(ValueEq{}(a, b)) << what << " row " << r << " col " << c;
      }
    }
  }
}

TEST(SqlFuzzDifferentialTest, RandomQueriesBitIdenticalAcrossEngines) {
  GlobalConfigGuard guard;
  tpch::TpchDataset data(tpch::TpchConfig{.num_orders = 60, .seed = 7});
  Catalog catalog = data.catalog();
  std::vector<FuzzTable> tables = FuzzTables();

  Rng rng = Rng::ForStream(20260808, "sql_fuzz/queries");
  std::vector<std::string> queries;
  for (size_t i = 0; i < 220; ++i) queries.push_back(RandomQuery(tables, rng));

  // Oracle pass: row engine, single thread, parse-once sanity.
  std::vector<SqlResultSet> oracle(queries.size());
  std::vector<Status> oracle_status(queries.size());
  {
    engine::ExecContext ctx(
        engine::ExecConfig{.threads = 1, .default_partitions = 1});
    SqlExecOptions opts;
    opts.exec.engine = ExecEngine::kRowOracle;
    for (size_t i = 0; i < queries.size(); ++i) {
      Result<SqlResultSet> r = ExecuteSql(&ctx, catalog, queries[i], opts);
      oracle_status[i] = r.status();
      ASSERT_TRUE(r.ok() ||
                  r.status().code() == StatusCode::kFailedPrecondition)
          << queries[i] << ": " << r.status().ToString();
      if (r.ok()) oracle[i] = std::move(r).value();
    }
  }

  for (size_t frag : {size_t{7}, size_t{64} * 1024}) {
    SetDefaultFragmentRows(frag);
    for (const auto& [name, table] : catalog) table->ReleaseCaches();
    for (size_t threads : {size_t{1}, size_t{4}}) {
      engine::ExecContext ctx(
          engine::ExecConfig{.threads = threads, .default_partitions = threads});
      for (FuseMode mode : {FuseMode::kInterpret, FuseMode::kFuse}) {
        SqlExecOptions opts;
        opts.exec.engine = ExecEngine::kColumnar;
        opts.fuse = mode;
        for (size_t i = 0; i < queries.size(); ++i) {
          std::string what =
              queries[i] + " [frag=" + std::to_string(frag) +
              " threads=" + std::to_string(threads) +
              (mode == FuseMode::kFuse ? " fused]" : " interpreted]");
          Result<SqlResultSet> r = ExecuteSql(&ctx, catalog, queries[i], opts);
          if (!oracle_status[i].ok()) {
            ASSERT_FALSE(r.ok()) << what;
            EXPECT_EQ(oracle_status[i].code(), r.status().code()) << what;
            continue;
          }
          ExpectSameResult(oracle[i], r, what);
        }
      }
    }
  }
}

TEST(SqlFuzzDifferentialTest, MutatedQueriesFailCleanly) {
  GlobalConfigGuard guard;
  SetDefaultFragmentRows(64 * 1024);
  tpch::TpchDataset data(tpch::TpchConfig{.num_orders = 30, .seed = 9});
  Catalog catalog = data.catalog();
  std::vector<FuzzTable> tables = FuzzTables();
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 2});

  Rng rng = Rng::ForStream(20260808, "sql_fuzz/mutations");
  size_t parse_failures = 0;
  for (size_t i = 0; i < 150; ++i) {
    std::string sql = RandomQuery(tables, rng);
    switch (rng.UniformU64(4)) {
      case 0:  // truncate mid-token
        sql = sql.substr(0, rng.UniformU64(sql.size()));
        break;
      case 1: {  // splice junk into the middle
        const char* junk[] = {"~", "'", ",", "))", "SELECT", "IN", "GROUP"};
        sql.insert(rng.UniformU64(sql.size()),
                   junk[rng.UniformU64(7)]);
        break;
      }
      case 2: {  // duplicate a chunk
        size_t a = rng.UniformU64(sql.size());
        size_t len = rng.UniformU64(sql.size() - a);
        sql.insert(a, sql.substr(a, len));
        break;
      }
      default: {  // delete a chunk
        size_t a = rng.UniformU64(sql.size());
        sql.erase(a, rng.UniformU64(8));
        break;
      }
    }
    // The only contract: a clean Status or a clean result, never a crash
    // or an abort. (Mutations can leave the string valid.)
    SqlExecOptions opts;
    opts.exec.engine = ExecEngine::kColumnar;
    Result<SqlResultSet> r = ExecuteSql(&ctx, catalog, sql, opts);
    if (!r.ok()) {
      ++parse_failures;
      EXPECT_FALSE(r.status().message().empty()) << sql;
    }
  }
  // Sanity: the mutator actually produces plenty of malformed inputs.
  EXPECT_GE(parse_failures, 50u);
}

}  // namespace
}  // namespace upa::rel
