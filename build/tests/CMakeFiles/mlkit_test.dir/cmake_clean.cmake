file(REMOVE_RECURSE
  "CMakeFiles/mlkit_test.dir/mlkit_test.cpp.o"
  "CMakeFiles/mlkit_test.dir/mlkit_test.cpp.o.d"
  "mlkit_test"
  "mlkit_test.pdb"
  "mlkit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
