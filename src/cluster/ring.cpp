#include "cluster/ring.h"

#include <algorithm>
#include <string>

#include "common/hash.h"
#include "common/status.h"

namespace upa::cluster {

ConsistentHashRing::ConsistentHashRing(size_t num_shards,
                                       size_t vnodes_per_shard)
    : num_shards_(num_shards) {
  UPA_CHECK_MSG(num_shards > 0, "ring needs at least one shard");
  UPA_CHECK_MSG(vnodes_per_shard > 0, "ring needs at least one vnode");
  points_.reserve(num_shards * vnodes_per_shard);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    for (size_t vnode = 0; vnode < vnodes_per_shard; ++vnode) {
      const std::string key = "upa-shard-" + std::to_string(shard) +
                              "/vnode-" + std::to_string(vnode);
      // FNV-1a alone clusters keys that differ only in a trailing digit
      // (consecutive hashes differ by the FNV prime), which would collapse
      // the vnodes into a few runs; Mix64 avalanches them apart.
      points_.push_back({Mix64(Fnv1a(key)), static_cast<uint32_t>(shard)});
    }
  }
  // Ties (two vnodes hashing identically) break by shard index so every
  // builder of the same ring agrees on the owner.
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

size_t ConsistentHashRing::ShardFor(std::string_view dataset_id) const {
  const uint64_t h = Mix64(Fnv1a(dataset_id));
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  if (it == points_.end()) it = points_.begin();  // wrap around the circle
  return it->shard;
}

}  // namespace upa::cluster
