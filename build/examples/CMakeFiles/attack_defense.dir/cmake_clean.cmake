file(REMOVE_RECURSE
  "CMakeFiles/attack_defense.dir/attack_defense.cpp.o"
  "CMakeFiles/attack_defense.dir/attack_defense.cpp.o.d"
  "attack_defense"
  "attack_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
