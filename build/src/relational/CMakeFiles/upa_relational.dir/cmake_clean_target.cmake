file(REMOVE_RECURSE
  "libupa_relational.a"
)
