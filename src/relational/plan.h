// Logical query plans: the Scan / Filter / Join / Aggregate subset the
// paper evaluates (SparkSQL TPC-H queries reduced to scalar aggregates).
//
// The same plan object serves three consumers:
//   * the provenance executor (native runs, UPA's phase runs, ground truth),
//   * FLEX's static analyzer (operator composition + join-key metadata),
//   * documentation (ToString).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "relational/expr.h"
#include "relational/table.h"

namespace upa::rel {

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

enum class PlanKind { kScan, kFilter, kJoin, kAggregate };

/// Hash-build side hint for a join, set by the cost-based optimizer from
/// estimated cardinalities. kAuto lets the columnar engine build from the
/// smaller materialized side at runtime (the row oracle always ignores the
/// hint). Purely physical: results are bit-identical either way, since
/// every aggregate is exact and order-independent.
enum class BuildSide : uint8_t { kAuto, kLeft, kRight };

/// Count/Sum are the additive aggregates UPA's provenance machinery
/// supports end-to-end; Avg/Min/Max execute natively (plain runs) but
/// reject provenance options (per-record influence is not additive).
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

/// Whether the columnar engine may collapse a fusible
/// Aggregate(Filter*(Scan)) chain into the single-pass fused kernel
/// (relational/fused.h) instead of interpreting one node per batch pass.
/// Purely physical (results are bit-identical), but it is a plan property
/// — like BuildSide — so the optimizer can record the decision and the
/// fingerprint distinguishes the physical forms.
///   kAuto      — fuse whenever the shape qualifies (the default),
///   kFuse      — the optimizer marked the chain fusible,
///   kInterpret — force the per-node interpreted path (differential tests
///                and benches use this to obtain the unfused baseline).
enum class FuseMode : uint8_t { kAuto, kFuse, kInterpret };

struct PlanNode {
  PlanKind kind = PlanKind::kScan;

  // kScan
  std::string table;

  // kFilter (child in `left`)
  ExprPtr predicate;

  // kJoin — equi-join on left_key = right_key (int64-keyed)
  PlanPtr left, right;
  std::string left_key, right_key;
  BuildSide build_side = BuildSide::kAuto;

  // kAggregate (child in `left`)
  AggKind agg = AggKind::kCount;
  ExprPtr agg_expr;  // summed expression for kSum
  FuseMode fuse = FuseMode::kAuto;
};

PlanPtr ScanPlan(std::string table);
PlanPtr FilterPlan(PlanPtr child, ExprPtr predicate);
PlanPtr JoinPlan(PlanPtr left, PlanPtr right, std::string left_key,
                 std::string right_key);
PlanPtr CountPlan(PlanPtr child);
PlanPtr SumPlan(PlanPtr child, ExprPtr expr);
PlanPtr AvgPlan(PlanPtr child, ExprPtr expr);
PlanPtr MinPlan(PlanPtr child, ExprPtr expr);
PlanPtr MaxPlan(PlanPtr child, ExprPtr expr);

/// Shallow-copies an Aggregate root with its FuseMode replaced (plans are
/// immutable shared trees; the child subtree is shared, not copied).
PlanPtr WithFuseMode(const PlanPtr& plan, FuseMode mode);

/// Static shape of a plan — what FLEX looks at.
struct PlanStats {
  size_t num_joins = 0;
  size_t num_filters = 0;
  size_t num_scans = 0;
  bool has_aggregate = false;
  AggKind agg = AggKind::kCount;
  /// (table, column) pairs for each join side, in visit order.
  std::vector<std::pair<std::string, std::string>> join_columns;
  /// All scanned table names.
  std::vector<std::string> tables;
};

PlanStats AnalyzePlan(const PlanPtr& plan);

/// Number of Scan nodes of `table` under `plan` (nullptr → 0). Both engines
/// use this to validate the single-private-scan invariant and to decide
/// which subtrees are fully public (and therefore cacheable).
size_t CountScansOf(const PlanPtr& plan, const std::string& table);

/// One-line plan rendering, e.g.
/// "Count(Join(Filter(Scan(orders)), Scan(lineitem), o_orderkey=l_orderkey))"
std::string PlanToString(const PlanPtr& plan);

/// Structural fingerprint of a plan against a catalog: node kinds,
/// predicate/aggregate expressions (exact literal bits), join keys, and —
/// for scans — the *uid* of the resolved table. Keying caches on this
/// instead of PlanNode*/Table* addresses means a freed-and-reallocated
/// plan or table can never silently hit a stale entry (the address may be
/// recycled; a uid never is). Tables missing from the catalog hash by
/// name; execution fails on them before any cache is consulted.
uint64_t PlanFingerprint(const PlanPtr& plan, const Catalog& catalog);

/// The table each join column belongs to is resolved structurally: the key
/// of a join side must come from a Scan under that side. Returns the table
/// name owning `column` under `plan`, or "" if ambiguous/unknown.
std::string OwningTable(const PlanPtr& plan, const std::string& column,
                        const Catalog& catalog);

}  // namespace upa::rel
