// Cluster router: one process speaking the UPA wire protocol to clients,
// fanning queries out over N shard servers by consistent-hashing the
// dataset id (ring.h). Clients see a single server; privacy enforcement
// stays entirely shard-local — each shard owns the budget, enforcer
// registry, epoch and journal for its dataset subset, so the router holds
// no privacy state and can be restarted freely.
//
// Mechanics (mirrors net::Server's threading contract):
//   - one EventLoop thread owns every fd: the listen socket, all client
//     connections and all shard links. No locks on the data path; the only
//     cross-thread values are the stats atomics.
//   - client query frames are decoded just enough to read the dataset id,
//     re-tagged with a router-unique tag (two clients may use the same
//     client_tag), and re-encoded onto the owning shard's link; responses
//     are re-tagged back. Doubles travel as raw IEEE bits through the
//     decode/encode round trip, so routing is bit-invisible.
//   - per-shard backpressure: a shard at its in-flight cap (or with a
//     backed-up write buffer) rejects further queries with
//     kResourceExhausted, the same code the server uses for pipeline
//     overflow — clients already handle it.
//   - failover: a dead shard link parks its keyed in-flight queries (see
//     RouterConfig::retry_limit) and fails the keyless rest with
//     kUnavailable, then redials with jittered bounded exponential
//     backoff — a circuit breaker: kBackoff is open, kConnecting/kProbing
//     half-open, kHealthy closed. A reconnected shard takes traffic only
//     after answering a health probe (a stats request) — by then the
//     shard process has replayed its journal, so the recovered
//     registry/ledger/epoch/dedup state is already bit-identical to the
//     pre-crash acknowledged state — at which point parked queries are
//     re-sent with their original idempotency keys: a release the shard
//     journaled before dying replays byte-identically without
//     re-charging, anything earlier re-runs against the refunded budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.h"
#include "net/event_loop.h"
#include "net/wire.h"

namespace upa::cluster {

struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read back via port()).
  uint16_t port = 0;
  size_t max_connections = 1024;
  size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
  /// Per-shard cap on routed-but-unanswered queries; overflow is rejected
  /// with kResourceExhausted (backpressure, not queueing).
  size_t max_inflight_per_shard = 128;
  /// A client (or shard) write buffer above this pauses reads from the
  /// other side of that connection until it drains.
  size_t write_buffer_high_bytes = 4u << 20;
  /// Shard dial: per-attempt connect timeout and the redial backoff range.
  double dial_timeout_ms = 2000.0;
  double backoff_initial_ms = 20.0;
  double backoff_max_ms = 2000.0;
  /// Health probes: a reconnected shard must answer one before taking
  /// traffic; healthy-but-idle shards are probed every interval. 0
  /// disables idle probing (the connect-time probe always runs).
  double health_probe_interval_ms = 500.0;
  double health_probe_timeout_ms = 2000.0;
  double tick_interval_ms = 5.0;
  double drain_timeout_ms = 5000.0;
  /// Budget-safe failover retry: an in-flight query carrying an
  /// idempotency key (client_nonce != 0) is PARKED when its shard link
  /// dies and re-sent — same key, so a completed release replays instead
  /// of re-running — once the shard passes a health probe (the recovery
  /// barrier: by then journal replay has finished). Each query survives at
  /// most retry_limit failovers; a parked query whose shard has not
  /// recovered within retry_timeout_ms fails back to the client with
  /// kUnavailable. retry_limit = 0 disables parking entirely (every
  /// failover fails fast, the pre-retry behavior). Keyless queries always
  /// fail fast — without a key a re-send could double-spend budget.
  size_t retry_limit = 2;
  double retry_timeout_ms = 3000.0;
  /// Redial backoff jitter fraction in [0, 1]: each backoff interval is
  /// scaled by a deterministic pseudo-random factor in [1-j/2, 1+j/2] so
  /// multiple routers (or many links after a correlated failure) do not
  /// redial a recovering shard in lockstep.
  double backoff_jitter = 0.5;
  uint64_t backoff_jitter_seed = 0x7570612d6a697474ULL;
  size_t ring_vnodes = 64;
  net::PollerKind poller = net::PollerKind::kEpoll;
};

class Router {
 public:
  Router(std::vector<ShardAddress> shards, RouterConfig config = {});
  ~Router();  // Stop()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const { return port_; }
  const ConsistentHashRing& ring() const { return ring_; }

  /// True once the shard's link passed its health probe (and the link is
  /// still up). Thread-safe.
  bool ShardHealthy(size_t shard) const;

  struct Stats {
    uint64_t accepted = 0;
    uint64_t open_connections = 0;
    uint64_t routed = 0;
    uint64_t replies = 0;
    uint64_t rejected_unavailable = 0;
    uint64_t rejected_backpressure = 0;
    uint64_t shard_reconnects = 0;
    uint64_t failed_over_inflight = 0;
    uint64_t protocol_errors = 0;
    /// Keyed queries re-sent to a recovered shard.
    uint64_t retried = 0;
    /// Parked queries whose shard did not recover within the retry window
    /// (these also count toward failed_over_inflight — the retry machinery
    /// only defers the failure, it never hides one).
    uint64_t retry_exhausted = 0;
    /// Queries currently parked awaiting a shard recovery.
    uint64_t retry_parked = 0;
  };
  Stats stats() const;
  std::string StatsText() const;

  /// Optional per-shard respawn-count source (e.g. the process
  /// supervisor's Restarts()); shown in StatsText so an operator can see
  /// crash-loop churn next to link health. Must be thread-safe; set before
  /// Start().
  void SetRespawnCounter(std::function<uint64_t(size_t)> counter) {
    respawn_counter_ = std::move(counter);
  }

 private:
  struct ClientConn {
    explicit ClientConn(size_t max_frame)
        : assembler(max_frame) {}
    uint64_t id = 0;
    int fd = -1;
    net::FrameAssembler assembler;
    std::string write_buffer;
    size_t write_offset = 0;
    bool reads_paused = false;
    bool close_after_flush = false;
    /// Queries routed to a shard and not yet answered back to this client.
    size_t inflight = 0;
  };

  struct Route {
    uint64_t conn_id = 0;
    uint64_t client_tag = 0;
    /// Original query (still carrying the client's own tag), kept only
    /// for keyed routes so a failover can re-send it verbatim.
    net::WireQuery query;
    /// Failovers this query may still survive; 0 fails fast.
    size_t retries_left = 0;
    /// While parked: when to give up waiting for the shard to recover.
    int64_t park_deadline_ns = 0;
  };

  struct ShardLink {
    enum class State { kBackoff, kConnecting, kProbing, kHealthy };
    size_t index = 0;
    ShardAddress addr;
    State state = State::kBackoff;
    int fd = -1;
    std::unique_ptr<net::FrameAssembler> assembler;
    std::string write_buffer;
    size_t write_offset = 0;
    double backoff_ms = 0.0;
    int64_t next_dial_ns = 0;   // kBackoff: earliest redial
    int64_t dial_deadline_ns = 0;
    int64_t probe_deadline_ns = 0;
    int64_t last_probe_ns = 0;
    bool probe_outstanding = false;
    std::map<uint64_t, Route> inflight;  // router tag → origin
    /// Keyed routes waiting out a failover; re-sent when the link passes
    /// its next health probe, expired by OnTick past their deadline.
    std::vector<Route> parked;
  };

  // Loop-thread only.
  void HandleAccept();
  void HandleClientReadable(uint64_t conn_id);
  void HandleClientWritable(uint64_t conn_id);
  void ProcessClientFrames(ClientConn& conn);
  void RouteQuery(ClientConn& conn, net::WireQuery query);
  void RespondToClient(ClientConn& conn, const net::WireResult& result);
  void QueueClientWrite(ClientConn& conn, std::string bytes);
  void FlushClient(ClientConn& conn);
  void UpdateClientInterest(ClientConn& conn);
  void AbortClient(ClientConn& conn, const Status& error);
  void CloseClient(uint64_t conn_id);

  void StartDial(ShardLink& link);
  void HandleShardEvent(size_t shard, bool readable, bool writable,
                        bool error);
  void ProcessShardFrames(ShardLink& link);
  void QueueShardWrite(ShardLink& link, std::string bytes);
  void FlushShard(ShardLink& link);
  void UpdateShardInterest(ShardLink& link);
  void SendProbe(ShardLink& link);
  /// Tears the link down: parks keyed in-flight routes for a post-recovery
  /// re-send (retry budget permitting), fails the rest with kUnavailable,
  /// and schedules a jittered backoff redial.
  void FailShard(ShardLink& link, const Status& reason);
  /// Re-sends every parked route after `link` passed a health probe.
  void FlushParked(ShardLink& link);
  void ResendRoute(Route route);
  /// Fails a parked route back to its client (recovery window elapsed).
  void ExpireParked(Route& route, const ShardLink& link);
  /// Next backoff interval for the link, jittered; advances the
  /// deterministic jitter stream (loop thread only).
  double JitteredBackoff(double ms);
  void ScheduleRedial(ShardLink& link, int64_t now);
  void OnTick();

  std::vector<ShardAddress> shard_addrs_;
  RouterConfig config_;
  ConsistentHashRing ring_;
  net::EventLoop loop_;
  std::thread loop_thread_;
  bool started_ = false;
  bool stopped_ = false;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  uint64_t next_conn_id_ = 1;
  uint64_t next_router_tag_ = 1;
  std::map<uint64_t, std::unique_ptr<ClientConn>> connections_;
  std::vector<ShardLink> links_;

  std::unique_ptr<std::atomic<bool>[]> healthy_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> open_connections_{0};
  std::atomic<uint64_t> routed_{0};
  std::atomic<uint64_t> replies_{0};
  std::atomic<uint64_t> rejected_unavailable_{0};
  std::atomic<uint64_t> rejected_backpressure_{0};
  std::atomic<uint64_t> shard_reconnects_{0};
  std::atomic<uint64_t> failed_over_inflight_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> retried_{0};
  std::atomic<uint64_t> retry_exhausted_{0};
  std::atomic<uint64_t> retry_parked_{0};
  uint64_t jitter_state_ = 0;  // loop thread only
  std::function<uint64_t(size_t)> respawn_counter_;
  /// Routed-but-unanswered queries across all shards (drain probe).
  std::atomic<uint64_t> total_inflight_{0};
};

}  // namespace upa::cluster
