// Batch expression kernels for the columnar engine.
//
// CompileExpr turns an Expr tree into a CompiledExpr: column names are
// resolved to schema positions once, string literals are pre-resolved to
// dictionary-code thresholds (the dictionary is sorted, so `col < "lit"`
// becomes an integer comparison against lower_bound("lit")), and literal
// numerics are pre-converted to double. Kernel inner loops then touch only
// typed arrays — no name lookups, no variants, no std::function.
//
// Evaluation semantics replicate the row interpreter *exactly*, including
// its abort behaviour: arithmetic is double-precision (int cells promote
// like AsNumeric), comparisons follow Value Compare/ValueEquals (numerics
// compare as double; 1 == 1.0), AND/OR short-circuit per row via selection
// vectors (the rhs is only evaluated on rows surviving/failing the lhs, so
// a guarded division-by-zero never fires), and type errors abort with the
// row path's messages — but only when at least one row is actually
// evaluated, mirroring the interpreter's laziness.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "relational/columnar.h"
#include "relational/expr.h"
#include "relational/schema.h"

namespace upa::rel {

/// One column of a vectorized relation: the physical column plus the
/// row-index vector mapping relation positions to physical rows.
struct BoundColumn {
  const Column* column = nullptr;
  const uint32_t* row_ids = nullptr;
};

/// Schema-position-aligned column bindings for one relation.
using BatchInput = std::vector<BoundColumn>;

/// A compiled expression node (tree mirroring the Expr tree).
struct CompiledExpr {
  Expr::Kind kind = Expr::Kind::kLiteral;
  BinOp op = BinOp::kAdd;
  /// Value category: string expressions are only columns or literals.
  bool is_string = false;

  // kColumn
  uint32_t col_pos = 0;
  ValueType col_type = ValueType::kInt;

  // kLiteral (numeric literals pre-converted like AsNumeric would)
  double num_lit = 0.0;
  std::string str_lit;

  // kBinary comparison over strings
  bool str_cmp = false;        // both operands are strings
  bool mixed_cmp = false;      // one string, one numeric → abort on eval
  // After compilation the literal (if any) is always on the rhs (the op is
  // mirrored when swapping), so only two string forms remain:
  enum class StrForm { kColCol, kColLit, kLitLit };
  StrForm str_form = StrForm::kColCol;
  uint32_t lit_lb = 0;         // lower_bound(str_lit) in lhs column's dict
  uint32_t lit_ub = 0;         // upper_bound(str_lit); found ⇔ lb < ub
  int lit_cmp = 0;             // kLitLit: sign of compare(lhs, rhs)

  // kInSet
  std::vector<double> num_set;      // numeric elements (numeric lhs)
  std::vector<uint32_t> code_set;   // string elements as lhs-dict codes
  bool lit_in_set = false;          // kInSet over a string literal lhs

  std::unique_ptr<CompiledExpr> lhs, rhs;
};

/// Compiles `expr` against a relation whose schema positions map to the
/// physical columns in `columns` (for dictionary access). Aborts on
/// unknown column names, like Bind().
CompiledExpr CompileExpr(const ExprPtr& expr, const Schema& schema,
                         const std::vector<const Column*>& columns);

/// Appends to `out` the positions from sel[0..n) where `e` is truthy,
/// preserving order (sel must be strictly increasing; out stays sorted).
void FilterKernel(const CompiledExpr& e, const BatchInput& in,
                  const uint32_t* sel, size_t n, SelVector& out);

/// out[i] = numeric value of `e` at position sel[i], for i in [0, n).
/// Boolean sub-expressions yield 0.0/1.0 exactly like the interpreter.
void ProjectKernel(const CompiledExpr& e, const BatchInput& in,
                   const uint32_t* sel, size_t n, double* out);

}  // namespace upa::rel
