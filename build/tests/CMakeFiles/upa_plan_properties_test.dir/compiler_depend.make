# Empty compiler generated dependencies file for upa_plan_properties_test.
# This may be replaced when dependencies are built.
