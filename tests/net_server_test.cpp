// Loopback tests of the TCP front door (src/net/server.h, client.h).
//
// The centrepiece is the differential test: N threaded wire clients against
// a served UpaService, then the same request sequence replayed sequentially
// on a fresh in-process service — released values, enforcer decisions,
// registry contents and accountant balances must be BIT-identical, proving
// the network layer adds transport and nothing else. The rest covers the
// protection machinery: deadlines, oversize frames, slow-loris writes,
// pipelining caps, mid-request disconnects (budget refunded, connection
// reaped), idle reaping, the connection cap, and the poll(2) fallback.
#include "net/server.h"

#include <dirent.h>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "net/client.h"
#include "upa/simple_query.h"

namespace upa::net {
namespace {

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 4, .default_partitions = 4});
  return ctx;
}

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

core::QueryInstance CountQuery(size_t n, const std::string& name) {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  auto records = std::make_shared<std::vector<int>>(n, 0);
  std::iota(records->begin(), records->end(), 0);
  spec.records = records;
  spec.map_record = [](const int&) { return core::Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

/// Pool for gated queries only. A gated map chunk spins until the test
/// opens the gate, wedging whichever thread runs it — and the shared
/// pool's help-running (a waiting ParallelFor pops queued chunks) would
/// let an UNRELATED query's runner pick up a spinning chunk and starve
/// the very queries the tests race against the gate. A separate pool
/// confines the spinning.
engine::ExecContext& GateCtx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 4});
  return ctx;
}

core::QueryInstance GatedQuery(size_t n,
                               std::shared_ptr<std::atomic<bool>> gate,
                               const std::string& name) {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = &GateCtx();
  auto records = std::make_shared<std::vector<int>>(n, 0);
  spec.records = records;
  spec.map_record = [gate](const int&) {
    while (!gate->load(std::memory_order_acquire)) std::this_thread::yield();
    return core::Vec{1.0};
  };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

/// Toy wire-SQL: "count:<n>" → counting query over n records; "gate:<n>" →
/// the same but its map phase blocks on `gate`. The query name is the SQL
/// text, so a replayed in-process request with the same text derives the
/// same fingerprint and hits the same cache entries.
QueryCompiler TestCompiler(std::shared_ptr<std::atomic<bool>> gate) {
  return [gate](const WireQuery& wire) -> Result<core::QueryInstance> {
    if (wire.sql.rfind("count:", 0) == 0) {
      return CountQuery(std::stoul(wire.sql.substr(6)), wire.sql);
    }
    if (wire.sql.rfind("gate:", 0) == 0) {
      return GatedQuery(std::stoul(wire.sql.substr(5)), gate, wire.sql);
    }
    return Status::InvalidArgument("unknown toy SQL: " + wire.sql);
  };
}

service::ServiceConfig FastConfig() {
  service::ServiceConfig config;
  config.upa.sample_n = 100;
  // Noise stays ON: the differential claim is strongest when the released
  // value includes the seeded Laplace draw.
  return config;
}

/// Poll until `pred` or ~5s. The net tests must not hang forever on a bug.
bool WaitFor(const std::function<bool()>& pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

struct ServerHarness {
  explicit ServerHarness(ServerConfig net_cfg = {},
                         service::ServiceConfig svc_cfg = FastConfig())
      : gate(std::make_shared<std::atomic<bool>>(false)),
        service(&Ctx(), svc_cfg),
        server(&service, TestCompiler(gate), net_cfg) {
    Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<Client> Connect() {
    auto connected = Client::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    return std::move(connected).value();
  }

  std::shared_ptr<std::atomic<bool>> gate;
  service::UpaService service;
  Server server;
};

WireQuery MakeWireQuery(const std::string& tenant, const std::string& dataset,
                        const std::string& sql, uint64_t seed) {
  WireQuery query;
  query.tenant = tenant;
  query.dataset_id = dataset;
  query.epsilon = 0.1;
  query.seed = seed;
  query.fingerprint = Fnv1a(sql);
  query.sql = sql;
  return query;
}

TEST(NetServer, AnswersACountQueryEndToEnd) {
  ServerHarness harness;
  auto client = harness.Connect();
  auto result = client->Query(
      MakeWireQuery("alice", "ds", "count:5000", /*seed=*/1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().ok()) << result.value().status().ToString();
  const service::QueryResponse& response = result.value().response;
  EXPECT_NEAR(response.released, 5000.0, 200.0);
  EXPECT_DOUBLE_EQ(response.epsilon, 0.1);
  EXPECT_EQ(harness.service.accountant().Spent("ds"), 0.1);
}

// The acceptance-criteria differential: concurrent wire clients vs a
// sequential in-process replay, bit for bit.
TEST(NetServer, LoopbackReleasesAreBitIdenticalToInProcessReplay) {
  constexpr size_t kClients = 4;
  constexpr size_t kQueries = 5;

  // Phase 1: threaded clients over loopback, one tenant + one private
  // dataset per client (the bit-identity regime: one writer per dataset).
  std::vector<std::vector<WireResult>> over_wire(kClients);
  {
    ServerHarness harness;
    std::vector<std::thread> workers;
    for (size_t i = 0; i < kClients; ++i) {
      workers.emplace_back([&, i] {
        auto client = harness.Connect();
        for (size_t q = 0; q < kQueries; ++q) {
          std::string sql = "count:" + std::to_string(2000 + 100 * i);
          auto result = client->Query(MakeWireQuery(
              "tenant" + std::to_string(i), "ds" + std::to_string(i), sql,
              /*seed=*/1000 * i + q));
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          ASSERT_TRUE(result.value().ok())
              << result.value().status().ToString();
          over_wire[i].push_back(result.value());
        }
      });
    }
    for (auto& worker : workers) worker.join();

    // Phase 2: the same sequences, replayed sequentially in-process on a
    // fresh service. Everything observable must match bit for bit.
    service::UpaService replay(&Ctx(), FastConfig());
    for (size_t i = 0; i < kClients; ++i) {
      for (size_t q = 0; q < kQueries; ++q) {
        std::string sql = "count:" + std::to_string(2000 + 100 * i);
        service::QueryRequest request;
        request.tenant = "tenant" + std::to_string(i);
        request.dataset_id = "ds" + std::to_string(i);
        request.query = CountQuery(2000 + 100 * i, sql);
        request.epsilon = 0.1;
        request.seed = 1000 * i + q;
        request.fingerprint = Fnv1a(sql);
        auto expected = replay.Execute(request);
        ASSERT_TRUE(expected.ok()) << expected.status().ToString();
        const service::QueryResponse& want = expected.value();
        const service::QueryResponse& got = over_wire[i][q].response;
        EXPECT_EQ(Bits(want.released), Bits(got.released))
            << "client " << i << " query " << q;
        EXPECT_EQ(Bits(want.epsilon), Bits(got.epsilon));
        EXPECT_EQ(Bits(want.local_sensitivity), Bits(got.local_sensitivity));
        EXPECT_EQ(Bits(want.out_range.lo), Bits(got.out_range.lo));
        EXPECT_EQ(Bits(want.out_range.hi), Bits(got.out_range.hi));
        EXPECT_EQ(want.attack_suspected, got.attack_suspected);
        EXPECT_EQ(want.records_removed, got.records_removed);
        EXPECT_EQ(want.degenerate_sensitivity, got.degenerate_sensitivity);
        EXPECT_EQ(want.sensitivity_cache_hit, got.sensitivity_cache_hit);
        EXPECT_EQ(want.dataset_epoch, got.dataset_epoch);
      }
    }

    // Registry contents and accountant balances, bit for bit.
    for (size_t i = 0; i < kClients; ++i) {
      std::string ds = "ds" + std::to_string(i);
      auto served = harness.service.DebugState(ds);
      auto replayed = replay.DebugState(ds);
      EXPECT_EQ(served.epoch, replayed.epoch);
      EXPECT_EQ(Bits(harness.service.accountant().Spent(ds)),
                Bits(replay.accountant().Spent(ds)));
      ASSERT_EQ(served.registry.size(), replayed.registry.size());
      for (size_t r = 0; r < served.registry.size(); ++r) {
        ASSERT_EQ(served.registry[r].size(), replayed.registry[r].size());
        if (!served.registry[r].empty()) {
          EXPECT_EQ(std::memcmp(served.registry[r].data(),
                                replayed.registry[r].data(),
                                served.registry[r].size() * sizeof(double)),
                    0)
              << "registry row " << r << " of " << ds;
        }
      }
    }
  }
}

TEST(NetServer, ResponsesCompleteOutOfOrderAcrossDatasets) {
  ServerHarness harness;
  auto client = harness.Connect();
  // Query A blocks on the gate; query B (other tenant + dataset) is free.
  auto tag_a = client->Send(MakeWireQuery("a", "dsa", "gate:500", 1));
  ASSERT_TRUE(tag_a.ok());
  auto tag_b = client->Send(MakeWireQuery("b", "dsb", "count:500", 1));
  ASSERT_TRUE(tag_b.ok());
  // B's response arrives while A is still running: Await must match by
  // client_tag, not arrival order.
  auto b = client->Await(tag_b.value());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b.value().ok());
  harness.gate->store(true, std::memory_order_release);
  auto a = client->Await(tag_a.value());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(a.value().ok());
}

TEST(NetServer, QueuedDeadlineExpiresOverTheWire) {
  ServerHarness harness;
  auto client = harness.Connect();
  // First request occupies the tenant; the second's deadline expires while
  // queued behind it and the watchdog fails it with DEADLINE_EXCEEDED.
  auto gated = client->Send(MakeWireQuery("t", "ds", "gate:500", 1));
  ASSERT_TRUE(gated.ok());
  WireQuery late = MakeWireQuery("t", "ds", "count:500", 2);
  late.deadline_ms = 30;
  auto tag = client->Send(late);
  ASSERT_TRUE(tag.ok());
  auto result = client->Await(tag.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().code, StatusCode::kDeadlineExceeded);
  harness.gate->store(true, std::memory_order_release);
  auto first = client->Await(gated.value());
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().ok());
  // Only the released query was charged.
  EXPECT_EQ(Bits(harness.service.accountant().Spent("ds")), Bits(0.1));
}

TEST(NetServer, OversizeFrameIsRejectedWithErrorAndClose) {
  ServerConfig net_cfg;
  net_cfg.max_frame_bytes = 1024;
  ServerHarness harness(net_cfg);
  auto client = harness.Connect();
  WireQuery big = MakeWireQuery("t", "ds", "count:100", 1);
  big.sql.assign(4096, 'x');
  ASSERT_TRUE(client->SendBytes(EncodeQueryFrame(big)).ok());
  auto frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame.value().type, FrameType::kError);
  Status error = Status::Ok();
  ASSERT_TRUE(DecodeErrorPayload(frame.value().payload, &error).ok());
  EXPECT_EQ(error.code(), StatusCode::kResourceExhausted);
  // The stream is condemned: the server closes after the error frame.
  auto next = client->ReadFrame();
  EXPECT_FALSE(next.ok());
}

TEST(NetServer, CorruptFrameIsRejectedWithErrorAndClose) {
  ServerHarness harness;
  auto client = harness.Connect();
  std::string bytes = EncodeQueryFrame(MakeWireQuery("t", "ds", "count:9", 1));
  bytes[kFrameHeaderBytes + 3] ^= 0x40;  // flip one payload bit
  ASSERT_TRUE(client->SendBytes(bytes).ok());
  auto frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame.value().type, FrameType::kError);
  Status error = Status::Ok();
  ASSERT_TRUE(DecodeErrorPayload(frame.value().payload, &error).ok());
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(WaitFor([&] { return harness.server.stats().protocol_errors >= 1; }));
}

TEST(NetServer, SlowLorisByteAtATimeRequestStillCompletes) {
  ServerHarness harness;
  auto client = harness.Connect();
  std::string bytes =
      EncodeQueryFrame(MakeWireQuery("t", "ds", "count:500", 1));
  for (size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_TRUE(client->SendBytes(std::string_view(bytes).substr(i, 1)).ok());
    if (i % 17 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  auto frame = client->ReadFrame(/*timeout_ms=*/20000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame.value().type, FrameType::kQueryResponse);
  WireResult result;
  ASSERT_TRUE(DecodeResultPayload(frame.value().payload, &result).ok());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(NetServer, MidRequestDisconnectRefundsBudgetAndReapsConnection) {
  ServerHarness harness;
  {
    auto client = harness.Connect();
    auto tag = client->Send(MakeWireQuery("t", "ds", "gate:500", 1));
    ASSERT_TRUE(tag.ok());
    // Wait until the request is charged (it runs, blocked on the gate).
    ASSERT_TRUE(WaitFor(
        [&] { return harness.service.accountant().Spent("ds") > 0.0; }));
    // Client vanishes mid-request.
  }
  // The server reaps the connection and trips the request's cancel token.
  ASSERT_TRUE(WaitFor(
      [&] { return harness.server.stats().disconnect_cancels >= 1; }));
  ASSERT_TRUE(
      WaitFor([&] { return harness.server.stats().open_connections == 0; }));
  harness.gate->store(true, std::memory_order_release);
  // The run observes the cancellation before releasing → full refund.
  ASSERT_TRUE(WaitFor(
      [&] { return harness.service.accountant().Spent("ds") == 0.0; }));
}

TEST(NetServer, PipelineCapRejectsExcessRequestsWithResourceExhausted) {
  ServerConfig net_cfg;
  net_cfg.max_pipelined_per_connection = 2;
  ServerHarness harness(net_cfg);
  auto client = harness.Connect();
  std::vector<uint64_t> tags;
  for (int i = 0; i < 4; ++i) {
    // All four target one tenant: the first blocks on the gate, so none
    // complete until the gate opens and the connection's in-flight count
    // climbs deterministically.
    auto tag = client->Send(
        MakeWireQuery("t", "ds", i == 0 ? "gate:500" : "count:500", 10 + i));
    ASSERT_TRUE(tag.ok());
    tags.push_back(tag.value());
  }
  // Requests 3 and 4 exceeded the cap: rejected without touching the
  // service (their rejections arrive while 1 and 2 are still pending).
  auto third = client->Await(tags[2]);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third.value().code, StatusCode::kResourceExhausted);
  auto fourth = client->Await(tags[3]);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(fourth.value().code, StatusCode::kResourceExhausted);
  harness.gate->store(true, std::memory_order_release);
  EXPECT_TRUE(client->Await(tags[0]).value().ok());
  EXPECT_TRUE(client->Await(tags[1]).value().ok());
}

TEST(NetServer, ConnectionCapClosesSurplusClients) {
  ServerConfig net_cfg;
  net_cfg.max_connections = 1;
  ServerHarness harness(net_cfg);
  auto first = harness.Connect();
  ASSERT_TRUE(
      first->Query(MakeWireQuery("t", "ds", "count:100", 1)).ok());
  // The second connection is accepted then immediately closed.
  auto second = harness.Connect();
  auto result = second->Query(MakeWireQuery("t", "ds", "count:100", 2));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(WaitFor(
      [&] { return harness.server.stats().rejected_connections >= 1; }));
  // The first connection still works.
  EXPECT_TRUE(first->Query(MakeWireQuery("t", "ds", "count:100", 3)).ok());
}

TEST(NetServer, IdleConnectionsAreReaped) {
  ServerConfig net_cfg;
  net_cfg.idle_timeout_ms = 50;
  net_cfg.tick_interval_ms = 10;
  ServerHarness harness(net_cfg);
  auto client = harness.Connect();
  ASSERT_TRUE(WaitFor([&] { return harness.server.stats().idle_closed >= 1; }));
  auto frame = client->ReadFrame(/*timeout_ms=*/2000);
  EXPECT_FALSE(frame.ok());
}

TEST(NetServer, StatsTravelOverTheWire) {
  ServerHarness harness;
  auto client = harness.Connect();
  ASSERT_TRUE(client->Query(MakeWireQuery("t", "ds", "count:500", 1)).ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.value().find("== net =="), std::string::npos);
  EXPECT_NE(stats.value().find("datasets:"), std::string::npos);
}

TEST(NetServer, PollFallbackServesQueries) {
  ServerConfig net_cfg;
  net_cfg.poller = PollerKind::kPoll;
  ServerHarness harness(net_cfg);
  auto client = harness.Connect();
  auto result = client->Query(MakeWireQuery("t", "ds", "count:500", 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok());
}

TEST(NetServer, UncompilableQueryIsAnsweredNotDropped) {
  ServerHarness harness;
  auto client = harness.Connect();
  auto result = client->Query(MakeWireQuery("t", "ds", "DROP TABLE", 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().code, StatusCode::kInvalidArgument);
  // The connection survives a compile error (unlike a framing error).
  EXPECT_TRUE(client->Query(MakeWireQuery("t", "ds", "count:100", 2)).ok());
}

TEST(NetServer, GracefulStopDrainsInFlightResponses) {
  ServerHarness harness;
  auto client = harness.Connect();
  auto tag = client->Send(MakeWireQuery("t", "ds", "count:2000", 1));
  ASSERT_TRUE(tag.ok());
  harness.server.Stop();  // must flush the response before closing
  auto result = client->Await(tag.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok());
}

// ---------------------------------------------------------------------------
// Client edge: tag bookkeeping, the stale-reply poisoning rule, and fd
// hygiene. These guard the contract the cluster router leans on — a Client
// whose request/response stream desynchronizes must fail loudly and stay
// failed, never hand a response to the wrong caller.
// ---------------------------------------------------------------------------

/// A connected AF_UNIX socket pair: the client end (non-blocking, wrapped in
/// a Client) and the raw peer end the test scripts byte-for-byte. Lets a
/// test play "malicious server" without a listener.
struct ScriptedPeer {
  ScriptedPeer() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    peer_fd = fds[0];
    int flags = ::fcntl(fds[1], F_GETFL, 0);
    ::fcntl(fds[1], F_SETFL, flags | O_NONBLOCK);
    client = Client::FromConnectedFd(fds[1]);
  }
  ~ScriptedPeer() {
    if (peer_fd >= 0) ::close(peer_fd);
  }

  void WriteAll(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(peer_fd, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  int peer_fd = -1;
  std::unique_ptr<Client> client;
};

TEST(NetClientEdge, DuplicateInFlightTagIsRejected) {
  ServerHarness harness;
  auto client = harness.Connect();
  WireQuery first = MakeWireQuery("t", "ds", "count:500", 1);
  first.client_tag = 7;
  ASSERT_TRUE(client->Send(first).ok());
  // Re-sending tag 7 while it is outstanding would make the response
  // matching ambiguous; the client must refuse before any bytes go out.
  WireQuery dup = MakeWireQuery("t", "ds", "count:500", 2);
  dup.client_tag = 7;
  auto rejected = client->Send(dup);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  // The rejection is local bookkeeping, not poison: the original request
  // still completes and the connection stays healthy.
  auto result = client->Await(7);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok());
  EXPECT_TRUE(client->Query(MakeWireQuery("t", "ds", "count:100", 3)).ok());
}

TEST(NetClientEdge, AwaitOfNeverSentTagFailsFastWithoutPoisoning) {
  ServerHarness harness;
  auto client = harness.Connect();
  auto result = client->Await(/*tag=*/999, /*timeout_ms=*/5000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // Must fail immediately (no socket wait) and leave the connection usable.
  EXPECT_TRUE(client->Query(MakeWireQuery("t", "ds", "count:100", 1)).ok());
}

TEST(NetClientEdge, ResponseForUnknownTagPoisonsTheConnection) {
  ScriptedPeer peer;
  auto sent = peer.client->Send(MakeWireQuery("t", "ds", "count:10", 1));
  ASSERT_TRUE(sent.ok());
  // The "server" answers a tag nothing is waiting for — a stale reply from
  // a request some earlier caller abandoned, or a server-side tag bug.
  WireResult stale;
  stale.client_tag = sent.value() + 1000;
  peer.WriteAll(EncodeResultFrame(stale));
  auto result = peer.client->Await(sent.value(), /*timeout_ms=*/2000);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown client_tag"),
            std::string::npos)
      << result.status().ToString();
  // Poison is terminal: every later call fails the same way instead of
  // resynchronizing onto a stream whose pairing is lost.
  auto after = peer.client->Send(MakeWireQuery("t", "ds", "count:10", 2));
  ASSERT_FALSE(after.ok());
  EXPECT_NE(after.status().message().find("poisoned"), std::string::npos);
}

TEST(NetClientEdge, TimedOutAwaitPoisonsSoALateReplyIsNeverDelivered) {
  ScriptedPeer peer;
  auto sent = peer.client->Send(MakeWireQuery("t", "ds", "count:10", 1));
  ASSERT_TRUE(sent.ok());
  // No reply within the deadline: the waiter gives up...
  auto timed_out = peer.client->Await(sent.value(), /*timeout_ms=*/50);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  // ...and the correctly-tagged reply lands late. Delivering it now would
  // hand a response to a caller that already reported failure (and, for a
  // Query() user reusing the connection, potentially to the WRONG request).
  // The timeout must have latched the connection broken.
  WireResult late;
  late.client_tag = sent.value();
  peer.WriteAll(EncodeResultFrame(late));
  auto retry = peer.client->Await(sent.value(), /*timeout_ms=*/2000);
  ASSERT_FALSE(retry.ok());
  EXPECT_EQ(retry.status().code(), StatusCode::kDeadlineExceeded);
}

size_t CountOpenFds() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(NetClientEdge, FailedConnectsLeakNoFds) {
  // A port that was just bound and released: connects to it are refused.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  const size_t before = CountOpenFds();
  for (int i = 0; i < 20; ++i) {
    auto refused = Client::Connect("127.0.0.1", dead_port, /*timeout_ms=*/500);
    EXPECT_FALSE(refused.ok());
  }
  EXPECT_EQ(CountOpenFds(), before);
}

TEST(NetClientEdge, ClientPoolHandsOutIndependentConnections) {
  ServerHarness harness;
  auto pool = ClientPool::Dial("127.0.0.1", harness.server.port(), 4);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  ASSERT_EQ(pool.value().size(), 4u);
  // Each connection works on its own; tags are per-connection, so the same
  // auto-assigned tag on different pool members must not interfere.
  for (size_t i = 0; i < pool.value().size(); ++i) {
    auto result = pool.value().at(i).Query(
        MakeWireQuery("t", "ds" + std::to_string(i), "count:200", i + 1));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().ok());
  }
}

TEST(NetClientEdge, ClientPoolDialFailureClosesEveryPartialConnection) {
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  const size_t before = CountOpenFds();
  auto pool = ClientPool::Dial("127.0.0.1", dead_port, 8, /*timeout_ms=*/500);
  EXPECT_FALSE(pool.ok());
  EXPECT_EQ(CountOpenFds(), before);
}

}  // namespace
}  // namespace upa::net
