file(REMOVE_RECURSE
  "CMakeFiles/dp_gaussian_test.dir/dp_gaussian_test.cpp.o"
  "CMakeFiles/dp_gaussian_test.dir/dp_gaussian_test.cpp.o.d"
  "dp_gaussian_test"
  "dp_gaussian_test.pdb"
  "dp_gaussian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_gaussian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
