// Cluster scaling: QPS through the router at 1, 2 and 4 shard PROCESSES
// (real fork/exec of examples/upa_shard, not in-process servers).
//
// The workload is latency-bound by construction — every query sleeps
// UPA_LAT_US in its phase runner and each shard serialises execution
// (--max-in-flight 1) — so a shard's throughput is pinned at ~1/latency
// regardless of host CPU count, and adding shard processes is the only way
// to add throughput. That is the regime the router is for (shard-local
// work dominated by I/O / enforcement latency, paper §VI-D); it also makes
// the experiment honest on 1-core CI machines, where CPU-bound shards
// would just timeshare one core and show no scaling.
//
// Each client thread owns one connection and one (tenant, dataset) pinned
// to a known shard via the router's own ring, so load is balanced by
// construction rather than by luck of the hash.
//
// A second phase measures the exactly-once machinery: steady-state dedup
// replay throughput (re-submitting completed idempotency keys, answered
// from the shard's journaled window without re-execution) and the latency
// distribution of a keyed workload that survives one SIGKILL failover
// (park → respawn → journal replay → health probe → resend).
//
// Emits BENCH_cluster.json and BENCH_failover.json (override with
// UPA_BENCH_JSON / UPA_FAILOVER_JSON). Knobs: UPA_RUNS (queries per
// client, default 10), UPA_LAT_US (per-query sleep, default 4000),
// UPA_SEED.
#include <signal.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "cluster/shard_process.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "net/client.h"

#ifndef UPA_SHARD_BIN
#error "UPA_SHARD_BIN must point at the upa_shard binary"
#endif

using namespace upa;

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr
             ? fallback
             : static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

/// Dataset names pinned one per client thread such that thread t's dataset
/// lives on shard t % num_shards (probed through the same ring the router
/// uses — the ring is deterministic across processes).
std::vector<std::string> BalancedDatasets(const cluster::ConsistentHashRing& ring,
                                          size_t num_shards, size_t clients) {
  std::vector<std::string> out(clients);
  size_t candidate = 0;
  for (size_t t = 0; t < clients; ++t) {
    const size_t want = t % num_shards;
    for (;; ++candidate) {
      std::string name = "ds" + std::to_string(candidate);
      if (ring.ShardFor(name) == want) {
        out[t] = std::move(name);
        ++candidate;
        break;
      }
    }
  }
  return out;
}

struct RunResult {
  size_t shards = 0;
  size_t queries = 0;
  double wall_seconds = 0;
  double qps = 0;
};

RunResult RunAtScale(size_t num_shards, size_t clients, size_t runs,
                     size_t lat_us, uint64_t seed,
                     const std::string& tmp_root) {
  // Fixed ports picked up front: the supervisor respawns at the same
  // address, and the router keeps redialing it.
  std::vector<cluster::ShardAddress> addrs(num_shards);
  std::vector<uint16_t> ports(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto port = cluster::PickFreePort();
    UPA_CHECK_MSG(port.ok(), port.status().ToString());
    ports[i] = port.value();
    addrs[i].port = ports[i];
  }

  cluster::ShardSupervisor supervisor;
  for (size_t i = 0; i < num_shards; ++i) {
    cluster::ShardProcessSpec spec;
    spec.binary = UPA_SHARD_BIN;
    spec.args = {"--port",          std::to_string(ports[i]),
                 "--journal-dir",   tmp_root + "/shard" + std::to_string(i),
                 "--shard-name",    "shard-" + std::to_string(i),
                 "--threads",       "1",
                 "--max-in-flight", "1",
                 "--sample-n",      "8"};
    auto slot = supervisor.Launch(std::move(spec));
    UPA_CHECK_MSG(slot.ok(), slot.status().ToString());
  }

  cluster::RouterConfig router_cfg;
  router_cfg.backoff_initial_ms = 10.0;  // shards are still booting
  cluster::Router router(addrs, router_cfg);
  Status started = router.Start();
  UPA_CHECK_MSG(started.ok(), started.ToString());

  // Wait for every shard to pass its health probe.
  for (int spin = 0; spin < 15000; ++spin) {
    bool all = true;
    for (size_t i = 0; i < num_shards; ++i) all = all && router.ShardHealthy(i);
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (size_t i = 0; i < num_shards; ++i) {
    UPA_CHECK_MSG(router.ShardHealthy(i),
                  "shard " + std::to_string(i) + " never became healthy");
  }

  const std::vector<std::string> datasets =
      BalancedDatasets(router.ring(), num_shards, clients);
  const std::string sql = "lat:8:" + std::to_string(lat_us);

  Stopwatch wall;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < clients; ++t) {
    workers.emplace_back([&, t] {
      auto connected = net::Client::Connect("127.0.0.1", router.port());
      UPA_CHECK_MSG(connected.ok(), connected.status().ToString());
      std::unique_ptr<net::Client> client = std::move(connected).value();
      for (size_t q = 0; q < runs; ++q) {
        net::WireQuery query;
        query.tenant = "t" + std::to_string(t);
        query.dataset_id = datasets[t];
        query.epsilon = 0.1;
        query.seed = seed + t * 10000 + q;
        query.sql = sql;
        auto result = client->Query(query);
        UPA_CHECK_MSG(result.ok(), result.status().ToString());
        UPA_CHECK_MSG(result.value().ok(), result.value().status().ToString());
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double wall_seconds = wall.ElapsedSeconds();

  router.Stop();
  supervisor.StopAll();

  RunResult r;
  r.shards = num_shards;
  r.queries = clients * runs;
  r.wall_seconds = wall_seconds;
  r.qps = r.queries / wall_seconds;
  return r;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = std::min(samples.size() - 1,
                              static_cast<size_t>(p * samples.size()));
  return samples[idx];
}

struct FailoverResult {
  size_t fresh = 0;
  size_t replays = 0;
  double replay_qps = 0;
  double fresh_qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  uint64_t retried = 0;
  uint64_t respawns = 0;
};

FailoverResult RunFailover(size_t lat_us, uint64_t seed,
                           const std::string& tmp_root) {
  constexpr size_t kShards = 2;
  constexpr size_t kWarmKeys = 16;      // fresh keyed queries per dataset
  constexpr size_t kReplayRounds = 5;   // re-submissions of every warm key
  constexpr size_t kFailoverRuns = 24;  // timed queries around one SIGKILL

  std::vector<cluster::ShardAddress> addrs(kShards);
  std::vector<uint16_t> ports(kShards);
  for (size_t i = 0; i < kShards; ++i) {
    auto port = cluster::PickFreePort();
    UPA_CHECK_MSG(port.ok(), port.status().ToString());
    ports[i] = port.value();
    addrs[i].port = ports[i];
  }

  cluster::ShardSupervisor::Options sup_opts;
  sup_opts.backoff_initial_ms = 10.0;
  sup_opts.backoff_max_ms = 200.0;
  sup_opts.backoff_jitter_seed = seed + 1;
  cluster::ShardSupervisor supervisor(sup_opts);
  for (size_t i = 0; i < kShards; ++i) {
    cluster::ShardProcessSpec spec;
    spec.binary = UPA_SHARD_BIN;
    spec.args = {"--port",        std::to_string(ports[i]),
                 "--journal-dir", tmp_root + "/shard" + std::to_string(i),
                 "--shard-name",  "failover-" + std::to_string(i),
                 "--threads",     "1",
                 "--sample-n",    "8",
                 "--budget",      "100"};
    auto slot = supervisor.Launch(std::move(spec));
    UPA_CHECK_MSG(slot.ok(), slot.status().ToString());
  }

  cluster::RouterConfig router_cfg;
  router_cfg.backoff_initial_ms = 5.0;
  router_cfg.backoff_max_ms = 100.0;
  router_cfg.backoff_jitter_seed = seed;
  router_cfg.retry_limit = 4;
  router_cfg.retry_timeout_ms = 15000.0;
  cluster::Router router(addrs, router_cfg);
  router.SetRespawnCounter(
      [&supervisor](size_t shard) { return supervisor.Restarts(shard); });
  Status started = router.Start();
  UPA_CHECK_MSG(started.ok(), started.ToString());
  for (int spin = 0; spin < 15000; ++spin) {
    bool all = true;
    for (size_t i = 0; i < kShards; ++i) all = all && router.ShardHealthy(i);
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::vector<std::string> datasets =
      BalancedDatasets(router.ring(), kShards, kShards);
  const std::string sql = "lat:8:" + std::to_string(lat_us);

  auto connected = net::Client::Connect("127.0.0.1", router.port());
  UPA_CHECK_MSG(connected.ok(), connected.status().ToString());
  std::unique_ptr<net::Client> client = std::move(connected).value();

  auto keyed = [&](size_t dataset, uint64_t key_seq) {
    net::WireQuery query;
    query.tenant = "bench";
    query.dataset_id = datasets[dataset];
    query.epsilon = 0.1;
    query.seed = seed + key_seq;
    query.sql = sql;
    query.client_nonce = 0xbe7ca11ULL + seed;
    query.client_seq = key_seq;
    return query;
  };
  auto run_one = [&](const net::WireQuery& query) {
    auto result = client->Query(query);
    UPA_CHECK_MSG(result.ok(), result.status().ToString());
    UPA_CHECK_MSG(result.value().ok(), result.value().status().ToString());
  };

  FailoverResult r;

  // Phase A — fresh keyed runs, then dedup replays of the same keys. The
  // replay path skips sampling/noise/charging entirely, so its throughput
  // is the journal window's lookup + response-decode cost.
  Stopwatch fresh_wall;
  for (size_t k = 0; k < kWarmKeys; ++k) {
    run_one(keyed(k % kShards, 1 + k));
  }
  r.fresh = kWarmKeys;
  r.fresh_qps = kWarmKeys / fresh_wall.ElapsedSeconds();
  Stopwatch replay_wall;
  for (size_t round = 0; round < kReplayRounds; ++round) {
    for (size_t k = 0; k < kWarmKeys; ++k) {
      run_one(keyed(k % kShards, 1 + k));
    }
  }
  r.replays = kWarmKeys * kReplayRounds;
  r.replay_qps = r.replays / replay_wall.ElapsedSeconds();

  // Phase B — sequential keyed queries, SIGKILL shard 0 mid-run. The next
  // query routed there rides the full failover path; its latency lands in
  // the tail of the distribution.
  std::vector<double> latencies_ms;
  latencies_ms.reserve(kFailoverRuns);
  for (size_t q = 0; q < kFailoverRuns; ++q) {
    if (q == kFailoverRuns / 2) {
      Status killed = supervisor.Kill(0, SIGKILL);
      UPA_CHECK_MSG(killed.ok(), killed.ToString());
    }
    Stopwatch one;
    run_one(keyed(q % kShards, 1000 + q));
    latencies_ms.push_back(one.ElapsedSeconds() * 1e3);
  }
  r.p50_ms = Percentile(latencies_ms, 0.50);
  r.p99_ms = Percentile(latencies_ms, 0.99);
  r.max_ms = *std::max_element(latencies_ms.begin(), latencies_ms.end());

  cluster::Router::Stats stats = router.stats();
  r.retried = stats.retried;
  for (size_t i = 0; i < kShards; ++i) r.respawns += supervisor.Restarts(i);

  client.reset();
  router.Stop();
  supervisor.StopAll();
  return r;
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  const size_t runs = env.runs;
  const size_t lat_us = EnvSize("UPA_LAT_US", 4000);
  const size_t clients = 8;
  bench::PrintBanner("Cluster throughput — shard processes behind the router",
                     env);
  std::printf("clients: %zu, queries/client: %zu, per-query latency: %zu us\n\n",
              clients, runs, lat_us);

  char tmp_template[] = "/tmp/upa-bench-cluster-XXXXXX";
  const char* tmp_root = ::mkdtemp(tmp_template);
  UPA_CHECK_MSG(tmp_root != nullptr, "mkdtemp failed");

  TablePrinter table({"shards", "queries", "wall (ms)", "q/s", "speedup"});
  std::vector<RunResult> results;
  for (size_t shards : {1u, 2u, 4u}) {
    const std::string scale_dir =
        std::string(tmp_root) + "/x" + std::to_string(shards);
    results.push_back(RunAtScale(shards, clients, runs, lat_us, env.seed,
                                 scale_dir));
    const RunResult& r = results.back();
    table.AddRow({std::to_string(r.shards), std::to_string(r.queries),
                  TablePrinter::FormatDouble(r.wall_seconds * 1e3, 2),
                  TablePrinter::FormatDouble(r.qps, 1),
                  TablePrinter::FormatDouble(r.qps / results.front().qps, 2)});
  }
  table.Print("cluster throughput vs shard processes");

  std::string rows;
  for (const RunResult& r : results) {
    if (!rows.empty()) rows += ",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"shards\": %zu, \"queries\": %zu, "
                  "\"wall_ms\": %.2f, \"qps\": %.2f, \"speedup\": %.3f}",
                  r.shards, r.queries, r.wall_seconds * 1e3, r.qps,
                  r.qps / results.front().qps);
    rows += buf;
  }
  const char* path_env = std::getenv("UPA_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_cluster.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  UPA_CHECK_MSG(f != nullptr, "cannot write " + path);
  std::fprintf(f,
               "{\n  \"bench\": \"cluster_throughput\",\n"
               "  \"clients\": %zu,\n  \"runs_per_client\": %zu,\n"
               "  \"lat_us\": %zu,\n  \"seed\": %llu,\n  \"rows\": [\n%s\n"
               "  ]\n}\n",
               clients, runs, lat_us,
               static_cast<unsigned long long>(env.seed), rows.c_str());
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());

  // Phase 2 — exactly-once machinery under failover.
  std::printf("\n");
  const FailoverResult fo =
      RunFailover(lat_us, env.seed, std::string(tmp_root) + "/failover");
  TablePrinter fo_table({"metric", "value"});
  fo_table.AddRow({"fresh keyed q/s", TablePrinter::FormatDouble(fo.fresh_qps, 1)});
  fo_table.AddRow({"dedup replay q/s", TablePrinter::FormatDouble(fo.replay_qps, 1)});
  fo_table.AddRow({"failover p50 (ms)", TablePrinter::FormatDouble(fo.p50_ms, 2)});
  fo_table.AddRow({"failover p99 (ms)", TablePrinter::FormatDouble(fo.p99_ms, 2)});
  fo_table.AddRow({"failover max (ms)", TablePrinter::FormatDouble(fo.max_ms, 2)});
  fo_table.AddRow({"router retries", std::to_string(fo.retried)});
  fo_table.AddRow({"shard respawns", std::to_string(fo.respawns)});
  fo_table.Print("exactly-once failover (2 shards, 1 SIGKILL)");
  UPA_CHECK_MSG(fo.retried >= 1, "SIGKILL never exercised the retry path");
  UPA_CHECK_MSG(fo.respawns >= 1, "supervisor never respawned the shard");

  const char* fo_env = std::getenv("UPA_FAILOVER_JSON");
  const std::string fo_path =
      fo_env != nullptr ? fo_env : "BENCH_failover.json";
  std::FILE* ff = std::fopen(fo_path.c_str(), "w");
  UPA_CHECK_MSG(ff != nullptr, "cannot write " + fo_path);
  std::fprintf(ff,
               "{\n  \"bench\": \"cluster_failover\",\n"
               "  \"lat_us\": %zu,\n  \"seed\": %llu,\n"
               "  \"fresh_keyed\": %zu,\n  \"fresh_qps\": %.2f,\n"
               "  \"dedup_replays\": %zu,\n  \"replay_qps\": %.2f,\n"
               "  \"failover_p50_ms\": %.3f,\n  \"failover_p99_ms\": %.3f,\n"
               "  \"failover_max_ms\": %.3f,\n"
               "  \"router_retries\": %llu,\n  \"shard_respawns\": %llu\n}\n",
               lat_us, static_cast<unsigned long long>(env.seed), fo.fresh,
               fo.fresh_qps, fo.replays, fo.replay_qps, fo.p50_ms, fo.p99_ms,
               fo.max_ms, static_cast<unsigned long long>(fo.retried),
               static_cast<unsigned long long>(fo.respawns));
  std::fclose(ff);
  std::printf("\nwrote %s\n", fo_path.c_str());
  return 0;
}
