#include "common/env.h"

#include <cstdlib>

namespace upa {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

}  // namespace upa
