// End-to-end tests of UpaRunner (Algorithm 1 + iDP enforcement) on small
// synthetic map/reduce queries built with MakeSimpleQuery.
#include "upa/runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "upa/simple_query.h"

namespace upa::core {
namespace {

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 4});
  return ctx;
}

/// A counting query over `n` records: M(r) = [1], f(x) = |x|.
QueryInstance CountQuery(size_t n, const std::string& name = "count") {
  SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  auto records = std::make_shared<std::vector<int>>(n, 0);
  std::iota(records->begin(), records->end(), 0);
  spec.records = records;
  spec.map_record = [](const int&) { return Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return MakeSimpleQuery(std::move(spec));
}

/// A sum query over given values: M(r) = [r], f(x) = Σ.
QueryInstance SumQuery(std::shared_ptr<std::vector<double>> values,
                       const std::string& name = "sum") {
  SimpleQuerySpec<double> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  spec.records = values;
  spec.map_record = [](const double& v) { return Vec{v}; };
  spec.sample_domain = [](Rng& rng) { return rng.UniformDouble(0.0, 1.0); };
  return MakeSimpleQuery(std::move(spec));
}

UpaConfig NoNoiseConfig() {
  UpaConfig cfg;
  cfg.sample_n = 200;
  cfg.add_noise = false;
  return cfg;
}

TEST(UpaRunnerTest, CountQueryRawOutputIsExact) {
  UpaRunner runner(NoNoiseConfig());
  auto result = runner.Run(CountQuery(5000), /*seed=*/1);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().raw_output, 5000.0);
  EXPECT_EQ(result.value().sample_size, 200u);
}

TEST(UpaRunnerTest, CountSensitivityIsNearOne) {
  // Every record's influence on a count is exactly 1; the influence-
  // percentile rule must infer ~1 (the paper's TPCH1 case: ~1e-9 error).
  UpaRunner runner(NoNoiseConfig());
  auto result = runner.Run(CountQuery(5000), 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().local_sensitivity, 1.0, 1e-6);
}

TEST(UpaRunnerTest, OutputRangeRuleGivesWiderCountSensitivity) {
  UpaConfig cfg = NoNoiseConfig();
  cfg.sensitivity_rule = SensitivityRule::kOutputRange;
  UpaRunner runner(cfg);
  auto result = runner.Run(CountQuery(5000), 2);
  ASSERT_TRUE(result.ok());
  // Outputs are {N-1, N+1} half/half → fitted sd 1 → width ≈ 2·2.326.
  EXPECT_NEAR(result.value().local_sensitivity, 4.652, 0.05);
  EXPECT_DOUBLE_EQ(result.value().out_range.width(),
                   result.value().local_sensitivity);
}

TEST(UpaRunnerTest, NeighbourOutputsHaveTwoNEntries) {
  UpaRunner runner(NoNoiseConfig());
  auto result = runner.Run(CountQuery(5000), 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().neighbour_outputs.size(), 400u);  // n removals + n additions
  for (double o : result.value().neighbour_outputs) {
    EXPECT_TRUE(o == 4999.0 || o == 5001.0) << o;
  }
}

TEST(UpaRunnerTest, SmallDatasetSamplesEverything) {
  UpaRunner runner(NoNoiseConfig());
  auto result = runner.Run(CountQuery(50), 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().sample_size, 50u);
  EXPECT_DOUBLE_EQ(result.value().raw_output, 50.0);
}

TEST(UpaRunnerTest, RejectsBoundaryPercentileConfig) {
  // lo <= 0 / hi >= 100 used to crash inside StandardNormalQuantile; the
  // runner now rejects them as a recoverable error before running.
  for (auto [lo, hi] : {std::pair{0.0, 99.0},
                        std::pair{1.0, 100.0},
                        std::pair{-1.0, 99.0},
                        std::pair{99.0, 1.0}}) {
    UpaConfig cfg = NoNoiseConfig();
    cfg.sensitivity_rule = SensitivityRule::kOutputRange;
    cfg.lo_percentile = lo;
    cfg.hi_percentile = hi;
    UpaRunner runner(cfg);
    auto result = runner.Run(CountQuery(500), 1);
    ASSERT_FALSE(result.ok()) << lo << "," << hi;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(UpaRunnerTest, SensitivityHintReleasesBitIdentically) {
  // A hinted run (sensitivity/range reused from a prior full run of the
  // same shape) must skip the neighbour evaluation yet release the exact
  // same bits: enforcer, clamp and noise are untouched by the hint.
  UpaConfig cfg = NoNoiseConfig();
  cfg.add_noise = true;
  UpaRunner full(cfg), hinted(cfg);
  auto reference = full.Run(CountQuery(5000), 11);
  ASSERT_TRUE(reference.ok());

  SensitivityHint hint{reference.value().local_sensitivity,
                       reference.value().out_range,
                       reference.value().degenerate_sensitivity};
  auto fast = hinted.Run(CountQuery(5000), 11, &hint);
  ASSERT_TRUE(fast.ok());
  EXPECT_DOUBLE_EQ(fast.value().released_output,
                   reference.value().released_output);
  EXPECT_DOUBLE_EQ(fast.value().raw_output, reference.value().raw_output);
  EXPECT_DOUBLE_EQ(fast.value().local_sensitivity,
                   reference.value().local_sensitivity);
  EXPECT_EQ(fast.value().partition_outputs,
            reference.value().partition_outputs);
  // The skipped work is observable: no neighbour outputs were computed.
  EXPECT_TRUE(fast.value().neighbour_outputs.empty());
  EXPECT_EQ(reference.value().neighbour_outputs.size(), 400u);
}

TEST(UpaRunnerTest, SharedEnforcerSeesOtherRunnersRegistrations) {
  UpaConfig cfg = NoNoiseConfig();
  UpaRunner a(cfg), b(cfg);
  b.share_enforcer(a.shared_enforcer());
  ASSERT_TRUE(a.Run(CountQuery(5000, "shared-count"), 1).ok());
  EXPECT_EQ(b.enforcer().registry_size(), 1u);
  // The same query through the other runner is a repeat against the
  // shared registry: partition outputs collide and the enforcer reacts.
  auto repeat = b.Run(CountQuery(5000, "shared-count"), 1);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.value().enforcer.attack_suspected);
  EXPECT_EQ(a.enforcer().registry_size(), 2u);
}

TEST(UpaRunnerTest, DeterministicForSameSeed) {
  UpaConfig cfg = NoNoiseConfig();
  cfg.add_noise = true;
  cfg.enable_enforcer = false;
  auto values = std::make_shared<std::vector<double>>();
  Rng rng(99);
  for (int i = 0; i < 3000; ++i) values->push_back(rng.UniformDouble(0, 10));

  UpaRunner r1(cfg), r2(cfg);
  auto a = r1.Run(SumQuery(values), 7);
  auto b = r2.Run(SumQuery(values), 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.value().released_output, b.value().released_output);
  EXPECT_DOUBLE_EQ(a.value().local_sensitivity, b.value().local_sensitivity);
}

TEST(UpaRunnerTest, DifferentSeedsPerturbDifferently) {
  UpaConfig cfg = NoNoiseConfig();
  cfg.add_noise = true;
  cfg.enable_enforcer = false;
  UpaRunner runner(cfg);
  auto a = runner.Run(CountQuery(5000), 10);
  auto b = runner.Run(CountQuery(5000), 11);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().released_output, b.value().released_output);
}

TEST(UpaRunnerTest, SumSensitivityTracksLargestValues) {
  // Values in [0, 1]: the largest influence of any record is ~1, so the
  // inferred sensitivity must be around the top of that range, never 10x.
  auto values = std::make_shared<std::vector<double>>();
  Rng rng(123);
  for (int i = 0; i < 5000; ++i) values->push_back(rng.UniformDouble(0, 1));
  UpaRunner runner(NoNoiseConfig());
  auto result = runner.Run(SumQuery(values), 5);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().local_sensitivity, 0.5);
  EXPECT_LT(result.value().local_sensitivity, 2.0);
}

TEST(UpaRunnerTest, OutRangeContainsRawOutputCenter) {
  UpaRunner runner(NoNoiseConfig());
  auto result = runner.Run(CountQuery(2000), 6);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().out_range.Contains(result.value().raw_output));
}

TEST(UpaRunnerTest, ReleasedOutputIsNoisyAroundClamped) {
  UpaConfig cfg = NoNoiseConfig();
  cfg.add_noise = true;
  cfg.epsilon = 0.1;
  cfg.enable_enforcer = false;
  UpaRunner runner(cfg);
  auto result = runner.Run(CountQuery(5000), 8);
  ASSERT_TRUE(result.ok());
  // Noise scale ≈ 1/0.1 = 10; the release should be within ~200 of raw
  // with overwhelming probability.
  EXPECT_NEAR(result.value().released_output, 5000.0, 200.0);
  EXPECT_NE(result.value().released_output, 5000.0);
}

TEST(UpaRunnerTest, RepeatedIdenticalQueryTriggersEnforcer) {
  UpaConfig cfg = NoNoiseConfig();
  cfg.enable_enforcer = true;
  UpaRunner runner(cfg);
  auto first = runner.Run(CountQuery(5000, "repeat"), 20);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().enforcer.attack_suspected);

  // Same query, same dataset, same seed → identical partition outputs →
  // Algorithm 2 Case 2: records are removed.
  auto second = runner.Run(CountQuery(5000, "repeat"), 20);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().enforcer.attack_suspected);
  EXPECT_GE(second.value().enforcer.records_removed, 2u);
  // The released raw output reflects the removals.
  EXPECT_LT(second.value().raw_output, 5000.0);
}

TEST(UpaRunnerTest, DistinctQueriesDoNotTriggerEnforcer) {
  UpaConfig cfg = NoNoiseConfig();
  UpaRunner runner(cfg);
  auto a = runner.Run(CountQuery(5000), 30);
  auto values = std::make_shared<std::vector<double>>(3000, 2.5);
  auto b = runner.Run(SumQuery(values), 31);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(b.value().enforcer.attack_suspected);
  EXPECT_EQ(b.value().enforcer.prior_queries_checked, 1u);
}

TEST(UpaRunnerTest, PartitionOutputsSumToRawForAdditiveQuery) {
  UpaConfig cfg = NoNoiseConfig();
  cfg.enable_enforcer = false;
  UpaRunner runner(cfg);
  auto result = runner.Run(CountQuery(4000), 40);
  ASSERT_TRUE(result.ok());
  double sum = 0;
  for (double p : result.value().partition_outputs) sum += p;
  EXPECT_DOUBLE_EQ(sum, result.value().raw_output);
}

TEST(UpaRunnerTest, InvalidQueriesAreRejected) {
  UpaRunner runner;
  QueryInstance empty;
  empty.name = "empty";
  auto r = runner.Run(empty, 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(UpaRunnerTest, PhaseTimingsArePopulated) {
  UpaRunner runner(NoNoiseConfig());
  auto result = runner.Run(CountQuery(3000), 50);
  ASSERT_TRUE(result.ok());
  const auto& s = result.value().seconds;
  EXPECT_GE(s.map, 0.0);
  EXPECT_GT(s.total, 0.0);
  EXPECT_GE(s.total, s.map);
}

/// A query mapping every record to the same d-dimensional vector scaled by
/// the record value — exercises the Vec paths the ML queries use.
QueryInstance VecQuery(std::shared_ptr<std::vector<double>> values, size_t dim,
                       const std::string& name = "vec") {
  SimpleQuerySpec<double> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  spec.records = values;
  spec.map_record = [dim](const double& v) {
    Vec m(dim);
    for (size_t j = 0; j < dim; ++j) m[j] = v * (1.0 + 0.1 * j);
    return m;
  };
  spec.sample_domain = [](Rng& rng) { return rng.UniformDouble(0.0, 1.0); };
  spec.scalarize = [](const Vec& v) { return L2Norm(v); };
  return MakeSimpleQuery(std::move(spec));
}

// The headline determinism guarantee of the parallel phase pipeline: with
// identical config, seed and context, parallel_phases on/off produces a
// bit-identical UpaRunResult — same raw_output, local_sensitivity,
// neighbour_outputs, partition_outputs and release. (The parallel path
// uses fixed chunk boundaries and fixed combine orders; see DESIGN.md.)
TEST(UpaRunnerTest, ParallelPhasesBitIdenticalToSequential) {
  auto values = std::make_shared<std::vector<double>>();
  Rng rng(321);
  for (int i = 0; i < 4000; ++i) values->push_back(rng.UniformDouble(0, 1));

  for (auto rule : {SensitivityRule::kSampledMax,
                    SensitivityRule::kInfluencePercentile,
                    SensitivityRule::kOutputRange}) {
    UpaConfig cfg;
    cfg.sample_n = 500;
    cfg.sensitivity_rule = rule;
    cfg.add_noise = true;
    cfg.parallel_phases = true;
    UpaConfig seq_cfg = cfg;
    seq_cfg.parallel_phases = false;

    UpaRunner par_runner(cfg), seq_runner(seq_cfg);
    auto par = par_runner.Run(VecQuery(values, 8), 77);
    auto seq = seq_runner.Run(VecQuery(values, 8), 77);
    ASSERT_TRUE(par.ok() && seq.ok());
    EXPECT_EQ(par.value().raw_output, seq.value().raw_output);
    EXPECT_EQ(par.value().local_sensitivity, seq.value().local_sensitivity);
    EXPECT_EQ(par.value().released_output, seq.value().released_output);
    EXPECT_EQ(par.value().neighbour_outputs, seq.value().neighbour_outputs);
    EXPECT_EQ(par.value().partition_outputs, seq.value().partition_outputs);
    EXPECT_EQ(par.value().out_range.lo, seq.value().out_range.lo);
    EXPECT_EQ(par.value().out_range.hi, seq.value().out_range.hi);
    EXPECT_EQ(par.value().reduced, seq.value().reduced);
  }
}

TEST(UpaRunnerTest, ParallelPhasesRecordPhaseTaskMetrics) {
  UpaConfig cfg = NoNoiseConfig();
  cfg.enable_enforcer = false;
  UpaRunner runner(cfg);
  auto result = runner.Run(CountQuery(3000), 60);
  ASSERT_TRUE(result.ok());
  const auto& tasks = result.value().metrics.phase_tasks;
  ASSERT_TRUE(tasks.count("upa/neighbour_eval"));
  EXPECT_GE(tasks.at("upa/neighbour_eval"), 1u);
  ASSERT_TRUE(tasks.count("upa/influence"));
  ASSERT_TRUE(tasks.count("upa/partition_outputs"));
}

// Degenerate queries: every record maps to the identity contribution, so
// all 2n sampled neighbours produce exactly f(x). Without the floor the
// runner would infer local_sensitivity == 0 and release the exact clamped
// value with Laplace scale 0 — a noiseless release of a private value.
TEST(UpaRunnerTest, ConstantQuerySensitivityIsFlooredNotZero) {
  SimpleQuerySpec<double> spec;
  spec.name = "constant";
  spec.ctx = &Ctx();
  spec.records = std::make_shared<std::vector<double>>(2000, 1.0);
  spec.map_record = [](const double&) { return Vec{0.0}; };
  spec.sample_domain = [](Rng& rng) { return rng.UniformDouble(0.0, 1.0); };

  UpaConfig cfg;
  cfg.sample_n = 200;
  cfg.add_noise = true;
  cfg.enable_enforcer = false;
  UpaRunner runner(cfg);
  auto result = runner.Run(MakeSimpleQuery(std::move(spec)), 9);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().degenerate_sensitivity);
  EXPECT_EQ(result.value().local_sensitivity, cfg.min_sensitivity);
  EXPECT_GT(result.value().local_sensitivity, 0.0);
  // The release is still noised (scale min_sensitivity/ε), not exact.
  EXPECT_NE(result.value().released_output, result.value().raw_output);
}

TEST(UpaRunnerTest, MinSensitivityFloorIsConfigurable) {
  SimpleQuerySpec<double> spec;
  spec.name = "constant2";
  spec.ctx = &Ctx();
  spec.records = std::make_shared<std::vector<double>>(2000, 1.0);
  spec.map_record = [](const double&) { return Vec{0.0}; };
  spec.sample_domain = [](Rng& rng) { return rng.UniformDouble(0.0, 1.0); };

  UpaConfig cfg = NoNoiseConfig();
  cfg.enable_enforcer = false;
  cfg.min_sensitivity = 0.5;
  UpaRunner runner(cfg);
  auto result = runner.Run(MakeSimpleQuery(std::move(spec)), 9);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().degenerate_sensitivity);
  EXPECT_DOUBLE_EQ(result.value().local_sensitivity, 0.5);
  // The clamp range widens with the floor so the raw output stays inside.
  EXPECT_TRUE(result.value().out_range.Contains(result.value().raw_output));
}

TEST(UpaRunnerTest, NonDegenerateQueryDoesNotSetFlag) {
  UpaRunner runner(NoNoiseConfig());
  auto result = runner.Run(CountQuery(5000), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().degenerate_sensitivity);
}

TEST(UpaRunnerTest, DegenerateOutputRangeRuleKeepsWidthInvariant) {
  SimpleQuerySpec<double> spec;
  spec.name = "constant3";
  spec.ctx = &Ctx();
  spec.records = std::make_shared<std::vector<double>>(2000, 1.0);
  spec.map_record = [](const double&) { return Vec{0.0}; };
  spec.sample_domain = [](Rng& rng) { return rng.UniformDouble(0.0, 1.0); };

  UpaConfig cfg = NoNoiseConfig();
  cfg.enable_enforcer = false;
  cfg.sensitivity_rule = SensitivityRule::kOutputRange;
  UpaRunner runner(cfg);
  auto result = runner.Run(MakeSimpleQuery(std::move(spec)), 9);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().degenerate_sensitivity);
  EXPECT_DOUBLE_EQ(result.value().out_range.width(),
                   result.value().local_sensitivity);
}

// Sensitivity upper-bound property: across seeds, the inferred sensitivity
// times the clamp guarantees |release centers| of any neighbouring pair
// stay within the range (the basis of the §IV-C proof).
class ClampSoundnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClampSoundnessSweep, NeighbourOutputsMostlyInsideRange) {
  auto values = std::make_shared<std::vector<double>>();
  Rng rng(700 + GetParam());
  for (int i = 0; i < 4000; ++i) values->push_back(rng.Exponential(1.0));
  UpaConfig cfg = NoNoiseConfig();
  cfg.sample_n = 500;
  UpaRunner runner(cfg);
  auto result = runner.Run(SumQuery(values), 1000 + GetParam());
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  size_t inside = 0;
  for (double o : r.neighbour_outputs) {
    if (r.out_range.Contains(o)) ++inside;
  }
  // The paper's coverage claim: ≥ 98.9% of neighbour outputs covered for
  // well-behaved (non-outlier-dominated) queries.
  EXPECT_GT(static_cast<double>(inside) / r.neighbour_outputs.size(), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClampSoundnessSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace upa::core
