// The user-facing, Spark-style API (paper Table I).
//
// A data provider loads records with `UpaSystem::dpread`, getting a
// DpObject; analysts chain `mapDP` / `filterDP` transformations (which run
// on the engine like ordinary RDD ops) and finish with a reduceDP-style
// release, which runs the full UPA pipeline — Partition & Sample, Parallel
// Map, Union-Preserving Reduce, sensitivity inference, RANGE ENFORCER,
// Laplace noise — and charges the privacy accountant.
//
// Table I mapping:
//   dpread            → UpaSystem::dpread
//   dpobject.mapDP    → DpObject::mapDP (also filterDP, the Select of SQL)
//   dpobject.reduceDP → DpObject::reduceSumDP / reduceVecDP
//   dpobjectKV / mapDPKV / reduceByKeyDP
//                     → DpObjectKV over a public key universe
//   joinDP            → DpObjectKV::joinPublicDP (private records against a
//                       public dimension table; private×private joins are
//                       exercised through the relational plan path, see
//                       queries/plan_query.h)
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dp/accountant.h"
#include "dp/mechanism.h"
#include "engine/dataset.h"
#include "upa/runner.h"
#include "upa/simple_query.h"

namespace upa::api {

/// One released, noised value plus its provenance metadata.
struct DpRelease {
  double value = 0.0;            // what the analyst sees
  double epsilon = 0.0;          // budget charged
  double local_sensitivity = 0;  // inferred by Algorithm 1
  Interval out_range;            // the enforcer's clamping range Ô_f
  bool attack_suspected = false;
  size_t records_removed = 0;
};

template <typename T>
class DpObject;

/// The deployed UPA service: engine context, persistent RANGE ENFORCER
/// registry (via the runner) and a privacy accountant.
class UpaSystem {
 public:
  UpaSystem(engine::ExecContext* ctx, core::UpaConfig config,
            double total_budget)
      : ctx_(ctx), runner_(config), accountant_(total_budget) {
    UPA_CHECK(ctx != nullptr);
  }

  /// Load a private dataset. `sample_domain` draws a plausible fresh
  /// record from the record domain D \ x (needed for the "record added"
  /// neighbours); `dataset_id` scopes the privacy budget.
  template <typename T>
  DpObject<T> dpread(std::vector<T> records,
                     std::function<T(Rng&)> sample_domain,
                     std::string dataset_id);

  engine::ExecContext* ctx() { return ctx_; }
  core::UpaRunner& runner() { return runner_; }
  dp::PrivacyAccountant& accountant() { return accountant_; }

 private:
  engine::ExecContext* ctx_;
  core::UpaRunner runner_;
  dp::PrivacyAccountant accountant_;
  uint64_t next_seed_ = 1;

  template <typename T>
  friend class DpObject;

  uint64_t NextSeed() { return next_seed_++; }
};

/// A private dataset with composed (lazy-on-domain, eager-on-data)
/// transformations. Copies are cheap (records are shared).
template <typename T>
class DpObject {
 public:
  size_t count_upper_bound() const { return records_->size(); }

  /// Table I mapDP: transform each record. Runs on the engine like an RDD
  /// map; the domain sampler is composed through the same function so
  /// synthetic neighbours stay distribution-correct.
  template <typename F, typename U = std::invoke_result_t<F, const T&>>
  DpObject<U> mapDP(F f) const {
    auto mapped = std::make_shared<std::vector<U>>(
        engine::Dataset<T>::FromVector(sys_->ctx_, *records_)
            .Map([&f](const T& v) { return f(v); })
            .Collect());
    std::function<T(Rng&)> parent_domain = sample_domain_;
    std::function<U(Rng&)> domain = [parent_domain, f](Rng& rng) {
      return f(parent_domain(rng));
    };
    return DpObject<U>(sys_, std::move(mapped), std::move(domain),
                       dataset_id_, name_ + "|map");
  }

  /// Select/Filter: keep records matching `pred`. The domain sampler
  /// rejection-samples (bounded) so fresh records also satisfy the
  /// predicate.
  template <typename Pred>
  DpObject<T> filterDP(Pred pred) const {
    auto filtered = std::make_shared<std::vector<T>>(
        engine::Dataset<T>::FromVector(sys_->ctx_, *records_)
            .Filter([&pred](const T& v) { return pred(v); })
            .Collect());
    std::function<T(Rng&)> parent_domain = sample_domain_;
    std::function<T(Rng&)> domain = [parent_domain, pred](Rng& rng) {
      for (int attempt = 0; attempt < 1000; ++attempt) {
        T candidate = parent_domain(rng);
        if (pred(candidate)) return candidate;
      }
      // Domain almost never satisfies the predicate: fall back to an
      // unfiltered record; its mapped influence is still plausible.
      return parent_domain(rng);
    };
    return DpObject<T>(sys_, std::move(filtered), std::move(domain),
                       dataset_id_, name_ + "|filter");
  }

  /// Table I reduceDP for scalar aggregation: releases
  /// Σ to_value(record) under ε-iDP. Fails (without charging budget) if
  /// the accountant would be exceeded.
  template <typename F>
  Result<DpRelease> reduceSumDP(F to_value, double epsilon) const {
    return Release(
        [to_value](const T& v) { return core::Vec{to_value(v)}; }, nullptr,
        nullptr, epsilon);
  }

  /// Count release: sensitivity-inferred private count.
  Result<DpRelease> countDP(double epsilon) const {
    return reduceSumDP([](const T&) { return 1.0; }, epsilon);
  }

  /// Vector-valued reduceDP with optional post-processing; the released
  /// scalar is scalarize(post(Σ map(record))) — e.g. an updated model's
  /// norm — and `out_vec` (if non-null) receives the noisy post vector.
  Result<DpRelease> reduceVecDP(
      std::function<core::Vec(const T&)> map_record,
      std::function<core::Vec(const core::Vec&)> post,
      std::function<double(const core::Vec&)> scalarize, double epsilon,
      core::Vec* out_vec = nullptr) const {
    return Release(std::move(map_record), std::move(post),
                   std::move(scalarize), epsilon, out_vec);
  }

  const std::vector<T>& records() const { return *records_; }
  const std::string& dataset_id() const { return dataset_id_; }

 private:
  friend class UpaSystem;
  template <typename U>
  friend class DpObject;

  DpObject(UpaSystem* sys, std::shared_ptr<const std::vector<T>> records,
           std::function<T(Rng&)> sample_domain, std::string dataset_id,
           std::string name)
      : sys_(sys),
        records_(std::move(records)),
        sample_domain_(std::move(sample_domain)),
        dataset_id_(std::move(dataset_id)),
        name_(std::move(name)) {}

  Result<DpRelease> Release(
      std::function<core::Vec(const T&)> map_record,
      std::function<core::Vec(const core::Vec&)> post,
      std::function<double(const core::Vec&)> scalarize, double epsilon,
      core::Vec* out_vec = nullptr) const {
    if (records_->empty()) {
      return Status::FailedPrecondition("empty private dataset");
    }
    UPA_RETURN_IF_ERROR(sys_->accountant_.Charge(dataset_id_, epsilon));

    core::SimpleQuerySpec<T> spec;
    spec.name = name_;
    spec.ctx = sys_->ctx_;
    spec.records = records_;
    spec.map_record = std::move(map_record);
    spec.sample_domain = sample_domain_;
    spec.post = std::move(post);
    spec.scalarize = std::move(scalarize);

    // Keep the post step for the optional noisy-vector output: `spec` is
    // consumed by MakeSimpleQuery below.
    std::function<core::Vec(const core::Vec&)> post_copy = spec.post;

    // Per-release ε: rebuild the runner config with the caller's budget.
    core::UpaConfig cfg = sys_->runner_.config();
    cfg.epsilon = epsilon;
    core::UpaRunner release_runner(cfg);
    // Share the persistent enforcer registry (the registry is
    // thread-safe; Run holds its Session lock across Enforce → Register).
    release_runner.share_enforcer(sys_->runner_.shared_enforcer());
    Result<core::UpaRunResult> result = release_runner.Run(
        core::MakeSimpleQuery(std::move(spec)), sys_->NextSeed());
    if (!result.ok()) {
      // Two-phase budget: the failed release never produced output, so
      // the charge above is returned rather than burnt.
      sys_->accountant_.Refund(dataset_id_, epsilon);
      return result.status();
    }

    DpRelease release;
    release.value = result.value().released_output;
    release.epsilon = epsilon;
    release.local_sensitivity = result.value().local_sensitivity;
    release.out_range = result.value().out_range;
    release.attack_suspected = result.value().enforcer.attack_suspected;
    release.records_removed = result.value().enforcer.records_removed;
    if (out_vec != nullptr) {
      Rng noise(sys_->NextSeed());
      core::Vec posted = result.value().reduced;
      if (post_copy) posted = post_copy(posted);
      *out_vec = dp::LaplaceMechanism(posted, release.local_sensitivity,
                                      epsilon, noise);
    }
    return release;
  }

  UpaSystem* sys_;
  std::shared_ptr<const std::vector<T>> records_;
  std::function<T(Rng&)> sample_domain_;
  std::string dataset_id_;
  std::string name_;
};

template <typename T>
DpObject<T> UpaSystem::dpread(std::vector<T> records,
                              std::function<T(Rng&)> sample_domain,
                              std::string dataset_id) {
  UPA_CHECK_MSG(sample_domain != nullptr, "dpread needs a domain sampler");
  auto shared =
      std::make_shared<const std::vector<T>>(std::move(records));
  return DpObject<T>(this, std::move(shared), std::move(sample_domain),
                     dataset_id, dataset_id);
}

/// Keyed private data over a *public, finite* key universe (group-by keys
/// an analyst may legitimately know: categories, regions, clusters).
/// reduceByKeyDP releases one noisy aggregate per key from a single UPA
/// run (the reduce value is the per-key vector), charging ε once.
template <typename T, typename K>
class DpObjectKV {
 public:
  DpObjectKV(DpObject<T> base, std::function<K(const T&)> key_of,
             std::vector<K> universe)
      : base_(std::move(base)),
        key_of_(std::move(key_of)),
        universe_(std::move(universe)) {
    UPA_CHECK_MSG(!universe_.empty(), "key universe must be non-empty");
  }

  /// Table I reduceByKeyDP: per-key noisy sums (value_of summed per key).
  Result<std::map<K, double>> reduceByKeyDP(
      std::function<double(const T&)> value_of, double epsilon) const {
    std::map<K, size_t> index;
    for (size_t i = 0; i < universe_.size(); ++i) index[universe_[i]] = i;
    size_t dim = universe_.size();
    auto key_of = key_of_;

    core::Vec noisy;
    auto release = base_.reduceVecDP(
        [index, key_of, value_of, dim](const T& v) {
          core::Vec out(dim, 0.0);
          auto it = index.find(key_of(v));
          if (it != index.end()) out[it->second] = value_of(v);
          return out;
        },
        /*post=*/nullptr,
        [](const core::Vec& v) { return core::L2Norm(v); }, epsilon, &noisy);
    if (!release.ok()) return release.status();

    std::map<K, double> out;
    for (size_t i = 0; i < universe_.size(); ++i) {
      out[universe_[i]] = i < noisy.size() ? noisy[i] : 0.0;
    }
    return out;
  }

  /// Table I joinDP against a *public* dimension table: each private
  /// record is joined with the matching public rows (hash join on the
  /// engine), and the joined object remains private.
  template <typename W>
  DpObject<std::pair<T, W>> joinPublicDP(
      const std::vector<std::pair<K, W>>& public_table) const {
    auto lookup = std::make_shared<std::multimap<K, W>>();
    for (const auto& [k, w] : public_table) lookup->emplace(k, w);
    auto key_of = key_of_;
    // One private record can join multiple public rows; keep the first
    // match per record so the privacy unit stays one record. (Multi-match
    // fan-out is the relational path's job, with index tracking.)
    return base_.mapDP([lookup, key_of](const T& v) {
      auto it = lookup->find(key_of(v));
      UPA_CHECK_MSG(it != lookup->end(),
                    "joinPublicDP: key missing from public table");
      return std::pair<T, W>{v, it->second};
    });
  }

 private:
  DpObject<T> base_;
  std::function<K(const T&)> key_of_;
  std::vector<K> universe_;
};

/// Table I mapDPKV: key a DpObject by a public key universe.
template <typename T, typename F,
          typename K = std::invoke_result_t<F, const T&>>
DpObjectKV<T, K> mapDPKV(DpObject<T> object, F key_of,
                         std::vector<K> universe) {
  return DpObjectKV<T, K>(std::move(object), std::move(key_of),
                          std::move(universe));
}

}  // namespace upa::api
