#include "relational/value.h"

#include <cmath>
#include <cstdio>

namespace upa::rel {

ValueType TypeOf(const Value& v) {
  switch (v.index()) {
    case 0:
      return ValueType::kInt;
    case 1:
      return ValueType::kDouble;
    default:
      return ValueType::kString;
  }
}

std::string TypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

int64_t AsInt(const Value& v) {
  const int64_t* p = std::get_if<int64_t>(&v);
  UPA_CHECK_MSG(p != nullptr, "Value is not an int");
  return *p;
}

const std::string& AsString(const Value& v) {
  const std::string* p = std::get_if<std::string>(&v);
  UPA_CHECK_MSG(p != nullptr, "Value is not a string");
  return *p;
}

double AsNumeric(const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const double* d = std::get_if<double>(&v)) return *d;
  UPA_CHECK_MSG(false, "Value is not numeric");
  return 0.0;
}

bool IsNumeric(const Value& v) {
  return std::holds_alternative<int64_t>(v) ||
         std::holds_alternative<double>(v);
}

std::string ToString(const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const double* d = std::get_if<double>(&v)) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

int Compare(const Value& a, const Value& b) {
  if (IsNumeric(a) && IsNumeric(b)) {
    double x = AsNumeric(a), y = AsNumeric(b);
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  UPA_CHECK_MSG(!IsNumeric(a) && !IsNumeric(b),
                "cannot compare string with numeric");
  return AsString(a).compare(AsString(b)) < 0
             ? -1
             : (AsString(a) == AsString(b) ? 0 : 1);
}

bool ValueEquals(const Value& a, const Value& b) {
  if (IsNumeric(a) != IsNumeric(b)) return false;
  return Compare(a, b) == 0;
}

size_t ValueHash::operator()(const Value& v) const {
  if (IsNumeric(v)) {
    // Hash the numeric value so 1 and 1.0 collide (they compare equal).
    double d = AsNumeric(v);
    if (d == static_cast<double>(static_cast<int64_t>(d)) &&
        std::fabs(d) < 9.0e18) {
      return static_cast<size_t>(
          Mix64(static_cast<uint64_t>(static_cast<int64_t>(d))));
    }
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return static_cast<size_t>(Mix64(bits));
  }
  return static_cast<size_t>(Fnv1a(std::get<std::string>(v)));
}

}  // namespace upa::rel
