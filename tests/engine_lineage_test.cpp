#include "engine/lineage.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

namespace upa::engine {
namespace {

ExecContext& Ctx() {
  static ExecContext ctx(ExecConfig{.threads = 2, .default_partitions = 4});
  return ctx;
}

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(LineageTest, SourceRecomputesItself) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(40), 4);
  auto src = LineageDataset<int>::MakeSource(ds);
  for (size_t p = 0; p < src.NumPartitions(); ++p) {
    EXPECT_EQ(src.RecomputePartition(p), ds.partition(p)) << p;
  }
}

TEST(LineageTest, MapRecoversLostPartition) {
  auto src = LineageDataset<int>::MakeSource(
      Dataset<int>::FromVector(&Ctx(), Iota(40), 4));
  auto mapped = src.Map([](const int& v) { return v * 3 + 1; });
  // "Lose" each partition in turn; recompute from lineage; verify.
  for (size_t p = 0; p < mapped.NumPartitions(); ++p) {
    EXPECT_EQ(mapped.RecomputePartition(p), mapped.data().partition(p)) << p;
  }
}

TEST(LineageTest, ChainedNarrowOpsRecompute) {
  auto src = LineageDataset<int>::MakeSource(
      Dataset<int>::FromVector(&Ctx(), Iota(100), 5));
  auto chained = src.Filter([](const int& v) { return v % 2 == 0; })
                     .Map([](const int& v) { return v * v; })
                     .Filter([](const int& v) { return v > 100; });
  for (size_t p = 0; p < chained.NumPartitions(); ++p) {
    EXPECT_EQ(chained.RecomputePartition(p), chained.data().partition(p));
  }
}

TEST(LineageTest, TypeChangingMapRecomputes) {
  auto src = LineageDataset<int>::MakeSource(
      Dataset<int>::FromVector(&Ctx(), {1, 22, 333}, 2));
  auto strs = src.Map([](const int& v) { return std::to_string(v); });
  for (size_t p = 0; p < strs.NumPartitions(); ++p) {
    EXPECT_EQ(strs.RecomputePartition(p), strs.data().partition(p));
  }
}

TEST(LineageTest, RecomputeAllMatchesStoredStage) {
  auto src = LineageDataset<int>::MakeSource(
      Dataset<int>::FromVector(&Ctx(), Iota(60), 3));
  auto stage = src.Map([](const int& v) { return v - 7; });
  auto all = stage.RecomputeAll();
  ASSERT_EQ(all.size(), stage.NumPartitions());
  for (size_t p = 0; p < all.size(); ++p) {
    EXPECT_EQ(all[p], stage.data().partition(p));
  }
}

TEST(LineageTest, RecoveredAggregationEqualsOriginal) {
  // End-to-end recovery story: lose a partition mid-job, recompute it,
  // and the final reduce is unchanged — *because* the reduce is
  // commutative/associative (the paper's §II-C motivation).
  auto src = LineageDataset<int>::MakeSource(
      Dataset<int>::FromVector(&Ctx(), Iota(1000), 8));
  auto mapped = src.Map([](const int& v) { return v * 2; });
  int expected =
      mapped.data().Reduce([](int a, int b) { return a + b; }, 0);

  // Rebuild partition 3 from lineage and splice it into a fresh dataset.
  std::vector<std::vector<int>> parts;
  for (size_t p = 0; p < mapped.NumPartitions(); ++p) {
    parts.push_back(p == 3 ? mapped.RecomputePartition(3)
                           : mapped.data().partition(p));
  }
  Dataset<int> recovered(&Ctx(), std::move(parts));
  EXPECT_EQ(recovered.Reduce([](int a, int b) { return a + b; }, 0),
            expected);
}

}  // namespace
}  // namespace upa::engine
