// Fixed-size thread pool with a parallel-for helper.
//
// The engine schedules one task per dataset partition on this pool, the way
// Spark schedules one task per RDD partition on its executors. The pool size
// defaults to the hardware concurrency and can be overridden (the CI box for
// this repo has a single core; correctness does not depend on parallelism).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace upa {

class ThreadPool {
 public:
  /// threads == 0 → std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n), partitioned into ~thread_count chunks, and
  /// wait for all of them. Exceptions in fn propagate to the caller.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Run fn(chunk_begin, chunk_end) over contiguous chunks and wait.
  void ParallelForChunks(
      size_t n, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace upa
