// Sensitivity vocabulary types shared by UPA, FLEX and the ground truth.
#pragma once

#include <string>
#include <vector>

#include "common/normal_fit.h"

namespace upa::dp {

/// How a local-sensitivity number was obtained.
enum class SensitivityMethod {
  kBruteForce,       // exhaustive neighbours (ground truth)
  kUpaSampled,       // UPA Algorithm 1 (sampled + normal fit)
  kFlexStatic,       // FLEX static analysis
  kManual,           // analyst-provided (legacy systems: GUPT/Airavat/PINQ)
};

std::string MethodName(SensitivityMethod method);

/// A local-sensitivity estimate for one (query, dataset) pair.
struct SensitivityEstimate {
  SensitivityMethod method = SensitivityMethod::kManual;
  /// The scalar local sensitivity used to calibrate noise.
  double value = 0.0;
  /// The constrained output range Ô_f (for methods that produce one;
  /// width == value for UPA and manual-range systems).
  Interval out_range;
  /// Neighbouring-dataset outputs the estimate was derived from (UPA and
  /// brute force only; empty for static methods).
  std::vector<double> neighbour_outputs;
};

}  // namespace upa::dp
