# Empty dependencies file for upa_engine.
# This may be replaced when dependencies are built.
