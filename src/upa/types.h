// Core value types for UPA's union-preserving aggregation.
//
// Every UPA query is decomposed as f(x) = scalarize(post(R(M(x)))) where
//   M : record -> Vec          (the Mapper; pure, per-record)
//   R : (Vec, Vec) -> Vec      (the Reducer; commutative + associative)
//   post : Vec -> Vec          (record-independent post-processing, e.g.
//                               turning gradient sums into updated weights)
//   scalarize : Vec -> double  (the released output value, the quantity the
//                               paper perturbs and plots)
//
// The reduce value is a fixed-dimension vector of doubles: dimension 1 for
// counts/sums (TPC-H), k*d+k for KMeans partial sums, d+1 for LR gradients.
// The shipped reducer is element-wise addition (VecSum), whose monoid
// properties are what justify Algorithm 1's reuse of R(M(S')) — and what
// the property tests verify.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace upa::core {

using Vec = std::vector<double>;

/// Element-wise-sum monoid over Vec. The empty vector is the identity, so
/// reductions over empty partitions need no special casing.
struct VecSum {
  /// Identity element.
  static Vec Identity() { return {}; }

  /// a ⊕ b. Either side may be the empty identity.
  static Vec Combine(Vec a, const Vec& b) {
    if (a.empty()) return b;
    if (b.empty()) return a;
    UPA_CHECK_MSG(a.size() == b.size(), "VecSum requires equal dimensions");
    for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
    return a;
  }

  /// Inverse of Combine on the second argument: a ⊖ b. Exists because the
  /// monoid is actually a group; the exact-incremental ground truth and
  /// some fast paths use it, but Algorithm 1 itself never requires it.
  static Vec Subtract(Vec a, const Vec& b) {
    if (b.empty()) return a;
    if (a.empty()) {
      Vec neg(b.size());
      for (size_t i = 0; i < b.size(); ++i) neg[i] = -b[i];
      return neg;
    }
    UPA_CHECK_MSG(a.size() == b.size(), "VecSum requires equal dimensions");
    for (size_t i = 0; i < a.size(); ++i) a[i] -= b[i];
    return a;
  }

  /// Reduce a sequence.
  static Vec Reduce(const std::vector<Vec>& values) {
    Vec acc = Identity();
    for (const Vec& v : values) acc = Combine(std::move(acc), v);
    return acc;
  }
};

/// Returns v[0] for 1-dimensional values; the default scalarizer for
/// count/sum queries. Empty (identity) values scalarize to 0.
inline double ScalarOf(const Vec& v) { return v.empty() ? 0.0 : v[0]; }

/// L2 norm — the default scalarizer for vector-valued ML outputs.
double L2Norm(const Vec& v);

/// L1 distance between two vectors of equal dimension (empty = zeros).
double L1Distance(const Vec& a, const Vec& b);

}  // namespace upa::core
