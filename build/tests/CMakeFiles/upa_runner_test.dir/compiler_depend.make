# Empty compiler generated dependencies file for upa_runner_test.
# This may be replaced when dependencies are built.
