// The seven evaluated TPC-H queries (Table II of the paper), as logical
// plans reduced to the scalar each query releases.
//
// Faithfulness notes (see DESIGN.md substitutions):
//   * Group-bys are collapsed to the total aggregate the paper perturbs.
//   * Q4/Q13/Q16/Q21 use pair-counting join semantics (each qualifying
//     joined tuple counts once) so that every query is an additive
//     commutative-associative aggregation — the class UPA targets.
//   * Q16's "p_type NOT LIKE prefix" and Q13's comment regex become
//     categorical inequalities over the generator's vocabularies.
//   * Each query designates the private table whose records are the
//     privacy unit (the table a record is added to / removed from).
#pragma once

#include <string>
#include <vector>

#include "relational/plan.h"

namespace upa::tpch {

struct TpchQuery {
  std::string name;         // "TPCH1", ...
  rel::PlanPtr plan;        // root is Count or Sum
  std::string private_table;
  /// "Count" / "Arithmetic" — Table II's query type.
  std::string query_type;
  /// True iff the query is in FLEX's supported class (count queries built
  /// from Select/Join/Filter/Count).
  bool flex_supported = false;
};

TpchQuery MakeQ1();
TpchQuery MakeQ4();
TpchQuery MakeQ6();
TpchQuery MakeQ11();
TpchQuery MakeQ13();
TpchQuery MakeQ16();
TpchQuery MakeQ21();

/// All seven, in the paper's Table II order.
std::vector<TpchQuery> AllTpchQueries();

}  // namespace upa::tpch
