#include "relational/table.h"

#include <atomic>
#include <unordered_map>

#include "common/status.h"
#include "relational/columnar.h"

namespace upa::rel {

namespace {
std::atomic<uint64_t> g_next_table_uid{1};
}  // namespace

Table::Table(std::string name, Schema schema, std::vector<Row> rows)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      rows_(std::move(rows)),
      uid_(g_next_table_uid.fetch_add(1, std::memory_order_relaxed)) {
  for (const Row& row : rows_) {
    UPA_CHECK_MSG(row.size() == schema_.NumColumns(),
                  "row arity mismatch in table " + name_);
  }
}

Table::Table(const Table& other)
    : name_(other.name_),
      schema_(other.schema_),
      rows_(other.rows_),
      uid_(other.uid_) {
  std::lock_guard lock(other.cache_mu_);
  stats_cache_ = other.stats_cache_;
  columnar_ = other.columnar_;
}

Table::Table(Table&& other) noexcept
    : name_(std::move(other.name_)),
      schema_(std::move(other.schema_)),
      rows_(std::move(other.rows_)),
      uid_(other.uid_),
      stats_cache_(std::move(other.stats_cache_)),
      columnar_(std::move(other.columnar_)) {}

Table::ColumnStats Table::StatsFor(const std::string& column) const {
  {
    std::lock_guard lock(cache_mu_);
    auto it = stats_cache_.find(column);
    if (it != stats_cache_.end()) return it->second;
  }

  // Compute outside the lock (two racing threads may both compute; the
  // result is deterministic so whichever insert wins stores the same
  // value). rows_ and schema_ are immutable after construction.
  size_t idx = schema_.IndexOf(column);
  std::unordered_map<Value, size_t, ValueHash, ValueEq> freq;
  freq.reserve(rows_.size());
  for (const Row& row : rows_) ++freq[row[idx]];

  ColumnStats stats;
  stats.distinct = freq.size();
  for (const auto& [value, count] : freq) {
    stats.max_frequency = std::max(stats.max_frequency, count);
  }

  std::lock_guard lock(cache_mu_);
  return stats_cache_.emplace(column, stats).first->second;
}

size_t Table::MaxFrequency(const std::string& column) const {
  return StatsFor(column).max_frequency;
}

size_t Table::DistinctCount(const std::string& column) const {
  return StatsFor(column).distinct;
}

std::shared_ptr<const ColumnarTable> Table::Columnar() const {
  {
    std::lock_guard lock(cache_mu_);
    if (columnar_ != nullptr) return columnar_;
  }
  std::shared_ptr<const ColumnarTable> built =
      ColumnarTable::Build(schema_, rows_);
  std::lock_guard lock(cache_mu_);
  if (columnar_ == nullptr) columnar_ = std::move(built);
  return columnar_;
}

}  // namespace upa::rel
