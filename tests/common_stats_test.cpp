#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace upa {
namespace {

TEST(MeanTest, BasicAndEmpty) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
}

TEST(VarianceTest, PopulationVsSample) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(VariancePopulation(xs), 4.0);
  EXPECT_NEAR(VarianceSample(xs), 4.571428571, 1e-9);
  EXPECT_DOUBLE_EQ(StdDevPopulation(xs), 2.0);
}

TEST(VarianceTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(VariancePopulation(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(VariancePopulation(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(VarianceSample(std::vector<double>{5.0}), 0.0);
}

TEST(MinMaxTest, Basic) {
  std::vector<double> xs{3.0, -1.0, 7.0, 0.5};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 25.0);
  EXPECT_NEAR(Percentile(xs, 25.0), 17.5, 1e-12);
}

TEST(PercentileTest, SingleElement) {
  std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 99.0), 42.0);
}

TEST(PercentileTest, UnsortedInputIsHandled) {
  std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 25.0);
}

TEST(RmseTest, KnownValue) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{2.0, 2.0, 5.0};
  // errors: -1, 0, -2 → mean square 5/3.
  EXPECT_NEAR(Rmse(a, b), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(Rmse(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(RelativeRmseTest, MatchesHandComputation) {
  std::vector<double> est{11.0, 18.0};
  std::vector<double> truth{10.0, 20.0};
  // rel errors: 0.1, -0.1 → RMSE 0.1.
  EXPECT_NEAR(RelativeRmse(est, truth), 0.1, 1e-12);
}

TEST(RelativeRmseTest, SkipsZeroTruths) {
  std::vector<double> est{5.0, 11.0};
  std::vector<double> truth{0.0, 10.0};
  EXPECT_NEAR(RelativeRmse(est, truth), 0.1, 1e-12);
}

TEST(RelativeRmseTest, AllZeroTruthsGiveZero) {
  std::vector<double> est{5.0};
  std::vector<double> truth{0.0};
  EXPECT_DOUBLE_EQ(RelativeRmse(est, truth), 0.0);
}

TEST(CoverageTest, CountsInclusiveInterval) {
  std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(CoverageFraction(xs, 1.0, 3.0), 0.6);
  EXPECT_DOUBLE_EQ(CoverageFraction(xs, -10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(CoverageFraction(xs, 5.0, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(CoverageFraction(std::vector<double>{}, 0.0, 1.0), 0.0);
}

TEST(SummaryTest, FieldsAreConsistent) {
  Rng rng(77);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.Normal(10.0, 2.0);
  Summary s = Summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_NEAR(s.mean, 10.0, 0.2);
  EXPECT_NEAR(s.stddev, 2.0, 0.2);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_FALSE(s.ToString().empty());
}

// Property sweep: percentile is monotone in p for random data.
class PercentileMonotoneSweep : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneSweep, MonotoneInP) {
  Rng rng(GetParam());
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.UniformDouble(-50.0, 50.0);
  double prev = Percentile(xs, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    double cur = Percentile(xs, p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneSweep,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace upa
