#include "relational/executor.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/exact_sum.h"
#include "common/hash.h"
#include "engine/dataset.h"
#include "engine/shuffle.h"
#include "relational/columnar.h"

namespace upa::rel {
namespace {

constexpr size_t kNoProv = std::numeric_limits<size_t>::max();

/// Cache-key tags for the row engine. The columnar engine caches
/// differently-typed entries under its own tags (relational/columnar.cpp);
/// the block cache is type-erased, so the tags must never collide.
constexpr uint64_t kRowScanTag = 0x5ca9'0000ULL;
constexpr uint64_t kRowSubtreeTag = 0xcac4'e000ULL;

/// A row in flight, carrying the private-table row index it descends from
/// (kNoProv if it involves no private record). The evaluated plans scan the
/// private table at most once, so a single slot suffices — validated below.
struct ProvRow {
  Row row;
  size_t prov = kNoProv;
};

struct Rel {
  engine::Dataset<ProvRow> data;
  Schema schema;
};

class Evaluator {
 public:
  Evaluator(engine::ExecContext* ctx, const Catalog* catalog,
            const ExecOptions& options)
      : ctx_(ctx), catalog_(catalog), options_(options) {
    engine_partitions_ = options.engine_partitions > 0
                             ? options.engine_partitions
                             : ctx->config().default_partitions;
  }

  Result<Rel> Eval(const PlanPtr& plan) {
    // Subtrees that never touch the private table are identical across a
    // query's phase runs (native, S', sample, domain), so their
    // materialized result is cached — modelling Spark's shuffle-file reuse
    // and block cache, the effect behind the paper's Fig 4(b). Keyed by the
    // plan's structural fingerprint (which folds in table uids), so
    // distinct queries never collide — not even when a freed plan or table
    // address gets recycled by the allocator.
    const bool cacheable = options_.use_scan_cache &&
                           plan->kind != PlanKind::kScan &&
                           !options_.private_table.empty() &&
                           CountScansOf(plan, options_.private_table) == 0;
    if (cacheable) {
      uint64_t key = PlanFingerprint(plan, *catalog_) ^
                     Mix64(kRowSubtreeTag + engine_partitions_) ^
                     Mix64(options_.cache_epoch);
      std::shared_ptr<const CachedRel> hit =
          ctx_->cache().Get<CachedRel>(key);
      if (hit != nullptr) {
        return Rel{engine::Dataset<ProvRow>(ctx_, hit->partitions),
                   hit->schema};
      }
      Result<Rel> fresh = EvalUncached(plan);
      if (!fresh.ok()) return fresh;
      CachedRel entry;
      auto parts = std::make_shared<std::vector<std::vector<ProvRow>>>();
      parts->reserve(fresh.value().data.NumPartitions());
      for (size_t p = 0; p < fresh.value().data.NumPartitions(); ++p) {
        parts->push_back(fresh.value().data.partition(p));
      }
      entry.partitions = std::move(parts);
      entry.schema = fresh.value().schema;
      ctx_->cache().Put<CachedRel>(key, std::move(entry));
      return fresh;
    }
    return EvalUncached(plan);
  }

 private:
  struct CachedRel {
    std::shared_ptr<const std::vector<std::vector<ProvRow>>> partitions;
    Schema schema;
  };

  Result<Rel> EvalUncached(const PlanPtr& plan) {
    switch (plan->kind) {
      case PlanKind::kScan:
        return EvalScan(plan);
      case PlanKind::kFilter:
        return EvalFilter(plan);
      case PlanKind::kJoin:
        return EvalJoin(plan);
      case PlanKind::kAggregate:
        return Status::InvalidArgument(
            "Aggregate is only supported at the plan root");
    }
    return Status::Internal("unknown plan kind");
  }
  Result<Rel> EvalScan(const PlanPtr& plan) {
    const bool is_private =
        !options_.private_table.empty() && plan->table == options_.private_table;

    auto it = catalog_->find(plan->table);
    if (it == catalog_->end()) {
      return Status::NotFound("unknown table: " + plan->table);
    }
    const Table* table = it->second;

    if (!is_private) {
      return Rel{ScanNonPrivate(table), table->schema()};
    }

    // Base rows of the private table: the catalog's or the replacement's.
    // include/exclude compose on top of the base; provenance is the row's
    // index within the base.
    const std::vector<Row>* base = options_.replace_private_rows != nullptr
                                       ? options_.replace_private_rows
                                       : &table->rows();
    std::vector<ProvRow> rows;
    if (options_.include_rows != nullptr) {
      rows.reserve(options_.include_rows->size());
      for (size_t idx : *options_.include_rows) {
        UPA_CHECK_MSG(idx < base->size(), "include_rows out of range");
        rows.push_back({(*base)[idx], idx});
      }
    } else if (options_.exclude_rows != nullptr) {
      const std::vector<size_t>& excl = *options_.exclude_rows;
      rows.reserve(base->size() - excl.size());
      size_t cursor = 0;
      for (size_t i = 0; i < base->size(); ++i) {
        if (cursor < excl.size() && excl[cursor] == i) {
          ++cursor;
          continue;
        }
        rows.push_back({(*base)[i], i});
      }
    } else {
      rows.reserve(base->size());
      for (size_t i = 0; i < base->size(); ++i) rows.push_back({(*base)[i], i});
    }
    return Rel{engine::Dataset<ProvRow>::FromVector(ctx_, std::move(rows),
                                                    engine_partitions_),
               table->schema()};
  }

  /// Non-private scans are immutable across a query's phase runs, so they
  /// are cached (keyed by table uid + parallelism) when the options allow;
  /// the repeated sampled-neighbour runs then hit Spark-style memory cache,
  /// reproducing the paper's Fig 4(b) effect.
  engine::Dataset<ProvRow> ScanNonPrivate(const Table* table) {
    using Partitions = std::vector<std::vector<ProvRow>>;
    auto materialize = [&] {
      std::vector<ProvRow> rows;
      rows.reserve(table->NumRows());
      for (const Row& row : table->rows()) rows.push_back({row, kNoProv});
      return engine::Dataset<ProvRow>::FromVector(ctx_, std::move(rows),
                                                  engine_partitions_);
    };
    if (!options_.use_scan_cache) return materialize();

    uint64_t key = Mix64(table->uid()) ^
                   Mix64(kRowScanTag + engine_partitions_) ^
                   Mix64(options_.cache_epoch);
    std::shared_ptr<const Partitions> cached =
        ctx_->cache().GetOrCompute<Partitions>(key, [&] {
          engine::Dataset<ProvRow> ds = materialize();
          Partitions parts(ds.NumPartitions());
          for (size_t p = 0; p < ds.NumPartitions(); ++p) {
            parts[p] = ds.partition(p);
          }
          return parts;
        });
    return engine::Dataset<ProvRow>(ctx_, std::move(cached));
  }

  Result<Rel> EvalFilter(const PlanPtr& plan) {
    Result<Rel> child = Eval(plan->left);
    if (!child.ok()) return child.status();
    const Schema& schema = child.value().schema;
    if (!ExprColumnsExist(plan->predicate, schema)) {
      return Status::InvalidArgument("filter references unknown column in " +
                                     plan->predicate->ToString());
    }
    auto pred = BindPredicate(plan->predicate, schema);
    return Rel{
        child.value().data.Filter([pred](const ProvRow& r) { return pred(r.row); }),
        schema};
  }

  Result<Rel> EvalJoin(const PlanPtr& plan) {
    Result<Rel> left = Eval(plan->left);
    if (!left.ok()) return left.status();
    Result<Rel> right = Eval(plan->right);
    if (!right.ok()) return right.status();

    const Schema& ls = left.value().schema;
    const Schema& rs = right.value().schema;
    auto lk = ls.Find(plan->left_key);
    auto rk = rs.Find(plan->right_key);
    if (!lk || !rk) {
      return Status::InvalidArgument("join key not found: " + plan->left_key +
                                     "=" + plan->right_key);
    }
    size_t li = *lk, ri = *rk;

    auto keyed_left = left.value().data.Map([li](const ProvRow& r) {
      return std::pair<int64_t, ProvRow>{AsInt(r.row[li]), r};
    });
    auto keyed_right = right.value().data.Map([ri](const ProvRow& r) {
      return std::pair<int64_t, ProvRow>{AsInt(r.row[ri]), r};
    });
    auto joined =
        engine::HashJoin(keyed_left, keyed_right, engine_partitions_);

    auto combined = joined.Map(
        [](const std::pair<int64_t, std::pair<ProvRow, ProvRow>>& kv) {
          const ProvRow& a = kv.second.first;
          const ProvRow& b = kv.second.second;
          ProvRow out;
          out.row.reserve(a.row.size() + b.row.size());
          out.row.insert(out.row.end(), a.row.begin(), a.row.end());
          out.row.insert(out.row.end(), b.row.begin(), b.row.end());
          // At most one side carries private provenance (single private
          // scan, validated in Execute).
          out.prov = a.prov != kNoProv ? a.prov : b.prov;
          return out;
        });
    return Rel{combined, Schema::Concat(ls, rs)};
  }

  engine::ExecContext* ctx_;
  const Catalog* catalog_;
  const ExecOptions& options_;
  size_t engine_partitions_;
};

/// Avg / Min / Max: plain scalar results, no provenance semantics. The sum
/// behind Avg is exact (ExactSum), so the result does not depend on row
/// order — the columnar engine computes the bit-identical value.
Result<ExecResult> ExecuteNonAdditive(
    AggKind agg, const engine::Dataset<ProvRow>& data,
    const std::function<double(const Row&)>& weight_of) {
  ExecResult result;
  ExactSum sum;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (size_t p = 0; p < data.NumPartitions(); ++p) {
    for (const ProvRow& r : data.partition(p)) {
      double w = weight_of(r.row);
      sum.Add(w);
      mn = std::min(mn, w);
      mx = std::max(mx, w);
      ++result.result_rows;
    }
  }
  if (result.result_rows == 0) {
    return Status::FailedPrecondition(
        "Avg/Min/Max aggregate over an empty relation");
  }
  switch (agg) {
    case AggKind::kAvg:
      result.output = sum.Round() / static_cast<double>(result.result_rows);
      break;
    case AggKind::kMin:
      result.output = mn;
      break;
    case AggKind::kMax:
      result.output = mx;
      break;
    default:
      return Status::Internal("ExecuteNonAdditive on additive aggregate");
  }
  return result;
}

}  // namespace

PlanExecutor::PlanExecutor(engine::ExecContext* ctx, const Catalog* catalog)
    : ctx_(ctx), catalog_(catalog) {
  UPA_CHECK(ctx_ != nullptr && catalog_ != nullptr);
}

Result<ExecResult> PlanExecutor::Execute(const PlanPtr& plan,
                                         const ExecOptions& options) const {
  if (plan == nullptr || plan->kind != PlanKind::kAggregate) {
    return Status::InvalidArgument("plan root must be an Aggregate");
  }
  if (options.include_rows != nullptr && options.exclude_rows != nullptr) {
    return Status::InvalidArgument(
        "include_rows and exclude_rows are mutually exclusive");
  }
  const bool needs_prov = !options.private_table.empty();
  if (needs_prov) {
    size_t scans = CountScansOf(plan, options.private_table);
    if (scans == 0) {
      return Status::InvalidArgument("private table not scanned by plan: " +
                                     options.private_table);
    }
    if (scans > 1) {
      return Status::Unsupported(
          "private table scanned more than once (self-join provenance is "
          "not supported): " +
          options.private_table);
    }
  }

  if (options.engine == ExecEngine::kColumnar) {
    return ExecuteColumnar(ctx_, catalog_, plan, options);
  }

  Evaluator evaluator(ctx_, catalog_, options);
  Result<Rel> rel = evaluator.Eval(plan->left);
  if (!rel.ok()) return rel.status();

  const Schema& schema = rel.value().schema;
  const bool additive =
      plan->agg == AggKind::kCount || plan->agg == AggKind::kSum;
  if (!additive && (options.partitions > 0 || options.track_contributions)) {
    return Status::Unsupported(
        "provenance (partitions/contributions) requires an additive "
        "aggregate (Count or Sum)");
  }
  std::function<double(const Row&)> weight_of;
  if (plan->agg == AggKind::kCount) {
    weight_of = [](const Row&) { return 1.0; };
  } else {
    if (plan->agg_expr == nullptr) {
      return Status::InvalidArgument("aggregate missing expression");
    }
    if (!ExprColumnsExist(plan->agg_expr, schema)) {
      return Status::InvalidArgument(
          "aggregate expression references unknown column in " +
          schema.ToString());
    }
    weight_of = BindNumeric(plan->agg_expr, schema);
  }
  if (!additive) {
    return ExecuteNonAdditive(plan->agg, rel.value().data, weight_of);
  }

  // Weighted provenance pairs. Every accumulation below goes through
  // ExactSum, whose result is independent of addition order — so the
  // output, the per-record contributions and the per-partition outputs are
  // bit-identical across engine partitionings AND bit-identical to the
  // columnar engine (the differential harness asserts both).
  auto weighted = rel.value().data.Map([weight_of](const ProvRow& r) {
    return std::pair<double, size_t>{weight_of(r.row), r.prov};
  });

  ExecResult result;
  ExactSum output_sum;
  std::unordered_map<size_t, ExactSum> contrib;
  for (size_t p = 0; p < weighted.NumPartitions(); ++p) {
    for (const auto& [w, prov] : weighted.partition(p)) {
      output_sum.Add(w);
      ++result.result_rows;
      if (options.track_contributions && prov != kNoProv) {
        contrib[prov].Add(w);
      }
    }
  }
  result.output = output_sum.Round();
  if (options.track_contributions) {
    result.contributions.reserve(contrib.size());
    for (const auto& [prov, sum] : contrib) {
      result.contributions[prov] = sum.Round();
    }
  }

  if (options.partitions > 0) {
    // Per-enforcer-partition aggregation goes through a *real* record
    // shuffle: the RANGE ENFORCER "exchanges the data records which belong
    // to the same partition between computers" (paper §VI-D), which is
    // where the local-computation queries' overhead comes from.
    const size_t parts = options.partitions;
    // Rows with no private provenance count toward every partition (they
    // are unaffected by any private record); summed once, added to all.
    ExactSum base;
    for (size_t p = 0; p < weighted.NumPartitions(); ++p) {
      for (const auto& [w, prov] : weighted.partition(p)) {
        if (prov == kNoProv) base.Add(w);
      }
    }
    // Map-side projection before the exchange (Spark prunes columns the
    // downstream aggregation doesn't need): only (partition, weight)
    // crosses the wire.
    auto keyed = weighted
                     .Filter([](const std::pair<double, size_t>& wp) {
                       return wp.second != kNoProv;
                     })
                     .Map([parts](const std::pair<double, size_t>& wp) {
                       return std::pair<size_t, double>{wp.second % parts,
                                                        wp.first};
                     });
    auto shuffled = engine::ShuffleByKey(keyed, parts);
    std::vector<ExactSum> pid_sums(parts);
    for (size_t p = 0; p < shuffled.NumPartitions(); ++p) {
      for (const auto& [pid, w] : shuffled.partition(p)) {
        pid_sums[pid].Add(w);
      }
    }
    result.partition_outputs.resize(parts);
    for (size_t pid = 0; pid < parts; ++pid) {
      ExactSum t = base;
      t.Merge(pid_sums[pid]);
      result.partition_outputs[pid] = t.Round();
    }
  }
  return result;
}

}  // namespace upa::rel
