file(REMOVE_RECURSE
  "CMakeFiles/engine_shuffle_test.dir/engine_shuffle_test.cpp.o"
  "CMakeFiles/engine_shuffle_test.dir/engine_shuffle_test.cpp.o.d"
  "engine_shuffle_test"
  "engine_shuffle_test.pdb"
  "engine_shuffle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_shuffle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
