# Empty compiler generated dependencies file for dp_mechanism_test.
# This may be replaced when dependencies are built.
