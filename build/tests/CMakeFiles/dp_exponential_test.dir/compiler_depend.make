# Empty compiler generated dependencies file for dp_exponential_test.
# This may be replaced when dependencies are built.
