# Empty dependencies file for tpch_sweep_test.
# This may be replaced when dependencies are built.
