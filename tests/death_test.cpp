// Precondition-violation (UPA_CHECK) death tests: programming errors must
// abort loudly, not corrupt privacy state silently.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "dp/mechanism.h"
#include "engine/dataset.h"
#include "relational/value.h"
#include "upa/exclusion.h"
#include "upa/types.h"

namespace upa {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, RngRejectsZeroBound) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformU64(0), "n > 0");
}

TEST(DeathTest, RngRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformInt(5, 2), "lo <= hi");
}

TEST(DeathTest, RngRejectsOversample) {
  Rng rng(1);
  EXPECT_DEATH(rng.SampleWithoutReplacement(3, 5), "population");
}

TEST(DeathTest, PercentileRejectsEmpty) {
  std::vector<double> empty;
  EXPECT_DEATH(Percentile(empty, 50.0), "empty");
}

TEST(DeathTest, PercentileRejectsOutOfRangeP) {
  std::vector<double> xs{1.0};
  EXPECT_DEATH(Percentile(xs, 101.0), "percentile");
}

TEST(DeathTest, LaplaceRejectsNonPositiveEpsilon) {
  Rng rng(1);
  EXPECT_DEATH(dp::LaplaceMechanism(1.0, 1.0, 0.0, rng), "epsilon");
}

TEST(DeathTest, LaplaceRejectsNegativeSensitivity) {
  Rng rng(1);
  EXPECT_DEATH(dp::LaplaceMechanism(1.0, -1.0, 0.5, rng), "sensitivity");
}

TEST(DeathTest, ExclusionRejectsEmptySample) {
  std::vector<core::Vec> empty;
  EXPECT_DEATH(
      core::ExclusionAggregate(empty, core::ExclusionStrategy::kScan),
      "empty sample");
}

TEST(DeathTest, ExclusionRejectsUnknownStrategy) {
  // A silent `return {}` here once let a misconfigured enum produce an
  // empty exclusion set that the runner then indexed out of range.
  std::vector<core::Vec> mapped{{1.0}, {2.0}};
  EXPECT_DEATH(
      core::ExclusionAggregate(mapped,
                               static_cast<core::ExclusionStrategy>(99)),
      "ExclusionStrategy");
}

TEST(DeathTest, PercentileIntervalRejectsBoundaryPercentiles) {
  // Regression: lo_pct <= 0 / hi_pct >= 100 used to crash deep inside
  // StandardNormalQuantile with the unhelpful "(0,1)" message; the API
  // boundary now rejects them with a percentile-flavoured message.
  std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DEATH(NormalPercentileInterval(xs, 0.0, 99.0),
               "strictly inside \\(0, 100\\)");
  EXPECT_DEATH(NormalPercentileInterval(xs, -5.0, 99.0),
               "strictly inside \\(0, 100\\)");
  EXPECT_DEATH(NormalPercentileInterval(xs, 1.0, 100.0),
               "strictly inside \\(0, 100\\)");
  EXPECT_DEATH(NormalPercentileInterval(xs, 1.0, 120.0),
               "strictly inside \\(0, 100\\)");
}

TEST(DeathTest, VecSumRejectsDimensionMismatch) {
  core::Vec a{1.0, 2.0};
  core::Vec b{1.0, 2.0, 3.0};
  EXPECT_DEATH(core::VecSum::Combine(a, b), "dimensions");
}

TEST(DeathTest, DatasetRejectsNullContext) {
  EXPECT_DEATH(engine::Dataset<int>::FromVector(nullptr, {1, 2}),
               "ctx != nullptr");
}

TEST(DeathTest, ValueAccessorsRejectWrongType) {
  rel::Value s{std::string("x")};
  EXPECT_DEATH(rel::AsInt(s), "not an int");
  EXPECT_DEATH(rel::AsNumeric(s), "not numeric");
  rel::Value i{int64_t{1}};
  EXPECT_DEATH(rel::AsString(i), "not a string");
}

TEST(DeathTest, ValueCompareRejectsMixedStringNumeric) {
  EXPECT_DEATH(
      rel::Compare(rel::Value{int64_t{1}}, rel::Value{std::string("1")}),
      "cannot compare");
}

}  // namespace
}  // namespace upa
