# Empty dependencies file for upa_rules_test.
# This may be replaced when dependencies are built.
