file(REMOVE_RECURSE
  "CMakeFiles/upa_runner_test.dir/upa_runner_test.cpp.o"
  "CMakeFiles/upa_runner_test.dir/upa_runner_test.cpp.o.d"
  "upa_runner_test"
  "upa_runner_test.pdb"
  "upa_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
