// Lineage-based fault recovery for datasets.
//
// Spark's resilience model — and the reason MapReduce operators are
// commutative/associative to begin with (paper §II-C) — is that a lost
// partition is *recomputed from its lineage* rather than replicated.
// LineageDataset wraps a Dataset with the recipe that produced each
// partition, so a simulated executor loss can be recovered and verified:
//
//   auto src = MakeSource(ds);                      // root: re-read input
//   auto mapped = src.Map([](int v) { return v*2; });
//   auto lost = mapped.data().partition(1);         // pretend this is gone
//   auto recovered = mapped.RecomputePartition(1);  // rebuild from lineage
//   assert(recovered == lost);
//
// Narrow dependencies (map/filter) recompute one parent partition; the
// engine's wide operations would recompute the whole parent stage (as
// Spark does without checkpointing) — exposed as RecomputeAll.
#pragma once

#include <functional>
#include <memory>

#include "engine/dataset.h"

namespace upa::engine {

template <typename T>
class LineageDataset {
 public:
  using Partition = std::vector<T>;

  /// Root of a lineage chain: partitions are "re-read" from the retained
  /// source dataset (standing in for durable input storage).
  static LineageDataset MakeSource(Dataset<T> data) {
    Dataset<T> copy = data;
    return LineageDataset(
        std::move(data),
        [copy](size_t p) { return copy.partition(p); });
  }

  const Dataset<T>& data() const { return data_; }
  size_t NumPartitions() const { return data_.NumPartitions(); }

  /// Narrow transformation with lineage: the child's partition p depends
  /// only on the parent's partition p.
  template <typename Fn, typename U = std::invoke_result_t<Fn, const T&>>
  LineageDataset<U> Map(Fn fn) const {
    Dataset<U> mapped = data_.Map(fn);
    auto parent_recompute = recompute_;
    auto recompute = [parent_recompute, fn](size_t p) {
      std::vector<U> out;
      Partition parent = parent_recompute(p);
      out.reserve(parent.size());
      for (const T& v : parent) out.push_back(fn(v));
      return out;
    };
    return LineageDataset<U>(std::move(mapped), std::move(recompute));
  }

  template <typename Pred>
  LineageDataset<T> Filter(Pred pred) const {
    Dataset<T> filtered = data_.Filter(pred);
    auto parent_recompute = recompute_;
    auto recompute = [parent_recompute, pred](size_t p) {
      Partition out;
      for (const T& v : parent_recompute(p)) {
        if (pred(v)) out.push_back(v);
      }
      return out;
    };
    return LineageDataset<T>(std::move(filtered), std::move(recompute));
  }

  /// Rebuilds partition p purely from lineage (no access to the stored
  /// partition). Recovery correctness = result equals data().partition(p).
  Partition RecomputePartition(size_t p) const {
    UPA_CHECK_MSG(p < NumPartitions(), "partition out of range");
    return recompute_(p);
  }

  /// Full-stage recompute (what a wide dependency forces).
  std::vector<Partition> RecomputeAll() const {
    std::vector<Partition> out(NumPartitions());
    for (size_t p = 0; p < NumPartitions(); ++p) out[p] = recompute_(p);
    return out;
  }

  // Exposed for LineageDataset<U> interop.
  LineageDataset(Dataset<T> data, std::function<Partition(size_t)> recompute)
      : data_(std::move(data)), recompute_(std::move(recompute)) {
    UPA_CHECK_MSG(recompute_ != nullptr, "lineage requires a recompute fn");
  }

 private:
  Dataset<T> data_;
  std::function<Partition(size_t)> recompute_;
};

}  // namespace upa::engine
