# Empty compiler generated dependencies file for upa_benchutil.
# This may be replaced when dependencies are built.
