// Privacy-budget accounting.
//
// Sequential composition: a sequence of ε_i-iDP releases on the same dataset
// is (Σ ε_i)-iDP. The accountant tracks consumption per dataset and refuses
// queries that would exceed the configured budget — the operational side of
// "the analyst keeps conducting queries on one dataset" in UPA's threat
// model (§III).
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace upa::dp {

class PrivacyAccountant {
 public:
  explicit PrivacyAccountant(double total_budget)
      : total_budget_(total_budget) {}

  /// Try to consume `epsilon` from the budget of `dataset_id`.
  /// Fails with OUT_OF_RANGE when the budget would be exceeded.
  Status Charge(const std::string& dataset_id, double epsilon);

  /// Return `epsilon` to the budget of `dataset_id` — the second half of
  /// the charge/refund two-phase release: a query is charged before it
  /// runs and refunded if it fails before anything was released, so a
  /// failed query doesn't burn budget. The refund is bounded by what was
  /// actually spent (over-refunding can't mint budget).
  Status Refund(const std::string& dataset_id, double epsilon);

  double Spent(const std::string& dataset_id) const;
  /// total_budget − Spent, clamped at 0: the `1e-12` acceptance slack in
  /// Charge means Spent can exceed the budget by a hair, and a tiny
  /// negative remainder reads as corruption to callers.
  double Remaining(const std::string& dataset_id) const;
  double total_budget() const { return total_budget_; }

 private:
  double total_budget_;
  mutable std::mutex mu_;
  std::map<std::string, double> spent_;
};

}  // namespace upa::dp
