#include "bench_util/harness.h"

#include <cstdio>

#include "common/env.h"

namespace upa::bench {

BenchEnv BenchEnv::FromEnv() {
  BenchEnv env;
  env.orders = static_cast<size_t>(EnvInt("UPA_ORDERS", 5000));
  env.ml_points = static_cast<size_t>(EnvInt("UPA_ML_POINTS", 20000));
  env.sample_n = static_cast<size_t>(EnvInt("UPA_SAMPLE_N", 1000));
  env.trials = static_cast<size_t>(EnvInt("UPA_TRIALS", 5));
  env.runs = static_cast<size_t>(EnvInt("UPA_RUNS", 10));
  env.seed = static_cast<uint64_t>(EnvInt("UPA_SEED", 42));
  env.threads = static_cast<size_t>(EnvInt("UPA_THREADS", 0));
  return env;
}

queries::SuiteConfig BenchEnv::MakeSuiteConfig(uint64_t seed_offset) const {
  queries::SuiteConfig cfg;
  cfg.tpch.num_orders = orders;
  cfg.tpch.seed = seed + seed_offset;
  cfg.ml.num_points = ml_points;
  cfg.ml.seed = seed + seed_offset + 7777;
  cfg.threads = threads;
  cfg.engine_partitions = 4;
  return cfg;
}

core::UpaConfig BenchEnv::MakeUpaConfig() const {
  core::UpaConfig cfg;
  cfg.sample_n = sample_n;
  cfg.epsilon = 0.1;  // the paper's evaluation setting
  return cfg;
}

void PrintBanner(const std::string& experiment, const BenchEnv& env) {
  std::printf(
      "############################################################\n"
      "# %s\n"
      "# orders=%zu ml_points=%zu sample_n=%zu trials=%zu runs=%zu seed=%llu\n"
      "############################################################\n",
      experiment.c_str(), env.orders, env.ml_points, env.sample_n, env.trials,
      env.runs, static_cast<unsigned long long>(env.seed));
  std::fflush(stdout);
}

}  // namespace upa::bench
