#include "relational/optimizer.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>

#include "relational/card_est.h"
#include "relational/cost_model.h"
#include "relational/executor.h"
#include "relational/sql_parser.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace upa::rel {
namespace {

TEST(SplitConjunctsTest, SplitsNestedAnds) {
  auto e = And(And(Eq(Col("a"), Lit(int64_t{1})), Lt(Col("b"), Lit(2.0))),
               Gt(Col("c"), Lit(3.0)));
  auto parts = SplitConjuncts(e);
  EXPECT_EQ(parts.size(), 3u);
}

TEST(SplitConjunctsTest, OrIsNotSplit) {
  auto e = Or(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(int64_t{2})));
  EXPECT_EQ(SplitConjuncts(e).size(), 1u);
}

TEST(ReferencedColumnsTest, CollectsAllColumns) {
  auto e = And(Eq(Col("x"), Lit(int64_t{1})), Lt(Add(Col("y"), Col("z")),
                                                 Lit(5.0)));
  auto cols = ReferencedColumns(e);
  EXPECT_EQ(cols.size(), 3u);
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : data_([] {
          tpch::TpchConfig cfg;
          cfg.num_orders = 300;
          return cfg;
        }()),
        ctx_(engine::ExecConfig{.threads = 2, .default_partitions = 3}),
        catalog_(data_.catalog()),
        executor_(&ctx_, &catalog_) {}

  tpch::TpchDataset data_;
  engine::ExecContext ctx_;
  Catalog catalog_;
  PlanExecutor executor_;
};

TEST_F(OptimizerTest, SingleTablePredicateReachesScan) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey "
      "WHERE o_orderdate < 500");
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = PushDownFilters(plan.value(), catalog_);
  std::string s = PlanToString(optimized);
  // The orders predicate must sit below the join, directly over its scan.
  EXPECT_NE(s.find("Join(Filter(Scan(orders)"), std::string::npos) << s;
}

TEST_F(OptimizerTest, CrossTablePredicateStaysAboveJoin) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey "
      "WHERE o_orderdate < l_shipdate");
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = PushDownFilters(plan.value(), catalog_);
  std::string s = PlanToString(optimized);
  EXPECT_NE(s.find("Filter(Join("), std::string::npos) << s;
}

TEST_F(OptimizerTest, MixedPredicatesSplitCorrectly) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey "
      "WHERE o_orderdate < 500 AND l_quantity > 10 AND "
      "o_orderdate < l_shipdate");
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = PushDownFilters(plan.value(), catalog_);
  std::string s = PlanToString(optimized);
  EXPECT_NE(s.find("Filter(Scan(orders)"), std::string::npos) << s;
  EXPECT_NE(s.find("Filter(Scan(lineitem)"), std::string::npos) << s;
  EXPECT_NE(s.find("Filter(Join("), std::string::npos) << s;
}

TEST_F(OptimizerTest, PlanWithoutFiltersUnchanged) {
  auto plan = ParseSql("SELECT COUNT(*) FROM lineitem");
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = PushDownFilters(plan.value(), catalog_);
  EXPECT_EQ(PlanToString(optimized), PlanToString(plan.value()));
}

TEST_F(OptimizerTest, OptimizedPlanGivesIdenticalResults) {
  for (const char* sql : {
           "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = "
           "l_orderkey WHERE o_orderdate >= 400 AND o_orderdate < 900 AND "
           "l_commitdate < l_receiptdate",
           "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE "
           "l_shipdate >= 365 AND l_discount >= 0.03",
           "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = "
           "o_custkey WHERE o_orderpriority <> '1-URGENT' AND "
           "c_nationkey < 10",
       }) {
    auto plan = ParseSql(sql);
    ASSERT_TRUE(plan.ok()) << sql;
    PlanPtr optimized = PushDownFilters(plan.value(), catalog_);
    auto base = executor_.Execute(plan.value());
    auto opt = executor_.Execute(optimized);
    ASSERT_TRUE(base.ok() && opt.ok()) << sql;
    EXPECT_NEAR(base.value().output, opt.value().output, 1e-9) << sql;
  }
}

TEST_F(OptimizerTest, OptimizedPlanPreservesContributions) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = o_custkey "
      "WHERE o_orderpriority <> '1-URGENT' AND c_nationkey < 15");
  ASSERT_TRUE(plan.ok());
  PlanPtr optimized = PushDownFilters(plan.value(), catalog_);

  ExecOptions opts;
  opts.private_table = "orders";
  opts.track_contributions = true;
  auto base = executor_.Execute(plan.value(), opts);
  auto opt = executor_.Execute(optimized, opts);
  ASSERT_TRUE(base.ok() && opt.ok());
  EXPECT_EQ(base.value().contributions.size(),
            opt.value().contributions.size());
  for (const auto& [idx, infl] : base.value().contributions) {
    auto it = opt.value().contributions.find(idx);
    ASSERT_NE(it, opt.value().contributions.end()) << idx;
    EXPECT_NEAR(it->second, infl, 1e-9);
  }
}

TEST_F(OptimizerTest, HandBuiltTpchPlansSurvivePushdown) {
  // The hand-built queries already filter before joining; pushdown must
  // not change their results.
  for (const auto& q : tpch::AllTpchQueries()) {
    PlanPtr optimized = PushDownFilters(q.plan, catalog_);
    auto base = executor_.Execute(q.plan);
    auto opt = executor_.Execute(optimized);
    ASSERT_TRUE(base.ok() && opt.ok()) << q.name;
    EXPECT_NEAR(base.value().output, opt.value().output, 1e-9) << q.name;
  }
}

TEST_F(OptimizerTest, TpchSqlFormsMatchHandBuiltPlans) {
  // The paper's queries written as SQL + pushdown == the hand-built
  // filter-before-join plans, output-wise.
  struct SqlCase {
    const char* name;
    const char* sql;
  };
  for (const SqlCase& c : std::initializer_list<SqlCase>{
           {"TPCH1", "SELECT COUNT(*) FROM lineitem"},
           {"TPCH4",
            "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = "
            "l_orderkey WHERE o_orderdate >= 400 AND o_orderdate < 490 AND "
            "l_commitdate < l_receiptdate"},
           {"TPCH6",
            "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE "
            "l_shipdate >= 365 AND l_shipdate < 730 AND l_discount >= 0.05 "
            "AND l_discount <= 0.07 AND l_quantity < 24.0"},
           {"TPCH13",
            "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = "
            "o_custkey WHERE o_orderpriority <> '1-URGENT'"},
       }) {
    auto sql_plan = ParseSql(c.sql);
    ASSERT_TRUE(sql_plan.ok()) << c.name;
    PlanPtr optimized = PushDownFilters(sql_plan.value(), catalog_);
    auto sql_result = executor_.Execute(optimized);
    ASSERT_TRUE(sql_result.ok()) << c.name;

    for (const auto& q : tpch::AllTpchQueries()) {
      if (q.name != c.name) continue;
      auto hand = executor_.Execute(q.plan);
      ASSERT_TRUE(hand.ok()) << c.name;
      EXPECT_NEAR(sql_result.value().output, hand.value().output, 1e-6)
          << c.name;
    }
  }
}

// --- Regression: aggregates below the root used to hard-abort pushdown. ---

TEST_F(OptimizerTest, PushdownTreatsNestedAggregateAsBarrier) {
  // Join over an aggregate subquery. Before the barrier fix, Sink() hit a
  // UPA_CHECK on the non-root aggregate and aborted the process.
  PlanPtr inner = CountPlan(
      FilterPlan(ScanPlan("lineitem"), Lt(Col("l_quantity"), Lit(10.0))));
  PlanPtr join = JoinPlan(ScanPlan("orders"), inner, "o_orderkey", "count");
  PlanPtr plan = CountPlan(
      FilterPlan(join, Lt(Col("o_orderdate"), Lit(int64_t{500}))));

  PlanPtr optimized = PushDownFilters(plan, catalog_);
  std::string s = PlanToString(optimized);
  // The orders conjunct sinks to its scan; the aggregate subtree keeps its
  // own filter inside (nothing crosses the barrier in either direction).
  EXPECT_NE(s.find("Filter(Scan(orders)"), std::string::npos) << s;
  EXPECT_NE(s.find("Count(Filter(Scan(lineitem)"), std::string::npos) << s;
}

TEST_F(OptimizerTest, PushdownNeverSinksThroughAggregate) {
  // A filter over a nested aggregate's (scalar) output must stay above the
  // aggregate even though the column name matches the child's schema.
  PlanPtr plan = CountPlan(FilterPlan(CountPlan(ScanPlan("lineitem")),
                                      Gt(Col("l_quantity"), Lit(5.0))));
  PlanPtr optimized = PushDownFilters(plan, catalog_);
  EXPECT_EQ(PlanToString(optimized), PlanToString(plan));
}

// --- Regression: conjuncts on a column both join sides provide used to ---
// --- sink into whichever side was tried first.                          ---

class AmbiguousSchemaTest : public ::testing::Test {
 protected:
  AmbiguousSchemaTest()
      : t1_("t1",
            Schema({{"id", ValueType::kInt}, {"v", ValueType::kDouble}}),
            {{Value{int64_t{1}}, Value{0.5}}, {Value{int64_t{2}}, Value{1.5}}}),
        t2_("t2",
            Schema({{"id", ValueType::kInt}, {"w", ValueType::kDouble}}),
            {{Value{int64_t{1}}, Value{2.5}}, {Value{int64_t{3}}, Value{3.5}}}),
        catalog_{{"t1", &t1_}, {"t2", &t2_}} {}

  Table t1_, t2_;
  Catalog catalog_;
};

TEST_F(AmbiguousSchemaTest, AmbiguousColumnConjunctStaysAboveJoin) {
  // `id` exists in both t1 and t2: pushing `id > 3` into either side would
  // silently resolve it against one table. It must stay above the join.
  PlanPtr plan = CountPlan(
      FilterPlan(JoinPlan(ScanPlan("t1"), ScanPlan("t2"), "id", "id"),
                 And(Gt(Col("id"), Lit(int64_t{3})),
                     Lt(Col("v"), Lit(1.0)))));
  PlanPtr optimized = PushDownFilters(plan, catalog_);
  std::string s = PlanToString(optimized);
  // The unambiguous conjunct sinks to t1's scan...
  EXPECT_NE(s.find("Filter(Scan(t1), (v < 1"), std::string::npos) << s;
  // ...while the ambiguous one stays above the join: `id` never appears in
  // a scan-level filter.
  EXPECT_NE(s.find("Filter(Join("), std::string::npos) << s;
  EXPECT_EQ(s.find("Filter(Scan(t1), (id"), std::string::npos) << s;
  EXPECT_EQ(s.find("Filter(Scan(t2)"), std::string::npos) << s;
}

// --- Cardinality estimator -------------------------------------------------

TEST_F(OptimizerTest, EstimatorScanRowsAreExact) {
  CardinalityEstimator est(&catalog_);
  EXPECT_DOUBLE_EQ(est.EstimateRows(ScanPlan("orders")),
                   static_cast<double>(data_.table("orders").NumRows()));
  EXPECT_DOUBLE_EQ(est.EstimateRows(ScanPlan("no_such_table")), 0.0);
}

TEST_F(OptimizerTest, EqualitySelectivityIsOneOverNdv) {
  CardinalityEstimator est(&catalog_);
  PlanPtr scan = ScanPlan("orders");
  const double ndv =
      static_cast<double>(data_.table("orders").DistinctCount("o_orderkey"));
  EXPECT_NEAR(
      est.EstimateSelectivity(Eq(Col("o_orderkey"), Lit(int64_t{1})), scan),
      1.0 / ndv, 1e-12);
}

TEST_F(OptimizerTest, RangeSelectivityFollowsHistogram) {
  CardinalityEstimator est(&catalog_);
  PlanPtr scan = ScanPlan("lineitem");
  const double narrow =
      est.EstimateSelectivity(Lt(Col("l_quantity"), Lit(5.0)), scan);
  const double wide =
      est.EstimateSelectivity(Lt(Col("l_quantity"), Lit(40.0)), scan);
  EXPECT_LT(narrow, wide);
  EXPECT_GE(narrow, 0.0);
  EXPECT_LE(wide, 1.0);
  // Mirrored literal-column comparison estimates the same fraction.
  EXPECT_DOUBLE_EQ(
      est.EstimateSelectivity(Gt(Lit(5.0), Col("l_quantity")), scan), narrow);
}

TEST_F(OptimizerTest, ConjunctionMultipliesSelectivities) {
  CardinalityEstimator est(&catalog_);
  PlanPtr scan = ScanPlan("lineitem");
  ExprPtr a = Lt(Col("l_quantity"), Lit(20.0));
  ExprPtr b = Ge(Col("l_discount"), Lit(0.05));
  EXPECT_NEAR(est.EstimateSelectivity(And(a, b), scan),
              est.EstimateSelectivity(a, scan) *
                  est.EstimateSelectivity(b, scan),
              1e-12);
}

TEST_F(OptimizerTest, JoinEstimateUsesKeyDistinct) {
  CardinalityEstimator est(&catalog_);
  PlanPtr join = JoinPlan(ScanPlan("customer"), ScanPlan("orders"),
                          "c_custkey", "o_custkey");
  const double c = est.EstimateRows(ScanPlan("customer"));
  const double o = est.EstimateRows(ScanPlan("orders"));
  const double ndv = std::max(est.KeyDistinct(ScanPlan("customer"), "c_custkey"),
                              est.KeyDistinct(ScanPlan("orders"), "o_custkey"));
  ASSERT_GT(ndv, 0.0);
  EXPECT_NEAR(est.EstimateRows(join), c * o / ndv, 1e-9);
}

// --- Cost model ------------------------------------------------------------

TEST_F(OptimizerTest, CostModelChargesForFilterAndJoin) {
  CardinalityEstimator est(&catalog_);
  CostModel cost;
  const double scan = cost.PlanCost(ScanPlan("lineitem"), est);
  const double filtered = cost.PlanCost(
      FilterPlan(ScanPlan("lineitem"), Lt(Col("l_quantity"), Lit(20.0))),
      est);
  EXPECT_GT(scan, 0.0);
  EXPECT_GT(filtered, scan);  // filter evaluation is not free
  const double joined = cost.PlanCost(
      JoinPlan(ScanPlan("customer"), ScanPlan("orders"), "c_custkey",
               "o_custkey"),
      est);
  EXPECT_GT(joined, cost.PlanCost(ScanPlan("customer"), est) +
                        cost.PlanCost(ScanPlan("orders"), est));
}

// --- Cost-based rewrites ---------------------------------------------------

TEST_F(OptimizerTest, DisabledOptionsReturnPlanUnchanged) {
  for (const auto& q : tpch::AllTpchQueries()) {
    EXPECT_EQ(Optimize(q.plan, catalog_, OptimizerOptions::Disabled()).get(),
              q.plan.get())
        << q.name;
  }
}

TEST_F(OptimizerTest, ConjunctsOrderedBySelectivity) {
  // An equality on a high-ndv key is far more selective than qty >= 0
  // (which keeps everything): ordering must put the equality first.
  OptimizerOptions opt = OptimizerOptions::Disabled();
  opt.order_conjuncts = true;
  PlanPtr plan = CountPlan(
      FilterPlan(ScanPlan("lineitem"),
                 And(Ge(Col("l_quantity"), Lit(0.0)),
                     Eq(Col("l_orderkey"), Lit(int64_t{7})))));
  PlanPtr optimized = Optimize(plan, catalog_, opt);
  std::string s = PlanToString(optimized);
  EXPECT_LT(s.find("l_orderkey"), s.find("l_quantity")) << s;
}

TEST_F(OptimizerTest, BuildSideHintFollowsEstimates) {
  PlanPtr plan = CountPlan(JoinPlan(ScanPlan("orders"), ScanPlan("lineitem"),
                                    "o_orderkey", "l_orderkey"));
  PlanPtr optimized = Optimize(plan, catalog_);
  ASSERT_EQ(optimized->left->kind, PlanKind::kJoin);
  // orders is the (much) smaller side.
  EXPECT_EQ(optimized->left->build_side, BuildSide::kLeft);

  // The same join with lineitem as the privacy unit keeps kAuto: phase
  // runs shrink the private side at runtime.
  OptimizerOptions opt;
  opt.private_table = "lineitem";
  PlanPtr guarded = Optimize(plan, catalog_, opt);
  ASSERT_EQ(guarded->left->kind, PlanKind::kJoin);
  EXPECT_EQ(guarded->left->build_side, BuildSide::kAuto);
}

TEST_F(OptimizerTest, ReorderJoinsKeepsResultsBitIdentical) {
  // TPCH21 chains supplier ⋈ lineitem ⋈ orders ⋈ nation with nation
  // filtered to ~one row; a cost-based reorder should start from the
  // cheap nation edge — and must not change a single output bit.
  for (const auto& q : tpch::AllTpchQueries()) {
    PlanPtr optimized = Optimize(q.plan, catalog_);
    auto base = executor_.Execute(q.plan);
    auto opt = executor_.Execute(optimized);
    ASSERT_TRUE(base.ok() && opt.ok()) << q.name;
    EXPECT_EQ(std::bit_cast<uint64_t>(base.value().output),
              std::bit_cast<uint64_t>(opt.value().output))
        << q.name;
  }
}

TEST_F(OptimizerTest, ReorderJoinsPicksCheapNationEdgeFirst) {
  for (const auto& q : tpch::AllTpchQueries()) {
    if (q.name != "TPCH21") continue;
    PlanPtr optimized = Optimize(q.plan, catalog_);
    std::string s = PlanToString(optimized);
    // Hand-built Q21 joins nation last; the reorder joins the ~one-row
    // nation relation before the big lineitem/orders joins.
    EXPECT_LT(s.find("Scan(nation)"), s.find("Scan(orders)")) << s;
  }
}

TEST_F(OptimizerTest, LiftFiltersProducesSqlShape) {
  for (const auto& q : tpch::AllTpchQueries()) {
    PlanPtr lifted = LiftFilters(q.plan);
    // All filters conjoin into (at most) one node directly under the root
    // aggregate — the shape the SQL front-end emits.
    PlanStats stats = AnalyzePlan(lifted);
    EXPECT_LE(stats.num_filters, 1u) << q.name;
    auto base = executor_.Execute(q.plan);
    auto lift = executor_.Execute(lifted);
    ASSERT_TRUE(base.ok() && lift.ok()) << q.name;
    EXPECT_EQ(std::bit_cast<uint64_t>(base.value().output),
              std::bit_cast<uint64_t>(lift.value().output))
        << q.name;
  }
}

TEST_F(OptimizerTest, OptimizeRecoversPushedShapeFromLiftedPlans) {
  // Optimize(naive SQL shape) must do at least as well as the hand-built
  // plans: filters back at the scans, identical bits out.
  for (const auto& q : tpch::AllTpchQueries()) {
    PlanPtr lifted = LiftFilters(q.plan);
    PlanPtr optimized = Optimize(lifted, catalog_);
    auto base = executor_.Execute(q.plan);
    auto opt = executor_.Execute(optimized);
    ASSERT_TRUE(base.ok() && opt.ok()) << q.name;
    EXPECT_EQ(std::bit_cast<uint64_t>(base.value().output),
              std::bit_cast<uint64_t>(opt.value().output))
        << q.name;
  }
}

}  // namespace
}  // namespace upa::rel
