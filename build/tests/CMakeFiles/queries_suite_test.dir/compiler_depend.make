# Empty compiler generated dependencies file for queries_suite_test.
# This may be replaced when dependencies are built.
