#include "relational/columnar.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/cancel.h"
#include "common/env.h"
#include "common/exact_sum.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "relational/fused.h"
#include "relational/kernels.h"

namespace upa::rel {

// ---------------------------------------------------------------------------
// Fragment size knob
// ---------------------------------------------------------------------------

namespace {
constexpr size_t kDefaultFragmentRows = 64 * 1024;
std::atomic<size_t> g_fragment_rows{0};  // 0 = not yet initialized
}  // namespace

size_t DefaultFragmentRows() {
  size_t v = g_fragment_rows.load(std::memory_order_relaxed);
  if (v == 0) {
    v = static_cast<size_t>(std::max<int64_t>(
        1, EnvInt("UPA_FRAGMENT_ROWS",
                  static_cast<int64_t>(kDefaultFragmentRows))));
    g_fragment_rows.store(v, std::memory_order_relaxed);
  }
  return v;
}

void SetDefaultFragmentRows(size_t rows) {
  if (rows == 0) {
    g_fragment_rows.store(0, std::memory_order_relaxed);
    (void)DefaultFragmentRows();
    return;
  }
  g_fragment_rows.store(rows, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ColumnarTable
// ---------------------------------------------------------------------------

std::shared_ptr<const ColumnarTable> ColumnarTable::Build(
    Schema schema, const std::vector<Row>& rows, size_t fragment_rows) {
  // No Status channel here (delay/abort actions only; see failpoint.h).
  UPA_FAILPOINT_HIT("columnar/build");
  auto ct = std::shared_ptr<ColumnarTable>(new ColumnarTable());
  ct->schema_ = std::move(schema);
  ct->num_rows_ = rows.size();
  UPA_CHECK_MSG(rows.size() < std::numeric_limits<uint32_t>::max(),
                "table too large for columnar row ids");
  const size_t ncols = ct->schema_.NumColumns();
  for (const Row& row : rows) {
    UPA_CHECK_MSG(row.size() == ncols, "row arity mismatch in columnar build");
  }

  ct->columns_.resize(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    Column& col = ct->columns_[c];
    if (rows.empty()) {
      // No cells to inspect: use the declared type (comparisons against an
      // empty column never execute, but compilation needs a dictionary).
      col.type = ct->schema_.column(c).type;
      if (col.type == ValueType::kString) {
        col.dict = std::make_shared<const std::vector<std::string>>();
      }
      continue;
    }
    bool has_string = false, has_double = false, has_numeric = false;
    for (const Row& row : rows) {
      switch (TypeOf(row[c])) {
        case ValueType::kString: has_string = true; break;
        case ValueType::kDouble: has_double = true; has_numeric = true; break;
        case ValueType::kInt: has_numeric = true; break;
      }
    }
    // Columns are typed by their *actual* cells, not the declared schema
    // type: an all-int64 column stays an int column even when declared
    // double, so strict accessors (AsInt join keys) behave like the row
    // oracle. A column mixing strings with numerics has no single physical
    // type — the row store tolerates that lazily, columnar storage cannot.
    UPA_CHECK_MSG(!(has_string && has_numeric),
                  "column mixes string and numeric cells: " +
                      ct->schema_.column(c).name);
    if (has_string) {
      col.type = ValueType::kString;
      auto dict = std::make_shared<std::vector<std::string>>();
      dict->reserve(rows.size());
      for (const Row& row : rows) {
        dict->push_back(std::get<std::string>(row[c]));
      }
      std::sort(dict->begin(), dict->end());
      dict->erase(std::unique(dict->begin(), dict->end()), dict->end());
      dict->shrink_to_fit();
      col.codes.reserve(rows.size());
      for (const Row& row : rows) {
        const std::string& s = std::get<std::string>(row[c]);
        col.codes.push_back(static_cast<uint32_t>(
            std::lower_bound(dict->begin(), dict->end(), s) - dict->begin()));
      }
      col.dict = std::move(dict);
    } else if (has_double) {
      col.type = ValueType::kDouble;
      col.doubles.reserve(rows.size());
      for (const Row& row : rows) col.doubles.push_back(AsNumeric(row[c]));
    } else {
      col.type = ValueType::kInt;
      col.ints.reserve(rows.size());
      for (const Row& row : rows) {
        col.ints.push_back(std::get<int64_t>(row[c]));
      }
    }
  }

  ct->FinishBuild(fragment_rows);
  return ct;
}

void ColumnarTable::FinishBuild(size_t fragment_rows) {
  fragment_rows_ = fragment_rows == 0 ? DefaultFragmentRows() : fragment_rows;

  auto ident = std::make_shared<SelVector>(num_rows_);
  std::iota(ident->begin(), ident->end(), 0u);
  identity_ = std::move(ident);

  const size_t ncols = columns_.size();
  // Dictionaries are shared table-level state (one per string column);
  // account them once, outside the per-fragment payload bytes.
  size_t dict_bytes = 0;
  for (const Column& col : columns_) {
    if (col.dict != nullptr) {
      for (const std::string& s : *col.dict) {
        dict_bytes += s.size() + sizeof(std::string);
      }
    }
  }

  fragments_.clear();
  fragments_.reserve((num_rows_ + fragment_rows_ - 1) / fragment_rows_);
  for (size_t begin = 0; begin < num_rows_; begin += fragment_rows_) {
    const size_t end = std::min(num_rows_, begin + fragment_rows_);
    FragmentInfo frag;
    frag.begin_row = static_cast<uint32_t>(begin);
    frag.end_row = static_cast<uint32_t>(end);
    frag.cols.resize(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const Column& col = columns_[c];
      FragmentColStats& st = frag.cols[c];
      switch (col.type) {
        case ValueType::kInt: {
          // Bounds over the kernel's comparison domain: NumCmpFilter casts
          // int cells to double, and double(int64) is monotonic, so the
          // cast of the min/max bounds every cast cell.
          st.numeric_valid = true;
          st.min = static_cast<double>(col.ints[begin]);
          st.max = st.min;
          for (size_t i = begin; i < end; ++i) {
            const double v = static_cast<double>(col.ints[i]);
            st.min = std::min(st.min, v);
            st.max = std::max(st.max, v);
          }
          frag.bytes += (end - begin) * sizeof(int64_t);
          break;
        }
        case ValueType::kDouble: {
          st.numeric_valid = true;
          st.min = std::numeric_limits<double>::infinity();
          st.max = -std::numeric_limits<double>::infinity();
          for (size_t i = begin; i < end; ++i) {
            const double v = col.doubles[i];
            if (std::isnan(v)) {
              // NaN defeats interval reasoning (every comparison on it is
              // false); publish no bounds rather than unsound ones.
              st.numeric_valid = false;
              break;
            }
            st.min = std::min(st.min, v);
            st.max = std::max(st.max, v);
          }
          frag.bytes += (end - begin) * sizeof(double);
          break;
        }
        case ValueType::kString: {
          st.codes_valid = true;
          st.min_code = col.codes[begin];
          st.max_code = st.min_code;
          for (size_t i = begin; i < end; ++i) {
            const uint32_t code = col.codes[i];
            st.min_code = std::min(st.min_code, code);
            st.max_code = std::max(st.max_code, code);
          }
          frag.bytes += (end - begin) * sizeof(uint32_t);
          break;
        }
      }
    }
    frag.bytes += (end - begin) * sizeof(uint32_t);  // identity entries
    fragments_.push_back(std::move(frag));
  }

  resident_bytes_ = dict_bytes;
  for (const FragmentInfo& frag : fragments_) resident_bytes_ += frag.bytes;
}

// ---------------------------------------------------------------------------
// Spill / reload
// ---------------------------------------------------------------------------

namespace {

constexpr uint64_t kSpillMagic = 0x5550'4131'434f'4c46ULL;  // "UPA1COLF"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteRaw(std::FILE* f, const void* data, size_t bytes) {
  return bytes == 0 || std::fwrite(data, 1, bytes, f) == bytes;
}

bool ReadRaw(std::FILE* f, void* data, size_t bytes) {
  return bytes == 0 || std::fread(data, 1, bytes, f) == bytes;
}

bool WriteU64(std::FILE* f, uint64_t v) { return WriteRaw(f, &v, sizeof(v)); }

bool ReadU64(std::FILE* f, uint64_t* v) { return ReadRaw(f, v, sizeof(*v)); }

}  // namespace

Status ColumnarTable::SpillTo(const std::string& path) const {
  UPA_FAILPOINT("bufmgr/spill_write");
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Internal("spill: cannot open " + path + " for writing");
  }
  bool ok = WriteU64(f.get(), kSpillMagic) && WriteU64(f.get(), num_rows_) &&
            WriteU64(f.get(), columns_.size());
  for (const Column& col : columns_) {
    if (!ok) break;
    const uint64_t type = static_cast<uint64_t>(col.type);
    ok = WriteU64(f.get(), type);
    if (!ok) break;
    switch (col.type) {
      case ValueType::kInt:
        ok = WriteRaw(f.get(), col.ints.data(),
                      col.ints.size() * sizeof(int64_t));
        break;
      case ValueType::kDouble:
        // Raw IEEE bytes: the reload is bit-exact by construction.
        ok = WriteRaw(f.get(), col.doubles.data(),
                      col.doubles.size() * sizeof(double));
        break;
      case ValueType::kString: {
        ok = WriteRaw(f.get(), col.codes.data(),
                      col.codes.size() * sizeof(uint32_t));
        const auto& dict = *col.dict;
        ok = ok && WriteU64(f.get(), dict.size());
        for (const std::string& s : dict) {
          if (!ok) break;
          ok = WriteU64(f.get(), s.size()) &&
               WriteRaw(f.get(), s.data(), s.size());
        }
        break;
      }
    }
  }
  if (!ok || std::fflush(f.get()) != 0) {
    return Status::Internal("spill: short write to " + path);
  }
  return Status::Ok();
}

Result<std::shared_ptr<const ColumnarTable>> ColumnarTable::LoadSpill(
    const std::string& path, Schema schema, size_t fragment_rows) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("spill: cannot open " + path);
  }
  uint64_t magic = 0, num_rows = 0, ncols = 0;
  if (!ReadU64(f.get(), &magic) || magic != kSpillMagic ||
      !ReadU64(f.get(), &num_rows) || !ReadU64(f.get(), &ncols)) {
    return Status::Internal("spill: bad header in " + path);
  }
  if (ncols != schema.NumColumns()) {
    return Status::Internal("spill: column count mismatch in " + path);
  }
  auto ct = std::shared_ptr<ColumnarTable>(new ColumnarTable());
  ct->schema_ = std::move(schema);
  ct->num_rows_ = num_rows;
  ct->columns_.resize(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    Column& col = ct->columns_[c];
    uint64_t type = 0;
    if (!ReadU64(f.get(), &type) || type > 2) {
      return Status::Internal("spill: bad column type in " + path);
    }
    col.type = static_cast<ValueType>(type);
    switch (col.type) {
      case ValueType::kInt: {
        col.ints.resize(num_rows);
        if (!ReadRaw(f.get(), col.ints.data(), num_rows * sizeof(int64_t))) {
          return Status::Internal("spill: short read in " + path);
        }
        break;
      }
      case ValueType::kDouble: {
        col.doubles.resize(num_rows);
        if (!ReadRaw(f.get(), col.doubles.data(), num_rows * sizeof(double))) {
          return Status::Internal("spill: short read in " + path);
        }
        break;
      }
      case ValueType::kString: {
        col.codes.resize(num_rows);
        if (!ReadRaw(f.get(), col.codes.data(), num_rows * sizeof(uint32_t))) {
          return Status::Internal("spill: short read in " + path);
        }
        uint64_t dict_size = 0;
        if (!ReadU64(f.get(), &dict_size)) {
          return Status::Internal("spill: short read in " + path);
        }
        auto dict = std::make_shared<std::vector<std::string>>(dict_size);
        for (uint64_t i = 0; i < dict_size; ++i) {
          uint64_t len = 0;
          if (!ReadU64(f.get(), &len)) {
            return Status::Internal("spill: short read in " + path);
          }
          (*dict)[i].resize(len);
          if (!ReadRaw(f.get(), (*dict)[i].data(), len)) {
            return Status::Internal("spill: short read in " + path);
          }
        }
        col.dict = std::move(dict);
        break;
      }
    }
  }
  ct->FinishBuild(fragment_rows);
  return std::shared_ptr<const ColumnarTable>(std::move(ct));
}

// ---------------------------------------------------------------------------
// Fragment skipping (zone maps)
// ---------------------------------------------------------------------------

namespace {

/// What a predicate subtree can evaluate to over a fragment: `can_true`
/// false means provably no row satisfies it, `can_false` false means
/// provably every row does, and either claim additionally guarantees the
/// evaluation that produces it is abort-free. `safe` means evaluating the
/// subtree on any subset of the fragment's rows cannot abort — the
/// precondition for concluding anything from a *sibling*'s bounds (an
/// AND whose rhs is unsatisfiable still evaluates its lhs on every row).
/// Defaults are the sound "don't know".
struct MatchBounds {
  bool can_true = true;
  bool can_false = true;
  bool safe = false;
};

struct NumInterval {
  bool valid = false;
  double lo = 0.0;
  double hi = 0.0;
};

/// True when projecting the operand to doubles can never abort: bare
/// numeric columns and numeric literals. Arithmetic can divide by zero and
/// string operands trip ProjectKernel's type check, so both stay false.
bool OperandSafe(const CompiledExpr& e) {
  return (e.kind == Expr::Kind::kLiteral || e.kind == Expr::Kind::kColumn) &&
         !e.is_string;
}

/// Interval of a comparison operand in the kernel's double domain. Only
/// bare columns and numeric literals yield intervals; arithmetic operands
/// (whose evaluation could even abort, e.g. division) stay unknown.
NumInterval OperandInterval(const CompiledExpr& e, const FragmentInfo& frag) {
  NumInterval iv;
  if (e.kind == Expr::Kind::kLiteral && !e.is_string) {
    if (!std::isnan(e.num_lit)) {  // NaN comparisons defeat interval logic
      iv = {true, e.num_lit, e.num_lit};
    }
  } else if (e.kind == Expr::Kind::kColumn && !e.is_string) {
    const FragmentColStats& st = frag.cols[e.col_pos];
    if (st.numeric_valid) iv = {true, st.min, st.max};
  }
  return iv;
}

/// Sign test used by the string comparison kernels.
bool SignSatisfies(BinOp op, int c) {
  switch (op) {
    case BinOp::kLt: return c < 0;
    case BinOp::kLe: return c <= 0;
    case BinOp::kGt: return c > 0;
    case BinOp::kGe: return c >= 0;
    case BinOp::kEq: return c == 0;
    default: return c != 0;  // kNe
  }
}

/// Interval tables mirror the kernels exactly: numeric comparisons run in
/// the double domain (kLe is !(x>y), kEq is !(x<y)&&!(x>y)), string
/// col-vs-lit comparisons run on dictionary codes against the compiled
/// [lit_lb, lit_ub) thresholds.
MatchBounds CmpBounds(const CompiledExpr& e, const FragmentInfo& frag) {
  if (e.mixed_cmp) {
    // String-vs-numeric: Eq is uniformly false and Ne uniformly true (no
    // abort); the ordered forms abort on evaluation, so they must never be
    // the basis of a skip nor count as safe for a sibling's.
    if (e.op == BinOp::kEq) return {false, true, true};
    if (e.op == BinOp::kNe) return {true, false, true};
    return {};
  }
  if (e.str_cmp) {
    // Every string-vs-string comparison form is abort-free.
    if (e.str_form == CompiledExpr::StrForm::kLitLit) {
      const bool sat = SignSatisfies(e.op, e.lit_cmp);
      return {sat, !sat, true};
    }
    if (e.str_form != CompiledExpr::StrForm::kColLit) return {true, true, true};
    const FragmentColStats& st = frag.cols[e.lhs->col_pos];
    if (!st.codes_valid) return {true, true, true};
    const uint32_t mc = st.min_code, xc = st.max_code;
    const uint32_t lb = e.lit_lb, ub = e.lit_ub;
    const bool found = lb < ub;
    switch (e.op) {
      case BinOp::kLt: return {mc < lb, xc >= lb, true};
      case BinOp::kLe: return {mc < ub, xc >= ub, true};
      case BinOp::kGt: return {xc >= ub, mc < ub, true};
      case BinOp::kGe: return {xc >= lb, mc < lb, true};
      case BinOp::kEq:
        return {found && mc <= lb && lb <= xc,
                !(found && mc == xc && mc == lb), true};
      default:  // kNe
        return {!found || !(mc == xc && mc == lb),
                found && mc <= lb && lb <= xc, true};
    }
  }
  const bool safe = OperandSafe(*e.lhs) && OperandSafe(*e.rhs);
  const NumInterval l = OperandInterval(*e.lhs, frag);
  const NumInterval r = OperandInterval(*e.rhs, frag);
  if (!l.valid || !r.valid) return {true, true, safe};
  const bool point = l.lo == l.hi && r.lo == r.hi && l.lo == r.lo;
  switch (e.op) {
    case BinOp::kLt: return {l.lo < r.hi, l.hi >= r.lo, safe};
    case BinOp::kLe: return {l.lo <= r.hi, l.hi > r.lo, safe};
    case BinOp::kGt: return {l.hi > r.lo, l.lo <= r.hi, safe};
    case BinOp::kGe: return {l.hi >= r.lo, l.lo < r.hi, safe};
    case BinOp::kEq: return {l.lo <= r.hi && r.lo <= l.hi, !point, safe};
    default:  // kNe
      return {!point, l.lo <= r.hi && r.lo <= l.hi, safe};
  }
}

MatchBounds PredicateBounds(const CompiledExpr& e, const FragmentInfo& frag) {
  switch (e.kind) {
    case Expr::Kind::kLiteral: {
      if (e.is_string) return {};  // aborts when evaluated — never skip
      const bool truthy = e.num_lit != 0.0;
      return {truthy, !truthy, true};
    }
    case Expr::Kind::kColumn: {
      if (e.is_string) return {};  // aborts when evaluated — never skip
      const FragmentColStats& st = frag.cols[e.col_pos];
      if (!st.numeric_valid) return {true, true, true};
      // Truthy iff != 0 (int cells compare as int, but double(int64) is
      // monotonic so the all-zero / no-zero facts carry over exactly).
      return {!(st.min == 0.0 && st.max == 0.0),
              st.min <= 0.0 && 0.0 <= st.max, true};
    }
    case Expr::Kind::kNot: {
      const MatchBounds c = PredicateBounds(*e.lhs, frag);
      return {c.can_false, c.can_true, c.safe};
    }
    case Expr::Kind::kInSet: {
      // The kernel projects lhs even when the set can't match, so lhs-side
      // aborts still fire; only bare-column / numeric-literal lhs is safe.
      const CompiledExpr& l = *e.lhs;
      const bool safe = OperandSafe(l) || l.kind == Expr::Kind::kColumn;
      if (l.is_string && l.kind == Expr::Kind::kColumn) {
        const FragmentColStats& st = frag.cols[l.col_pos];
        if (!st.codes_valid) return {true, true, safe};
        for (uint32_t c : e.code_set) {
          if (st.min_code <= c && c <= st.max_code) return {true, true, safe};
        }
        return {false, true, safe};  // no set element's code can occur here
      }
      if (l.kind == Expr::Kind::kColumn && !l.is_string) {
        const FragmentColStats& st = frag.cols[l.col_pos];
        if (!st.numeric_valid) return {true, true, safe};
        for (double s : e.num_set) {
          // Membership is Compare(v, s) == 0 in the double domain.
          if (!(s < st.min) && !(s > st.max)) return {true, true, safe};
        }
        return {false, true, safe};
      }
      return {true, true, safe};  // literal/arithmetic lhs: no leverage
    }
    case Expr::Kind::kBinary:
      break;
  }
  switch (e.op) {
    case BinOp::kAnd: {
      // The kernels evaluate lhs first and rhs only on surviving rows, so
      // "lhs unsatisfiable" alone justifies the skip even when rhs would
      // abort (it would have seen zero rows). The converse needs care:
      // "rhs unsatisfiable" only justifies a skip when evaluating lhs on
      // the fragment provably cannot abort.
      const MatchBounds l = PredicateBounds(*e.lhs, frag);
      const MatchBounds r = PredicateBounds(*e.rhs, frag);
      return {l.can_true && (r.can_true || !l.safe),
              l.can_false || r.can_false, l.safe && r.safe};
    }
    case BinOp::kOr: {
      // Dual of And: "lhs satisfied by every row" alone proves the Or (rhs
      // sees zero rows), while "rhs satisfied by every row" additionally
      // needs lhs evaluation to be abort-free.
      const MatchBounds l = PredicateBounds(*e.lhs, frag);
      const MatchBounds r = PredicateBounds(*e.rhs, frag);
      return {l.can_true || r.can_true,
              l.can_false && (r.can_false || !l.safe),
              l.safe && r.safe};
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
      return {};  // arithmetic truthiness: no interval reasoning, may abort
    default:
      return CmpBounds(e, frag);
  }
}

}  // namespace

bool FragmentCanMatch(const CompiledExpr& pred, const ColumnarTable& table,
                      size_t frag) {
  return PredicateBounds(pred, table.fragments()[frag]).can_true;
}

// ---------------------------------------------------------------------------
// Vectorized evaluation
// ---------------------------------------------------------------------------

namespace {

/// Fixed kernel batch size. Batch boundaries depend only on the row count —
/// never on the pool size — so per-batch outputs concatenate to the same
/// sequence no matter how many threads run them (and every aggregate is
/// exact, so even that much determinism is belt-and-braces).
constexpr size_t kBatch = 4096;

constexpr uint32_t kNone = std::numeric_limits<uint32_t>::max();

/// Cache tags. Distinct from the row engine's key tags: the block cache is
/// type-erased, so the same key must never map to differently-typed entries.
constexpr uint64_t kColScanTag = 0xc015'ca90ULL;
constexpr uint64_t kColSubtreeTag = 0xc01c'ac40ULL;

/// One input of a relation in flight: a columnar table plus the row-index
/// vector mapping relation positions [0, num_rows) to physical rows. This
/// is the late-materialization representation — operators re-index, they
/// never copy cell data.
struct ColSource {
  std::shared_ptr<const ColumnarTable> table;
  std::shared_ptr<const SelVector> row_ids;
};

struct ColRel {
  std::vector<ColSource> sources;
  /// Schema position → (source index, column index within the source).
  std::vector<std::pair<uint32_t, uint32_t>> col_map;
  Schema schema;
  size_t num_rows = 0;
  /// Index into `sources` of the private table's scan, or -1. Its row-index
  /// vector *is* the provenance column: entry p is the private base-row
  /// index that relation row p descends from.
  int private_source = -1;
};

std::vector<const Column*> PhysicalColumns(const ColRel& rel) {
  std::vector<const Column*> cols(rel.col_map.size());
  for (size_t i = 0; i < rel.col_map.size(); ++i) {
    cols[i] =
        &rel.sources[rel.col_map[i].first].table->column(rel.col_map[i].second);
  }
  return cols;
}

BatchInput BindColumns(const ColRel& rel,
                       const std::vector<const Column*>& cols) {
  BatchInput in(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    in[i] = {cols[i], rel.sources[rel.col_map[i].first].row_ids->data()};
  }
  return in;
}

size_t NumBatches(size_t n) { return (n + kBatch - 1) / kBatch; }

/// One contiguous batch of relation rows. `fragment` identifies the source
/// fragment containing the batch when the relation is a bare scan (batches
/// never straddle fragment boundaries there, so per-fragment skipping can
/// drop whole batches), -1 when the relation has lost row alignment.
struct BatchRange {
  uint32_t begin = 0;
  uint32_t end = 0;
  int32_t fragment = -1;
};

/// True when relation row i IS physical row i of a single source and the
/// schema maps 1:1 onto its columns — the precondition for consulting that
/// source's zone maps (compiled col_pos == physical column position and
/// fragment row ranges == relation row ranges).
bool IsBareScan(const ColRel& rel) {
  if (rel.sources.size() != 1) return false;
  if (rel.sources[0].row_ids != rel.sources[0].table->identity()) return false;
  for (size_t i = 0; i < rel.col_map.size(); ++i) {
    if (rel.col_map[i].first != 0 || rel.col_map[i].second != i) return false;
  }
  return true;
}

/// Splits a relation into kernel batches. Bare scans get fragment-aligned
/// batches; everything else gets the uniform kBatch grid. Either way the
/// batches tile [0, num_rows) in row order, so per-batch selections
/// concatenate to the same row sequence regardless of the layout chosen —
/// fragment size can never change results, only skipping effectiveness.
std::vector<BatchRange> BatchLayout(const ColRel& rel) {
  std::vector<BatchRange> out;
  if (IsBareScan(rel)) {
    const auto& frags = rel.sources[0].table->fragments();
    out.reserve(NumBatches(rel.num_rows) + frags.size());
    for (size_t f = 0; f < frags.size(); ++f) {
      for (size_t b = frags[f].begin_row; b < frags[f].end_row; b += kBatch) {
        out.push_back({static_cast<uint32_t>(b),
                       static_cast<uint32_t>(
                           std::min<size_t>(frags[f].end_row, b + kBatch)),
                       static_cast<int32_t>(f)});
      }
    }
    return out;
  }
  const size_t n = rel.num_rows;
  out.reserve(NumBatches(n));
  for (size_t b = 0; b < n; b += kBatch) {
    out.push_back({static_cast<uint32_t>(b),
                   static_cast<uint32_t>(std::min(n, b + kBatch)), -1});
  }
  return out;
}

/// Runs fn over morsels of [0, n) on the pool's shared-cursor scheduler and
/// feeds the per-morsel durations into the metrics (duration histogram
/// "morsel/<phase>", worst-seen "imbalance/<phase>" gauge, morsel count as
/// the phase's task fan-out).
void MorselRun(engine::ExecContext* ctx, const std::string& phase, size_t n,
               size_t grain, const std::function<void(size_t, size_t)>& fn) {
  ThreadPool::MorselTimings timings;
  const size_t morsels = ctx->pool().ParallelForMorsels(n, grain, fn, &timings);
  ctx->metrics().RecordMorselRun(phase, timings.seconds);
  ctx->metrics().AddPhaseTasks(phase, morsels);
}

class ColumnarEvaluator {
 public:
  ColumnarEvaluator(engine::ExecContext* ctx, const Catalog* catalog,
                    const ExecOptions& options)
      : ctx_(ctx), catalog_(catalog), options_(options) {
    engine_partitions_ = options.engine_partitions > 0
                             ? options.engine_partitions
                             : ctx->config().default_partitions;
  }

  Result<ColRel> Eval(const PlanPtr& plan) {
    // Fully-public subtrees are identical across a query's phase runs, so
    // their (cheap, index-only) relation state is cached — same policy as
    // the row engine, keyed structurally so distinct plans never collide.
    const bool cacheable = options_.use_scan_cache &&
                           plan->kind != PlanKind::kScan &&
                           !options_.private_table.empty() &&
                           CountScansOf(plan, options_.private_table) == 0;
    if (cacheable) {
      uint64_t key = PlanFingerprint(plan, *catalog_) ^
                     Mix64(kColSubtreeTag + engine_partitions_) ^
                     Mix64(options_.cache_epoch);
      std::shared_ptr<const ColRel> hit = ctx_->cache().Get<ColRel>(key);
      if (hit != nullptr) return *hit;
      Result<ColRel> fresh = EvalUncached(plan);
      if (!fresh.ok()) return fresh;
      ctx_->cache().Put<ColRel>(key, fresh.value());
      return fresh;
    }
    return EvalUncached(plan);
  }

 private:
  Result<ColRel> EvalUncached(const PlanPtr& plan) {
    // Between plan nodes is the coarse cancellation boundary; within a
    // node, the batch-kernel ParallelFor polls at chunk granularity.
    UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());
    switch (plan->kind) {
      case PlanKind::kScan:
        return EvalScan(plan);
      case PlanKind::kFilter:
        return EvalFilter(plan);
      case PlanKind::kJoin:
        return EvalJoin(plan);
      case PlanKind::kAggregate:
        return Status::InvalidArgument(
            "Aggregate is only supported at the plan root");
    }
    return Status::Internal("unknown plan kind");
  }

  Result<ColRel> EvalScan(const PlanPtr& plan) {
    Result<ScanBinding> bindr = BindScanSource(ctx_, catalog_, plan->table,
                                               options_, engine_partitions_);
    if (!bindr.ok()) return bindr.status();
    ScanBinding bind = std::move(bindr).value();

    ColRel rel;
    rel.schema = bind.table->schema();
    if (bind.is_private) rel.private_source = 0;
    rel.num_rows = bind.row_ids->size();
    rel.sources.push_back({std::move(bind.table), std::move(bind.row_ids)});
    rel.col_map.resize(rel.schema.NumColumns());
    for (size_t c = 0; c < rel.schema.NumColumns(); ++c) {
      rel.col_map[c] = {0, static_cast<uint32_t>(c)};
    }
    return rel;
  }

  Result<ColRel> EvalFilter(const PlanPtr& plan) {
    Result<ColRel> childr = Eval(plan->left);
    if (!childr.ok()) return childr.status();
    ColRel child = std::move(childr.value());
    if (!ExprColumnsExist(plan->predicate, child.schema)) {
      return Status::InvalidArgument("filter references unknown column in " +
                                     plan->predicate->ToString());
    }
    std::vector<const Column*> cols = PhysicalColumns(child);
    const CompiledExpr pred = CompileExpr(plan->predicate, child.schema, cols);
    const BatchInput in = BindColumns(child, cols);

    const size_t n = child.num_rows;
    SelVector all(n);
    std::iota(all.begin(), all.end(), 0u);
    const std::vector<BatchRange> layout = BatchLayout(child);
    const size_t nb = layout.size();

    // Zone-map skipping (bare scans only): decide once per fragment whether
    // any of its rows can satisfy the predicate. A skipped fragment's
    // batches contribute empty selections — exactly what scanning them
    // would have produced (FragmentCanMatch is conservative about aborts).
    std::vector<uint8_t> frag_match;
    if (!layout.empty() && layout[0].fragment >= 0) {
      const ColumnarTable& t = *child.sources[0].table;
      frag_match.resize(t.fragments().size());
      size_t skipped = 0;
      for (size_t f = 0; f < frag_match.size(); ++f) {
        frag_match[f] = FragmentCanMatch(pred, t, f) ? 1 : 0;
        if (!frag_match[f]) ++skipped;
      }
      if (skipped > 0) {
        ctx_->metrics().AddCounter("columnar/fragments_skipped", skipped);
      }
      ctx_->metrics().AddCounter("columnar/fragments_scanned",
                                 frag_match.size() - skipped);
    }

    std::vector<SelVector> hits(nb);
    MorselRun(ctx_, "columnar/filter", nb, 0, [&](size_t b0, size_t b1) {
      for (size_t b = b0; b < b1; ++b) {
        const BatchRange& br = layout[b];
        if (br.fragment >= 0 && !frag_match[br.fragment]) continue;
        FilterKernel(pred, in, all.data() + br.begin, br.end - br.begin,
                     hits[b]);
      }
    });
    ctx_->metrics().AddKernelBatches(nb);
    ctx_->metrics().AddKernelRows(n);
    return Reindex(std::move(child), hits);
  }

  /// Replaces every source's row-index vector with its gather through the
  /// per-batch selections (concatenated in batch order).
  ColRel Reindex(ColRel rel, const std::vector<SelVector>& hits) {
    const size_t nb = hits.size();
    std::vector<size_t> offset(nb + 1, 0);
    for (size_t b = 0; b < nb; ++b) offset[b + 1] = offset[b] + hits[b].size();
    const size_t total = offset[nb];
    std::vector<std::shared_ptr<SelVector>> fresh(rel.sources.size());
    for (auto& f : fresh) f = std::make_shared<SelVector>(total);
    MorselRun(ctx_, "columnar/reindex", nb, 0, [&](size_t b0, size_t b1) {
      for (size_t b = b0; b < b1; ++b) {
        const SelVector& h = hits[b];
        for (size_t s = 0; s < rel.sources.size(); ++s) {
          const uint32_t* old_ids = rel.sources[s].row_ids->data();
          uint32_t* out = fresh[s]->data() + offset[b];
          for (size_t i = 0; i < h.size(); ++i) out[i] = old_ids[h[i]];
        }
      }
    });
    for (size_t s = 0; s < rel.sources.size(); ++s) {
      rel.sources[s].row_ids = std::move(fresh[s]);
    }
    rel.num_rows = total;
    return rel;
  }

  /// Join-key column as a dense int64 array (one entry per relation row).
  std::vector<int64_t> KeyColumn(const ColRel& rel, size_t pos) {
    const auto& [s, c] = rel.col_map[pos];
    const Column& col = rel.sources[s].table->column(c);
    const uint32_t* ids = rel.sources[s].row_ids->data();
    const size_t n = rel.num_rows;
    if (n > 0) {
      // The row oracle keys joins through strict AsInt per row.
      UPA_CHECK_MSG(col.type == ValueType::kInt, "Value is not an int");
    }
    std::vector<int64_t> keys(n);
    const int64_t* vals = col.ints.data();
    MorselRun(ctx_, "columnar/join_key", n, kBatch,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) keys[i] = vals[ids[i]];
              });
    return keys;
  }

  Result<ColRel> EvalJoin(const PlanPtr& plan) {
    Result<ColRel> lr = Eval(plan->left);
    if (!lr.ok()) return lr.status();
    Result<ColRel> rr = Eval(plan->right);
    if (!rr.ok()) return rr.status();
    ColRel left = std::move(lr.value());
    ColRel right = std::move(rr.value());

    auto lk = left.schema.Find(plan->left_key);
    auto rk = right.schema.Find(plan->right_key);
    if (!lk || !rk) {
      return Status::InvalidArgument("join key not found: " + plan->left_key +
                                     "=" + plan->right_key);
    }
    std::vector<int64_t> lkeys = KeyColumn(left, *lk);
    std::vector<int64_t> rkeys = KeyColumn(right, *rk);

    // Build a chained open-addressing table from the hinted side (set by
    // the cost-based optimizer from estimated cardinalities) or, absent a
    // hint, from the smaller materialized side; probe with the other in
    // batches. Output order is deterministic (probe order, chain order) —
    // and irrelevant to results anyway, since every downstream aggregate is
    // exact and order-independent.
    const bool build_left =
        plan->build_side == BuildSide::kAuto
            ? left.num_rows <= right.num_rows
            : plan->build_side == BuildSide::kLeft;
    const std::vector<int64_t>& bkeys = build_left ? lkeys : rkeys;
    const std::vector<int64_t>& pkeys = build_left ? rkeys : lkeys;
    const size_t nbuild = bkeys.size();
    const size_t nprobe = pkeys.size();

    // Per probe batch: matching (build position, probe position) pairs.
    const size_t nb = NumBatches(nprobe);
    std::vector<std::pair<SelVector, SelVector>> pairs(nb);
    if (nbuild > 0 && nprobe > 0) {
      size_t cap = 16;
      while (cap < nbuild * 2) cap <<= 1;
      const uint64_t mask = cap - 1;
      std::vector<uint32_t> slot_head(cap, kNone);
      std::vector<int64_t> slot_key(cap);
      std::vector<uint32_t> next(nbuild);
      for (size_t i = 0; i < nbuild; ++i) {
        const int64_t k = bkeys[i];
        size_t s = Mix64(static_cast<uint64_t>(k)) & mask;
        while (true) {
          if (slot_head[s] == kNone) {
            slot_key[s] = k;
            next[i] = kNone;
            slot_head[s] = static_cast<uint32_t>(i);
            break;
          }
          if (slot_key[s] == k) {
            next[i] = slot_head[s];
            slot_head[s] = static_cast<uint32_t>(i);
            break;
          }
          s = (s + 1) & mask;
        }
      }
      MorselRun(ctx_, "columnar/join_probe", nb, 0, [&](size_t b0, size_t b1) {
        for (size_t b = b0; b < b1; ++b) {
          auto& [bpos, ppos] = pairs[b];
          size_t begin = b * kBatch, end = std::min(nprobe, begin + kBatch);
          for (size_t j = begin; j < end; ++j) {
            const int64_t k = pkeys[j];
            size_t s = Mix64(static_cast<uint64_t>(k)) & mask;
            while (slot_head[s] != kNone) {
              if (slot_key[s] == k) {
                for (uint32_t i = slot_head[s]; i != kNone; i = next[i]) {
                  bpos.push_back(i);
                  ppos.push_back(static_cast<uint32_t>(j));
                }
                break;
              }
              s = (s + 1) & mask;
            }
          }
        }
      });
    }
    ctx_->metrics().AddKernelBatches(nb);
    ctx_->metrics().AddKernelRows(nprobe);
    // In the distributed plan this engine models, a join exchanges both
    // sides (the row engine's HashJoin shuffles each input); count the same
    // rounds/records so overhead attribution stays engine-independent.
    ctx_->metrics().AddShuffleRound();
    ctx_->metrics().AddShuffleRecords(left.num_rows);
    ctx_->metrics().AddShuffleRound();
    ctx_->metrics().AddShuffleRecords(right.num_rows);

    std::vector<size_t> offset(nb + 1, 0);
    for (size_t b = 0; b < nb; ++b) {
      offset[b + 1] = offset[b] + pairs[b].first.size();
    }
    const size_t total = offset[nb];
    UPA_CHECK_MSG(total < std::numeric_limits<uint32_t>::max(),
                  "join output too large for columnar row ids");

    ColRel out;
    out.schema = Schema::Concat(left.schema, right.schema);
    out.num_rows = total;
    const size_t nleft = left.sources.size();
    out.sources.resize(nleft + right.sources.size());
    std::vector<std::shared_ptr<SelVector>> fresh(out.sources.size());
    for (size_t s = 0; s < out.sources.size(); ++s) {
      const ColSource& src =
          s < nleft ? left.sources[s] : right.sources[s - nleft];
      out.sources[s].table = src.table;
      fresh[s] = std::make_shared<SelVector>(total);
    }
    MorselRun(ctx_, "columnar/join_gather", nb, 0, [&](size_t b0, size_t b1) {
      for (size_t b = b0; b < b1; ++b) {
        // Left-side rows come from the build positions iff we built from
        // the left; right-side rows from the other element of the pair.
        const SelVector& lpos = build_left ? pairs[b].first : pairs[b].second;
        const SelVector& rpos = build_left ? pairs[b].second : pairs[b].first;
        for (size_t s = 0; s < out.sources.size(); ++s) {
          const ColSource& src =
              s < nleft ? left.sources[s] : right.sources[s - nleft];
          const SelVector& pos = s < nleft ? lpos : rpos;
          const uint32_t* old_ids = src.row_ids->data();
          uint32_t* dst = fresh[s]->data() + offset[b];
          for (size_t i = 0; i < pos.size(); ++i) dst[i] = old_ids[pos[i]];
        }
      }
    });
    for (size_t s = 0; s < out.sources.size(); ++s) {
      out.sources[s].row_ids = std::move(fresh[s]);
    }

    out.col_map.reserve(left.col_map.size() + right.col_map.size());
    for (const auto& [s, c] : left.col_map) out.col_map.push_back({s, c});
    for (const auto& [s, c] : right.col_map) {
      out.col_map.push_back({static_cast<uint32_t>(s + nleft), c});
    }
    if (left.private_source >= 0) {
      out.private_source = left.private_source;
    } else if (right.private_source >= 0) {
      out.private_source = static_cast<int>(right.private_source + nleft);
    }
    return out;
  }

  engine::ExecContext* ctx_;
  const Catalog* catalog_;
  const ExecOptions& options_;
  size_t engine_partitions_;
};

/// Per-batch aggregation state, merged in batch order (merge order is
/// irrelevant: exact sums commute; min/max are associative).
struct BatchAgg {
  ExactSum sum;
  std::unordered_map<size_t, ExactSum> contrib;
  std::vector<ExactSum> parts;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
};

}  // namespace

Result<ScanBinding> BindScanSource(engine::ExecContext* ctx,
                                   const Catalog* catalog,
                                   const std::string& table_name,
                                   const ExecOptions& options,
                                   size_t engine_partitions) {
  auto it = catalog->find(table_name);
  if (it == catalog->end()) {
    return Status::NotFound("unknown table: " + table_name);
  }
  const Table* table = it->second;
  if (engine_partitions == 0) {
    engine_partitions = ctx->config().default_partitions;
  }

  ScanBinding bind;
  bind.is_private = !options.private_table.empty() &&
                    table_name == options.private_table;
  if (!bind.is_private) {
    if (options.use_scan_cache) {
      // Route through the context block cache so scan reuse across phase
      // runs is observable in the hit/miss metrics (the Fig 4(b) effect),
      // exactly like the row engine's materialized-scan cache.
      uint64_t key = Mix64(table->uid()) ^
                     Mix64(kColScanTag + engine_partitions) ^
                     Mix64(options.cache_epoch);
      auto cached =
          ctx->cache().GetOrCompute<std::shared_ptr<const ColumnarTable>>(
              key, [&] { return table->Columnar(); });
      bind.table = *cached;
    } else {
      bind.table = table->Columnar();
    }
    bind.row_ids = bind.table->identity();
    return bind;
  }
  // The private table's include/exclude/replace options are plain
  // index-vector surgery: provenance is the row-index itself.
  bind.table = options.replace_private_rows != nullptr
                   ? ColumnarTable::Build(table->schema(),
                                          *options.replace_private_rows)
                   : table->Columnar();
  const size_t base_rows = bind.table->num_rows();
  if (options.include_rows != nullptr) {
    auto sel = std::make_shared<SelVector>();
    sel->reserve(options.include_rows->size());
    for (size_t idx : *options.include_rows) {
      UPA_CHECK_MSG(idx < base_rows, "include_rows out of range");
      sel->push_back(static_cast<uint32_t>(idx));
    }
    bind.row_ids = std::move(sel);
  } else if (options.exclude_rows != nullptr) {
    const std::vector<size_t>& excl = *options.exclude_rows;
    auto sel = std::make_shared<SelVector>();
    sel->reserve(base_rows - std::min(base_rows, excl.size()));
    size_t cursor = 0;
    for (size_t i = 0; i < base_rows; ++i) {
      if (cursor < excl.size() && excl[cursor] == i) {
        ++cursor;
        continue;
      }
      sel->push_back(static_cast<uint32_t>(i));
    }
    bind.row_ids = std::move(sel);
  } else {
    bind.row_ids = bind.table->identity();
  }
  return bind;
}

Result<ExecResult> ExecuteColumnar(engine::ExecContext* ctx,
                                   const Catalog* catalog, const PlanPtr& plan,
                                   const ExecOptions& options) {
  UPA_FAILPOINT("columnar/execute");
  UPA_RETURN_IF_ERROR(CancelScope::CheckCurrent());
  if (plan->fuse != FuseMode::kInterpret) {
    if (std::optional<FusedShape> shape = FusableShape(plan)) {
      return ExecuteFused(ctx, catalog, plan, *shape, options);
    }
  }
  ColumnarEvaluator evaluator(ctx, catalog, options);
  Result<ColRel> relr = evaluator.Eval(plan->left);
  if (!relr.ok()) return relr.status();
  ColRel rel = std::move(relr.value());

  const bool additive =
      plan->agg == AggKind::kCount || plan->agg == AggKind::kSum;
  if (!additive && (options.partitions > 0 || options.track_contributions)) {
    return Status::Unsupported(
        "provenance (partitions/contributions) requires an additive "
        "aggregate (Count or Sum)");
  }
  const bool need_expr = plan->agg != AggKind::kCount;
  if (need_expr && plan->agg_expr == nullptr) {
    return Status::InvalidArgument("aggregate missing expression");
  }
  if (need_expr && !ExprColumnsExist(plan->agg_expr, rel.schema)) {
    return Status::InvalidArgument(
        "aggregate expression references unknown column in " +
        rel.schema.ToString());
  }

  const size_t n = rel.num_rows;
  const size_t nb = NumBatches(n);
  std::vector<const Column*> cols = PhysicalColumns(rel);
  std::optional<CompiledExpr> weight;
  BatchInput in;
  if (need_expr) {
    weight.emplace(CompileExpr(plan->agg_expr, rel.schema, cols));
    in = BindColumns(rel, cols);
  }
  SelVector all(n);
  std::iota(all.begin(), all.end(), 0u);

  const uint32_t* prov = rel.private_source >= 0
                             ? rel.sources[rel.private_source].row_ids->data()
                             : nullptr;
  const size_t parts = options.partitions;

  std::vector<BatchAgg> batches(nb);
  MorselRun(ctx, "columnar/aggregate", nb, 0, [&](size_t b0, size_t b1) {
    std::vector<double> w;
    for (size_t b = b0; b < b1; ++b) {
      const size_t begin = b * kBatch, end = std::min(n, begin + kBatch);
      const size_t m = end - begin;
      BatchAgg& agg = batches[b];
      if (need_expr) {
        w.resize(m);
        ProjectKernel(*weight, in, all.data() + begin, m, w.data());
      } else {
        w.assign(m, 1.0);  // Count
      }
      if (!additive) {
        for (size_t i = 0; i < m; ++i) {
          agg.sum.Add(w[i]);
          agg.mn = w[i] < agg.mn ? w[i] : agg.mn;  // == std::min(mn, w)
          agg.mx = w[i] > agg.mx ? w[i] : agg.mx;  // == std::max(mx, w)
        }
        continue;
      }
      for (size_t i = 0; i < m; ++i) agg.sum.Add(w[i]);
      if (prov != nullptr) {
        if (options.track_contributions) {
          for (size_t i = 0; i < m; ++i) agg.contrib[prov[begin + i]].Add(w[i]);
        }
        if (parts > 0) {
          agg.parts.resize(parts);
          for (size_t i = 0; i < m; ++i) {
            agg.parts[prov[begin + i] % parts].Add(w[i]);
          }
        }
      }
    }
  });
  ctx->metrics().AddKernelBatches(nb);
  ctx->metrics().AddKernelRows(n);

  ExecResult result;
  result.result_rows = n;
  ExactSum total;
  for (const BatchAgg& b : batches) total.Merge(b.sum);

  if (!additive) {
    if (n == 0) {
      return Status::FailedPrecondition(
          "Avg/Min/Max aggregate over an empty relation");
    }
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (const BatchAgg& b : batches) {
      mn = b.mn < mn ? b.mn : mn;
      mx = b.mx > mx ? b.mx : mx;
    }
    switch (plan->agg) {
      case AggKind::kAvg:
        result.output = total.Round() / static_cast<double>(n);
        break;
      case AggKind::kMin:
        result.output = mn;
        break;
      default:  // kMax
        result.output = mx;
        break;
    }
    return result;
  }

  result.output = total.Round();
  if (options.track_contributions) {
    std::unordered_map<size_t, ExactSum> merged;
    for (const BatchAgg& b : batches) {
      for (const auto& [p, s] : b.contrib) merged[p].Merge(s);
    }
    result.contributions.reserve(merged.size());
    for (const auto& [p, s] : merged) result.contributions[p] = s.Round();
  }
  if (parts > 0) {
    // The RANGE ENFORCER's per-partition aggregation is a real record
    // exchange in the row engine (ShuffleByKey over provenance-carrying
    // rows); account the same round here.
    ctx->metrics().AddShuffleRound();
    ctx->metrics().AddShuffleRecords(prov != nullptr ? n : 0);
    // partition_outputs[pid] = Round(base ⊕ Σ weights of pid's rows),
    // where base covers rows without private provenance (here: all rows
    // when the plan has no private scan, none otherwise — inner joins give
    // every row of a private plan a provenance index).
    ExactSum base;
    if (prov == nullptr) base = total;
    std::vector<ExactSum> pid_sums(parts);
    if (prov != nullptr) {
      for (const BatchAgg& b : batches) {
        if (b.parts.empty()) continue;
        for (size_t p = 0; p < parts; ++p) pid_sums[p].Merge(b.parts[p]);
      }
    }
    result.partition_outputs.resize(parts);
    for (size_t p = 0; p < parts; ++p) {
      ExactSum t = base;
      t.Merge(pid_sums[p]);
      result.partition_outputs[p] = t.Round();
    }
  }
  return result;
}

}  // namespace upa::rel
