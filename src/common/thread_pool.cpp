#include "common/thread_pool.h"

#include <algorithm>

#include "common/status.h"

namespace upa {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    std::lock_guard lock(mu_);
    UPA_CHECK_MSG(!stop_, "Submit on a stopped ThreadPool");
    queue_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunks(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunks(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, thread_count());
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    futures.push_back(Submit([&fn, begin, end] { fn(begin, end); }));
  }
  // Wait for every chunk before propagating any error: chunks reference
  // caller stack state, so unwinding while siblings still run would be a
  // use-after-scope.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace upa
