# Empty dependencies file for attack_defense.
# This may be replaced when dependencies are built.
