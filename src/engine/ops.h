// Additional dataset operators: the rest of the RDD surface the examples
// and workloads use (union, zip-with-index, distinct, take, count-by-key,
// cogroup). Narrow operators preserve partitioning; wide ones go through
// the shuffle machinery in shuffle.h.
#pragma once

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/dataset.h"
#include "engine/shuffle.h"

namespace upa::engine {

/// Concatenate two datasets (partitions are concatenated; no shuffle).
template <typename T>
Dataset<T> Union(const Dataset<T>& a, const Dataset<T>& b) {
  UPA_CHECK_MSG(a.context() == b.context(),
                "union requires datasets from the same context");
  std::vector<std::vector<T>> parts;
  parts.reserve(a.NumPartitions() + b.NumPartitions());
  for (size_t p = 0; p < a.NumPartitions(); ++p) parts.push_back(a.partition(p));
  for (size_t p = 0; p < b.NumPartitions(); ++p) parts.push_back(b.partition(p));
  return Dataset<T>(a.context(), std::move(parts));
}

/// Pair each element with its global index (partition-major order).
template <typename T>
Dataset<std::pair<size_t, T>> ZipWithIndex(const Dataset<T>& input) {
  std::vector<std::vector<std::pair<size_t, T>>> parts(input.NumPartitions());
  size_t next = 0;
  for (size_t p = 0; p < input.NumPartitions(); ++p) {
    parts[p].reserve(input.partition(p).size());
    for (const T& v : input.partition(p)) parts[p].push_back({next++, v});
  }
  return Dataset<std::pair<size_t, T>>(input.context(), std::move(parts));
}

/// Distinct elements (hash-based; a wide operation — equal elements are
/// colocated by a shuffle first). T must be hashable.
template <typename T>
Dataset<T> Distinct(const Dataset<T>& input, size_t num_partitions = 0) {
  auto keyed = input.Map([](const T& v) { return std::pair<T, char>{v, 0}; });
  auto deduped =
      ReduceByKey(keyed, [](char a, char) { return a; }, num_partitions);
  return deduped.Map([](const std::pair<T, char>& kv) { return kv.first; });
}

/// First n elements in partition-major order.
template <typename T>
std::vector<T> Take(const Dataset<T>& input, size_t n) {
  std::vector<T> out;
  out.reserve(n);
  for (size_t p = 0; p < input.NumPartitions() && out.size() < n; ++p) {
    for (const T& v : input.partition(p)) {
      out.push_back(v);
      if (out.size() == n) break;
    }
  }
  return out;
}

/// Count of records per key (shuffle + count). Returned as a sorted map
/// for deterministic iteration.
template <typename K, typename V>
std::map<K, size_t> CountByKey(const Dataset<std::pair<K, V>>& input) {
  auto ones = input.Map([](const std::pair<K, V>& kv) {
    return std::pair<K, size_t>{kv.first, 1};
  });
  auto counted =
      ReduceByKey(ones, [](size_t a, size_t b) { return a + b; });
  std::map<K, size_t> out;
  for (const auto& [k, c] : counted.Collect()) out[k] = c;
  return out;
}

/// CoGroup: for each key, the values from both sides.
template <typename K, typename V, typename W>
Dataset<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> CoGroup(
    const Dataset<std::pair<K, V>>& left,
    const Dataset<std::pair<K, W>>& right, size_t num_partitions = 0) {
  UPA_CHECK_MSG(left.context() == right.context(),
                "cogroup requires datasets from the same context");
  auto ls = ShuffleByKey(left, num_partitions);
  auto rs = ShuffleByKey(right, ls.NumPartitions());
  ExecContext* ctx = ls.context();
  using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
  std::vector<std::vector<Out>> out(ls.NumPartitions());
  ctx->metrics().AddTasks(ls.NumPartitions());
  ctx->pool().ParallelFor(ls.NumPartitions(), [&](size_t p) {
    std::unordered_map<K, std::pair<std::vector<V>, std::vector<W>>> groups;
    for (const auto& [k, v] : ls.partition(p)) groups[k].first.push_back(v);
    for (const auto& [k, w] : rs.partition(p)) groups[k].second.push_back(w);
    out[p].reserve(groups.size());
    for (auto& [k, vw] : groups) out[p].push_back({k, std::move(vw)});
  });
  return Dataset<Out>(ctx, std::move(out));
}

}  // namespace upa::engine
