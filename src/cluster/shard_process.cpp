#include "cluster/shard_process.h"

#include <errno.h>
#include <netinet/in.h>
#include <signal.h>
#include <stdlib.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

namespace upa::cluster {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<uint16_t> PickFreePort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + ::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal(std::string("bind: ") + ::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status st =
        Status::Internal(std::string("getsockname: ") + ::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  return ntohs(bound.sin_port);
}

ShardSupervisor::ShardSupervisor() : ShardSupervisor(Options()) {}

ShardSupervisor::ShardSupervisor(Options options)
    : options_(std::move(options)) {
  jitter_state_ = options_.backoff_jitter_seed;
  monitor_ = std::thread([this] { MonitorLoop(); });
}

double ShardSupervisor::JitteredMs(double ms) {
  if (options_.backoff_jitter <= 0.0) return ms;
  // Deterministic 64-bit LCG: seedable so chaos runs reproduce.
  jitter_state_ = jitter_state_ * 6364136223846793005ULL +
                  1442695040888963407ULL;
  const double u =
      static_cast<double>((jitter_state_ >> 33) & 0xFFFFFFu) /
      static_cast<double>(0x1000000u);
  const double j = std::min(options_.backoff_jitter, 1.0);
  return ms * (1.0 - j / 2.0 + j * u);
}

ShardSupervisor::~ShardSupervisor() {
  StopAll();
  if (monitor_.joinable()) monitor_.join();
}

Result<pid_t> ShardSupervisor::Spawn(const ShardProcessSpec& spec) {
  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::Internal(std::string("fork: ") + ::strerror(errno));
  }
  if (pid == 0) {
    // Child. Plant the extra environment, then exec. Only async-signal-safe
    // work between fork and exec (setenv allocates, but the child is
    // single-threaded here — the fork snapshot of a multithreaded parent is
    // the reason to keep this block minimal).
    for (const std::string& kv : spec.env) {
      size_t eq = kv.find('=');
      if (eq == std::string::npos) continue;
      ::setenv(kv.substr(0, eq).c_str(), kv.c_str() + eq + 1, 1);
    }
    std::vector<char*> argv;
    argv.reserve(spec.args.size() + 2);
    argv.push_back(const_cast<char*>(spec.binary.c_str()));
    for (const std::string& arg : spec.args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(spec.binary.c_str(), argv.data());
    ::_exit(127);  // exec failed; the monitor sees a fast death
  }
  return pid;
}

Result<size_t> ShardSupervisor::Launch(ShardProcessSpec spec) {
  std::lock_guard lock(mu_);
  if (stopping_) return Status::FailedPrecondition("supervisor stopped");
  Result<pid_t> pid_or = Spawn(spec);
  UPA_RETURN_IF_ERROR(pid_or.status());
  Slot slot;
  slot.spec = std::move(spec);
  slot.pid = pid_or.value();
  slot.backoff_ms = options_.backoff_initial_ms;
  slot.spawned_at_ns = NowNanos();
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

pid_t ShardSupervisor::PidOf(size_t index) const {
  std::lock_guard lock(mu_);
  return index < slots_.size() ? slots_[index].pid : -1;
}

bool ShardSupervisor::Alive(size_t index) const { return PidOf(index) > 0; }

uint64_t ShardSupervisor::Restarts(size_t index) const {
  std::lock_guard lock(mu_);
  return index < slots_.size() ? slots_[index].restarts : 0;
}

Status ShardSupervisor::Kill(size_t index, int signum) {
  std::lock_guard lock(mu_);
  if (index >= slots_.size()) return Status::InvalidArgument("no such shard");
  if (slots_[index].pid <= 0) {
    return Status::FailedPrecondition("shard is not running");
  }
  if (::kill(slots_[index].pid, signum) != 0) {
    return Status::Internal(std::string("kill: ") + ::strerror(errno));
  }
  return Status::Ok();
}

Status ShardSupervisor::Respawn(size_t index) {
  std::lock_guard lock(mu_);
  if (stopping_) return Status::FailedPrecondition("supervisor stopped");
  if (index >= slots_.size()) return Status::InvalidArgument("no such shard");
  Slot& slot = slots_[index];
  if (slot.pid > 0) return Status::FailedPrecondition("shard still running");
  Result<pid_t> pid_or = Spawn(slot.spec);
  UPA_RETURN_IF_ERROR(pid_or.status());
  slot.pid = pid_or.value();
  slot.spawned_at_ns = NowNanos();
  slot.respawn_at_ns = 0;
  ++slot.restarts;
  return Status::Ok();
}

void ShardSupervisor::MonitorLoop() {
  for (;;) {
    {
      std::lock_guard lock(mu_);
      if (stopping_) return;
      const int64_t now = NowNanos();
      for (Slot& slot : slots_) {
        if (slot.pid > 0) {
          int status = 0;
          pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
          if (reaped == slot.pid) {
            // Death detected. A shard that ran long enough to be "stable"
            // restarts from the initial backoff; a crash loop doubles the
            // delay up to the bound, so a broken binary cannot busy-spin
            // the supervisor.
            const double uptime_ms =
                static_cast<double>(now - slot.spawned_at_ns) / 1e6;
            if (uptime_ms >= options_.stable_after_ms) {
              slot.backoff_ms = options_.backoff_initial_ms;
            }
            slot.pid = -1;
            if (options_.auto_restart) {
              slot.respawn_at_ns =
                  now + static_cast<int64_t>(JitteredMs(slot.backoff_ms) * 1e6);
              slot.backoff_ms =
                  std::min(slot.backoff_ms * 2.0, options_.backoff_max_ms);
            }
          }
        } else if (slot.respawn_at_ns != 0 && now >= slot.respawn_at_ns) {
          Result<pid_t> pid_or = Spawn(slot.spec);
          if (pid_or.ok()) {
            slot.pid = pid_or.value();
            slot.spawned_at_ns = now;
            slot.respawn_at_ns = 0;
            ++slot.restarts;
          } else {
            // Spawn itself failed (fork pressure): retry after backoff.
            slot.respawn_at_ns =
                now + static_cast<int64_t>(JitteredMs(slot.backoff_ms) * 1e6);
            slot.backoff_ms =
                std::min(slot.backoff_ms * 2.0, options_.backoff_max_ms);
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.poll_interval_ms));
  }
}

void ShardSupervisor::StopAll() {
  std::vector<pid_t> pids;
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (Slot& slot : slots_) {
      if (slot.pid > 0) pids.push_back(slot.pid);
      slot.respawn_at_ns = 0;
    }
  }
  for (pid_t pid : pids) ::kill(pid, SIGTERM);
  // Grace period, then escalate. The shards are journaled: SIGKILL loses
  // nothing that was acknowledged.
  const int64_t deadline_ns = NowNanos() + 2'000'000'000;
  for (pid_t pid : pids) {
    for (;;) {
      int status = 0;
      pid_t reaped = ::waitpid(pid, &status, WNOHANG);
      if (reaped == pid || (reaped < 0 && errno == ECHILD)) break;
      if (NowNanos() >= deadline_ns) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  {
    std::lock_guard lock(mu_);
    for (Slot& slot : slots_) slot.pid = -1;
  }
}

}  // namespace upa::cluster
