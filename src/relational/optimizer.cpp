#include "relational/optimizer.h"

#include <algorithm>
#include <set>

#include "common/status.h"

namespace upa::rel {
namespace {

void CollectColumns(const ExprPtr& expr, std::set<std::string>& out) {
  if (expr == nullptr) return;
  if (expr->kind() == Expr::Kind::kColumn) {
    out.insert(expr->column_name());
    return;
  }
  CollectColumns(expr->lhs(), out);
  CollectColumns(expr->rhs(), out);
}

void SplitInto(const ExprPtr& expr, std::vector<ExprPtr>& out) {
  if (expr->kind() == Expr::Kind::kBinary && expr->op() == BinOp::kAnd) {
    SplitInto(expr->lhs(), out);
    SplitInto(expr->rhs(), out);
    return;
  }
  out.push_back(expr);
}

ExprPtr Conjoin(const std::vector<ExprPtr>& conjuncts) {
  UPA_CHECK(!conjuncts.empty());
  ExprPtr e = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) e = And(e, conjuncts[i]);
  return e;
}

/// The set of columns the relation produced by `plan` exposes.
void OutputColumns(const PlanPtr& plan, const Catalog& catalog,
                   std::set<std::string>& out) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      auto it = catalog.find(plan->table);
      if (it == catalog.end()) return;
      for (const auto& col : it->second->schema().columns()) {
        out.insert(col.name);
      }
      return;
    }
    case PlanKind::kFilter:
    case PlanKind::kAggregate:
      OutputColumns(plan->left, catalog, out);
      return;
    case PlanKind::kJoin:
      OutputColumns(plan->left, catalog, out);
      OutputColumns(plan->right, catalog, out);
      return;
  }
}

bool Covers(const std::set<std::string>& columns, const ExprPtr& conjunct) {
  std::set<std::string> needed;
  CollectColumns(conjunct, needed);
  return std::includes(columns.begin(), columns.end(), needed.begin(),
                       needed.end());
}

/// Pushes each conjunct as deep as possible into `plan`; conjuncts that
/// cannot be placed anywhere under this node are returned in `leftover`.
PlanPtr Sink(const PlanPtr& plan, const Catalog& catalog,
             std::vector<ExprPtr> conjuncts, std::vector<ExprPtr>& leftover) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      std::set<std::string> cols;
      OutputColumns(plan, catalog, cols);
      std::vector<ExprPtr> applicable;
      for (const ExprPtr& c : conjuncts) {
        if (Covers(cols, c)) {
          applicable.push_back(c);
        } else {
          leftover.push_back(c);
        }
      }
      if (applicable.empty()) return plan;
      return FilterPlan(plan, Conjoin(applicable));
    }
    case PlanKind::kFilter: {
      // Merge this node's own conjuncts into the batch and recurse; the
      // child decides what it can absorb, the rest re-forms above.
      std::vector<ExprPtr> merged = std::move(conjuncts);
      SplitInto(plan->predicate, merged);
      std::vector<ExprPtr> child_leftover;
      PlanPtr child = Sink(plan->left, catalog, std::move(merged),
                           child_leftover);
      if (child_leftover.empty()) return child;
      // Conjuncts the child couldn't host: if this filter sits under a
      // join, they may still apply above — hand them upward.
      std::vector<ExprPtr> still_here;
      std::set<std::string> cols;
      OutputColumns(plan->left, catalog, cols);
      for (const ExprPtr& c : child_leftover) {
        if (Covers(cols, c)) {
          still_here.push_back(c);
        } else {
          leftover.push_back(c);
        }
      }
      if (still_here.empty()) return child;
      return FilterPlan(child, Conjoin(still_here));
    }
    case PlanKind::kJoin: {
      std::vector<ExprPtr> left_leftover, right_leftover;
      PlanPtr left = Sink(plan->left, catalog, conjuncts, left_leftover);
      // Conjuncts the left side rejected get offered to the right side.
      PlanPtr right =
          Sink(plan->right, catalog, std::move(left_leftover),
               right_leftover);
      PlanPtr joined = JoinPlan(left, right, plan->left_key, plan->right_key);
      // Whatever neither side could host: applies here if this join's
      // combined schema covers it, else bubbles further up.
      std::set<std::string> cols;
      OutputColumns(joined, catalog, cols);
      std::vector<ExprPtr> here;
      for (const ExprPtr& c : right_leftover) {
        if (Covers(cols, c)) {
          here.push_back(c);
        } else {
          leftover.push_back(c);
        }
      }
      if (here.empty()) return joined;
      return FilterPlan(joined, Conjoin(here));
    }
    case PlanKind::kAggregate:
      UPA_CHECK_MSG(false, "Sink below an aggregate");
      return plan;
  }
  return plan;
}

}  // namespace

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr != nullptr) SplitInto(expr, out);
  return out;
}

std::vector<std::string> ReferencedColumns(const ExprPtr& expr) {
  std::set<std::string> cols;
  CollectColumns(expr, cols);
  return {cols.begin(), cols.end()};
}

PlanPtr PushDownFilters(const PlanPtr& plan, const Catalog& catalog) {
  UPA_CHECK(plan != nullptr);
  // Conjuncts that fit nowhere (e.g. unknown columns) re-attach at the
  // top, where execution reports the schema error as it would have before
  // optimization.
  auto reattach = [](PlanPtr p, std::vector<ExprPtr> leftover) {
    return leftover.empty() ? p : FilterPlan(p, Conjoin(leftover));
  };
  if (plan->kind != PlanKind::kAggregate) {
    std::vector<ExprPtr> leftover;
    PlanPtr optimized = Sink(plan, catalog, {}, leftover);
    return reattach(optimized, std::move(leftover));
  }
  std::vector<ExprPtr> leftover;
  PlanPtr child = Sink(plan->left, catalog, {}, leftover);
  auto root = std::make_shared<PlanNode>(*plan);
  root->left = reattach(child, std::move(leftover));
  return root;
}

}  // namespace upa::rel
