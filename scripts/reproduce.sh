#!/usr/bin/env bash
# Reproduce the paper's full evaluation: build, test, then run every
# table/figure bench, teeing outputs into results/.
#
# Scale knobs (see src/bench_util/harness.h) pass through, e.g.:
#   UPA_ORDERS=50000 UPA_TRIALS=20 scripts/reproduce.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build 2>&1 | tee results/test_output.txt

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "=== $name ==="
  "$b" 2>&1 | tee "results/${name}.txt"
done

echo
echo "Done. Per-experiment outputs are in results/; compare against"
echo "EXPERIMENTS.md (paper-vs-measured notes per table/figure)."
