// KMeans as a UPA query.
//
// The released query is one Lloyd refinement from fixed prior centroids
// (DESIGN.md substitutions): the Mapper assigns each point to its nearest
// centroid and emits per-cluster partial sums + counts, the Reducer adds
// them, and post recomputes the centroids. The released scalar is the L2
// norm of the flattened updated centroids.
//
// Multi-iteration (non-private) Lloyd iterations are also provided for the
// examples and as the seeding procedure for the private refinement step.
#pragma once

#include <vector>

#include "mlkit/datagen.h"
#include "upa/query_instance.h"
#include "upa/simple_query.h"

namespace upa::ml {

using Centroids = std::vector<std::vector<double>>;

struct KMeansSpec {
  /// Fixed prior centroids (k × dims); the query refines these.
  Centroids centroids;
};

/// Index of the centroid nearest to x (ties → lowest index).
size_t NearestCentroid(const Centroids& centroids,
                       const std::vector<double>& x);

/// Reduced-value layout: [sum(c0,d0..d-1), ..., sum(ck-1,*), count(c0..ck-1)].
core::Vec KMeansMap(const KMeansSpec& spec, const MlPoint& p);

/// post: partial sums -> flattened updated centroids (k*d entries). A
/// cluster with zero assigned points keeps its prior centroid.
core::Vec KMeansPost(const KMeansSpec& spec, const core::Vec& reduced);

/// See MakeLinRegSpec for the spec/override rationale.
core::SimpleQuerySpec<MlPoint> MakeKMeansSpec(
    engine::ExecContext* ctx, const MlDataset& data, KMeansSpec spec,
    std::shared_ptr<const std::vector<MlPoint>> records_override = nullptr);

core::QueryInstance MakeKMeansQuery(
    engine::ExecContext* ctx, const MlDataset& data, KMeansSpec spec,
    std::shared_ptr<const std::vector<MlPoint>> records_override = nullptr);

/// Reference (non-private) Lloyd iterations from `init`, returning the
/// final centroids. Used for seeding and in the examples.
Centroids LloydIterations(const std::vector<MlPoint>& points, Centroids init,
                          size_t iterations);

/// Deterministic initial centroids: the first k distinct points.
Centroids InitCentroids(const std::vector<MlPoint>& points, size_t k);

}  // namespace upa::ml
