// Aligned console tables and CSV output for the benchmark harness.
//
// Every bench binary prints its table/figure rows through this so the
// output format matches across experiments (and can be diffed run-to-run).
#pragma once

#include <string>
#include <vector>

namespace upa {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row. Must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Formats helpers.
  static std::string FormatDouble(double v, int precision = 4);
  static std::string FormatScientific(double v, int precision = 3);
  static std::string FormatPercent(double fraction, int precision = 1);

  /// Render as an aligned ASCII table.
  std::string ToString() const;
  /// Render as CSV (RFC-4180-ish quoting).
  std::string ToCsv() const;

  /// Print ToString() to stdout with a title line.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace upa
