// Differential harness: the columnar engine vs the row-oracle interpreter.
//
// Both engines aggregate through exact (correctly-rounded) summation, so
// they must agree *bit-for-bit* — not approximately — on every output,
// partition output and per-record contribution, under any thread-pool
// size. This suite asserts exactly that over
//   * all seven TPC-H plan queries × the UPA option shapes (plain,
//     S'-style exclude+partitions, sample-style include+contributions,
//     domain-style replace+contributions),
//   * ~50 seeded random SPJ plans (chained equi-joins over the TPC-H
//     schema graph, random typed predicates, all five aggregate kinds),
// each executed under a 1-thread and a 4-thread engine.
//
// The generator keeps plans inside the domain where bit-identity is a
// theorem rather than luck: joins only on int key columns, no division
// (whole-batch vs per-row abort timing), no mixed string/numeric ordered
// comparisons (those abort), and literals drawn from actual table cells so
// predicates exercise empty, partial and full selectivity.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "relational/columnar.h"
#include "relational/executor.h"
#include "relational/optimizer.h"
#include "relational/plan.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace upa::rel {
namespace {

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

// One small dataset shared by every test in the binary (generation
// dominates runtime; the tables are immutable).
const tpch::TpchDataset& Dataset() {
  static const tpch::TpchDataset* ds = new tpch::TpchDataset(
      tpch::TpchConfig{.num_orders = 400,
                       .max_lineitems_per_order = 5,
                       .reference_skew = 1.1,
                       .seed = 7});
  return *ds;
}

void ExpectBitIdentical(const ExecResult& want, const ExecResult& got,
                        const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(Bits(want.output), Bits(got.output))
      << "output " << want.output << " vs " << got.output;
  EXPECT_EQ(want.result_rows, got.result_rows);
  ASSERT_EQ(want.partition_outputs.size(), got.partition_outputs.size());
  for (size_t p = 0; p < want.partition_outputs.size(); ++p) {
    EXPECT_EQ(Bits(want.partition_outputs[p]), Bits(got.partition_outputs[p]))
        << "partition " << p << ": " << want.partition_outputs[p] << " vs "
        << got.partition_outputs[p];
  }
  EXPECT_EQ(want.contributions.size(), got.contributions.size());
  for (const auto& [idx, value] : want.contributions) {
    auto it = got.contributions.find(idx);
    if (it == got.contributions.end()) {
      ADD_FAILURE() << "contribution for record " << idx << " missing";
      continue;
    }
    EXPECT_EQ(Bits(value), Bits(it->second))
        << "contribution[" << idx << "]: " << value << " vs " << it->second;
  }
}

// Runs `plan` under both engines and both pool sizes; every run must agree
// bit-for-bit with the 1-thread row oracle (or fail with the same status).
class DifferentialRunner {
 public:
  DifferentialRunner()
      : ctx1_(engine::ExecConfig{.threads = 1, .default_partitions = 1}),
        ctx4_(engine::ExecConfig{.threads = 4, .default_partitions = 4}),
        catalog_(Dataset().catalog()),
        exec1_(&ctx1_, &catalog_),
        exec4_(&ctx4_, &catalog_) {}

  void Run(const std::string& label, const PlanPtr& plan,
           ExecOptions options) {
    options.engine = ExecEngine::kRowOracle;
    Result<ExecResult> oracle = exec1_.Execute(plan, options);

    struct Variant {
      const char* name;
      const PlanExecutor* exec;
      ExecEngine engine;
    };
    const Variant variants[] = {
        {"columnar/threads=1", &exec1_, ExecEngine::kColumnar},
        {"row/threads=4", &exec4_, ExecEngine::kRowOracle},
        {"columnar/threads=4", &exec4_, ExecEngine::kColumnar},
    };
    for (const Variant& v : variants) {
      options.engine = v.engine;
      Result<ExecResult> got = v.exec->Execute(plan, options);
      const std::string trace = label + " [" + v.name + "]";
      SCOPED_TRACE(trace);
      ASSERT_EQ(oracle.ok(), got.ok())
          << (oracle.ok() ? got.status().ToString()
                          : oracle.status().ToString());
      if (!oracle.ok()) {
        EXPECT_EQ(oracle.status().ToString(), got.status().ToString());
        continue;
      }
      ExpectBitIdentical(oracle.value(), got.value(), trace);
    }
  }

  // Oracle from the *unoptimized* plan (row engine, 1 thread); the
  // *optimized* plan runs under both engines and both pool sizes and must
  // reproduce the oracle bit-for-bit — the optimizer's safety contract.
  void RunPair(const std::string& label, const PlanPtr& base,
               const PlanPtr& optimized, ExecOptions options) {
    options.engine = ExecEngine::kRowOracle;
    Result<ExecResult> oracle = exec1_.Execute(base, options);

    struct Variant {
      const char* name;
      const PlanExecutor* exec;
      ExecEngine engine;
    };
    const Variant variants[] = {
        {"opt row/threads=1", &exec1_, ExecEngine::kRowOracle},
        {"opt columnar/threads=1", &exec1_, ExecEngine::kColumnar},
        {"opt row/threads=4", &exec4_, ExecEngine::kRowOracle},
        {"opt columnar/threads=4", &exec4_, ExecEngine::kColumnar},
    };
    for (const Variant& v : variants) {
      options.engine = v.engine;
      Result<ExecResult> got = v.exec->Execute(optimized, options);
      const std::string trace = label + " [" + v.name + "]";
      SCOPED_TRACE(trace);
      ASSERT_EQ(oracle.ok(), got.ok())
          << (oracle.ok() ? got.status().ToString()
                          : oracle.status().ToString());
      if (!oracle.ok()) {
        EXPECT_EQ(oracle.status().ToString(), got.status().ToString());
        continue;
      }
      ExpectBitIdentical(oracle.value(), got.value(), trace);
    }
  }

  const Catalog& catalog() const { return catalog_; }

 private:
  engine::ExecContext ctx1_, ctx4_;
  Catalog catalog_;
  PlanExecutor exec1_, exec4_;
};

// ---------------------------------------------------------------------------
// TPC-H queries under the UPA option shapes.

TEST(ColumnarDifferentialTest, TpchQueriesAllOptionShapes) {
  DifferentialRunner runner;
  const tpch::TpchDataset& ds = Dataset();
  Rng rng = Rng::ForStream(7, "columnar_diff/tpch");

  for (const tpch::TpchQuery& q : tpch::AllTpchQueries()) {
    const size_t n = ds.table(q.private_table).NumRows();

    // Plain native run: no provenance at all.
    runner.Run(q.name + "/plain", q.plan, ExecOptions{});

    // Full-dataset run with contribution tracking.
    {
      ExecOptions opts;
      opts.private_table = q.private_table;
      opts.track_contributions = true;
      runner.Run(q.name + "/contrib", q.plan, opts);
    }

    // S'-style: a sampled set excluded, per-partition outputs.
    {
      std::vector<size_t> excluded =
          rng.SampleWithoutReplacement(n, std::min<size_t>(n, 25));
      ExecOptions opts;
      opts.private_table = q.private_table;
      opts.exclude_rows = &excluded;
      opts.partitions = 3;
      runner.Run(q.name + "/sprime", q.plan, opts);
    }

    // Sample-style: restricted to the sampled set, contributions tracked.
    {
      std::vector<size_t> included =
          rng.SampleWithoutReplacement(n, std::min<size_t>(n, 40));
      ExecOptions opts;
      opts.private_table = q.private_table;
      opts.include_rows = &included;
      opts.track_contributions = true;
      runner.Run(q.name + "/sample", q.plan, opts);
    }

    // Domain-style: private rows replaced wholesale (churned dataset).
    {
      std::vector<size_t> dropped =
          rng.SampleWithoutReplacement(n, std::min<size_t>(n, 10));
      std::vector<Row> churned = ds.RowsWithout(q.private_table, dropped);
      ExecOptions opts;
      opts.private_table = q.private_table;
      opts.replace_private_rows = &churned;
      opts.track_contributions = true;
      opts.partitions = 2;
      runner.Run(q.name + "/domain", q.plan, opts);
    }
  }
}

// Same TPC-H queries with the storage layer forced to 7-row fragments: the
// fragment directory, zone-map skipping and fragment-aligned batching must
// all be invisible in the outputs. A fresh dataset is generated because
// Table memoizes its columnar form — the shared Dataset() tables may
// already be materialized at the default fragment size.
TEST(ColumnarDifferentialTest, TinyFragmentsBitIdentical) {
  struct FragGuard {
    size_t saved = DefaultFragmentRows();
    ~FragGuard() { SetDefaultFragmentRows(saved); }
  } guard;
  SetDefaultFragmentRows(7);

  tpch::TpchDataset ds(tpch::TpchConfig{.num_orders = 120,
                                        .max_lineitems_per_order = 4,
                                        .reference_skew = 1.1,
                                        .seed = 11});
  Catalog catalog = ds.catalog();
  engine::ExecContext ctx1(
      engine::ExecConfig{.threads = 1, .default_partitions = 1});
  engine::ExecContext ctx4(
      engine::ExecConfig{.threads = 4, .default_partitions = 4});
  PlanExecutor exec1(&ctx1, &catalog);
  PlanExecutor exec4(&ctx4, &catalog);
  Rng rng = Rng::ForStream(11, "columnar_diff/tiny_fragments");

  for (const tpch::TpchQuery& q : tpch::AllTpchQueries()) {
    const size_t n = ds.table(q.private_table).NumRows();
    std::vector<size_t> excluded =
        rng.SampleWithoutReplacement(n, std::min<size_t>(n, 25));

    std::vector<std::pair<std::string, ExecOptions>> shapes;
    shapes.push_back({"plain", ExecOptions{}});
    {
      ExecOptions opts;
      opts.private_table = q.private_table;
      opts.track_contributions = true;
      opts.partitions = 3;
      shapes.push_back({"contrib", opts});
    }
    {
      ExecOptions opts;
      opts.private_table = q.private_table;
      opts.exclude_rows = &excluded;
      shapes.push_back({"sprime", opts});
    }

    for (auto& [shape, opts] : shapes) {
      opts.engine = ExecEngine::kRowOracle;
      Result<ExecResult> oracle = exec1.Execute(q.plan, opts);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      for (PlanExecutor* exec : {&exec1, &exec4}) {
        opts.engine = ExecEngine::kColumnar;
        Result<ExecResult> got = exec->Execute(q.plan, opts);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectBitIdentical(oracle.value(), got.value(),
                           q.name + "/" + shape +
                               (exec == &exec1 ? " [frag=7 threads=1]"
                                               : " [frag=7 threads=4]"));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded random SPJ plans over the TPC-H schema graph.

struct ColumnInfo {
  std::string name;
  bool is_string = false;
};

struct TableInfo {
  std::string name;
  std::vector<ColumnInfo> columns;
};

struct JoinEdge {
  // Joining `right_table` onto a tree that already contains `left_table`.
  std::string left_table, left_key;
  std::string right_table, right_key;
};

const std::vector<TableInfo>& Tables() {
  static const std::vector<TableInfo> kTables = {
      {"lineitem",
       {{"l_orderkey"}, {"l_partkey"}, {"l_suppkey"}, {"l_quantity"},
        {"l_extendedprice"}, {"l_discount"}, {"l_shipdate"}, {"l_commitdate"},
        {"l_receiptdate"}, {"l_returnflag", true}}},
      {"orders",
       {{"o_orderkey"}, {"o_custkey"}, {"o_orderdate"},
        {"o_orderpriority", true}, {"o_orderstatus", true}}},
      {"customer", {{"c_custkey"}, {"c_nationkey"}, {"c_mktsegment", true}}},
      {"part", {{"p_partkey"}, {"p_brand", true}, {"p_type", true},
                {"p_size"}}},
      {"supplier", {{"s_suppkey"}, {"s_nationkey"}, {"s_complaint"}}},
      {"partsupp",
       {{"ps_partkey"}, {"ps_suppkey"}, {"ps_availqty"}, {"ps_supplycost"}}},
      {"nation", {{"n_nationkey"}, {"n_name", true}}},
  };
  return kTables;
}

const std::vector<JoinEdge>& Edges() {
  static const std::vector<JoinEdge> kEdges = {
      {"orders", "o_orderkey", "lineitem", "l_orderkey"},
      {"customer", "c_custkey", "orders", "o_custkey"},
      {"part", "p_partkey", "partsupp", "ps_partkey"},
      {"supplier", "s_suppkey", "partsupp", "ps_suppkey"},
      {"supplier", "s_suppkey", "lineitem", "l_suppkey"},
      {"part", "p_partkey", "lineitem", "l_partkey"},
      {"nation", "n_nationkey", "supplier", "s_nationkey"},
      {"nation", "n_nationkey", "customer", "c_nationkey"},
  };
  return kEdges;
}

const TableInfo& InfoFor(const std::string& table) {
  for (const TableInfo& t : Tables()) {
    if (t.name == table) return t;
  }
  ADD_FAILURE() << "unknown table " << table;
  return Tables().front();
}

// A literal drawn from an actual cell of `table.column` — guarantees the
// literal sits inside the value distribution, so comparisons split the
// table instead of being vacuously all-true/all-false.
Value SampleCell(const std::string& table, const std::string& column,
                 Rng& rng) {
  const Table& t = Dataset().table(table);
  const Row& row = t.rows()[rng.UniformU64(t.NumRows())];
  return row[t.schema().IndexOf(column)];
}

ExprPtr LitFrom(const Value& v) { return Expr::Literal(v); }

// Random typed predicate over the columns of `table`. Depth-limited;
// leaves compare a column against a same-typed literal sampled from the
// data, or test membership in a small sampled set.
ExprPtr RandomPredicate(const std::string& table, Rng& rng, int depth) {
  const TableInfo& info = InfoFor(table);
  if (depth > 0 && rng.Bernoulli(0.45)) {
    switch (rng.UniformU64(3)) {
      case 0:
        return And(RandomPredicate(table, rng, depth - 1),
                   RandomPredicate(table, rng, depth - 1));
      case 1:
        return Or(RandomPredicate(table, rng, depth - 1),
                  RandomPredicate(table, rng, depth - 1));
      default:
        return Not(RandomPredicate(table, rng, depth - 1));
    }
  }
  const ColumnInfo& col =
      info.columns[rng.UniformU64(info.columns.size())];
  if (rng.Bernoulli(0.2)) {  // membership test over sampled cells
    std::vector<Value> set;
    const size_t k = 1 + rng.UniformU64(4);
    for (size_t i = 0; i < k; ++i) {
      set.push_back(SampleCell(table, col.name, rng));
    }
    return In(Col(col.name), std::move(set));
  }
  ExprPtr lhs = Col(col.name);
  ExprPtr rhs = LitFrom(SampleCell(table, col.name, rng));
  switch (rng.UniformU64(6)) {
    case 0: return Eq(std::move(lhs), std::move(rhs));
    case 1: return Ne(std::move(lhs), std::move(rhs));
    case 2: return Lt(std::move(lhs), std::move(rhs));
    case 3: return Le(std::move(lhs), std::move(rhs));
    case 4: return Gt(std::move(lhs), std::move(rhs));
    default: return Ge(std::move(lhs), std::move(rhs));
  }
}

// Random arithmetic expression over the numeric columns of the scanned
// tables (for Sum/Avg/Min/Max roots). No division: the engines abort the
// process identically on division by zero, but a test shouldn't die.
ExprPtr RandomNumericExpr(const std::vector<std::string>& tables, Rng& rng) {
  std::vector<std::string> numeric;
  for (const std::string& t : tables) {
    for (const ColumnInfo& c : InfoFor(t).columns) {
      if (!c.is_string) numeric.push_back(c.name);
    }
  }
  ExprPtr e = Col(numeric[rng.UniformU64(numeric.size())]);
  const size_t extra = rng.UniformU64(3);
  for (size_t i = 0; i < extra; ++i) {
    ExprPtr other = rng.Bernoulli(0.5)
                        ? Col(numeric[rng.UniformU64(numeric.size())])
                        : Lit(rng.UniformDouble(-2.0, 2.0));
    switch (rng.UniformU64(3)) {
      case 0: e = Add(std::move(e), std::move(other)); break;
      case 1: e = Sub(std::move(e), std::move(other)); break;
      default: e = Mul(std::move(e), std::move(other)); break;
    }
  }
  return e;
}

struct RandomPlan {
  PlanPtr plan;
  std::vector<std::string> tables;
  bool additive = true;  // Count/Sum root (provenance-compatible)
};

RandomPlan MakeRandomPlan(Rng& rng) {
  RandomPlan out;
  // Grow a join tree by chaining schema edges; every table at most once
  // (preserves the single-private-scan invariant and unique column names).
  out.tables.push_back(Tables()[rng.UniformU64(Tables().size())].name);
  PlanPtr rel = ScanPlan(out.tables.back());
  if (rng.Bernoulli(0.6)) {
    rel = FilterPlan(rel, RandomPredicate(out.tables.back(), rng, 2));
  }
  const size_t joins = rng.UniformU64(3);  // 0..2 extra tables
  for (size_t j = 0; j < joins; ++j) {
    std::vector<const JoinEdge*> usable;
    for (const JoinEdge& e : Edges()) {
      const bool has_l = std::find(out.tables.begin(), out.tables.end(),
                                   e.left_table) != out.tables.end();
      const bool has_r = std::find(out.tables.begin(), out.tables.end(),
                                   e.right_table) != out.tables.end();
      if (has_l != has_r) usable.push_back(&e);
    }
    if (usable.empty()) break;
    const JoinEdge& e = *usable[rng.UniformU64(usable.size())];
    const bool joining_right =
        std::find(out.tables.begin(), out.tables.end(), e.right_table) ==
        out.tables.end();
    const std::string fresh = joining_right ? e.right_table : e.left_table;
    const std::string fresh_key = joining_right ? e.right_key : e.left_key;
    const std::string held_key = joining_right ? e.left_key : e.right_key;
    PlanPtr side = ScanPlan(fresh);
    if (rng.Bernoulli(0.5)) {
      side = FilterPlan(side, RandomPredicate(fresh, rng, 1));
    }
    rel = rng.Bernoulli(0.5)
              ? JoinPlan(rel, side, held_key, fresh_key)
              : JoinPlan(side, rel, fresh_key, held_key);
    out.tables.push_back(fresh);
  }
  switch (rng.UniformU64(6)) {
    case 0:
    case 1:
      out.plan = CountPlan(rel);
      break;
    case 2:
    case 3:
      out.plan = SumPlan(rel, RandomNumericExpr(out.tables, rng));
      break;
    case 4:
      out.plan = AvgPlan(rel, RandomNumericExpr(out.tables, rng));
      out.additive = false;
      break;
    default:
      out.plan = rng.Bernoulli(0.5)
                     ? MinPlan(rel, RandomNumericExpr(out.tables, rng))
                     : MaxPlan(rel, RandomNumericExpr(out.tables, rng));
      out.additive = false;
      break;
  }
  return out;
}

TEST(ColumnarDifferentialTest, RandomPlans) {
  DifferentialRunner runner;
  const tpch::TpchDataset& ds = Dataset();
  constexpr int kPlans = 50;

  for (int i = 0; i < kPlans; ++i) {
    Rng rng = Rng::ForStream(7, "columnar_diff/plan" + std::to_string(i));
    RandomPlan rp = MakeRandomPlan(rng);
    const std::string label =
        "plan" + std::to_string(i) + ": " + PlanToString(rp.plan);

    runner.Run(label + "/plain", rp.plan, ExecOptions{});

    // Provenance shapes. For non-additive roots both engines must *reject*
    // identically (Unsupported), which Run() also asserts — so don't skip.
    const std::string priv = rp.tables[rng.UniformU64(rp.tables.size())];
    const size_t n = ds.table(priv).NumRows();
    {
      ExecOptions opts;
      opts.private_table = priv;
      opts.track_contributions = true;
      opts.partitions = 1 + rng.UniformU64(4);
      runner.Run(label + "/contrib", rp.plan, opts);
    }
    if (rp.additive) {
      std::vector<size_t> subset =
          rng.SampleWithoutReplacement(n, rng.UniformU64(n + 1));
      ExecOptions opts;
      opts.private_table = priv;
      if (rng.Bernoulli(0.5)) {
        opts.exclude_rows = &subset;
      } else {
        opts.include_rows = &subset;
      }
      opts.track_contributions = rng.Bernoulli(0.5);
      opts.partitions = rng.UniformU64(4);
      runner.Run(label + "/subset", rp.plan, opts);
    }
  }
}

// Errors must match too: both engines surface the same status for the
// same malformed plan.
TEST(ColumnarDifferentialTest, ErrorParity) {
  DifferentialRunner runner;

  // Unknown table.
  runner.Run("unknown-table", CountPlan(ScanPlan("nope")), ExecOptions{});
  // Unknown filter column.
  runner.Run("unknown-column",
             CountPlan(FilterPlan(ScanPlan("nation"),
                                  Gt(Col("mystery"), Lit(int64_t{3})))),
             ExecOptions{});
  // Unknown join key.
  runner.Run("unknown-join-key",
             CountPlan(JoinPlan(ScanPlan("nation"), ScanPlan("supplier"),
                                "n_nationkey", "s_missing")),
             ExecOptions{});
  // Sum without an expression.
  {
    auto broken = std::make_shared<PlanNode>();
    broken->kind = PlanKind::kAggregate;
    broken->agg = AggKind::kSum;
    broken->left = ScanPlan("nation");
    runner.Run("sum-missing-expr", broken, ExecOptions{});
  }
  // Avg over an empty relation.
  runner.Run("avg-empty",
             AvgPlan(FilterPlan(ScanPlan("nation"),
                                rel::Eq(Col("n_name"), Lit("ATLANTIS"))),
                     Col("n_nationkey")),
             ExecOptions{});
  // Min with provenance → Unsupported.
  {
    ExecOptions opts;
    opts.private_table = "nation";
    opts.track_contributions = true;
    runner.Run("min-with-provenance",
               MinPlan(ScanPlan("nation"), Col("n_nationkey")), opts);
  }
}

// ---------------------------------------------------------------------------
// Cost-based optimizer differential: Optimize(plan) must reproduce the
// unoptimized plan bit-for-bit — outputs, partition outputs and
// contributions — under both engines and both pool sizes, for the TPC-H
// plans (hand-built AND lifted-to-SQL-shape) and for seeded random SPJ
// plans. Join reorder, build-side hints and conjunct reordering are all
// exercised through the same oracle.

TEST(OptimizerDifferentialTest, TpchPlansAllOptionShapes) {
  DifferentialRunner runner;
  const tpch::TpchDataset& ds = Dataset();
  Rng rng = Rng::ForStream(7, "opt_diff/tpch");

  for (const tpch::TpchQuery& q : tpch::AllTpchQueries()) {
    const size_t n = ds.table(q.private_table).NumRows();
    OptimizerOptions opt;
    opt.private_table = q.private_table;
    // Two optimized forms: the hand-built plan, and the plan lifted to the
    // naive SQL shape first (all filters above the joins) so pushdown and
    // reorder have real work to do.
    const PlanPtr optimized = Optimize(q.plan, runner.catalog(), opt);
    const PlanPtr from_lifted =
        Optimize(LiftFilters(q.plan), runner.catalog(), opt);

    runner.RunPair(q.name + "/plain", q.plan, optimized, ExecOptions{});
    runner.RunPair(q.name + "/plain-lifted", q.plan, from_lifted,
                   ExecOptions{});

    {
      ExecOptions opts;
      opts.private_table = q.private_table;
      opts.track_contributions = true;
      runner.RunPair(q.name + "/contrib", q.plan, optimized, opts);
      runner.RunPair(q.name + "/contrib-lifted", q.plan, from_lifted, opts);
    }
    {
      std::vector<size_t> excluded =
          rng.SampleWithoutReplacement(n, std::min<size_t>(n, 25));
      ExecOptions opts;
      opts.private_table = q.private_table;
      opts.exclude_rows = &excluded;
      opts.partitions = 3;
      runner.RunPair(q.name + "/sprime", q.plan, optimized, opts);
    }
    {
      std::vector<size_t> included =
          rng.SampleWithoutReplacement(n, std::min<size_t>(n, 40));
      ExecOptions opts;
      opts.private_table = q.private_table;
      opts.include_rows = &included;
      opts.track_contributions = true;
      runner.RunPair(q.name + "/sample", q.plan, optimized, opts);
    }
  }
}

TEST(OptimizerDifferentialTest, RandomPlans) {
  DifferentialRunner runner;
  const tpch::TpchDataset& ds = Dataset();
  constexpr int kPlans = 50;

  for (int i = 0; i < kPlans; ++i) {
    Rng rng = Rng::ForStream(11, "opt_diff/plan" + std::to_string(i));
    RandomPlan rp = MakeRandomPlan(rng);
    const std::string label =
        "opt-plan" + std::to_string(i) + ": " + PlanToString(rp.plan);
    const std::string priv = rp.tables[rng.UniformU64(rp.tables.size())];

    OptimizerOptions opt;
    opt.private_table = priv;
    const PlanPtr optimized = Optimize(rp.plan, runner.catalog(), opt);
    // Optimizing the lifted shape stresses pushdown + reorder together on
    // arbitrary SPJ trees; hints stay on (private_table empty) to also
    // exercise hinted joins.
    const PlanPtr from_lifted =
        Optimize(LiftFilters(rp.plan), runner.catalog());

    runner.RunPair(label + "/plain", rp.plan, optimized, ExecOptions{});
    runner.RunPair(label + "/plain-lifted", rp.plan, from_lifted,
                   ExecOptions{});

    {
      ExecOptions opts;
      opts.private_table = priv;
      opts.track_contributions = true;
      opts.partitions = 1 + rng.UniformU64(4);
      runner.RunPair(label + "/contrib", rp.plan, optimized, opts);
    }
    if (rp.additive) {
      const size_t n = ds.table(priv).NumRows();
      std::vector<size_t> subset =
          rng.SampleWithoutReplacement(n, rng.UniformU64(n + 1));
      ExecOptions opts;
      opts.private_table = priv;
      if (rng.Bernoulli(0.5)) {
        opts.exclude_rows = &subset;
      } else {
        opts.include_rows = &subset;
      }
      opts.track_contributions = rng.Bernoulli(0.5);
      opts.partitions = rng.UniformU64(4);
      runner.RunPair(label + "/subset", rp.plan, optimized, opts);
    }
  }
}

}  // namespace
}  // namespace upa::rel
