#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "common/status.h"

namespace upa {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    std::lock_guard lock(mu_);
    UPA_CHECK_MSG(!stop_, "Submit on a stopped ThreadPool");
    queue_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

size_t ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  return ParallelForChunks(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

size_t ThreadPool::ParallelForChunks(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return 0;
  // Cooperative cancellation: chunks are the polling boundary. Each chunk
  // re-installs the caller's token on the worker that runs it (tokens ride
  // a thread-local scope, not the call signature) and is skipped once the
  // token trips — the caller is abandoning the result anyway, so skipped
  // chunks only shed work; the caller converts the trip into a Status.
  CancelToken* token = CancelScope::Current();
  size_t chunks = std::min(n, thread_count());
  if (chunks <= 1) {
    if (token == nullptr || token->Check().ok()) fn(0, n);
    return 1;
  }
  size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    futures.push_back(Submit([&fn, begin, end, token] {
      CancelScope scope(token);
      if (token == nullptr || token->Check().ok()) fn(begin, end);
    }));
  }
  // Wait for every chunk before propagating any error: chunks reference
  // caller stack state, so unwinding while siblings still run would be a
  // use-after-scope.
  //
  // While waiting, help-run queued tasks. A plain future::get() here would
  // deadlock when the caller is itself a pool worker: the sibling chunks sit
  // in the queue waiting for this very thread. Draining the queue instead
  // guarantees progress on any pool size, including a 1-thread pool whose
  // single worker calls ParallelFor recursively.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!TryRunOneTask()) {
        // Queue empty but our chunk still running on another worker; a short
        // timed wait (not a bare get()) keeps us responsive to tasks that
        // the running chunk may itself enqueue.
        f.wait_for(std::chrono::milliseconds(1));
      }
    }
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return futures.size();
}

bool ThreadPool::TryRunOneTask() {
  std::packaged_task<void()> task;
  {
    std::lock_guard lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  UPA_FAILPOINT_HIT("threadpool/task");
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    UPA_FAILPOINT_HIT("threadpool/task");
    task();
  }
}

}  // namespace upa
