#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/status.h"

namespace upa {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

namespace {
double SumSquaredDeviations(std::span<const double> xs) {
  double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    double d = x - m;
    ss += d * d;
  }
  return ss;
}
}  // namespace

double VariancePopulation(std::span<const double> xs) {
  if (xs.size() <= 1) return 0.0;
  return SumSquaredDeviations(xs) / static_cast<double>(xs.size());
}

double VarianceSample(std::span<const double> xs) {
  if (xs.size() <= 1) return 0.0;
  return SumSquaredDeviations(xs) / static_cast<double>(xs.size() - 1);
}

double StdDevPopulation(std::span<const double> xs) {
  return std::sqrt(VariancePopulation(xs));
}

double StdDevSample(std::span<const double> xs) {
  return std::sqrt(VarianceSample(xs));
}

double Min(std::span<const double> xs) {
  UPA_CHECK_MSG(!xs.empty(), "Min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  UPA_CHECK_MSG(!xs.empty(), "Max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double Percentile(std::span<const double> xs, double p) {
  UPA_CHECK_MSG(!xs.empty(), "Percentile of empty span");
  UPA_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Rmse(std::span<const double> a, std::span<const double> b) {
  UPA_CHECK_MSG(a.size() == b.size(), "Rmse requires equal lengths");
  if (a.empty()) return 0.0;
  double ss = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(a.size()));
}

double RelativeRmse(std::span<const double> estimates,
                    std::span<const double> truths, double eps) {
  UPA_CHECK_MSG(estimates.size() == truths.size(),
                "RelativeRmse requires equal lengths");
  double ss = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    if (std::fabs(truths[i]) < eps) continue;
    double r = (estimates[i] - truths[i]) / truths[i];
    ss += r * r;
    ++n;
  }
  if (n == 0) return 0.0;
  return std::sqrt(ss / static_cast<double>(n));
}

double CoverageFraction(std::span<const double> xs, double lo, double hi) {
  if (xs.empty()) return 0.0;
  size_t inside = 0;
  for (double x : xs) {
    if (x >= lo && x <= hi) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(xs.size());
}

std::string Summary::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.6g sd=%.6g min=%.6g p50=%.6g p99=%.6g max=%.6g",
                count, mean, stddev, min, p50, p99, max);
  return buf;
}

Summary Summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = Mean(xs);
  s.stddev = StdDevSample(xs);
  s.min = Min(xs);
  s.p50 = Percentile(xs, 50.0);
  s.p99 = Percentile(xs, 99.0);
  s.max = Max(xs);
  return s;
}

}  // namespace upa
