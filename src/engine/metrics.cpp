#include "engine/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace upa::engine {

double HistogramSnapshot::BucketUpperSeconds(size_t i) {
  // Bucket i covers (2^(i-1), 2^i] microseconds; the last bucket is
  // open-ended but reports its lower edge as the bound.
  return std::ldexp(1e-6, static_cast<int>(std::min(i, kBuckets - 1)));
}

size_t HistogramSnapshot::BucketOf(double seconds) {
  if (!(seconds > 1e-6)) return 0;
  int exp = static_cast<int>(std::ceil(std::log2(seconds / 1e-6)));
  return std::min(static_cast<size_t>(std::max(exp, 0)),
                  kBuckets - 1);
}

double HistogramSnapshot::QuantileSeconds(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Never report a quantile above the observed maximum (the top
      // bucket's upper bound can be far beyond it).
      return std::min(BucketUpperSeconds(i), max_seconds);
    }
  }
  return max_seconds;
}

HistogramSnapshot HistogramSnapshot::operator-(
    const HistogramSnapshot& base) const {
  HistogramSnapshot d;
  d.count = count - base.count;
  d.sum_seconds = sum_seconds - base.sum_seconds;
  d.max_seconds = max_seconds;  // max is not subtractable; keep the later one
  for (size_t i = 0; i < kBuckets; ++i) {
    d.buckets[i] = buckets[i] - base.buckets[i];
  }
  return d;
}

std::string HistogramSnapshot::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3fms p50=%.3fms p99=%.3fms max=%.3fms",
                static_cast<unsigned long long>(count), MeanSeconds() * 1e3,
                QuantileSeconds(0.5) * 1e3, QuantileSeconds(0.99) * 1e3,
                max_seconds * 1e3);
  return buf;
}

MetricsSnapshot MetricsSnapshot::operator-(const MetricsSnapshot& base) const {
  MetricsSnapshot d;
  d.tasks_launched = tasks_launched - base.tasks_launched;
  d.records_processed = records_processed - base.records_processed;
  d.shuffle_rounds = shuffle_rounds - base.shuffle_rounds;
  d.shuffle_records = shuffle_records - base.shuffle_records;
  d.cache_hits = cache_hits - base.cache_hits;
  d.cache_misses = cache_misses - base.cache_misses;
  d.kernel_batches = kernel_batches - base.kernel_batches;
  d.kernel_rows = kernel_rows - base.kernel_rows;
  d.phase_seconds = phase_seconds;
  for (const auto& [name, secs] : base.phase_seconds) {
    d.phase_seconds[name] -= secs;
  }
  d.phase_tasks = phase_tasks;
  for (const auto& [name, tasks] : base.phase_tasks) {
    d.phase_tasks[name] -= tasks;
  }
  d.counters = counters;
  for (const auto& [name, n] : base.counters) {
    d.counters[name] -= n;
  }
  d.latency = latency;
  for (const auto& [name, hist] : base.latency) {
    d.latency[name] = d.latency[name] - hist;
  }
  d.gauges = gauges;  // point-in-time values: the later snapshot wins
  return d;
}

std::string MetricsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tasks=%llu records=%llu shuffles=%llu shuffled_records=%llu "
                "kernel_batches=%llu kernel_rows=%llu cache_hit_rate=%.1f%%",
                static_cast<unsigned long long>(tasks_launched),
                static_cast<unsigned long long>(records_processed),
                static_cast<unsigned long long>(shuffle_rounds),
                static_cast<unsigned long long>(shuffle_records),
                static_cast<unsigned long long>(kernel_batches),
                static_cast<unsigned long long>(kernel_rows),
                cache_hit_rate() * 100.0);
  std::string out = buf;
  for (const auto& [name, secs] : phase_seconds) {
    char pbuf[96];
    std::snprintf(pbuf, sizeof(pbuf), " %s=%.3fms", name.c_str(), secs * 1e3);
    out += pbuf;
  }
  for (const auto& [name, tasks] : phase_tasks) {
    char pbuf[96];
    std::snprintf(pbuf, sizeof(pbuf), " %s.tasks=%llu", name.c_str(),
                  static_cast<unsigned long long>(tasks));
    out += pbuf;
  }
  for (const auto& [name, n] : counters) {
    char pbuf[96];
    std::snprintf(pbuf, sizeof(pbuf), " %s=%llu", name.c_str(),
                  static_cast<unsigned long long>(n));
    out += pbuf;
  }
  for (const auto& [name, hist] : latency) {
    out += " " + name + "{" + hist.ToString() + "}";
  }
  for (const auto& [name, value] : gauges) {
    char pbuf[96];
    std::snprintf(pbuf, sizeof(pbuf), " %s=%.3f", name.c_str(), value);
    out += pbuf;
  }
  return out;
}

void ExecMetrics::AddPhaseSeconds(const std::string& phase, double seconds) {
  std::lock_guard lock(phase_mu_);
  phase_seconds_[phase] += seconds;
}

void ExecMetrics::AddPhaseTasks(const std::string& phase, uint64_t n) {
  std::lock_guard lock(phase_mu_);
  phase_tasks_[phase] += n;
}

void ExecMetrics::AddCounter(const std::string& name, uint64_t n) {
  std::lock_guard lock(phase_mu_);
  counters_[name] += n;
}

void ExecMetrics::RecordLatency(const std::string& name, double seconds) {
  std::lock_guard lock(phase_mu_);
  HistogramSnapshot& hist = latency_[name];
  hist.count += 1;
  hist.sum_seconds += seconds;
  hist.max_seconds = std::max(hist.max_seconds, seconds);
  hist.buckets[HistogramSnapshot::BucketOf(seconds)] += 1;
}

void ExecMetrics::SetGauge(const std::string& name, double value) {
  std::lock_guard lock(phase_mu_);
  gauges_[name] = value;
}

void ExecMetrics::MaxGauge(const std::string& name, double value) {
  std::lock_guard lock(phase_mu_);
  double& g = gauges_[name];
  g = std::max(g, value);
}

void ExecMetrics::RecordMorselRun(const std::string& phase,
                                  const std::vector<double>& morsel_seconds) {
  if (morsel_seconds.empty()) return;
  double sum = 0.0, mx = 0.0;
  std::lock_guard lock(phase_mu_);
  HistogramSnapshot& hist = latency_["morsel/" + phase];
  for (double s : morsel_seconds) {
    hist.count += 1;
    hist.sum_seconds += s;
    hist.max_seconds = std::max(hist.max_seconds, s);
    hist.buckets[HistogramSnapshot::BucketOf(s)] += 1;
    sum += s;
    mx = std::max(mx, s);
  }
  if (morsel_seconds.size() > 1 && sum > 0.0) {
    double& g = gauges_["imbalance/" + phase];
    g = std::max(g, mx * static_cast<double>(morsel_seconds.size()) / sum);
  }
}

MetricsSnapshot ExecMetrics::Snapshot() const {
  MetricsSnapshot s;
  s.tasks_launched = tasks_.load(std::memory_order_relaxed);
  s.records_processed = records_.load(std::memory_order_relaxed);
  s.shuffle_rounds = shuffle_rounds_.load(std::memory_order_relaxed);
  s.shuffle_records = shuffle_records_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.kernel_batches = kernel_batches_.load(std::memory_order_relaxed);
  s.kernel_rows = kernel_rows_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(phase_mu_);
    s.phase_seconds = phase_seconds_;
    s.phase_tasks = phase_tasks_;
    s.counters = counters_;
    s.latency = latency_;
    s.gauges = gauges_;
  }
  return s;
}

void ExecMetrics::Reset() {
  tasks_.store(0);
  records_.store(0);
  shuffle_rounds_.store(0);
  shuffle_records_.store(0);
  cache_hits_.store(0);
  cache_misses_.store(0);
  kernel_batches_.store(0);
  kernel_rows_.store(0);
  std::lock_guard lock(phase_mu_);
  phase_seconds_.clear();
  phase_tasks_.clear();
  counters_.clear();
  latency_.clear();
  gauges_.clear();
}

}  // namespace upa::engine
