# Empty dependencies file for upa_mlkit.
# This may be replaced when dependencies are built.
