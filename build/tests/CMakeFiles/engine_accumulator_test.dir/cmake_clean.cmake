file(REMOVE_RECURSE
  "CMakeFiles/engine_accumulator_test.dir/engine_accumulator_test.cpp.o"
  "CMakeFiles/engine_accumulator_test.dir/engine_accumulator_test.cpp.o.d"
  "engine_accumulator_test"
  "engine_accumulator_test.pdb"
  "engine_accumulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_accumulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
