// UpaService: a thread-safe, multi-tenant front door for the UPA release
// path (ROADMAP north star: one deployed service answering many analysts'
// queries over many private datasets concurrently).
//
// What the service owns, per dataset:
//   - the RANGE ENFORCER registry (Algorithm 2 state shared by every query
//     over that dataset, whoever submits it),
//   - the privacy budget (one PrivacyAccountant across datasets, with
//     charge/refund two-phase semantics: a query is charged before it runs
//     and refunded if it fails before releasing anything),
//   - a data epoch plus an LRU cache of inferred sensitivities/output
//     ranges keyed by query fingerprint × epoch: a repeated query shape on
//     unchanged data skips phase 3b's exclusion scans and the normal fit —
//     the expensive half of a run — and releases bit-identically to the
//     full run (see core::SensitivityHint),
//   - optionally (ServiceConfig::journal_dir) a durable journal of every
//     charge/release/refund/epoch-bump, replayed on construction so a
//     restarted service resumes with a bit-identical registry and ledger
//     (see journal.h for the crash-consistency protocol).
//
// Admission and ordering:
//   - at most `max_in_flight` queries execute at once (global), and at
//     most one per tenant — so each tenant's submissions execute in FIFO
//     order on the engine ThreadPool. With one writer per dataset this
//     makes concurrent operation bit-identical to a sequential replay of
//     each tenant's sequence (asserted by the stress suite).
//   - per-tenant backlogs are bounded; overflow is rejected with
//     RESOURCE_EXHAUSTED rather than queued without bound.
//   - releases on one dataset serialize on a per-dataset lock (two tenants
//     sharing a dataset stay sound; their interleaving is then admission
//     order, not bit-reproducible — that is inherent, the registry is
//     order-dependent).
//
// Deadlines and cancellation: a request may carry `deadline_ms` and/or a
// caller-held CancelToken. Cancellation is cooperative — the token is
// checked between runner phases, at ParallelFor chunk boundaries and
// between plan nodes — and interacts with the budget as "refund iff
// nothing was released": the runner's last check sits immediately before
// the enforcer Register, so a cancelled run can never have released and
// its charge is always returned. A watchdog thread prunes queued requests
// whose deadline expired before dispatch.
//
// Observability: per-phase latency histograms (service/queue,
// service/total, upa/sample|map|reduce|enforce) and named counters
// (admissions, rejections, cache hits/misses, refunds, cancellations,
// deadline misses, journal errors, suspected attacks) recorded in the
// ExecContext's engine::Metrics, plus a "/stats"-style text dump
// (StatsReport) used by examples/sql_console.cpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/timer.h"
#include "dp/accountant.h"
#include "engine/context.h"
#include "service/journal.h"
#include "upa/runner.h"

namespace upa::service {

struct ServiceConfig {
  /// Per-release pipeline defaults; `epsilon` is overridden per request.
  core::UpaConfig upa;
  /// Privacy budget per dataset (sequential composition cap).
  double budget_per_dataset = 4.0;
  /// Global cap on concurrently executing queries.
  size_t max_in_flight = 4;
  /// Bound on each tenant's backlog; overflow is rejected.
  size_t max_queue_per_tenant = 256;
  /// Capacity of each dataset's sensitivity LRU cache (0 disables reuse).
  size_t sensitivity_cache_capacity = 64;
  /// When non-empty, every budget/registry mutation is journaled here and
  /// replayed on construction (crash-safe durability; see journal.h).
  std::string journal_dir;
  /// Sync every journal append (fdatasync) and snapshot rename (fsync of
  /// tmp file + directory) to disk before acknowledging. Default on —
  /// otherwise "durable pre-acknowledgement" only covers process death,
  /// not power loss. The off-path exists for benchmarking the sync cost.
  bool journal_fsync = true;
  /// Identity of this service instance inside a cluster (printed by
  /// StatsReport so an operator can tell shard dumps apart). Empty for
  /// standalone servers.
  std::string shard_name;
  /// Poll period of the watchdog that prunes queued requests whose
  /// deadline expired before dispatch. 0 disables the watchdog (in-flight
  /// deadline checks are unaffected — those are cooperative).
  double watchdog_interval_ms = 2.0;
  /// Per-dataset LRU window of completed idempotency keys. A re-submitted
  /// key inside the window replays the journaled response byte-identically
  /// without touching the accountant; eviction is journaled (kExpire) so
  /// the window is crash-consistent. 0 disables dedup (keys are ignored).
  size_t dedup_window = 1024;
  /// Backoff hint stamped on backlog rejections (Status::retry_after_ms,
  /// carried to clients in the wire error frame). 0 = no hint.
  int64_t retry_after_hint_ms = 50;
};

/// Rejects nonsensical configurations (zero admission/queue limits,
/// negative or non-finite budget / watchdog period) with kInvalidArgument.
/// UpaService runs it at construction and fails every submission with the
/// verdict rather than accepting a config that could never serve a query.
Status ValidateServiceConfig(const ServiceConfig& config);

struct QueryRequest {
  /// Queueing/fairness unit: one tenant's requests run one at a time, in
  /// submission order.
  std::string tenant;
  /// Privacy unit: scopes the enforcer registry, budget and epoch.
  std::string dataset_id;
  core::QueryInstance query;
  double epsilon = 0.1;
  /// Drives sampling/noise (same request + same registry state → same
  /// released bits). Callers choose it so replays are reproducible.
  uint64_t seed = 0;
  /// Query-shape fingerprint for the sensitivity cache (PlanFingerprint
  /// for relational plans); 0 → derived from the query name.
  uint64_t fingerprint = 0;
  /// Wall-clock deadline measured from Submit; 0 = none. An overdue query
  /// fails with DEADLINE_EXCEEDED — from the queue via the watchdog, or
  /// mid-run at the next cooperative check — and its charge is refunded.
  int64_t deadline_ms = 0;
  /// Optional caller-held cancellation handle: Cancel() aborts the query
  /// at the next cooperative check (CANCELLED, charge refunded) — or
  /// never, if the release already happened. Created internally when only
  /// deadline_ms is set.
  std::shared_ptr<CancelToken> cancel;
  /// Idempotency key (client_nonce != 0 activates it). A re-submission
  /// with the same (client_nonce, client_seq) on the same dataset replays
  /// the original journaled response — same bits, no budget charge —
  /// instead of running again. Reusing a key for a *different* request is
  /// rejected with kInvalidArgument (the key binds to a request hash).
  uint64_t client_nonce = 0;
  uint64_t client_seq = 0;
};

struct QueryResponse {
  double released = 0.0;
  double epsilon = 0.0;
  double local_sensitivity = 0.0;
  Interval out_range;
  bool attack_suspected = false;
  size_t records_removed = 0;
  bool degenerate_sensitivity = false;
  /// True when the sensitivity/range came from the per-dataset LRU cache
  /// (the run skipped the exclusion scans).
  bool sensitivity_cache_hit = false;
  uint64_t dataset_epoch = 0;
  /// Time spent queued before execution started.
  double queue_seconds = 0.0;
  core::PhaseSeconds seconds;
};

/// Bit-exact (de)serialization of a QueryResponse for the journal's
/// kRelease blob: a replayed key must return the original response
/// byte-identically, across process death. Doubles travel as raw IEEE-754
/// bits, same as the rest of the journal.
std::string EncodeResponseBlob(const QueryResponse& response);
Status DecodeResponseBlob(const std::string& blob, QueryResponse* out);

/// The hash an idempotency key is bound to: a key re-submitted with a
/// different request (tenant/query/epsilon/seed/fingerprint) is rejected
/// instead of replayed.
uint64_t RequestKeyHash(const QueryRequest& request);

class UpaService {
 public:
  explicit UpaService(engine::ExecContext* ctx, ServiceConfig config = {});
  /// Drains: blocks until every admitted request has completed.
  ~UpaService();

  UpaService(const UpaService&) = delete;
  UpaService& operator=(const UpaService&) = delete;

  /// Enqueue a request on its tenant's FIFO queue. The future resolves
  /// when the release completes (or is rejected/fails). Rejections
  /// (backlog full, shutdown, already-cancelled) resolve immediately.
  std::future<Result<QueryResponse>> Submit(QueryRequest request);

  /// Completion signature for SubmitAsync.
  using Callback = std::function<void(Result<QueryResponse>)>;

  /// Callback flavour of Submit, for callers that must not block a thread
  /// per pending request (the network front door's event loop). `done`
  /// runs exactly once: on an engine pool thread when the query executed,
  /// or inline on the submitting thread for immediate rejections (backlog
  /// full, shutdown, dead-on-arrival). It must not block.
  void SubmitAsync(QueryRequest request, Callback done);

  /// Submit + wait. Do not call from inside an engine pool task.
  Result<QueryResponse> Execute(QueryRequest request);

  /// Announce that `dataset_id`'s underlying data changed: bumps the
  /// epoch, which invalidates every cached sensitivity for the dataset.
  void BumpEpoch(const std::string& dataset_id);
  uint64_t Epoch(const std::string& dataset_id) const;

  /// Size of the dataset's sensitivity cache (tests/stats).
  size_t CachedSensitivities(const std::string& dataset_id) const;

  /// Live size of the dataset's idempotency dedup window (tests/stats).
  size_t DedupWindowSize(const std::string& dataset_id) const;

  dp::PrivacyAccountant& accountant() { return accountant_; }
  engine::ExecContext* ctx() { return ctx_; }
  const ServiceConfig& config() const { return config_; }

  /// Non-OK when journal recovery failed at construction (the service
  /// still serves datasets whose journals did recover).
  const Status& recovery_status() const { return recovery_status_; }

  /// ValidateServiceConfig's verdict on the construction config. Non-OK
  /// means every submission is rejected with this status (the service is
  /// inert: no watchdog, no journal recovery).
  const Status& config_status() const { return config_status_; }

  /// Everything recovery must reproduce for one dataset, read from the
  /// live service. The chaos/crash-recovery suites compare this across a
  /// restart for bit-identical equality.
  struct DatasetDurableDebug {
    uint64_t epoch = 0;
    dp::BudgetCheckpoint budget;
    std::vector<std::vector<double>> registry;
  };
  DatasetDurableDebug DebugState(const std::string& dataset_id);

  /// "/stats"-style plain-text dump: admission state, per-tenant queue
  /// stats, per-dataset budget/registry/cache state, latency histograms.
  std::string StatsReport() const;

 private:
  struct Pending {
    QueryRequest request;
    std::promise<Result<QueryResponse>> promise;
    /// When set (SubmitAsync), the outcome goes through the callback and
    /// the promise is never touched.
    Callback done;
    Stopwatch queued;
    /// Cancellation handle: the caller's token, or service-created when
    /// only deadline_ms was set. Null when neither was requested.
    std::shared_ptr<CancelToken> token;
  };

  /// Deliver the outcome through whichever channel the submission chose.
  static void Resolve(Pending& pending, Result<QueryResponse> result);
  /// Shared admission path behind Submit/SubmitAsync.
  void Enqueue(std::shared_ptr<Pending> pending);

  struct TenantState {
    // shared_ptr: the in-flight task keeps its Pending alive past service
    // destruction (and ThreadPool::Submit needs a copyable callable).
    std::deque<std::shared_ptr<Pending>> queue;
    bool running = false;
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
    /// Pruned from the queue by the watchdog (deadline/cancel) before
    /// ever being dispatched.
    uint64_t cancelled = 0;
  };

  /// One dataset's sensitivity LRU: (fingerprint, epoch) → hint, most
  /// recently used at the front. Guarded by DatasetState::mu.
  struct SensitivityCache {
    using Key = std::pair<uint64_t, uint64_t>;
    std::list<std::pair<Key, core::SensitivityHint>> entries;
    std::map<Key, decltype(entries)::iterator> index;

    bool Lookup(const Key& key, core::SensitivityHint* out);
    void Insert(const Key& key, const core::SensitivityHint& hint,
                size_t capacity);
    void Clear();
    size_t size() const { return entries.size(); }
  };

  /// One dataset's LRU window of completed idempotency keys:
  /// (nonce, seq) → (request_hash, serialized response), most recently
  /// completed/replayed at the front. Guarded by DatasetState::mu.
  struct DedupTable {
    using Key = std::pair<uint64_t, uint64_t>;
    struct Entry {
      uint64_t request_hash = 0;
      std::string blob;
    };
    std::list<std::pair<Key, Entry>> entries;
    std::map<Key, decltype(entries)::iterator> index;
    uint64_t replays = 0;  // lookups answered from the window

    /// Found → copies the entry out and moves the key to the LRU front.
    bool Lookup(const Key& key, Entry* out);
    /// Inserts (or refreshes) a completed key; evicted keys — beyond
    /// `capacity` — land in `evicted` so the caller can journal their
    /// kExpire records.
    void Insert(const Key& key, Entry entry, size_t capacity,
                std::vector<Key>* evicted);
    size_t size() const { return entries.size(); }
  };

  struct DatasetState {
    // Guards epoch/cache/queries for short reads and writes only. Release
    // paths never overlap on a dataset — the dispatcher admits at most one
    // in-flight request per dataset (see busy_datasets_) — so this mutex
    // is never held across a run. Holding it across one would deadlock: a
    // pool worker waiting inside the runner's ParallelFor help-runs queued
    // tasks, and could pick up a second request for the same dataset.
    std::mutex mu;
    std::shared_ptr<core::RangeEnforcer> enforcer =
        std::make_shared<core::RangeEnforcer>();
    uint64_t epoch = 0;
    uint64_t queries = 0;
    SensitivityCache cache;
    /// Completed idempotency keys (bounded by ServiceConfig::dedup_window).
    DedupTable dedup;
    /// Durable journal; null when durability is off or the journal failed
    /// to open (then journal_status carries the error and queries on this
    /// dataset fail rather than silently losing durability).
    std::unique_ptr<Journal> journal;
    Status journal_status = Status::Ok();
  };

  std::shared_ptr<DatasetState> DatasetFor(const std::string& dataset_id);
  /// Dispatch queued requests while a global slot is free; at most one
  /// in-flight request per tenant (keeps each tenant FIFO) and at most one
  /// per dataset (serializes the registry/budget/cache without holding a
  /// lock across the run). A tenant whose head request targets a busy
  /// dataset waits — head-of-line order is what makes per-dataset request
  /// order deterministic. Called with `mu_` held.
  void MaybeDispatchLocked();
  Result<QueryResponse> RunOne(Pending& pending, double queue_seconds);
  /// Prunes queued requests whose token tripped (deadline/cancel) so they
  /// fail fast instead of occupying backlog until dispatch.
  void WatchdogLoop();
  void CountCancelMetric(StatusCode code);

  engine::ExecContext* ctx_;
  ServiceConfig config_;
  dp::PrivacyAccountant accountant_;
  Status recovery_status_ = Status::Ok();
  Status config_status_ = Status::Ok();

  mutable std::mutex mu_;  // tenants_, busy_datasets_, in_flight_, shutdown
  std::condition_variable idle_cv_;
  std::map<std::string, TenantState> tenants_;
  /// Datasets with a request currently in flight.
  std::set<std::string> busy_datasets_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;

  mutable std::mutex datasets_mu_;
  std::map<std::string, std::shared_ptr<DatasetState>> datasets_;

  /// Journal record ids, unique within this process lifetime; recovery
  /// compacts the journal, so restarting from 1 cannot collide with
  /// replayed records.
  std::atomic<uint64_t> next_qid_{0};

  std::condition_variable watchdog_cv_;  // paired with mu_
  bool watchdog_stop_ = false;           // guarded by mu_
  std::thread watchdog_;
};

}  // namespace upa::service
