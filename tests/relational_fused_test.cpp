// Fused single-pass kernels (relational/fused.h): edge cases and the
// fused-vs-interpreted-vs-row-oracle differential.
//
// The contract under test: FuseMode is purely physical. For every fusible
// Aggregate(Filter*(Scan)) chain, the fused kernel's output must match the
// interpreted columnar engine and the row oracle bit-for-bit — including
// NaN/±inf propagation through comparisons and exact sums, empty
// selections, dictionary-code boundary literals, and zone-map-decisive
// fragments — across thread counts and fragment sizes (suite names match
// the CI sanitizer filters).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "engine/context.h"
#include "relational/buffer_manager.h"
#include "relational/columnar.h"
#include "relational/executor.h"
#include "relational/expr.h"
#include "relational/fused.h"
#include "relational/optimizer.h"
#include "relational/plan.h"
#include "relational/table.h"

namespace upa::rel {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

struct GlobalConfigGuard {
  size_t fragment_rows = DefaultFragmentRows();
  ~GlobalConfigGuard() { SetDefaultFragmentRows(fragment_rows); }
};

/// Runs `plan` three ways — row oracle, interpreted columnar, fused
/// columnar — and asserts bit-identical outputs (or identical error
/// codes). Returns the oracle result for further assertions.
Result<ExecResult> ExpectTriEqual(engine::ExecContext* ctx,
                                  const Catalog& catalog, const PlanPtr& plan,
                                  const std::string& what) {
  PlanExecutor exec(ctx, &catalog);
  ExecOptions oracle_opts;
  oracle_opts.engine = ExecEngine::kRowOracle;
  Result<ExecResult> oracle = exec.Execute(plan, oracle_opts);

  ExecOptions col_opts;
  col_opts.engine = ExecEngine::kColumnar;
  Result<ExecResult> interp =
      exec.Execute(WithFuseMode(plan, FuseMode::kInterpret), col_opts);
  Result<ExecResult> fused =
      exec.Execute(WithFuseMode(plan, FuseMode::kFuse), col_opts);

  EXPECT_EQ(oracle.ok(), interp.ok()) << what;
  EXPECT_EQ(oracle.ok(), fused.ok()) << what;
  if (!oracle.ok()) {
    if (interp.ok() || fused.ok()) return oracle;
    EXPECT_EQ(oracle.status().code(), interp.status().code()) << what;
    EXPECT_EQ(oracle.status().code(), fused.status().code()) << what;
    return oracle;
  }
  if (!interp.ok() || !fused.ok()) return oracle;
  EXPECT_EQ(Bits(oracle.value().output), Bits(interp.value().output)) << what;
  EXPECT_EQ(Bits(oracle.value().output), Bits(fused.value().output)) << what;
  EXPECT_EQ(oracle.value().result_rows, fused.value().result_rows) << what;
  return oracle;
}

Schema NumStrSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"v", ValueType::kDouble},
                 {"s", ValueType::kString}});
}

/// 16 rows mixing NaN, ±inf, signed zeros and ordinary magnitudes; strings
/// drawn from {apple, cherry, mango, zebra} (note: no literal below
/// "apple" or above "zebra" appears in the data).
std::vector<Row> SpecialRows() {
  const double vals[] = {kNan, -kInf, kInf, -0.0, 0.0, 1.5, -2.25, 1e300,
                         -1e300, 3.0, kNan, 7.5, kInf, -8.125, 42.0, -1.0};
  const char* strs[] = {"apple", "cherry", "mango", "zebra"};
  std::vector<Row> rows;
  for (int64_t i = 0; i < 16; ++i) {
    rows.push_back({Value{i}, Value{vals[i]}, Value{std::string(strs[i % 4])}});
  }
  return rows;
}

TEST(FusedKernelTest, NanAndInfCompareAndSumBitIdentical) {
  GlobalConfigGuard guard;
  SetDefaultFragmentRows(5);
  Table t("t", NumStrSchema(), SpecialRows());
  Catalog catalog{{"t", &t}};
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 2});

  // Every comparison op, with NaN/±inf on both sides of the predicate and
  // inside the summed column. The engine's Compare(NaN, y) == 0 contract
  // makes NaN "equal" to everything — the fused kernels must replicate
  // that exactly, not IEEE semantics.
  std::vector<ExprPtr> preds = {
      Lt(Col("v"), Lit(1.0)),      Le(Col("v"), Lit(0.0)),
      Gt(Col("v"), Lit(-1.0)),     Ge(Col("v"), Lit(kInf)),
      Eq(Col("v"), Lit(0.0)),      Ne(Col("v"), Lit(1.5)),
      Lt(Lit(0.0), Col("v")),      Ge(Lit(1.5), Col("v")),
      Eq(Col("v"), Lit(-kInf)),    Gt(Col("v"), Lit(-kInf)),
      Lt(Col("id"), Lit(int64_t{9})), Ge(Col("id"), Lit(7.5)),
  };
  for (size_t i = 0; i < preds.size(); ++i) {
    PlanPtr filtered = FilterPlan(ScanPlan("t"), preds[i]);
    ExpectTriEqual(&ctx, catalog, CountPlan(filtered),
                   "count pred#" + std::to_string(i));
    ExpectTriEqual(&ctx, catalog, SumPlan(filtered, Col("v")),
                   "sum pred#" + std::to_string(i));
    ExpectTriEqual(&ctx, catalog, MinPlan(filtered, Col("v")),
                   "min pred#" + std::to_string(i));
    ExpectTriEqual(&ctx, catalog, MaxPlan(filtered, Col("v")),
                   "max pred#" + std::to_string(i));
  }
}

TEST(FusedKernelTest, EmptySelectionShortCircuits) {
  GlobalConfigGuard guard;
  SetDefaultFragmentRows(5);
  Table t("t", NumStrSchema(), SpecialRows());
  Catalog catalog{{"t", &t}};
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 2});

  // First conjunct kills every row; the chain must stop there. Count/Sum
  // over the empty selection are exact zeros; Avg/Min/Max fail with
  // FAILED_PRECONDITION on all three paths.
  PlanPtr empty = FilterPlan(
      FilterPlan(ScanPlan("t"), Lt(Col("id"), Lit(int64_t{-1}))),
      Gt(Col("v"), Lit(0.0)));
  Result<ExecResult> count =
      ExpectTriEqual(&ctx, catalog, CountPlan(empty), "empty count");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value().output, 0.0);
  ExpectTriEqual(&ctx, catalog, SumPlan(empty, Col("v")), "empty sum");
  Result<ExecResult> avg =
      ExpectTriEqual(&ctx, catalog, AvgPlan(empty, Col("v")), "empty avg");
  EXPECT_FALSE(avg.ok());
  EXPECT_EQ(avg.status().code(), StatusCode::kFailedPrecondition);
  ExpectTriEqual(&ctx, catalog, MinPlan(empty, Col("v")), "empty min");
  ExpectTriEqual(&ctx, catalog, MaxPlan(empty, Col("v")), "empty max");
}

TEST(FusedKernelTest, DictCodeBoundaryLiterals) {
  GlobalConfigGuard guard;
  SetDefaultFragmentRows(5);
  Table t("t", NumStrSchema(), SpecialRows());
  Catalog catalog{{"t", &t}};
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 2});

  // Literals below all codes, equal to the lowest/highest, between two
  // codes (absent), and above all codes — for every comparison op and both
  // operand orders. These exercise the [lit_lb, lit_ub) pre-resolution.
  const char* lits[] = {"aaa", "apple", "banana", "cherry", "mango",
                        "watermelon", "zebra", "zzz"};
  size_t case_id = 0;
  for (const char* lit : lits) {
    for (auto mk : {&Lt, &Le, &Gt, &Ge, &Eq, &Ne}) {
      PlanPtr f1 = FilterPlan(ScanPlan("t"), (*mk)(Col("s"), Lit(lit)));
      PlanPtr f2 = FilterPlan(ScanPlan("t"), (*mk)(Lit(lit), Col("s")));
      ExpectTriEqual(&ctx, catalog, CountPlan(f1),
                     "str count#" + std::to_string(case_id));
      ExpectTriEqual(&ctx, catalog, SumPlan(f2, Col("v")),
                     "str sum#" + std::to_string(case_id));
      ++case_id;
    }
  }
}

TEST(FusedKernelTest, ZoneMapDecisiveFragmentsStaySafe) {
  GlobalConfigGuard guard;
  SetDefaultFragmentRows(10);
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) {
    rows.push_back({Value{i}, Value{static_cast<double>(i) * 0.5},
                    Value{std::string(i < 50 ? "lo" : "hi")}});
  }
  Table t("t", NumStrSchema(), rows);
  Catalog catalog{{"t", &t}};

  // The fused path skips on the CONJOINED predicate: the second conjunct
  // (id < 25) is zone-decisive for fragments the first conjunct alone
  // would keep. Fused may therefore skip strictly more fragments than the
  // interpreted scan (which only consults the innermost conjunct) — but
  // outputs must stay bit-identical, and skipped+scanned must tile the
  // fragment directory on both paths.
  PlanPtr plan = SumPlan(
      FilterPlan(FilterPlan(ScanPlan("t"), Gt(Col("v"), Lit(2.0))),
                 Lt(Col("id"), Lit(int64_t{25}))),
      Col("v"));

  engine::ExecContext interp_ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 2});
  engine::ExecContext fused_ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 2});
  ExecOptions opts;
  opts.engine = ExecEngine::kColumnar;
  Result<ExecResult> interp = PlanExecutor(&interp_ctx, &catalog)
                                  .Execute(WithFuseMode(plan, FuseMode::kInterpret), opts);
  Result<ExecResult> fused = PlanExecutor(&fused_ctx, &catalog)
                                 .Execute(WithFuseMode(plan, FuseMode::kFuse), opts);
  ASSERT_TRUE(interp.ok()) << interp.status().ToString();
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ(Bits(interp.value().output), Bits(fused.value().output));

  engine::MetricsSnapshot is = interp_ctx.metrics().Snapshot();
  engine::MetricsSnapshot fs = fused_ctx.metrics().Snapshot();
  uint64_t interp_total = is.counters["columnar/fragments_scanned"] +
                          is.counters["columnar/fragments_skipped"];
  uint64_t fused_total = fs.counters["columnar/fragments_scanned"] +
                         fs.counters["columnar/fragments_skipped"];
  EXPECT_EQ(interp_total, 10u);
  EXPECT_EQ(fused_total, 10u);
  EXPECT_GE(fs.counters["columnar/fragments_skipped"],
            is.counters["columnar/fragments_skipped"]);
  // id >= 30 (fragments 3..9) fails the conjoined zone test outright.
  EXPECT_GE(fs.counters["columnar/fragments_skipped"], 7u);
}

TEST(FusedKernelTest, GenericFallbacksMatch) {
  GlobalConfigGuard guard;
  SetDefaultFragmentRows(5);
  Table t("t", NumStrSchema(), SpecialRows());
  Catalog catalog{{"t", &t}};
  engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 2});

  // Predicates the specialized kernels decline (NOT / OR / IN / col-col)
  // fall back to the generic compiled-expression conjunct; weights beyond
  // col and col*lit fall back to the generic projection. All still fused
  // into one pass, all still bit-identical.
  PlanPtr f = FilterPlan(
      FilterPlan(ScanPlan("t"),
                 Or(Lt(Col("v"), Lit(0.0)), Eq(Col("s"), Lit("zebra")))),
      Not(In(Col("id"), {Value{int64_t{3}}, Value{int64_t{7}}})));
  ExpectTriEqual(&ctx, catalog, CountPlan(f), "generic count");
  ExpectTriEqual(&ctx, catalog, SumPlan(f, Mul(Col("v"), Col("v"))),
                 "generic col*col");
  ExpectTriEqual(&ctx, catalog, SumPlan(f, Mul(Lit(2.5), Col("v"))),
                 "generic lit*col");
  ExpectTriEqual(&ctx, catalog,
                 SumPlan(f, Add(Mul(Col("v"), Lit(0.5)), Col("id"))),
                 "generic arith");
  ExpectTriEqual(&ctx, catalog, AvgPlan(f, Col("v")), "generic avg");
}

TEST(FusedKernelTest, LayoutAndThreadSweepBitIdentical) {
  GlobalConfigGuard guard;
  Table t("t", NumStrSchema(), SpecialRows());
  Catalog catalog{{"t", &t}};

  PlanPtr plan = SumPlan(
      FilterPlan(FilterPlan(ScanPlan("t"), Ge(Col("v"), Lit(-kInf))),
                 Ne(Col("s"), Lit("cherry"))),
      Mul(Col("v"), Lit(2.0)));

  // Baseline once, then sweep fragment sizes × thread counts.
  engine::ExecContext base_ctx(
      engine::ExecConfig{.threads = 1, .default_partitions = 1});
  ExecOptions opts;
  opts.engine = ExecEngine::kRowOracle;
  Result<ExecResult> base = PlanExecutor(&base_ctx, &catalog).Execute(plan, opts);
  ASSERT_TRUE(base.ok());

  for (size_t frag : {size_t{3}, size_t{7}, size_t{64} * 1024}) {
    SetDefaultFragmentRows(frag);
    t.ReleaseCaches();
    for (size_t threads : {size_t{1}, size_t{4}}) {
      engine::ExecContext ctx(
          engine::ExecConfig{.threads = threads, .default_partitions = threads});
      ExecOptions col;
      col.engine = ExecEngine::kColumnar;
      Result<ExecResult> fused = PlanExecutor(&ctx, &catalog)
                                     .Execute(WithFuseMode(plan, FuseMode::kFuse), col);
      ASSERT_TRUE(fused.ok()) << fused.status().ToString();
      EXPECT_EQ(Bits(base.value().output), Bits(fused.value().output))
          << "frag=" << frag << " threads=" << threads;
    }
  }
}

TEST(FusedPlanTest, OptimizerMarksFusibleRoots) {
  Table t("t", NumStrSchema(), SpecialRows());
  Catalog catalog{{"t", &t}};
  PlanPtr plan =
      CountPlan(FilterPlan(ScanPlan("t"), Lt(Col("id"), Lit(int64_t{5}))));
  ASSERT_TRUE(FusableShape(plan).has_value());

  PlanPtr optimized = Optimize(plan, catalog);
  EXPECT_EQ(optimized->fuse, FuseMode::kFuse);
  PlanPtr untouched = Optimize(plan, catalog, OptimizerOptions::Disabled());
  EXPECT_EQ(untouched->fuse, FuseMode::kAuto);

  // The fusion decision is a physical plan property: fingerprints of the
  // physical forms differ, the logical rendering does not.
  EXPECT_NE(PlanFingerprint(WithFuseMode(plan, FuseMode::kFuse), catalog),
            PlanFingerprint(WithFuseMode(plan, FuseMode::kInterpret), catalog));
  EXPECT_EQ(PlanToString(WithFuseMode(plan, FuseMode::kFuse)),
            PlanToString(plan));

  // Joins and bare aggregates over joins never fuse.
  PlanPtr join = CountPlan(
      JoinPlan(ScanPlan("t"), ScanPlan("t"), "id", "id"));
  EXPECT_FALSE(FusableShape(join).has_value());
}

}  // namespace
}  // namespace upa::rel
