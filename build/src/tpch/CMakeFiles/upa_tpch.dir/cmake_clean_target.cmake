file(REMOVE_RECURSE
  "libupa_tpch.a"
)
