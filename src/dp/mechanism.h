// Differential-privacy output mechanisms.
//
// UPA releases `Output + Lap(localSen / ε)` after clamping the output into
// the inferred range Ô_f (Algorithm 1 output line; Algorithm 2 lines 17–18).
// Vector-valued queries (LR weights, KMeans centroids) are perturbed
// per-coordinate with the same scale, matching the Laplace mechanism with
// the inferred sensitivity budgeted per released coordinate.
#pragma once

#include <vector>

#include "common/normal_fit.h"
#include "common/rng.h"

namespace upa::dp {

/// The Laplace mechanism for a scalar output.
/// noise scale b = sensitivity / epsilon; epsilon > 0, sensitivity >= 0.
double LaplaceMechanism(double value, double sensitivity, double epsilon,
                        Rng& rng);

/// Per-coordinate Laplace mechanism for a vector output.
std::vector<double> LaplaceMechanism(const std::vector<double>& values,
                                     double sensitivity, double epsilon,
                                     Rng& rng);

/// Clamp-then-perturb: the release path UPA uses. The raw value is first
/// constrained into `range` (RANGE ENFORCER lines 17–18) — which is what
/// makes the sensitivity bound sound — then Laplace noise is added.
///
/// `min_width` floors the noise scale's numerator: a degenerate fit with
/// range.width() == 0 would otherwise release the clamped value exactly,
/// with no noise at all. Mirrors UpaConfig::min_sensitivity so the
/// mechanism layer is honest even when called outside the runner.
inline constexpr double kMinReleaseWidth = 1e-9;
double ClampedLaplaceRelease(double value, const Interval& range,
                             double epsilon, Rng& rng,
                             double min_width = kMinReleaseWidth);

}  // namespace upa::dp
