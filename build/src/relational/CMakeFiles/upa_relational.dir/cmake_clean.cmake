file(REMOVE_RECURSE
  "CMakeFiles/upa_relational.dir/csv.cpp.o"
  "CMakeFiles/upa_relational.dir/csv.cpp.o.d"
  "CMakeFiles/upa_relational.dir/executor.cpp.o"
  "CMakeFiles/upa_relational.dir/executor.cpp.o.d"
  "CMakeFiles/upa_relational.dir/expr.cpp.o"
  "CMakeFiles/upa_relational.dir/expr.cpp.o.d"
  "CMakeFiles/upa_relational.dir/optimizer.cpp.o"
  "CMakeFiles/upa_relational.dir/optimizer.cpp.o.d"
  "CMakeFiles/upa_relational.dir/plan.cpp.o"
  "CMakeFiles/upa_relational.dir/plan.cpp.o.d"
  "CMakeFiles/upa_relational.dir/schema.cpp.o"
  "CMakeFiles/upa_relational.dir/schema.cpp.o.d"
  "CMakeFiles/upa_relational.dir/sql_parser.cpp.o"
  "CMakeFiles/upa_relational.dir/sql_parser.cpp.o.d"
  "CMakeFiles/upa_relational.dir/table.cpp.o"
  "CMakeFiles/upa_relational.dir/table.cpp.o.d"
  "CMakeFiles/upa_relational.dir/value.cpp.o"
  "CMakeFiles/upa_relational.dir/value.cpp.o.d"
  "libupa_relational.a"
  "libupa_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
