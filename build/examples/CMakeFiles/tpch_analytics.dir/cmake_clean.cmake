file(REMOVE_RECURSE
  "CMakeFiles/tpch_analytics.dir/tpch_analytics.cpp.o"
  "CMakeFiles/tpch_analytics.dir/tpch_analytics.cpp.o.d"
  "tpch_analytics"
  "tpch_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
