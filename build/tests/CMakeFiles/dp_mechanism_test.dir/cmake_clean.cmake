file(REMOVE_RECURSE
  "CMakeFiles/dp_mechanism_test.dir/dp_mechanism_test.cpp.o"
  "CMakeFiles/dp_mechanism_test.dir/dp_mechanism_test.cpp.o.d"
  "dp_mechanism_test"
  "dp_mechanism_test.pdb"
  "dp_mechanism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_mechanism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
