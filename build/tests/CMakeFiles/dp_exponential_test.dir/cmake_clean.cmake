file(REMOVE_RECURSE
  "CMakeFiles/dp_exponential_test.dir/dp_exponential_test.cpp.o"
  "CMakeFiles/dp_exponential_test.dir/dp_exponential_test.cpp.o.d"
  "dp_exponential_test"
  "dp_exponential_test.pdb"
  "dp_exponential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_exponential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
