// Exponential mechanism and noisy-histogram releases.
//
// Completes the DP toolkit around UPA's Laplace releases: selection among
// discrete candidates (ε-DP via the Gumbel-noise formulation) and the
// parallel-composition histogram (disjoint bins ⇒ one ε covers all bins),
// both of which the keyed API (reduceByKeyDP) and examples build on.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace upa::dp {

/// Exponential mechanism: picks index i with probability proportional to
/// exp(ε · score[i] / (2 · sensitivity)), where `sensitivity` bounds how
/// much any one record can change any score. Implemented via the Gumbel-max
/// trick (numerically stable, single pass).
size_t ExponentialMechanism(std::span<const double> scores,
                            double score_sensitivity, double epsilon,
                            Rng& rng);

/// Noisy histogram under parallel composition: each record falls in exactly
/// one bin, so adding/removing a record changes one count by 1 — Laplace
/// (1/ε) noise per bin yields ε-DP for the whole histogram.
std::vector<double> NoisyHistogram(std::span<const double> counts,
                                   double epsilon, Rng& rng);

/// ε-DP median selection over a bounded discrete domain: scores each
/// candidate by -|rank(candidate) - n/2| and applies the exponential
/// mechanism (rank sensitivity 1). `sorted_data` must be sorted ascending;
/// `candidates` are the release domain.
double PrivateMedian(std::span<const double> sorted_data,
                     std::span<const double> candidates, double epsilon,
                     Rng& rng);

}  // namespace upa::dp
