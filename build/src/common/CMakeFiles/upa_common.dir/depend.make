# Empty dependencies file for upa_common.
# This may be replaced when dependencies are built.
