// End-to-end: the nine evaluated queries through UPA, native runs, FLEX
// and ground truth, at small scale.
#include "queries/suite.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/stats.h"

namespace upa::queries {
namespace {

SuiteConfig SmallSuite(uint64_t seed = 1) {
  SuiteConfig cfg;
  cfg.tpch.num_orders = 400;
  cfg.tpch.seed = seed;
  cfg.ml.num_points = 3000;
  cfg.ml.seed = seed + 1000;
  cfg.threads = 2;
  cfg.engine_partitions = 3;
  return cfg;
}

core::UpaConfig TestUpaConfig() {
  core::UpaConfig cfg;
  cfg.sample_n = 150;
  cfg.add_noise = false;
  return cfg;
}

class SuiteTest : public ::testing::Test {
 protected:
  SuiteTest() : suite_(SmallSuite()) {}
  QuerySuite suite_;
};

TEST_F(SuiteTest, NineQueriesRegistered) {
  EXPECT_EQ(QuerySuite::AllQueryNames().size(), 9u);
  for (const auto& name : QuerySuite::AllQueryNames()) {
    EXPECT_FALSE(suite_.Info(name).query_type.empty()) << name;
  }
}

TEST_F(SuiteTest, SupportMatrixMatchesPaper) {
  // UPA supports all nine; FLEX exactly the five count queries.
  std::set<std::string> flex_supported;
  for (const auto& name : QuerySuite::AllQueryNames()) {
    auto flex = suite_.RunFlex(name);
    if (flex.supported) flex_supported.insert(name);
    EXPECT_EQ(flex.supported, suite_.Info(name).flex_supported) << name;
  }
  EXPECT_EQ(flex_supported,
            (std::set<std::string>{"TPCH1", "TPCH4", "TPCH13", "TPCH16",
                                   "TPCH21"}));
}

TEST_F(SuiteTest, UpaRawOutputEqualsNativeOnAllQueries) {
  core::UpaRunner runner(TestUpaConfig());
  for (const auto& name : QuerySuite::AllQueryNames()) {
    double native = suite_.RunNative(name);
    auto instance = suite_.MakeInstance(name);
    auto result = runner.Run(instance, 7);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    // First submission: no enforcer removal, so UPA's union-preserving
    // reduce must reproduce the vanilla output exactly.
    EXPECT_FALSE(result.value().enforcer.attack_suspected) << name;
    EXPECT_NEAR(result.value().raw_output, native,
                1e-6 * std::max(1.0, std::fabs(native)))
        << name;
  }
}

TEST_F(SuiteTest, UpaSensitivityTracksGroundTruth) {
  core::UpaRunner runner(TestUpaConfig());
  for (const auto& name : QuerySuite::AllQueryNames()) {
    auto gt = suite_.ComputeGroundTruth(name, /*n_additions=*/150, 3);
    ASSERT_TRUE(gt.ok()) << name;
    auto result = runner.Run(suite_.MakeInstance(name), 3);
    ASSERT_TRUE(result.ok()) << name;
    double inferred = result.value().local_sensitivity;
    double truth = gt.value().local_sensitivity;
    ASSERT_GT(truth, 0.0) << name;
    // The inferred value must be the right order of magnitude (the paper
    // reports percent-level RMSE for most queries). TPCH21 is the paper's
    // own outlier case: its influential records are so rare that the
    // sample can legitimately miss all of them, so no lower bound there.
    if (name != "TPCH21") {
      EXPECT_GT(inferred, truth * 0.05) << name;
    }
    EXPECT_LT(inferred, truth * 20.0) << name;
  }
}

TEST_F(SuiteTest, GroundTruthCoverageByInferredRange) {
  // Fig 3's claim: the inferred range covers the overwhelming majority of
  // all neighbouring datasets' outputs.
  core::UpaConfig cfg = TestUpaConfig();
  cfg.sample_n = 400;
  core::UpaRunner runner(cfg);
  size_t well_covered = 0;
  for (const auto& name : QuerySuite::AllQueryNames()) {
    auto gt = suite_.ComputeGroundTruth(name, 200, 5);
    ASSERT_TRUE(gt.ok()) << name;
    auto result = runner.Run(suite_.MakeInstance(name), 5);
    ASSERT_TRUE(result.ok()) << name;
    double covered = upa::CoverageFraction(gt.value().neighbour_outputs,
                                      result.value().out_range.lo,
                                      result.value().out_range.hi);
    // Coverage is data-dependent: the paper's 98.9% bar holds where the
    // influence distribution is dense (their dbgen data); our synthetic
    // join queries have sparser influences, which is the same effect the
    // paper reports for TPCH21. Structurally: nothing may fall below 80%,
    // smooth-influence queries must clear the paper's bar.
    EXPECT_GE(covered, 0.80) << name;
    if (name == "TPCH1" || name == "KMeans" || name == "LinearRegression") {
      EXPECT_GE(covered, 0.95) << name;
    }
    if (covered >= 0.95) ++well_covered;
  }
  EXPECT_GE(well_covered, 3u);
}

TEST_F(SuiteTest, ChurnRemovesRecords) {
  for (const auto& name : {"TPCH4", "KMeans"}) {
    size_t before = suite_.NumPrivateRecords(name);
    ChurnedData churn = suite_.MakeChurn(name, 2, 99);
    EXPECT_EQ(suite_.NumPrivateRecords(name, &churn), before - 2) << name;
  }
}

TEST_F(SuiteTest, ChurnedNativeOutputDiffers) {
  // Removing records must change the (count-style) output.
  ChurnedData churn = suite_.MakeChurn("TPCH1", 2, 5);
  EXPECT_DOUBLE_EQ(suite_.RunNative("TPCH1", &churn),
                   suite_.RunNative("TPCH1") - 2.0);
}

TEST_F(SuiteTest, RepeatedQueryOnNeighbouringDataTriggersEnforcer) {
  // The paper's attack: same query, dataset differing by one record.
  core::UpaRunner runner(TestUpaConfig());
  auto first = runner.Run(suite_.MakeInstance("TPCH1"), 11);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().enforcer.attack_suspected);

  ChurnedData churn = suite_.MakeChurn("TPCH1", 1, 42);
  auto second = runner.Run(suite_.MakeInstance("TPCH1", &churn), 11);
  ASSERT_TRUE(second.ok());
  // One removed record leaves one partition's output unchanged → Case 2.
  EXPECT_TRUE(second.value().enforcer.attack_suspected);
  EXPECT_GE(second.value().enforcer.records_removed, 2u);
}

TEST_F(SuiteTest, TwoRecordChurnIsNotAnAttack) {
  core::UpaRunner runner(TestUpaConfig());
  auto first = runner.Run(suite_.MakeInstance("TPCH1"), 13);
  ASSERT_TRUE(first.ok());
  // Removing two records (one per partition) changes both partitions.
  for (uint64_t churn_seed = 0; churn_seed < 6; ++churn_seed) {
    ChurnedData churn = suite_.MakeChurn("TPCH1", 2, churn_seed);
    auto second = runner.Run(suite_.MakeInstance("TPCH1", &churn), 13);
    ASSERT_TRUE(second.ok());
    // Whether both partitions changed depends on which records were hit;
    // at minimum the run must complete and register.
    EXPECT_GE(second.value().partition_outputs.size(), 2u);
  }
}

TEST_F(SuiteTest, PlanQueriesShuffleMoreUnderUpaThanNative) {
  // joinDP's doubled shuffle: UPA's phase runs must shuffle more rounds
  // than one native execution for a join query.
  auto& metrics = suite_.ctx().metrics();
  auto before_native = metrics.Snapshot();
  suite_.RunNative("TPCH4");
  auto native_delta = metrics.Snapshot() - before_native;

  core::UpaRunner runner(TestUpaConfig());
  auto before_upa = metrics.Snapshot();
  ASSERT_TRUE(runner.Run(suite_.MakeInstance("TPCH4"), 21).ok());
  auto upa_delta = metrics.Snapshot() - before_upa;

  EXPECT_GT(upa_delta.shuffle_rounds, native_delta.shuffle_rounds);
}

TEST_F(SuiteTest, GroundTruthDeterministicPerSeed) {
  auto a = suite_.ComputeGroundTruth("TPCH6", 50, 9);
  auto b = suite_.ComputeGroundTruth("TPCH6", 50, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().neighbour_outputs, b.value().neighbour_outputs);
}

TEST_F(SuiteTest, MlInstancesUseChurnedRecords) {
  core::UpaRunner runner(TestUpaConfig());
  ChurnedData churn = suite_.MakeChurn("LinearRegression", 10, 3);
  auto result = runner.Run(suite_.MakeInstance("LinearRegression", &churn), 2);
  ASSERT_TRUE(result.ok());
  double churned_native = suite_.RunNative("LinearRegression", &churn);
  EXPECT_NEAR(result.value().raw_output, churned_native, 1e-9);
}

}  // namespace
}  // namespace upa::queries
