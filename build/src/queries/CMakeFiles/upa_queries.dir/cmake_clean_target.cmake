file(REMOVE_RECURSE
  "libupa_queries.a"
)
