# Empty compiler generated dependencies file for upa_core.
# This may be replaced when dependencies are built.
