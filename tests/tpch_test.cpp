// TPC-H generator invariants and query-plan sanity over generated data.
#include <gtest/gtest.h>

#include <set>

#include "relational/executor.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace upa::tpch {
namespace {

TpchConfig SmallConfig(uint64_t seed = 1) {
  TpchConfig cfg;
  cfg.num_orders = 500;
  cfg.seed = seed;
  return cfg;
}

class TpchTest : public ::testing::Test {
 protected:
  TpchTest()
      : data_(SmallConfig()),
        ctx_(engine::ExecConfig{.threads = 2, .default_partitions = 3}),
        catalog_(data_.catalog()),
        executor_(&ctx_, &catalog_) {}

  TpchDataset data_;
  engine::ExecContext ctx_;
  rel::Catalog catalog_;
  rel::PlanExecutor executor_;
};

TEST_F(TpchTest, TableSizesFollowConfig) {
  EXPECT_EQ(data_.orders().NumRows(), 500u);
  EXPECT_EQ(data_.nation().NumRows(), TpchConfig::kNumNations);
  EXPECT_EQ(data_.customer().NumRows(), SmallConfig().num_customers());
  EXPECT_EQ(data_.part().NumRows(), SmallConfig().num_parts());
  EXPECT_EQ(data_.supplier().NumRows(), SmallConfig().num_suppliers());
  EXPECT_GE(data_.lineitem().NumRows(), data_.orders().NumRows());
  EXPECT_GE(data_.partsupp().NumRows(), data_.part().NumRows());
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  TpchDataset again(SmallConfig());
  EXPECT_EQ(again.lineitem().NumRows(), data_.lineitem().NumRows());
  EXPECT_EQ(again.lineitem().rows()[0], data_.lineitem().rows()[0]);
  EXPECT_EQ(again.orders().rows()[42], data_.orders().rows()[42]);
}

TEST_F(TpchTest, DifferentSeedsDiffer) {
  TpchDataset other(SmallConfig(2));
  EXPECT_NE(other.lineitem().rows()[0], data_.lineitem().rows()[0]);
}

TEST_F(TpchTest, ForeignKeysResolve) {
  // Every lineitem orderkey refers to an existing order.
  size_t okey_idx = data_.lineitem().schema().IndexOf("l_orderkey");
  for (const auto& row : data_.lineitem().rows()) {
    int64_t k = rel::AsInt(row[okey_idx]);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, static_cast<int64_t>(data_.orders().NumRows()));
  }
  // Every partsupp refers to existing part and supplier.
  size_t pk = data_.partsupp().schema().IndexOf("ps_partkey");
  size_t sk = data_.partsupp().schema().IndexOf("ps_suppkey");
  for (const auto& row : data_.partsupp().rows()) {
    EXPECT_LE(rel::AsInt(row[pk]),
              static_cast<int64_t>(data_.part().NumRows()));
    EXPECT_LE(rel::AsInt(row[sk]),
              static_cast<int64_t>(data_.supplier().NumRows()));
  }
}

TEST_F(TpchTest, DatesWithinSpan) {
  size_t ship = data_.lineitem().schema().IndexOf("l_shipdate");
  size_t commit = data_.lineitem().schema().IndexOf("l_commitdate");
  size_t receipt = data_.lineitem().schema().IndexOf("l_receiptdate");
  for (const auto& row : data_.lineitem().rows()) {
    for (size_t c : {ship, commit, receipt}) {
      int64_t d = rel::AsInt(row[c]);
      EXPECT_GE(d, 0);
      EXPECT_LT(d, kDateSpanDays);
    }
  }
}

TEST_F(TpchTest, ReferenceSkewProducesFrequencyGap) {
  // Zipf-skewed supplier references: the hottest supplier key must be much
  // more frequent than a uniform share.
  size_t max_freq = data_.lineitem().MaxFrequency("l_suppkey");
  double uniform_share = static_cast<double>(data_.lineitem().NumRows()) /
                         static_cast<double>(data_.supplier().NumRows());
  EXPECT_GT(static_cast<double>(max_freq), 2.0 * uniform_share);
}

TEST_F(TpchTest, SampleRowMatchesSchemas) {
  Rng rng(5);
  for (const char* table :
       {"lineitem", "orders", "partsupp", "customer", "supplier", "part"}) {
    rel::Row row = data_.SampleRow(table, rng);
    EXPECT_EQ(row.size(), data_.table(table).schema().NumColumns()) << table;
  }
}

TEST_F(TpchTest, SampledOrderKeysAreFresh) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    rel::Row row = data_.SampleRow("orders", rng);
    EXPECT_GT(rel::AsInt(row[0]),
              static_cast<int64_t>(data_.orders().NumRows()));
  }
}

TEST_F(TpchTest, RowsWithoutRemovesExactly) {
  std::vector<size_t> remove{0, 5, 10};
  auto rows = data_.RowsWithout("orders", remove);
  EXPECT_EQ(rows.size(), data_.orders().NumRows() - 3);
  EXPECT_EQ(rows[0], data_.orders().rows()[1]);
}

TEST_F(TpchTest, AllQueriesExecuteAndProduceSaneOutputs) {
  for (const TpchQuery& q : AllTpchQueries()) {
    auto r = executor_.Execute(q.plan);
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
    EXPECT_GE(r.value().output, 0.0) << q.name;
    if (q.name == "TPCH1") {
      EXPECT_DOUBLE_EQ(r.value().output,
                       static_cast<double>(data_.lineitem().NumRows()));
    }
  }
}

TEST_F(TpchTest, QueriesAreSelective) {
  // Q16/Q21 must filter most records (the paper's explanation for their
  // low UPA overhead); their outputs are far below the raw join sizes.
  auto q21 = executor_.Execute(MakeQ21().plan);
  ASSERT_TRUE(q21.ok());
  EXPECT_LT(q21.value().output,
            static_cast<double>(data_.lineitem().NumRows()) * 0.2);
}

TEST_F(TpchTest, PrivateTablesAreScannedExactlyOnce) {
  for (const TpchQuery& q : AllTpchQueries()) {
    rel::ExecOptions opts;
    opts.private_table = q.private_table;
    opts.track_contributions = true;
    auto r = executor_.Execute(q.plan, opts);
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
  }
}

TEST_F(TpchTest, QueryMetadataMatchesPaperTable2) {
  auto queries = AllTpchQueries();
  std::set<std::string> count_queries, arithmetic;
  for (const auto& q : queries) {
    if (q.query_type == "Count") {
      count_queries.insert(q.name);
      EXPECT_TRUE(q.flex_supported) << q.name;
    } else {
      arithmetic.insert(q.name);
      EXPECT_FALSE(q.flex_supported) << q.name;
    }
  }
  EXPECT_EQ(count_queries,
            (std::set<std::string>{"TPCH1", "TPCH4", "TPCH13", "TPCH16",
                                   "TPCH21"}));
  EXPECT_EQ(arithmetic, (std::set<std::string>{"TPCH6", "TPCH11"}));
}

TEST_F(TpchTest, PlanShapesMatchPaperDescription) {
  // Q21: three joins, three filters (our collapsed form).
  rel::PlanStats q21 = rel::AnalyzePlan(MakeQ21().plan);
  EXPECT_EQ(q21.num_joins, 3u);
  EXPECT_EQ(q21.num_filters, 3u);
  // Q16: two joins, filters present.
  rel::PlanStats q16 = rel::AnalyzePlan(MakeQ16().plan);
  EXPECT_EQ(q16.num_joins, 2u);
  EXPECT_GE(q16.num_filters, 2u);
  // Q1: no joins, no filters.
  rel::PlanStats q1 = rel::AnalyzePlan(MakeQ1().plan);
  EXPECT_EQ(q1.num_joins, 0u);
  EXPECT_EQ(q1.num_filters, 0u);
}

}  // namespace
}  // namespace upa::tpch
