# Empty dependencies file for relational_reference_test.
# This may be replaced when dependencies are built.
