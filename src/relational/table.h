// Table: a named, schema'd row store plus the column statistics FLEX's
// static analysis consumes (max join-key frequency per column), and the
// lazily-built columnar representation the vectorized engine executes on.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "relational/schema.h"

namespace upa::rel {

class BufferManager;
class ColumnarTable;

/// Per-column statistics, computed lazily on first use. FLEX consumes
/// max_frequency; the cost-based optimizer (relational/card_est.h) consumes
/// distinct counts, min/max and the histogram for selectivity estimation.
struct ColumnStats {
  static constexpr size_t kHistogramBuckets = 32;

  size_t max_frequency = 0;
  size_t distinct = 0;
  /// True iff every cell is int64/double. min/max/histogram are only
  /// meaningful when set; string columns estimate through `distinct` alone.
  bool numeric = false;
  double min = 0.0;
  double max = 0.0;
  /// Equi-width bucket counts over [min, max] (empty for non-numeric or
  /// empty columns). The last bucket is closed so `max` lands inside.
  std::vector<size_t> histogram;

  /// Estimated fraction of cells strictly below `bound` (linear
  /// interpolation inside the containing bucket). Requires `numeric` and a
  /// non-empty histogram; callers fall back to a default otherwise.
  double FractionBelow(double bound) const;
};

class Table {
 public:
  Table(std::string name, Schema schema, std::vector<Row> rows);
  /// Deregisters from the BufferManager (accounting entry + spill file).
  ~Table();

  // Copies/moves carry the caches but get a fresh mutex (a mutex is not
  // movable). Tables are immutable, so a copy keeps the source's uid: the
  // uid's only job is to never alias *different* data.
  Table(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(const Table&) = delete;
  Table& operator=(Table&&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }

  /// Process-unique identity, never reused. Cache keys use this instead of
  /// the Table* address: an address can be recycled by the allocator after
  /// a free (silently aliasing a stale cache entry), a uid cannot.
  uint64_t uid() const { return uid_; }

  /// Frequency of the most frequent value in `column` — the dataset
  /// metadata FLEX multiplies across joins (paper §II-B). Computed on
  /// first use and cached (metadata maintenance, as a real catalog would).
  /// Thread-safe: FLEX analysis and plan execution may share a catalog
  /// across pool threads.
  size_t MaxFrequency(const std::string& column) const;

  /// Number of distinct values in `column`. Thread-safe.
  size_t DistinctCount(const std::string& column) const;

  /// Full statistics for `column` (ndv, max frequency, min/max, histogram).
  /// Computed on first use and memoized under the same cache discipline as
  /// MaxFrequency/DistinctCount. Thread-safe.
  ColumnStats Stats(const std::string& column) const;

  /// The columnar representation (relational/columnar.h): one typed vector
  /// per column, strings dictionary-encoded. Built on first use (or
  /// reloaded bit-identically from a BufferManager spill file when this
  /// table was evicted under memory pressure), cached, and registered with
  /// the BufferManager's budget. Thread-safe.
  std::shared_ptr<const ColumnarTable> Columnar() const;

  /// Drops the memoized columnar form and column statistics and releases
  /// their bytes from the BufferManager budget. Shared_ptr copies held by
  /// in-flight queries stay valid; the next Columnar() call re-materializes
  /// (from spill if one exists). Thread-safe.
  void ReleaseCaches() const;

  /// Bytes currently held by this table's caches: the resident columnar
  /// payload plus the memoized column statistics. Thread-safe.
  size_t CachedBytes() const;

 private:
  friend class BufferManager;

  ColumnStats StatsFor(const std::string& column) const;

  /// BufferManager eviction hook: drops the columnar form iff nothing else
  /// holds it (use_count == 1 under cache_mu_ — new references are only
  /// created under the same lock, so the check cannot race an acquisition),
  /// optionally spilling it to `spill_path` first. Returns the bytes freed
  /// (0 when pinned or not materialized); `*spilled` reports whether the
  /// spill file was written successfully.
  size_t EvictColumnar(const std::string& spill_path, bool* spilled) const;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  uint64_t uid_;
  /// Guards stats_cache_ and columnar_ (first-use memoization).
  mutable std::mutex cache_mu_;
  mutable std::map<std::string, ColumnStats> stats_cache_;
  mutable std::shared_ptr<const ColumnarTable> columnar_;
};

/// Name → table lookup used by plan execution and FLEX analysis.
using Catalog = std::map<std::string, const Table*>;

}  // namespace upa::rel
