file(REMOVE_RECURSE
  "CMakeFiles/engine_dataset_test.dir/engine_dataset_test.cpp.o"
  "CMakeFiles/engine_dataset_test.dir/engine_dataset_test.cpp.o.d"
  "engine_dataset_test"
  "engine_dataset_test.pdb"
  "engine_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
