#include "mlkit/datagen.h"

#include "common/status.h"

namespace upa::ml {

MlDataset::MlDataset(MlDataConfig config) : config_(config) {
  UPA_CHECK_MSG(config_.dims > 0, "dims must be positive");
  UPA_CHECK_MSG(config_.mixture_components > 0,
                "mixture needs at least one component");
  Rng rng = Rng::ForStream(config_.seed, "ml/datagen");

  means_.resize(config_.mixture_components);
  for (auto& mean : means_) {
    mean.resize(config_.dims);
    for (double& m : mean) {
      m = rng.UniformDouble(-config_.cluster_spacing, config_.cluster_spacing);
    }
  }

  true_weights_.resize(config_.dims);
  for (double& w : true_weights_) w = rng.UniformDouble(-2.0, 2.0);
  true_bias_ = rng.UniformDouble(-1.0, 1.0);

  auto points = std::make_shared<std::vector<MlPoint>>();
  points->reserve(config_.num_points);
  for (size_t i = 0; i < config_.num_points; ++i) {
    points->push_back(DrawPoint(rng));
  }
  points_ = std::move(points);
}

MlPoint MlDataset::DrawPoint(Rng& rng) const {
  const auto& mean = means_[rng.UniformU64(means_.size())];
  MlPoint p;
  p.x.resize(config_.dims);
  double dot = true_bias_;
  for (size_t d = 0; d < config_.dims; ++d) {
    p.x[d] = rng.Normal(mean[d], config_.cluster_stddev);
    dot += true_weights_[d] * p.x[d];
  }
  p.y = dot + rng.Normal(0.0, config_.response_noise);
  return p;
}

MlPoint MlDataset::SamplePoint(Rng& rng) const { return DrawPoint(rng); }

}  // namespace upa::ml
