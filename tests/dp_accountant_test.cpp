#include "dp/accountant.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace upa::dp {
namespace {

TEST(AccountantTest, ChargesWithinBudget) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.4).ok());
  EXPECT_TRUE(acc.Charge("ds", 0.4).ok());
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.8);
  EXPECT_NEAR(acc.Remaining("ds"), 0.2, 1e-12);
}

TEST(AccountantTest, RejectsOverBudget) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.9).ok());
  Status s = acc.Charge("ds", 0.2);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  // Failed charge must not consume budget.
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.9);
}

TEST(AccountantTest, ExactBudgetBoundaryAllowed) {
  PrivacyAccountant acc(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(acc.Charge("ds", 0.1).ok()) << "charge " << i;
  }
  EXPECT_FALSE(acc.Charge("ds", 0.01).ok());
}

TEST(AccountantTest, DatasetsHaveIndependentBudgets) {
  PrivacyAccountant acc(0.5);
  EXPECT_TRUE(acc.Charge("a", 0.5).ok());
  EXPECT_TRUE(acc.Charge("b", 0.5).ok());
  EXPECT_FALSE(acc.Charge("a", 0.1).ok());
}

TEST(AccountantTest, RejectsNonPositiveEpsilon) {
  PrivacyAccountant acc(1.0);
  EXPECT_EQ(acc.Charge("ds", 0.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(acc.Charge("ds", -0.1).code(), StatusCode::kInvalidArgument);
}

TEST(AccountantTest, UnknownDatasetHasZeroSpent) {
  PrivacyAccountant acc(2.0);
  EXPECT_DOUBLE_EQ(acc.Spent("never-seen"), 0.0);
  EXPECT_DOUBLE_EQ(acc.Remaining("never-seen"), 2.0);
}

TEST(AccountantTest, RemainingNeverGoesNegative) {
  // The 1e-12 acceptance slack in Charge lets Spent exceed the budget by a
  // hair; Remaining must clamp the tiny negative difference to 0.
  PrivacyAccountant acc(0.3);
  EXPECT_TRUE(acc.Charge("ds", 0.1).ok());
  EXPECT_TRUE(acc.Charge("ds", 0.1).ok());
  EXPECT_TRUE(acc.Charge("ds", 0.1).ok());  // float sum 0.30000000000000004
  EXPECT_GE(acc.Remaining("ds"), 0.0);
}

TEST(AccountantTest, RefundRestoresBudget) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.6).ok());
  EXPECT_TRUE(acc.Refund("ds", 0.6).ok());
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.0);
  // The refunded budget is spendable again.
  EXPECT_TRUE(acc.Charge("ds", 1.0).ok());
}

TEST(AccountantTest, RefundIsBoundedBySpent) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.2).ok());
  EXPECT_TRUE(acc.Refund("ds", 5.0).ok());  // clamped, can't mint budget
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.0);
  EXPECT_DOUBLE_EQ(acc.Remaining("ds"), 1.0);
}

TEST(AccountantTest, RefundRejectsUnknownDatasetAndBadEpsilon) {
  PrivacyAccountant acc(1.0);
  EXPECT_EQ(acc.Refund("never-charged", 0.1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(acc.Charge("ds", 0.5).ok());
  EXPECT_EQ(acc.Refund("ds", 0.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(acc.Refund("ds", -0.1).code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(acc.Spent("ds"), 0.5);  // failed refunds change nothing
}

TEST(AccountantTest, CheckpointTracksChargedAndRefundedTotals) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge("ds", 0.3).ok());
  EXPECT_TRUE(acc.Charge("ds", 0.2).ok());
  EXPECT_TRUE(acc.Refund("ds", 0.2).ok());
  BudgetCheckpoint cp = acc.Checkpoint("ds");
  EXPECT_DOUBLE_EQ(cp.charged_total, 0.5);
  EXPECT_DOUBLE_EQ(cp.refunded_total, 0.2);
  EXPECT_DOUBLE_EQ(cp.spent, 0.3);
  // Failed charges must not appear in the ledger.
  EXPECT_FALSE(acc.Charge("ds", 5.0).ok());
  EXPECT_DOUBLE_EQ(acc.Checkpoint("ds").charged_total, 0.5);
  // Unknown datasets read as an all-zero ledger.
  BudgetCheckpoint fresh = acc.Checkpoint("never-seen");
  EXPECT_DOUBLE_EQ(fresh.spent, 0.0);
  EXPECT_DOUBLE_EQ(fresh.charged_total, 0.0);
  EXPECT_DOUBLE_EQ(fresh.refunded_total, 0.0);
}

TEST(AccountantTest, VerifyConservationHoldsThroughChargeRefundCycles) {
  PrivacyAccountant acc(2.0);
  EXPECT_TRUE(acc.VerifyConservation().ok());  // empty accountant
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(acc.Charge("a", 0.07).ok());
    if (i % 3 != 0) ASSERT_TRUE(acc.Refund("a", 0.07).ok());
    ASSERT_TRUE(acc.Charge("b", 0.01).ok());
    ASSERT_TRUE(acc.VerifyConservation().ok()) << "iteration " << i;
  }
  BudgetCheckpoint cp = acc.Checkpoint("a");
  EXPECT_NEAR(cp.spent, cp.charged_total - cp.refunded_total, 1e-12);
}

TEST(AccountantTest, RestoreLedgerRebuildsSpentFromTotals) {
  // Recovery overwrites the ledger with journaled totals; the live balance
  // is charged − refunded by construction, and conservation must hold on
  // the restored state.
  PrivacyAccountant acc(1.0);
  acc.RestoreLedger("ds", 0.55, 0.15);
  BudgetCheckpoint cp = acc.Checkpoint("ds");
  EXPECT_DOUBLE_EQ(cp.charged_total, 0.55);
  EXPECT_DOUBLE_EQ(cp.refunded_total, 0.15);
  EXPECT_DOUBLE_EQ(cp.spent, 0.40);
  EXPECT_TRUE(acc.VerifyConservation().ok());
  // The restored balance composes with new charges.
  EXPECT_TRUE(acc.Charge("ds", 0.6).ok());
  EXPECT_FALSE(acc.Charge("ds", 0.1).ok());
}

TEST(AccountantTest, FailedRunAfterChargeRefundsExactlyOnce) {
  // Regression for the service's two-phase contract: a run that fails (or
  // is cancelled) after Charge refunds exactly once. A double refund would
  // show up here as refunded_total > charged_total — which conservation
  // rejects — and as minted budget.
  PrivacyAccountant acc(1.0);
  ASSERT_TRUE(acc.Charge("ds", 0.4).ok());
  ASSERT_TRUE(acc.Refund("ds", 0.4).ok());  // the one refund
  BudgetCheckpoint cp = acc.Checkpoint("ds");
  EXPECT_DOUBLE_EQ(cp.spent, 0.0);
  EXPECT_DOUBLE_EQ(cp.refunded_total, 0.4);
  EXPECT_TRUE(acc.VerifyConservation().ok());
  // A second refund of the same charge is clamped to spent (0): it cannot
  // mint budget, and the audit still balances because the clamped amount
  // is what lands in refunded_total.
  ASSERT_TRUE(acc.Refund("ds", 0.4).ok());
  cp = acc.Checkpoint("ds");
  EXPECT_DOUBLE_EQ(cp.spent, 0.0);
  EXPECT_DOUBLE_EQ(cp.refunded_total, 0.4);  // clamp kept the ledger honest
  EXPECT_TRUE(acc.VerifyConservation().ok());
  EXPECT_TRUE(acc.Charge("ds", 1.0).ok());   // full budget, nothing minted
}

TEST(AccountantTest, ChargeRefundTwoPhaseUnderConcurrency) {
  // Failed work refunds its charge; the net spend must equal only the
  // successful (non-refunded) charges regardless of interleaving.
  PrivacyAccountant acc(8.0);
  std::vector<std::thread> threads;
  std::atomic<int> kept{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        if (!acc.Charge("ds", 0.01).ok()) continue;
        if ((t + i) % 2 == 0) {
          ASSERT_TRUE(acc.Refund("ds", 0.01).ok());
        } else {
          kept.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_NEAR(acc.Spent("ds"), kept.load() * 0.01, 1e-9);
}

TEST(AccountantTest, ConcurrentChargesNeverOverspend) {
  PrivacyAccountant acc(1.0);
  std::vector<std::thread> threads;
  std::atomic<int> granted{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (acc.Charge("ds", 0.01).ok()) granted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(acc.Spent("ds"), 1.0 + 1e-9);
  EXPECT_EQ(granted.load(), 100);  // exactly 100 x 0.01 fit in 1.0
}

}  // namespace
}  // namespace upa::dp
