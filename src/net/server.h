// TCP front door for UpaService: non-blocking acceptor + wire-protocol
// connections on a single-threaded EventLoop.
//
// Threading contract (DESIGN.md §8):
//   - the LOOP THREAD owns the listen socket and every connection: it
//     accepts, reads, frames, decodes, and writes. It never runs a query.
//   - decoded requests are handed to UpaService::SubmitAsync; the release
//     pipeline runs on the ENGINE POOL. The completion callback encodes
//     the response on the pool thread and posts the bytes back to the
//     loop with RunInLoop — the only cross-thread entry point.
//
// Protection at the socket boundary:
//   - max_connections: surplus accepts are closed immediately,
//   - max_frame_bytes: an oversize length prefix is rejected before any
//     buffering commitment (kError frame, then close — a corrupt
//     length-prefixed stream cannot be resynchronised),
//   - max_pipelined_per_connection: surplus queries are answered with
//     RESOURCE_EXHAUSTED instead of queued without bound,
//   - write backpressure: a connection whose outbound buffer exceeds
//     write_buffer_high_bytes stops being read until it drains,
//   - idle timeout: a connection with no readable bytes, no queued
//     responses and nothing in flight for idle_timeout_ms is reaped,
//   - client disconnect mid-request: every in-flight request holds a
//     CancelToken the server trips on close, so the service aborts the
//     run at the next cooperative check and refunds the charge,
//   - per-request deadlines ride the wire (WireQuery::deadline_ms) into
//     QueryRequest::deadline_ms — the same CancelToken machinery.
//
// Fault sites (chaos suite): "net/accept", "net/read", "net/write",
// "net/decode" — an injected error behaves as a transport failure on that
// connection (closed, in-flight work cancelled); an abort action kills the
// process for crash-recovery tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/event_loop.h"
#include "net/wire.h"
#include "service/service.h"

namespace upa::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  /// Open-connection cap; surplus accepts are closed on arrival.
  size_t max_connections = 256;
  /// Frame payload cap enforced before buffering (see wire.h).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// In-flight queries per connection; surplus get RESOURCE_EXHAUSTED.
  size_t max_pipelined_per_connection = 64;
  /// Outbound-buffer high watermark: above it the connection's reads are
  /// paused until the buffer fully drains (write backpressure).
  size_t write_buffer_high_bytes = 4u << 20;
  /// Reap connections with no activity (bytes, responses, in-flight work)
  /// for this long. 0 disables.
  double idle_timeout_ms = 0.0;
  /// Granularity of the idle scan.
  double tick_interval_ms = 20.0;
  /// Graceful-drain bound for Stop(): how long to wait for in-flight
  /// queries to complete and response buffers to flush before closing.
  double drain_timeout_ms = 5000.0;
  PollerKind poller = PollerKind::kEpoll;
};

/// Compiles a decoded wire query into the QueryInstance the service runs.
/// This is the only query-semantics hook the server has: the SQL example
/// wires parse→plan→MakePlanQuery here; tests wire toy count queries. Runs
/// on the loop thread — keep it cheap or move heavy compilation into the
/// QueryInstance's execute_phases.
using QueryCompiler =
    std::function<Result<core::QueryInstance>(const WireQuery&)>;

class Server {
 public:
  /// `service` and `compiler` must outlive the server.
  Server(service::UpaService* service, QueryCompiler compiler,
         ServerConfig config = {});
  /// Stops (gracefully draining) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the loop thread. kInvalidArgument for a bad
  /// config, kInternal for socket failures.
  Status Start();

  /// Graceful shutdown: stop accepting, wait (≤ drain_timeout_ms) for
  /// in-flight queries and response buffers, then close everything and
  /// join the loop thread. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected_connections = 0;  // over max_connections / failpoint
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
    uint64_t protocol_errors = 0;  // bad frames / payloads (incl. oversize)
    uint64_t disconnect_cancels = 0;  // in-flight tokens tripped on close
    uint64_t idle_closed = 0;
    uint64_t open_connections = 0;
  };
  Stats stats() const;

  /// Human-readable "== net ==" block appended to /stats responses.
  std::string StatsText() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameAssembler assembler;
    std::string write_buffer;
    size_t write_offset = 0;
    bool want_write = false;
    bool reads_paused = false;
    bool close_after_flush = false;
    int64_t last_activity_ns = 0;
    /// In-flight request cancel handles, keyed by server-side sequence
    /// number (client_tags may collide; these never do).
    std::map<uint64_t, std::shared_ptr<CancelToken>> inflight;

    explicit Connection(size_t max_frame_bytes)
        : assembler(max_frame_bytes) {}
  };

  /// Liveness bridge between pool-thread completions and the loop: the
  /// callback takes the lock, and posts only while `loop` is non-null.
  /// ~Server nulls it before tearing the loop down. pending_requests lives
  /// here (not on the Server) because a completion that loses the drain
  /// race still decrements it after ~Server has finished — the shared_ptr
  /// keeps the Mailbox alive; nothing else would keep the Server alive.
  struct Mailbox {
    std::mutex mu;
    EventLoop* loop = nullptr;
    std::atomic<uint64_t> pending_requests{0};
  };

  // All of the below run on the loop thread.
  void HandleAccept();
  void HandleReadable(uint64_t conn_id);
  void HandleWritable(uint64_t conn_id);
  void ProcessFrames(Connection& conn);
  void DispatchQuery(Connection& conn, WireQuery query);
  void QueueWrite(Connection& conn, std::string bytes);
  void TryFlush(Connection& conn);
  void UpdateInterest(Connection& conn);
  void CloseConnection(uint64_t conn_id, bool cancel_inflight);
  /// Queues an error frame and marks the connection close-after-flush.
  /// May destroy the Connection before returning (hard flush failure);
  /// callers must not touch `conn` afterwards.
  void AbortConnection(Connection& conn, const Status& error);
  void OnTick();
  /// Completion re-entry: response bytes for (conn_id, seq).
  void CompleteRequest(uint64_t conn_id, uint64_t seq, std::string bytes);

  service::UpaService* service_;
  QueryCompiler compiler_;
  ServerConfig config_;

  EventLoop loop_;
  std::shared_ptr<Mailbox> mailbox_;
  std::thread loop_thread_;
  bool started_ = false;
  bool stopped_ = false;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  uint64_t next_conn_id_ = 1;  // loop thread only
  uint64_t next_req_seq_ = 1;  // loop thread only
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;

  // Drain/observability counters (mixed-thread readers). The in-flight
  // request count lives in Mailbox::pending_requests — see Mailbox.
  std::atomic<uint64_t> unflushed_bytes_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_connections_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> disconnect_cancels_{0};
  std::atomic<uint64_t> idle_closed_{0};
  std::atomic<uint64_t> open_connections_{0};
};

}  // namespace upa::net
