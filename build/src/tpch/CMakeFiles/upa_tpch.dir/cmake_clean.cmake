file(REMOVE_RECURSE
  "CMakeFiles/upa_tpch.dir/generator.cpp.o"
  "CMakeFiles/upa_tpch.dir/generator.cpp.o.d"
  "CMakeFiles/upa_tpch.dir/queries.cpp.o"
  "CMakeFiles/upa_tpch.dir/queries.cpp.o.d"
  "libupa_tpch.a"
  "libupa_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
