file(REMOVE_RECURSE
  "CMakeFiles/relational_optimizer_test.dir/relational_optimizer_test.cpp.o"
  "CMakeFiles/relational_optimizer_test.dir/relational_optimizer_test.cpp.o.d"
  "relational_optimizer_test"
  "relational_optimizer_test.pdb"
  "relational_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
