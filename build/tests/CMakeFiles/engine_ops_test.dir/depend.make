# Empty dependencies file for engine_ops_test.
# This may be replaced when dependencies are built.
