#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "common/failpoint.h"
#include "common/hash.h"

namespace upa::service {

Status ValidateServiceConfig(const ServiceConfig& config) {
  if (config.max_in_flight == 0) {
    return Status::InvalidArgument(
        "ServiceConfig::max_in_flight must be positive (0 would admit "
        "nothing)");
  }
  if (config.max_queue_per_tenant == 0) {
    return Status::InvalidArgument(
        "ServiceConfig::max_queue_per_tenant must be positive (0 would "
        "reject every submission)");
  }
  if (!std::isfinite(config.budget_per_dataset) ||
      config.budget_per_dataset < 0.0) {
    return Status::InvalidArgument(
        "ServiceConfig::budget_per_dataset must be finite and >= 0, got " +
        std::to_string(config.budget_per_dataset));
  }
  if (!std::isfinite(config.watchdog_interval_ms) ||
      config.watchdog_interval_ms < 0.0) {
    return Status::InvalidArgument(
        "ServiceConfig::watchdog_interval_ms must be finite and >= 0, got " +
        std::to_string(config.watchdog_interval_ms));
  }
  return Status::Ok();
}

bool UpaService::SensitivityCache::Lookup(const Key& key,
                                          core::SensitivityHint* out) {
  auto it = index.find(key);
  if (it == index.end()) return false;
  entries.splice(entries.begin(), entries, it->second);
  *out = entries.front().second;
  return true;
}

void UpaService::SensitivityCache::Insert(const Key& key,
                                          const core::SensitivityHint& hint,
                                          size_t capacity) {
  if (capacity == 0) return;
  auto it = index.find(key);
  if (it != index.end()) {
    it->second->second = hint;
    entries.splice(entries.begin(), entries, it->second);
    return;
  }
  entries.emplace_front(key, hint);
  index[key] = entries.begin();
  while (entries.size() > capacity) {
    index.erase(entries.back().first);
    entries.pop_back();
  }
}

void UpaService::SensitivityCache::Clear() {
  entries.clear();
  index.clear();
}

UpaService::UpaService(engine::ExecContext* ctx, ServiceConfig config)
    : ctx_(ctx),
      config_(std::move(config)),
      accountant_(config_.budget_per_dataset) {
  UPA_CHECK(ctx_ != nullptr);
  // A bad config makes the service inert (every submission fails with
  // kInvalidArgument) instead of aborting the process: the front door may
  // be constructing it from untrusted operator input.
  config_status_ = ValidateServiceConfig(config_);
  if (!config_status_.ok()) return;

  if (!config_.journal_dir.empty()) {
    // Recover every dataset the journal dir knows about, compacting each
    // into a fresh snapshot (replay work done once per crash, not once
    // per restart), then resume the in-memory state from it.
    auto recovered_or = RecoverAll(config_.journal_dir, /*compact=*/true,
                                   config_.journal_fsync);
    if (!recovered_or.ok()) {
      recovery_status_ = recovered_or.status();
      ctx_->metrics().AddCounter("service/journal_errors");
    } else {
      for (auto& state : recovered_or.value()) {
        auto ds = std::make_shared<DatasetState>();
        ds->epoch = state.epoch;
        ds->enforcer->RestoreRegistry(std::move(state.registry));
        accountant_.RestoreLedger(state.dataset_id, state.charged_total,
                                  state.refunded_total);
        auto journal_or = Journal::Open(config_.journal_dir, state.dataset_id,
                                        config_.journal_fsync);
        if (journal_or.ok()) {
          ds->journal = std::move(journal_or).value();
        } else {
          ds->journal_status = journal_or.status();
          ctx_->metrics().AddCounter("service/journal_errors");
        }
        ctx_->metrics().AddCounter("service/recovered_datasets");
        ctx_->metrics().AddCounter("service/recovered_refunds",
                                   state.recovered_refunds.size());
        std::lock_guard<std::mutex> lock(datasets_mu_);
        datasets_[state.dataset_id] = std::move(ds);
      }
    }
  }

  if (config_.watchdog_interval_ms > 0.0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

UpaService::~UpaService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    idle_cv_.wait(lock, [this] {
      if (in_flight_ > 0) return false;
      for (const auto& [name, tenant] : tenants_) {
        if (!tenant.queue.empty()) return false;
      }
      return true;
    });
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void UpaService::CountCancelMetric(StatusCode code) {
  if (code == StatusCode::kDeadlineExceeded) {
    ctx_->metrics().AddCounter("service/deadline_exceeded");
  } else {
    ctx_->metrics().AddCounter("service/cancelled");
  }
}

void UpaService::Resolve(Pending& pending, Result<QueryResponse> result) {
  if (pending.done) {
    pending.done(std::move(result));
  } else {
    pending.promise.set_value(std::move(result));
  }
}

std::future<Result<QueryResponse>> UpaService::Submit(QueryRequest request) {
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  std::future<Result<QueryResponse>> future = pending->promise.get_future();
  Enqueue(std::move(pending));
  return future;
}

void UpaService::SubmitAsync(QueryRequest request, Callback done) {
  UPA_CHECK(done != nullptr);
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->done = std::move(done);
  Enqueue(std::move(pending));
}

void UpaService::Enqueue(std::shared_ptr<Pending> pending) {
  if (!config_status_.ok()) {
    Resolve(*pending, config_status_);
    return;
  }

  // Admission fault site (chaos suite): an injected error here must look
  // exactly like any other rejection — immediate resolution, no charge.
  if (Failpoints::Instance().AnyActive()) {
    Status injected = Failpoints::Instance().Evaluate("service/admit");
    if (!injected.ok()) {
      ctx_->metrics().AddCounter("service/rejected");
      Resolve(*pending, injected);
      return;
    }
  }

  QueryRequest& req = pending->request;
  if (req.cancel != nullptr || req.deadline_ms > 0) {
    pending->token =
        req.cancel != nullptr ? req.cancel : std::make_shared<CancelToken>();
    if (req.deadline_ms > 0) {
      pending->token->SetDeadlineAfterMillis(req.deadline_ms);
    }
    // Dead on arrival (caller cancelled before submitting, or a
    // non-positive effective deadline): fail without queueing.
    Status st = pending->token->Check();
    if (!st.ok()) {
      CountCancelMetric(st.code());
      Resolve(*pending, st);
      return;
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (shutting_down_) {
    lock.unlock();
    Resolve(*pending,
            Status::FailedPrecondition("service is shutting down"));
    return;
  }
  TenantState& tenant = tenants_[pending->request.tenant];
  if (tenant.queue.size() >= config_.max_queue_per_tenant) {
    ++tenant.rejected;
    lock.unlock();
    ctx_->metrics().AddCounter("service/rejected");
    Resolve(*pending, Status::ResourceExhausted(
                          "tenant '" + pending->request.tenant +
                          "' backlog full (" +
                          std::to_string(config_.max_queue_per_tenant) +
                          " queued)"));
    return;
  }
  ++tenant.submitted;
  tenant.queue.push_back(std::move(pending));
  MaybeDispatchLocked();
}

Result<QueryResponse> UpaService::Execute(QueryRequest request) {
  return Submit(std::move(request)).get();
}

void UpaService::MaybeDispatchLocked() {
  // One pass per free slot: pick the next runnable tenant in name order.
  // A tenant is runnable when it has queued work, nothing of its own in
  // flight (keeps the tenant FIFO), and its head request's dataset is not
  // in flight either (serializes each dataset's release path at dispatch
  // time — no lock is held across the run itself).
  bool dispatched = true;
  while (in_flight_ < config_.max_in_flight && dispatched) {
    dispatched = false;
    for (auto& [name, tenant] : tenants_) {
      if (tenant.running || tenant.queue.empty()) continue;
      const std::string& dataset = tenant.queue.front()->request.dataset_id;
      if (busy_datasets_.count(dataset) > 0) continue;
      std::shared_ptr<Pending> pending = std::move(tenant.queue.front());
      tenant.queue.pop_front();
      tenant.running = true;
      busy_datasets_.insert(dataset);
      ++in_flight_;
      dispatched = true;
      std::string tenant_name = name;
      ctx_->pool().Submit([this, pending, tenant_name] {
        double queue_seconds = pending->queued.ElapsedSeconds();
        ctx_->metrics().RecordLatency("service/queue", queue_seconds);
        Result<QueryResponse> result = RunOne(*pending, queue_seconds);
        {
          std::lock_guard<std::mutex> lock(mu_);
          TenantState& t = tenants_[tenant_name];
          t.running = false;
          ++t.completed;
          busy_datasets_.erase(pending->request.dataset_id);
          --in_flight_;
          MaybeDispatchLocked();
          idle_cv_.notify_all();
        }
        // After the bookkeeping above the service may be destroyed at any
        // time; `pending` is self-owned, so resolving the outcome is safe.
        Resolve(*pending, std::move(result));
      });
      if (in_flight_ >= config_.max_in_flight) break;
    }
  }
}

void UpaService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(
            config_.watchdog_interval_ms),
        [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;

    // Prune queued requests whose token tripped: they fail now instead of
    // waiting for a dispatch slot they can no longer use. In-flight
    // requests need no help — their runs poll the same token at every
    // cooperative check.
    std::vector<std::shared_ptr<Pending>> expired;
    for (auto& [name, tenant] : tenants_) {
      for (auto it = tenant.queue.begin(); it != tenant.queue.end();) {
        Pending& p = **it;
        if (p.token != nullptr && !p.token->Check().ok()) {
          ++tenant.cancelled;
          expired.push_back(std::move(*it));
          it = tenant.queue.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!expired.empty()) {
      idle_cv_.notify_all();  // the destructor waits on empty queues
      lock.unlock();
      for (auto& p : expired) {
        Status st = p->token->status();
        CountCancelMetric(st.code());
        Resolve(*p, st);
      }
      lock.lock();
    }
  }
}

std::shared_ptr<UpaService::DatasetState> UpaService::DatasetFor(
    const std::string& dataset_id) {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto& slot = datasets_[dataset_id];
  if (!slot) {
    slot = std::make_shared<DatasetState>();
    if (!config_.journal_dir.empty()) {
      auto journal_or = Journal::Open(config_.journal_dir, dataset_id,
                                      config_.journal_fsync);
      if (journal_or.ok()) {
        slot->journal = std::move(journal_or).value();
      } else {
        slot->journal_status = journal_or.status();
        ctx_->metrics().AddCounter("service/journal_errors");
      }
    }
  }
  return slot;
}

Result<QueryResponse> UpaService::RunOne(Pending& pending,
                                         double queue_seconds) {
  QueryRequest& request = pending.request;
  Stopwatch total;
  engine::ExecMetrics& metrics = ctx_->metrics();
  metrics.AddCounter("service/queries");
  UPA_FAILPOINT("service/run");

  // Install the request's token for this thread; ParallelFor re-installs
  // it inside every chunk task, so the whole run tree sees it.
  CancelToken* token = pending.token.get();
  CancelScope cancel_scope(token);

  // Pre-flight: a query that expired in the queue is failed before any
  // charge, so there is nothing to refund.
  Status pre = CancelScope::CheckCurrent();
  if (!pre.ok()) {
    CountCancelMetric(pre.code());
    return pre;
  }

  // The dispatcher admits one request per dataset at a time, so from here
  // to return the dataset's budget, registry and cache see no concurrent
  // release. ds->mu is taken only for short epoch/cache sections — never
  // across the run (see DatasetState::mu).
  std::shared_ptr<DatasetState> ds = DatasetFor(request.dataset_id);
  if (!config_.journal_dir.empty() && ds->journal == nullptr) {
    // Durability was requested but this dataset's journal is broken:
    // failing the query is the conservative choice (running it would
    // silently lose the mutation on restart).
    metrics.AddCounter("service/journal_errors");
    return ds->journal_status.ok()
               ? Status::Internal("journal unavailable for '" +
                                  request.dataset_id + "'")
               : ds->journal_status;
  }

  Status charged = accountant_.Charge(request.dataset_id, request.epsilon);
  if (!charged.ok()) {
    metrics.AddCounter("service/budget_denied");
    return charged;
  }

  // Two-phase + journal: the charge is durable before the run starts; a
  // crash from here on leaves a dangling charge that recovery refunds.
  uint64_t qid = next_qid_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ds->journal != nullptr) {
    JournalRecord rec;
    rec.type = JournalRecord::Type::kCharge;
    rec.qid = qid;
    rec.epsilon = request.epsilon;
    Status journaled = ds->journal->Append(rec);
    if (!journaled.ok()) {
      accountant_.Refund(request.dataset_id, request.epsilon);
      metrics.AddCounter("service/refunds");
      metrics.AddCounter("service/journal_errors");
      return journaled;
    }
  }

  uint64_t fingerprint = request.fingerprint != 0
                             ? request.fingerprint
                             : Fnv1a(request.query.name);
  SensitivityCache::Key key{0, 0};
  core::SensitivityHint hint;
  bool cache_hit = false;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> ds_lock(ds->mu);
    epoch = ds->epoch;
    key = {fingerprint, epoch};
    cache_hit = ds->cache.Lookup(key, &hint);
  }
  metrics.AddCounter(cache_hit ? "service/sens_cache_hit"
                               : "service/sens_cache_miss");

  core::UpaConfig upa_config = config_.upa;
  upa_config.epsilon = request.epsilon;
  core::UpaRunner runner(upa_config);
  runner.share_enforcer(ds->enforcer);

  Result<core::UpaRunResult> run =
      runner.Run(request.query, request.seed, cache_hit ? &hint : nullptr);
  if (!run.ok()) {
    // Nothing was released — the runner's last cancellation check sits
    // before the enforcer Register — so the budget is handed back
    // (two-phase charge), durable before the caller learns the outcome.
    accountant_.Refund(request.dataset_id, request.epsilon);
    metrics.AddCounter("service/refunds");
    StatusCode code = run.status().code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      CountCancelMetric(code);
    }
    if (ds->journal != nullptr) {
      JournalRecord rec;
      rec.type = JournalRecord::Type::kRefund;
      rec.qid = qid;
      rec.epsilon = request.epsilon;
      if (!ds->journal->Append(rec).ok()) {
        // The refund record was lost, so the journal shows a dangling
        // charge — which recovery refunds. Disk and memory agree either
        // way; just count it.
        metrics.AddCounter("service/journal_errors");
      }
    }
    return run.status();
  }
  const core::UpaRunResult& result = run.value();

  if (ds->journal != nullptr) {
    // The release becomes durable BEFORE the response resolves: an
    // unacknowledged release must look like it never happened, and an
    // acknowledged one must survive a crash.
    JournalRecord rec;
    rec.type = JournalRecord::Type::kRelease;
    rec.qid = qid;
    rec.epsilon = request.epsilon;
    rec.partition_outputs = result.partition_outputs;
    Status journaled = ds->journal->Append(rec);
    if (!journaled.ok()) {
      // The analyst never sees this output (we return the error), so the
      // charge is refunded. The in-memory registry keeps the stray prior
      // until restart — strictly conservative: an extra prior can only
      // trigger more enforcement, never less.
      accountant_.Refund(request.dataset_id, request.epsilon);
      metrics.AddCounter("service/refunds");
      metrics.AddCounter("service/journal_errors");
      JournalRecord refund;
      refund.type = JournalRecord::Type::kRefund;
      refund.qid = qid;
      refund.epsilon = request.epsilon;
      (void)ds->journal->Append(refund);
      return journaled;
    }
  }

  {
    std::lock_guard<std::mutex> ds_lock(ds->mu);
    // Fill the cache only if the data didn't change mid-run: a BumpEpoch
    // that raced the run makes this sensitivity stale on arrival.
    if (!cache_hit && ds->epoch == epoch) {
      ds->cache.Insert(key,
                       core::SensitivityHint{result.local_sensitivity,
                                             result.out_range,
                                             result.degenerate_sensitivity},
                       config_.sensitivity_cache_capacity);
    }
    ++ds->queries;
  }
  if (result.enforcer.attack_suspected) {
    metrics.AddCounter("service/attacks_suspected");
  }

  QueryResponse response;
  response.released = result.released_output;
  response.epsilon = request.epsilon;
  response.local_sensitivity = result.local_sensitivity;
  response.out_range = result.out_range;
  response.attack_suspected = result.enforcer.attack_suspected;
  response.records_removed = result.enforcer.records_removed;
  response.degenerate_sensitivity = result.degenerate_sensitivity;
  response.sensitivity_cache_hit = cache_hit;
  response.dataset_epoch = epoch;
  response.queue_seconds = queue_seconds;
  response.seconds = result.seconds;

  metrics.RecordLatency("upa/sample", result.seconds.sample);
  metrics.RecordLatency("upa/map", result.seconds.map);
  metrics.RecordLatency("upa/reduce", result.seconds.reduce);
  metrics.RecordLatency("upa/enforce", result.seconds.enforce);
  metrics.RecordLatency("service/total", total.ElapsedSeconds());
  return response;
}

void UpaService::BumpEpoch(const std::string& dataset_id) {
  std::shared_ptr<DatasetState> ds = DatasetFor(dataset_id);
  std::lock_guard<std::mutex> lock(ds->mu);
  ++ds->epoch;
  // Stale epochs can never be queried again; drop their entries now
  // instead of waiting for LRU pressure.
  ds->cache.Clear();
  if (ds->journal != nullptr) {
    JournalRecord rec;
    rec.type = JournalRecord::Type::kEpochBump;
    rec.epoch = ds->epoch;
    if (!ds->journal->Append(rec).ok()) {
      // A lost bump record only under-counts the epoch after restart; the
      // sensitivity cache starts empty then, so no stale hint can be
      // served. Count it and move on.
      ctx_->metrics().AddCounter("service/journal_errors");
    }
  }
}

uint64_t UpaService::Epoch(const std::string& dataset_id) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto it = datasets_.find(dataset_id);
  if (it == datasets_.end()) return 0;
  std::lock_guard<std::mutex> ds_lock(it->second->mu);
  return it->second->epoch;
}

size_t UpaService::CachedSensitivities(const std::string& dataset_id) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto it = datasets_.find(dataset_id);
  if (it == datasets_.end()) return 0;
  std::lock_guard<std::mutex> ds_lock(it->second->mu);
  return it->second->cache.size();
}

UpaService::DatasetDurableDebug UpaService::DebugState(
    const std::string& dataset_id) {
  std::shared_ptr<DatasetState> ds = DatasetFor(dataset_id);
  DatasetDurableDebug debug;
  {
    std::lock_guard<std::mutex> ds_lock(ds->mu);
    debug.epoch = ds->epoch;
  }
  debug.registry = ds->enforcer->RegistrySnapshot();
  debug.budget = accountant_.Checkpoint(dataset_id);
  return debug;
}

std::string UpaService::StatsReport() const {
  std::ostringstream out;
  out << "== upa service ==\n";
  if (!config_.shard_name.empty()) {
    out << "shard: " << config_.shard_name << "\n";
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    out << "in_flight: " << in_flight_ << " / " << config_.max_in_flight
        << "\n";
    out << "tenants:\n";
    for (const auto& [name, tenant] : tenants_) {
      out << "  " << name << ": submitted=" << tenant.submitted
          << " completed=" << tenant.completed
          << " rejected=" << tenant.rejected
          << " cancelled=" << tenant.cancelled
          << " queued=" << tenant.queue.size()
          << (tenant.running ? " [running]" : "") << "\n";
    }
  }
  {
    std::lock_guard<std::mutex> lock(datasets_mu_);
    out << "datasets:\n";
    for (const auto& [id, ds] : datasets_) {
      std::lock_guard<std::mutex> ds_lock(ds->mu);
      out << "  " << id << ": epoch=" << ds->epoch
          << " queries=" << ds->queries
          << " registry=" << ds->enforcer->registry_size()
          << " cached_sens=" << ds->cache.size()
          << " spent=" << accountant_.Spent(id)
          << " remaining=" << accountant_.Remaining(id)
          << (ds->journal != nullptr ? " [journaled]" : "") << "\n";
    }
  }
  engine::MetricsSnapshot snapshot = ctx_->metrics().Snapshot();
  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << "  " << name << ": " << value << "\n";
    }
  }
  if (!snapshot.latency.empty()) {
    out << "latency (p50 / p99 / max, seconds):\n";
    for (const auto& [name, hist] : snapshot.latency) {
      out << "  " << name << ": n=" << hist.count << " p50="
          << hist.QuantileSeconds(0.5) << " p99=" << hist.QuantileSeconds(0.99)
          << " max=" << hist.max_seconds << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << "  " << name << ": " << value << "\n";
    }
  }
  return out.str();
}

}  // namespace upa::service
