// Columnar storage + vectorized relational execution.
//
// The row interpreter (executor.cpp) pays a heap-backed std::variant per
// cell, a std::function call per row, and whole-row copies per operator.
// This layer is the batch-at-a-time cure (cf. HDK/DuckDB-style executors):
//
//   * ColumnarTable — one typed contiguous vector per column (int64_t,
//     double, or dictionary-encoded strings with an *order-preserving*
//     dictionary, so code comparisons implement string comparisons). Built
//     once per Table and cached (Table::Columnar()).
//   * Late materialization — a relation in flight is a set of source
//     ColumnarTables plus one row-index vector per source; filters and
//     joins only re-index, they never copy cell data. The private table's
//     include/exclude/replace options are plain index vectors, and
//     provenance *is* the private source's row-index column.
//   * Batch kernels (kernels.h) — predicates evaluate into selection
//     vectors, numeric projections into contiguous double buffers; no
//     per-row std::function dispatch, no variant access in inner loops.
//   * Deterministic parallelism — operators run per fixed-size batch on
//     the engine ThreadPool (chunk boundaries depend only on row count),
//     and every aggregate goes through ExactSum (common/exact_sum.h), so
//     results are bit-identical to the row oracle for any pool size. The
//     differential harness (tests/relational_columnar_test.cpp) asserts
//     exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/context.h"
#include "relational/executor.h"
#include "relational/plan.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace upa::rel {

/// Selection / row-index vector: positions are uint32 (tables are checked
/// to fit; 4B rows ought to be enough for one in-memory partition).
using SelVector = std::vector<uint32_t>;

/// One typed column. Exactly one payload vector is populated, chosen by
/// the *actual* cell types (not the declared schema type): all-int64 cells
/// make an int column even under a double-declared schema, so join keys
/// behave exactly like the row oracle's strict AsInt accessor.
struct Column {
  ValueType type = ValueType::kInt;
  std::vector<int64_t> ints;       // type == kInt
  std::vector<double> doubles;     // type == kDouble
  std::vector<uint32_t> codes;     // type == kString: index into *dict
  /// Sorted (order-preserving) dictionary: code order == string order.
  std::shared_ptr<const std::vector<std::string>> dict;
};

class ColumnarTable {
 public:
  /// Builds the columnar form of `rows` against `schema`. Aborts on
  /// columns mixing string and numeric cells (the row store tolerates
  /// them lazily; columnar storage is typed per column).
  static std::shared_ptr<const ColumnarTable> Build(
      Schema schema, const std::vector<Row>& rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Shared identity row-index vector [0, num_rows) — the row_ids of a
  /// full scan, shared across every scan of this table.
  const std::shared_ptr<const SelVector>& identity() const {
    return identity_;
  }

 private:
  ColumnarTable() = default;

  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
  std::shared_ptr<const SelVector> identity_;
};

/// Executes an Aggregate-rooted plan on the columnar engine. Root/option
/// validation is PlanExecutor::Execute's job; this expects a well-formed
/// root and returns the same statuses as the row oracle for unknown
/// tables/columns/join keys. Results are bit-identical to the row path.
Result<ExecResult> ExecuteColumnar(engine::ExecContext* ctx,
                                   const Catalog* catalog,
                                   const PlanPtr& plan,
                                   const ExecOptions& options);

}  // namespace upa::rel
