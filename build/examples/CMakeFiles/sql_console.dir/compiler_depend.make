# Empty compiler generated dependencies file for sql_console.
# This may be replaced when dependencies are built.
