// Relationships among the three sensitivity rules (DESIGN.md §6).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "upa/runner.h"
#include "upa/simple_query.h"

namespace upa::core {
namespace {

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 4});
  return ctx;
}

QueryInstance RandomSumQuery(uint64_t seed, size_t n) {
  auto values = std::make_shared<std::vector<double>>();
  Rng rng(seed);
  values->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values->push_back(rng.Exponential(0.5));  // skewed influences
  }
  SimpleQuerySpec<double> spec;
  spec.name = "rules-sum-" + std::to_string(seed);
  spec.ctx = &Ctx();
  spec.records = values;
  spec.map_record = [](const double& v) { return Vec{v}; };
  spec.sample_domain = [](Rng& r) { return r.Exponential(0.5); };
  return MakeSimpleQuery(std::move(spec));
}

double SensitivityUnder(SensitivityRule rule, uint64_t seed) {
  UpaConfig cfg;
  cfg.sample_n = 300;
  cfg.add_noise = false;
  cfg.enable_enforcer = false;
  cfg.sensitivity_rule = rule;
  UpaRunner runner(cfg);
  auto result = runner.Run(RandomSumQuery(seed, 3000), seed);
  UPA_CHECK(result.ok());
  return result.value().local_sensitivity;
}

class RuleLatticeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RuleLatticeSweep, PercentileRuleDominatesSampledMax) {
  uint64_t seed = GetParam();
  double smax = SensitivityUnder(SensitivityRule::kSampledMax, seed);
  double p99 = SensitivityUnder(SensitivityRule::kInfluencePercentile, seed);
  // kInfluencePercentile = max(sampled max, fitted P99) ≥ kSampledMax.
  EXPECT_GE(p99, smax - 1e-12);
  EXPECT_GT(smax, 0.0);
}

TEST_P(RuleLatticeSweep, AllRulesPositiveAndFinite) {
  uint64_t seed = GetParam();
  for (auto rule :
       {SensitivityRule::kSampledMax, SensitivityRule::kInfluencePercentile,
        SensitivityRule::kOutputRange}) {
    double s = SensitivityUnder(rule, seed);
    EXPECT_GT(s, 0.0);
    EXPECT_TRUE(std::isfinite(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleLatticeSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(RuleSemanticsTest, SampledMaxEqualsLargestObservedInfluence) {
  UpaConfig cfg;
  cfg.sample_n = 300;
  cfg.add_noise = false;
  cfg.enable_enforcer = false;
  UpaRunner runner(cfg);
  auto result = runner.Run(RandomSumQuery(77, 3000), 77);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  double max_infl = 0.0;
  for (double o : r.neighbour_outputs) {
    max_infl = std::max(max_infl, std::fabs(o - r.raw_output));
  }
  EXPECT_DOUBLE_EQ(r.local_sensitivity, max_infl);
  // Range centred on f(x) with radius = sensitivity.
  EXPECT_DOUBLE_EQ(r.out_range.lo, r.raw_output - r.local_sensitivity);
  EXPECT_DOUBLE_EQ(r.out_range.hi, r.raw_output + r.local_sensitivity);
}

TEST(RuleSemanticsTest, OutputRangeRuleUsesFittedPercentiles) {
  UpaConfig cfg;
  cfg.sample_n = 300;
  cfg.add_noise = false;
  cfg.enable_enforcer = false;
  cfg.sensitivity_rule = SensitivityRule::kOutputRange;
  UpaRunner runner(cfg);
  auto result = runner.Run(RandomSumQuery(88, 3000), 88);
  ASSERT_TRUE(result.ok());
  Interval expect = NormalPercentileInterval(
      result.value().neighbour_outputs, 1.0, 99.0);
  EXPECT_DOUBLE_EQ(result.value().out_range.lo, expect.lo);
  EXPECT_DOUBLE_EQ(result.value().out_range.hi, expect.hi);
  EXPECT_DOUBLE_EQ(result.value().local_sensitivity, expect.width());
}

}  // namespace
}  // namespace upa::core
