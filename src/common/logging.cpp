#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/env.h"

namespace upa {
namespace {

std::atomic<int> g_level{-1};  // -1: not initialized

LogLevel ParseLevel(const std::string& s) {
  if (s == "error") return LogLevel::kError;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "debug") return LogLevel::kDebug;
  return LogLevel::kInfo;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel CurrentLogLevel() {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = static_cast<int>(ParseLevel(EnvString("UPA_LOG_LEVEL", "info")));
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lv);
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogV(LogLevel level, const char* fmt, va_list args) {
  if (static_cast<int>(level) > static_cast<int>(CurrentLogLevel())) return;
  std::lock_guard lock(LogMutex());
  std::fprintf(stderr, "[upa %s] ", LevelTag(level));
  std::vfprintf(stderr, fmt, args);
  size_t len = std::strlen(fmt);
  if (len == 0 || fmt[len - 1] != '\n') std::fputc('\n', stderr);
}

void Log(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  LogV(level, fmt, args);
  va_end(args);
}

}  // namespace upa
