#include "upa/range_enforcer.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace upa::core {

bool RangeEnforcer::NearlyEqual(double a, double b) const {
  if (a == b) return true;
  double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= tolerance_ * scale;
}

size_t RangeEnforcer::CountDifferences(const std::vector<double>& current,
                                       const std::vector<double>& prior) const {
  // Partition counts always match within one enforcer instance; a prior
  // entry of different arity (different partitioning config) trivially
  // differs everywhere.
  if (current.size() != prior.size()) return current.size();
  size_t diff = 0;
  for (size_t j = 0; j < current.size(); ++j) {
    if (!NearlyEqual(current[j], prior[j])) ++diff;
  }
  return diff;
}

EnforcerDecision RangeEnforcer::Enforce(
    std::vector<double>& partition_outputs,
    const std::function<std::vector<double>(size_t total_removed)>&
        recompute) {
  EnforcerDecision decision;
  decision.prior_queries_checked = prior_.size();
  UPA_CHECK_MSG(partition_outputs.size() >= 2,
                "enforcer needs at least two partitions");

  size_t total_removed = 0;
  for (const auto& prior : prior_) {
    size_t diff = CountDifferences(partition_outputs, prior);
    // Algorithm 2 lines 8-15: while fewer than two partitions differ, the
    // two inputs may be neighbouring — remove two records and recompute.
    while (diff < 2) {
      decision.attack_suspected = true;
      if (total_removed + 2 > max_removals_) {
        decision.removal_capped = true;
        break;
      }
      total_removed += 2;
      partition_outputs = recompute(total_removed);
      diff = CountDifferences(partition_outputs, prior);
    }
    if (decision.removal_capped) break;
  }
  decision.records_removed = total_removed;
  return decision;
}

void RangeEnforcer::Register(std::vector<double> partition_outputs) {
  prior_.push_back(std::move(partition_outputs));
}

}  // namespace upa::core
