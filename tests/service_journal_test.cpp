// Journal wire format, torn-tail handling, snapshots, and recovery
// semantics (dangling charges refund exactly once; replay is bit-exact).
#include "service/journal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace upa::service {
namespace {

namespace fs = std::filesystem;

/// A fresh empty directory per test, removed afterwards.
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("upa_journal_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

JournalRecord Charge(uint64_t qid, double eps) {
  JournalRecord rec;
  rec.type = JournalRecord::Type::kCharge;
  rec.qid = qid;
  rec.epsilon = eps;
  return rec;
}

JournalRecord Release(uint64_t qid, double eps, std::vector<double> outputs) {
  JournalRecord rec;
  rec.type = JournalRecord::Type::kRelease;
  rec.qid = qid;
  rec.epsilon = eps;
  rec.partition_outputs = std::move(outputs);
  return rec;
}

JournalRecord Refund(uint64_t qid, double eps) {
  JournalRecord rec;
  rec.type = JournalRecord::Type::kRefund;
  rec.qid = qid;
  rec.epsilon = eps;
  return rec;
}

TEST_F(JournalTest, RoundTripsRecordsBitExactly) {
  auto journal_or = Journal::Open(dir_, "sales");
  ASSERT_TRUE(journal_or.ok()) << journal_or.status().ToString();
  std::unique_ptr<Journal> journal = std::move(journal_or).value();

  // Values chosen to stress bit-exactness: denormals, negatives, values
  // with no short decimal representation.
  std::vector<double> outputs{1.0 / 3.0, -0.0, 5e-324, 1e308};
  ASSERT_TRUE(journal->Append(Charge(1, 0.1)).ok());
  ASSERT_TRUE(journal->Append(Release(1, 0.1, outputs)).ok());
  JournalRecord bump;
  bump.type = JournalRecord::Type::kEpochBump;
  bump.epoch = 7;
  ASSERT_TRUE(journal->Append(bump).ok());

  bool torn = true;
  auto records_or = Journal::ReadAll(journal->path(), &torn);
  ASSERT_TRUE(records_or.ok()) << records_or.status().ToString();
  EXPECT_FALSE(torn);
  const auto& records = records_or.value();
  ASSERT_EQ(records.size(), 4u);  // kOpen header + 3 appends
  EXPECT_EQ(records[0].type, JournalRecord::Type::kOpen);
  EXPECT_EQ(records[0].dataset_id, "sales");
  EXPECT_EQ(records[1].type, JournalRecord::Type::kCharge);
  EXPECT_EQ(records[1].qid, 1u);
  EXPECT_EQ(records[2].type, JournalRecord::Type::kRelease);
  ASSERT_EQ(records[2].partition_outputs.size(), outputs.size());
  for (size_t i = 0; i < outputs.size(); ++i) {
    // Bitwise comparison: -0.0 == 0.0 under operator==, so compare
    // representations.
    EXPECT_EQ(std::memcmp(&records[2].partition_outputs[i], &outputs[i],
                          sizeof(double)),
              0)
        << "output " << i;
  }
  EXPECT_EQ(records[3].type, JournalRecord::Type::kEpochBump);
  EXPECT_EQ(records[3].epoch, 7u);
}

TEST_F(JournalTest, TornTailStopsAtLastIntactRecord) {
  std::string path;
  {
    auto journal_or = Journal::Open(dir_, "ds");
    ASSERT_TRUE(journal_or.ok());
    auto journal = std::move(journal_or).value();
    ASSERT_TRUE(journal->Append(Charge(1, 0.1)).ok());
    ASSERT_TRUE(journal->Append(Charge(2, 0.2)).ok());
    path = journal->path();
  }
  // Simulate a crash mid-append: chop bytes off the final record.
  uint64_t size = fs::file_size(path);
  fs::resize_file(path, size - 5);

  bool torn = false;
  uint64_t intact = 0;
  auto records_or = Journal::ReadAll(path, &torn, &intact);
  ASSERT_TRUE(records_or.ok());
  EXPECT_TRUE(torn);
  ASSERT_EQ(records_or.value().size(), 2u);  // kOpen + first charge
  EXPECT_EQ(records_or.value()[1].qid, 1u);
  EXPECT_LT(intact, size - 5);
}

TEST_F(JournalTest, CorruptedPayloadIsATornTail) {
  std::string path;
  {
    auto journal_or = Journal::Open(dir_, "ds");
    ASSERT_TRUE(journal_or.ok());
    ASSERT_TRUE(journal_or.value()->Append(Charge(1, 0.1)).ok());
    path = journal_or.value()->path();
  }
  // Flip one byte in the last record's payload: the checksum must catch it.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -1, SEEK_END);
  int last = std::fgetc(f);
  std::fseek(f, -1, SEEK_END);
  std::fputc(last ^ 0xff, f);
  std::fclose(f);

  bool torn = false;
  auto records_or = Journal::ReadAll(path, &torn);
  ASSERT_TRUE(records_or.ok());
  EXPECT_TRUE(torn);
  EXPECT_EQ(records_or.value().size(), 1u);  // only the kOpen header
}

TEST_F(JournalTest, SnapshotRoundTrips) {
  DatasetDurableState state;
  state.dataset_id = "metrics/daily";
  state.epoch = 3;
  state.charged_total = 0.7;
  state.refunded_total = 0.2;
  state.registry = {{1.0 / 3.0, 2.0}, {-0.0, 5e-324, 7.0}};
  ASSERT_TRUE(WriteSnapshot(dir_, state, 1234).ok());

  std::string path =
      (fs::path(dir_) / (Journal::FileStem(state.dataset_id) + ".snapshot"))
          .string();
  uint64_t covered = 0;
  auto loaded_or = ReadSnapshot(path, &covered);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const DatasetDurableState& loaded = loaded_or.value();
  EXPECT_EQ(loaded.dataset_id, state.dataset_id);
  EXPECT_EQ(loaded.epoch, 3u);
  EXPECT_EQ(covered, 1234u);
  EXPECT_DOUBLE_EQ(loaded.charged_total, 0.7);
  EXPECT_DOUBLE_EQ(loaded.refunded_total, 0.2);
  ASSERT_EQ(loaded.registry.size(), 2u);
  for (size_t i = 0; i < state.registry.size(); ++i) {
    ASSERT_EQ(loaded.registry[i].size(), state.registry[i].size());
    for (size_t j = 0; j < state.registry[i].size(); ++j) {
      EXPECT_EQ(std::memcmp(&loaded.registry[i][j], &state.registry[i][j],
                            sizeof(double)),
                0);
    }
  }
}

TEST_F(JournalTest, CorruptSnapshotIsRejected) {
  DatasetDurableState state;
  state.dataset_id = "ds";
  ASSERT_TRUE(WriteSnapshot(dir_, state, 0).ok());
  std::string path =
      (fs::path(dir_) / (Journal::FileStem("ds") + ".snapshot")).string();
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -1, SEEK_END);
  int last = std::fgetc(f);
  std::fseek(f, -1, SEEK_END);
  std::fputc(last ^ 0xff, f);
  std::fclose(f);
  EXPECT_EQ(ReadSnapshot(path, nullptr).status().code(),
            StatusCode::kInternal);
  EXPECT_EQ(ReadSnapshot((fs::path(dir_) / "absent.snapshot").string(),
                         nullptr)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(JournalTest, RecoveryReplaysChargesReleasesRefunds) {
  {
    auto journal = std::move(Journal::Open(dir_, "ds").value());
    ASSERT_TRUE(journal->Append(Charge(1, 0.1)).ok());
    ASSERT_TRUE(journal->Append(Release(1, 0.1, {4.0, 5.0})).ok());
    ASSERT_TRUE(journal->Append(Charge(2, 0.2)).ok());
    ASSERT_TRUE(journal->Append(Refund(2, 0.2)).ok());
    ASSERT_TRUE(journal->Append(Charge(3, 0.3)).ok());
    ASSERT_TRUE(journal->Append(Release(3, 0.3, {6.0, 7.0})).ok());
  }
  auto state_or = RecoverDataset(dir_, "ds", /*compact=*/false);
  ASSERT_TRUE(state_or.ok()) << state_or.status().ToString();
  const DatasetDurableState& state = state_or.value();
  EXPECT_DOUBLE_EQ(state.charged_total, 0.1 + 0.2 + 0.3);
  EXPECT_DOUBLE_EQ(state.refunded_total, 0.2);
  ASSERT_EQ(state.registry.size(), 2u);
  EXPECT_EQ(state.registry[0], (std::vector<double>{4.0, 5.0}));
  EXPECT_EQ(state.registry[1], (std::vector<double>{6.0, 7.0}));
  EXPECT_TRUE(state.recovered_refunds.empty());
}

TEST_F(JournalTest, DanglingChargeIsRefundedExactlyOnce) {
  {
    auto journal = std::move(Journal::Open(dir_, "ds").value());
    ASSERT_TRUE(journal->Append(Charge(1, 0.1)).ok());
    // Crash: no release, no refund.
  }
  auto first_or = RecoverDataset(dir_, "ds", /*compact=*/true);
  ASSERT_TRUE(first_or.ok());
  EXPECT_DOUBLE_EQ(first_or.value().charged_total, 0.1);
  EXPECT_DOUBLE_EQ(first_or.value().refunded_total, 0.1);
  ASSERT_EQ(first_or.value().recovered_refunds.size(), 1u);
  EXPECT_DOUBLE_EQ(first_or.value().recovered_refunds.at(1), 0.1);

  // A second recovery loads the compacted snapshot: the refund is already
  // baked in, and must not be applied again.
  auto second_or = RecoverDataset(dir_, "ds", /*compact=*/true);
  ASSERT_TRUE(second_or.ok());
  EXPECT_DOUBLE_EQ(second_or.value().charged_total, 0.1);
  EXPECT_DOUBLE_EQ(second_or.value().refunded_total, 0.1);
  EXPECT_TRUE(second_or.value().recovered_refunds.empty());
}

TEST_F(JournalTest, CompactionCoversReplayAndAcceptsNewAppends) {
  {
    auto journal = std::move(Journal::Open(dir_, "ds").value());
    ASSERT_TRUE(journal->Append(Charge(1, 0.1)).ok());
    ASSERT_TRUE(journal->Append(Release(1, 0.1, {4.0, 5.0})).ok());
  }
  ASSERT_TRUE(RecoverDataset(dir_, "ds", /*compact=*/true).ok());

  // New process appends past the snapshot's coverage; qids may restart.
  {
    auto journal = std::move(Journal::Open(dir_, "ds").value());
    ASSERT_TRUE(journal->Append(Charge(1, 0.2)).ok());
    ASSERT_TRUE(journal->Append(Release(1, 0.2, {8.0, 9.0})).ok());
  }
  auto state_or = RecoverDataset(dir_, "ds", /*compact=*/true);
  ASSERT_TRUE(state_or.ok());
  const DatasetDurableState& state = state_or.value();
  EXPECT_DOUBLE_EQ(state.charged_total, 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(state.refunded_total, 0.0);
  ASSERT_EQ(state.registry.size(), 2u);
  EXPECT_EQ(state.registry[0], (std::vector<double>{4.0, 5.0}));
  EXPECT_EQ(state.registry[1], (std::vector<double>{8.0, 9.0}));
}

TEST_F(JournalTest, TornTailIsTruncatedSoNewAppendsAreReachable) {
  {
    auto journal = std::move(Journal::Open(dir_, "ds").value());
    ASSERT_TRUE(journal->Append(Charge(1, 0.1)).ok());
    ASSERT_TRUE(journal->Append(Charge(2, 0.2)).ok());
  }
  std::string path =
      (fs::path(dir_) / (Journal::FileStem("ds") + ".journal")).string();
  fs::resize_file(path, fs::file_size(path) - 3);

  // Recovery drops the fragment (charge 2) and refunds the dangling
  // charge 1.
  auto state_or = RecoverDataset(dir_, "ds", /*compact=*/true);
  ASSERT_TRUE(state_or.ok());
  EXPECT_DOUBLE_EQ(state_or.value().charged_total, 0.1);
  EXPECT_DOUBLE_EQ(state_or.value().refunded_total, 0.1);

  // Appends after the truncation land on a clean tail and replay fine.
  {
    auto journal = std::move(Journal::Open(dir_, "ds").value());
    ASSERT_TRUE(journal->Append(Charge(5, 0.5)).ok());
    ASSERT_TRUE(journal->Append(Release(5, 0.5, {1.0, 2.0})).ok());
  }
  bool torn = true;
  auto records_or = Journal::ReadAll(path, &torn);
  ASSERT_TRUE(records_or.ok());
  EXPECT_FALSE(torn);
  auto final_or = RecoverDataset(dir_, "ds", /*compact=*/false);
  ASSERT_TRUE(final_or.ok());
  EXPECT_DOUBLE_EQ(final_or.value().charged_total, 0.1 + 0.5);
  ASSERT_EQ(final_or.value().registry.size(), 1u);
}

TEST_F(JournalTest, RecoverAllFindsEveryDataset) {
  for (const std::string& id : {"alpha", "beta", "sales/2026 Q1"}) {
    auto journal = std::move(Journal::Open(dir_, id).value());
    ASSERT_TRUE(journal->Append(Charge(1, 0.1)).ok());
    ASSERT_TRUE(journal->Append(Release(1, 0.1, {1.0, 2.0})).ok());
  }
  auto states_or = RecoverAll(dir_, /*compact=*/true);
  ASSERT_TRUE(states_or.ok()) << states_or.status().ToString();
  ASSERT_EQ(states_or.value().size(), 3u);
  std::vector<std::string> ids;
  for (const auto& state : states_or.value()) {
    ids.push_back(state.dataset_id);
    EXPECT_EQ(state.registry.size(), 1u) << state.dataset_id;
  }
  EXPECT_NE(std::find(ids.begin(), ids.end(), "sales/2026 Q1"), ids.end());
}

TEST_F(JournalTest, FileStemSanitizesAndDisambiguates) {
  std::string a = Journal::FileStem("sales/2026 Q1");
  std::string b = Journal::FileStem("sales_2026_Q1");
  EXPECT_EQ(a.find('/'), std::string::npos);
  EXPECT_EQ(a.find(' '), std::string::npos);
  // Same sanitized prefix, different hash suffix: no collision.
  EXPECT_NE(a, b);
  EXPECT_EQ(Journal::FileStem("x"), Journal::FileStem("x"));
}

TEST_F(JournalTest, RecoverAllOnMissingDirIsEmpty) {
  auto states_or = RecoverAll((fs::path(dir_) / "nope").string(), true);
  ASSERT_TRUE(states_or.ok());
  EXPECT_TRUE(states_or.value().empty());
}

}  // namespace
}  // namespace upa::service
