file(REMOVE_RECURSE
  "CMakeFiles/queries_suite_test.dir/queries_suite_test.cpp.o"
  "CMakeFiles/queries_suite_test.dir/queries_suite_test.cpp.o.d"
  "queries_suite_test"
  "queries_suite_test.pdb"
  "queries_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queries_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
