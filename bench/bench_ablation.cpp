// Ablations of UPA's design choices (DESIGN.md per-experiment index):
//   A. Exclusion strategy: the paper's naive O(n²) per-exclusion reduce vs
//      the O(n) prefix/suffix exclusion scan (identical results, large
//      speedup at large n — the cost the union-preserving formulation
//      avoids re-paying).
//   B. Sensitivity rule: influence-percentile (default; matches the
//      paper's reported accuracy) vs the literal Algorithm 1 output-range
//      rule, against ground truth per query.
//   C. Range Enforcer on/off: the enforcer's share of end-to-end time
//      (§VI-D attributes the local-query overhead mostly to it).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "upa/exclusion.h"
#include "upa/group.h"
#include "upa/runner.h"

using namespace upa;

namespace {

void AblationExclusion() {
  TablePrinter table(
      {"n", "naive (ms)", "scan (ms)", "speedup", "max |diff|"});
  Rng rng(7);
  for (size_t n : {100u, 300u, 1000u, 3000u, 10000u}) {
    std::vector<core::Vec> mapped(n, core::Vec(4));
    for (auto& m : mapped) {
      for (double& v : m) v = rng.UniformDouble(-1, 1);
    }
    Stopwatch naive_watch;
    auto naive =
        core::ExclusionAggregate(mapped, core::ExclusionStrategy::kNaive);
    double naive_ms = naive_watch.ElapsedMillis();
    Stopwatch scan_watch;
    auto scan =
        core::ExclusionAggregate(mapped, core::ExclusionStrategy::kScan);
    double scan_ms = scan_watch.ElapsedMillis();

    double max_diff = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < 4; ++j) {
        max_diff = std::max(max_diff, std::fabs(naive[i][j] - scan[i][j]));
      }
    }
    table.AddRow({std::to_string(n), TablePrinter::FormatDouble(naive_ms, 2),
                  TablePrinter::FormatDouble(scan_ms, 2),
                  TablePrinter::FormatDouble(naive_ms / std::max(1e-6, scan_ms), 1),
                  TablePrinter::FormatScientific(max_diff, 1)});
  }
  table.Print("Ablation A: naive per-exclusion reduce vs exclusion scan");
}

void AblationSensitivityRule(const bench::BenchEnv& env) {
  queries::QuerySuite suite(env.MakeSuiteConfig());
  TablePrinter table({"Query", "GT sens", "sampled-max", "influence-P99",
                      "output-range", "smax err", "P99 err", "range err"});
  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    auto gt = suite.ComputeGroundTruth(name, env.sample_n, env.seed);
    if (!gt.ok()) continue;
    double truth = gt.value().local_sensitivity;

    double vals[3];
    int i = 0;
    for (auto rule : {core::SensitivityRule::kSampledMax,
                      core::SensitivityRule::kInfluencePercentile,
                      core::SensitivityRule::kOutputRange}) {
      core::UpaConfig cfg = env.MakeUpaConfig();
      cfg.add_noise = false;
      cfg.sensitivity_rule = rule;
      core::UpaRunner runner(cfg);
      auto result = runner.Run(suite.MakeInstance(name), env.seed);
      vals[i++] = result.ok() ? result.value().local_sensitivity : -1.0;
    }
    auto rel = [&](double v) {
      return truth > 0 ? TablePrinter::FormatPercent((v - truth) / truth, 1)
                       : std::string("-");
    };
    table.AddRow({name, TablePrinter::FormatDouble(truth, 4),
                  TablePrinter::FormatDouble(vals[0], 4),
                  TablePrinter::FormatDouble(vals[1], 4),
                  TablePrinter::FormatDouble(vals[2], 4), rel(vals[0]),
                  rel(vals[1]), rel(vals[2])});
  }
  table.Print("Ablation B: sensitivity rule vs ground truth "
              "(see DESIGN.md on the paper's Algorithm-1/evaluation tension)");
}

void AblationEnforcer(const bench::BenchEnv& env) {
  queries::QuerySuite suite(env.MakeSuiteConfig());
  TablePrinter table({"Query", "UPA w/ enforcer (ms)", "UPA w/o (ms)",
                      "enforcer share"});
  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    double ms_on = 0, ms_off = 0;
    size_t reps = std::max<size_t>(2, env.runs / 3);
    for (bool enforcer_on : {true, false}) {
      core::UpaConfig cfg = env.MakeUpaConfig();
      cfg.enable_enforcer = enforcer_on;
      core::UpaRunner runner(cfg);
      std::vector<double> ms;
      for (size_t r = 0; r < reps; ++r) {
        auto result = runner.Run(suite.MakeInstance(name), env.seed + r);
        if (result.ok()) ms.push_back(result.value().seconds.total * 1e3);
      }
      (enforcer_on ? ms_on : ms_off) = Mean(ms);
    }
    table.AddRow({name, TablePrinter::FormatDouble(ms_on, 2),
                  TablePrinter::FormatDouble(ms_off, 2),
                  TablePrinter::FormatPercent(
                      ms_on > 0 ? (ms_on - ms_off) / ms_on : 0.0, 1)});
  }
  table.Print("Ablation C: Range Enforcer cost share");
}

void AblationGroupPrivacy(const bench::BenchEnv& env) {
  // The paper's §VI-E future work: extend iDP to groups of k individuals
  // by reusing the sampled-neighbour outputs. One UPA run per query feeds
  // the whole k-sweep.
  queries::QuerySuite suite(env.MakeSuiteConfig());
  TablePrinter table({"Query", "k=1", "k=2", "k=5", "k=10",
                      "noise scale-up (k=10 vs 1)"});
  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    core::UpaConfig cfg = env.MakeUpaConfig();
    cfg.add_noise = false;
    core::UpaRunner runner(cfg);
    auto result = runner.Run(suite.MakeInstance(name), env.seed);
    if (!result.ok()) continue;
    auto sweep = core::GroupSensitivitySweep(
        result.value().neighbour_outputs, result.value().raw_output, 10);
    double k1 = sweep[0].sensitivity;
    table.AddRow({name, TablePrinter::FormatDouble(k1, 4),
                  TablePrinter::FormatDouble(sweep[1].sensitivity, 4),
                  TablePrinter::FormatDouble(sweep[4].sensitivity, 4),
                  TablePrinter::FormatDouble(sweep[9].sensitivity, 4),
                  k1 > 0 ? TablePrinter::FormatDouble(
                               sweep[9].sensitivity / k1, 2) + "x"
                         : "-"});
  }
  table.Print("Ablation D: group-privacy extension (paper §VI-E) — "
              "k-group sensitivity from one run's sampled neighbours");
}

void AblationManualBounds(const bench::BenchEnv& env) {
  // The systems UPA replaces (GUPT, Airavat, PINQ — paper §VII) require
  // the analyst to guess an output range; the guess is usually padded for
  // safety. This ablation quantifies the utility cost: released-value
  // noise magnitude under UPA's inferred sensitivity vs manual ranges
  // padded 10x / 100x, at the paper's ε = 0.1.
  queries::QuerySuite suite(env.MakeSuiteConfig());
  TablePrinter table({"Query", "true output", "rel. noise UPA",
                      "rel. noise manual(10x pad)", "utility gain"});
  for (const auto& name : queries::QuerySuite::AllQueryNames()) {
    core::UpaConfig cfg = env.MakeUpaConfig();
    cfg.add_noise = false;
    core::UpaRunner runner(cfg);
    auto result = runner.Run(suite.MakeInstance(name), env.seed);
    auto gt = suite.ComputeGroundTruth(name, env.sample_n, env.seed);
    if (!result.ok() || !gt.ok()) continue;
    double truth = std::fabs(suite.RunNative(name));
    if (truth == 0.0) continue;
    double upa_sens = result.value().local_sensitivity;
    // A careful analyst who knew the exact sensitivity would still pad it
    // for safety; assume a 10x padding of the true value.
    double manual_sens = gt.value().local_sensitivity * 10.0;
    double base = std::sqrt(2.0) / cfg.epsilon;  // Laplace sd factor
    double upa_rel = base * upa_sens / truth;
    double manual_rel = base * manual_sens / truth;
    table.AddRow({name, TablePrinter::FormatDouble(truth, 2),
                  TablePrinter::FormatScientific(upa_rel, 2),
                  TablePrinter::FormatScientific(manual_rel, 2),
                  upa_rel > 0 ? TablePrinter::FormatDouble(
                                    manual_rel / upa_rel, 1) + "x"
                              : "-"});
  }
  table.Print("Ablation E: relative noise magnitude at eps=0.1, "
              "UPA-inferred vs padded manual bounds (GUPT/Airavat-style)");
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  bench::PrintBanner("Ablations — exclusion scan, sensitivity rule, enforcer",
                     env);
  AblationExclusion();
  AblationSensitivityRule(env);
  AblationEnforcer(env);
  AblationGroupPrivacy(env);
  AblationManualBounds(env);
  return 0;
}
