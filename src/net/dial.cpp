#include "net/dial.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace upa::net {

Result<int> StartConnect(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + ::strerror(errno));
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    Status st = Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                                 ::strerror(errno));
    ::close(fd);
    return st;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host '" + host + "'");
  }

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status st = Status::Internal(std::string("connect: ") + ::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status FinishConnect(int fd) {
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
    return Status::Internal(std::string("getsockopt(SO_ERROR): ") +
                            ::strerror(errno));
  }
  if (err != 0) {
    return Status::Internal(std::string("connect: ") + ::strerror(err));
  }
  return Status::Ok();
}

}  // namespace upa::net
