// Wide (shuffle) operations: redistribution by key, reduce-by-key, and
// hash join.
//
// Each wide operation is a stage boundary: records physically move between
// partition buffers according to Mix64(hash(key)) % partitions, and the
// engine counts one shuffle round plus the number of records exchanged.
// UPA's joinDP triggers this twice per Join (paper §V-C) — the shuffle
// counters are how the reproduction demonstrates that.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "engine/dataset.h"

namespace upa::engine {

/// Redistribute key-value pairs so equal keys land in the same partition.
/// K must be hashable with std::hash.
template <typename K, typename V>
Dataset<std::pair<K, V>> ShuffleByKey(const Dataset<std::pair<K, V>>& input,
                                      size_t num_partitions = 0) {
  ExecContext* ctx = input.context();
  if (num_partitions == 0) num_partitions = ctx->config().default_partitions;
  num_partitions = std::max<size_t>(1, num_partitions);

  std::vector<std::vector<std::pair<K, V>>> out(num_partitions);
  size_t moved = 0;
  // Sequential exchange: a real cluster would stream blocks over the
  // network; here the cost is the physical regrouping itself.
  for (size_t p = 0; p < input.NumPartitions(); ++p) {
    for (const auto& kv : input.partition(p)) {
      size_t dest = static_cast<size_t>(
          Mix64(static_cast<uint64_t>(std::hash<K>{}(kv.first))) %
          num_partitions);
      out[dest].push_back(kv);
      ++moved;
    }
  }
  ctx->metrics().AddShuffleRound();
  ctx->metrics().AddShuffleRecords(moved);
  return Dataset<std::pair<K, V>>(ctx, std::move(out));
}

/// ReduceByKey: shuffle then combine values per key with a
/// commutative-associative combine. Result has one pair per distinct key.
template <typename K, typename V, typename Combine>
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& input,
                                     Combine combine,
                                     size_t num_partitions = 0) {
  // Map-side pre-aggregation (Spark's combiner) to cut shuffle volume.
  Dataset<std::pair<K, V>> pre = [&] {
    std::vector<std::vector<std::pair<K, V>>> parts(input.NumPartitions());
    ExecContext* ctx = input.context();
    ctx->metrics().AddTasks(input.NumPartitions());
    ctx->pool().ParallelFor(input.NumPartitions(), [&](size_t p) {
      std::unordered_map<K, V> agg;
      for (const auto& [k, v] : input.partition(p)) {
        auto [it, inserted] = agg.try_emplace(k, v);
        if (!inserted) it->second = combine(std::move(it->second), v);
      }
      parts[p].assign(agg.begin(), agg.end());
      ctx->metrics().AddRecords(input.partition(p).size());
    });
    return Dataset<std::pair<K, V>>(ctx, std::move(parts));
  }();

  Dataset<std::pair<K, V>> shuffled = ShuffleByKey(pre, num_partitions);

  ExecContext* ctx = shuffled.context();
  std::vector<std::vector<std::pair<K, V>>> out(shuffled.NumPartitions());
  ctx->metrics().AddTasks(shuffled.NumPartitions());
  ctx->pool().ParallelFor(shuffled.NumPartitions(), [&](size_t p) {
    std::unordered_map<K, V> agg;
    for (const auto& [k, v] : shuffled.partition(p)) {
      auto [it, inserted] = agg.try_emplace(k, v);
      if (!inserted) it->second = combine(std::move(it->second), v);
    }
    out[p].assign(agg.begin(), agg.end());
  });
  return Dataset<std::pair<K, V>>(ctx, std::move(out));
}

/// Inner hash join on key: emits (k, (v, w)) for every matching pair.
template <typename K, typename V, typename W>
Dataset<std::pair<K, std::pair<V, W>>> HashJoin(
    const Dataset<std::pair<K, V>>& left,
    const Dataset<std::pair<K, W>>& right, size_t num_partitions = 0) {
  UPA_CHECK_MSG(left.context() == right.context(),
                "join requires datasets from the same context");
  Dataset<std::pair<K, V>> ls = ShuffleByKey(left, num_partitions);
  Dataset<std::pair<K, W>> rs = ShuffleByKey(right, num_partitions);
  UPA_CHECK(ls.NumPartitions() == rs.NumPartitions());

  ExecContext* ctx = ls.context();
  using Out = std::pair<K, std::pair<V, W>>;
  std::vector<std::vector<Out>> out(ls.NumPartitions());
  ctx->metrics().AddTasks(ls.NumPartitions());
  ctx->pool().ParallelFor(ls.NumPartitions(), [&](size_t p) {
    std::unordered_multimap<K, W> build;
    build.reserve(rs.partition(p).size());
    for (const auto& [k, w] : rs.partition(p)) build.emplace(k, w);
    for (const auto& [k, v] : ls.partition(p)) {
      auto [lo, hi] = build.equal_range(k);
      for (auto it = lo; it != hi; ++it) {
        out[p].push_back({k, {v, it->second}});
      }
    }
    ctx->metrics().AddRecords(ls.partition(p).size() +
                              rs.partition(p).size());
  });
  return Dataset<Out>(ctx, std::move(out));
}

/// GroupByKey: shuffle then gather all values per key.
template <typename K, typename V>
Dataset<std::pair<K, std::vector<V>>> GroupByKey(
    const Dataset<std::pair<K, V>>& input, size_t num_partitions = 0) {
  Dataset<std::pair<K, V>> shuffled = ShuffleByKey(input, num_partitions);
  ExecContext* ctx = shuffled.context();
  using Out = std::pair<K, std::vector<V>>;
  std::vector<std::vector<Out>> out(shuffled.NumPartitions());
  ctx->metrics().AddTasks(shuffled.NumPartitions());
  ctx->pool().ParallelFor(shuffled.NumPartitions(), [&](size_t p) {
    std::unordered_map<K, std::vector<V>> groups;
    for (const auto& [k, v] : shuffled.partition(p)) {
      groups[k].push_back(v);
    }
    out[p].reserve(groups.size());
    for (auto& [k, vs] : groups) out[p].push_back({k, std::move(vs)});
  });
  return Dataset<Out>(ctx, std::move(out));
}

}  // namespace upa::engine
