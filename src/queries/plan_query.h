// Adapter from a TPC-H logical plan to a UPA QueryInstance.
//
// execute_phases performs three engine runs of the plan (paper §V-C):
//   1. S' run  — the plan over the private table minus the sample, with
//      per-partition aggregation (Algorithm 1's ReduceByPar on S').
//   2. Sample run — the plan over the sampled records only, with
//      contribution tracking: this is joinDP's *second* join/shuffle pass,
//      which re-shuffles the non-private tables and is why join queries
//      carry >100% overhead in the paper's Fig 2(b).
//   3. Domain run — the plan over n synthetic private-table rows (the
//      "record added from D \ x" neighbours).
//
// The mapped value of private record r is its additive contribution to the
// aggregate (via join-index provenance); the reducer is scalar addition.
#pragma once

#include <memory>
#include <vector>

#include "relational/executor.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "upa/query_instance.h"

namespace upa::queries {

/// `private_rows_override`, when set, substitutes the private table's rows
/// (a churned copy) for every phase run; sample indices address it.
///
/// By default the plan passes through the cost-based optimizer first
/// (relational/optimizer.h) with the query's private table exempted from
/// build-side hints. Safe for DP: every optimized plan is bit-identical to
/// the original, so sensitivities and noise are unchanged. `optimize =
/// false` runs the plan exactly as given (differential baselines).
core::QueryInstance MakePlanQuery(
    engine::ExecContext* ctx, std::shared_ptr<const rel::PlanExecutor> executor,
    const tpch::TpchDataset* data, const tpch::TpchQuery& query,
    std::shared_ptr<const std::vector<rel::Row>> private_rows_override =
        nullptr,
    bool optimize = true);

}  // namespace upa::queries
