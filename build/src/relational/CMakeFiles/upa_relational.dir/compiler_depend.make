# Empty compiler generated dependencies file for upa_relational.
# This may be replaced when dependencies are built.
