#include "dp/sensitivity.h"

namespace upa::dp {

std::string MethodName(SensitivityMethod method) {
  switch (method) {
    case SensitivityMethod::kBruteForce:
      return "brute-force";
    case SensitivityMethod::kUpaSampled:
      return "upa";
    case SensitivityMethod::kFlexStatic:
      return "flex";
    case SensitivityMethod::kManual:
      return "manual";
  }
  return "unknown";
}

}  // namespace upa::dp
