// Chaos verification (ISSUE tentpole): drives UpaService under a seeded
// random fault schedule — injected phase errors, delays, deadlines,
// client cancellations, crash-and-recover cycles — and asserts the
// robustness invariants:
//   - budget conservation (spent == charged − refunded, audited by the
//     accountant after every schedule and recovery),
//   - a cancelled/failed/deadline-exceeded query refunds its charge and
//     registers nothing,
//   - recovery reconstructs the enforcer registry bit-identically and the
//     ledger totals exactly as journaled,
//   - the service keeps draining (no deadlock) with faults active.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "service/service.h"
#include "upa/simple_query.h"

namespace upa::service {
namespace {

namespace fs = std::filesystem;

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 4});
  return ctx;
}

/// A counting query over `n` records: M(r) = [1], f(x) = |x|.
core::QueryInstance CountQuery(size_t n, const std::string& name = "count") {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  auto records = std::make_shared<std::vector<int>>(n, 0);
  std::iota(records->begin(), records->end(), 0);
  spec.records = records;
  spec.map_record = [](const int&) { return core::Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

/// A counting query whose map phase sleeps per record — slow enough that a
/// mid-run cancel/deadline reliably lands before the map→reduce boundary
/// check observes it.
core::QueryInstance SleepyQuery(size_t n, const std::string& name = "sleepy") {
  core::SimpleQuerySpec<int> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  auto records = std::make_shared<std::vector<int>>(n, 0);
  spec.records = records;
  spec.map_record = [](const int&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return core::Vec{1.0};
  };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1000000));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

ServiceConfig FastConfig() {
  ServiceConfig config;
  config.upa.sample_n = 100;
  config.upa.add_noise = false;
  return config;
}

QueryRequest MakeRequest(const std::string& tenant, const std::string& dataset,
                         core::QueryInstance query, uint64_t seed = 1) {
  QueryRequest request;
  request.tenant = tenant;
  request.dataset_id = dataset;
  request.query = std::move(query);
  request.epsilon = 0.05;
  request.seed = seed;
  return request;
}

/// Registries must match double-for-double at the bit level.
void ExpectRegistryBitIdentical(
    const std::vector<std::vector<double>>& a,
    const std::vector<std::vector<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "prior " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(std::memcmp(&a[i][j], &b[i][j], sizeof(double)), 0)
          << "prior " << i << " partition " << j;
    }
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Instance().DeactivateAll();
    dir_ = (fs::path(::testing::TempDir()) /
            ("upa_chaos_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    Failpoints::Instance().DeactivateAll();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(ChaosTest, DeadlineExceededMidRunRefundsCharge) {
  UpaService service(&Ctx(), FastConfig());
  QueryRequest request = MakeRequest("a", "ds", SleepyQuery(2000));
  request.deadline_ms = 50;
  auto result = service.Execute(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Refund iff nothing was released: the charge came back and nothing
  // joined the registry.
  EXPECT_DOUBLE_EQ(service.accountant().Spent("ds"), 0.0);
  EXPECT_EQ(service.DebugState("ds").registry.size(), 0u);
  EXPECT_TRUE(service.accountant().VerifyConservation().ok());
}

TEST_F(ChaosTest, ClientCancelMidRunRefundsCharge) {
  UpaService service(&Ctx(), FastConfig());
  QueryRequest request = MakeRequest("a", "ds", SleepyQuery(2000));
  request.cancel = std::make_shared<CancelToken>();
  auto token = request.cancel;
  auto future = service.Submit(std::move(request));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  token->Cancel(StatusCode::kCancelled, "analyst closed the session");
  auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(result.status().message(), "analyst closed the session");
  EXPECT_DOUBLE_EQ(service.accountant().Spent("ds"), 0.0);
  EXPECT_EQ(service.DebugState("ds").registry.size(), 0u);
  EXPECT_TRUE(service.accountant().VerifyConservation().ok());
}

TEST_F(ChaosTest, CancelAfterCompletionIsIgnored) {
  UpaService service(&Ctx(), FastConfig());
  QueryRequest request = MakeRequest("a", "ds", CountQuery(2000));
  request.cancel = std::make_shared<CancelToken>();
  auto token = request.cancel;
  auto result = service.Execute(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The release already happened; a late cancel must not claw it back.
  token->Cancel();
  EXPECT_DOUBLE_EQ(service.accountant().Spent("ds"), 0.05);
  EXPECT_EQ(service.DebugState("ds").registry.size(), 1u);
  EXPECT_TRUE(service.accountant().VerifyConservation().ok());
}

TEST_F(ChaosTest, PreCancelledRequestNeverCharges) {
  UpaService service(&Ctx(), FastConfig());
  QueryRequest request = MakeRequest("a", "ds", CountQuery(2000));
  request.cancel = std::make_shared<CancelToken>();
  request.cancel->Cancel();
  auto result = service.Execute(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_DOUBLE_EQ(service.accountant().Spent("ds"), 0.0);
}

TEST_F(ChaosTest, WatchdogPrunesQueuedExpiredRequests) {
  ServiceConfig config = FastConfig();
  config.watchdog_interval_ms = 1.0;
  UpaService service(&Ctx(), config);

  // Tenant a holds the dataset in flight with a slow query; tenant b's
  // request can't dispatch (one in-flight per dataset) and its deadline
  // expires in the queue — the watchdog must fail it without running it.
  auto slow = service.Submit(MakeRequest("a", "ds", SleepyQuery(2000)));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  QueryRequest queued = MakeRequest("b", "ds", CountQuery(2000));
  queued.deadline_ms = 20;
  auto pruned = service.Submit(std::move(queued));

  auto pruned_result = pruned.get();
  ASSERT_FALSE(pruned_result.ok());
  EXPECT_EQ(pruned_result.status().code(), StatusCode::kDeadlineExceeded);
  (void)slow.get();  // drain; the slow query itself is unconstrained
  // The pruned request never charged; only the slow query's outcome moved
  // the ledger.
  EXPECT_TRUE(service.accountant().VerifyConservation().ok());
  EXPECT_EQ(service.DebugState("ds").budget.refunded_total, 0.0);
}

TEST_F(ChaosTest, InjectedPhaseErrorsAlwaysRefund) {
  UpaService service(&Ctx(), FastConfig());
  ASSERT_TRUE(Failpoints::Instance()
                  .Activate("upa/phase_reduce", "error(internal):every(2)")
                  .ok());
  size_t ok_count = 0;
  for (int i = 0; i < 8; ++i) {
    auto result =
        service.Execute(MakeRequest("a", "ds", CountQuery(2000), 10 + i));
    if (result.ok()) {
      ++ok_count;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    }
  }
  Failpoints::Instance().DeactivateAll();
  EXPECT_EQ(ok_count, 4u);  // every(2): exactly half the runs fail
  EXPECT_NEAR(service.accountant().Spent("ds"), 0.05 * ok_count, 1e-9);
  EXPECT_EQ(service.DebugState("ds").registry.size(), ok_count);
  EXPECT_TRUE(service.accountant().VerifyConservation().ok());
}

// The tentpole scenario: several crash-free service generations under a
// seeded fault schedule, each followed by a restart from the journal.
// Every generation asserts conservation; every restart asserts the
// recovered registry/ledger is bit-identical to the pre-shutdown state.
TEST_F(ChaosTest, SeededFaultScheduleSurvivesRestarts) {
  constexpr uint64_t kSeed = 20260806;
  const std::vector<std::string> datasets = {"dsA", "dsB"};
  std::map<std::string, size_t> expected_registry;
  std::map<std::string, UpaService::DatasetDurableDebug> before_restart;

  ServiceConfig config = FastConfig();
  config.journal_dir = dir_;

  for (int round = 0; round < 3; ++round) {
    UpaService service(&Ctx(), config);
    ASSERT_TRUE(service.recovery_status().ok())
        << service.recovery_status().ToString();

    // Restart check: the fresh service must agree bit-for-bit with the
    // state captured just before the previous generation shut down.
    for (const auto& [id, expected] : before_restart) {
      UpaService::DatasetDurableDebug recovered = service.DebugState(id);
      EXPECT_EQ(recovered.epoch, expected.epoch) << id;
      ExpectRegistryBitIdentical(recovered.registry, expected.registry);
      EXPECT_EQ(recovered.budget.charged_total, expected.budget.charged_total)
          << id;
      EXPECT_EQ(recovered.budget.refunded_total,
                expected.budget.refunded_total)
          << id;
      EXPECT_NEAR(recovered.budget.spent, expected.budget.spent, 1e-9) << id;
    }

    // Seeded fault schedule for this round: phase errors with a seeded
    // probability, deterministic every-N enforcement faults, and latency
    // injection in the service and pool. Bit-reproducible from kSeed.
    uint64_t seed = kSeed + static_cast<uint64_t>(round) * 1000;
    ASSERT_TRUE(Failpoints::Instance()
                    .Activate("upa/phase_map", "error(internal,chaos-map):"
                                               "prob(0.3," +
                                                   std::to_string(seed) + ")")
                    .ok());
    ASSERT_TRUE(Failpoints::Instance()
                    .Activate("upa/phase_enforce", "error(internal):every(5)")
                    .ok());
    ASSERT_TRUE(Failpoints::Instance()
                    .Activate("service/run",
                              "delay(1):prob(0.4," + std::to_string(seed + 1) +
                                  ")")
                    .ok());
    ASSERT_TRUE(Failpoints::Instance()
                    .Activate("threadpool/task",
                              "delay(0.2):prob(0.05," +
                                  std::to_string(seed + 2) + ")")
                    .ok());

    std::vector<std::pair<std::string, std::future<Result<QueryResponse>>>>
        futures;
    for (int i = 0; i < 12; ++i) {
      const std::string& dataset = datasets[i % datasets.size()];
      QueryRequest request = MakeRequest(
          "tenant" + std::to_string(i % 3), dataset,
          CountQuery(2000, "count-" + dataset),
          seed + static_cast<uint64_t>(i));
      if (i % 5 == 4) request.deadline_ms = 2000;  // generous: exercises the
                                                   // deadline plumbing only
      futures.emplace_back(dataset, service.Submit(std::move(request)));
    }
    for (auto& [dataset, future] : futures) {
      auto result = future.get();
      if (result.ok()) ++expected_registry[dataset];
    }
    Failpoints::Instance().DeactivateAll();

    // Cover the epoch-bump record once.
    if (round == 1) service.BumpEpoch("dsA");

    // Invariants while the generation is still alive.
    ASSERT_TRUE(service.accountant().VerifyConservation().ok());
    for (const auto& id : datasets) {
      UpaService::DatasetDurableDebug debug = service.DebugState(id);
      EXPECT_EQ(debug.registry.size(), expected_registry[id]) << id;
      EXPECT_NEAR(debug.budget.spent, 0.05 * expected_registry[id], 1e-9)
          << id;
      before_restart[id] = std::move(debug);
    }
  }

  // One final cold start over everything the schedule left behind.
  UpaService final_service(&Ctx(), config);
  ASSERT_TRUE(final_service.recovery_status().ok());
  ASSERT_TRUE(final_service.accountant().VerifyConservation().ok());
  for (const auto& [id, expected] : before_restart) {
    UpaService::DatasetDurableDebug recovered = final_service.DebugState(id);
    ExpectRegistryBitIdentical(recovered.registry, expected.registry);
    EXPECT_EQ(recovered.budget.charged_total, expected.budget.charged_total);
    EXPECT_EQ(recovered.budget.refunded_total, expected.budget.refunded_total);
  }
}

// Faults on the journal's own append path: the in-memory ledger and the
// durable state must agree (up to float re-association) whichever side of
// the append the error lands on.
TEST_F(ChaosTest, JournalAppendFaultsKeepDiskAndMemoryConsistent) {
  ServiceConfig config = FastConfig();
  config.journal_dir = dir_;
  std::map<std::string, dp::BudgetCheckpoint> live;
  {
    UpaService service(&Ctx(), config);
    ASSERT_TRUE(Failpoints::Instance()
                    .Activate("journal/before_append",
                              "error(internal,journal-chaos):prob(0.25,99)")
                    .ok());
    for (int i = 0; i < 10; ++i) {
      // Outcomes vary (some appends fail → query fails + refund); every
      // path must keep both ledgers consistent.
      (void)service.Execute(
          MakeRequest("a", "ds", CountQuery(2000), 100 + i));
    }
    Failpoints::Instance().DeactivateAll();
    ASSERT_TRUE(service.accountant().VerifyConservation().ok());
    live["ds"] = service.DebugState("ds").budget;
  }
  UpaService recovered(&Ctx(), config);
  ASSERT_TRUE(recovered.recovery_status().ok());
  ASSERT_TRUE(recovered.accountant().VerifyConservation().ok());
  // A failed charge-append refunds in memory but journals nothing, so the
  // cumulative totals may legitimately differ — the live balance must not.
  EXPECT_NEAR(recovered.DebugState("ds").budget.spent, live["ds"].spent,
              1e-9);
}

// Crash-and-recover: the child process aborts inside the journal append
// (after the record is durable); the parent then recovers from the same
// journal dir and must see exactly the acknowledged state.
using ServiceCrashDeathTest = ChaosTest;

TEST_F(ServiceCrashDeathTest, AbortAfterChargeAppendRecoversWithRefund) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  std::string dir = dir_;
  EXPECT_DEATH(
      {
        // threadsafe style re-execs the binary: the child gets its own
        // Ctx() with live pool threads.
        ServiceConfig config = FastConfig();
        config.journal_dir = dir;
        UpaService service(&Ctx(), config);
        // Journal appends for a fresh dataset: kOpen (hit 1), kCharge
        // (hit 2) — abort right after the charge is durable.
        Failpoints::Instance().Activate(
            "journal/after_append",
            Failpoints::Spec{.action = Failpoints::Action::kAbort,
                             .trigger = Failpoints::Trigger::kEveryN,
                             .every_n = 2});
        (void)service.Execute(MakeRequest("a", "ds", CountQuery(2000)));
      },
      "injected abort");

  // Parent: the journal holds kOpen + a dangling charge. Recovery refunds
  // it exactly once; nothing was released, nothing registers.
  ServiceConfig config = FastConfig();
  config.journal_dir = dir;
  UpaService service(&Ctx(), config);
  ASSERT_TRUE(service.recovery_status().ok())
      << service.recovery_status().ToString();
  UpaService::DatasetDurableDebug debug = service.DebugState("ds");
  EXPECT_EQ(debug.registry.size(), 0u);
  EXPECT_DOUBLE_EQ(debug.budget.charged_total, 0.05);
  EXPECT_DOUBLE_EQ(debug.budget.refunded_total, 0.05);
  EXPECT_DOUBLE_EQ(debug.budget.spent, 0.0);
  EXPECT_TRUE(service.accountant().VerifyConservation().ok());
}

TEST_F(ServiceCrashDeathTest, AbortAfterReleaseAppendRecoversTheRelease) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  std::string dir = dir_;
  EXPECT_DEATH(
      {
        ServiceConfig config = FastConfig();
        config.journal_dir = dir;
        UpaService service(&Ctx(), config);
        // kOpen (1), kCharge (2), kRelease (3): the release is durable,
        // the crash hits before the response resolves.
        Failpoints::Instance().Activate(
            "journal/after_append",
            Failpoints::Spec{.action = Failpoints::Action::kAbort,
                             .trigger = Failpoints::Trigger::kEveryN,
                             .every_n = 3});
        (void)service.Execute(MakeRequest("a", "ds", CountQuery(2000)));
      },
      "injected abort");

  // The release record is on disk, so the query's charge sticks and its
  // partition outputs are in the registry — an acknowledged-release crash
  // loses nothing.
  ServiceConfig config = FastConfig();
  config.journal_dir = dir;
  UpaService service(&Ctx(), config);
  ASSERT_TRUE(service.recovery_status().ok());
  UpaService::DatasetDurableDebug debug = service.DebugState("ds");
  EXPECT_EQ(debug.registry.size(), 1u);
  EXPECT_DOUBLE_EQ(debug.budget.charged_total, 0.05);
  EXPECT_DOUBLE_EQ(debug.budget.refunded_total, 0.0);
  EXPECT_DOUBLE_EQ(debug.budget.spent, 0.05);
  EXPECT_TRUE(service.accountant().VerifyConservation().ok());
}

TEST_F(ServiceCrashDeathTest, AbortBetweenFlushAndFsyncConservesEitherWay) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  std::string dir = dir_;
  EXPECT_DEATH(
      {
        ServiceConfig config = FastConfig();
        config.journal_dir = dir;
        UpaService service(&Ctx(), config);
        // before_sync fires once per append with journal_fsync on: kOpen
        // (hit 1), kCharge (hit 2). Abort at hit 2 — the charge frame has
        // reached the kernel but fdatasync has not run, the exact window
        // the durability fix closes.
        Failpoints::Instance().Activate(
            "journal/before_sync",
            Failpoints::Spec{.action = Failpoints::Action::kAbort,
                             .trigger = Failpoints::Trigger::kEveryN,
                             .every_n = 2});
        (void)service.Execute(MakeRequest("a", "ds", CountQuery(2000)));
      },
      "injected abort");

  // Whether the unsynced frame survived is a property of the crash (an
  // abort keeps the page cache; power loss may not). The contract is
  // weaker than after_append's — nothing was acknowledged, so recovery
  // only has to conserve: no release registered, no budget spent, every
  // charge that did land refunded.
  ServiceConfig config = FastConfig();
  config.journal_dir = dir;
  UpaService service(&Ctx(), config);
  ASSERT_TRUE(service.recovery_status().ok())
      << service.recovery_status().ToString();
  UpaService::DatasetDurableDebug debug = service.DebugState("ds");
  EXPECT_EQ(debug.registry.size(), 0u);
  EXPECT_DOUBLE_EQ(debug.budget.spent, 0.0);
  EXPECT_DOUBLE_EQ(debug.budget.charged_total, debug.budget.refunded_total);
  EXPECT_TRUE(service.accountant().VerifyConservation().ok());
}

TEST_F(ServiceCrashDeathTest, AbortBeforeSnapshotRenameKeepsOldStateIntact) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  std::string dir = dir_;
  // Seed: one acknowledged release, journaled and fsynced.
  {
    ServiceConfig config = FastConfig();
    config.journal_dir = dir;
    UpaService service(&Ctx(), config);
    auto response = service.Execute(MakeRequest("a", "ds", CountQuery(2000)));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  EXPECT_DEATH(
      {
        // Recovery compacts, which writes the snapshot via tmp-file +
        // rename. snapshot_sync sits after the tmp fsync, before the
        // rename — abort there models a crash mid-compaction: the tmp is
        // complete but unpublished.
        Failpoints::Instance().Activate(
            "journal/snapshot_sync",
            Failpoints::Spec{.action = Failpoints::Action::kAbort,
                             .trigger = Failpoints::Trigger::kEveryN,
                             .every_n = 1});
        ServiceConfig config = FastConfig();
        config.journal_dir = dir;
        UpaService service(&Ctx(), config);
      },
      "injected abort");

  // The crash left a stray .tmp and the ORIGINAL journal/snapshot pair
  // untouched (the rename never ran). A second recovery must see exactly
  // the acknowledged state and ignore the leftover tmp.
  ServiceConfig config = FastConfig();
  config.journal_dir = dir;
  UpaService service(&Ctx(), config);
  ASSERT_TRUE(service.recovery_status().ok())
      << service.recovery_status().ToString();
  UpaService::DatasetDurableDebug debug = service.DebugState("ds");
  EXPECT_EQ(debug.registry.size(), 1u);
  EXPECT_DOUBLE_EQ(debug.budget.charged_total, 0.05);
  EXPECT_DOUBLE_EQ(debug.budget.refunded_total, 0.0);
  EXPECT_DOUBLE_EQ(debug.budget.spent, 0.05);
  EXPECT_TRUE(service.accountant().VerifyConservation().ok());
}

}  // namespace
}  // namespace upa::service
