file(REMOVE_RECURSE
  "libupa_mlkit.a"
)
