// The paper's threat model (§III), played out: an analyst who knows a
// victim's attribute values repeatedly submits the same counting query on
// neighbouring datasets (with/without the victim), hoping the output
// difference reveals whether the victim is present.
//
// Two defenses act together:
//   1. the RANGE ENFORCER recognizes the repeat on a neighbouring input
//      (partition outputs collide) and removes records to break
//      neighbourhood before answering;
//   2. Laplace noise calibrated to the inferred sensitivity hides the
//      ±1 signal in any single answer.
// The attack is measured empirically: the attacker's best guess accuracy
// over many trials should stay near coin-flipping.
#include <cstdio>
#include <vector>

#include "upa/runner.h"
#include "upa/simple_query.h"

using namespace upa;

namespace {

/// Builds the attacker's counting query over `records`.
core::QueryInstance CountQuery(engine::ExecContext* ctx,
                               std::shared_ptr<std::vector<int>> records) {
  core::SimpleQuerySpec<int> spec;
  spec.name = "attack-count";
  spec.ctx = ctx;
  spec.records = records;
  spec.map_record = [](const int&) { return core::Vec{1.0}; };
  spec.sample_domain = [](Rng& rng) {
    return static_cast<int>(rng.UniformU64(1 << 20));
  };
  return core::MakeSimpleQuery(std::move(spec));
}

}  // namespace

int main() {
  engine::ExecContext ctx;
  const size_t kN = 20000;
  const int kTrials = 60;

  core::UpaConfig cfg;
  cfg.sample_n = 500;
  cfg.epsilon = 0.1;

  int correct_guesses = 0;
  size_t enforcer_interventions = 0;
  Rng coin(99);

  for (int trial = 0; trial < kTrials; ++trial) {
    // Fresh UPA deployment per trial; the attacker gets TWO queries: one
    // on the dataset x, one on x ± victim (the neighbouring dataset).
    core::UpaRunner runner(cfg);
    Rng data_rng(1000 + trial);
    auto base = std::make_shared<std::vector<int>>(kN);
    for (auto& v : *base) v = static_cast<int>(data_rng.UniformU64(1 << 20));

    bool victim_present = coin.Bernoulli(0.5);
    auto with_or_without = std::make_shared<std::vector<int>>(*base);
    if (victim_present) with_or_without->push_back(424242);  // the victim

    auto first = runner.Run(CountQuery(&ctx, base), 5000 + trial);
    auto second = runner.Run(CountQuery(&ctx, with_or_without), 5000 + trial);
    if (!first.ok() || !second.ok()) {
      std::fprintf(stderr, "trial %d failed\n", trial);
      return 1;
    }
    if (second.value().enforcer.attack_suspected) ++enforcer_interventions;

    // Attacker's best strategy: guess "present" if the second noisy answer
    // exceeds the first by at least 0.5.
    bool guess =
        second.value().released_output - first.value().released_output > 0.5;
    if (guess == victim_present) ++correct_guesses;
  }

  double accuracy = static_cast<double>(correct_guesses) / kTrials;
  std::printf("Repeated-query attack on a count (%d trials, eps=%.1f):\n",
              kTrials, cfg.epsilon);
  std::printf("  enforcer flagged the repeat in %zu/%d trials\n",
              enforcer_interventions, kTrials);
  std::printf("  attacker guess accuracy: %.1f%%  (50%% = blind guessing; "
              "the +-1 signal is buried under Lap(sens/eps) noise ~ +-10)\n",
              accuracy * 100.0);
  std::printf("  %s\n", accuracy < 0.65
                            ? "defense holds: presence of one record is not "
                              "inferable from the releases"
                            : "WARNING: attack accuracy unexpectedly high");

  // Contrast: without DP the same two answers identify the victim with
  // certainty.
  std::printf("\nWithout UPA, |f(x') - f(x)| = 1 exactly -> the attacker "
              "wins every time.\n");
  return 0;
}
