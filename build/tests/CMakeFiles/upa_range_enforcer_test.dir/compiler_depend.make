# Empty compiler generated dependencies file for upa_range_enforcer_test.
# This may be replaced when dependencies are built.
