#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace upa {
namespace {

uint64_t HashName(std::string_view name) {
  // FNV-1a 64-bit over the stream name.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng Rng::ForStream(uint64_t seed, std::string_view name) {
  SplitMix64 mixer(seed ^ HashName(name));
  uint64_t s = mixer.Next();
  uint64_t stream = mixer.Next();
  return Rng(s, stream);
}

uint64_t Rng::UniformU64(uint64_t n) {
  UPA_CHECK_MSG(n > 0, "UniformU64 requires n > 0");
  // Rejection sampling on the top of the range to remove modulo bias.
  uint64_t threshold = (~uint64_t{0} - n + 1) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  UPA_CHECK_MSG(lo <= hi, "UniformInt requires lo <= hi");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 random bits → [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal(double mean, double stddev) {
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Laplace(double scale) {
  UPA_CHECK_MSG(scale >= 0.0, "Laplace scale must be non-negative");
  if (scale == 0.0) return 0.0;
  double u = UniformDouble() - 0.5;  // (-0.5, 0.5)
  double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double Rng::Exponential(double rate) {
  UPA_CHECK_MSG(rate > 0.0, "Exponential rate must be positive");
  return -std::log(1.0 - UniformDouble()) / rate;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  UPA_CHECK_MSG(n > 0, "Zipf requires n > 0");
  if (s <= 0.0) return 1 + UniformU64(n);
  // Inverse transform on the approximate harmonic CDF (integral form).
  // Accurate enough for generating skewed workloads.
  double u = UniformDouble();
  if (s == 1.0) {
    double hn = std::log(static_cast<double>(n)) + 1.0;
    double target = u * hn;
    double k = std::exp(target - 1.0);
    uint64_t r = static_cast<uint64_t>(k);
    return std::min<uint64_t>(std::max<uint64_t>(r, 1), n);
  }
  double one_minus_s = 1.0 - s;
  double hn = (std::pow(static_cast<double>(n), one_minus_s) - 1.0) /
                  one_minus_s +
              1.0;
  double target = u * hn;
  double k = std::pow(target * one_minus_s + 1.0, 1.0 / one_minus_s);
  if (!std::isfinite(k) || k < 1.0) return 1;
  uint64_t r = static_cast<uint64_t>(k);
  return std::min<uint64_t>(std::max<uint64_t>(r, 1), n);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  UPA_CHECK_MSG(k <= n, "cannot sample more items than the population");
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t or j.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformU64(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace upa
