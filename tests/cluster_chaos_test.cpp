// Cross-PROCESS chaos for the cluster: real fork/exec'd upa_shard binaries
// (UPA_SHARD_BIN, planted by CMake), SIGKILLed at the worst moments, then
// restarted over the same journal dir.
//
// The two properties under test are the cluster's whole durability story:
//   1. Kill-mid-release conservation: a shard SIGKILLed while a query is
//      executing must recover to EXACTLY the acknowledged state — the
//      in-flight query's charge is refunded by journal recovery, released
//      bits for subsequent queries match a never-killed control shard, and
//      the budget arithmetic proves no charge leaked (a leak would flip a
//      later admission decision, which the test drives to the edge).
//   2. Acknowledged-append durability: with journal fsync on, a SIGKILL
//      immediately after Append returns Ok (the journal/after_append abort
//      failpoint, which now fires AFTER fdatasync) must never lose the
//      appended record — observable as a journaled-but-unacknowledged
//      release still holding its budget charge after restart.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "cluster/shard_process.h"
#include "net/client.h"
#include "service/journal.h"

#ifndef UPA_SHARD_BIN
#error "UPA_SHARD_BIN must point at the upa_shard binary"
#endif
#ifndef UPA_ROUTER_BIN
#error "UPA_ROUTER_BIN must point at the upa_router binary"
#endif

namespace upa::cluster {
namespace {

namespace fs = std::filesystem;

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 15000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

class ClusterChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmp[] = "/tmp/upa-cluster-chaos-XXXXXX";
    ASSERT_NE(::mkdtemp(tmp), nullptr);
    dir_ = tmp;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  ShardProcessSpec ShardSpec(uint16_t port, const std::string& journal_dir,
                             double budget,
                             std::vector<std::string> env = {}) {
    ShardProcessSpec spec;
    spec.binary = UPA_SHARD_BIN;
    spec.args = {"--port",      std::to_string(port),
                 "--journal-dir", journal_dir,
                 "--threads",   "1",
                 "--sample-n",  "16",
                 "--budget",    std::to_string(budget)};
    spec.env = std::move(env);
    return spec;
  }

  static net::WireQuery MakeQuery(const std::string& dataset,
                                  const std::string& sql, uint64_t seed) {
    net::WireQuery query;
    query.tenant = "chaos";
    query.dataset_id = dataset;
    query.epsilon = 0.1;
    query.seed = seed;
    query.sql = sql;
    return query;
  }

  /// Connects directly to a shard, retrying while it boots/replays.
  static std::unique_ptr<net::Client> DialShard(uint16_t port) {
    for (int i = 0; i < 15000; ++i) {
      auto connected = net::Client::Connect("127.0.0.1", port, 1000);
      if (connected.ok()) return std::move(connected).value();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return nullptr;
  }

  std::string dir_;
};

TEST_F(ClusterChaosTest, KillMidReleaseRecoversBitIdenticalToControl) {
  // Budget arithmetic as the conservation oracle (epsilon 0.1/query,
  // budget 0.65): phase 1 spends 0.4 on both shards. The victim's killed
  // in-flight query charges 0.1 more (0.5 durable) — recovery MUST refund
  // it, or phase 3's two queries (0.2) would blow the budget at 0.7 and
  // the final admission would flip to OUT_OF_RANGE.
  const double kBudget = 0.65;
  auto victim_port = PickFreePort();
  auto control_port = PickFreePort();
  ASSERT_TRUE(victim_port.ok() && control_port.ok());

  ShardSupervisor::Options opts;
  opts.auto_restart = false;  // the test controls restart timing
  ShardSupervisor supervisor(opts);
  auto victim = supervisor.Launch(
      ShardSpec(victim_port.value(), dir_ + "/victim", kBudget));
  auto control = supervisor.Launch(
      ShardSpec(control_port.value(), dir_ + "/control", kBudget));
  ASSERT_TRUE(victim.ok()) << victim.status().ToString();
  ASSERT_TRUE(control.ok()) << control.status().ToString();

  RouterConfig router_cfg;
  router_cfg.backoff_initial_ms = 5.0;
  router_cfg.backoff_max_ms = 100.0;
  std::vector<ShardAddress> addrs = {{"127.0.0.1", victim_port.value()}};
  Router router(addrs, router_cfg);
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return router.ShardHealthy(0); }));

  auto via_router = net::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(via_router.ok());
  std::unique_ptr<net::Client> victim_client = std::move(via_router).value();
  std::unique_ptr<net::Client> control_client =
      DialShard(control_port.value());
  ASSERT_NE(control_client, nullptr);

  // Phase 1: identical prefix on both shards; released bits must agree.
  for (uint64_t q = 0; q < 4; ++q) {
    auto v = victim_client->Query(MakeQuery("x", "count:500", 100 + q));
    auto c = control_client->Query(MakeQuery("x", "count:500", 100 + q));
    ASSERT_TRUE(v.ok() && c.ok());
    ASSERT_TRUE(v.value().ok()) << v.value().status().ToString();
    ASSERT_TRUE(c.value().ok()) << c.value().status().ToString();
    EXPECT_DOUBLE_EQ(v.value().response.released, c.value().response.released)
        << "prefix query " << q;
  }

  // Phase 2: a slow query on the victim, SIGKILL while it is executing.
  auto tag = victim_client->Send(MakeQuery("x", "lat:8:2000000", 777));
  ASSERT_TRUE(tag.ok());
  ASSERT_TRUE(WaitFor([&] { return router.stats().routed >= 5; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // mid-sleep
  ASSERT_TRUE(supervisor.Kill(victim.value(), SIGKILL).ok());
  auto failed = victim_client->Await(tag.value());
  ASSERT_TRUE(failed.ok()) << failed.status().ToString();
  EXPECT_EQ(failed.value().code, StatusCode::kUnavailable);
  EXPECT_GE(router.stats().failed_over_inflight, 1u);

  // Phase 3: restart over the same journal; the router's health probe
  // only passes once replay finished.
  ASSERT_TRUE(WaitFor([&] { return !supervisor.Alive(victim.value()); }));
  ASSERT_TRUE(supervisor.Respawn(victim.value()).ok());
  ASSERT_TRUE(WaitFor([&] { return router.ShardHealthy(0); }));

  // Same suffix on both (the control never saw the killed query at all —
  // its charge must have vanished from the victim too).
  for (uint64_t q = 0; q < 2; ++q) {
    auto v = victim_client->Query(MakeQuery("x", "count:600", 200 + q));
    auto c = control_client->Query(MakeQuery("x", "count:600", 200 + q));
    ASSERT_TRUE(v.ok() && c.ok());
    ASSERT_TRUE(v.value().ok())
        << "suffix query " << q
        << " rejected on the recovered shard — the killed query's charge "
           "leaked: "
        << v.value().status().ToString();
    ASSERT_TRUE(c.value().ok()) << c.value().status().ToString();
    EXPECT_DOUBLE_EQ(v.value().response.released, c.value().response.released)
        << "suffix query " << q;
  }

  // Both shards now sit at 0.6 of 0.65: one more 0.1 query must be
  // rejected on BOTH for the same reason (OUT_OF_RANGE, not a mismatch).
  auto v_edge = victim_client->Query(MakeQuery("x", "count:600", 999));
  auto c_edge = control_client->Query(MakeQuery("x", "count:600", 999));
  ASSERT_TRUE(v_edge.ok() && c_edge.ok());
  EXPECT_EQ(v_edge.value().code, StatusCode::kOutOfRange)
      << v_edge.value().message;
  EXPECT_EQ(c_edge.value().code, StatusCode::kOutOfRange)
      << c_edge.value().message;

  router.Stop();
  supervisor.StopAll();
}

TEST_F(ClusterChaosTest, SigkillRightAfterDurableAppendLosesNothing) {
  // The shard aborts at journal/after_append hit 3 — kOpen(1), kCharge(2),
  // kRelease(3) — i.e. immediately after the RELEASE record's fdatasync
  // returned, before any response is sent. The restarted shard must treat
  // that release as fully committed: its charge sticks (0.2 spent), so a
  // third 0.1 query over a 0.25 budget is rejected. Losing the record
  // would leave 0.1 spent and admit it.
  const double kBudget = 0.25;
  auto port = PickFreePort();
  ASSERT_TRUE(port.ok());

  ShardSupervisor::Options opts;
  opts.auto_restart = false;
  ShardSupervisor supervisor(opts);
  auto crashy = supervisor.Launch(ShardSpec(
      port.value(), dir_ + "/j", kBudget,
      {"UPA_FAILPOINTS=journal/after_append=abort:every(3)"}));
  ASSERT_TRUE(crashy.ok()) << crashy.status().ToString();

  std::unique_ptr<net::Client> client = DialShard(port.value());
  ASSERT_NE(client, nullptr);

  // Query 1 commits appends 1 (kOpen) and 2 (kCharge)... and would hit 3
  // (its own kRelease)! Order the workload so the abort lands exactly on
  // the first query's release append: that query is never acknowledged,
  // yet its release must survive.
  auto q1 = client->Query(MakeQuery("x", "count:500", 1));
  // The process died after syncing the release: the client sees a
  // transport-level failure, never a response.
  ASSERT_FALSE(q1.ok() && q1.value().ok());
  ASSERT_TRUE(WaitFor([&] { return !supervisor.Alive(crashy.value()); }));

  // Restart WITHOUT the failpoint, same journal dir, same port.
  auto stable = supervisor.Launch(ShardSpec(port.value(), dir_ + "/j",
                                            kBudget));
  ASSERT_TRUE(stable.ok()) << stable.status().ToString();
  client = DialShard(port.value());
  ASSERT_NE(client, nullptr);

  // The unacknowledged-but-durable release holds 0.1. One more query fits
  // (0.2 of 0.25)...
  auto q2 = client->Query(MakeQuery("x", "count:500", 2));
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  ASSERT_TRUE(q2.value().ok()) << q2.value().status().ToString();
  // ...and the third must be rejected. If the synced append had been lost,
  // the ledger would hold only q2's 0.1 and this would be admitted.
  auto q3 = client->Query(MakeQuery("x", "count:500", 3));
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  EXPECT_EQ(q3.value().code, StatusCode::kOutOfRange) << q3.value().message;

  supervisor.StopAll();
}

/// Minimal scriptable shard impostor: a raw TCP listener that answers the
/// router's health probes like a real shard, but can be told to answer the
/// next query with a BOGUS router tag — the stale-reply poisoning case the
/// router must treat as link death, not deliver to some other client.
class FakeShard {
 public:
  FakeShard() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                            &len),
              0);
    port_ = ntohs(bound.sin_port);
    serve_ = std::thread([this] { Serve(); });
  }
  ~FakeShard() {
    stop_.store(true, std::memory_order_release);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (serve_.joinable()) serve_.join();
  }

  uint16_t port() const { return port_; }

  /// Answer the next query with a wrong tag (one-shot).
  std::atomic<bool> poison_next_query{true};
  std::atomic<int> honest_answers{0};

 private:
  void Serve() {
    while (!stop_.load(std::memory_order_acquire)) {
      int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      HandleConn(conn);
      ::close(conn);
    }
  }

  static void SendAll(int fd, const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<size_t>(n);
    }
  }

  void HandleConn(int conn) {
    net::FrameAssembler assembler;
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n <= 0) return;
      assembler.Feed(std::string_view(buf, static_cast<size_t>(n)));
      for (;;) {
        net::Frame frame;
        Status error = Status::Ok();
        auto outcome = assembler.Next(&frame, &error);
        if (outcome == net::FrameAssembler::Outcome::kError) return;
        if (outcome == net::FrameAssembler::Outcome::kNeedMore) break;
        if (frame.type == net::FrameType::kStatsRequest) {
          SendAll(conn, net::EncodeStatsResponseFrame("fake shard"));
        } else if (frame.type == net::FrameType::kQueryRequest) {
          net::WireQuery query;
          if (!net::DecodeQueryPayload(frame.payload, &query).ok()) return;
          net::WireResult result;
          if (poison_next_query.exchange(false)) {
            result.client_tag = query.client_tag + 0x1000;
          } else {
            result.client_tag = query.client_tag;
            honest_answers.fetch_add(1, std::memory_order_relaxed);
          }
          SendAll(conn, net::EncodeResultFrame(result));
        }
      }
    }
  }

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread serve_;
};

TEST_F(ClusterChaosTest, StaleShardReplyPoisonsLinkAndKeyedQueryRetries) {
  // A shard answering with a tag nothing is waiting for means the link
  // stream is desynchronized: the router must kill the link (never deliver
  // the stale bytes to some client), redial, and — because the in-flight
  // query carried an idempotency key — re-send it after the probe passes.
  FakeShard fake;
  RouterConfig cfg;
  cfg.backoff_initial_ms = 5.0;
  cfg.backoff_max_ms = 50.0;
  Router router({{"127.0.0.1", fake.port()}}, cfg);
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return router.ShardHealthy(0); }));

  std::unique_ptr<net::Client> client = DialShard(router.port());
  ASSERT_NE(client, nullptr);
  // net::Client stamps the idempotency key automatically — the retry
  // machinery needs nothing from the caller.
  auto result = client->Query(MakeQuery("x", "count:100", 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().ok()) << result.value().message;
  EXPECT_GE(fake.honest_answers.load(), 1);
  const Router::Stats stats = router.stats();
  EXPECT_GE(stats.shard_reconnects, 1u);
  EXPECT_GE(stats.retried, 1u);
  router.Stop();
}

TEST_F(ClusterChaosTest, RouterDeathLeavesShardsServingAndReplayable) {
  // SIGKILL the ROUTER while a keyed query is executing on the shard. The
  // shard must shrug off the dead connection (drain cleanly, keep
  // serving), finish the release exactly once, and answer a direct
  // re-submission of the same key with the journaled response.
  auto shard_port = PickFreePort();
  auto router_port = PickFreePort();
  ASSERT_TRUE(shard_port.ok() && router_port.ok());

  ShardSupervisor::Options opts;
  opts.auto_restart = false;
  ShardSupervisor supervisor(opts);
  auto shard = supervisor.Launch(
      ShardSpec(shard_port.value(), dir_ + "/j", 1.0));
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();

  ShardProcessSpec router_spec;
  router_spec.binary = UPA_ROUTER_BIN;
  router_spec.args = {std::to_string(router_port.value()),
                      "127.0.0.1:" + std::to_string(shard_port.value())};
  auto router = supervisor.Launch(std::move(router_spec));
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // The router only forwards once its health probe passed; retry until a
  // cheap probe query goes through end to end.
  std::unique_ptr<net::Client> client;
  ASSERT_TRUE(WaitFor([&] {
    client = DialShard(router_port.value());
    if (client == nullptr) return false;
    auto probe = client->Query(MakeQuery("warm", "count:100", 1), 2000);
    return probe.ok() && probe.value().ok();
  }));

  // A slow keyed query: ~1s of shard-side latency leaves a wide window to
  // kill the router mid-forward.
  net::WireQuery slow = MakeQuery("x", "lat:100:1000000", 2);
  slow.client_nonce = 0xfeedface;
  slow.client_seq = 42;
  auto tag = client->Send(slow);
  ASSERT_TRUE(tag.ok()) << tag.status().ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // mid-run
  ASSERT_TRUE(supervisor.Kill(router.value(), SIGKILL).ok());
  // The client loses its transport — the query outcome is unknown to it.
  auto lost = client->Await(tag.value(), 5000);
  EXPECT_FALSE(lost.ok() && lost.value().ok());

  // The shard survives its peer's death: dial it DIRECTLY and re-submit
  // the same key. Depending on timing the shard either finished the
  // release after the router died (retry replays it) or cancelled and
  // REFUNDED the orphaned query when the router's connection dropped
  // (retry runs fresh, as the first and only execution). Both are
  // exactly-once; the journal check below pins it.
  std::unique_ptr<net::Client> direct = DialShard(shard_port.value());
  ASSERT_NE(direct, nullptr);
  auto retried = direct->Query(slow, /*timeout_ms=*/30000);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  ASSERT_TRUE(retried.value().ok()) << retried.value().message;

  // Now that the key HAS completed, one more re-submission must be a
  // dedup replay — byte-identical payload, no execution, no charge.
  auto replay = direct->Query(slow, /*timeout_ms=*/30000);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_TRUE(replay.value().ok()) << replay.value().message;
  EXPECT_EQ(replay.value().response.released,
            retried.value().response.released);

  // Exactly one kRelease for the key in the append-only journal.
  const std::string journal_path =
      dir_ + "/j/" + service::Journal::FileStem("x") + ".journal";
  auto records = service::Journal::ReadAll(journal_path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  int releases = 0;
  for (const service::JournalRecord& rec : records.value()) {
    if (rec.type == service::JournalRecord::Type::kRelease &&
        rec.nonce == slow.client_nonce && rec.key_seq == slow.client_seq) {
      ++releases;
    }
  }
  EXPECT_EQ(releases, 1);

  // The shard's own stats agree at least the last re-submission replayed
  // (two replays if the original beat the disconnect-cancel to release).
  auto stats = direct->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.value().find("dedup_replays=1") != std::string::npos ||
              stats.value().find("dedup_replays=2") != std::string::npos)
      << stats.value();

  supervisor.StopAll();
}

TEST_F(ClusterChaosTest, SupervisorAutoRestartsKilledShard) {
  auto port = PickFreePort();
  ASSERT_TRUE(port.ok());
  ShardSupervisor::Options opts;
  opts.backoff_initial_ms = 10.0;
  ShardSupervisor supervisor(opts);  // auto_restart on
  auto slot = supervisor.Launch(ShardSpec(port.value(), dir_ + "/j", 1e9));
  ASSERT_TRUE(slot.ok());

  std::unique_ptr<net::Client> client = DialShard(port.value());
  ASSERT_NE(client, nullptr);
  auto before = client->Query(MakeQuery("x", "count:300", 1));
  ASSERT_TRUE(before.ok() && before.value().ok());

  const pid_t first_pid = supervisor.PidOf(slot.value());
  ASSERT_TRUE(supervisor.Kill(slot.value(), SIGKILL).ok());
  ASSERT_TRUE(WaitFor([&] {
    const pid_t pid = supervisor.PidOf(slot.value());
    return pid > 0 && pid != first_pid;
  }));
  EXPECT_GE(supervisor.Restarts(slot.value()), 1u);

  client = DialShard(port.value());
  ASSERT_NE(client, nullptr);
  auto after = client->Query(MakeQuery("x", "count:300", 2));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after.value().ok()) << after.value().status().ToString();
  supervisor.StopAll();
}

}  // namespace
}  // namespace upa::cluster
