#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/env.h"
#include "common/status.h"

namespace upa {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  UPA_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  UPA_CHECK_MSG(cells.size() == headers_.size(),
                "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FormatScientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string TablePrinter::FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += quote(headers_[c]);
    out += (c + 1 < headers_.size()) ? "," : "\n";
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += quote(row[c]);
      out += (c + 1 < row.size()) ? "," : "\n";
    }
  }
  return out;
}

void TablePrinter::Print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), ToString().c_str());
  // UPA_CSV=1 additionally emits a machine-readable block (for plotting
  // the figures from bench output).
  if (EnvInt("UPA_CSV", 0) != 0) {
    std::printf("--- csv: %s ---\n%s--- end csv ---\n", title.c_str(),
                ToCsv().c_str());
  }
  std::fflush(stdout);
}

}  // namespace upa
