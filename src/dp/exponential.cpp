#include "dp/exponential.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace upa::dp {

size_t ExponentialMechanism(std::span<const double> scores,
                            double score_sensitivity, double epsilon,
                            Rng& rng) {
  UPA_CHECK_MSG(!scores.empty(), "no candidates");
  UPA_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  UPA_CHECK_MSG(score_sensitivity > 0.0,
                "score sensitivity must be positive");
  // Gumbel-max: argmax_i (ε·s_i / (2Δ) + Gumbel(0,1)) samples the
  // exponential-mechanism distribution exactly.
  double best = -std::numeric_limits<double>::infinity();
  size_t best_idx = 0;
  double scale = epsilon / (2.0 * score_sensitivity);
  for (size_t i = 0; i < scores.size(); ++i) {
    double u = rng.UniformDouble();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    double gumbel = -std::log(-std::log(u));
    double keyed = scores[i] * scale + gumbel;
    if (keyed > best) {
      best = keyed;
      best_idx = i;
    }
  }
  return best_idx;
}

std::vector<double> NoisyHistogram(std::span<const double> counts,
                                   double epsilon, Rng& rng) {
  UPA_CHECK_MSG(epsilon > 0.0, "epsilon must be positive");
  std::vector<double> out;
  out.reserve(counts.size());
  for (double c : counts) {
    out.push_back(c + rng.Laplace(1.0 / epsilon));
  }
  return out;
}

double PrivateMedian(std::span<const double> sorted_data,
                     std::span<const double> candidates, double epsilon,
                     Rng& rng) {
  UPA_CHECK_MSG(!sorted_data.empty(), "empty data");
  UPA_CHECK_MSG(!candidates.empty(), "empty candidate domain");
  UPA_CHECK_MSG(std::is_sorted(sorted_data.begin(), sorted_data.end()),
                "data must be sorted");
  double half = static_cast<double>(sorted_data.size()) / 2.0;
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (double c : candidates) {
    // Midpoint of the strict and weak ranks: robust to duplicate-heavy
    // data (a candidate equal to a large duplicate block scores by the
    // block's centre, not its edge).
    double lt = static_cast<double>(
        std::lower_bound(sorted_data.begin(), sorted_data.end(), c) -
        sorted_data.begin());
    double le = static_cast<double>(
        std::upper_bound(sorted_data.begin(), sorted_data.end(), c) -
        sorted_data.begin());
    scores.push_back(-std::fabs((lt + le) / 2.0 - half));
  }
  size_t idx =
      ExponentialMechanism(scores, /*score_sensitivity=*/1.0, epsilon, rng);
  return candidates[idx];
}

}  // namespace upa::dp
