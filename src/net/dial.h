// Non-blocking TCP dial helpers, shared by the blocking Client (which
// starts a connect and polls it to completion) and the cluster router's
// shard links (which keep many connects in flight on one event loop and
// learn the outcome from writability).
//
// The split matches the kernel's state machine: StartConnect() returns a
// non-blocking socket whose three-way handshake may still be in progress;
// once the fd polls writable, FinishConnect() reads SO_ERROR to learn
// whether the handshake succeeded.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace upa::net {

/// Creates a non-blocking TCP socket and initiates a connect to host:port
/// (host must be a numeric IPv4 address). Returns the fd with the connect
/// either already established or in progress; on failure no fd is leaked.
Result<int> StartConnect(const std::string& host, uint16_t port);

/// After `fd` (from StartConnect) polls writable: reports whether the
/// handshake succeeded. Does not close the fd on failure — the caller owns
/// it either way.
Status FinishConnect(int fd);

}  // namespace upa::net
