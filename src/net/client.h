// Blocking client for the UPA wire protocol.
//
// One Client is one TCP connection. Query() writes a kQueryRequest frame
// and reads frames until the response carrying the request's client_tag
// arrives — responses may complete out of submission order, so earlier
// arrivals for other tags are parked and handed to their waiters. A single
// Client is NOT thread-safe; the load generator opens one per worker.
//
// The raw SendBytes/ReadFrame escape hatch exists for the protocol torture
// suites, which need to write deliberately corrupt bytes and observe the
// server's kError frame + close.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.h"

namespace upa::net {

class Client {
 public:
  /// Connect to host:port; fails with kDeadlineExceeded when the connect
  /// does not complete within timeout_ms. Every failure path closes the
  /// socket — a timed-out dial leaks no fd.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 int64_t timeout_ms = 5000);
  /// Wraps an already-connected non-blocking socket (ClientPool, tests).
  /// Takes ownership of `fd`.
  static std::unique_ptr<Client> FromConnectedFd(int fd);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one query and block for ITS response (matched by client_tag; a
  /// tag of 0 is replaced with an auto-assigned unique one). A transport
  /// or timeout failure poisons the connection. A server kError frame is
  /// returned as its Status (the server closes after sending one).
  Result<WireResult> Query(WireQuery query, int64_t timeout_ms = 30000);

  /// Fire a query without waiting; pair with Await(tag). Returns the tag.
  /// A tag already in flight is rejected (kInvalidArgument) — a duplicate
  /// would make the response-to-request matching ambiguous.
  /// A query with client_nonce == 0 is stamped with this connection's
  /// idempotency nonce and the next sequence number, so every request is
  /// retry-safe by default; to retry a request yourself (e.g. across
  /// connections), carry its (client_nonce, client_seq) over explicitly —
  /// the service replays the original response for a completed key.
  Result<uint64_t> Send(WireQuery query);

  /// This connection's idempotency nonce (pair with a seq for manual
  /// cross-connection retries).
  uint64_t client_nonce() const { return client_nonce_; }
  /// Block for the response to a previously Send()t tag. Awaiting a tag
  /// that was never sent (or already delivered) fails immediately.
  Result<WireResult> Await(uint64_t tag, int64_t timeout_ms = 30000);

  /// The server's "/stats" text dump (service report + net counters).
  Result<std::string> Stats(int64_t timeout_ms = 5000);

  /// Raw escape hatches for protocol-torture tests.
  Status SendBytes(std::string_view bytes);
  Result<Frame> ReadFrame(int64_t timeout_ms = 5000);

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Read until the assembler yields a frame (or timeout/transport error).
  Result<Frame> NextFrame(int64_t deadline_ns);

  /// Ok when `tag` has a waiter; otherwise poisons the connection (a
  /// response no request is waiting for means the stream is stale).
  Status AdmitResponseTag(uint64_t tag);

  int fd_;
  uint64_t next_tag_ = 1;
  /// Process-unique idempotency nonce stamped (with next_seq_) on queries
  /// that don't carry their own key.
  uint64_t client_nonce_ = 0;
  uint64_t next_seq_ = 1;
  FrameAssembler assembler_;
  /// Tags sent but not yet delivered to a waiter. A response whose tag is
  /// not in this set poisons the connection: it can only be a stale reply
  /// for a request some caller already gave up on (or a server bug), and
  /// delivering it to the next Await would hand the wrong result over.
  std::set<uint64_t> inflight_;
  /// Responses that arrived while waiting for a different in-flight tag.
  std::map<uint64_t, WireResult> parked_;
  /// A transport failure (including a timeout mid-wait: the reply may land
  /// later, desynchronized from its request) is terminal for the
  /// connection; latched here so every later call fails the same way
  /// instead of reading garbage.
  Status broken_ = Status::Ok();
};

/// A set of independent connections to one server, dialed concurrently:
/// all TCP handshakes are started non-blocking before any is waited on, so
/// pool setup costs one round trip, not `size` of them. Hand each worker
/// thread its own exclusive Client — the pool itself adds no locking.
class ClientPool {
 public:
  static Result<ClientPool> Dial(const std::string& host, uint16_t port,
                                 size_t size, int64_t timeout_ms = 5000);

  size_t size() const { return clients_.size(); }
  Client& at(size_t i) { return *clients_[i]; }

 private:
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace upa::net
