#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/failpoint.h"
#include "common/hash.h"

namespace upa::service {
namespace {

// Little-endian scalar helpers for the response blob. Doubles travel as
// raw IEEE-754 bits so a replayed response is byte-identical to the first
// delivery (same convention as the journal and the wire).
void BlobPutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void BlobPutDouble(std::string& out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  BlobPutU64(out, bits);
}

bool BlobGetU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(in[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *v = r;
  return true;
}

bool BlobGetDouble(const std::string& in, size_t* pos, double* v) {
  uint64_t bits = 0;
  if (!BlobGetU64(in, pos, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

}  // namespace

std::string EncodeResponseBlob(const QueryResponse& r) {
  std::string out;
  out.reserve(15 * 8);
  BlobPutDouble(out, r.released);
  BlobPutDouble(out, r.epsilon);
  BlobPutDouble(out, r.local_sensitivity);
  BlobPutDouble(out, r.out_range.lo);
  BlobPutDouble(out, r.out_range.hi);
  uint64_t flags = (r.attack_suspected ? 1u : 0u) |
                   (r.degenerate_sensitivity ? 2u : 0u) |
                   (r.sensitivity_cache_hit ? 4u : 0u);
  BlobPutU64(out, flags);
  BlobPutU64(out, static_cast<uint64_t>(r.records_removed));
  BlobPutU64(out, r.dataset_epoch);
  BlobPutDouble(out, r.queue_seconds);
  BlobPutDouble(out, r.seconds.sample);
  BlobPutDouble(out, r.seconds.map);
  BlobPutDouble(out, r.seconds.reduce);
  BlobPutDouble(out, r.seconds.enforce);
  BlobPutDouble(out, r.seconds.total);
  return out;
}

Status DecodeResponseBlob(const std::string& blob, QueryResponse* out) {
  size_t pos = 0;
  uint64_t flags = 0;
  uint64_t removed = 0;
  bool ok = BlobGetDouble(blob, &pos, &out->released) &&
            BlobGetDouble(blob, &pos, &out->epsilon) &&
            BlobGetDouble(blob, &pos, &out->local_sensitivity) &&
            BlobGetDouble(blob, &pos, &out->out_range.lo) &&
            BlobGetDouble(blob, &pos, &out->out_range.hi) &&
            BlobGetU64(blob, &pos, &flags) &&
            BlobGetU64(blob, &pos, &removed) &&
            BlobGetU64(blob, &pos, &out->dataset_epoch) &&
            BlobGetDouble(blob, &pos, &out->queue_seconds) &&
            BlobGetDouble(blob, &pos, &out->seconds.sample) &&
            BlobGetDouble(blob, &pos, &out->seconds.map) &&
            BlobGetDouble(blob, &pos, &out->seconds.reduce) &&
            BlobGetDouble(blob, &pos, &out->seconds.enforce) &&
            BlobGetDouble(blob, &pos, &out->seconds.total);
  if (!ok || pos != blob.size()) {
    return Status::Internal("journaled response blob is corrupt (" +
                            std::to_string(blob.size()) + " bytes)");
  }
  out->attack_suspected = (flags & 1u) != 0;
  out->degenerate_sensitivity = (flags & 2u) != 0;
  out->sensitivity_cache_hit = (flags & 4u) != 0;
  out->records_removed = static_cast<size_t>(removed);
  return Status::Ok();
}

uint64_t RequestKeyHash(const QueryRequest& request) {
  // The key binds to everything that determines the released bits: the
  // tenant/dataset scope, the query shape, epsilon and the noise seed. A
  // key re-submitted with any of these changed is a client bug, not a
  // retry, and must not be answered with the cached response.
  std::string bytes;
  BlobPutU64(bytes, Fnv1a(request.tenant));
  BlobPutU64(bytes, Fnv1a(request.dataset_id));
  BlobPutU64(bytes, Fnv1a(request.query.name));
  uint64_t eps_bits = 0;
  std::memcpy(&eps_bits, &request.epsilon, sizeof(eps_bits));
  BlobPutU64(bytes, eps_bits);
  BlobPutU64(bytes, request.seed);
  BlobPutU64(bytes, request.fingerprint);
  return Fnv1a(bytes);
}

Status ValidateServiceConfig(const ServiceConfig& config) {
  if (config.max_in_flight == 0) {
    return Status::InvalidArgument(
        "ServiceConfig::max_in_flight must be positive (0 would admit "
        "nothing)");
  }
  if (config.max_queue_per_tenant == 0) {
    return Status::InvalidArgument(
        "ServiceConfig::max_queue_per_tenant must be positive (0 would "
        "reject every submission)");
  }
  if (!std::isfinite(config.budget_per_dataset) ||
      config.budget_per_dataset < 0.0) {
    return Status::InvalidArgument(
        "ServiceConfig::budget_per_dataset must be finite and >= 0, got " +
        std::to_string(config.budget_per_dataset));
  }
  if (!std::isfinite(config.watchdog_interval_ms) ||
      config.watchdog_interval_ms < 0.0) {
    return Status::InvalidArgument(
        "ServiceConfig::watchdog_interval_ms must be finite and >= 0, got " +
        std::to_string(config.watchdog_interval_ms));
  }
  return Status::Ok();
}

bool UpaService::SensitivityCache::Lookup(const Key& key,
                                          core::SensitivityHint* out) {
  auto it = index.find(key);
  if (it == index.end()) return false;
  entries.splice(entries.begin(), entries, it->second);
  *out = entries.front().second;
  return true;
}

void UpaService::SensitivityCache::Insert(const Key& key,
                                          const core::SensitivityHint& hint,
                                          size_t capacity) {
  if (capacity == 0) return;
  auto it = index.find(key);
  if (it != index.end()) {
    it->second->second = hint;
    entries.splice(entries.begin(), entries, it->second);
    return;
  }
  entries.emplace_front(key, hint);
  index[key] = entries.begin();
  while (entries.size() > capacity) {
    index.erase(entries.back().first);
    entries.pop_back();
  }
}

void UpaService::SensitivityCache::Clear() {
  entries.clear();
  index.clear();
}

bool UpaService::DedupTable::Lookup(const Key& key, Entry* out) {
  auto it = index.find(key);
  if (it == index.end()) return false;
  entries.splice(entries.begin(), entries, it->second);
  *out = entries.front().second;
  ++replays;
  return true;
}

void UpaService::DedupTable::Insert(const Key& key, Entry entry,
                                    size_t capacity,
                                    std::vector<Key>* evicted) {
  if (capacity == 0) return;
  auto it = index.find(key);
  if (it != index.end()) {
    it->second->second = std::move(entry);
    entries.splice(entries.begin(), entries, it->second);
    return;
  }
  entries.emplace_front(key, std::move(entry));
  index[key] = entries.begin();
  while (entries.size() > capacity) {
    if (evicted != nullptr) evicted->push_back(entries.back().first);
    index.erase(entries.back().first);
    entries.pop_back();
  }
}

UpaService::UpaService(engine::ExecContext* ctx, ServiceConfig config)
    : ctx_(ctx),
      config_(std::move(config)),
      accountant_(config_.budget_per_dataset) {
  UPA_CHECK(ctx_ != nullptr);
  // A bad config makes the service inert (every submission fails with
  // kInvalidArgument) instead of aborting the process: the front door may
  // be constructing it from untrusted operator input.
  config_status_ = ValidateServiceConfig(config_);
  if (!config_status_.ok()) return;

  if (!config_.journal_dir.empty()) {
    // Recover every dataset the journal dir knows about, compacting each
    // into a fresh snapshot (replay work done once per crash, not once
    // per restart), then resume the in-memory state from it.
    auto recovered_or = RecoverAll(config_.journal_dir, /*compact=*/true,
                                   config_.journal_fsync);
    if (!recovered_or.ok()) {
      recovery_status_ = recovered_or.status();
      ctx_->metrics().AddCounter("service/journal_errors");
    } else {
      for (auto& state : recovered_or.value()) {
        auto ds = std::make_shared<DatasetState>();
        ds->epoch = state.epoch;
        ds->enforcer->RestoreRegistry(std::move(state.registry));
        // Rebuild the dedup window from the journaled keys, oldest first
        // so the in-memory LRU order matches completion order. Recovery
        // may return more keys than the window holds (kExpire frames for
        // the overflow were lost with the crash); keep the newest.
        size_t keep = std::min(state.dedup.size(), config_.dedup_window);
        for (size_t i = state.dedup.size() - keep; i < state.dedup.size();
             ++i) {
          auto& src = state.dedup[i];
          DedupTable::Entry entry;
          entry.request_hash = src.request_hash;
          entry.blob = std::move(src.response_blob);
          ds->dedup.Insert({src.nonce, src.seq}, std::move(entry),
                           config_.dedup_window, nullptr);
        }
        ctx_->metrics().AddCounter("service/recovered_dedup_keys", keep);
        accountant_.RestoreLedger(state.dataset_id, state.charged_total,
                                  state.refunded_total);
        auto journal_or = Journal::Open(config_.journal_dir, state.dataset_id,
                                        config_.journal_fsync);
        if (journal_or.ok()) {
          ds->journal = std::move(journal_or).value();
        } else {
          ds->journal_status = journal_or.status();
          ctx_->metrics().AddCounter("service/journal_errors");
        }
        ctx_->metrics().AddCounter("service/recovered_datasets");
        ctx_->metrics().AddCounter("service/recovered_refunds",
                                   state.recovered_refunds.size());
        std::lock_guard<std::mutex> lock(datasets_mu_);
        datasets_[state.dataset_id] = std::move(ds);
      }
    }
  }

  if (config_.watchdog_interval_ms > 0.0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

UpaService::~UpaService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    idle_cv_.wait(lock, [this] {
      if (in_flight_ > 0) return false;
      for (const auto& [name, tenant] : tenants_) {
        if (!tenant.queue.empty()) return false;
      }
      return true;
    });
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void UpaService::CountCancelMetric(StatusCode code) {
  if (code == StatusCode::kDeadlineExceeded) {
    ctx_->metrics().AddCounter("service/deadline_exceeded");
  } else {
    ctx_->metrics().AddCounter("service/cancelled");
  }
}

void UpaService::Resolve(Pending& pending, Result<QueryResponse> result) {
  if (pending.done) {
    pending.done(std::move(result));
  } else {
    pending.promise.set_value(std::move(result));
  }
}

std::future<Result<QueryResponse>> UpaService::Submit(QueryRequest request) {
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  std::future<Result<QueryResponse>> future = pending->promise.get_future();
  Enqueue(std::move(pending));
  return future;
}

void UpaService::SubmitAsync(QueryRequest request, Callback done) {
  UPA_CHECK(done != nullptr);
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->done = std::move(done);
  Enqueue(std::move(pending));
}

void UpaService::Enqueue(std::shared_ptr<Pending> pending) {
  if (!config_status_.ok()) {
    Resolve(*pending, config_status_);
    return;
  }

  // Admission fault site (chaos suite): an injected error here must look
  // exactly like any other rejection — immediate resolution, no charge.
  if (Failpoints::Instance().AnyActive()) {
    Status injected = Failpoints::Instance().Evaluate("service/admit");
    if (!injected.ok()) {
      ctx_->metrics().AddCounter("service/rejected");
      Resolve(*pending, injected);
      return;
    }
  }

  QueryRequest& req = pending->request;
  if (req.cancel != nullptr || req.deadline_ms > 0) {
    pending->token =
        req.cancel != nullptr ? req.cancel : std::make_shared<CancelToken>();
    if (req.deadline_ms > 0) {
      pending->token->SetDeadlineAfterMillis(req.deadline_ms);
    }
    // Dead on arrival (caller cancelled before submitting, or a
    // non-positive effective deadline): fail without queueing.
    Status st = pending->token->Check();
    if (!st.ok()) {
      CountCancelMetric(st.code());
      Resolve(*pending, st);
      return;
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (shutting_down_) {
    lock.unlock();
    Resolve(*pending,
            Status::FailedPrecondition("service is shutting down"));
    return;
  }
  TenantState& tenant = tenants_[pending->request.tenant];
  if (tenant.queue.size() >= config_.max_queue_per_tenant) {
    ++tenant.rejected;
    lock.unlock();
    ctx_->metrics().AddCounter("service/rejected");
    Status full = Status::ResourceExhausted(
        "tenant '" + pending->request.tenant + "' backlog full (" +
        std::to_string(config_.max_queue_per_tenant) + " queued)");
    // Advise the client when to come back instead of leaving it guessing;
    // the hint rides the wire error frame as retry_after_ms.
    full.set_retry_after_ms(config_.retry_after_hint_ms);
    Resolve(*pending, full);
    return;
  }
  ++tenant.submitted;
  tenant.queue.push_back(std::move(pending));
  MaybeDispatchLocked();
}

Result<QueryResponse> UpaService::Execute(QueryRequest request) {
  return Submit(std::move(request)).get();
}

void UpaService::MaybeDispatchLocked() {
  // One pass per free slot: pick the next runnable tenant in name order.
  // A tenant is runnable when it has queued work, nothing of its own in
  // flight (keeps the tenant FIFO), and its head request's dataset is not
  // in flight either (serializes each dataset's release path at dispatch
  // time — no lock is held across the run itself).
  bool dispatched = true;
  while (in_flight_ < config_.max_in_flight && dispatched) {
    dispatched = false;
    for (auto& [name, tenant] : tenants_) {
      if (tenant.running || tenant.queue.empty()) continue;
      const std::string& dataset = tenant.queue.front()->request.dataset_id;
      if (busy_datasets_.count(dataset) > 0) continue;
      std::shared_ptr<Pending> pending = std::move(tenant.queue.front());
      tenant.queue.pop_front();
      tenant.running = true;
      busy_datasets_.insert(dataset);
      ++in_flight_;
      dispatched = true;
      std::string tenant_name = name;
      ctx_->pool().Submit([this, pending, tenant_name] {
        double queue_seconds = pending->queued.ElapsedSeconds();
        ctx_->metrics().RecordLatency("service/queue", queue_seconds);
        Result<QueryResponse> result = RunOne(*pending, queue_seconds);
        {
          std::lock_guard<std::mutex> lock(mu_);
          TenantState& t = tenants_[tenant_name];
          t.running = false;
          ++t.completed;
          busy_datasets_.erase(pending->request.dataset_id);
          --in_flight_;
          MaybeDispatchLocked();
          idle_cv_.notify_all();
        }
        // After the bookkeeping above the service may be destroyed at any
        // time; `pending` is self-owned, so resolving the outcome is safe.
        Resolve(*pending, std::move(result));
      });
      if (in_flight_ >= config_.max_in_flight) break;
    }
  }
}

void UpaService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(
            config_.watchdog_interval_ms),
        [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;

    // Prune queued requests whose token tripped: they fail now instead of
    // waiting for a dispatch slot they can no longer use. In-flight
    // requests need no help — their runs poll the same token at every
    // cooperative check.
    std::vector<std::shared_ptr<Pending>> expired;
    for (auto& [name, tenant] : tenants_) {
      for (auto it = tenant.queue.begin(); it != tenant.queue.end();) {
        Pending& p = **it;
        if (p.token != nullptr && !p.token->Check().ok()) {
          ++tenant.cancelled;
          expired.push_back(std::move(*it));
          it = tenant.queue.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!expired.empty()) {
      idle_cv_.notify_all();  // the destructor waits on empty queues
      lock.unlock();
      for (auto& p : expired) {
        Status st = p->token->status();
        CountCancelMetric(st.code());
        Resolve(*p, st);
      }
      lock.lock();
    }
  }
}

std::shared_ptr<UpaService::DatasetState> UpaService::DatasetFor(
    const std::string& dataset_id) {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto& slot = datasets_[dataset_id];
  if (!slot) {
    slot = std::make_shared<DatasetState>();
    if (!config_.journal_dir.empty()) {
      auto journal_or = Journal::Open(config_.journal_dir, dataset_id,
                                      config_.journal_fsync);
      if (journal_or.ok()) {
        slot->journal = std::move(journal_or).value();
      } else {
        slot->journal_status = journal_or.status();
        ctx_->metrics().AddCounter("service/journal_errors");
      }
    }
  }
  return slot;
}

Result<QueryResponse> UpaService::RunOne(Pending& pending,
                                         double queue_seconds) {
  QueryRequest& request = pending.request;
  Stopwatch total;
  engine::ExecMetrics& metrics = ctx_->metrics();
  metrics.AddCounter("service/queries");
  UPA_FAILPOINT("service/run");

  // Install the request's token for this thread; ParallelFor re-installs
  // it inside every chunk task, so the whole run tree sees it.
  CancelToken* token = pending.token.get();
  CancelScope cancel_scope(token);

  // Pre-flight: a query that expired in the queue is failed before any
  // charge, so there is nothing to refund.
  Status pre = CancelScope::CheckCurrent();
  if (!pre.ok()) {
    CountCancelMetric(pre.code());
    return pre;
  }

  // The dispatcher admits one request per dataset at a time, so from here
  // to return the dataset's budget, registry and cache see no concurrent
  // release. ds->mu is taken only for short epoch/cache sections — never
  // across the run (see DatasetState::mu).
  std::shared_ptr<DatasetState> ds = DatasetFor(request.dataset_id);

  // Exactly-once replay: a key that already completed is answered from the
  // dedup window with the journaled response — byte-identical, before the
  // journal-health gate and before any Charge, so a retry of an
  // acknowledged release can never spend budget (or double-register the
  // output). The key is bound to a request hash: reusing it for a
  // different request is a client bug, rejected rather than replayed.
  bool keyed = request.client_nonce != 0 && config_.dedup_window > 0;
  uint64_t request_hash = keyed ? RequestKeyHash(request) : 0;
  if (keyed) {
    DedupTable::Entry entry;
    bool hit = false;
    {
      std::lock_guard<std::mutex> ds_lock(ds->mu);
      hit = ds->dedup.Lookup({request.client_nonce, request.client_seq},
                             &entry);
    }
    if (hit) {
      if (entry.request_hash != request_hash) {
        metrics.AddCounter("service/dedup_key_mismatch");
        return Status::InvalidArgument(
            "idempotency key (" + std::to_string(request.client_nonce) +
            ", " + std::to_string(request.client_seq) +
            ") was already used for a different request");
      }
      QueryResponse replay;
      Status decoded = DecodeResponseBlob(entry.blob, &replay);
      if (!decoded.ok()) {
        metrics.AddCounter("service/journal_errors");
        return decoded;
      }
      metrics.AddCounter("service/dedup_replays");
      return replay;
    }
  }

  if (!config_.journal_dir.empty() && ds->journal == nullptr) {
    // Durability was requested but this dataset's journal is broken:
    // failing the query is the conservative choice (running it would
    // silently lose the mutation on restart).
    metrics.AddCounter("service/journal_errors");
    return ds->journal_status.ok()
               ? Status::Internal("journal unavailable for '" +
                                  request.dataset_id + "'")
               : ds->journal_status;
  }

  Status charged = accountant_.Charge(request.dataset_id, request.epsilon);
  if (!charged.ok()) {
    metrics.AddCounter("service/budget_denied");
    return charged;
  }

  // Crash-injection sites for the exactly-once chaos orchestrator: a
  // SIGKILL at any of the four leaves the journal in a different phase of
  // the charge→run→release protocol, and recovery + a keyed retry must
  // land on "released exactly once" from all of them.
  UPA_FAILPOINT_HIT("service/charge_pre_append");

  // Two-phase + journal: the charge is durable before the run starts; a
  // crash from here on leaves a dangling charge that recovery refunds.
  uint64_t qid = next_qid_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ds->journal != nullptr) {
    JournalRecord rec;
    rec.type = JournalRecord::Type::kCharge;
    rec.qid = qid;
    rec.epsilon = request.epsilon;
    Status journaled = ds->journal->Append(rec);
    if (!journaled.ok()) {
      accountant_.Refund(request.dataset_id, request.epsilon);
      metrics.AddCounter("service/refunds");
      metrics.AddCounter("service/journal_errors");
      return journaled;
    }
  }
  UPA_FAILPOINT_HIT("service/post_append_pre_run");

  uint64_t fingerprint = request.fingerprint != 0
                             ? request.fingerprint
                             : Fnv1a(request.query.name);
  SensitivityCache::Key key{0, 0};
  core::SensitivityHint hint;
  bool cache_hit = false;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> ds_lock(ds->mu);
    epoch = ds->epoch;
    key = {fingerprint, epoch};
    cache_hit = ds->cache.Lookup(key, &hint);
  }
  metrics.AddCounter(cache_hit ? "service/sens_cache_hit"
                               : "service/sens_cache_miss");

  core::UpaConfig upa_config = config_.upa;
  upa_config.epsilon = request.epsilon;
  core::UpaRunner runner(upa_config);
  runner.share_enforcer(ds->enforcer);

  Result<core::UpaRunResult> run =
      runner.Run(request.query, request.seed, cache_hit ? &hint : nullptr);
  if (!run.ok()) {
    // Nothing was released — the runner's last cancellation check sits
    // before the enforcer Register — so the budget is handed back
    // (two-phase charge), durable before the caller learns the outcome.
    accountant_.Refund(request.dataset_id, request.epsilon);
    metrics.AddCounter("service/refunds");
    StatusCode code = run.status().code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      CountCancelMetric(code);
    }
    if (ds->journal != nullptr) {
      JournalRecord rec;
      rec.type = JournalRecord::Type::kRefund;
      rec.qid = qid;
      rec.epsilon = request.epsilon;
      if (!ds->journal->Append(rec).ok()) {
        // The refund record was lost, so the journal shows a dangling
        // charge — which recovery refunds. Disk and memory agree either
        // way; just count it.
        metrics.AddCounter("service/journal_errors");
      }
    }
    return run.status();
  }
  const core::UpaRunResult& result = run.value();
  UPA_FAILPOINT_HIT("service/post_run_pre_release_append");

  QueryResponse response;
  response.released = result.released_output;
  response.epsilon = request.epsilon;
  response.local_sensitivity = result.local_sensitivity;
  response.out_range = result.out_range;
  response.attack_suspected = result.enforcer.attack_suspected;
  response.records_removed = result.enforcer.records_removed;
  response.degenerate_sensitivity = result.degenerate_sensitivity;
  response.sensitivity_cache_hit = cache_hit;
  response.dataset_epoch = epoch;
  response.queue_seconds = queue_seconds;
  response.seconds = result.seconds;
  // The exact bytes a replay of this key must return, frozen before the
  // release record is written so journal and window always agree.
  std::string response_blob = keyed ? EncodeResponseBlob(response) : "";

  if (ds->journal != nullptr) {
    // The release becomes durable BEFORE the response resolves: an
    // unacknowledged release must look like it never happened, and an
    // acknowledged one must survive a crash. The record carries the
    // idempotency key and the serialized response, so recovery can answer
    // a retried key byte-identically without running anything.
    JournalRecord rec;
    rec.type = JournalRecord::Type::kRelease;
    rec.qid = qid;
    rec.epsilon = request.epsilon;
    rec.partition_outputs = result.partition_outputs;
    rec.nonce = request.client_nonce;
    rec.key_seq = request.client_seq;
    rec.request_hash = request_hash;
    rec.response_blob = response_blob;
    Status journaled = ds->journal->Append(rec);
    if (!journaled.ok()) {
      // The analyst never sees this output (we return the error), so the
      // charge is refunded. The in-memory registry keeps the stray prior
      // until restart — strictly conservative: an extra prior can only
      // trigger more enforcement, never less.
      accountant_.Refund(request.dataset_id, request.epsilon);
      metrics.AddCounter("service/refunds");
      metrics.AddCounter("service/journal_errors");
      JournalRecord refund;
      refund.type = JournalRecord::Type::kRefund;
      refund.qid = qid;
      refund.epsilon = request.epsilon;
      (void)ds->journal->Append(refund);
      return journaled;
    }
  }

  std::vector<DedupTable::Key> evicted;
  {
    std::lock_guard<std::mutex> ds_lock(ds->mu);
    // Fill the cache only if the data didn't change mid-run: a BumpEpoch
    // that raced the run makes this sensitivity stale on arrival.
    if (!cache_hit && ds->epoch == epoch) {
      ds->cache.Insert(key,
                       core::SensitivityHint{result.local_sensitivity,
                                             result.out_range,
                                             result.degenerate_sensitivity},
                       config_.sensitivity_cache_capacity);
    }
    if (keyed) {
      DedupTable::Entry entry;
      entry.request_hash = request_hash;
      entry.blob = std::move(response_blob);
      ds->dedup.Insert({request.client_nonce, request.client_seq},
                       std::move(entry), config_.dedup_window, &evicted);
    }
    ++ds->queries;
  }
  if (ds->journal != nullptr) {
    // Journal the eviction so the durable window tracks the in-memory one
    // (recovery otherwise re-trims deterministically — a lost kExpire can
    // widen the recovered window, never corrupt it).
    for (const auto& gone : evicted) {
      JournalRecord expire;
      expire.type = JournalRecord::Type::kExpire;
      expire.nonce = gone.first;
      expire.key_seq = gone.second;
      if (!ds->journal->Append(expire).ok()) {
        metrics.AddCounter("service/journal_errors");
        break;  // journal is poisoned; further appends would fail too
      }
    }
  }
  if (!evicted.empty()) {
    metrics.AddCounter("service/dedup_expired", evicted.size());
  }
  if (result.enforcer.attack_suspected) {
    metrics.AddCounter("service/attacks_suspected");
  }

  metrics.RecordLatency("upa/sample", result.seconds.sample);
  metrics.RecordLatency("upa/map", result.seconds.map);
  metrics.RecordLatency("upa/reduce", result.seconds.reduce);
  metrics.RecordLatency("upa/enforce", result.seconds.enforce);
  metrics.RecordLatency("service/total", total.ElapsedSeconds());
  // Release durable + dedup window updated, response not yet delivered: a
  // crash here is the pure replay case — the retry must return these
  // exact bytes without charging again.
  UPA_FAILPOINT_HIT("service/post_release_pre_ack");
  return response;
}

void UpaService::BumpEpoch(const std::string& dataset_id) {
  std::shared_ptr<DatasetState> ds = DatasetFor(dataset_id);
  std::lock_guard<std::mutex> lock(ds->mu);
  ++ds->epoch;
  // Stale epochs can never be queried again; drop their entries now
  // instead of waiting for LRU pressure.
  ds->cache.Clear();
  if (ds->journal != nullptr) {
    JournalRecord rec;
    rec.type = JournalRecord::Type::kEpochBump;
    rec.epoch = ds->epoch;
    if (!ds->journal->Append(rec).ok()) {
      // A lost bump record only under-counts the epoch after restart; the
      // sensitivity cache starts empty then, so no stale hint can be
      // served. Count it and move on.
      ctx_->metrics().AddCounter("service/journal_errors");
    }
  }
}

uint64_t UpaService::Epoch(const std::string& dataset_id) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto it = datasets_.find(dataset_id);
  if (it == datasets_.end()) return 0;
  std::lock_guard<std::mutex> ds_lock(it->second->mu);
  return it->second->epoch;
}

size_t UpaService::CachedSensitivities(const std::string& dataset_id) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto it = datasets_.find(dataset_id);
  if (it == datasets_.end()) return 0;
  std::lock_guard<std::mutex> ds_lock(it->second->mu);
  return it->second->cache.size();
}

size_t UpaService::DedupWindowSize(const std::string& dataset_id) const {
  std::lock_guard<std::mutex> lock(datasets_mu_);
  auto it = datasets_.find(dataset_id);
  if (it == datasets_.end()) return 0;
  std::lock_guard<std::mutex> ds_lock(it->second->mu);
  return it->second->dedup.size();
}

UpaService::DatasetDurableDebug UpaService::DebugState(
    const std::string& dataset_id) {
  std::shared_ptr<DatasetState> ds = DatasetFor(dataset_id);
  DatasetDurableDebug debug;
  {
    std::lock_guard<std::mutex> ds_lock(ds->mu);
    debug.epoch = ds->epoch;
  }
  debug.registry = ds->enforcer->RegistrySnapshot();
  debug.budget = accountant_.Checkpoint(dataset_id);
  return debug;
}

std::string UpaService::StatsReport() const {
  std::ostringstream out;
  out << "== upa service ==\n";
  if (!config_.shard_name.empty()) {
    out << "shard: " << config_.shard_name << "\n";
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    out << "in_flight: " << in_flight_ << " / " << config_.max_in_flight
        << "\n";
    out << "tenants:\n";
    for (const auto& [name, tenant] : tenants_) {
      out << "  " << name << ": submitted=" << tenant.submitted
          << " completed=" << tenant.completed
          << " rejected=" << tenant.rejected
          << " cancelled=" << tenant.cancelled
          << " queued=" << tenant.queue.size()
          << (tenant.running ? " [running]" : "") << "\n";
    }
  }
  {
    std::lock_guard<std::mutex> lock(datasets_mu_);
    out << "datasets:\n";
    for (const auto& [id, ds] : datasets_) {
      std::lock_guard<std::mutex> ds_lock(ds->mu);
      out << "  " << id << ": epoch=" << ds->epoch
          << " queries=" << ds->queries
          << " registry=" << ds->enforcer->registry_size()
          << " cached_sens=" << ds->cache.size()
          << " dedup_keys=" << ds->dedup.size()
          << " dedup_replays=" << ds->dedup.replays
          << " spent=" << accountant_.Spent(id)
          << " remaining=" << accountant_.Remaining(id)
          << (ds->journal != nullptr ? " [journaled]" : "") << "\n";
    }
  }
  engine::MetricsSnapshot snapshot = ctx_->metrics().Snapshot();
  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << "  " << name << ": " << value << "\n";
    }
  }
  if (!snapshot.latency.empty()) {
    out << "latency (p50 / p99 / max, seconds):\n";
    for (const auto& [name, hist] : snapshot.latency) {
      out << "  " << name << ": n=" << hist.count << " p50="
          << hist.QuantileSeconds(0.5) << " p99=" << hist.QuantileSeconds(0.99)
          << " max=" << hist.max_seconds << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << "  " << name << ": " << value << "\n";
    }
  }
  return out.str();
}

}  // namespace upa::service
