file(REMOVE_RECURSE
  "CMakeFiles/upa_range_enforcer_test.dir/upa_range_enforcer_test.cpp.o"
  "CMakeFiles/upa_range_enforcer_test.dir/upa_range_enforcer_test.cpp.o.d"
  "upa_range_enforcer_test"
  "upa_range_enforcer_test.pdb"
  "upa_range_enforcer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_range_enforcer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
