#include "upa/group.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace upa::core {
namespace {

std::vector<double> SortedInfluences(std::span<const double> outputs,
                                     double f_x) {
  std::vector<double> influences;
  influences.reserve(outputs.size());
  for (double o : outputs) influences.push_back(std::fabs(o - f_x));
  std::sort(influences.begin(), influences.end(), std::greater<>());
  return influences;
}

GroupSensitivityEstimate FromSorted(const std::vector<double>& sorted,
                                    double f_x, size_t k) {
  GroupSensitivityEstimate est;
  est.group_size = k;
  size_t take = std::min(k, sorted.size());
  est.top_influences.assign(sorted.begin(), sorted.begin() + take);
  for (double infl : est.top_influences) est.sensitivity += infl;
  est.out_range = Interval{f_x - est.sensitivity, f_x + est.sensitivity};
  return est;
}

}  // namespace

GroupSensitivityEstimate EstimateGroupSensitivity(
    std::span<const double> neighbour_outputs, double f_x, size_t k) {
  UPA_CHECK_MSG(k >= 1, "group size must be at least 1");
  return FromSorted(SortedInfluences(neighbour_outputs, f_x), f_x, k);
}

std::vector<GroupSensitivityEstimate> GroupSensitivitySweep(
    std::span<const double> neighbour_outputs, double f_x, size_t max_k) {
  UPA_CHECK_MSG(max_k >= 1, "max_k must be at least 1");
  std::vector<double> sorted = SortedInfluences(neighbour_outputs, f_x);
  std::vector<GroupSensitivityEstimate> out;
  out.reserve(max_k);
  for (size_t k = 1; k <= max_k; ++k) {
    out.push_back(FromSorted(sorted, f_x, k));
  }
  return out;
}

}  // namespace upa::core
