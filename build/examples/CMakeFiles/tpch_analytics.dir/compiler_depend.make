# Empty compiler generated dependencies file for tpch_analytics.
# This may be replaced when dependencies are built.
