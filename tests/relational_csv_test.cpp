#include "relational/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/failpoint.h"

namespace upa::rel {
namespace {

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"score", ValueType::kDouble},
                 {"label", ValueType::kString}});
}

Table TestTable() {
  return Table("t", TestSchema(),
               std::vector<Row>{
                   {Value{int64_t{1}}, Value{2.5}, Value{std::string("a")}},
                   {Value{int64_t{2}}, Value{-1.0},
                    Value{std::string("needs,quoting")}},
                   {Value{int64_t{3}}, Value{0.0},
                    Value{std::string("has \"quotes\"")}},
               });
}

TEST(CsvTest, SerializesHeaderAndRows) {
  std::string csv = TableToCsv(TestTable());
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "id,score,label");
  EXPECT_NE(csv.find("\"needs,quoting\""), std::string::npos);
  EXPECT_NE(csv.find("\"has \"\"quotes\"\"\""), std::string::npos);
}

TEST(CsvTest, RoundTripPreservesData) {
  Table original = TestTable();
  auto parsed = TableFromCsv("t", TestSchema(), TableToCsv(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().NumRows(), original.NumRows());
  for (size_t r = 0; r < original.NumRows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(ValueEquals(parsed.value().rows()[r][c],
                              original.rows()[r][c]))
          << "row " << r << " col " << c;
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/upa_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(TestTable(), path).ok());
  auto parsed = ReadCsvFile("t", TestSchema(), path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().NumRows(), 3u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto parsed = ReadCsvFile("t", TestSchema(), "/nonexistent/nope.csv");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, EmptyInputRejected) {
  auto parsed = TableFromCsv("t", TestSchema(), "");
  EXPECT_FALSE(parsed.ok());
}

TEST(CsvTest, HeaderMismatchRejected) {
  auto parsed = TableFromCsv("t", TestSchema(), "id,wrong,label\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("wrong"), std::string::npos);
}

TEST(CsvTest, ArityMismatchCarriesLineNumber) {
  auto parsed =
      TableFromCsv("t", TestSchema(), "id,score,label\n1,2.5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, BadIntegerCarriesValue) {
  auto parsed =
      TableFromCsv("t", TestSchema(), "id,score,label\nxyz,1.0,a\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("xyz"), std::string::npos);
}

TEST(CsvTest, BlankLinesIgnored) {
  auto parsed = TableFromCsv("t", TestSchema(),
                             "id,score,label\n1,1.0,a\n\n2,2.0,b\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().NumRows(), 2u);
}

TEST(CsvTest, CrlfTolerated) {
  auto parsed = TableFromCsv("t", TestSchema(),
                             "id,score,label\r\n1,1.0,a\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().NumRows(), 1u);
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  auto parsed = TableFromCsv("t", TestSchema(),
                             "id,score,label\n1,1.0,\"oops\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(CsvTest, MalformationsAreInvalidArgumentWithRowContext) {
  // Every malformed-input path must return INVALID_ARGUMENT (never crash or
  // abort) and name the offending row so the analyst can fix the file.
  struct Case {
    const char* label;
    const char* csv;
    const char* context;
  } cases[] = {
      {"non-numeric int", "id,score,label\n1,1.0,a\nxy,2.0,b\n", "line 3"},
      {"non-numeric double", "id,score,label\n1,oops,a\n", "line 2"},
      {"wrong arity (extra field)", "id,score,label\n1,1.0,a,extra\n",
       "line 2"},
      {"trailing garbage after number", "id,score,label\n1,1.0x,a\n",
       "line 2"},
  };
  for (const Case& c : cases) {
    auto parsed = TableFromCsv("t", TestSchema(), c.csv);
    ASSERT_FALSE(parsed.ok()) << c.label;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << c.label;
    EXPECT_NE(parsed.status().message().find(c.context), std::string::npos)
        << c.label << ": " << parsed.status().ToString();
  }
}

TEST(CsvTest, IntegerOverflowRejected) {
  // strtoll clamps on overflow; loading the clamp silently would corrupt
  // the data, so the loader must surface it.
  auto parsed = TableFromCsv(
      "t", TestSchema(), "id,score,label\n99999999999999999999999,1.0,a\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("out of range"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("column 'id'"), std::string::npos);
}

TEST(CsvTest, DoubleOverflowRejected) {
  auto parsed = TableFromCsv("t", TestSchema(), "id,score,label\n1,1e999,a\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("out of range"), std::string::npos);
}

TEST(CsvTest, TruncatedFinalRowNamesTheTruncation) {
  // A file cut off mid-row (no trailing newline, too few fields) is the
  // classic partial-download shape.
  auto parsed = TableFromCsv("t", TestSchema(), "id,score,label\n1,2.5");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("truncated row"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, LoadFailpointInjectsStatus) {
  Failpoints::Instance().DeactivateAll();
  ASSERT_TRUE(
      Failpoints::Instance()
          .Activate("csv/load", "error(resource_exhausted,disk)")
          .ok());
  auto parsed = TableFromCsv("t", TestSchema(), "id,score,label\n1,1.0,a\n");
  Failpoints::Instance().DeactivateAll();
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST(CsvTest, QuotedFieldWithNewlineRoundTrips) {
  Table t("t", Schema({{"s", ValueType::kString}}),
          std::vector<Row>{{Value{std::string("two\nlines")}}});
  auto parsed = TableFromCsv("t", t.schema(), TableToCsv(t));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().NumRows(), 1u);
  EXPECT_EQ(AsString(parsed.value().rows()[0][0]), "two\nlines");
}

}  // namespace
}  // namespace upa::rel
