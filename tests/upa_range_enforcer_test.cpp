#include "upa/range_enforcer.h"

#include <gtest/gtest.h>

#include <vector>

namespace upa::core {
namespace {

// A recompute callback that shifts both partition outputs by the number of
// removed records (mimics a count query: removing records changes counts).
auto CountLikeRecompute(std::vector<double> base) {
  return [base](size_t removed) {
    std::vector<double> out = base;
    for (double& v : out) v -= static_cast<double>(removed) / 2.0;
    return out;
  };
}

TEST(RangeEnforcerTest, FirstQueryIsNeverAnAttack) {
  RangeEnforcer enforcer;
  std::vector<double> outputs{10.0, 20.0};
  auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
  EXPECT_FALSE(decision.attack_suspected);
  EXPECT_EQ(decision.records_removed, 0u);
  EXPECT_EQ(decision.prior_queries_checked, 0u);
}

TEST(RangeEnforcerTest, RegisterGrowsRegistry) {
  RangeEnforcer enforcer;
  EXPECT_EQ(enforcer.registry_size(), 0u);
  enforcer.Register({1.0, 2.0});
  enforcer.Register({3.0, 4.0});
  EXPECT_EQ(enforcer.registry_size(), 2u);
  enforcer.Reset();
  EXPECT_EQ(enforcer.registry_size(), 0u);
}

TEST(RangeEnforcerTest, BothPartitionsDifferentIsCase1) {
  RangeEnforcer enforcer;
  enforcer.Register({10.0, 20.0});
  // Differs on both partitions: the inputs differ by >= 2 records.
  std::vector<double> outputs{11.0, 21.0};
  auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
  EXPECT_FALSE(decision.attack_suspected);
  EXPECT_EQ(decision.records_removed, 0u);
  EXPECT_EQ(decision.prior_queries_checked, 1u);
}

TEST(RangeEnforcerTest, OneEqualPartitionTriggersRemoval) {
  RangeEnforcer enforcer;
  enforcer.Register({10.0, 20.0});
  // Partition 1 matches a prior query: possible neighbouring attack.
  std::vector<double> outputs{10.0, 21.0};
  auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
  EXPECT_TRUE(decision.attack_suspected);
  EXPECT_GE(decision.records_removed, 2u);
  // After removal, both partitions must differ from the prior entry.
  EXPECT_NE(outputs[0], 10.0);
  EXPECT_NE(outputs[1], 20.0);
}

TEST(RangeEnforcerTest, IdenticalResubmissionTriggersRemoval) {
  RangeEnforcer enforcer;
  enforcer.Register({5.0, 5.0});
  std::vector<double> outputs{5.0, 5.0};
  auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
  EXPECT_TRUE(decision.attack_suspected);
  EXPECT_EQ(decision.records_removed, 2u);  // one round suffices here
}

TEST(RangeEnforcerTest, ChecksAllPriorQueries) {
  RangeEnforcer enforcer;
  enforcer.Register({1.0, 2.0});
  enforcer.Register({3.0, 4.0});
  enforcer.Register({5.0, 6.0});
  std::vector<double> outputs{100.0, 200.0};
  auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
  EXPECT_EQ(decision.prior_queries_checked, 3u);
  EXPECT_FALSE(decision.attack_suspected);
}

TEST(RangeEnforcerTest, RemovalLoopEscalatesUntilSeparated) {
  RangeEnforcer enforcer;
  enforcer.Register({10.0, 20.0});
  std::vector<double> outputs{10.0, 20.0};
  // Recompute that only separates after 6 removed records.
  auto stubborn = [](size_t removed) {
    if (removed < 6) return std::vector<double>{10.0, 20.0};
    return std::vector<double>{-1.0, -2.0};
  };
  auto decision = enforcer.Enforce(outputs, stubborn);
  EXPECT_TRUE(decision.attack_suspected);
  EXPECT_EQ(decision.records_removed, 6u);
  EXPECT_FALSE(decision.removal_capped);
}

TEST(RangeEnforcerTest, DegenerateConstantQueryHitsCap) {
  RangeEnforcer enforcer(1e-9, /*max_removals=*/8);
  enforcer.Register({1.0, 1.0});
  std::vector<double> outputs{1.0, 1.0};
  auto constant = [](size_t) { return std::vector<double>{1.0, 1.0}; };
  auto decision = enforcer.Enforce(outputs, constant);
  EXPECT_TRUE(decision.attack_suspected);
  EXPECT_TRUE(decision.removal_capped);
  EXPECT_LE(decision.records_removed, 8u);
}

TEST(RangeEnforcerTest, RemovalCapStopsScanningFurtherPriors) {
  // Once the cap is hit against one prior, the enforcer must bail out of
  // the whole pass rather than keep burning removals against later priors.
  RangeEnforcer enforcer(1e-9, /*max_removals=*/4);
  enforcer.Register({1.0, 1.0});
  enforcer.Register({1.0, 1.0});
  std::vector<double> outputs{1.0, 1.0};
  auto constant = [](size_t) { return std::vector<double>{1.0, 1.0}; };
  auto decision = enforcer.Enforce(outputs, constant);
  EXPECT_TRUE(decision.removal_capped);
  EXPECT_TRUE(decision.attack_suspected);
  EXPECT_LE(decision.records_removed, 4u);
  EXPECT_EQ(decision.prior_queries_checked, 2u);
}

TEST(RangeEnforcerTest, CapExactlyAtBoundaryIsNotCapped) {
  // Separation achieved with exactly max_removals removed records: the
  // decision reports the removals but not the cap.
  RangeEnforcer enforcer(1e-9, /*max_removals=*/6);
  enforcer.Register({10.0, 20.0});
  std::vector<double> outputs{10.0, 20.0};
  auto separates_at_six = [](size_t removed) {
    if (removed < 6) return std::vector<double>{10.0, 20.0};
    return std::vector<double>{-1.0, -2.0};
  };
  auto decision = enforcer.Enforce(outputs, separates_at_six);
  EXPECT_FALSE(decision.removal_capped);
  EXPECT_EQ(decision.records_removed, 6u);
}

TEST(RangeEnforcerTest, ShorterPriorArityCountsEveryPartitionAsDifferent) {
  // A prior registered under a smaller partitioning config must count as
  // differing on every *current* partition, never index out of range.
  RangeEnforcer enforcer;
  enforcer.Register({5.0});
  std::vector<double> outputs{5.0, 5.0, 5.0};
  auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
  EXPECT_FALSE(decision.attack_suspected);
  EXPECT_EQ(decision.records_removed, 0u);
}

TEST(RangeEnforcerTest, LongerPriorArityAlsoTriviallyDiffers) {
  RangeEnforcer enforcer;
  enforcer.Register({5.0, 5.0, 5.0, 5.0});
  std::vector<double> outputs{5.0, 5.0};
  auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
  EXPECT_FALSE(decision.attack_suspected);
  EXPECT_EQ(decision.records_removed, 0u);
}

TEST(RangeEnforcerTest, MixedArityAndMatchingPriorsStillEnforce) {
  // An arity-mismatched prior must not mask a genuine repeat: the matching
  // prior still triggers the removal loop.
  RangeEnforcer enforcer;
  enforcer.Register({7.0, 7.0, 7.0});  // different config, ignored
  enforcer.Register({10.0, 20.0});     // genuine repeat target
  std::vector<double> outputs{10.0, 20.0};
  auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
  EXPECT_TRUE(decision.attack_suspected);
  EXPECT_GE(decision.records_removed, 2u);
  EXPECT_EQ(decision.prior_queries_checked, 2u);
}

TEST(RangeEnforcerTest, ToleranceAbsorbsFloatNoise) {
  RangeEnforcer enforcer(1e-9);
  EXPECT_TRUE(enforcer.NearlyEqual(1.0, 1.0 + 1e-13));
  EXPECT_TRUE(enforcer.NearlyEqual(1e6, 1e6 * (1.0 + 1e-12)));
  EXPECT_FALSE(enforcer.NearlyEqual(1.0, 1.001));
  EXPECT_TRUE(enforcer.NearlyEqual(0.0, 0.0));
}

TEST(RangeEnforcerTest, DifferentArityPriorTriviallyDiffers) {
  RangeEnforcer enforcer;
  enforcer.Register({1.0, 2.0, 3.0});  // registered under another config
  std::vector<double> outputs{1.0, 2.0};
  auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
  EXPECT_FALSE(decision.attack_suspected);
}

TEST(RangeEnforcerTest, RemovalReCollidingWithEarlierPriorReachesFixpoint) {
  // Regression for the registry re-scan hole: separating the outputs from
  // the SECOND prior moves them back into collision with the FIRST. A
  // per-prior single pass terminates with outputs equal to prior A —
  // silently violating Algorithm 2's "differs on >= 2 partitions from
  // every prior" invariant. The fixpoint loop must keep removing.
  RangeEnforcer enforcer;
  enforcer.Register({10.0, 20.0});  // prior A
  enforcer.Register({12.0, 22.0});  // prior B
  std::vector<double> outputs{10.0, 20.0};
  // removed=2 → separated from A but identical to B; removed=4 →
  // separated from B but identical to A again; removed=6 → clear of both.
  auto recompute = [](size_t removed) {
    if (removed == 2) return std::vector<double>{12.0, 22.0};
    if (removed == 4) return std::vector<double>{10.0, 20.0};
    return std::vector<double>{5.0, 15.0};
  };
  auto decision = enforcer.Enforce(outputs, recompute);
  EXPECT_TRUE(decision.attack_suspected);
  EXPECT_EQ(decision.records_removed, 6u);
  EXPECT_GE(decision.fixpoint_passes, 2u);
  // The universal invariant: final outputs differ from EVERY prior on at
  // least two partitions simultaneously.
  for (const auto& prior :
       {std::vector<double>{10.0, 20.0}, std::vector<double>{12.0, 22.0}}) {
    size_t diff = 0;
    for (size_t j = 0; j < prior.size(); ++j) {
      if (!enforcer.NearlyEqual(outputs[j], prior[j])) ++diff;
    }
    EXPECT_GE(diff, 2u) << "re-collided with prior {" << prior[0] << ","
                        << prior[1] << "}";
  }
}

TEST(RangeEnforcerTest, FixpointIsOnePassWithoutRecollision) {
  RangeEnforcer enforcer;
  enforcer.Register({1.0, 2.0});
  enforcer.Register({3.0, 4.0});
  std::vector<double> outputs{100.0, 200.0};
  auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
  EXPECT_FALSE(decision.attack_suspected);
  EXPECT_EQ(decision.fixpoint_passes, 1u);
}

TEST(RangeEnforcerTest, FixpointLoopStillRespectsRemovalCap) {
  // A recompute that oscillates between the two priors forever must be cut
  // off by the cap, not loop endlessly.
  RangeEnforcer enforcer(1e-9, /*max_removals=*/8);
  enforcer.Register({10.0, 20.0});
  enforcer.Register({12.0, 22.0});
  std::vector<double> outputs{10.0, 20.0};
  auto oscillate = [](size_t removed) {
    return (removed / 2) % 2 == 1 ? std::vector<double>{12.0, 22.0}
                                  : std::vector<double>{10.0, 20.0};
  };
  auto decision = enforcer.Enforce(outputs, oscillate);
  EXPECT_TRUE(decision.attack_suspected);
  EXPECT_TRUE(decision.removal_capped);
  EXPECT_LE(decision.records_removed, 8u);
}

TEST(RangeEnforcerTest, SessionEnforceRegisterMatchesStandalone) {
  RangeEnforcer standalone;
  standalone.Register({10.0, 20.0});
  std::vector<double> a{10.0, 21.0};
  auto expect = standalone.Enforce(a, CountLikeRecompute(a));
  standalone.Register(a);

  RangeEnforcer sessioned;
  sessioned.Register({10.0, 20.0});
  std::vector<double> b{10.0, 21.0};
  EnforcerDecision got;
  {
    RangeEnforcer::Session session(sessioned);
    got = session.Enforce(b, CountLikeRecompute(b));
    session.Register(b);
  }
  EXPECT_EQ(got.attack_suspected, expect.attack_suspected);
  EXPECT_EQ(got.records_removed, expect.records_removed);
  EXPECT_EQ(b, a);
  EXPECT_EQ(sessioned.registry_size(), standalone.registry_size());
}

TEST(RangeEnforcerTest, SequenceOfQueriesAccumulates) {
  RangeEnforcer enforcer;
  for (int i = 0; i < 5; ++i) {
    std::vector<double> outputs{static_cast<double>(i), 100.0 + i};
    auto decision = enforcer.Enforce(outputs, CountLikeRecompute(outputs));
    EXPECT_FALSE(decision.attack_suspected) << "i=" << i;
    enforcer.Register(outputs);
  }
  EXPECT_EQ(enforcer.registry_size(), 5u);
  // Now replay the first query exactly: attack suspected.
  std::vector<double> replay{0.0, 100.0};
  auto decision = enforcer.Enforce(replay, CountLikeRecompute(replay));
  EXPECT_TRUE(decision.attack_suspected);
}

}  // namespace
}  // namespace upa::core
