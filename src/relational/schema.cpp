#include "relational/schema.h"

#include <unordered_set>

#include "common/status.h"

namespace upa::rel {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  std::unordered_set<std::string> seen;
  for (const auto& c : columns_) {
    UPA_CHECK_MSG(seen.insert(c.name).second,
                  "duplicate column name: " + c.name);
  }
}

std::optional<size_t> Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

size_t Schema::IndexOf(const std::string& name) const {
  auto idx = Find(name);
  UPA_CHECK_MSG(idx.has_value(), "unknown column: " + name);
  return *idx;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<ColumnDef> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name + ":" + TypeName(columns_[i].type);
  }
  return out + ")";
}

}  // namespace upa::rel
