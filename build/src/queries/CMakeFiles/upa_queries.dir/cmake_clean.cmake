file(REMOVE_RECURSE
  "CMakeFiles/upa_queries.dir/plan_query.cpp.o"
  "CMakeFiles/upa_queries.dir/plan_query.cpp.o.d"
  "CMakeFiles/upa_queries.dir/suite.cpp.o"
  "CMakeFiles/upa_queries.dir/suite.cpp.o.d"
  "libupa_queries.a"
  "libupa_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
