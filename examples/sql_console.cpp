// SQL console over the private TPC-H dataset: type a SQL aggregate, get an
// iDP-protected answer. Glues the whole stack together — SQL parser →
// logical plan → UPA's pipeline (sampling, union-preserving reduce, RANGE
// ENFORCER, Laplace noise).
//
// Usage:
//   sql_console                          # run the built-in demo queries
//   sql_console "SELECT COUNT(*) FROM lineitem" [private_table]
//
// The privacy unit defaults to the first table the query scans.
#include <cstdio>
#include <string>
#include <vector>

#include "queries/plan_query.h"
#include "relational/optimizer.h"
#include "relational/sql_parser.h"
#include "upa/runner.h"

using namespace upa;

namespace {

int RunOne(engine::ExecContext& ctx,
           std::shared_ptr<const rel::PlanExecutor> executor,
           const tpch::TpchDataset& data, core::UpaRunner& runner,
           const std::string& sql, std::string private_table) {
  Result<rel::PlanPtr> parsed = rel::ParseSql(sql);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  // Predicate pushdown: per-table filters run before the joins, like the
  // hand-built paper queries.
  Result<rel::PlanPtr> plan =
      rel::PushDownFilters(parsed.value(), data.catalog());
  rel::PlanStats stats = rel::AnalyzePlan(plan.value());
  if (private_table.empty()) {
    // Default privacy unit: the last-joined scan (the fact-table position
    // in the left-deep trees the parser builds).
    private_table = stats.tables.empty() ? "" : stats.tables.back();
  }

  // Wrap the parsed plan as a UPA query over the chosen private table.
  tpch::TpchQuery query;
  query.name = "sql:" + sql.substr(0, 40);
  query.plan = plan.value();
  query.private_table = private_table;

  auto native = executor->Execute(query.plan);
  if (!native.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 native.status().ToString().c_str());
    return 1;
  }

  if (stats.agg != rel::AggKind::kCount && stats.agg != rel::AggKind::kSum) {
    std::printf("sql>     %s\n", sql.c_str());
    std::printf("plan:    %s\n", rel::PlanToString(query.plan).c_str());
    std::printf(
        "note:    AVG/MIN/MAX are not additive; UPA releases them via a "
        "COUNT+SUM rewrite (run those separately). Native-only result: "
        "%.4f\n\n",
        native.value().output);
    return 0;
  }

  auto instance =
      queries::MakePlanQuery(&ctx, std::move(executor), &data, query);
  auto result = runner.Run(instance, /*seed=*/2026);
  if (!result.ok()) {
    std::fprintf(stderr, "UPA error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("sql>     %s\n", sql.c_str());
  std::printf("plan:    %s\n", rel::PlanToString(query.plan).c_str());
  std::printf("private: one record of '%s'\n", private_table.c_str());
  std::printf("true     = %.4f   (never leaves the system)\n",
              native.value().output);
  std::printf("released = %.4f   (eps=%.2f, inferred sensitivity %.4g%s)\n\n",
              result.value().released_output, runner.config().epsilon,
              result.value().local_sensitivity,
              result.value().enforcer.attack_suspected
                  ? ", repeat-query defense engaged"
                  : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tpch::TpchConfig cfg;
  cfg.num_orders = 2000;
  tpch::TpchDataset data(cfg);
  engine::ExecContext ctx;
  rel::Catalog catalog = data.catalog();
  auto executor = std::make_shared<const rel::PlanExecutor>(&ctx, &catalog);

  core::UpaConfig upa_cfg;
  upa_cfg.epsilon = 0.5;
  core::UpaRunner runner(upa_cfg);

  if (argc >= 2) {
    return RunOne(ctx, executor, data, runner, argv[1],
                  argc >= 3 ? argv[2] : "");
  }

  const std::vector<std::string> demo = {
      "SELECT COUNT(*) FROM lineitem",
      "SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
      "WHERE l_shipdate >= 365 AND l_shipdate < 730",
      "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = o_custkey "
      "WHERE o_orderpriority <> '1-URGENT'",
  };
  for (const std::string& sql : demo) {
    int rc = RunOne(ctx, executor, data, runner, sql, "");
    if (rc != 0) return rc;
  }
  return 0;
}
