file(REMOVE_RECURSE
  "libupa_benchutil.a"
)
