# Empty dependencies file for dp_gaussian_test.
# This may be replaced when dependencies are built.
