file(REMOVE_RECURSE
  "libupa_dp.a"
)
