// Concurrency tests for the service layer and the shared enforcer
// registry. The suite names (ServiceStress*, RangeEnforcerConcurrency*)
// are matched by the TSan CI job's -R filter, so every test here must be
// race-free under ThreadSanitizer.
//
// The headline assertion: a concurrent mixed-tenant run releases values
// bit-identical to a sequential single-client replay under the same seeds.
// That holds because (a) each tenant's requests execute FIFO, (b) each
// dataset here is owned by one client, so its request order is the
// client's submission order, and (c) every source of randomness is keyed
// by the request seed — never by thread identity or wall clock.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "upa/simple_query.h"

namespace upa::service {
namespace {

constexpr int kClients = 8;
constexpr int kQueriesPerClient = 3;

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 4, .default_partitions = 4});
  return ctx;
}

core::QueryInstance SumQuery(size_t n, uint64_t salt,
                             const std::string& name) {
  core::SimpleQuerySpec<double> spec;
  spec.name = name;
  spec.ctx = &Ctx();
  auto values = std::make_shared<std::vector<double>>();
  values->reserve(n);
  Rng rng(salt * 7919 + 13);
  for (size_t i = 0; i < n; ++i) values->push_back(rng.UniformDouble(0.0, 1.0));
  spec.records = values;
  spec.map_record = [](const double& v) { return core::Vec{v}; };
  spec.sample_domain = [](Rng& rng2) { return rng2.UniformDouble(0.0, 1.0); };
  return core::MakeSimpleQuery(std::move(spec));
}

ServiceConfig StressConfig() {
  ServiceConfig config;
  config.upa.sample_n = 64;
  config.budget_per_dataset = 10.0;
  config.max_in_flight = 4;
  return config;
}

QueryRequest ClientRequest(int client, int j) {
  // Tenants are shared between clients (i % 3); datasets are per-client,
  // so each dataset's request order is one client's submission order.
  QueryRequest request;
  request.tenant = "t" + std::to_string(client % 3);
  request.dataset_id = "d" + std::to_string(client);
  request.query = SumQuery(1500 + 100 * static_cast<size_t>(client),
                           static_cast<uint64_t>(client),
                           "sum-" + std::to_string(client));
  request.epsilon = 0.1;
  request.seed = static_cast<uint64_t>(client * 100 + j + 1);
  return request;
}

TEST(ServiceStressTest, ConcurrentMixedTenantsBitIdenticalToSequential) {
  // Noise stays ON: bit-identity must cover the full release (clamp +
  // Laplace), not just the deterministic prefix.
  std::vector<std::vector<double>> concurrent(
      kClients, std::vector<double>(kQueriesPerClient, 0.0));
  {
    UpaService service(&Ctx(), StressConfig());
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&service, &concurrent, i] {
        for (int j = 0; j < kQueriesPerClient; ++j) {
          auto result = service.Execute(ClientRequest(i, j));
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          concurrent[i][j] = result.value().released;
        }
      });
    }
    for (auto& client : clients) client.join();
  }

  // Sequential replay: one client at a time on a fresh service, same
  // requests and seeds, same per-dataset submission order.
  UpaService reference(&Ctx(), StressConfig());
  for (int i = 0; i < kClients; ++i) {
    for (int j = 0; j < kQueriesPerClient; ++j) {
      auto result = reference.Execute(ClientRequest(i, j));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(concurrent[i][j], result.value().released)
          << "client " << i << " query " << j;
    }
  }
}

TEST(ServiceStressTest, SharedDatasetHammerStaysConsistent) {
  // 8 tenants hammer ONE dataset with the same repeated query. Their
  // interleaving is nondeterministic, but the shared registry must stay
  // coherent: every run after the first collides with a prior (same query,
  // same data → same partition outputs), so the enforcer must flag it.
  UpaService service(&Ctx(), StressConfig());
  std::atomic<int> attacks{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&service, &attacks, &completed, i] {
      for (int j = 0; j < kQueriesPerClient; ++j) {
        QueryRequest request;
        request.tenant = "t" + std::to_string(i);
        request.dataset_id = "shared";
        request.query = SumQuery(2000, 42, "repeat");
        request.epsilon = 0.1;
        request.seed = 5;  // identical runs → identical partition outputs
        auto result = service.Execute(request);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ++completed;
        if (result.value().attack_suspected) ++attacks;
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(completed.load(), kClients * kQueriesPerClient);
  // Every run but the very first saw a colliding prior in the registry.
  EXPECT_EQ(attacks.load(), kClients * kQueriesPerClient - 1);
  EXPECT_NEAR(service.accountant().Spent("shared"),
              0.1 * kClients * kQueriesPerClient, 1e-9);
}

TEST(RangeEnforcerConcurrencyTest, ParallelSessionsRegisterEveryRun) {
  // Many threads share one registry and run the Enforce → Register window
  // under a Session each, with non-colliding outputs: the registry must
  // end up with exactly one entry per run and no decision may suspect an
  // attack.
  core::RangeEnforcer enforcer;
  constexpr int kThreads = 8;
  constexpr int kRuns = 16;
  std::atomic<int> suspected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&enforcer, &suspected, t] {
      for (int r = 0; r < kRuns; ++r) {
        double base = t * 1000.0 + r * 10.0;
        std::vector<double> outputs{base, base + 5.0};
        core::RangeEnforcer::Session session(enforcer);
        auto decision = session.Enforce(
            outputs, [&](size_t removed) {
              return std::vector<double>{base + removed, base + removed + 5.0};
            });
        if (decision.attack_suspected) ++suspected;
        session.Register(outputs);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(enforcer.registry_size(),
            static_cast<size_t>(kThreads * kRuns));
  EXPECT_EQ(suspected.load(), 0);
}

TEST(RangeEnforcerConcurrencyTest, CollidingSessionsSeparateUnderContention) {
  // All threads submit the SAME outputs. Whoever wins the race registers
  // {10, 20}; every later session must detect the collision and remove
  // records until its outputs separate — concurrently, via Session locks.
  core::RangeEnforcer enforcer;
  constexpr int kThreads = 8;
  std::atomic<int> suspected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&enforcer, &suspected, t] {
      std::vector<double> outputs{10.0, 20.0};
      core::RangeEnforcer::Session session(enforcer);
      auto decision = session.Enforce(outputs, [&](size_t removed) {
        // Separate into a per-thread band so later threads don't re-collide.
        double base = 100.0 * (t + 1) + removed;
        return std::vector<double>{base, base + 50.0};
      });
      if (decision.attack_suspected) ++suspected;
      session.Register(outputs);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(enforcer.registry_size(), static_cast<size_t>(kThreads));
  // Exactly one thread found an empty registry (or one whose entries all
  // differed); all others collided with the first registration.
  EXPECT_EQ(suspected.load(), kThreads - 1);
}

}  // namespace
}  // namespace upa::service
