// Execution metrics for the mini-Spark engine.
//
// The paper's evaluation reasons about *where* UPA's overhead comes from
// (shuffle rounds for joins and the Range Enforcer, §VI-D; cache hit rate in
// the sampled-neighbour phase, Fig 4b). These counters make the same
// attribution observable in this reproduction.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace upa::engine {

/// Latency histogram with power-of-two buckets from 1µs up: bucket i
/// covers (2^(i-1)µs, 2^i µs], bucket 0 is everything up to 1µs, the last
/// bucket is open-ended (≥ ~67s). Quantiles are estimated from the bucket
/// upper bounds, which is the resolution observability needs (p50/p99 per
/// service phase), not a timing instrument.
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 28;

  uint64_t count = 0;
  double sum_seconds = 0.0;
  double max_seconds = 0.0;
  std::array<uint64_t, kBuckets> buckets{};

  /// Upper bound (seconds) of bucket i.
  static double BucketUpperSeconds(size_t i);
  /// Bucket index for a latency.
  static size_t BucketOf(double seconds);

  /// Estimated quantile (q in [0,1]) as the upper bound of the bucket
  /// containing the q-th observation; 0 when empty.
  double QuantileSeconds(double q) const;
  double MeanSeconds() const { return count == 0 ? 0.0 : sum_seconds / count; }

  HistogramSnapshot operator-(const HistogramSnapshot& base) const;

  /// "count=12 mean=1.2ms p50=0.9ms p99=4.1ms max=5.0ms"
  std::string ToString() const;
};

/// Point-in-time copy of all counters. Subtractable to get per-query deltas.
struct MetricsSnapshot {
  uint64_t tasks_launched = 0;
  uint64_t records_processed = 0;
  uint64_t shuffle_rounds = 0;
  uint64_t shuffle_records = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Columnar engine: batch-kernel launches and the rows they covered
  /// (one "batch" = one fixed-size chunk of a vectorized operator).
  uint64_t kernel_batches = 0;
  uint64_t kernel_rows = 0;
  std::map<std::string, double> phase_seconds;
  /// Per-phase parallelism: how many pool chunk-tasks each named phase
  /// fanned out to (1 per call = that phase ran inline/sequentially).
  std::map<std::string, uint64_t> phase_tasks;
  /// Free-form named counters (service admission, sensitivity-cache
  /// hits/misses, budget refunds, ...).
  std::map<std::string, uint64_t> counters;
  /// Per-phase latency distributions (one observation per query/request,
  /// vs phase_seconds which accumulates total time). Morsel-driven phases
  /// also record one observation per executed morsel under
  /// "morsel/<phase>", making chunk-duration spread observable (the old
  /// static chunking hid it entirely).
  std::map<std::string, HistogramSnapshot> latency;
  /// Point-in-time gauges (doubles, last-write-wins; not subtractable —
  /// operator- copies the later value). "imbalance/<phase>" is the worst
  /// max/mean morsel-duration ratio seen for that phase since Reset: 1.0
  /// means perfectly balanced work, thread_count means one morsel carried
  /// the entire phase.
  std::map<std::string, double> gauges;

  MetricsSnapshot operator-(const MetricsSnapshot& base) const;

  double cache_hit_rate() const {
    uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) /
                                  static_cast<double>(total);
  }

  std::string ToString() const;
};

/// Thread-safe counters. One instance lives in each ExecContext.
class ExecMetrics {
 public:
  void AddTasks(uint64_t n) { tasks_.fetch_add(n, std::memory_order_relaxed); }
  void AddRecords(uint64_t n) {
    records_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddShuffleRound() {
    shuffle_rounds_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddShuffleRecords(uint64_t n) {
    shuffle_records_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void AddCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddKernelBatches(uint64_t n) {
    kernel_batches_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddKernelRows(uint64_t n) {
    kernel_rows_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddPhaseSeconds(const std::string& phase, double seconds);
  /// Record that `phase` split its work into `n` pool chunk-tasks.
  void AddPhaseTasks(const std::string& phase, uint64_t n);
  /// Bump a free-form named counter.
  void AddCounter(const std::string& name, uint64_t n = 1);
  /// Record one latency observation into the named histogram.
  void RecordLatency(const std::string& name, double seconds);
  /// Set a point-in-time gauge (last-write-wins).
  void SetGauge(const std::string& name, double value);
  /// Keep the larger of the existing gauge and `value` (worst-seen gauges).
  void MaxGauge(const std::string& name, double value);
  /// Record one morsel-driven parallel section: every duration in
  /// `morsel_seconds` lands in the "morsel/<phase>" histogram and the
  /// run's max/mean imbalance updates the worst-seen "imbalance/<phase>"
  /// gauge. No-op on an empty sample.
  void RecordMorselRun(const std::string& phase,
                       const std::vector<double>& morsel_seconds);

  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> tasks_{0};
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> shuffle_rounds_{0};
  std::atomic<uint64_t> shuffle_records_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> kernel_batches_{0};
  std::atomic<uint64_t> kernel_rows_{0};

  mutable std::mutex phase_mu_;
  std::map<std::string, double> phase_seconds_;
  std::map<std::string, uint64_t> phase_tasks_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, HistogramSnapshot> latency_;
  std::map<std::string, double> gauges_;
};

}  // namespace upa::engine
