// Blocking client for the UPA wire protocol.
//
// One Client is one TCP connection. Query() writes a kQueryRequest frame
// and reads frames until the response carrying the request's client_tag
// arrives — responses may complete out of submission order, so earlier
// arrivals for other tags are parked and handed to their waiters. A single
// Client is NOT thread-safe; the load generator opens one per worker.
//
// The raw SendBytes/ReadFrame escape hatch exists for the protocol torture
// suites, which need to write deliberately corrupt bytes and observe the
// server's kError frame + close.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "net/wire.h"

namespace upa::net {

class Client {
 public:
  /// Connect to host:port; fails with kDeadlineExceeded when the connect
  /// does not complete within timeout_ms.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 int64_t timeout_ms = 5000);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one query and block for ITS response (matched by client_tag; a
  /// tag of 0 is replaced with an auto-assigned unique one). A transport
  /// or timeout failure poisons the connection. A server kError frame is
  /// returned as its Status (the server closes after sending one).
  Result<WireResult> Query(WireQuery query, int64_t timeout_ms = 30000);

  /// Fire a query without waiting; pair with Await(tag). Returns the tag.
  Result<uint64_t> Send(WireQuery query);
  /// Block for the response to a previously Send()t tag.
  Result<WireResult> Await(uint64_t tag, int64_t timeout_ms = 30000);

  /// The server's "/stats" text dump (service report + net counters).
  Result<std::string> Stats(int64_t timeout_ms = 5000);

  /// Raw escape hatches for protocol-torture tests.
  Status SendBytes(std::string_view bytes);
  Result<Frame> ReadFrame(int64_t timeout_ms = 5000);

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Read until the assembler yields a frame (or timeout/transport error).
  Result<Frame> NextFrame(int64_t deadline_ns);

  int fd_;
  uint64_t next_tag_ = 1;
  FrameAssembler assembler_;
  /// Responses that arrived while waiting for a different tag.
  std::map<uint64_t, WireResult> parked_;
  /// A transport failure is terminal for the connection; latched here so
  /// every later call fails the same way instead of reading garbage.
  Status broken_ = Status::Ok();
};

}  // namespace upa::net
