file(REMOVE_RECURSE
  "CMakeFiles/engine_ops_test.dir/engine_ops_test.cpp.o"
  "CMakeFiles/engine_ops_test.dir/engine_ops_test.cpp.o.d"
  "engine_ops_test"
  "engine_ops_test.pdb"
  "engine_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
