file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_rmse.dir/bench_fig2a_rmse.cpp.o"
  "CMakeFiles/bench_fig2a_rmse.dir/bench_fig2a_rmse.cpp.o.d"
  "bench_fig2a_rmse"
  "bench_fig2a_rmse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_rmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
