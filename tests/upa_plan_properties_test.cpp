// Cross-cutting property sweeps over the full nine-query suite: invariants
// that must hold for every query, seed and churn level.
#include <gtest/gtest.h>

#include <cmath>

#include "queries/suite.h"
#include "upa/runner.h"

namespace upa::queries {
namespace {

SuiteConfig PropSuite() {
  SuiteConfig cfg;
  cfg.tpch.num_orders = 300;
  cfg.ml.num_points = 2000;
  cfg.threads = 2;
  cfg.engine_partitions = 3;
  return cfg;
}

QuerySuite& Suite() {
  static QuerySuite suite(PropSuite());
  return suite;
}

core::UpaConfig PropConfig() {
  core::UpaConfig cfg;
  cfg.sample_n = 100;
  cfg.add_noise = false;
  cfg.enable_enforcer = false;
  return cfg;
}

struct Case {
  std::string query;
  uint64_t seed;
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << c.query << "/seed" << c.seed;
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const auto& name : QuerySuite::AllQueryNames()) {
    for (uint64_t seed : {11u, 12u, 13u}) cases.push_back({name, seed});
  }
  return cases;
}

class QueryPropertySweep : public ::testing::TestWithParam<Case> {};

// Invariant 1: UPA's union-preserving reduce reproduces the vanilla output
// exactly (with the enforcer disabled), for any sampling seed.
TEST_P(QueryPropertySweep, RawOutputMatchesNative) {
  const auto& [name, seed] = GetParam();
  core::UpaRunner runner(PropConfig());
  auto result = runner.Run(Suite().MakeInstance(name), seed);
  ASSERT_TRUE(result.ok());
  double native = Suite().RunNative(name);
  EXPECT_NEAR(result.value().raw_output, native,
              1e-6 * std::max(1.0, std::fabs(native)));
}

// Invariant 2: exactly 2n sampled-neighbour outputs, all finite.
TEST_P(QueryPropertySweep, NeighbourOutputsWellFormed) {
  const auto& [name, seed] = GetParam();
  core::UpaRunner runner(PropConfig());
  auto result = runner.Run(Suite().MakeInstance(name), seed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().neighbour_outputs.size(),
            2 * result.value().sample_size);
  for (double o : result.value().neighbour_outputs) {
    EXPECT_TRUE(std::isfinite(o));
  }
}

// Invariant 3: the inferred range contains the (clamp-input) raw output,
// and sensitivity is non-negative and finite.
TEST_P(QueryPropertySweep, RangeAndSensitivitySane) {
  const auto& [name, seed] = GetParam();
  core::UpaRunner runner(PropConfig());
  auto result = runner.Run(Suite().MakeInstance(name), seed);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().local_sensitivity, 0.0);
  EXPECT_TRUE(std::isfinite(result.value().local_sensitivity));
  EXPECT_TRUE(result.value().out_range.Contains(result.value().raw_output));
}

// Invariant 4: determinism — identical (query, seed) gives identical
// sensitivity, range and raw output.
TEST_P(QueryPropertySweep, DeterministicPerSeed) {
  const auto& [name, seed] = GetParam();
  core::UpaRunner r1(PropConfig()), r2(PropConfig());
  auto a = r1.Run(Suite().MakeInstance(name), seed);
  auto b = r2.Run(Suite().MakeInstance(name), seed);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.value().raw_output, b.value().raw_output);
  EXPECT_DOUBLE_EQ(a.value().local_sensitivity,
                   b.value().local_sensitivity);
  EXPECT_DOUBLE_EQ(a.value().out_range.lo, b.value().out_range.lo);
}

// Invariant 5: removing one record through churn changes the raw output by
// at most the ground-truth local sensitivity.
TEST_P(QueryPropertySweep, ChurnDeltaBoundedByGroundTruth) {
  const auto& [name, seed] = GetParam();
  auto gt = Suite().ComputeGroundTruth(name, 0, seed);
  ASSERT_TRUE(gt.ok());
  ChurnedData churn = Suite().MakeChurn(name, 1, seed);
  double before = Suite().RunNative(name);
  double after = Suite().RunNative(name, &churn);
  EXPECT_LE(std::fabs(before - after),
            gt.value().local_sensitivity + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, QueryPropertySweep,
                         ::testing::ValuesIn(AllCases()));

}  // namespace
}  // namespace upa::queries
