file(REMOVE_RECURSE
  "libupa_groundtruth.a"
)
