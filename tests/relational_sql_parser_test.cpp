#include "relational/sql_parser.h"

#include <gtest/gtest.h>

#include <memory>

#include "relational/executor.h"

namespace upa::rel {
namespace {

TEST(SqlParserTest, CountStar) {
  auto plan = ParseSql("SELECT COUNT(*) FROM lineitem");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(PlanToString(plan.value()), "Count(Scan(lineitem))");
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  auto plan = ParseSql("select count(*) from lineitem");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(PlanToString(plan.value()), "Count(Scan(lineitem))");
}

TEST(SqlParserTest, SumWithArithmetic) {
  auto plan =
      ParseSql("SELECT SUM(l_extendedprice * l_discount) FROM lineitem");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(PlanToString(plan.value()),
            "Sum(Scan(lineitem), (l_extendedprice * l_discount))");
}

TEST(SqlParserTest, AvgMinMax) {
  for (auto [sql, prefix] :
       {std::pair{"SELECT AVG(x) FROM t", "Avg"},
        std::pair{"SELECT MIN(x) FROM t", "Min"},
        std::pair{"SELECT MAX(x) FROM t", "Max"}}) {
    auto plan = ParseSql(sql);
    ASSERT_TRUE(plan.ok()) << sql;
    EXPECT_EQ(PlanToString(plan.value()),
              std::string(prefix) + "(Scan(t), x)");
  }
}

TEST(SqlParserTest, WhereWithComparisons) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= 365 AND "
      "l_shipdate < 730");
  ASSERT_TRUE(plan.ok());
  std::string s = PlanToString(plan.value());
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find(">="), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
}

TEST(SqlParserTest, JoinChain) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey "
      "JOIN supplier ON l_suppkey = s_suppkey");
  ASSERT_TRUE(plan.ok());
  PlanStats stats = AnalyzePlan(plan.value());
  EXPECT_EQ(stats.num_joins, 2u);
  EXPECT_EQ(stats.num_scans, 3u);
}

TEST(SqlParserTest, InListAndStrings) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM part WHERE p_size IN (1, 4, 7) AND "
      "p_brand != 'Brand#45'");
  ASSERT_TRUE(plan.ok());
  std::string s = PlanToString(plan.value());
  EXPECT_NE(s.find("IN (1, 4, 7)"), std::string::npos);
  EXPECT_NE(s.find("Brand#45"), std::string::npos);
}

TEST(SqlParserTest, NotAndOrPrecedence) {
  auto plan = ParseSql(
      "SELECT COUNT(*) FROM t WHERE NOT a = 1 AND b = 2 OR c = 3");
  ASSERT_TRUE(plan.ok());
  // OR binds loosest: ((NOT(a=1) AND b=2) OR c=3).
  std::string s = PlanToString(plan.value());
  EXPECT_NE(s.find("OR"), std::string::npos);
}

TEST(SqlParserTest, ParenthesizedExpressions) {
  auto plan =
      ParseSql("SELECT SUM((a + b) * 2.5) FROM t WHERE (a = 1 OR b = 2)");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(PlanToString(plan.value()).find("2.5"), std::string::npos);
}

TEST(SqlParserTest, ErrorsCarryPosition) {
  for (const char* bad :
       {"", "SELECT", "SELECT COUNT(*)", "SELECT COUNT(*) FROM",
        "SELECT FROM t", "SELECT COUNT(*) FROM t WHERE",
        "SELECT COUNT(*) FROM t extra", "SELECT COUNT(x) FROM t",
        "SELECT COUNT(*) FROM t WHERE a IN ()",
        "SELECT SUM( FROM t", "SELECT COUNT(*) FROM t WHERE 'unterminated"}) {
    auto plan = ParseSql(bad);
    EXPECT_FALSE(plan.ok()) << bad;
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(SqlParserTest, ParsedPlanExecutes) {
  Table t("t",
          Schema({{"k", ValueType::kInt},
                  {"x", ValueType::kDouble},
                  {"name", ValueType::kString}}),
          std::vector<Row>{
              {Value{int64_t{1}}, Value{2.0}, Value{std::string("a")}},
              {Value{int64_t{2}}, Value{4.0}, Value{std::string("b")}},
              {Value{int64_t{3}}, Value{6.0}, Value{std::string("a")}},
          });
  Catalog catalog{{"t", &t}};
  engine::ExecContext ctx(engine::ExecConfig{.threads = 1});
  PlanExecutor executor(&ctx, &catalog);

  auto count = ParseSql("SELECT COUNT(*) FROM t WHERE name = 'a'");
  ASSERT_TRUE(count.ok());
  auto r1 = executor.Execute(count.value());
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1.value().output, 2.0);

  auto sum = ParseSql("SELECT SUM(x * 10) FROM t WHERE k >= 2");
  ASSERT_TRUE(sum.ok());
  auto r2 = executor.Execute(sum.value());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2.value().output, 100.0);

  auto avg = ParseSql("SELECT AVG(x) FROM t");
  ASSERT_TRUE(avg.ok());
  auto r3 = executor.Execute(avg.value());
  ASSERT_TRUE(r3.ok());
  EXPECT_DOUBLE_EQ(r3.value().output, 4.0);
}

TEST(SqlParserTest, RoundTripsTpchStyleQueries) {
  // The paper's query shapes, in SQL form, all parse.
  for (const char* sql : {
           "SELECT COUNT(*) FROM lineitem",
           "SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = "
           "l_orderkey WHERE o_orderdate >= 400 AND o_orderdate < 490 AND "
           "l_commitdate < l_receiptdate",
           "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE "
           "l_shipdate >= 365 AND l_shipdate < 730 AND l_discount >= 0.05 "
           "AND l_discount <= 0.07 AND l_quantity < 24",
           "SELECT COUNT(*) FROM customer JOIN orders ON c_custkey = "
           "o_custkey WHERE o_orderpriority <> '1-URGENT'",
           "SELECT SUM(ps_supplycost * ps_availqty) FROM nation JOIN "
           "supplier ON n_nationkey = s_nationkey JOIN partsupp ON "
           "s_suppkey = ps_suppkey WHERE n_name = 'GERMANY'",
       }) {
    auto plan = ParseSql(sql);
    EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
  }
}

}  // namespace
}  // namespace upa::rel
