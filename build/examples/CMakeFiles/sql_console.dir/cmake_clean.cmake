file(REMOVE_RECURSE
  "CMakeFiles/sql_console.dir/sql_console.cpp.o"
  "CMakeFiles/sql_console.dir/sql_console.cpp.o.d"
  "sql_console"
  "sql_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
