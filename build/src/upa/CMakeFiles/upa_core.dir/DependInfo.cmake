
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/upa/exclusion.cpp" "src/upa/CMakeFiles/upa_core.dir/exclusion.cpp.o" "gcc" "src/upa/CMakeFiles/upa_core.dir/exclusion.cpp.o.d"
  "/root/repo/src/upa/group.cpp" "src/upa/CMakeFiles/upa_core.dir/group.cpp.o" "gcc" "src/upa/CMakeFiles/upa_core.dir/group.cpp.o.d"
  "/root/repo/src/upa/range_enforcer.cpp" "src/upa/CMakeFiles/upa_core.dir/range_enforcer.cpp.o" "gcc" "src/upa/CMakeFiles/upa_core.dir/range_enforcer.cpp.o.d"
  "/root/repo/src/upa/runner.cpp" "src/upa/CMakeFiles/upa_core.dir/runner.cpp.o" "gcc" "src/upa/CMakeFiles/upa_core.dir/runner.cpp.o.d"
  "/root/repo/src/upa/types.cpp" "src/upa/CMakeFiles/upa_core.dir/types.cpp.o" "gcc" "src/upa/CMakeFiles/upa_core.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/upa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/upa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/upa_dp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
