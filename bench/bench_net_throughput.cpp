// Network front-door throughput: concurrent wire-protocol clients against
// one in-process Server over loopback.
//
// Each worker thread owns one TCP connection, one tenant and one private
// dataset (the bit-identity regime), and keeps a window of pipelined
// requests outstanding — an open-loop generator bounded only by the window,
// so the server's event loop, not the client's think time, is what
// saturates. Client-side latency (send → matching response) is recorded in
// an engine::Metrics histogram; the table reports wall clock, queries/sec,
// and the p50/p99 of that distribution next to the server-side
// service/total histogram, so protocol + loop overhead is directly
// attributable.
//
// Knobs: UPA_SAMPLE_N, UPA_RUNS (queries per client), UPA_THREADS (engine
// pool size, default 4), UPA_PIPELINE (window per connection, default 8),
// UPA_SEED.
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "engine/metrics.h"
#include "net/client.h"
#include "net/server.h"
#include "service/service.h"
#include "upa/simple_query.h"

using namespace upa;

namespace {

core::QueryInstance MakeSumQuery(engine::ExecContext* ctx,
                                 std::shared_ptr<std::vector<double>> values,
                                 const std::string& name) {
  core::SimpleQuerySpec<double> spec;
  spec.name = name;
  spec.ctx = ctx;
  spec.records = values;
  spec.map_record = [](const double& v) { return core::Vec{v}; };
  spec.sample_domain = [](Rng& rng) { return rng.UniformDouble(0.0, 1.0); };
  return core::MakeSimpleQuery(std::move(spec));
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback
                          : static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::BenchEnv::FromEnv();
  const size_t threads = env.threads == 0 ? 4 : env.threads;
  const size_t window = EnvSize("UPA_PIPELINE", 8);
  bench::PrintBanner("Net throughput — wire-protocol clients", env);
  std::printf("engine pool threads: %zu, pipeline window: %zu\n\n", threads,
              window);

  const size_t queries_per_client = env.runs;
  const size_t dataset_records = 10 * env.sample_n;

  TablePrinter table({"clients", "queries", "wall (ms)", "q/s",
                      "net p50 (ms)", "net p99 (ms)", "svc p99 (ms)"});
  for (size_t clients : {1u, 2u, 4u, 8u}) {
    engine::ExecContext ctx(
        engine::ExecConfig{.threads = threads, .default_partitions = 4});
    service::ServiceConfig config;
    config.upa = env.MakeUpaConfig();
    config.budget_per_dataset = 1e9;  // throughput, not budget, under test
    config.max_in_flight = threads;
    service::UpaService svc(&ctx, config);

    std::vector<std::shared_ptr<std::vector<double>>> datasets;
    for (size_t i = 0; i < clients; ++i) {
      auto values = std::make_shared<std::vector<double>>();
      Rng rng(env.seed + i);
      for (size_t r = 0; r < dataset_records; ++r) {
        values->push_back(rng.UniformDouble(0.0, 1.0));
      }
      datasets.push_back(std::move(values));
    }

    // Toy compiler: "sum:<i>" → a sum over client i's private dataset.
    net::QueryCompiler compiler =
        [&ctx, &datasets](
            const net::WireQuery& wire) -> Result<core::QueryInstance> {
      size_t i = static_cast<size_t>(
          std::strtoull(wire.sql.c_str() + 4, nullptr, 10));
      if (wire.sql.rfind("sum:", 0) != 0 || i >= datasets.size()) {
        return Status::InvalidArgument("expected sum:<client>");
      }
      return MakeSumQuery(&ctx, datasets[i], wire.sql);
    };

    net::ServerConfig net_cfg;
    net_cfg.max_pipelined_per_connection = window;
    net::Server server(&svc, compiler, net_cfg);
    Status started = server.Start();
    UPA_CHECK_MSG(started.ok(), started.ToString());

    Stopwatch wall;
    std::vector<std::thread> workers;
    for (size_t i = 0; i < clients; ++i) {
      workers.emplace_back([&, i] {
        auto connected = net::Client::Connect("127.0.0.1", server.port());
        UPA_CHECK_MSG(connected.ok(), connected.status().ToString());
        std::unique_ptr<net::Client> client = std::move(connected).value();
        std::deque<std::pair<uint64_t, Stopwatch>> outstanding;
        auto await_one = [&] {
          auto [tag, timer] = outstanding.front();
          outstanding.pop_front();
          auto result = client->Await(tag);
          UPA_CHECK_MSG(result.ok(), result.status().ToString());
          UPA_CHECK_MSG(result.value().ok(),
                        result.value().status().ToString());
          ctx.metrics().RecordLatency("net/request", timer.ElapsedSeconds());
        };
        for (size_t q = 0; q < queries_per_client; ++q) {
          if (outstanding.size() >= window) await_one();
          net::WireQuery query;
          query.tenant = "t" + std::to_string(i);
          query.dataset_id = "d" + std::to_string(i);
          query.epsilon = 0.1;
          query.seed = env.seed + i * 1000 + q;
          query.sql = "sum:" + std::to_string(i);
          Stopwatch timer;
          auto tag = client->Send(query);
          UPA_CHECK_MSG(tag.ok(), tag.status().ToString());
          outstanding.emplace_back(tag.value(), timer);
        }
        while (!outstanding.empty()) await_one();
      });
    }
    for (auto& worker : workers) worker.join();
    double wall_seconds = wall.ElapsedSeconds();
    server.Stop();

    engine::MetricsSnapshot snapshot = ctx.metrics().Snapshot();
    const engine::HistogramSnapshot& net = snapshot.latency["net/request"];
    const engine::HistogramSnapshot& svc_total =
        snapshot.latency["service/total"];
    size_t queries = clients * queries_per_client;
    table.AddRow(
        {std::to_string(clients), std::to_string(queries),
         TablePrinter::FormatDouble(wall_seconds * 1e3, 2),
         TablePrinter::FormatDouble(queries / wall_seconds, 1),
         TablePrinter::FormatDouble(net.QuantileSeconds(0.5) * 1e3, 3),
         TablePrinter::FormatDouble(net.QuantileSeconds(0.99) * 1e3, 3),
         TablePrinter::FormatDouble(svc_total.QuantileSeconds(0.99) * 1e3,
                                    3)});
  }
  table.Print("net throughput vs concurrent wire clients");
  return 0;
}
