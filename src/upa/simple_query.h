// MakeSimpleQuery: build a QueryInstance from a plain record vector, a
// Mapper and (optionally) post/scalarize — the shape of user-defined
// map+reduce queries like Linear Regression and KMeans (paper §III).
//
// execute_phases runs on the engine: S' records are distributed into one
// engine partition per enforcer partition and mapped + pre-reduced in
// parallel (one task per partition, exactly Algorithm 1's ReduceByPar);
// the sampled records and the synthetic domain records are mapped as small
// datasets of their own.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/dataset.h"
#include "engine/shuffle.h"
#include "upa/query_instance.h"

namespace upa::core {

template <typename Record>
struct SimpleQuerySpec {
  std::string name;
  engine::ExecContext* ctx = nullptr;
  /// The private input dataset x.
  std::shared_ptr<const std::vector<Record>> records;
  /// M: record -> Vec.
  std::function<Vec(const Record&)> map_record;
  /// Draw a synthetic record from the domain D \ x (for the "record added"
  /// neighbours). Must be distribution-plausible for the dataset.
  std::function<Record(Rng&)> sample_domain;
  /// Optional post-processing / scalarization (see QueryInstance).
  std::function<Vec(const Vec&)> post;
  std::function<double(const Vec&)> scalarize;
};

template <typename Record>
QueryInstance MakeSimpleQuery(SimpleQuerySpec<Record> spec) {
  UPA_CHECK(spec.ctx != nullptr);
  UPA_CHECK(spec.records != nullptr);
  UPA_CHECK_MSG(spec.map_record && spec.sample_domain,
                "SimpleQuerySpec needs map_record and sample_domain");

  QueryInstance q;
  q.name = spec.name;
  q.ctx = spec.ctx;
  q.num_records = spec.records->size();
  q.post = spec.post;
  q.scalarize = spec.scalarize;

  q.execute_phases = [spec = std::move(spec)](
                         std::span<const size_t> sample_indices,
                         size_t num_partitions, size_t num_domain,
                         uint64_t seed) {
    const std::vector<Record>& records = *spec.records;
    MappedBatches out;

    // S' = records not in the sample, tagged with their enforcer
    // partition (record i belongs to partition i % num_partitions).
    std::vector<std::pair<size_t, Record>> sprime;
    sprime.reserve(records.size() - sample_indices.size());
    {
      size_t cursor = 0;  // sample_indices is sorted
      for (size_t i = 0; i < records.size(); ++i) {
        if (cursor < sample_indices.size() && sample_indices[cursor] == i) {
          ++cursor;
          continue;
        }
        sprime.push_back({i % num_partitions, records[i]});
      }
    }
    // Per-partition reduction goes through a *real* record shuffle — the
    // RANGE ENFORCER exchanges same-partition records between workers
    // (paper §VI-D), which is the overhead source for local-computation
    // queries.
    out.sprime_partials = spec.ctx->TimePhase("upa/map_sprime", [&] {
      auto shuffled = engine::ShuffleByKey(
          engine::Dataset<std::pair<size_t, Record>>::FromVector(
              spec.ctx, std::move(sprime)),
          num_partitions);
      auto mapped = shuffled.Map([&spec](const std::pair<size_t, Record>& pr) {
        return std::pair<size_t, Vec>{pr.first, spec.map_record(pr.second)};
      });
      std::vector<Vec> partials(num_partitions, VecSum::Identity());
      for (size_t p = 0; p < mapped.NumPartitions(); ++p) {
        for (const auto& [pid, v] : mapped.partition(p)) {
          partials[pid] = VecSum::Combine(std::move(partials[pid]), v);
        }
      }
      return partials;
    });

    // Sampled records S.
    std::vector<Record> sampled;
    sampled.reserve(sample_indices.size());
    for (size_t idx : sample_indices) sampled.push_back(records[idx]);
    out.sample_mapped = spec.ctx->TimePhase("upa/map_sample", [&] {
      return engine::Dataset<Record>::FromVector(spec.ctx, std::move(sampled))
          .Map(spec.map_record)
          .Collect();
    });

    // Synthetic domain records (D \ x side of the neighbour sampling).
    Rng domain_rng = Rng::ForStream(seed, "upa/domain/" + spec.name);
    std::vector<Record> domain;
    domain.reserve(num_domain);
    for (size_t i = 0; i < num_domain; ++i) {
      domain.push_back(spec.sample_domain(domain_rng));
    }
    out.domain_mapped = spec.ctx->TimePhase("upa/map_domain", [&] {
      return engine::Dataset<Record>::FromVector(spec.ctx, std::move(domain))
          .Map(spec.map_record)
          .Collect();
    });
    return out;
  };
  return q;
}

}  // namespace upa::core
