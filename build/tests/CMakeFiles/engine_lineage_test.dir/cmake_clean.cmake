file(REMOVE_RECURSE
  "CMakeFiles/engine_lineage_test.dir/engine_lineage_test.cpp.o"
  "CMakeFiles/engine_lineage_test.dir/engine_lineage_test.cpp.o.d"
  "engine_lineage_test"
  "engine_lineage_test.pdb"
  "engine_lineage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_lineage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
