# Empty dependencies file for upa_queries.
# This may be replaced when dependencies are built.
