#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/hash.h"

namespace upa::net {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                            ::strerror(errno));
  }
  return Status::Ok();
}

/// Failpoint probe usable in void handlers: non-OK (or an abort/delay
/// action) is surfaced as the injected Status for the caller to treat as a
/// transport failure on that connection.
Status Probe(const char* site) {
  if (Failpoints::Instance().AnyActive()) {
    return Failpoints::Instance().Evaluate(site);
  }
  return Status::Ok();
}

}  // namespace

Server::Server(service::UpaService* service, QueryCompiler compiler,
               ServerConfig config)
    : service_(service),
      compiler_(std::move(compiler)),
      config_(std::move(config)),
      loop_(config_.poller),
      mailbox_(std::make_shared<Mailbox>()) {
  mailbox_->loop = &loop_;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  if (service_ == nullptr) {
    return Status::InvalidArgument("server requires a service");
  }
  if (!compiler_) {
    return Status::InvalidArgument("server requires a query compiler");
  }
  if (config_.max_connections == 0) {
    return Status::InvalidArgument("max_connections must be positive");
  }
  if (config_.max_pipelined_per_connection == 0) {
    return Status::InvalidArgument(
        "max_pipelined_per_connection must be positive");
  }
  if (config_.max_frame_bytes < kFrameHeaderBytes) {
    return Status::InvalidArgument("max_frame_bytes is below a frame header");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + ::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable host '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Internal(std::string("bind: ") + ::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status st =
        Status::Internal(std::string("listen: ") + ::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    Status st =
        Status::Internal(std::string("getsockname: ") + ::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(bound.sin_port);
  if (Status st = SetNonBlocking(listen_fd_); !st.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  started_ = true;
  loop_thread_ = std::thread([this] {
    Status registered = loop_.RegisterFd(
        listen_fd_, /*want_read=*/true, /*want_write=*/false,
        [this](bool readable, bool, bool) {
          if (readable) HandleAccept();
        });
    UPA_CHECK_MSG(registered.ok(), registered.ToString());
    if (config_.tick_interval_ms > 0.0) {
      loop_.SetTickHandler(config_.tick_interval_ms, [this] { OnTick(); });
    }
    loop_.Run();
    // Loop exited: tear down every fd on the owning thread.
    for (auto& [id, conn] : connections_) {
      loop_.UnregisterFd(conn->fd);
      ::close(conn->fd);
      for (auto& [seq, token] : conn->inflight) {
        token->Cancel(StatusCode::kCancelled, "server shutting down");
      }
    }
    connections_.clear();
    loop_.UnregisterFd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  });
  return Status::Ok();
}

void Server::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;

  // Stop accepting (existing connections keep flowing while we drain).
  // Accept whatever the kernel already completed first: posted closures
  // run before fd events, so a handshake finished just before Stop()
  // would otherwise be dropped unserved with its accept event.
  loop_.RunInLoop([this] {
    HandleAccept();
    loop_.UnregisterFd(listen_fd_);
  });

  // Graceful drain: wait for in-flight queries and buffered responses.
  // The quiescence probe runs on the loop thread and first drains any
  // bytes the kernel already buffered — a request whose frame was sent
  // before Stop() but not yet read would otherwise be invisible to the
  // atomics and get cut off mid-handshake.
  int64_t deadline_ns =
      NowNanos() + static_cast<int64_t>(config_.drain_timeout_ms * 1e6);
  while (NowNanos() < deadline_ns) {
    auto probe = std::make_shared<std::promise<bool>>();
    std::future<bool> quiescent = probe->get_future();
    loop_.RunInLoop([this, probe] {
      std::vector<uint64_t> ids;
      ids.reserve(connections_.size());
      for (const auto& [id, conn] : connections_) ids.push_back(id);
      for (uint64_t id : ids) HandleReadable(id);
      bool quiet =
          mailbox_->pending_requests.load(std::memory_order_acquire) == 0;
      for (const auto& [id, conn] : connections_) {
        if (!conn->inflight.empty() ||
            conn->write_offset < conn->write_buffer.size() ||
            conn->assembler.buffered_bytes() > 0) {
          quiet = false;
          break;
        }
      }
      probe->set_value(quiet);
    });
    if (quiescent.wait_until(std::chrono::steady_clock::now() +
                             std::chrono::nanoseconds(
                                 deadline_ns - NowNanos())) !=
        std::future_status::ready) {
      break;  // loop wedged past the drain deadline; stop anyway
    }
    if (quiescent.get() &&
        mailbox_->pending_requests.load(std::memory_order_acquire) == 0 &&
        unflushed_bytes_.load(std::memory_order_acquire) == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Cut the completion bridge: callbacks still running on pool threads see
  // a null loop and drop their response bytes instead of touching a loop
  // that is about to be destroyed.
  {
    std::lock_guard<std::mutex> lock(mailbox_->mu);
    mailbox_->loop = nullptr;
  }
  loop_.Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_connections = rejected_connections_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.disconnect_cancels = disconnect_cancels_.load(std::memory_order_relaxed);
  s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  s.open_connections = open_connections_.load(std::memory_order_relaxed);
  return s;
}

std::string Server::StatsText() const {
  Stats s = stats();
  std::ostringstream os;
  os << "== net ==\n"
     << "  port                 " << port_ << "\n"
     << "  open_connections     " << s.open_connections << "\n"
     << "  accepted             " << s.accepted << "\n"
     << "  rejected_connections " << s.rejected_connections << "\n"
     << "  frames_in            " << s.frames_in << "\n"
     << "  frames_out           " << s.frames_out << "\n"
     << "  protocol_errors      " << s.protocol_errors << "\n"
     << "  disconnect_cancels   " << s.disconnect_cancels << "\n"
     << "  idle_closed          " << s.idle_closed << "\n";
  return os.str();
}

void Server::HandleAccept() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                      &peer_len);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays registered
    }
    if (Status injected = Probe("net/accept"); !injected.ok()) {
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    if (connections_.size() >= config_.max_connections) {
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(config_.max_frame_bytes);
    conn->id = id;
    conn->fd = fd;
    conn->last_activity_ns = NowNanos();
    Status registered = loop_.RegisterFd(
        fd, /*want_read=*/true, /*want_write=*/false,
        [this, id](bool readable, bool writable, bool error) {
          if (error) {
            CloseConnection(id, /*cancel_inflight=*/true);
            return;
          }
          if (writable) HandleWritable(id);
          if (readable) HandleReadable(id);
        });
    if (!registered.ok()) {
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    connections_[id] = std::move(conn);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.store(connections_.size(), std::memory_order_relaxed);
  }
}

void Server::HandleReadable(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.reads_paused || conn.close_after_flush) return;

  char buf[64 * 1024];
  for (;;) {
    if (Status injected = Probe("net/read"); !injected.ok()) {
      CloseConnection(conn_id, /*cancel_inflight=*/true);
      return;
    }
    ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.last_activity_ns = NowNanos();
      conn.assembler.Feed(std::string_view(buf, static_cast<size_t>(n)));
      ProcessFrames(conn);
      // ProcessFrames may have closed or paused the connection.
      auto again = connections_.find(conn_id);
      if (again == connections_.end()) return;
      if (again->second->reads_paused || again->second->close_after_flush) {
        return;
      }
      continue;
    }
    if (n == 0) {  // orderly EOF
      CloseConnection(conn_id, /*cancel_inflight=*/true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(conn_id, /*cancel_inflight=*/true);
    return;
  }
}

void Server::AbortConnection(Connection& conn, const Status& error) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  // close_after_flush must be set BEFORE the write is queued: QueueWrite
  // flushes inline, and a hard send() error (or the net/write failpoint)
  // inside that flush destroys the Connection. With the flag already set,
  // a clean full flush also closes — no second touch of `conn` is needed,
  // and callers must not make one.
  conn.close_after_flush = true;
  QueueWrite(conn, EncodeErrorFrame(error));
}

void Server::ProcessFrames(Connection& conn) {
  uint64_t conn_id = conn.id;
  for (;;) {
    Frame frame;
    Status error = Status::Ok();
    FrameAssembler::Outcome outcome = conn.assembler.Next(&frame, &error);
    if (outcome == FrameAssembler::Outcome::kNeedMore) return;
    if (outcome == FrameAssembler::Outcome::kError) {
      // The stream cannot be resynchronised: report once, flush, close.
      AbortConnection(conn, error);
      return;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);

    if (Status injected = Probe("net/decode"); !injected.ok()) {
      AbortConnection(conn, injected);
      return;
    }

    switch (frame.type) {
      case FrameType::kQueryRequest: {
        WireQuery query;
        Status decoded = DecodeQueryPayload(frame.payload, &query);
        if (!decoded.ok()) {
          AbortConnection(conn, decoded);
          return;
        }
        DispatchQuery(conn, std::move(query));
        break;
      }
      case FrameType::kStatsRequest: {
        std::string text = service_->StatsReport();
        text += StatsText();
        QueueWrite(conn, EncodeStatsResponseFrame(text));
        break;
      }
      default: {
        // A client has no business sending response/error frames.
        AbortConnection(conn, Status::InvalidArgument(
                                  "unexpected frame type from client"));
        return;
      }
    }
    // Dispatch/stats may have queued writes that closed the connection via
    // a failed flush.
    if (connections_.find(conn_id) == connections_.end()) return;
  }
}

void Server::DispatchQuery(Connection& conn, WireQuery query) {
  uint64_t conn_id = conn.id;
  uint64_t client_tag = query.client_tag;

  auto reject = [&](const Status& status) {
    WireResult result;
    result.client_tag = client_tag;
    result.code = status.code();
    result.message = status.message();
    result.retry_after_ms = status.retry_after_ms();
    QueueWrite(conn, EncodeResultFrame(result));
  };

  if (conn.inflight.size() >= config_.max_pipelined_per_connection) {
    reject(Status::ResourceExhausted(
        "too many pipelined requests on this connection"));
    return;
  }

  Result<core::QueryInstance> compiled = compiler_(query);
  if (!compiled.ok()) {
    reject(compiled.status());
    return;
  }

  uint64_t seq = next_req_seq_++;
  auto token = std::make_shared<CancelToken>();
  conn.inflight[seq] = token;

  service::QueryRequest request;
  request.tenant = query.tenant;
  request.dataset_id = query.dataset_id;
  request.query = std::move(compiled).value();
  request.epsilon = query.epsilon;
  request.seed = query.seed;
  request.fingerprint =
      query.fingerprint != 0 ? query.fingerprint : Fnv1a(query.sql);
  request.deadline_ms = query.deadline_ms;
  request.cancel = token;
  request.client_nonce = query.client_nonce;
  request.client_seq = query.client_seq;

  mailbox_->pending_requests.fetch_add(1, std::memory_order_acq_rel);
  // The completion runs on an engine pool thread (or inline for immediate
  // rejections). It encodes there — keeping serialization off the loop —
  // and posts finished bytes through the mailbox.
  auto mailbox = mailbox_;
  service_->SubmitAsync(
      std::move(request),
      [this, mailbox, conn_id, seq,
       client_tag](Result<service::QueryResponse> outcome) {
        WireResult result;
        result.client_tag = client_tag;
        if (outcome.ok()) {
          result.code = StatusCode::kOk;
          result.response = std::move(outcome).value();
        } else {
          result.code = outcome.status().code();
          result.message = outcome.status().message();
          result.retry_after_ms = outcome.status().retry_after_ms();
        }
        std::string bytes = EncodeResultFrame(result);
        std::lock_guard<std::mutex> lock(mailbox->mu);
        if (mailbox->loop == nullptr) {
          // Server torn down; the connection is gone anyway. Only the
          // shared Mailbox is touched here — `this` may already be dead.
          mailbox->pending_requests.fetch_sub(1, std::memory_order_acq_rel);
          return;
        }
        mailbox->loop->RunInLoop(
            [this, conn_id, seq, bytes = std::move(bytes)]() mutable {
              CompleteRequest(conn_id, seq, std::move(bytes));
            });
      });
}

void Server::CompleteRequest(uint64_t conn_id, uint64_t seq,
                             std::string bytes) {
  mailbox_->pending_requests.fetch_sub(1, std::memory_order_acq_rel);
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;  // client went away mid-request
  Connection& conn = *it->second;
  conn.inflight.erase(seq);
  QueueWrite(conn, std::move(bytes));
}

void Server::QueueWrite(Connection& conn, std::string bytes) {
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  unflushed_bytes_.fetch_add(bytes.size(), std::memory_order_acq_rel);
  if (conn.write_buffer.empty()) {
    conn.write_buffer = std::move(bytes);
    conn.write_offset = 0;
  } else {
    conn.write_buffer += bytes;
  }
  TryFlush(conn);
}

void Server::TryFlush(Connection& conn) {
  uint64_t conn_id = conn.id;
  while (conn.write_offset < conn.write_buffer.size()) {
    if (Status injected = Probe("net/write"); !injected.ok()) {
      CloseConnection(conn_id, /*cancel_inflight=*/true);
      return;
    }
    ssize_t n = ::send(conn.fd, conn.write_buffer.data() + conn.write_offset,
                       conn.write_buffer.size() - conn.write_offset,
                       MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_offset += static_cast<size_t>(n);
      unflushed_bytes_.fetch_sub(static_cast<uint64_t>(n),
                                 std::memory_order_acq_rel);
      conn.last_activity_ns = NowNanos();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn_id, /*cancel_inflight=*/true);
    return;
  }
  if (conn.write_offset >= conn.write_buffer.size()) {
    conn.write_buffer.clear();
    conn.write_offset = 0;
    if (conn.close_after_flush) {
      CloseConnection(conn_id, /*cancel_inflight=*/true);
      return;
    }
  }
  UpdateInterest(conn);
}

void Server::UpdateInterest(Connection& conn) {
  size_t buffered = conn.write_buffer.size() - conn.write_offset;
  bool want_write = buffered > 0;
  // Backpressure: a connection writing faster than its client reads stops
  // being read until its buffer fully drains. Full drain (not a low
  // watermark) keeps the policy simple and the test observable.
  bool pause_reads = buffered > config_.write_buffer_high_bytes;
  bool resume_reads = buffered == 0;
  if (pause_reads) {
    conn.reads_paused = true;
  } else if (resume_reads && conn.reads_paused) {
    conn.reads_paused = false;
  }
  bool want_read = !conn.reads_paused && !conn.close_after_flush;
  (void)loop_.UpdateFd(conn.fd, want_read, want_write);
  conn.want_write = want_write;
}

void Server::HandleWritable(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  TryFlush(*it->second);
}

void Server::CloseConnection(uint64_t conn_id, bool cancel_inflight) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  loop_.UnregisterFd(conn.fd);
  ::close(conn.fd);
  size_t buffered = conn.write_buffer.size() - conn.write_offset;
  if (buffered > 0) {
    unflushed_bytes_.fetch_sub(buffered, std::memory_order_acq_rel);
  }
  if (cancel_inflight) {
    for (auto& [seq, token] : conn.inflight) {
      disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
      // The service observes the trip at its next cooperative check and
      // refunds the charge (nothing was released). The completion callback
      // still fires; CompleteRequest drops it — the connection is gone.
      token->Cancel(StatusCode::kCancelled, "client disconnected");
    }
  }
  connections_.erase(it);
  open_connections_.store(connections_.size(), std::memory_order_relaxed);
}

void Server::OnTick() {
  if (config_.idle_timeout_ms <= 0.0) return;
  int64_t now = NowNanos();
  int64_t budget_ns = static_cast<int64_t>(config_.idle_timeout_ms * 1e6);
  std::vector<uint64_t> victims;
  for (const auto& [id, conn] : connections_) {
    // Only in-flight queries exempt a connection from reaping: no bytes
    // flow while the engine computes, so last_activity_ns goes stale
    // through no fault of the client. Buffered writes and partial frames
    // do NOT count as activity — a peer that stops reading its responses
    // (or drips a slow-loris request) makes no forward progress, and
    // last_activity_ns already advances on every successful recv/send.
    if (!conn->inflight.empty()) continue;
    if (now - conn->last_activity_ns >= budget_ns) victims.push_back(id);
  }
  for (uint64_t id : victims) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(id, /*cancel_inflight=*/true);
  }
}

}  // namespace upa::net
