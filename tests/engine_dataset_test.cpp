#include "engine/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>
#include <string>
#include <vector>

namespace upa::engine {
namespace {

ExecContext& Ctx() {
  static ExecContext ctx(ExecConfig{.threads = 4, .default_partitions = 4});
  return ctx;
}

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(DatasetTest, FromVectorPreservesAllElements) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(100), 7);
  EXPECT_EQ(ds.NumPartitions(), 7u);
  EXPECT_EQ(ds.Count(), 100u);
  auto collected = ds.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, Iota(100));
}

TEST(DatasetTest, FromVectorEmptyDataset) {
  auto ds = Dataset<int>::FromVector(&Ctx(), {}, 3);
  EXPECT_EQ(ds.Count(), 0u);
  EXPECT_TRUE(ds.Collect().empty());
}

TEST(DatasetTest, FromVectorMorePartitionsThanElements) {
  auto ds = Dataset<int>::FromVector(&Ctx(), {1, 2}, 10);
  EXPECT_EQ(ds.Count(), 2u);
}

TEST(DatasetTest, DefaultPartitionCountComesFromContext) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(10));
  EXPECT_EQ(ds.NumPartitions(), 4u);
}

TEST(DatasetTest, MapTransformsEveryElement) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(50), 4);
  auto doubled = ds.Map([](const int& v) { return v * 2; });
  auto out = doubled.Collect();
  std::sort(out.begin(), out.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[i], 2 * i);
}

TEST(DatasetTest, MapCanChangeType) {
  auto ds = Dataset<int>::FromVector(&Ctx(), {1, 22, 333}, 2);
  auto strs = ds.Map([](const int& v) { return std::to_string(v); });
  auto out = strs.Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::string>{"1", "22", "333"}));
}

TEST(DatasetTest, FilterKeepsMatching) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(100), 4);
  auto evens = ds.Filter([](const int& v) { return v % 2 == 0; });
  EXPECT_EQ(evens.Count(), 50u);
  for (int v : evens.Collect()) EXPECT_EQ(v % 2, 0);
}

TEST(DatasetTest, FilterAllOut) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(10), 2);
  auto none = ds.Filter([](const int&) { return false; });
  EXPECT_EQ(none.Count(), 0u);
}

TEST(DatasetTest, FlatMapExpandsElements) {
  auto ds = Dataset<int>::FromVector(&Ctx(), {1, 2, 3}, 2);
  auto expanded = ds.FlatMap([](const int& v) {
    return std::vector<int>(static_cast<size_t>(v), v);
  });
  EXPECT_EQ(expanded.Count(), 6u);  // 1 + 2 + 3
  auto out = expanded.Collect();
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 1 + 4 + 9);
}

TEST(DatasetTest, ReduceSumsAcrossPartitions) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(1000), 8);
  int sum = ds.Reduce([](int a, int b) { return a + b; }, 0);
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST(DatasetTest, ReduceEmptyReturnsIdentity) {
  auto ds = Dataset<int>::FromVector(&Ctx(), {}, 4);
  EXPECT_EQ(ds.Reduce([](int a, int b) { return a + b; }, 0), 0);
}

TEST(DatasetTest, ReduceSingletonIsThatElement) {
  auto ds = Dataset<int>::FromVector(&Ctx(), {13}, 4);
  EXPECT_EQ(ds.Reduce([](int a, int b) { return a + b; }, 0), 13);
}

TEST(DatasetTest, ReduceWithMaxMonoid) {
  auto ds = Dataset<int>::FromVector(&Ctx(), {3, 9, 1, 7}, 3);
  int m = ds.Reduce([](int a, int b) { return std::max(a, b); },
                    std::numeric_limits<int>::min());
  EXPECT_EQ(m, 9);
}

TEST(DatasetTest, ReducePerPartitionMatchesManual) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(10), 3);
  auto partials =
      ds.ReducePerPartition([](int a, int b) { return a + b; }, 0);
  ASSERT_EQ(partials.size(), 3u);
  int total = 0;
  for (int p : partials) total += p;
  EXPECT_EQ(total, 45);
  // Each partial equals the sum of its own partition.
  for (size_t p = 0; p < ds.NumPartitions(); ++p) {
    int expect = 0;
    for (int v : ds.partition(p)) expect += v;
    EXPECT_EQ(partials[p], expect);
  }
}

TEST(DatasetTest, SampleIsDistinctSubset) {
  Rng rng(5);
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(200), 4);
  auto sample = ds.Sample(rng, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 200);
  }
}

TEST(DatasetTest, RepartitionKeepsContents) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(37), 3);
  auto re = ds.Repartition(9);
  EXPECT_EQ(re.NumPartitions(), 9u);
  auto a = ds.Collect();
  auto b = re.Collect();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(DatasetTest, ChainedPipeline) {
  auto ds = Dataset<int>::FromVector(&Ctx(), Iota(100), 5);
  double result = ds.Filter([](const int& v) { return v % 3 == 0; })
                      .Map([](const int& v) { return v * 0.5; })
                      .Reduce([](double a, double b) { return a + b; }, 0.0);
  double expect = 0;
  for (int v = 0; v < 100; v += 3) expect += v * 0.5;
  EXPECT_DOUBLE_EQ(result, expect);
}

TEST(DatasetTest, MetricsCountTasksAndRecords) {
  ExecContext local(ExecConfig{.threads = 2, .default_partitions = 3});
  auto ds = Dataset<int>::FromVector(&local, Iota(30), 3);
  auto before = local.metrics().Snapshot();
  ds.Map([](const int& v) { return v + 1; }).Collect();
  auto delta = local.metrics().Snapshot() - before;
  EXPECT_EQ(delta.tasks_launched, 3u);
  EXPECT_EQ(delta.records_processed, 30u);
}

// Associativity/commutativity property sweep over partition counts: the
// reduce result must not depend on partitioning (the property UPA's whole
// design rests on, paper §II-C).
class PartitionInvarianceSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionInvarianceSweep, ReduceIndependentOfPartitioning) {
  Rng rng(42);
  std::vector<double> values(500);
  for (auto& v : values) v = rng.UniformDouble(-10.0, 10.0);
  auto sum = [](double a, double b) { return a + b; };

  auto base = Dataset<double>::FromVector(&Ctx(), values, 1);
  double expected = base.Reduce(sum, 0.0);

  auto ds = Dataset<double>::FromVector(&Ctx(), values,
                                        static_cast<size_t>(GetParam()));
  EXPECT_NEAR(ds.Reduce(sum, 0.0), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionInvarianceSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 64));

}  // namespace
}  // namespace upa::engine
