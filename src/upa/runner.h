// UpaRunner: UPA's Algorithm 1 (Inferring Sensitivity) + iDP enforcement.
//
// One runner instance models one deployed UPA service: its RANGE ENFORCER
// registry persists across Run() calls, which is what lets it recognize a
// repeated query on a neighbouring dataset (the attack of §III).
//
// Workflow per run (paper Figure 1):
//   1. Partition & Sample  — uniformly sample n records S from x; the rest
//      is S'; records are assigned to enforcer partitions by index.
//   2. Parallel Map        — delegated to QueryInstance::execute_phases,
//      which maps S, S' and n synthetic domain records on the engine.
//   3. Union-Preserving Reduce — R(M(S')) is computed once (inside
//      execute_phases, per partition) and reused to derive f(x), the
//      partition outputs f(x_j), and all sampled-neighbour outputs
//      f(x - s_i), f(x + s̄_i) via exclusion scans.
//   4. iDP Enforcement     — MLE-fit a normal to the neighbour outputs,
//      take [P1, P99] as the output range Ô_f and its width as the local
//      sensitivity; run RANGE ENFORCER; clamp; add Laplace noise.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/normal_fit.h"
#include "common/rng.h"
#include "common/status.h"
#include "engine/metrics.h"
#include "upa/exclusion.h"
#include "upa/query_instance.h"
#include "upa/range_enforcer.h"

namespace upa::core {

/// How the local sensitivity is derived from the sampled-neighbour
/// outputs. The paper is internally inconsistent here (see DESIGN.md):
/// Algorithm 1 as written fits a normal to the neighbour *outputs* and
/// takes P99 − P1 — but that rule cannot produce the paper's own TPCH1
/// accuracy (RMSE 2.6e-9 against a Definition II.1 ground truth of 1; the
/// literal rule yields ≈ 2·2.326 = 4.65). The accuracy the paper reports
/// is consistent with evaluating Definition II.1 on the sampled
/// neighbours — the greatest observed |f(x) − f(y)| — which is the
/// default here. All three variants are implemented; bench_ablation
/// compares them against ground truth.
enum class SensitivityRule {
  /// localSen = max over sampled neighbours of |f(x) − f(y)| (Definition
  /// II.1 on the sample); Ô_f = [f(x) − localSen, f(x) + localSen].
  kSampledMax,
  /// localSen = max(P99 of the normal MLE-fitted to |f(x) − f(y)|,
  /// sampled max) — extrapolates smooth tails beyond the sample;
  /// Ô_f = [f(x) − localSen, f(x) + localSen].
  kInfluencePercentile,
  /// Algorithm 1 literal: localSen = P99 − P1 of the normal MLE-fitted to
  /// the neighbour outputs; Ô_f = [P1, P99].
  kOutputRange,
};

struct UpaConfig {
  /// Sample size n. The paper's default (1000) is statistically sufficient
  /// for the MLE normal fit; datasets smaller than n are sampled fully.
  size_t sample_n = 1000;
  SensitivityRule sensitivity_rule = SensitivityRule::kSampledMax;
  /// Privacy budget per release (the paper evaluates at 0.1).
  double epsilon = 0.1;
  /// Percentiles of the fitted normal defining Ô_f.
  double lo_percentile = 1.0;
  double hi_percentile = 99.0;
  /// How R(S \ s_i) is computed for all i. The default chunked block-scan
  /// runs on the engine pool with results bit-identical to any pool size.
  ExclusionStrategy exclusion = ExclusionStrategy::kParallelScan;
  /// Enforcer partition count (the paper uses two).
  size_t enforcer_partitions = 2;
  /// Disable to measure Algorithm 1 alone (ablation only; no iDP claim).
  bool enable_enforcer = true;
  /// Disable to inspect the un-noised pipeline in tests.
  bool add_noise = true;
  /// Run phases 3b/4 (neighbour-output evaluation, influence computation,
  /// partition partials) on the engine thread pool. The parallel path is
  /// bit-identical to the sequential one (fixed chunk boundaries and
  /// combine orders); disable only to measure the speedup it buys.
  bool parallel_phases = true;
  /// Floor for the inferred local sensitivity. A degenerate query whose
  /// sampled neighbours all produce the same output would otherwise infer
  /// sensitivity 0 and release the exact clamped value with Laplace scale
  /// 0 — no noise at all. The floor keeps the release mechanism honest;
  /// `UpaRunResult::degenerate_sensitivity` reports when it engaged.
  double min_sensitivity = 1e-9;
};

struct PhaseSeconds {
  double sample = 0.0;   // phase 1
  double map = 0.0;      // phase 2 + S'-reduce (execute_phases)
  double reduce = 0.0;   // phase 3b: exclusion scans + combines
  double enforce = 0.0;  // phase 4: fit + enforcer + clamp + noise
  double total = 0.0;
};

struct UpaRunResult {
  /// f(x) after any enforcer removals, before clamping and noise.
  double raw_output = 0.0;
  /// The value returned to the analyst: clamp(raw) + Lap(sensitivity/ε).
  double released_output = 0.0;
  /// The reduced value R(M(x)) the outputs derive from.
  Vec reduced;
  /// Inferred local sensitivity (width of out_range).
  double local_sensitivity = 0.0;
  /// The constrained output range Ô_f ([P1, P99] of the normal fit).
  Interval out_range;
  /// Scalarized outputs of all 2n sampled neighbouring datasets.
  std::vector<double> neighbour_outputs;
  /// Final per-partition outputs (what the enforcer registers).
  std::vector<double> partition_outputs;
  EnforcerDecision enforcer;
  /// True when the inferred sensitivity fell below UpaConfig::
  /// min_sensitivity (all sampled neighbours produced identical outputs)
  /// and the floor was applied. local_sensitivity/out_range reflect the
  /// floored values.
  bool degenerate_sensitivity = false;
  PhaseSeconds seconds;
  /// Engine counters attributable to this run.
  engine::MetricsSnapshot metrics;
  /// Number of records actually sampled (min(n, |x|)).
  size_t sample_size = 0;
};

/// Previously inferred sensitivity + output range for a query shape, as
/// cached by the service layer (keyed by plan fingerprint × dataset
/// epoch). Passing it to Run skips phase 3b's exclusion scans and the
/// sensitivity fit — the expensive part of a repeat query — while leaving
/// the release path (partition outputs, enforcer, clamp, noise) intact,
/// so a hinted run releases bit-identically to the full run that produced
/// the hint.
struct SensitivityHint {
  double local_sensitivity = 0.0;
  Interval out_range;
  bool degenerate = false;
};

class UpaRunner {
 public:
  explicit UpaRunner(UpaConfig config = {})
      : config_(config), enforcer_(std::make_shared<RangeEnforcer>()) {}

  /// Executes one query end-to-end. `seed` drives sampling, synthetic
  /// domain records and noise; same (query, seed) → same result.
  /// With `hint`, reuses a previously inferred sensitivity/output range
  /// instead of computing them (see SensitivityHint).
  Result<UpaRunResult> Run(const QueryInstance& query, uint64_t seed,
                           const SensitivityHint* hint = nullptr);

  RangeEnforcer& enforcer() { return *enforcer_; }
  /// The registry, shareable between runners (the service shares one per
  /// dataset). The enforcer itself is thread-safe; Run takes a Session
  /// lock across its Enforce → Register window.
  std::shared_ptr<RangeEnforcer> shared_enforcer() const { return enforcer_; }
  void share_enforcer(std::shared_ptr<RangeEnforcer> enforcer) {
    UPA_CHECK(enforcer != nullptr);
    enforcer_ = std::move(enforcer);
  }
  const UpaConfig& config() const { return config_; }

 private:
  UpaConfig config_;
  std::shared_ptr<RangeEnforcer> enforcer_;
};

}  // namespace upa::core
