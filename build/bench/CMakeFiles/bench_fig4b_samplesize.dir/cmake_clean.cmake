file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_samplesize.dir/bench_fig4b_samplesize.cpp.o"
  "CMakeFiles/bench_fig4b_samplesize.dir/bench_fig4b_samplesize.cpp.o.d"
  "bench_fig4b_samplesize"
  "bench_fig4b_samplesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_samplesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
