# Empty dependencies file for dp_accountant_test.
# This may be replaced when dependencies are built.
