# Empty compiler generated dependencies file for engine_cache_metrics_test.
# This may be replaced when dependencies are built.
