#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/cancel.h"

namespace upa {
namespace {

TEST(ThreadPoolTest, DefaultHasAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, ExplicitThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.Submit([&] { counter.fetch_add(1); });
  fut.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&](size_t i) { touched[i].fetch_add(1); });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForChunksPartitionExactly) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelForChunks(103, [&](size_t b, size_t e) {
    std::lock_guard lock(mu);
    chunks.push_back({b, e});
  });
  std::sort(chunks.begin(), chunks.end());
  size_t expected_begin = 0;
  for (auto [b, e] : chunks) {
    EXPECT_EQ(b, expected_begin);
    EXPECT_GT(e, b);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ThreadPoolTest, ParallelForSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<long> values(10000);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<long> sum{0};
  pool.ParallelFor(values.size(), [&](size_t i) { sum.fetch_add(values[i]); });
  EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(10,
                       [&](size_t i) {
                         if (i == 3) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

// Regression: ParallelFor called from inside a pool worker used to block
// on future::get() while its sibling chunks waited in the queue for that
// same worker — a guaranteed deadlock once every worker was a waiter. The
// help-run loop must complete this on any pool size, including one.
TEST(ThreadPoolTest, NestedParallelForFromWorkerCompletesOnOneThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  auto outer = pool.Submit([&] {
    pool.ParallelFor(64, [&](size_t) { counter.fetch_add(1); });
  });
  outer.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForFromEveryWorkerCompletes) {
  // Saturate a 2-thread pool with outer tasks that all fan out again: with
  // blocking waits both workers would be stuck waiting for chunks only
  // they themselves could run.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> outer;
  for (int t = 0; t < 4; ++t) {
    outer.push_back(pool.Submit([&] {
      pool.ParallelFor(64, [&](size_t) { counter.fetch_add(1); });
    }));
  }
  for (auto& f : outer) f.get();
  EXPECT_EQ(counter.load(), 4 * 64);
}

TEST(ThreadPoolTest, DoublyNestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 4 * 8);
}

TEST(ThreadPoolTest, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(4,
                                [&](size_t) {
                                  pool.ParallelFor(8, [](size_t i) {
                                    if (i == 5) {
                                      throw std::runtime_error("inner boom");
                                    }
                                  });
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForChunksReportsChunkCount) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.ParallelForChunks(0, [](size_t, size_t) {}), 0u);
  EXPECT_EQ(pool.ParallelForChunks(1, [](size_t, size_t) {}), 1u);
  size_t launched = pool.ParallelForChunks(100, [](size_t, size_t) {});
  EXPECT_GE(launched, 2u);
  EXPECT_LE(launched, 4u);
}

TEST(ThreadPoolTest, MorselsCoverEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 7u, 100u, 4096u}) {
    for (size_t grain : {0u, 1u, 3u, 64u, 10000u}) {
      std::vector<std::atomic<int>> seen(n);
      for (auto& s : seen) s.store(0);
      size_t morsels =
          pool.ParallelForMorsels(n, grain, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) seen[i].fetch_add(1);
          });
      if (n == 0) {
        EXPECT_EQ(morsels, 0u);
      } else if (grain > 0) {
        EXPECT_EQ(morsels, (n + grain - 1) / grain);
      } else {
        EXPECT_GE(morsels, 1u);
      }
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(seen[i].load(), 1) << "n=" << n << " grain=" << grain
                                     << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, MorselBoundariesDependOnlyOnCountAndGrain) {
  // The same (n, grain) must produce the same set of [begin, end) ranges on
  // any pool size — the property the columnar engine's bit-identity rests
  // on (each range writes its own output slot).
  auto ranges_with = [](size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> out;
    pool.ParallelForMorsels(1003, 17, [&](size_t begin, size_t end) {
      std::lock_guard lock(mu);
      out.push_back({begin, end});
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(ranges_with(1), ranges_with(4));
}

TEST(ThreadPoolTest, NestedMorselsOnSingleThreadPoolCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelForMorsels(4, 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      pool.ParallelForMorsels(8, 1, [&](size_t ib, size_t ie) {
        counter.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_EQ(counter.load(), 4 * 8);
}

TEST(ThreadPoolTest, MorselsPropagateExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelForMorsels(64, 4,
                                       [](size_t begin, size_t) {
                                         if (begin == 32) {
                                           throw std::runtime_error("boom");
                                         }
                                       }),
               std::runtime_error);
}

TEST(ThreadPoolTest, MorselsPollCancellationAtBoundaries) {
  ThreadPool pool(2);
  CancelToken token;
  CancelScope scope(&token);
  std::atomic<int> ran{0};
  pool.ParallelForMorsels(1000, 1, [&](size_t, size_t) {
    // Trip after the first few morsels: all not-yet-pulled morsels must be
    // shed rather than executed.
    if (ran.fetch_add(1) == 2) token.Cancel();
  });
  EXPECT_LT(ran.load(), 1000);
  EXPECT_TRUE(token.cancelled());
}

TEST(ThreadPoolTest, MorselTimingsOnePerExecutedMorsel) {
  ThreadPool pool(3);
  ThreadPool::MorselTimings timings;
  size_t morsels = pool.ParallelForMorsels(
      100, 9, [](size_t, size_t) {}, &timings);
  EXPECT_EQ(morsels, 12u);
  EXPECT_EQ(timings.seconds.size(), 12u);
  EXPECT_GE(timings.Imbalance(), 1.0);
  EXPECT_GE(timings.SumSeconds(), 0.0);
  EXPECT_GE(timings.MaxSeconds(), 0.0);
}

TEST(ThreadPoolTest, NestedSubmitFromTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto outer = pool.Submit([&] {
    counter.fetch_add(1);
    // Do not wait on the inner future inside the worker; just enqueue.
    pool.Submit([&] { counter.fetch_add(1); });
  });
  outer.get();
  // Give the inner task a chance to run by submitting a barrier task.
  pool.Submit([] {}).get();
  EXPECT_GE(counter.load(), 1);
}

}  // namespace
}  // namespace upa
