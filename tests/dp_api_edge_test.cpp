// Edge-case coverage for the Table I API: domain rejection-sampling
// fallbacks, chained transformations, vector releases through keyed maps,
// and interaction between the accountant and the enforcer.
#include "upa/dp_api.h"

#include <gtest/gtest.h>

#include <cmath>

namespace upa::api {
namespace {

engine::ExecContext& Ctx() {
  static engine::ExecContext ctx(
      engine::ExecConfig{.threads = 2, .default_partitions = 4});
  return ctx;
}

core::UpaConfig TestConfig() {
  core::UpaConfig cfg;
  cfg.sample_n = 150;
  return cfg;
}

TEST(DpApiEdgeTest, FilterWithImpossibleDomainFallsBack) {
  // The data contains values the domain sampler can never produce; the
  // rejection loop must fall back instead of spinning forever.
  UpaSystem sys(&Ctx(), TestConfig(), 10.0);
  std::vector<double> values(3000, 500.0);  // all pass the filter
  auto data = sys.dpread<double>(
      values, [](Rng& rng) { return rng.UniformDouble(0.0, 1.0); }, "e1");
  auto filtered = data.filterDP([](const double& v) { return v > 100.0; });
  auto release = filtered.countDP(1.0);
  ASSERT_TRUE(release.ok());
  EXPECT_NEAR(release.value().value, 3000.0, 50.0);
}

TEST(DpApiEdgeTest, LongTransformationChain) {
  UpaSystem sys(&Ctx(), TestConfig(), 10.0);
  Rng gen(3);
  std::vector<double> values(4000);
  for (auto& v : values) v = gen.UniformDouble(0.0, 2.0);
  auto data = sys.dpread<double>(
      values, [](Rng& rng) { return rng.UniformDouble(0.0, 2.0); }, "e2");
  auto chained = data.mapDP([](const double& v) { return v * 10.0; })
                     .filterDP([](const double& v) { return v > 5.0; })
                     .mapDP([](const double& v) { return v - 5.0; });
  auto release =
      chained.reduceSumDP([](const double& v) { return v; }, 1.0);
  ASSERT_TRUE(release.ok());
  // Values now in (0, 15]; ~3000 survivors, mean ~7.5.
  EXPECT_GT(release.value().value, 10000.0);
  EXPECT_LT(release.value().value, 30000.0);
  EXPECT_LE(release.value().local_sensitivity, 20.0);
}

TEST(DpApiEdgeTest, StructRecordsWork) {
  struct Visit {
    int patient_id;
    double cost;
  };
  UpaSystem sys(&Ctx(), TestConfig(), 10.0);
  Rng gen(4);
  std::vector<Visit> visits(3000);
  for (auto& v : visits) {
    v.patient_id = static_cast<int>(gen.UniformU64(1000));
    v.cost = gen.UniformDouble(10.0, 500.0);
  }
  auto data = sys.dpread<Visit>(
      visits,
      [](Rng& rng) {
        return Visit{static_cast<int>(rng.UniformU64(1000)),
                     rng.UniformDouble(10.0, 500.0)};
      },
      "visits");
  auto release =
      data.reduceSumDP([](const Visit& v) { return v.cost; }, 1.0);
  ASSERT_TRUE(release.ok());
  EXPECT_LE(release.value().local_sensitivity, 600.0);
  EXPECT_GE(release.value().local_sensitivity, 300.0);
}

TEST(DpApiEdgeTest, EnforcerStateSurvivesAcrossDpObjects) {
  // The registry belongs to the system, not the object: re-reading the
  // same records and re-running the same query is still detected.
  UpaSystem sys(&Ctx(), TestConfig(), 100.0);
  std::vector<double> values(3000, 1.0);
  auto domain = [](Rng& rng) { return rng.UniformDouble(0.0, 2.0); };
  auto a = sys.dpread<double>(values, domain, "same");
  auto b = sys.dpread<double>(values, domain, "same");
  auto first = a.countDP(1.0);
  ASSERT_TRUE(first.ok());
  auto second = b.countDP(1.0);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().attack_suspected);
}

TEST(DpApiEdgeTest, ReleasesAreRandomizedAcrossCalls) {
  UpaSystem sys(&Ctx(), TestConfig(), 100.0);
  Rng gen(5);
  std::vector<double> values(3000);
  for (auto& v : values) v = gen.UniformDouble(0.0, 1.0);
  auto data = sys.dpread<double>(
      values, [](Rng& rng) { return rng.UniformDouble(0.0, 1.0); }, "e5");
  auto r1 = data.reduceSumDP([](const double& v) { return v; }, 1.0);
  auto r2 = data.reduceSumDP([](const double& v) { return v; }, 1.0);
  ASSERT_TRUE(r1.ok() && r2.ok());
  // Fresh noise per release (seeds advance inside the system).
  EXPECT_NE(r1.value().value, r2.value().value);
}

TEST(DpApiEdgeTest, KeyedReleaseOverlapsTruthPerKey) {
  UpaSystem sys(&Ctx(), TestConfig(), 10.0);
  Rng gen(6);
  std::vector<int> records;
  for (int k = 0; k < 4; ++k) {
    for (int i = 0; i < 500 * (k + 1); ++i) records.push_back(k);
  }
  gen.Shuffle(records);
  auto data = sys.dpread<int>(
      records, [](Rng& rng) { return static_cast<int>(rng.UniformU64(4)); },
      "e6");
  auto keyed = mapDPKV(data, [](const int& v) { return v; },
                       std::vector<int>{0, 1, 2, 3});
  auto result = keyed.reduceByKeyDP([](const int&) { return 1.0; }, 2.0);
  ASSERT_TRUE(result.ok());
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(result.value().at(k), 500.0 * (k + 1), 120.0) << k;
  }
}

}  // namespace
}  // namespace upa::api
